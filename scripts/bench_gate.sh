#!/bin/sh
# Energy/perf regression gate: run the fig1/fig2/fig3 benches plus the
# loss-sweep extension with the pinned corpus scale, then benchdiff the
# fresh sidecars against the committed baselines under bench/baselines/.
# Every gated number is produced by the deterministic simulator (no
# wall-clock noise; lossy runs are seeded), so any delta beyond the
# threshold is a real model change.
#
#   scripts/bench_gate.sh [BUILD_DIR]
#
# BUILD_DIR defaults to build-check (what scripts/check.sh builds).
#
# Environment:
#   ECOMP_BENCH_THRESHOLD_PCT  regression threshold (default: 5)
#   ECOMP_BENCH_MIN_SPEEDUP    minimum ratio a *_mb_s throughput key may
#                              fall to vs its baseline before the gate
#                              fails (default: benchdiff's 0.7). Skipped
#                              automatically when the baseline was
#                              recorded at a different SIMD level or on
#                              a different CPU.
#
# Refreshing baselines after an INTENTIONAL model change (see
# docs/BENCHDIFF.md): rerun the gated benches with
# ECOMP_CORPUS_SCALE=0.05 and ECOMP_BENCH_DIR=bench/baselines, review
# the diff, and commit the updated sidecars together with the change
# that explains them.
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-check}"
THRESHOLD="${ECOMP_BENCH_THRESHOLD_PCT:-5}"
MIN_SPEEDUP="${ECOMP_BENCH_MIN_SPEEDUP:-0.7}"
BASELINES="bench/baselines"
OUT="$BUILD_DIR/bench_gate"

if [ ! -d "$BASELINES" ]; then
  echo "bench_gate: no baselines at $BASELINES, nothing to gate" >&2
  exit 0
fi
# bench_par_scaling's wall-clock speedups are machine-dependent ratio
# keys benchdiff reports but never gates; its identical_t* digests (and
# its own exit code) are the correctness gate for the parallel codec.
# bench_codec_throughput's wall-clock keys (.real_s/.bytes_per_s) are
# likewise reported but ungated — it is in the gate for its prof
# *_self_pct keys, which fail the diff when a codec hot path's share of
# self time grows by more than 10 percentage points, and for its
# *_mb_s stage-throughput keys, which fail when a measured decode/
# transform rate drops below MIN_SPEEDUP of its baseline.
# bench_proxy_load's latency (_us) and admission-counter keys are
# scheduler-dependent and ungated; its deterministic N=1 wire-energy
# key (n1_energy_j) is what gates.
GATED_BENCHES="bench_fig1_time bench_fig2_energy bench_fig3_timeline \
bench_ext_loss_sweep bench_par_scaling \
bench_fig12_ondemand_time bench_fig13_ondemand_energy \
bench_codec_throughput bench_proxy_load"

for bin in $GATED_BENCHES benchdiff; do
  if [ ! -x "$BUILD_DIR/bench/$bin" ] && [ ! -x "$BUILD_DIR/tools/$bin" ]; then
    echo "bench_gate: $bin missing under $BUILD_DIR (build it first)" >&2
    exit 1
  fi
done

mkdir -p "$OUT"
rm -f "$OUT"/BENCH_*.json

# Pin the corpus scale: baselines are recorded at 0.05 and the gated
# numbers depend on the exact corpus bytes.
for bin in $GATED_BENCHES; do
  ECOMP_CORPUS_SCALE=0.05 ECOMP_BENCH_DIR="$OUT" \
    "$BUILD_DIR/bench/$bin" >/dev/null
done

"$BUILD_DIR/tools/benchdiff" --threshold "$THRESHOLD" \
  --min-speedup "$MIN_SPEEDUP" "$BASELINES" "$OUT"
echo "bench_gate: OK (threshold ${THRESHOLD}%, min speedup ${MIN_SPEEDUP}x)"

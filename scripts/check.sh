#!/bin/sh
# Pre-merge gate: build the default and sanitizer presets, run the full
# test suite under both, run a forced-scalar (ECOMP_SIMD=OFF) pass with
# a vector-ISA link-hygiene check, run the energy regression gate
# (benchdiff of fresh fig1/fig2/fig3 sidecars against bench/baselines —
# see scripts/bench_gate.sh), then verify the observability layer's overhead
# budget — instrumented (ECOMP_OBS=ON) codec throughput may regress at
# most ECOMP_OBS_BUDGET_PCT percent (default 3) against an =OFF build.
#
#   scripts/check.sh
#
# Environment:
#   ECOMP_CHECK_JOBS       parallel build jobs (default: nproc)
#   ECOMP_OBS_BUDGET_PCT   overhead budget in percent (default: 3)
#   ECOMP_CHECK_SKIP_BENCH set to 1 to skip the overhead gate
set -e
cd "$(dirname "$0")/.."

JOBS="${ECOMP_CHECK_JOBS:-$(nproc)}"
BUDGET="${ECOMP_OBS_BUDGET_PCT:-3}"

echo "== preset 1: default (ECOMP_OBS=ON) =="
cmake -B build-check -S . -DECOMP_OBS=ON >/dev/null
cmake --build build-check -j "$JOBS"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

echo
echo "== preset 2: ASan+UBSan (ECOMP_OBS=ON) =="
cmake -B build-check-asan -S . -DECOMP_OBS=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  >/dev/null
cmake --build build-check-asan -j "$JOBS"
ctest --test-dir build-check-asan --output-on-failure -j "$JOBS"

echo
echo "== preset 3: TSan (concurrency/robustness/load/observability/profiling/monitoring) =="
# ThreadSanitizer cannot combine with ASan, so it gets its own tree; it
# runs the suites that actually spawn threads (the parallel block
# pipeline, threaded interleaving, shared-instance contracts, the
# fault matrix's server/client pairs, the worker-pool proxy's
# admission/shedding/drain paths under 100 concurrent clients, the
# telemetry layer's sharded histograms + proxy/client event logging,
# the profiler's SIGPROF sampler + collector + flight-recorder ring,
# and the monitor's sampler thread + watchdog against a live proxy).
cmake -B build-check-tsan -S . -DECOMP_OBS=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
  >/dev/null
cmake --build build-check-tsan -j "$JOBS" \
  --target ecomp_concurrency_tests ecomp_robustness_tests \
  ecomp_load_tests ecomp_observability_tests ecomp_profiling_tests \
  ecomp_monitoring_tests
ctest --test-dir build-check-tsan \
  -L "concurrency|robustness|load|observability|profiling|monitoring" \
  --output-on-failure -j "$JOBS"

echo
echo "== preset 4: forced scalar (ECOMP_SIMD=OFF) =="
# The dispatched kernels must be a pure speed knob: an =OFF build (also
# what non-x86 ports get) runs the codec/differential suite and the
# threaded codec suite on the always-compiled scalar fallbacks. The
# simd label's differential tests degenerate to scalar-vs-scalar here,
# but the codec byte-identity and BWT/Huffman reference checks still
# exercise the full pipelines.
cmake -B build-check-scalar -S . -DECOMP_OBS=ON -DECOMP_SIMD=OFF >/dev/null
cmake --build build-check-scalar -j "$JOBS" \
  --target ecomp_tests ecomp_simd_tests ecomp_concurrency_tests
ctest --test-dir build-check-scalar -L "simd|concurrency" \
  --output-on-failure -j "$JOBS"
ctest --test-dir build-check-scalar --output-on-failure -j "$JOBS" \
  -R "Codec|Deflate|Huffman|Bwt|Lz77|Bitio|Container"

echo
echo "== ECOMP_SIMD=OFF link hygiene: zero vector-ISA kernels =="
# ECOMP_SIMD=OFF must compile out every target("...")-attributed kernel:
# the scalar fallback is the only code path, so no AVX2/CLMUL symbol may
# survive into the test binary. The ON build must conversely still carry
# them (guards against the dispatch table silently losing its fast
# tiers).
if nm -C build-check-scalar/tests/ecomp_simd_tests | grep -E \
  "simd::detail::(match_length_(sse2|avx2)|find_byte_(sse2|avx2)|crc32_clmul)" \
  ; then
  echo "FAIL: ECOMP_SIMD=OFF binary still contains vector-ISA kernels" >&2
  exit 1
fi
if ! nm -C build-check/tests/ecomp_simd_tests | grep -qE \
  "simd::detail::(match_length_avx2|crc32_clmul)"; then
  echo "FAIL: default (ECOMP_SIMD=ON) build lost its vector-ISA kernels" >&2
  exit 1
fi
echo "simd link hygiene: OK"

if [ "${ECOMP_CHECK_SKIP_BENCH:-0}" = "1" ]; then
  echo "overhead + energy gates skipped (ECOMP_CHECK_SKIP_BENCH=1)"
  exit 0
fi

echo
echo "== energy regression gate: benchdiff vs bench/baselines =="
scripts/bench_gate.sh build-check

echo
echo "== overhead gate: bench_codec_throughput ON vs OFF (budget ${BUDGET}%) =="
# The ON build carries the whole prof subsystem compiled in but idle
# (zone markers are one relaxed load when no profile runs), so this
# budget is also the profiler's at-rest overhead envelope.
cmake -B build-check-obsoff -S . -DECOMP_OBS=OFF >/dev/null
cmake --build build-check-obsoff -j "$JOBS" --target bench_codec_throughput

echo
echo "== ECOMP_OBS=OFF link hygiene: zero prof/monitor symbols in ecomp =="
# zone.h/alloc.h are header-only exactly so an =OFF build needs no link
# edge to ecomp_prof; likewise the monitor subsystem (sampler, series
# store, watchdog, rule parser) is compiled only under ECOMP_OBS=ON. If
# any such symbol shows up in the =OFF CLI binary, that contract broke.
cmake --build build-check-obsoff -j "$JOBS" --target ecomp
if nm -C build-check-obsoff/tools/ecomp | grep -E \
  "prof::(Profiler|FlightRecorder|install_crash_handler|fatal_dump|attach_flight_mirror|alloc_snapshot|rss_peak_kb|publish_alloc_metrics|write_folded)|obs::(Monitor|SeriesStore|Series|Watchdog|parse_rules)" \
  ; then
  echo "FAIL: ECOMP_OBS=OFF ecomp binary references prof/monitor symbols" >&2
  exit 1
fi
echo "link hygiene: OK"

BENCH_ARGS="--benchmark_repetitions=3 --benchmark_min_time=0.2"
# gbench runs all repetitions of one invocation in a single process, so
# interleave at the process level instead: two passes per side in
# OFF/ON/OFF/ON order, then take each benchmark's best median per side.
# A slow machine-load transient then has to hit both passes of one side
# (and neither pass of the other) to bias the ratio, which tames the
# run-to-run wall-clock noise a single pass per side is exposed to.
for pass_n in 1 2; do
  mkdir -p "build-check/obs_gate/on$pass_n" "build-check/obs_gate/off$pass_n"
  ECOMP_BENCH_DIR="build-check/obs_gate/off$pass_n" \
    build-check-obsoff/bench/bench_codec_throughput $BENCH_ARGS >/dev/null
  ECOMP_BENCH_DIR="build-check/obs_gate/on$pass_n" \
    build-check/bench/bench_codec_throughput $BENCH_ARGS >/dev/null
done

python3 - "$BUDGET" <<'EOF'
import json, math, sys

budget_pct = float(sys.argv[1])

def medians(path):
    report = json.load(open(path))
    out = {}
    for key, value in report["headline"].items():
        if key.endswith("_median.real_s"):
            out[key[: -len("_median.real_s")]] = value
    return out

def best_of(side):
    passes = [
        medians(f"build-check/obs_gate/{side}{n}/BENCH_codec_throughput.json")
        for n in (1, 2)
    ]
    common = set(passes[0]) & set(passes[1])
    return {name: min(p[name] for p in passes) for name in common}

m_on, m_off = best_of("on"), best_of("off")
common = sorted(set(m_on) & set(m_off))
if not common:
    sys.exit("overhead gate: no common median measurements found")

log_sum = 0.0
print(f"{'benchmark':32s} {'off (ms)':>10s} {'on (ms)':>10s} {'ratio':>7s}")
for name in common:
    ratio = m_on[name] / m_off[name]
    log_sum += math.log(ratio)
    print(f"{name:32s} {m_off[name]*1e3:10.2f} {m_on[name]*1e3:10.2f} "
          f"{ratio:7.3f}")
geo = math.exp(log_sum / len(common))
overhead_pct = (geo - 1.0) * 100.0
print(f"geometric-mean overhead: {overhead_pct:+.2f}% (budget {budget_pct}%)")
if overhead_pct > budget_pct:
    sys.exit(f"FAIL: instrumentation overhead {overhead_pct:.2f}% exceeds "
             f"budget {budget_pct}%")
print("overhead gate: OK")
EOF

echo
echo "check.sh: all gates passed"

#!/bin/sh
# One-command reproduction: configure, build, test, and regenerate every
# table/figure into results/.
#
#   scripts/reproduce.sh [corpus-scale]
#
# corpus-scale defaults to 0.05 (seconds); 1.0 regenerates the corpus at
# the paper's true file sizes (minutes).
set -e
cd "$(dirname "$0")/.."

SCALE="${1:-0.05}"
export ECOMP_CORPUS_SCALE="$SCALE"

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build 2>&1 | tee results/tests.txt

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name (scale $SCALE) =="
  "$b" >"results/$name.txt" 2>/dev/null
done

echo
echo "done: per-bench outputs in results/, test log in results/tests.txt"

// upload_capture: the paper's future-work direction run end-to-end — a
// handheld uploads locally captured data (voice recording, photo, notes)
// to the proxy. The client compresses block-by-block while sending over
// a real socket; the energy verdict comes from the UploadModel, which
// charges compression to the 206 MHz handheld.
//
//   ./examples/upload_capture
#include <cstdio>

#include "core/api.h"
#include "net/proxy.h"
#include "workload/generator.h"

using namespace ecomp;

int main() {
  // Captured artifacts of different compressibility.
  struct Capture {
    const char* name;
    workload::FileKind kind;
    std::size_t bytes;
  };
  const Capture captures[] = {
      {"voice_memo.wav", workload::FileKind::Wav, 600000},
      {"photo.jpg", workload::FileKind::Media, 400000},
      {"meeting_notes.txt", workload::FileKind::Mail, 80000},
      {"sensor_log.csv", workload::FileKind::Log, 300000},
  };

  net::ProxyServer server(net::FileStore{},
                          compress::SelectivePolicy::always());
  std::printf("proxy listening on 127.0.0.1:%u\n\n", server.port());

  const auto model = core::UploadModel::ipaq_11mbps();
  const sim::TransferSimulator simulator;

  std::printf("%-18s %9s %9s %7s | %9s %9s %9s | %s\n", "capture", "bytes",
              "wire B", "factor", "raw J", "comp J", "F*", "verdict");
  for (const auto& c : captures) {
    const Bytes data =
        workload::generate_kind(c.kind, c.bytes, /*seed=*/7, 0.0);
    // Real upload through the socket with the Fig. 10 block policy.
    const auto policy =
        core::make_selective_policy(core::EnergyModel::paper_11mbps());
    const std::size_t wire =
        net::upload(server.port(), c.name, data, policy);
    // Verify the proxy stored the original bytes.
    if (net::download(server.port(), c.name, "raw") != data) {
      std::fprintf(stderr, "upload verification failed for %s\n", c.name);
      return 1;
    }

    const double s = static_cast<double>(data.size()) / 1e6;
    const double factor =
        static_cast<double>(data.size()) / static_cast<double>(wire);
    const double e_raw = model.upload_energy_j(s);
    const double e_comp = std::min(
        model.sequential_energy_j(s, s / factor, /*sleep=*/true),
        model.interleaved_energy_j(s, s / factor));
    const double f_star = model.min_factor(s);
    std::printf("%-18s %9zu %9zu %7.2f | %9.3f %9.3f %9.2f | %s\n", c.name,
                data.size(), wire, factor, e_raw, e_comp, f_star,
                factor >= f_star && e_comp < e_raw ? "compress"
                                                   : "send raw");
  }
  server.stop();
  std::printf(
      "\nreading: with compression charged to the handheld's own CPU the "
      "break-even factor is ~2.6 (vs 1.13 for downloads) — only the "
      "text-like captures clear it; media uploads should go raw.\n");
  return 0;
}

// proxy_download: run a real proxy server on loopback TCP and download
// files in the three modes (raw / full deflate / selective container
// with streaming interleaved decode) — the paper's §2 topology with the
// radio replaced by localhost. Wire savings are real; energy numbers
// come from the simulator fed with the observed sizes.
//
//   ./examples/proxy_download
#include <cstdio>

#include "core/api.h"
#include "net/proxy.h"
#include "workload/corpus.h"

using namespace ecomp;

int main() {
  // Populate the proxy with a few corpus files (scaled down for speed).
  workload::Corpus corpus(0.1);
  const std::vector<std::string> names = {"news96.xml", "proxy.ps",
                                          "image01.jpg", "mail2"};
  net::FileStore store;
  for (const auto& n : names) store.put(n, corpus.file(n));

  const auto model = core::EnergyModel::paper_11mbps();
  net::ProxyServer server(std::move(store),
                          core::make_selective_policy(model));
  std::printf("proxy listening on 127.0.0.1:%u\n\n", server.port());

  const sim::TransferSimulator simulator;
  std::printf("%-14s %-10s %10s %10s %8s %7s %9s\n", "file", "mode", "wire B",
              "orig B", "factor", "blocks", "energy J");
  for (const auto& name : names) {
    workload::Corpus check(0.1);
    const Bytes& expected = check.file(name);
    for (const std::string mode : {"raw", "full", "selective"}) {
      net::DownloadStats stats;
      const Bytes got = net::download(server.port(), name, mode, &stats);
      if (got != expected) {
        std::fprintf(stderr, "MISMATCH %s %s\n", name.c_str(), mode.c_str());
        return 1;
      }
      // Energy for this transfer in the simulated 11 Mb/s environment.
      // Selective mode uses the true per-block decisions observed by
      // the streaming decoder (raw blocks only pay a copy pass).
      const double s = static_cast<double>(stats.bytes_decoded) / 1e6;
      const double sc = static_cast<double>(stats.bytes_on_wire) / 1e6;
      sim::TransferOptions opt;
      opt.interleave = mode == "selective";
      sim::TransferResult r;
      if (mode == "raw") {
        r = simulator.download_uncompressed(s);
      } else if (mode == "full") {
        r = simulator.download_compressed(s, sc, "deflate", opt);
      } else {
        std::vector<sim::BlockTransfer> blocks;
        for (const auto& b : stats.block_infos)
          blocks.push_back({static_cast<double>(b.raw_size) / 1e6,
                            static_cast<double>(b.payload_size) / 1e6,
                            b.compressed});
        r = simulator.download_selective(blocks, "deflate", opt);
      }
      std::printf("%-14s %-10s %10zu %10zu %8.2f %7zu %9.3f\n", name.c_str(),
                  mode.c_str(), stats.bytes_on_wire, stats.bytes_decoded,
                  stats.factor(), stats.blocks, r.energy_j);
    }
  }
  server.stop();
  std::printf("\nall downloads verified byte-identical\n");
  return 0;
}

// Quickstart: compress a synthetic web page with all three codecs, then
// let the energy model pick the transfer strategy.
//
//   ./examples/quickstart [size_kb]
#include <cstdio>
#include <cstdlib>

#include "core/api.h"
#include "workload/generator.h"

using namespace ecomp;

int main(int argc, char** argv) {
  const std::size_t size_kb =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 512;
  const Bytes page = workload::generate_kind(workload::FileKind::Xml,
                                             size_kb * 1024, /*seed=*/1, 0.3);
  std::printf("input: synthetic XML page, %zu bytes\n\n", page.size());

  // 1. Compare the three universal codecs.
  core::FileEstimate est;
  est.size_mb = static_cast<double>(page.size()) / 1e6;
  std::printf("%-10s %12s %10s\n", "codec", "compressed", "factor");
  for (const auto& name : compress::codec_names()) {
    const auto codec = compress::make_codec(name);
    const Bytes packed = codec->compress(page);
    const Bytes back = codec->decompress(packed);
    if (back != page) {
      std::fprintf(stderr, "roundtrip failed for %s\n", name.c_str());
      return 1;
    }
    const double factor =
        static_cast<double>(page.size()) / static_cast<double>(packed.size());
    std::printf("%-10s %12zu %10.2f\n", name.c_str(), packed.size(), factor);
    est.factors.emplace_back(name, factor);
  }

  // 2. Ask the planner for the cheapest transfer strategy on the
  // paper's iPAQ + 11 Mb/s WaveLAN environment.
  const auto model = core::EnergyModel::paper_11mbps();
  const core::TransferPlanner planner(model);
  const core::Plan plan = planner.plan(est);

  std::printf("\nenergy plan (iPAQ + 802.11b @ 11 Mb/s):\n");
  std::printf("  baseline (raw download): %.3f J\n", plan.baseline_energy_j);
  for (const auto& c : plan.considered)
    std::printf("  %-10s %-18s %8.3f J  %7.2f s\n",
                c.codec.empty() ? "-" : c.codec.c_str(),
                core::to_string(c.strategy), c.predicted_energy_j,
                c.predicted_time_s);
  std::printf("  chosen: %s / %s  (saves %.1f%%)\n",
              plan.chosen.codec.empty() ? "-" : plan.chosen.codec.c_str(),
              core::to_string(plan.chosen.strategy),
              100.0 * plan.saving_fraction);

  // 3. Thresholds the model derives (paper §4.3).
  std::printf("\nmodel thresholds:\n");
  std::printf("  min file size for any saving: %.0f bytes (paper: 3900)\n",
              model.min_file_mb() * 1e6);
  std::printf("  min factor at 1 MB:           %.2f\n", model.min_factor(1.0));
  std::printf("  sleep-vs-interleave crossover: F = %.2f (paper: 4.6)\n",
              model.sleep_crossover_factor());
  return 0;
}

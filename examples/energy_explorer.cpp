// energy_explorer: sweep file size × compression factor and render the
// model's compress/don't-compress decision boundary (Eq. 6), plus the
// §4.2 threshold quantities, for both link rates.
//
//   ./examples/energy_explorer
#include <cmath>
#include <cstdio>

#include "core/api.h"

using namespace ecomp;

namespace {

void decision_map(const core::EnergyModel& model, const char* title) {
  std::printf("%s\n", title);
  std::printf("  '#' = compress (interleaved) saves energy, '.' = ship raw\n");
  std::printf("  %8s  factor: 1.0 .. 8.0\n", "size");
  for (double s_kb = 1.0; s_kb <= 16384.0; s_kb *= 4.0) {
    const double s = s_kb / 1024.0;  // MB
    std::printf("  %6.0fKB  ", s_kb);
    for (double f = 1.0; f <= 8.0; f += 0.25)
      std::putchar(model.should_compress(s, f) ? '#' : '.');
    std::printf("   F*=%.2f\n", model.min_factor(s));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto m11 = core::EnergyModel::paper_11mbps();
  const auto m2 =
      core::EnergyModel::from_device(sim::DeviceModel::ipaq_2mbps());

  decision_map(m11, "11 Mb/s WaveLAN (paper's main environment)");
  decision_map(m2, "2 Mb/s WaveLAN (the §4.2 robustness setting)");

  std::printf("derived thresholds vs paper:\n");
  std::printf("  %-42s %10s %10s\n", "quantity", "model", "paper");
  std::printf("  %-42s %9.0fB %10s\n", "file-size threshold (never compress below)",
              m11.min_file_mb() * 1e6, "3900B");
  std::printf("  %-42s %10.2f %10s\n", "min factor, large file (1 MB)",
              m11.min_factor(1.0), "~1.13");
  std::printf("  %-42s %10.2f %10s\n", "sleep-vs-interleave crossover factor",
              m11.sleep_crossover_factor(), "4.6");
  std::printf("  %-42s %10.2f %10s\n", "idle-fill factor @ 2 Mb/s",
              m2.idle_fill_factor(), "27");

  std::printf("\nenergy vs factor for a 1 MB file (11 Mb/s):\n");
  std::printf("  %6s %12s %12s %12s %12s\n", "F", "raw J", "seq J",
              "interleave J", "paper Eq.5 J");
  for (double f : {1.0, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0}) {
    const double s = 1.0, sc = s / f;
    std::printf("  %6.1f %12.3f %12.3f %12.3f %12.3f\n", f,
                m11.download_energy_j(s), m11.sequential_energy_j(s, sc),
                m11.interleaved_energy_j(s, sc),
                core::EnergyModel::paper_eq5_11mbps(s, sc));
  }
  return 0;
}

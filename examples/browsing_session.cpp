// browsing_session: a whole user session (pages, images, documents,
// think time) under three proxy policies — never compress, gzip
// everything, or plan per file with the energy model — projected onto
// the iPAQ's battery.
//
//   ./examples/browsing_session [n_requests]
#include <cstdio>
#include <cstdlib>

#include "core/session.h"
#include "util/rng.h"
#include "workload/corpus.h"

using namespace ecomp;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 40;

  // Draw a browsing mix from the Table 2 corpus statistics (sizes and
  // paper factors; no need to generate bytes for a planning study).
  Rng rng(2003);
  std::vector<core::SessionRequest> requests;
  const auto& table = workload::table2();
  for (int i = 0; i < n; ++i) {
    const auto& f = table[rng.below(table.size())];
    core::SessionRequest r;
    r.name = f.name;
    r.size_mb = static_cast<double>(f.size_bytes) / 1e6;
    r.factors = {{"deflate", f.paper_gzip},
                 {"lzw", f.paper_lzw},
                 {"bwt", f.paper_bwt}};
    requests.push_back(std::move(r));
  }
  double total_mb = 0;
  for (const auto& r : requests) total_mb += r.size_mb;
  std::printf("session: %d requests, %.1f MB total, 8 s think time each\n\n",
              n, total_mb);

  const core::SessionSimulator sim(
      core::TransferPlanner(core::EnergyModel::paper_11mbps()),
      sim::TransferSimulator{}, core::SessionConfig{});
  const sim::BatteryModel battery = sim::BatteryModel::ipaq();

  std::printf("%-14s %12s %12s %12s %14s\n", "policy", "transfer J",
              "think J", "time s", "sessions/chg");
  for (auto policy :
       {core::SessionPolicy::Raw, core::SessionPolicy::AlwaysDeflate,
        core::SessionPolicy::Planned}) {
    const auto rep = sim.run(requests, policy);
    std::printf("%-14s %12.1f %12.1f %12.1f %14.1f\n",
                core::to_string(policy), rep.transfer_energy_j,
                rep.think_energy_j, rep.total_time_s,
                rep.sessions_per_charge(battery));
  }
  std::printf(
      "\nreading: the planner compresses only where the model predicts a "
      "saving, so it strictly dominates both blanket policies; the gap "
      "vs always-gzip comes from media files and tiny objects.\n");
  return 0;
}

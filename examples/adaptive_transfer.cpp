// adaptive_transfer: the Fig. 10/11 story on one file. A heterogeneous
// tar-like archive (text + media + random members) is compressed three
// ways — whole-file deflate, always-compress blocks, and the
// model-driven selective policy — and the per-block decisions plus the
// simulated download energies are printed.
//
//   ./examples/adaptive_transfer [size_kb]
#include <cstdio>
#include <cstdlib>

#include "compress/deflate.h"
#include "core/api.h"
#include "workload/generator.h"

using namespace ecomp;

int main(int argc, char** argv) {
  const std::size_t size_kb =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2048;
  const Bytes archive = workload::generate_kind(
      workload::FileKind::TarMixed, size_kb * 1024, /*seed=*/7, 0.0);
  const double s_mb = static_cast<double>(archive.size()) / 1e6;
  std::printf("input: mixed tar-like archive, %zu bytes\n\n", archive.size());

  const auto model = core::EnergyModel::paper_11mbps();

  // Whole-file deflate.
  const Bytes whole = compress::DeflateCodec().compress(archive);

  // Block-by-block, always compress vs model-driven selective.
  const auto always = compress::selective_compress(
      archive, compress::SelectivePolicy::always());
  const auto selective = compress::selective_compress(
      archive, core::make_selective_policy(model));

  std::printf("per-block decisions (selective policy, 128 KB blocks):\n");
  std::printf("  %5s %10s %10s %8s %s\n", "block", "raw B", "stored B",
              "factor", "decision");
  for (std::size_t i = 0; i < selective.blocks.size(); ++i) {
    const auto& b = selective.blocks[i];
    const auto& a = always.blocks[i];
    const double f = static_cast<double>(a.raw_size) /
                     static_cast<double>(a.payload_size);
    std::printf("  %5zu %10zu %10zu %8.2f %s\n", i, b.raw_size,
                b.payload_size, f,
                b.compressed ? "compress" : "ship raw");
  }

  // Verify and compare sizes + simulated energy.
  if (compress::selective_decompress(selective.container) != archive ||
      compress::selective_decompress(always.container) != archive) {
    std::fprintf(stderr, "roundtrip failed\n");
    return 1;
  }

  const sim::TransferSimulator simulator;
  auto blocks_of = [](const compress::SelectiveResult& r) {
    std::vector<sim::BlockTransfer> v;
    for (const auto& b : r.blocks)
      v.push_back({static_cast<double>(b.raw_size) / 1e6,
                   static_cast<double>(b.payload_size) / 1e6, b.compressed});
    return v;
  };
  sim::TransferOptions inter;
  inter.interleave = true;

  const auto e_raw = simulator.download_uncompressed(s_mb);
  const auto e_whole = simulator.download_compressed(
      s_mb, static_cast<double>(whole.size()) / 1e6, "deflate", inter);
  const auto e_always =
      simulator.download_selective(blocks_of(always), "deflate", inter);
  const auto e_sel =
      simulator.download_selective(blocks_of(selective), "deflate", inter);

  std::printf("\n%-24s %12s %10s %10s\n", "variant", "wire bytes", "time s",
              "energy J");
  std::printf("%-24s %12zu %10.2f %10.3f\n", "raw download", archive.size(),
              e_raw.time_s, e_raw.energy_j);
  std::printf("%-24s %12zu %10.2f %10.3f\n", "whole-file deflate",
              whole.size(), e_whole.time_s, e_whole.energy_j);
  std::printf("%-24s %12zu %10.2f %10.3f\n", "blocks, always compress",
              always.container.size(), e_always.time_s, e_always.energy_j);
  std::printf("%-24s %12zu %10.2f %10.3f\n", "blocks, selective (Fig.10)",
              selective.container.size(), e_sel.time_s, e_sel.energy_j);
  return 0;
}

// benchdiff — compare BENCH_*.json sidecar sets and gate regressions.
// See obs/benchdiff.h for the policy and exit codes.
#include <iostream>
#include <string>
#include <vector>

#include "obs/benchdiff.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return ecomp::obs::benchdiff_main(args, std::cout, std::cerr);
}

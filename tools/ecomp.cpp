// ecomp — command-line front end (see src/cli/cli.h for the commands).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ecomp::cli::run(args, std::cout, std::cerr);
}

// Ablation: LZ77 effort parameters (the gzip level knob the paper pins
// at -9). Shows compression factor vs host compress/decompress speed per
// level and the resulting modeled download energy — demonstrating the
// paper's observation that a higher level costs compression time but
// barely changes decompression cost.
#include <chrono>
#include <cstdio>

#include "common.h"
#include "compress/deflate.h"
#include "core/energy_model.h"
#include "workload/generator.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const Bytes data = workload::generate_kind(
      workload::FileKind::Xml,
      static_cast<std::size_t>(2 * 1024 * 1024 * corpus_scale() * 20),
      /*seed=*/9, 0.25);
  const double s = static_cast<double>(data.size()) / 1e6;
  const auto model = core::EnergyModel::paper_11mbps();

  std::printf("=== Ablation: deflate effort level on %.2f MB of XML ===\n\n",
              s);
  std::printf("%6s %8s %12s %12s %12s %12s\n", "level", "factor",
              "comp MB/s", "decomp MB/s", "E_intl J", "E_raw J");
  print_rule(70);

  using clock = std::chrono::steady_clock;
  for (int level : {1, 3, 5, 6, 7, 9}) {
    const compress::DeflateCodec codec(level);

    const auto t0 = clock::now();
    const Bytes packed = codec.compress(data);
    const auto t1 = clock::now();
    Bytes out = codec.decompress(packed);
    const auto t2 = clock::now();
    if (out != data) {
      std::fprintf(stderr, "roundtrip failure at level %d\n", level);
      return 1;
    }
    const double comp_s = std::chrono::duration<double>(t1 - t0).count();
    const double decomp_s = std::chrono::duration<double>(t2 - t1).count();
    const double sc = static_cast<double>(packed.size()) / 1e6;

    std::printf("%6d %8.3f %12.1f %12.1f %12.4f %12.4f\n", level, s / sc,
                s / comp_s, s / decomp_s, model.interleaved_energy_j(s, sc),
                model.download_energy_j(s));
  }
  std::printf(
      "\nreading: compression slows sharply with level while decompression "
      "speed is ~flat — why the paper compresses at -9 and charges only "
      "decompression to the handheld.\n");
  return 0;
}

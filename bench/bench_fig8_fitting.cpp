// Figure 8 reproduction: the two linear fits behind the model.
//  (a) decompression time td(s, sc) = a·s + b·sc + c — fitted from REAL
//      wall-clock decodes of this repo's deflate codec over the corpus
//      (the paper fits gzip on the iPAQ: 0.161/0.161/0.004, R² 96.7%,
//      avg err 3%, max 13%). Absolute coefficients differ (host CPU vs
//      206 MHz StrongARM); the affine shape and fit quality are the
//      reproduction target.
//  (b) download energy E(s) = α·s + β — fitted from simulated downloads
//      (paper: 3.519·s + 0.012, avg err 7.2%).
#include <cstdio>

#include "common.h"
#include "compress/deflate.h"
#include "core/calibration.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const double scale = corpus_scale();

  std::printf("=== Figure 8(a): decompression-time fit (host wall clock, "
              "real deflate codec) ===\n\n");
  std::vector<Bytes> samples;
  for (const auto& entry : workload::table2()) {
    if (!entry.large) continue;
    samples.push_back(workload::generate(entry, scale));
  }
  const compress::DeflateCodec codec(9);
  const auto td_fit =
      core::Calibrator::fit_decompress_time_host(codec, samples, 3);
  std::printf("  td = %.4f·s + %.4f·sc + %.4f   (s, sc in MB; seconds)\n",
              td_fit.a, td_fit.b, td_fit.c);
  std::printf("  R² = %.3f   (paper: 0.967)\n", td_fit.fit.r2);
  std::printf("  avg |rel err| = %.1f%% (paper 3%%), max = %.1f%% "
              "(paper 13%%)\n\n",
              100 * td_fit.fit.mean_abs_rel_error,
              100 * td_fit.fit.max_abs_rel_error);

  std::printf("=== Figure 8(b): download-energy fit (simulated sweep) ===\n\n");
  const core::Calibrator cal{sim::TransferSimulator{}};
  std::vector<double> sizes;
  for (double s = 0.02; s <= 10.0; s *= 1.3) sizes.push_back(s);
  const auto dl_fit = cal.fit_download_energy(sizes);
  std::printf("  E = %.3f·s + %.3f   (s in MB; joules)\n",
              dl_fit.joules_per_mb, dl_fit.startup_j);
  std::printf("  paper: E = 3.519·s + 0.012 (avg err 7.2%%)\n");
  std::printf("  R² = %.4f, avg |rel err| = %.1f%%\n\n", dl_fit.fit.r2,
              100 * dl_fit.fit.mean_abs_rel_error);

  std::printf("=== model-side consistency: regression recovers the CPU "
              "cost model exactly ===\n\n");
  const auto model_fit = cal.fit_decompress_time_model("deflate");
  std::printf("  td = %.4f·s + %.4f·sc + %.4f, R² = %.6f "
              "(generating coefficients: 0.161/0.161/0.004)\n",
              model_fit.a, model_fit.b, model_fit.c, model_fit.fit.r2);
  return 0;
}

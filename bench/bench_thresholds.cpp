// Eq. 5 / Eq. 6 reproduction: the model's closed-form constants and every
// threshold the paper derives in §4.2-4.3, compared against the printed
// values.
#include <cstdio>

#include "core/energy_model.h"

using namespace ecomp;
using namespace ecomp::core;

int main() {
  const auto m11 = EnergyModel::paper_11mbps();
  const auto m2 = EnergyModel::from_device(sim::DeviceModel::ipaq_2mbps());

  std::printf("=== Eq. 5: closed-form energy for interleaved compressed "
              "downloading ===\n\n");
  std::printf("our Eq. 3 evaluated with Table-1 parameters vs the paper's "
              "printed Eq. 5 (joules):\n");
  std::printf("%8s %8s | %12s %12s %9s\n", "s MB", "F", "ours", "paper",
              "delta");
  for (double s : {0.064, 0.5, 1.0, 4.0, 9.0}) {
    for (double f : {1.5, 3.0, 8.0}) {
      const double sc = s / f;
      const double ours = m11.interleaved_energy_j(s, sc);
      const double paper = EnergyModel::paper_eq5_11mbps(s, sc);
      std::printf("%8.3f %8.1f | %12.4f %12.4f %+8.1f%%\n", s, f, ours,
                  paper, 100 * (ours - paper) / paper);
    }
  }

  std::printf("\n=== Eq. 6 and §4.2-§4.3 thresholds ===\n\n");
  std::printf("%-52s %12s %12s\n", "quantity", "this repo", "paper");
  std::printf("%-52s %11.0fB %12s\n",
              "file-size threshold (no compression below)",
              m11.min_file_mb() * 1e6, "3900B");
  std::printf("%-52s %12.3f %12s\n", "min factor, 1 MB file (Eq. 6)",
              m11.min_factor(1.0), "~1.13");
  std::printf("%-52s %12.3f %12s\n", "min factor, 64 KB file (Eq. 6)",
              m11.min_factor(0.064), "~1.30+");
  std::printf("%-52s %12.2f %12s\n",
              "sleep-vs-interleave crossover factor",
              m11.sleep_crossover_factor(), "4.6");
  std::printf("%-52s %12.2f %12s\n", "idle-fill factor @ 2 Mb/s",
              m2.idle_fill_factor(), "27");
  std::printf("%-52s %12.2f %12s\n", "idle-fill factor @ 11 Mb/s",
              m11.idle_fill_factor(), "(small)");

  std::printf("\n=== Eq. 6 decision agreement across the (s, F) plane ===\n\n");
  int agree = 0, total = 0;
  for (double s = 0.001; s < 10.0; s *= 1.3)
    for (double f = 1.02; f < 30.0; f *= 1.15) {
      ++total;
      if (m11.should_compress(s, f) == EnergyModel::paper_eq6(s, f)) ++agree;
    }
  std::printf("model vs paper Eq. 6 agree on %d of %d grid points (%.1f%%)\n",
              agree, total, 100.0 * agree / total);
  return 0;
}

// Figures 3 and 4 reproduction: the phase timelines behind the energy
// model — plain compressed download (idle gaps wasted) vs interleaving
// in both regimes (decompression faster / slower than the gaps).
// Rendered from the simulator's actual phase ledger.
//   r = receiving (active), g = idle gap, d = decompressing
#include <cstdio>

#include "sim/transfer.h"

using namespace ecomp::sim;

namespace {

void show(const char* title, const TransferResult& r, double s_per_char) {
  std::printf("%s\n  %s\n", title, r.timeline.render_ascii(s_per_char).c_str());
  std::printf("  time %.2f s   energy %.3f J   (download %.2f s, "
              "decompress %.2f s)\n\n",
              r.time_s, r.energy_j, r.download_time_s, r.decompress_time_s);
}

}  // namespace

int main() {
  const TransferSimulator sim;
  const double scale = 0.05;  // seconds per character

  std::printf("=== Figure 3: download then decompress (no interleaving) ===\n\n");
  TransferOptions seq;
  show("2 MB file, factor 3, sequential:",
       sim.download_compressed(2.0, 2.0 / 3.0, "deflate", seq), scale);

  std::printf(
      "=== Figure 4(a): interleaving, decompression faster than the "
      "gaps (low factor => lots of idle) ===\n\n");
  TransferOptions inter;
  inter.interleave = true;
  show("2 MB file, factor 1.25, interleaved:",
       sim.download_compressed(2.0, 1.6, "deflate", inter), scale);

  std::printf(
      "=== Figure 4(b): interleaving, decompression slower than the "
      "gaps (high factor => little idle) ===\n\n");
  show("2 MB file, factor 10, interleaved:",
       sim.download_compressed(2.0, 0.2, "deflate", inter), scale);

  std::printf(
      "reading: interleaving converts 'g' time into 'd' time; with a "
      "high factor the gaps fill completely and the tail spills past the "
      "download (Eq. 3's two branches).\n");
  return 0;
}

// Figures 3 and 4 reproduction: the phase timelines behind the energy
// model — plain compressed download (idle gaps wasted) vs interleaving
// in both regimes (decompression faster / slower than the gaps).
// Rendered from the simulator's actual phase ledger.
//   r = receiving (active), g = idle gap, d = decompressing
#include <cstdio>
#include <fstream>

#include "common.h"
#include "obs/trace.h"
#include "sim/timeline_trace.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::sim;

namespace {

void show(const char* title, const TransferResult& r, double s_per_char) {
  std::printf("%s\n  %s\n", title, r.timeline.render_ascii(s_per_char).c_str());
  std::printf("  time %.2f s   energy %.3f J   (download %.2f s, "
              "decompress %.2f s)\n\n",
              r.time_s, r.energy_j, r.download_time_s, r.decompress_time_s);
}

}  // namespace

int main() {
  const TransferSimulator sim;
  const double scale = 0.05;  // seconds per character
  obs::Tracer::global().enable();

  std::printf("=== Figure 3: download then decompress (no interleaving) ===\n\n");
  TransferOptions seq;
  const auto r_seq = sim.download_compressed(2.0, 2.0 / 3.0, "deflate", seq);
  show("2 MB file, factor 3, sequential:", r_seq, scale);

  std::printf(
      "=== Figure 4(a): interleaving, decompression faster than the "
      "gaps (low factor => lots of idle) ===\n\n");
  TransferOptions inter;
  inter.interleave = true;
  const auto r_fast = sim.download_compressed(2.0, 1.6, "deflate", inter);
  show("2 MB file, factor 1.25, interleaved:", r_fast, scale);

  std::printf(
      "=== Figure 4(b): interleaving, decompression slower than the "
      "gaps (high factor => little idle) ===\n\n");
  const auto r_slow = sim.download_compressed(2.0, 0.2, "deflate", inter);
  show("2 MB file, factor 10, interleaved:", r_slow, scale);

  std::printf(
      "reading: interleaving converts 'g' time into 'd' time; with a "
      "high factor the gaps fill completely and the tail spills past the "
      "download (Eq. 3's two branches).\n");

  // Stack the three scenario timelines on the simulated-seconds track of
  // one Chrome trace so they can be compared side by side in Perfetto.
  auto& tracer = obs::Tracer::global();
  double off = 0.0;
  off += timeline_to_trace(r_seq.timeline, tracer, "fig3.sequential", off) + 1.0;
  off += timeline_to_trace(r_fast.timeline, tracer, "fig4a.interleaved", off) + 1.0;
  timeline_to_trace(r_slow.timeline, tracer, "fig4b.interleaved", off);

  const std::string trace_path =
      bench::bench_output_dir() + "/BENCH_fig3_timeline.trace.json";
  std::ofstream trace_out(trace_path, std::ios::trunc);
  if (trace_out) {
    trace_out << tracer.to_chrome_json() << "\n";
    std::fprintf(stderr, "wrote %s\n", trace_path.c_str());
  }

  bench::BenchReport report("fig3_timeline");
  report.headline("sequential_time_s", r_seq.time_s);
  report.headline("sequential_energy_j", r_seq.energy_j);
  report.headline("interleave_fast_time_s", r_fast.time_s);
  report.headline("interleave_fast_energy_j", r_fast.energy_j);
  report.headline("interleave_slow_time_s", r_slow.time_s);
  report.headline("interleave_slow_energy_j", r_slow.energy_j);
  report.headline("trace_events", static_cast<double>(tracer.event_count()));
  report.note("trace", trace_path);
  report.energy("sequential", r_seq.timeline);
  report.energy("interleave_fast", r_fast.timeline);
  report.energy("interleave_slow", r_slow.timeline);
  report.write();
  return 0;
}

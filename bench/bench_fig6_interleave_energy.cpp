// Figure 6 reproduction: effect of interleaving on energy. Same bars as
// Figure 5, in joules relative to the raw download.
#include <cstdio>

#include "common.h"
#include "compress/deflate.h"
#include "compress/selective.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const double scale = corpus_scale();
  const sim::TransferSimulator simulator;
  const compress::DeflateCodec codec(9);

  std::printf(
      "=== Figure 6: effect of interleaving on energy (relative to raw "
      "download) ===\n\n");
  std::printf("%-24s %7s | %8s %10s %10s\n", "file", "gzip F", "gzip",
              "zlib", "zlib+intl");
  print_rule(70);

  int worse_than_raw = 0;
  bool small_header = false;
  for (const auto& entry : workload::table2()) {
    const Bytes data = workload::generate(entry, scale);
    const double s = static_cast<double>(data.size()) / 1e6;
    if (!entry.large && !small_header) {
      std::printf("%-24s (small files)\n", "");
      small_header = true;
    }

    const double sc =
        static_cast<double>(codec.compress(data).size()) / 1e6;
    const auto blocks_res = compress::selective_compress(
        data, compress::SelectivePolicy::always());
    std::vector<sim::BlockTransfer> blocks;
    for (const auto& b : blocks_res.blocks)
      blocks.push_back({static_cast<double>(b.raw_size) / 1e6,
                        static_cast<double>(b.payload_size) / 1e6,
                        b.compressed});

    const double e_raw = simulator.download_uncompressed(s).energy_j;
    sim::TransferOptions seq;
    sim::TransferOptions intl;
    intl.interleave = true;
    const double e_gzip =
        simulator.download_compressed(s, sc, "deflate", seq).energy_j;
    const double e_zlib =
        simulator.download_selective(blocks, "deflate", seq).energy_j;
    const double e_intl =
        simulator.download_selective(blocks, "deflate", intl).energy_j;
    if (e_intl > e_raw) ++worse_than_raw;

    std::printf("%-24s %7.2f | %8.2f %10.2f %10.2f\n", entry.name.c_str(),
                s / sc, e_gzip / e_raw, e_zlib / e_raw, e_intl / e_raw);
  }
  std::printf(
      "\nfiles where even interleaved compression loses to raw: %d — the "
      "low-factor cases (paper §4.2 reports 2%%-14%% net loss there), "
      "which Fig. 10/11's selective scheme then eliminates.\n",
      worse_than_raw);
  return 0;
}

// Table 1 reproduction: the power-state table of the iPAQ + WaveLAN
// model, plus the effective powers the energy equations are built from.
#include <cstdio>

#include "sim/device.h"

using namespace ecomp::sim;

int main() {
  std::printf("=== Table 1: power parameters (iPAQ 3650 + WaveLAN, 5 V) ===\n\n");
  const auto pm = PowerModel::ipaq_wavelan();
  std::printf("%-6s %-6s %-12s %10s %14s\n", "iPAQ", "WLAN", "PowerSaving",
              "avg mA", "range mA");
  for (const auto& e : pm.entries()) {
    char range[32];
    if (e.min_ma == e.max_ma)
      std::snprintf(range, sizeof range, "-");
    else
      std::snprintf(range, sizeof range, "%.0f - %.0f", e.min_ma, e.max_ma);
    std::printf("%-6s %-6s %-12s %10.0f %14s\n", to_string(e.cpu),
                to_string(e.radio), e.power_saving ? "on" : "off", e.avg_ma,
                range);
  }

  const auto dev = DeviceModel::ipaq_11mbps();
  std::printf("\nderived effective powers (paper values in parentheses):\n");
  std::printf("  idle during receive gaps  pi = %.2f W   (1.55)\n",
              dev.gap_power_w(false));
  std::printf("  decompress, radio idle    pd = %.2f W   (2.85)\n",
              dev.decompress_power_w(false));
  std::printf("  decompress, power-saving  pd = %.2f W   (1.70)\n",
              dev.decompress_power_w(true));
  std::printf("  receive+copy energy       m  = %.3f J/MB (2.486)\n",
              dev.recv_energy_per_mb(false));
  std::printf("  network start-up          cs = %.3f J   (0.012)\n",
              dev.radio.startup_energy_j);
  return 0;
}

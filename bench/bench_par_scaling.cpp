// Thread-pool scaling of the selective codec: compress/decompress the
// whole Table 2 corpus as one stream at 1/2/4/8 pool threads, checking
// that every thread count produces a byte-identical container (the
// reorder buffer's determinism guarantee) and reporting the speedup
// curve over the serial path.
//
// Wall-clock speedups are machine-dependent, so the sidecar reports
// them under ratio keys (no _s suffix) that benchdiff surfaces but
// never gates on; the identical_t* flags are exact and portable.
// Exit code 1 if any thread count diverges from the serial bytes.
#include <chrono>
#include <cstdio>

#include "common.h"
#include "compress/selective.h"
#include "par/thread_pool.h"
#include "util/crc32.h"

using namespace ecomp;
using namespace ecomp::bench;

namespace {

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Best-of-3 wall time of `fn` (seconds).
template <class F>
double best_of_3(F&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_s();
    fn();
    best = std::min(best, now_s() - t0);
  }
  return best;
}

}  // namespace

int main() {
  const double scale = corpus_scale();
  Bytes input;
  for (const auto& entry : workload::table2()) {
    const Bytes data = workload::generate(entry, scale);
    input.insert(input.end(), data.begin(), data.end());
  }
  const auto policy = compress::SelectivePolicy::always();
  constexpr int kLevel = 9;

  const unsigned hw = par::default_threads();
  std::printf(
      "=== Parallel selective codec scaling (input %.2f MB, %u hardware "
      "thread%s) ===\n\n",
      static_cast<double>(input.size()) / 1e6, hw, hw == 1 ? "" : "s");
  if (hw < 4)
    std::printf(
        "note: speedup saturates at the hardware thread count; on this "
        "machine expect ~%ux at best.\n\n", hw);

  // Serial reference: the threads==1 call takes the pool-free path, so
  // it doubles as both the baseline and the 1-thread configuration.
  Bytes serial;
  const double t_serial = best_of_3([&] {
    serial = compress::selective_compress(input, policy,
                                          compress::kDefaultBlockSize,
                                          kLevel, 1)
                 .container;
  });
  const std::uint32_t serial_crc = crc32(serial);
  const std::size_t n_blocks = compress::selective_block_info(serial).size();

  BenchReport report("par_scaling");
  report.headline("blocks", static_cast<double>(n_blocks));
  report.headline("input_mb", static_cast<double>(input.size()) / 1e6);
  report.headline("hw_threads", static_cast<double>(hw));

  std::printf("%8s %10s %9s %10s\n", "threads", "compress", "speedup",
              "identical");
  print_rule(44);
  bool all_identical = true;
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    Bytes container;
    const double ts = best_of_3([&] {
      container = compress::selective_compress(
                      input, policy, compress::kDefaultBlockSize, kLevel, t)
                      .container;
    });
    const bool identical =
        container.size() == serial.size() && crc32(container) == serial_crc;
    all_identical = all_identical && identical;
    const double speedup = ts > 0.0 ? t_serial / ts : 0.0;
    std::printf("%8u %9.3fs %8.2fx %10s\n", t, ts, speedup,
                identical ? "yes" : "NO");
    char key[32];
    std::snprintf(key, sizeof key, "speedup_t%u", t);
    report.headline(key, speedup);
    std::snprintf(key, sizeof key, "identical_t%u", t);
    report.headline(key, identical ? 1.0 : 0.0);
    if (t == 1) {
      // The pool only engages at >= 2 threads, so the 1-thread run IS
      // the serial path; this measures noise, not pool overhead.
      const double overhead_pct = 100.0 * (ts / t_serial - 1.0);
      report.headline("overhead_t1_pct", overhead_pct);
      std::printf("%8s 1-thread overhead vs serial: %+.1f%%\n", "",
                  overhead_pct);
    }
  }

  // Decompression scales the same way (independently decodable blocks).
  Bytes decoded_serial;
  const double td_serial = best_of_3(
      [&] { decoded_serial = compress::selective_decompress(serial, 1); });
  Bytes decoded_par;
  const double td_par = best_of_3(
      [&] { decoded_par = compress::selective_decompress(serial, 4); });
  const bool decomp_identical = decoded_par == decoded_serial &&
                                decoded_serial == input;
  all_identical = all_identical && decomp_identical;
  std::printf("\ndecompress: serial %.3fs, 4 threads %.3fs (%.2fx, %s)\n",
              td_serial, td_par, td_par > 0.0 ? td_serial / td_par : 0.0,
              decomp_identical ? "identical" : "DIVERGED");
  report.headline("decomp_speedup_t4",
                  td_par > 0.0 ? td_serial / td_par : 0.0);
  report.headline("identical_decomp", decomp_identical ? 1.0 : 0.0);
  report.write();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel output diverged from the serial bytes\n");
    return 1;
  }
  return 0;
}

// Figure 12 reproduction: time when compressing on demand at the proxy,
// large files. Bars: gzip / compress (proxy compresses fully, then the
// device downloads and decompresses) vs zlib (block-adaptive, proxy
// compression overlapped with sending, device decode interleaved).
// Cells show compress-wait + download + decompress = total, relative to
// downloading the raw file.
#include <cstdio>

#include "common.h"
#include "obs/histogram.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  auto files = measure_corpus(corpus_scale(), {"deflate", "lzw"},
                              /*large_only=*/true);
  sort_for_figures(files);
  const sim::TransferSimulator simulator;

  std::printf(
      "=== Figure 12: time, compression on demand (relative to raw "
      "download) ===\n\n");
  std::printf("%-24s | %-26s | %-26s | %-10s\n", "file",
              "gzip  (wait+dl+dec=tot)", "compress (wait+dl+dec=tot)",
              "zlib+intl");
  print_rule(100);

  // Simulated per-request latency distribution across all files ×
  // on-demand schemes, fed through the serving-telemetry histogram.
  // The inputs are the deterministic simulator's request times, so the
  // quantiles (bucket midpoints) are machine-independent and gateable.
  obs::SlidingHistogram req_us;
  BenchReport report("fig12_ondemand_time");
  int rows = 0;
  double zlib_rel_sum = 0.0;

  for (const auto& f : files) {
    const double s = f.mb();
    const double t_raw = simulator.download_uncompressed(s).time_s;

    auto seq_cell = [&](const std::string& codec) {
      sim::TransferOptions opt;
      opt.on_demand = sim::OnDemand::Sequential;
      const auto r = simulator.download_compressed(
          s, f.compressed_mb(codec), codec, opt);
      req_us.record(static_cast<std::uint64_t>(r.time_s * 1e6));
      char buf[64];
      std::snprintf(buf, sizeof buf, "%5.2f+%5.2f+%5.2f=%5.2f",
                    r.wait_time_s / t_raw, r.download_time_s / t_raw,
                    r.decompress_time_s / t_raw, r.time_s / t_raw);
      return std::string(buf);
    };
    sim::TransferOptions zl;
    zl.on_demand = sim::OnDemand::Overlapped;
    zl.interleave = true;
    const auto z = simulator.download_compressed(
        s, f.compressed_mb("deflate"), "deflate", zl);
    req_us.record(static_cast<std::uint64_t>(z.time_s * 1e6));

    std::printf("%-24s | %-26s | %-26s | %10.2f\n", f.entry.name.c_str(),
                seq_cell("deflate").c_str(), seq_cell("lzw").c_str(),
                z.time_s / t_raw);
    report.headline("rel_total_zlib_intl_" + f.entry.name, z.time_s / t_raw);
    zlib_rel_sum += z.time_s / t_raw;
    ++rows;
  }
  std::printf(
      "\nreading: the proxy (1 GHz P-III) compresses faster than the "
      "0.6 MB/s link drains for gzip/compress at moderate factors, so "
      "the zlib column's overlap hides compression almost completely "
      "(paper §5).\n");

  report.headline("files", rows);
  if (rows) report.headline("mean_rel_total_zlib_intl", zlib_rel_sum / rows);
  report.headline("req_latency_p50_ms", req_us.quantile(0.5) / 1000.0);
  report.headline("req_latency_p99_ms", req_us.quantile(0.99) / 1000.0);
  report.write();
  return 0;
}

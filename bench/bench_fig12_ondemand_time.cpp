// Figure 12 reproduction: time when compressing on demand at the proxy,
// large files. Bars: gzip / compress (proxy compresses fully, then the
// device downloads and decompresses) vs zlib (block-adaptive, proxy
// compression overlapped with sending, device decode interleaved).
// Cells show compress-wait + download + decompress = total, relative to
// downloading the raw file.
#include <cstdio>
#include <vector>

#include "common.h"
#include "obs/histogram.h"
#include "sim/transfer.h"

#if defined(ECOMP_OBS_ENABLED)
#include "obs/rules.h"
#endif

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  auto files = measure_corpus(corpus_scale(), {"deflate", "lzw"},
                              /*large_only=*/true);
  sort_for_figures(files);
  const sim::TransferSimulator simulator;

  std::printf(
      "=== Figure 12: time, compression on demand (relative to raw "
      "download) ===\n\n");
  std::printf("%-24s | %-26s | %-26s | %-10s\n", "file",
              "gzip  (wait+dl+dec=tot)", "compress (wait+dl+dec=tot)",
              "zlib+intl");
  print_rule(100);

  // Simulated per-request latency distribution across all files ×
  // on-demand schemes, fed through the serving-telemetry histogram.
  // The inputs are the deterministic simulator's request times, so the
  // quantiles (bucket midpoints) are machine-independent and gateable.
  obs::SlidingHistogram req_us;
  BenchReport report("fig12_ondemand_time");
  int rows = 0;
  double zlib_rel_sum = 0.0;
  std::vector<double> zlib_rel;

  for (const auto& f : files) {
    const double s = f.mb();
    const double t_raw = simulator.download_uncompressed(s).time_s;

    auto seq_cell = [&](const std::string& codec) {
      sim::TransferOptions opt;
      opt.on_demand = sim::OnDemand::Sequential;
      const auto r = simulator.download_compressed(
          s, f.compressed_mb(codec), codec, opt);
      req_us.record(static_cast<std::uint64_t>(r.time_s * 1e6));
      char buf[64];
      std::snprintf(buf, sizeof buf, "%5.2f+%5.2f+%5.2f=%5.2f",
                    r.wait_time_s / t_raw, r.download_time_s / t_raw,
                    r.decompress_time_s / t_raw, r.time_s / t_raw);
      return std::string(buf);
    };
    sim::TransferOptions zl;
    zl.on_demand = sim::OnDemand::Overlapped;
    zl.interleave = true;
    const auto z = simulator.download_compressed(
        s, f.compressed_mb("deflate"), "deflate", zl);
    req_us.record(static_cast<std::uint64_t>(z.time_s * 1e6));

    std::printf("%-24s | %-26s | %-26s | %10.2f\n", f.entry.name.c_str(),
                seq_cell("deflate").c_str(), seq_cell("lzw").c_str(),
                z.time_s / t_raw);
    report.headline("rel_total_zlib_intl_" + f.entry.name, z.time_s / t_raw);
    zlib_rel_sum += z.time_s / t_raw;
    zlib_rel.push_back(z.time_s / t_raw);
    ++rows;
  }
  std::printf(
      "\nreading: the proxy (1 GHz P-III) compresses faster than the "
      "0.6 MB/s link drains for gzip/compress at moderate factors, so "
      "the zlib column's overlap hides compression almost completely "
      "(paper §5).\n");

  report.headline("files", rows);
  if (rows) report.headline("mean_rel_total_zlib_intl", zlib_rel_sum / rows);
  report.headline("req_latency_p50_ms", req_us.quantile(0.5) / 1000.0);
  report.headline("req_latency_p99_ms", req_us.quantile(0.99) / 1000.0);
  // Watchdog sweep over the per-file relative totals, mirroring the live
  // proxy's SLO machinery. Incompressible inputs legitimately pay more
  // than raw (compressing random data buys nothing), so the SLO is the
  // bounded-worst-case property: overlapped zlib never costs more than
  // 50% over a raw download, on any file. The drift rule guards against
  // one file regressing hard against the rest. Deterministic inputs →
  // 0/0 is gateable by benchdiff.
  std::size_t alerts_slo = 0, alerts_drift = 0;
#if defined(ECOMP_OBS_ENABLED)
  {
    obs::SeriesStore store;
    double t = 0.0;
    for (double v : zlib_rel) store.append("bench.rel_total", t++, v);
    obs::Watchdog dog;
    obs::Rule slo;
    slo.name = "rel-time-slo";
    slo.series = "bench.rel_total";
    slo.threshold = 1.5;
    slo.for_n = 1;
    dog.add_rule(slo);
    obs::Rule drift;
    drift.kind = obs::RuleKind::Drift;
    drift.name = "rel-time-drift";
    drift.series = "bench.rel_total";
    drift.z = 8.0;
    drift.warmup = 4;
    dog.add_rule(drift);
    std::vector<obs::Alert> fired;
    dog.evaluate(store, &fired);
    for (const obs::Alert& a : fired)
      (a.rule == "rel-time-slo" ? alerts_slo : alerts_drift) += 1;
  }
#endif
  report.headline("alerts_slo", static_cast<double>(alerts_slo));
  report.headline("alerts_drift", static_cast<double>(alerts_drift));
  report.write();
  return 0;
}

// Figure 12 reproduction: time when compressing on demand at the proxy,
// large files. Bars: gzip / compress (proxy compresses fully, then the
// device downloads and decompresses) vs zlib (block-adaptive, proxy
// compression overlapped with sending, device decode interleaved).
// Cells show compress-wait + download + decompress = total, relative to
// downloading the raw file.
#include <cstdio>

#include "common.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  auto files = measure_corpus(corpus_scale(), {"deflate", "lzw"},
                              /*large_only=*/true);
  sort_for_figures(files);
  const sim::TransferSimulator simulator;

  std::printf(
      "=== Figure 12: time, compression on demand (relative to raw "
      "download) ===\n\n");
  std::printf("%-24s | %-26s | %-26s | %-10s\n", "file",
              "gzip  (wait+dl+dec=tot)", "compress (wait+dl+dec=tot)",
              "zlib+intl");
  print_rule(100);

  for (const auto& f : files) {
    const double s = f.mb();
    const double t_raw = simulator.download_uncompressed(s).time_s;

    auto seq_cell = [&](const std::string& codec) {
      sim::TransferOptions opt;
      opt.on_demand = sim::OnDemand::Sequential;
      const auto r = simulator.download_compressed(
          s, f.compressed_mb(codec), codec, opt);
      char buf[64];
      std::snprintf(buf, sizeof buf, "%5.2f+%5.2f+%5.2f=%5.2f",
                    r.wait_time_s / t_raw, r.download_time_s / t_raw,
                    r.decompress_time_s / t_raw, r.time_s / t_raw);
      return std::string(buf);
    };
    sim::TransferOptions zl;
    zl.on_demand = sim::OnDemand::Overlapped;
    zl.interleave = true;
    const auto z = simulator.download_compressed(
        s, f.compressed_mb("deflate"), "deflate", zl);

    std::printf("%-24s | %-26s | %-26s | %10.2f\n", f.entry.name.c_str(),
                seq_cell("deflate").c_str(), seq_cell("lzw").c_str(),
                z.time_s / t_raw);
  }
  std::printf(
      "\nreading: the proxy (1 GHz P-III) compresses faster than the "
      "0.6 MB/s link drains for gzip/compress at moderate factors, so "
      "the zlib column's overlap hides compression almost completely "
      "(paper §5).\n");
  return 0;
}

// Figure 13 reproduction: energy when compressing on demand, large
// files. Same bars as Figure 12, in joules relative to raw download.
// The device pays idle power while it waits for the proxy; the zlib
// overlap eliminates that waiting.
#include <cstdio>

#include "common.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  auto files = measure_corpus(corpus_scale(), {"deflate", "lzw"},
                              /*large_only=*/true);
  sort_for_figures(files);
  const sim::TransferSimulator simulator;

  std::printf(
      "=== Figure 13: energy, compression on demand (relative to raw "
      "download) ===\n\n");
  std::printf("%-24s %7s | %8s %10s %10s | %s\n", "file", "gzip F", "gzip",
              "compress", "zlib+intl", "winner");
  print_rule(86);

  int gzip_or_zlib_wins = 0, rows = 0;
  for (const auto& f : files) {
    const double s = f.mb();
    const double e_raw = simulator.download_uncompressed(s).energy_j;

    auto seq = [&](const std::string& codec) {
      sim::TransferOptions opt;
      opt.on_demand = sim::OnDemand::Sequential;
      return simulator
                 .download_compressed(s, f.compressed_mb(codec), codec, opt)
                 .energy_j /
             e_raw;
    };
    sim::TransferOptions zl;
    zl.on_demand = sim::OnDemand::Overlapped;
    zl.interleave = true;
    const double g = seq("deflate");
    const double c = seq("lzw");
    const double z = simulator
                         .download_compressed(
                             s, f.compressed_mb("deflate"), "deflate", zl)
                         .energy_j /
                     e_raw;
    const char* winner = z <= g && z <= c ? "zlib" : g <= c ? "gzip"
                                                            : "compress";
    ++rows;
    if (g <= c || z <= c) ++gzip_or_zlib_wins;
    std::printf("%-24s %7.2f | %8.2f %10.2f %10.2f | %s\n",
                f.entry.name.c_str(), f.factor.at("deflate"), g, c, z,
                winner);
  }
  std::printf(
      "\ngzip-family beats compress on %d of %d files; the revised zlib's "
      "interleaving masks compression entirely, so no energy is wasted "
      "waiting for compressed data (paper §5).\n",
      gzip_or_zlib_wins, rows);
  return 0;
}

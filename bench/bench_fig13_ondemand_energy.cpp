// Figure 13 reproduction: energy when compressing on demand, large
// files. Same bars as Figure 12, in joules relative to raw download.
// The device pays idle power while it waits for the proxy; the zlib
// overlap eliminates that waiting.
#include <cstdio>
#include <vector>

#include "common.h"
#include "obs/histogram.h"
#include "sim/transfer.h"

#if defined(ECOMP_OBS_ENABLED)
#include "obs/rules.h"
#endif

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  auto files = measure_corpus(corpus_scale(), {"deflate", "lzw"},
                              /*large_only=*/true);
  sort_for_figures(files);
  const sim::TransferSimulator simulator;

  std::printf(
      "=== Figure 13: energy, compression on demand (relative to raw "
      "download) ===\n\n");
  std::printf("%-24s %7s | %8s %10s %10s | %s\n", "file", "gzip F", "gzip",
              "compress", "zlib+intl", "winner");
  print_rule(86);

  // Same request-latency histogram the live proxy keeps, fed with the
  // simulator's deterministic request times — the sidecar's quantiles
  // track how the on-demand serving latency profile shifts when the
  // energy model changes (bucket midpoints, machine-independent).
  obs::SlidingHistogram req_us;
  BenchReport report("fig13_ondemand_energy");
  double zlib_rel_sum = 0.0;
  std::vector<double> zlib_rel;

  int gzip_or_zlib_wins = 0, rows = 0;
  for (const auto& f : files) {
    const double s = f.mb();
    const double e_raw = simulator.download_uncompressed(s).energy_j;

    auto seq = [&](const std::string& codec) {
      sim::TransferOptions opt;
      opt.on_demand = sim::OnDemand::Sequential;
      const auto r = simulator.download_compressed(
          s, f.compressed_mb(codec), codec, opt);
      req_us.record(static_cast<std::uint64_t>(r.time_s * 1e6));
      return r.energy_j / e_raw;
    };
    sim::TransferOptions zl;
    zl.on_demand = sim::OnDemand::Overlapped;
    zl.interleave = true;
    const double g = seq("deflate");
    const double c = seq("lzw");
    const auto zr = simulator.download_compressed(
        s, f.compressed_mb("deflate"), "deflate", zl);
    req_us.record(static_cast<std::uint64_t>(zr.time_s * 1e6));
    const double z = zr.energy_j / e_raw;
    const char* winner = z <= g && z <= c ? "zlib" : g <= c ? "gzip"
                                                            : "compress";
    ++rows;
    if (g <= c || z <= c) ++gzip_or_zlib_wins;
    std::printf("%-24s %7.2f | %8.2f %10.2f %10.2f | %s\n",
                f.entry.name.c_str(), f.factor.at("deflate"), g, c, z,
                winner);
    report.headline("rel_energy_zlib_intl_" + f.entry.name, z);
    zlib_rel_sum += z;
    zlib_rel.push_back(z);
  }
  std::printf(
      "\ngzip-family beats compress on %d of %d files; the revised zlib's "
      "interleaving masks compression entirely, so no energy is wasted "
      "waiting for compressed data (paper §5).\n",
      gzip_or_zlib_wins, rows);

  report.headline("files", rows);
  report.headline("gzip_or_zlib_wins", gzip_or_zlib_wins);
  if (rows) report.headline("mean_rel_energy_zlib_intl", zlib_rel_sum / rows);
  report.headline("req_latency_p50_ms", req_us.quantile(0.5) / 1000.0);
  report.headline("req_latency_p99_ms", req_us.quantile(0.99) / 1000.0);
  // Watchdog sweep over the per-file relative energies, mirroring the
  // live proxy's SLO machinery. Incompressible inputs legitimately cost
  // more than raw (the paper's own caveat), so the SLO is the bounded-
  // worst-case property: on-demand zlib never spends more than 50% over
  // a raw download on any file. The drift rule guards against one file
  // regressing hard against the rest. Deterministic inputs → 0/0 is
  // gateable by benchdiff; any firing means the model or codec moved.
  std::size_t alerts_slo = 0, alerts_drift = 0;
#if defined(ECOMP_OBS_ENABLED)
  {
    obs::SeriesStore store;
    double t = 0.0;
    for (double v : zlib_rel) store.append("bench.rel_energy", t++, v);
    obs::Watchdog dog;
    obs::Rule slo;
    slo.name = "rel-energy-slo";
    slo.series = "bench.rel_energy";
    slo.threshold = 1.5;
    slo.for_n = 1;
    dog.add_rule(slo);
    obs::Rule drift;
    drift.kind = obs::RuleKind::Drift;
    drift.name = "rel-energy-drift";
    drift.series = "bench.rel_energy";
    drift.z = 8.0;
    drift.warmup = 4;
    dog.add_rule(drift);
    std::vector<obs::Alert> fired;
    dog.evaluate(store, &fired);
    for (const obs::Alert& a : fired)
      (a.rule == "rel-energy-slo" ? alerts_slo : alerts_drift) += 1;
  }
#endif
  report.headline("alerts_slo", static_cast<double>(alerts_slo));
  report.headline("alerts_drift", static_cast<double>(alerts_drift));
  report.write();
  return 0;
}

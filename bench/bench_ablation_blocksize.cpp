// Ablation: compression-buffer block size. The paper fixes 0.128 MB;
// this sweep shows the trade-off that choice sits on — smaller blocks
// start interleaving sooner (less unusable first-block idle) and adapt
// at finer grain, but pay more per-block overhead and lose LZ context
// at block boundaries.
#include <cstdio>

#include "common.h"
#include "compress/selective.h"
#include "core/planner.h"
#include "sim/transfer.h"
#include "workload/generator.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const Bytes archive = workload::generate_kind(
      workload::FileKind::TarMixed,
      static_cast<std::size_t>(4 * 1024 * 1024 * corpus_scale() * 20),
      /*seed=*/5, 0.0);
  const double s = static_cast<double>(archive.size()) / 1e6;
  const auto model = core::EnergyModel::paper_11mbps();
  const auto policy = core::make_selective_policy(model);
  const sim::TransferSimulator simulator;

  std::printf("=== Ablation: selective-container block size (mixed "
              "archive, %.2f MB) ===\n\n",
              s);
  std::printf("%10s %12s %8s %10s %10s %10s\n", "block", "wire B", "factor",
              "raw blks", "time s", "energy J");
  print_rule(68);

  for (std::size_t block : {16u * 1024, 32u * 1024, 64u * 1024, 128u * 1024,
                            256u * 1024, 512u * 1024, 1024u * 1024}) {
    const auto r = compress::selective_compress(archive, policy, block);
    std::vector<sim::BlockTransfer> blocks;
    std::size_t raw_blocks = 0;
    for (const auto& b : r.blocks) {
      blocks.push_back({static_cast<double>(b.raw_size) / 1e6,
                        static_cast<double>(b.payload_size) / 1e6,
                        b.compressed});
      if (!b.compressed) ++raw_blocks;
    }
    sim::TransferOptions opt;
    opt.interleave = true;
    opt.block_mb = static_cast<double>(block) / 1e6;
    const auto res = simulator.download_selective(blocks, "deflate", opt);
    const double factor =
        static_cast<double>(archive.size()) /
        static_cast<double>(r.container.size());
    std::printf("%9zuK %12zu %8.3f %7zu/%-2zu %10.3f %10.4f\n", block / 1024,
                r.container.size(), factor, raw_blocks, r.blocks.size(),
                res.time_s, res.energy_j);
  }
  std::printf(
      "\nreading: small blocks adapt at fine grain (many raw blocks "
      "protect the incompressible members) but pay per-block headers and "
      "lose LZ context; large blocks average mixed content into "
      "compress-everything decisions. Mid-size blocks — the paper's "
      "0.128 MB — balance the two.\n");
  return 0;
}

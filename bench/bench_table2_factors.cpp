// Table 2 + Table 3 reproduction: the synthetic corpus, each file's
// measured compression factor under all three codecs, against the
// paper's columns.
#include <cstdio>

#include "common.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const double scale = corpus_scale();
  std::printf(
      "=== Table 2: test files and compression factors ===\n"
      "corpus scale %.3g (ECOMP_CORPUS_SCALE); measured = this repo's "
      "codecs on the synthetic corpus, paper = Table 2 columns\n"
      "(* = cell illegible in the scanned source, value reconstructed)\n\n",
      scale);
  const auto files = measure_corpus(scale, {"deflate", "lzw", "bwt"});

  std::printf("%-24s %9s | %7s %7s | %7s %7s | %7s %7s | %s\n", "name",
              "size", "gzip", "paper", "cmprs", "paper", "bzip2", "paper",
              "type (Table 3)");
  print_rule(118);
  bool small_header = false;
  for (const auto& f : files) {
    if (!f.entry.large && !small_header) {
      print_rule(118);
      small_header = true;
    }
    std::printf("%-24s %9zu | %7.2f %6.2f%s | %7.2f %7.2f | %7.2f %7.2f | %s\n",
                f.entry.name.c_str(), f.bytes, f.factor.at("deflate"),
                f.entry.paper_gzip, f.entry.reconstructed ? "*" : " ",
                f.factor.at("lzw"), f.entry.paper_lzw, f.factor.at("bwt"),
                f.entry.paper_bwt, f.entry.description.c_str());
  }

  // Aggregate fidelity: mean |measured/paper - 1| for the tuned column.
  double err_sum = 0.0;
  int n = 0;
  for (const auto& f : files) {
    err_sum += std::abs(f.factor.at("deflate") / f.entry.paper_gzip - 1.0);
    ++n;
  }
  std::printf("\nmean relative deviation of deflate factor vs paper gzip "
              "column: %.1f%%\n",
              100.0 * err_sum / n);
  return 0;
}

// Extension bench: three-way cross-validation of the energy
// computations — the paper's closed form (Eq. 3), the block-discrete
// simulator, and the packet-level discrete-event simulator — over the
// corpus containers. The three are independent implementations; their
// agreement bounds the modelling error the paper could not separate
// from measurement noise.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/energy_model.h"
#include "sim/packet.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  auto files = measure_corpus_containers(corpus_scale());
  sort_for_figures(files);
  const auto model = core::EnergyModel::paper_11mbps();
  const sim::TransferSimulator bsim;
  const sim::PacketLevelSimulator psim;

  std::printf(
      "=== Extension: closed form vs block-discrete vs packet-level "
      "energy (interleaved download) ===\n\n");
  std::printf("%-24s %10s %10s %10s %10s\n", "file", "Eq.3 J", "block J",
              "packet J", "spread");
  print_rule(70);

  double worst_spread = 0.0;
  for (const auto& f : files) {
    const double s = f.mb();
    const double eq3 = model.interleaved_energy_j(s, f.container_mb);
    sim::TransferOptions bopt;
    bopt.interleave = true;
    const double blk =
        bsim.download_selective(f.blocks, "deflate", bopt).energy_j;
    sim::PacketSimOptions popt;
    popt.interleave = true;
    const double pkt = psim.download(f.blocks, "deflate", popt).energy_j;

    const double lo = std::min({eq3, blk, pkt});
    const double hi = std::max({eq3, blk, pkt});
    const double spread = lo > 0.0 ? (hi - lo) / lo : 0.0;
    worst_spread = std::max(worst_spread, spread);
    std::printf("%-24s %10.3f %10.3f %10.3f %9.1f%%\n",
                f.entry.name.c_str(), eq3, blk, pkt, 100 * spread);
  }
  std::printf("\nworst three-way spread: %.1f%% — the closed form's "
              "granularity blind spots (first-block idle, gap starvation) "
              "are the dominant modelling error, consistent with the "
              "paper's 2-6%% Figs. 7/9 residuals.\n",
              100 * worst_spread);
  return 0;
}

// Extension bench: battery-lifetime impact of the paper's techniques at
// session scale. Replays synthetic browsing sessions drawn from the
// Table 2 corpus mix under four proxy policies and reports joules and
// sessions-per-charge on the iPAQ battery.
#include <cstdio>

#include "common.h"
#include "core/session.h"
#include "util/rng.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  Rng rng(42);
  const auto& table = workload::table2();
  std::vector<core::SessionRequest> requests;
  for (int i = 0; i < 60; ++i) {
    const auto& f = table[rng.below(table.size())];
    requests.push_back({f.name, static_cast<double>(f.size_bytes) / 1e6,
                        {{"deflate", f.paper_gzip},
                         {"lzw", f.paper_lzw},
                         {"bwt", f.paper_bwt}}});
  }
  double total_mb = 0;
  for (const auto& r : requests) total_mb += r.size_mb;

  std::printf("=== Extension: session-scale battery impact ===\n");
  std::printf("60 requests drawn from the Table 2 mix, %.1f MB total, "
              "8 s think time, iPAQ 1400 mAh battery\n\n",
              total_mb);

  const core::SessionSimulator sim(
      core::TransferPlanner(core::EnergyModel::paper_11mbps()),
      sim::TransferSimulator{}, core::SessionConfig{});
  const sim::BatteryModel battery = sim::BatteryModel::ipaq();

  std::printf("%-14s %12s %12s %12s %14s %10s\n", "policy", "transfer J",
              "total J", "time s", "sessions/chg", "vs raw");
  print_rule(80);
  double raw_sessions = 0.0;
  for (auto policy :
       {core::SessionPolicy::Raw, core::SessionPolicy::AlwaysDeflate,
        core::SessionPolicy::Planned}) {
    const auto rep = sim.run(requests, policy);
    const double sessions = rep.sessions_per_charge(battery);
    if (policy == core::SessionPolicy::Raw) raw_sessions = sessions;
    std::printf("%-14s %12.1f %12.1f %12.1f %14.1f %+9.1f%%\n",
                core::to_string(policy), rep.transfer_energy_j,
                rep.total_energy_j(), rep.total_time_s, sessions,
                100.0 * (sessions / raw_sessions - 1.0));
  }
  return 0;
}

// Figure 9 reproduction: error rate of the closed-form energy estimate
// (Eq. 5) under the 11 Mb/s and 2 Mb/s nominal bit rates. The estimate
// sees only each file's aggregate (s, sc); the measurement is the
// discrete per-block simulation over the file's real block container.
// The paper reports: 11 Mb/s — 2.4% average on large files, up to
// -40%..10% on the three smallest; 2 Mb/s — "agrees very well".
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/energy_model.h"

using namespace ecomp;
using namespace ecomp::bench;

namespace {

struct RateCase {
  const char* label;
  sim::DeviceModel device;
};

}  // namespace

int main() {
  auto files = measure_corpus_containers(corpus_scale());
  sort_for_figures(files);

  const RateCase cases[] = {
      {"11Mb/s", sim::DeviceModel::ipaq_11mbps()},
      {"2Mb/s", sim::DeviceModel::ipaq_2mbps()},
  };

  std::printf("=== Figure 9: error of the closed-form estimate (Eq. 5) vs "
              "discrete per-block measurement ===\n\n");
  for (const auto& rc : cases) {
    const auto model = core::EnergyModel::from_device(rc.device);
    const sim::TransferSimulator simulator{rc.device};
    sim::TransferOptions opt;
    opt.interleave = true;

    std::printf("--- %s nominal bit rate ---\n", rc.label);
    std::printf("%-24s %9s %9s %9s\n", "file", "est J", "meas J", "error");
    std::vector<double> errs_large, errs_small;
    for (const auto& f : files) {
      const double s = f.mb();
      const double est = model.interleaved_energy_j(s, f.container_mb);
      const double meas =
          simulator.download_selective(f.blocks, "deflate", opt).energy_j;
      const double err = (est - meas) / meas;
      (f.entry.large ? errs_large : errs_small).push_back(std::abs(err));
      std::printf("%-24s %9.3f %9.3f %+8.1f%%\n", f.entry.name.c_str(), est,
                  meas, 100 * err);
    }
    auto mean = [](const std::vector<double>& v) {
      double s = 0;
      for (double x : v) s += x;
      return v.empty() ? 0.0 : s / static_cast<double>(v.size());
    };
    std::printf("avg |error|: large %.1f%% (paper: 2.4%%), small %.1f%% "
                "(paper: 5.3%% excl. three smallest)\n\n",
                100 * mean(errs_large), 100 * mean(errs_small));
  }

  std::printf(
      "paper's printed 2 Mb/s closed form (for reference, s > 0.128, "
      "F < 27): E = 2.0125·s + 12.4291·sc + 0.0275; our re-derived "
      "coefficients come from the device model (see EXPERIMENTS.md on "
      "the constant decomposition).\n");
  return 0;
}

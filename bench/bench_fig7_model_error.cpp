// Figure 7 reproduction: error rate of the interleaving energy model
// (Eq. 3) against "measurement". The paper compares the closed form to
// hardware readings; here the measurement role is played by the
// discrete per-block simulation downloading each file's REAL 128 KB
// block container — which has everything the fluid closed form ignores:
// per-block framing overhead, per-block decode startup, uneven block
// factors, and gap starvation (a block only decodes once fully
// arrived). Paper: 2.5% average error on large files (max 6.5%), 9.1%
// small (4.5% excluding the five tiniest).
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/energy_model.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  auto files = measure_corpus_containers(corpus_scale());
  sort_for_figures(files);
  const auto model = core::EnergyModel::paper_11mbps();
  const sim::TransferSimulator simulator;
  sim::TransferOptions opt;
  opt.interleave = true;

  std::printf(
      "=== Figure 7: error of the interleaving energy model (Eq. 3) vs "
      "discrete per-block measurement ===\n\n");
  std::printf("%-24s %9s %9s %9s\n", "file", "est J", "meas J", "error");
  print_rule(56);

  std::vector<double> errs_large, errs_small;
  for (const auto& f : files) {
    const double s = f.mb();
    // The model user knows only the aggregate sizes.
    const double est = model.interleaved_energy_j(s, f.container_mb);
    const double meas =
        simulator.download_selective(f.blocks, "deflate", opt).energy_j;
    const double err = (est - meas) / meas;
    (f.entry.large ? errs_large : errs_small).push_back(std::abs(err));
    std::printf("%-24s %9.3f %9.3f %+8.1f%%\n", f.entry.name.c_str(), est,
                meas, 100 * err);
  }

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  auto maxv = [](const std::vector<double>& v) {
    double m = 0;
    for (double x : v) m = std::max(m, x);
    return m;
  };
  std::printf("\nlarge files: avg |error| %.1f%% (paper 2.5%%), max %.1f%% "
              "(paper 6.5%%)\n",
              100 * mean(errs_large), 100 * maxv(errs_large));
  std::printf("small files: avg |error| %.1f%% (paper 9.1%%, 4.5%% excl. "
              "five tiniest)\n",
              100 * mean(errs_small));
  return 0;
}

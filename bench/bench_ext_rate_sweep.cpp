// Extension bench: how the paper's thresholds move with link bandwidth
// (its conclusion: "the tradeoff is shown to depend on the network
// bandwidth and the ratio of communication energy over computation
// energy"). Sweeps the effective link rate from well below the paper's
// 2 Mb/s setting to beyond 802.11b, deriving the Eq. 6 quantities at
// each point.
#include <cmath>
#include <cstdio>

#include "core/energy_model.h"

using namespace ecomp;
using namespace ecomp::core;

int main() {
  std::printf("=== Extension: thresholds vs effective link rate ===\n\n");
  std::printf("%10s %10s %12s %12s %14s %12s\n", "eff MB/s", "idle frac",
              "min F (1MB)", "size thr B", "sleep cross F", "fill F");
  for (double rate : {0.09, 0.18, 0.3, 0.45, 0.6, 0.9, 1.2, 2.4, 4.8}) {
    sim::DeviceModel dev = sim::DeviceModel::ipaq_11mbps();
    dev.radio.effective_mbps_mbytes = rate;
    // Keep the CPU's per-MB receive cost fixed (it is a device
    // property); the idle fraction then follows from the rate.
    const auto model = EnergyModel::from_device(dev);
    const double min_f = model.min_factor(1.0);
    const double thr_b = model.min_file_mb() * 1e6;
    const double cross = model.sleep_crossover_factor();
    const double fill = model.idle_fill_factor();
    std::printf("%10.2f %10.2f %12.3f %12.0f %14.2f %12.2f\n", rate,
                dev.radio.idle_fraction(false), min_f, thr_b, cross,
                std::isinf(fill) ? -1.0 : fill);
  }
  std::printf(
      "\nreading: slower links make compression pay at ever-smaller "
      "factors (radio time dominates), while faster links push the "
      "break-even factor up — at ~1 MB/s-effective and beyond, the CPU "
      "cannot even fill the shrinking idle gaps (fill F column). The "
      "paper's 11 Mb/s environment (0.60 MB/s) sits where gzip-class "
      "factors comfortably pay, matching its conclusions.\n");
  return 0;
}

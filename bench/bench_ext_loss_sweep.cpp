// Extension bench: the compress-or-not decision as a function of
// channel quality. The paper's testbed was a clean link; on a lossy
// 802.11b channel every delivered MB costs 1/(1-q) transmissions, so
// the radio term of Eq. 6 grows with q and the minimum compression
// factor that saves energy falls. The sweep shows the threshold shift
// two independent ways: the loss-adjusted closed form
// (EnergyModel::with_loss) and the packet-level simulator running an
// actual Gilbert–Elliott burst channel with capped-retry ARQ, whose
// ledger carries the radio/retransmit energy explicitly.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/energy_model.h"
#include "sim/channel.h"
#include "sim/energy_ledger.h"
#include "sim/packet.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const auto files = measure_corpus_containers(corpus_scale());
  const auto model = core::EnergyModel::paper_11mbps();
  const sim::PacketLevelSimulator psim;
  const std::vector<double> losses = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2};

  std::printf(
      "=== Extension: loss sweep — Eq. 6 thresholds and retransmission "
      "energy vs channel quality ===\n\n");
  std::printf("%6s %8s %12s %12s %12s %12s %10s\n", "loss", "tx/pkt",
              "minF(1MB)", "min file B", "selective J", "raw J", "retrans");
  print_rule(78);

  BenchReport report("ext_loss_sweep");
  report.headline("files", static_cast<double>(files.size()));
  const double min_factor_clean = model.min_factor(1.0);

  for (const double q : losses) {
    const auto lossy = model.with_loss(q);
    const double min_f = lossy.min_factor(1.0);
    const double min_mb = lossy.min_file_mb();

    // Packet-level: whole corpus at i.i.d. loss q (Bernoulli keeps the
    // scaled-down corpus monotone in q; the bursty GE ledger is anchored
    // below), interleaved selective download vs raw download. Seeds are
    // fixed per file -> machine-independent numbers.
    sim::PacketSimOptions sel_opt;
    sel_opt.interleave = true;
    sim::PacketSimOptions raw_opt;
    if (q > 0.0) {
      sel_opt.channel = sim::ChannelModel::bernoulli(q);
      raw_opt.channel = sel_opt.channel;
    }
    double sel_j = 0.0, raw_j = 0.0;
    std::uint64_t retrans = 0;
    for (std::size_t i = 0; i < files.size(); ++i) {
      const auto& f = files[i];
      sel_opt.channel_seed = 0x5EEDull + i;
      raw_opt.channel_seed = 0xB10Cull + i;
      const auto sel = psim.download(f.blocks, "deflate", sel_opt);
      const auto raw =
          psim.download({{f.mb(), f.mb(), false}}, "deflate", raw_opt);
      sel_j += sel.energy_j;
      raw_j += raw.energy_j;
      retrans += sel.retransmissions + raw.retransmissions;
    }

    std::printf("%5.1f%% %8.3f %12.3f %12.0f %12.3f %12.3f %10llu\n",
                100 * q, 1.0 / (1.0 - q), min_f, min_mb * 1e6, sel_j, raw_j,
                static_cast<unsigned long long>(retrans));

    char key[48];
    std::snprintf(key, sizeof key, "q%02d", static_cast<int>(100 * q + 0.5));
    report.headline(std::string("min_factor_") + key, min_f);
    report.headline(std::string("corpus_selective_") + key + "_j", sel_j);
    report.headline(std::string("corpus_raw_") + key + "_j", raw_j);
    report.headline(std::string("retransmissions_") + key,
                    static_cast<double>(retrans));
  }

  // Anchor the retransmit attribution in the gate: the largest corpus
  // file's interleaved download at 5% loss, as a full ledger.
  {
    const auto& f = *std::max_element(
        files.begin(), files.end(),
        [](const MeasuredContainer& a, const MeasuredContainer& b) {
          return a.bytes < b.bytes;
        });
    sim::PacketSimOptions opt;
    opt.interleave = true;
    opt.channel = sim::ChannelModel::gilbert_elliott_avg(0.05);
    const auto res = psim.download(f.blocks, "deflate", opt);
    report.energy("selective_q05_" + f.entry.name, res.timeline);
    report.headline("retransmit_q05_j", res.retransmit_energy_j);
  }

  const double min_factor_q20 = model.with_loss(0.2).min_factor(1.0);
  std::printf(
      "\nEq. 6 threshold shift: the break-even factor for a 1 MB file "
      "falls from %.3f on a clean channel to %.3f at 20%% loss — "
      "compression pays sooner the worse the link, because every saved "
      "byte is a byte the radio does not have to receive %.2f times.\n",
      min_factor_clean, min_factor_q20, 1.0 / (1.0 - 0.2));
  report.write();
  return 0;
}

// Ablation: the bzip2-style multi-table entropy stage in the BWT codec.
// Sweeps the table cap (1 = single Huffman table, 6 = bzip2's maximum)
// over homogeneous and heterogeneous inputs, reporting the compression
// factor each achieves.
#include <cstdio>

#include "common.h"
#include "compress/bwt_codec.h"
#include "workload/generator.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const auto size = static_cast<std::size_t>(
      1024 * 1024 * std::max(0.25, corpus_scale() * 5));
  struct Input {
    const char* label;
    workload::FileKind kind;
    double tune;
  };
  const Input inputs[] = {
      {"xml (homogeneous)", workload::FileKind::Xml, 0.2},
      {"log (homogeneous)", workload::FileKind::Log, 0.0},
      {"tar-mixed (heterogeneous)", workload::FileKind::TarMixed, 0.0},
      {"pdf (text+streams)", workload::FileKind::Pdf, 0.0},
  };

  std::printf("=== Ablation: BWT entropy stage — Huffman table cap ===\n");
  std::printf("input size %zu bytes; cells are compression factors\n\n",
              size);
  std::printf("%-28s %8s %8s %8s %8s\n", "input", "1 tbl", "2 tbl", "3 tbl",
              "6 tbl");
  print_rule(66);
  for (const auto& in : inputs) {
    const Bytes data = workload::generate_kind(in.kind, size, 17, in.tune);
    std::printf("%-28s", in.label);
    for (int cap : {1, 2, 3, 6}) {
      const compress::BwtCodec codec(9, cap);
      const Bytes packed = codec.compress(data);
      if (codec.decompress(packed) != data) {
        std::fprintf(stderr, "roundtrip failure (cap %d)\n", cap);
        return 1;
      }
      std::printf(" %8.3f", static_cast<double>(data.size()) /
                                static_cast<double>(packed.size()));
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading: extra tables buy the most on heterogeneous data (mixed "
      "archives, PDFs with interleaved text and binary streams), which is "
      "also where the paper's selective scheme operates.\n");
  return 0;
}

// Extension bench: the worker-pool proxy under client concurrency.
// Spins a real loopback ProxyServer (workers=4, admission cap 8) and
// drives N in {1, 10, 100} concurrent clients against it, reporting
// per-client latency percentiles, the admission counters (BUSY sheds,
// degradation-ladder hits), and the wire energy of the controlled N=1
// transfer priced by the paper's 11 Mb/s model.
//
// Sidecar gating: the N=1 phase is a single resilient client against an
// idle, precompressed server — its wire bytes are deterministic (deflate
// is deterministic, the corpus is seeded), so `n1_energy_j` is a gated
// regression key. Latency keys end in `_us` and the admission counters
// are scheduler-dependent, so benchdiff reports but never gates them.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.h"
#include "core/energy_model.h"
#include "core/planner.h"
#include "net/proxy.h"
#include "workload/generator.h"

using namespace ecomp;
using namespace ecomp::bench;

namespace {

constexpr const char* kFile = "page.xml";

std::unique_ptr<net::ProxyServer> make_server(const Bytes& data) {
  net::FileStore store;
  store.put(kFile, data);
  net::ProxyOptions opt;
  opt.workers = 4;
  opt.max_conns = 8;
  opt.busy_retry_ms = 2;
  opt.precompress = true;  // warm the canonical containers
  return std::make_unique<net::ProxyServer>(
      std::move(store),
      core::make_selective_policy(core::EnergyModel::paper_11mbps()), opt);
}

/// Plain GET with a bounded retry-on-BUSY loop: unlike the resilient
/// client it uses the degradable non-ranged verb, so the stampede
/// actually exercises the degradation ladder.
Bytes download_retry_busy(std::uint16_t port, const char* mode) {
  for (int i = 0; i < 500; ++i) {
    try {
      return net::download(port, kFile, mode);
    } catch (const Error& e) {
      if (std::string(e.what()).find("BUSY") == std::string::npos) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  throw Error("bench: BUSY never cleared");
}

double percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(p / 100.0 * v.size()));
  return v[idx];
}

struct Phase {
  std::vector<double> lat_us;
  obs::StatsSnapshot stats;
};

/// N concurrent clients, fresh server per phase so the admission
/// counters are per-phase, not cumulative.
Phase run_phase(const Bytes& data, int n) {
  auto server = make_server(data);
  Phase out;
  out.lat_us.resize(static_cast<std::size_t>(n));
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    clients.emplace_back([&, i] {
      const char* mode = (i % 3 == 0) ? "full" : "selective";
      const auto t0 = std::chrono::steady_clock::now();
      try {
        const Bytes got = download_retry_busy(server->port(), mode);
        if (got != data) failures.fetch_add(1);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
      out.lat_us[static_cast<std::size_t>(i)] =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count();
    });
  for (auto& t : clients) t.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "bench_proxy_load: %d/%d clients failed\n",
                 failures.load(), n);
    std::abort();
  }
  out.stats = server->stats();
  server->stop();
  return out;
}

}  // namespace

int main() {
  const double scale = corpus_scale();
  const Bytes data = workload::generate_kind(
      workload::FileKind::Xml,
      static_cast<std::size_t>(2e6 * scale), /*seed=*/7, 0.4);
  const core::EnergyModel model = core::EnergyModel::paper_11mbps();

  BenchReport report("proxy_load");
  report.note("corpus", "xml, seed 7");
  report.note("server", "workers=4 max_conns=8 precompress");

  std::printf("=== Extension: worker-pool proxy under load ===\n");
  std::printf("%.1f KB xml, workers=4, admission cap 8\n\n",
              static_cast<double>(data.size()) / 1e3);
  std::printf("%6s %12s %12s %10s %10s %10s\n", "N", "p50 (ms)",
              "p99 (ms)", "busy", "degr lvl", "degr raw");
  print_rule(66);

  // Controlled N=1 phase first: deterministic wire bytes -> the gated
  // energy key. The resilient client reports bytes-on-wire directly.
  {
    auto server = make_server(data);
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcome = net::download_resilient(
        server->port(), kFile, "selective", net::TransferPolicy{});
    const double lat_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    server->stop();
    if (outcome.data != data) {
      std::fprintf(stderr, "bench_proxy_load: N=1 payload mismatch\n");
      std::abort();
    }
    const double wire_mb =
        static_cast<double>(outcome.stats.bytes_on_wire) / 1e6;
    const double raw_mb = static_cast<double>(data.size()) / 1e6;
    report.headline("n1_latency_us", lat_us);
    report.headline("n1_wire_mb", wire_mb);
    report.headline("n1_raw_mb", raw_mb);
    report.headline("n1_energy_j", model.download_energy_j(wire_mb));
    report.headline("n1_j_per_mb",
                    model.download_energy_j(wire_mb) / raw_mb);
    std::printf("%6d %12.2f %12.2f %10s %10s %10s\n", 1, lat_us / 1e3,
                lat_us / 1e3, "-", "-", "-");
  }

  for (const int n : {10, 100}) {
    const Phase ph = run_phase(data, n);
    const double p50 = percentile(ph.lat_us, 50);
    const double p99 = percentile(ph.lat_us, 99);
    const std::string pre = "n" + std::to_string(n) + "_";
    report.headline(pre + "p50_us", p50);
    report.headline(pre + "p99_us", p99);
    report.headline(pre + "busy_total",
                    static_cast<double>(ph.stats.admission.busy_total));
    report.headline(
        pre + "degraded_level_total",
        static_cast<double>(ph.stats.admission.degraded_level_total));
    report.headline(
        pre + "degraded_raw_total",
        static_cast<double>(ph.stats.admission.degraded_raw_total));
    std::printf("%6d %12.2f %12.2f %10llu %10llu %10llu\n", n, p50 / 1e3,
                p99 / 1e3,
                static_cast<unsigned long long>(ph.stats.admission.busy_total),
                static_cast<unsigned long long>(
                    ph.stats.admission.degraded_level_total),
                static_cast<unsigned long long>(
                    ph.stats.admission.degraded_raw_total));
  }

  report.write();
  return 0;
}

// Codec micro-throughput on this host (google-benchmark). Supports the
// CpuModel calibration narrative: relative codec speeds — deflate vs lzw
// vs bwt, compress vs decompress — are the reproduction target, not the
// absolute MB/s (the paper's device is a 206 MHz StrongARM).
#include <benchmark/benchmark.h>

#include "compress/codec.h"
#include "workload/generator.h"

namespace {

using namespace ecomp;

const Bytes& text_input() {
  static const Bytes data = workload::generate_kind(
      workload::FileKind::Xml, 1 << 20, /*seed=*/21, 0.2);
  return data;
}

void BM_Compress(benchmark::State& state, const char* codec_name) {
  const auto codec = compress::make_codec(codec_name);
  const Bytes& input = text_input();
  for (auto _ : state) {
    Bytes out = codec->compress(input);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}

void BM_Decompress(benchmark::State& state, const char* codec_name) {
  const auto codec = compress::make_codec(codec_name);
  const Bytes packed = codec->compress(text_input());
  for (auto _ : state) {
    Bytes out = codec->decompress(packed);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text_input().size()));
}

BENCHMARK_CAPTURE(BM_Compress, deflate, "deflate");
BENCHMARK_CAPTURE(BM_Compress, lzw, "lzw");
BENCHMARK_CAPTURE(BM_Compress, bwt, "bwt");
BENCHMARK_CAPTURE(BM_Decompress, deflate, "deflate");
BENCHMARK_CAPTURE(BM_Decompress, lzw, "lzw");
BENCHMARK_CAPTURE(BM_Decompress, bwt, "bwt");
// The interoperable on-disk formats (same engines + format framing).
BENCHMARK_CAPTURE(BM_Compress, gz, "gz");
BENCHMARK_CAPTURE(BM_Compress, unix_Z, "Z");
BENCHMARK_CAPTURE(BM_Compress, bz2, "bz2");
BENCHMARK_CAPTURE(BM_Decompress, gz, "gz");
BENCHMARK_CAPTURE(BM_Decompress, unix_Z, "Z");
BENCHMARK_CAPTURE(BM_Decompress, bz2, "bz2");

}  // namespace

BENCHMARK_MAIN();

// Codec micro-throughput on this host (google-benchmark). Supports the
// CpuModel calibration narrative: relative codec speeds — deflate vs lzw
// vs bwt, compress vs decompress — are the reproduction target, not the
// absolute MB/s (the paper's device is a 206 MHz StrongARM).
#include <benchmark/benchmark.h>

#include "common.h"
#include "compress/codec.h"
#include "workload/generator.h"

namespace {

using namespace ecomp;

const Bytes& text_input() {
  static const Bytes data = workload::generate_kind(
      workload::FileKind::Xml, 1 << 20, /*seed=*/21, 0.2);
  return data;
}

void BM_Compress(benchmark::State& state, const char* codec_name) {
  const auto codec = compress::make_codec(codec_name);
  const Bytes& input = text_input();
  for (auto _ : state) {
    Bytes out = codec->compress(input);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}

void BM_Decompress(benchmark::State& state, const char* codec_name) {
  const auto codec = compress::make_codec(codec_name);
  const Bytes packed = codec->compress(text_input());
  for (auto _ : state) {
    Bytes out = codec->decompress(packed);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text_input().size()));
}

BENCHMARK_CAPTURE(BM_Compress, deflate, "deflate");
BENCHMARK_CAPTURE(BM_Compress, lzw, "lzw");
BENCHMARK_CAPTURE(BM_Compress, bwt, "bwt");
BENCHMARK_CAPTURE(BM_Decompress, deflate, "deflate");
BENCHMARK_CAPTURE(BM_Decompress, lzw, "lzw");
BENCHMARK_CAPTURE(BM_Decompress, bwt, "bwt");
// The interoperable on-disk formats (same engines + format framing).
BENCHMARK_CAPTURE(BM_Compress, gz, "gz");
BENCHMARK_CAPTURE(BM_Compress, unix_Z, "Z");
BENCHMARK_CAPTURE(BM_Compress, bz2, "bz2");
BENCHMARK_CAPTURE(BM_Decompress, gz, "gz");
BENCHMARK_CAPTURE(BM_Decompress, unix_Z, "Z");
BENCHMARK_CAPTURE(BM_Decompress, bz2, "bz2");

// Console reporter that also captures each run's per-iteration real time
// (seconds) into the BENCH_codec_throughput.json sidecar; scripts/check.sh
// compares these numbers between ECOMP_OBS=ON and =OFF builds to enforce
// the instrumentation-overhead budget.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(ecomp::bench::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // Aggregate rows (mean/median/stddev under --benchmark_repetitions)
      // arrive with "_<aggregate>" appended to the name; record them the
      // same way — scripts/check.sh keys its overhead gate off "_median".
      // Per-repetition rows all share one name, so keep only the
      // aggregates when repetitions are on (no duplicate JSON keys).
      if (run.run_type != Run::RT_Aggregate && run.repetitions > 1) continue;
      const double seconds = run.GetAdjustedRealTime() /
                             benchmark::GetTimeUnitMultiplier(run.time_unit);
      report_->headline(run.benchmark_name() + ".real_s", seconds);
      const auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end())
        report_->headline(run.benchmark_name() + ".bytes_per_s",
                          it->second.value);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  ecomp::bench::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ecomp::bench::BenchReport report("codec_throughput");
  report.note("obs_enabled", ecomp::obs::kObsEnabled ? "on" : "off");
  CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  ecomp::bench::emit_stage_throughput(report);
  ecomp::bench::profile_codec_stages(report);
  report.write();
  return 0;
}

// Figure 2 reproduction: energy to download + decompress with the three
// compression schemes, relative to downloading uncompressed. As in the
// paper, the bzip2 bars run with power saving enabled (its long
// decompress tail benefits from the radio sleeping); gzip/compress
// don't (the saving doesn't materialize for them, §3.2).
#include <cstdio>

#include "common.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const auto files = [] {
    auto v = measure_corpus(corpus_scale(), {"deflate", "lzw", "bwt"});
    sort_for_figures(v);
    return v;
  }();
  const sim::TransferSimulator simulator;

  std::printf(
      "=== Figure 2: relative energy, download + decompress ===\n"
      "each cell: total energy relative to downloading raw (1.00); "
      "bzip2 uses power-saving + radio sleep during decompress\n\n");
  std::printf("%-24s %7s | %8s %8s %8s | %s\n", "file", "gzip F", "gzip",
              "compress", "bzip2", "winner");
  print_rule(92);

  int gzip_wins = 0, rows = 0;
  bool small_header = false;
  std::map<std::string, sim::Timeline> scheme_timeline;
  for (const auto& f : files) {
    if (!f.entry.large && !small_header) {
      std::printf("%-24s (small files, increasing size)\n", "");
      small_header = true;
    }
    const double s = f.mb();
    const auto raw = simulator.download_uncompressed(s);
    const double e_raw = raw.energy_j;
    scheme_timeline["raw"].extend(raw.timeline);

    auto rel = [&](const std::string& codec, bool power_saving) {
      sim::TransferOptions opt;
      opt.power_saving = power_saving;
      opt.sleep_during_decompress = power_saving;
      const auto r =
          simulator.download_compressed(s, f.compressed_mb(codec), codec, opt);
      scheme_timeline[codec].extend(r.timeline);
      return r.energy_j / e_raw;
    };
    const double g = rel("deflate", false);
    const double c = rel("lzw", false);
    const double b = rel("bwt", true);
    const char* winner = g <= c && g <= b ? "gzip"
                         : c <= b         ? "compress"
                                          : "bzip2";
    ++rows;
    if (g <= c && g <= b) ++gzip_wins;
    std::printf("%-24s %7.2f | %8.2f %8.2f %8.2f | %s\n",
                f.entry.name.c_str(), f.factor.at("deflate"), g, c, b,
                winner);
  }
  std::printf(
      "\ngzip is the lowest-energy scheme on %d of %d files (the paper's "
      "central §3 finding: decompression efficiency, not compression "
      "depth, decides energy).\n",
      gzip_wins, rows);

  BenchReport report("fig2_energy");
  report.headline("files", rows);
  report.headline("gzip_wins", gzip_wins);
  report.note("power_saving", "bzip2 only (paper §3.2)");
  // Whole-corpus attributed energy per scheme, plus the raw baseline.
  for (const auto& [scheme, timeline] : scheme_timeline) {
    report.headline("total_energy_" + scheme + "_j",
                    timeline.total_energy_j());
    report.energy(scheme, timeline);
  }
  report.write();
  return 0;
}

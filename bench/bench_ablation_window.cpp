// Ablation: LZ77 sliding-window size. The paper's gzip uses the
// format's maximum 32 KB window; handhelds with tighter memory budgets
// could shrink it. Sweeps the window and reports compression factor and
// the modeled interleaved-download energy on text and mixed data.
#include <cstdio>

#include "common.h"
#include "compress/deflate.h"
#include "core/energy_model.h"
#include "workload/generator.h"

using namespace ecomp;
using namespace ecomp::bench;

namespace {

double factor_with_window(const Bytes& data, int window) {
  compress::Lz77Params params = compress::Lz77Params::for_level(9);
  params.window_size = window;
  BitWriterLsb bw;
  compress::deflate_raw(data, params, bw);
  const Bytes payload = bw.take();
  // Verify while we're here.
  BitReaderLsb br(payload);
  if (compress::inflate_raw(br, data.size()) != data)
    throw Error("window ablation: roundtrip failed");
  return static_cast<double>(data.size()) /
         static_cast<double>(payload.size());
}

}  // namespace

int main() {
  const auto size = static_cast<std::size_t>(
      1024 * 1024 * std::max(0.25, corpus_scale() * 5));
  const auto model = core::EnergyModel::paper_11mbps();

  std::printf("=== Ablation: LZ77 window size (deflate -9) ===\n");
  std::printf("input %zu bytes; cells: compression factor | E_intl J "
              "for the XML input\n\n",
              size);
  std::printf("%10s %12s %12s %14s\n", "window", "xml factor",
              "mixed factor", "xml E_intl J");
  print_rule(54);

  const Bytes xml =
      workload::generate_kind(workload::FileKind::Xml, size, 31, 0.25);
  const Bytes mixed =
      workload::generate_kind(workload::FileKind::TarMixed, size, 32, 0.0);
  const double s = static_cast<double>(size) / 1e6;

  for (int window : {1024, 4096, 8192, 16384, 32768}) {
    const double fx = factor_with_window(xml, window);
    const double fm = factor_with_window(mixed, window);
    std::printf("%9dK %12.3f %12.3f %14.4f\n", window / 1024, fx, fm,
                model.interleaved_energy_j(s, s / fx));
  }
  std::printf(
      "\nreading: the factor (and hence the radio saving) degrades "
      "gracefully down to ~4 KB windows — a memory-constrained receiver "
      "gives up little of the paper's energy win.\n");
  return 0;
}

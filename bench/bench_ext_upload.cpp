// Extension bench (paper future work, §1/§7): energy of *uploading*
// with on-device compression. The roles flip — compression, the
// expensive direction, now runs on the 206 MHz handheld — so the
// break-even factor rises sharply and bzip2 drops out entirely.
#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/upload_model.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  auto files = measure_corpus(corpus_scale(), {"deflate", "lzw"},
                              /*large_only=*/true);
  sort_for_figures(files);
  const sim::TransferSimulator simulator;

  std::printf(
      "=== Extension: upload with on-device compression (energy relative "
      "to raw upload) ===\n\n");
  std::printf("%-24s %7s | %9s %9s | %9s %9s | %s\n", "file", "gzip F",
              "gzip seq", "gzip intl", "lzw seq", "lzw intl", "best");
  print_rule(92);

  for (const auto& f : files) {
    const double s = f.mb();
    const double e_raw = simulator.upload_uncompressed(s).energy_j;
    auto rel = [&](const std::string& codec, bool interleave) {
      sim::TransferOptions opt;
      opt.interleave = interleave;
      opt.sleep_during_decompress = !interleave;  // radio sleeps up front
      return simulator
                 .upload_compressed(s, f.compressed_mb(codec), codec, opt)
                 .energy_j /
             e_raw;
    };
    const double gs = rel("deflate", false), gi = rel("deflate", true);
    const double ls = rel("lzw", false), li = rel("lzw", true);
    const double best = std::min({1.0, gs, gi, ls, li});
    const char* label = best == 1.0  ? "raw"
                        : best == gs ? "gzip seq"
                        : best == gi ? "gzip intl"
                        : best == ls ? "lzw seq"
                                     : "lzw intl";
    std::printf("%-24s %7.2f | %9.2f %9.2f | %9.2f %9.2f | %s\n",
                f.entry.name.c_str(), f.factor.at("deflate"), gs, gi, ls,
                li, label);
  }

  std::printf("\nbreak-even factors (3 MB file):\n");
  const auto down = core::EnergyModel::paper_11mbps();
  std::printf("  download (gzip decode on device): F* = %.2f\n",
              down.min_factor(3.0));
  for (const char* codec : {"deflate", "lzw", "bwt"}) {
    const core::UploadModel up(core::EnergyParams{},
                               sim::CpuModel::ipaq().compress_cost(codec));
    const double f = up.min_factor(3.0);
    if (std::isinf(f))
      std::printf("  upload   (%s encode on device): never pays\n", codec);
    else
      std::printf("  upload   (%s encode on device): F* = %.2f\n", codec, f);
  }
  return 0;
}

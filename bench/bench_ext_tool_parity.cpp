// Extension bench: on-disk format parity with the real tools. For a
// sample of corpus files, compress with our gzip/.Z/.bz2 writers AND
// the installed gzip/bzip2 binaries, and compare output sizes — a
// direct measure of how close these from-scratch encoders get to the
// paper's exact tool family. (Interop correctness itself is enforced by
// the test suite; this quantifies the ratio gap.)
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "cli/cli.h"
#include "common.h"
#include "compress/bz2_format.h"
#include "compress/gzip_format.h"
#include "compress/z_format.h"

using namespace ecomp;
using namespace ecomp::bench;

namespace {

namespace fs = std::filesystem;

std::size_t tool_size(const std::string& cmd, const fs::path& out) {
  if (std::system(cmd.c_str()) != 0) return 0;
  std::error_code ec;
  const auto n = fs::file_size(out, ec);
  return ec ? 0 : static_cast<std::size_t>(n);
}

}  // namespace

int main() {
  const bool have_gzip =
      std::system("command -v gzip >/dev/null 2>&1") == 0;
  const bool have_bzip2 =
      std::system("command -v bzip2 >/dev/null 2>&1") == 0;
  const fs::path dir =
      fs::temp_directory_path() / "ecomp_tool_parity";
  fs::create_directories(dir);
  const fs::path raw = dir / "input";

  std::printf("=== Extension: encoder parity with the real tools ===\n");
  std::printf("cells: compressed bytes (ours / tool, ratio)\n\n");
  std::printf("%-24s %9s | %-26s | %-26s\n", "file", "size",
              "gzip -9 (ours/tool)", "bzip2 -9 (ours/tool)");
  print_rule(96);

  const double scale = corpus_scale();
  for (const char* name :
       {"news96.xml", "input.log", "proxy.ps", "NTBACKUP.EXE",
        "sclerp.wav", "image01.jpg", "input.random"}) {
    const auto& entry = workload::table2_entry(name);
    const Bytes data = workload::generate(entry, scale);
    cli::write_file(raw.string(), data);

    const std::size_t our_gz = compress::gzip_compress(data, 9).size();
    const std::size_t our_bz = compress::bz2_compress(data, 9).size();

    std::size_t tool_gz = 0, tool_bz = 0;
    if (have_gzip)
      tool_gz = tool_size("gzip -9c " + raw.string() + " > " +
                              (dir / "t.gz").string() + " 2>/dev/null",
                          dir / "t.gz");
    if (have_bzip2)
      tool_bz = tool_size("bzip2 -9c " + raw.string() + " > " +
                              (dir / "t.bz2").string() + " 2>/dev/null",
                          dir / "t.bz2");

    auto cell = [](std::size_t ours, std::size_t tool) {
      char buf[40];
      if (tool == 0)
        std::snprintf(buf, sizeof buf, "%9zu / (no tool)", ours);
      else
        std::snprintf(buf, sizeof buf, "%9zu / %8zu %.2f", ours, tool,
                      static_cast<double>(ours) /
                          static_cast<double>(tool));
      return std::string(buf);
    };
    std::printf("%-24s %9zu | %-26s | %-26s\n", name, data.size(),
                cell(our_gz, tool_gz).c_str(),
                cell(our_bz, tool_bz).c_str());
  }
  fs::remove_all(dir);
  std::printf(
      "\nratios near 1.00 mean our from-scratch encoders match the real "
      "tools' compression depth, not just their formats. (.Z parity is "
      "tested via uncompress; no compress binary is present to compare "
      "encoder sizes against.)\n");
  return 0;
}

// Figure 11 reproduction: effect of the block-by-block adaptive scheme
// (Fig. 10) on time and energy, for the files it can affect — the
// low-factor and mixed-content part of the corpus. Bars: gzip / zlib
// without interleaving / zlib with interleaving + adaptive policy.
// The paper's headline: with the adaptive scheme the compression tool
// no longer incurs higher energy cost than raw for ANY file.
#include <cstdio>

#include "common.h"
#include "compress/deflate.h"
#include "core/planner.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const double scale = corpus_scale();
  const auto model = core::EnergyModel::paper_11mbps();
  const auto policy = core::make_selective_policy(model);
  const sim::TransferSimulator simulator;
  const compress::DeflateCodec codec(9);

  // The scheme only changes outcomes for files with low or uneven block
  // factors (paper shows exactly those; others are unchanged).
  const std::vector<std::string> affected = {
      "sclerp.wav",   "pp.exe",        "input.graphic", "image01.jpg",
      "lovecnife.mp3", "tom.015.m2v",  "image01.gif",   "input.random",
      "langspec-2.0.pdf"};

  std::printf(
      "=== Figure 11: block-by-block adaptive scheme (time and energy "
      "relative to raw download) ===\n\n");
  std::printf("%-20s %6s | %-17s | %-17s | %-17s | %s\n", "file", "F",
              "gzip t/E", "zlib t/E", "adaptive t/E", "blocks raw/total");
  print_rule(108);

  int adaptive_losses = 0;
  for (const auto& name : affected) {
    const auto& entry = workload::table2_entry(name);
    const Bytes data = workload::generate(entry, scale);
    const double s = static_cast<double>(data.size()) / 1e6;
    const double sc =
        static_cast<double>(codec.compress(data).size()) / 1e6;

    const auto adaptive = compress::selective_compress(data, policy);
    const auto always = compress::selective_compress(
        data, compress::SelectivePolicy::always());
    auto to_blocks = [](const compress::SelectiveResult& r) {
      std::vector<sim::BlockTransfer> v;
      for (const auto& b : r.blocks)
        v.push_back({static_cast<double>(b.raw_size) / 1e6,
                     static_cast<double>(b.payload_size) / 1e6,
                     b.compressed});
      return v;
    };
    std::size_t raw_blocks = 0;
    for (const auto& b : adaptive.blocks)
      if (!b.compressed) ++raw_blocks;

    const auto base = simulator.download_uncompressed(s);
    sim::TransferOptions seq;
    sim::TransferOptions intl;
    intl.interleave = true;
    const auto g = simulator.download_compressed(s, sc, "deflate", seq);
    const auto z = simulator.download_selective(to_blocks(always), "deflate",
                                                seq);
    const auto a = simulator.download_selective(to_blocks(adaptive),
                                                "deflate", intl);
    if (a.energy_j > base.energy_j * 1.015) ++adaptive_losses;

    std::printf("%-20s %6.2f | %7.2f / %7.2f | %7.2f / %7.2f | "
                "%7.2f / %7.2f | %zu/%zu\n",
                name.c_str(), s / sc, g.time_s / base.time_s,
                g.energy_j / base.energy_j, z.time_s / base.time_s,
                z.energy_j / base.energy_j, a.time_s / base.time_s,
                a.energy_j / base.energy_j, raw_blocks,
                adaptive.blocks.size());
  }

  std::printf("\nfiles where the adaptive scheme loses energy vs raw beyond "
              "1.5%% (container + bookkeeping overhead): %d  (paper: "
              "\"virtually no energy cost for all data files\")\n",
              adaptive_losses);
  return 0;
}

// Figure 1 reproduction: time to download + decompress with the three
// compression schemes, relative to downloading uncompressed. Left/
// middle/right bars = gzip / compress / bzip2; large files sorted by
// decreasing compression factor, small files by increasing size.
#include <cstdio>

#include "common.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const auto files = [] {
    auto v = measure_corpus(corpus_scale(), {"deflate", "lzw", "bwt"});
    sort_for_figures(v);
    return v;
  }();
  const sim::TransferSimulator simulator;
  const std::vector<std::pair<std::string, std::string>> schemes = {
      {"gzip", "deflate"}, {"compress", "lzw"}, {"bzip2", "bwt"}};

  std::printf(
      "=== Figure 1: relative time, download + decompress ===\n"
      "each cell: download + decompress = total, relative to downloading "
      "the raw file (1.00)\n\n");
  std::printf("%-24s %7s | %-22s | %-22s | %-22s\n", "file", "gzip F",
              "gzip", "compress", "bzip2");
  print_rule(110);

  bool small_header = false;
  std::map<std::string, double> rel_sum;
  std::map<std::string, sim::Timeline> scheme_timeline;
  int rows = 0;
  for (const auto& f : files) {
    if (!f.entry.large && !small_header) {
      std::printf("%-24s (small files, increasing size)\n", "");
      small_header = true;
    }
    const double s = f.mb();
    const double t_raw = simulator.download_uncompressed(s).time_s;
    std::printf("%-24s %7.2f |", f.entry.name.c_str(),
                f.factor.at("deflate"));
    for (const auto& [label, codec] : schemes) {
      const double sc = f.compressed_mb(codec);
      const auto r = simulator.download_compressed(s, sc, codec,
                                                   sim::TransferOptions{});
      std::printf(" %5.2f + %5.2f = %5.2f |", r.download_time_s / t_raw,
                  r.decompress_time_s / t_raw, r.time_s / t_raw);
      rel_sum[label] += r.time_s / t_raw;
      scheme_timeline[label].extend(r.timeline);
    }
    ++rows;
    std::printf("\n");
  }
  std::printf(
      "\nreading: with high factors every scheme beats raw on time; bzip2's "
      "decompress share dominates its bar, gzip balances best (paper §3.2).\n");

  BenchReport report("fig1_time");
  report.headline("files", rows);
  for (const auto& [label, sum] : rel_sum)
    report.headline("mean_rel_time_" + label, sum / rows);
  // Whole-corpus attributed energy per scheme: where the joules go when
  // every Table 2 file is downloaded with this scheme.
  for (const auto& [label, timeline] : scheme_timeline)
    report.energy(label, timeline);
  emit_stage_throughput(report);
  profile_codec_stages(report);
  report.write();
  return 0;
}

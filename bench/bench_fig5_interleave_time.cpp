// Figure 5 reproduction: effect of interleaving on time. Bars: gzip
// (one-shot member, sequential decompress) / zlib without interleaving
// (128 KB block container, sequential) / zlib with interleaving (same
// container, block i decoded while block i+1 downloads). Relative to
// downloading raw. Block sizes come from the real container.
//
// The "measured" column runs the actual two-thread pipeline
// (InterleavedDownloader, feed thread + decode worker) against a paced
// chunk source that emulates the model's wire rate sped up by
// ECOMP_FIG5_TIMESCALE (default 10), then rescales the wall clock back.
// Comparing that against the Eq. 4/5 closed form gives the model error
// Fig. 7 reports — here for the overlap the paper could only infer.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common.h"
#include "compress/deflate.h"
#include "compress/selective.h"
#include "core/interleave.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::bench;

namespace {

double timescale() {
  if (const char* env = std::getenv("ECOMP_FIG5_TIMESCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 10.0;
}

/// Wall time (rescaled to wire seconds) of the threaded pipeline
/// decoding `container` from a source paced at `rate_mb_s * speedup`.
double measure_pipeline_s(const Bytes& container, double rate_mb_s,
                          double speedup) {
  core::InterleavedDownloader::Options opt;
  opt.chunk_bytes = 16 * 1024;
  opt.threads = 2;
  const core::InterleavedDownloader dl(opt);
  std::size_t off = 0;
  const auto t0 = std::chrono::steady_clock::now();
  dl.run([&](std::uint8_t* dst, std::size_t max) -> std::size_t {
    if (off >= container.size()) return 0;
    const std::size_t n = std::min(max, container.size() - off);
    // The wire time those n bytes would occupy, accelerated.
    std::this_thread::sleep_for(std::chrono::duration<double>(
        static_cast<double>(n) / 1e6 / (rate_mb_s * speedup)));
    std::memcpy(dst, container.data() + off, n);
    off += n;
    return n;
  });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return wall * speedup;
}

}  // namespace

int main() {
  const double scale = corpus_scale();
  const double speedup = timescale();
  const sim::TransferSimulator simulator;
  const compress::DeflateCodec codec(9);

  std::printf(
      "=== Figure 5: effect of interleaving on time (relative to raw "
      "download) ===\n\n");
  std::printf("%-24s %7s | %8s %10s %10s | %9s %7s\n", "file", "gzip F",
              "gzip", "zlib", "zlib+intl", "measured", "err%");
  print_rule(88);

  BenchReport report("fig5_interleave");
  double err_sum = 0.0;
  int err_n = 0;
  bool small_header = false;
  for (const auto& entry : workload::table2()) {
    const Bytes data = workload::generate(entry, scale);
    const double s = static_cast<double>(data.size()) / 1e6;
    if (!entry.large && !small_header) {
      std::printf("%-24s (small files)\n", "");
      small_header = true;
    }

    const double sc =
        static_cast<double>(codec.compress(data).size()) / 1e6;
    const auto blocks_res = compress::selective_compress(
        data, compress::SelectivePolicy::always());
    std::vector<sim::BlockTransfer> blocks;
    for (const auto& b : blocks_res.blocks)
      blocks.push_back({static_cast<double>(b.raw_size) / 1e6,
                        static_cast<double>(b.payload_size) / 1e6,
                        b.compressed});

    const double t_raw = simulator.download_uncompressed(s).time_s;
    sim::TransferOptions seq;
    sim::TransferOptions intl;
    intl.interleave = true;
    const double t_gzip =
        simulator.download_compressed(s, sc, "deflate", seq).time_s;
    const double t_zlib =
        simulator.download_selective(blocks, "deflate", seq).time_s;
    const double t_intl =
        simulator.download_selective(blocks, "deflate", intl).time_s;

    // Pace the pipeline at the model's effective wire rate for the
    // container bytes, so measured and predicted share a network.
    const double container_mb =
        static_cast<double>(blocks_res.container.size()) / 1e6;
    const double t_net =
        simulator.download_uncompressed(container_mb).time_s;
    const double rate_mb_s = container_mb / t_net;
    double t_meas = 0.0;
    double err_pct = 0.0;
    if (entry.large) {  // small files are all latency; skip the pacing
      t_meas = measure_pipeline_s(blocks_res.container, rate_mb_s, speedup);
      err_pct = 100.0 * (t_meas - t_intl) / t_intl;
      err_sum += std::fabs(err_pct);
      ++err_n;
      report.note("measured_" + entry.name,
                  std::to_string(t_meas) + "s vs modeled " +
                      std::to_string(t_intl) + "s");
    }

    if (entry.large) {
      std::printf("%-24s %7.2f | %8.2f %10.2f %10.2f | %9.2f %+6.1f\n",
                  entry.name.c_str(), s / sc, t_gzip / t_raw,
                  t_zlib / t_raw, t_intl / t_raw, t_meas / t_raw, err_pct);
    } else {
      std::printf("%-24s %7.2f | %8.2f %10.2f %10.2f |\n",
                  entry.name.c_str(), s / sc, t_gzip / t_raw,
                  t_zlib / t_raw, t_intl / t_raw);
    }
  }
  const double mean_err = err_n ? err_sum / err_n : 0.0;
  std::printf(
      "\nreading: interleaving hides the decompression time inside the "
      "download's idle gaps — the third column drops toward the pure "
      "download time (paper §4.1). The measured column is the real "
      "two-thread pipeline on an emulated wire (timescale %.0fx); its "
      "mean |model error| vs Eq. 4/5 is %.1f%% (Fig. 7's metric).\n",
      speedup, mean_err);
  report.headline("mean_abs_model_err_pct", mean_err);
  report.headline("files_measured", static_cast<double>(err_n));
  report.write();
  return 0;
}

// Figure 5 reproduction: effect of interleaving on time. Bars: gzip
// (one-shot member, sequential decompress) / zlib without interleaving
// (128 KB block container, sequential) / zlib with interleaving (same
// container, block i decoded while block i+1 downloads). Relative to
// downloading raw. Block sizes come from the real container.
#include <cstdio>

#include "common.h"
#include "compress/deflate.h"
#include "compress/selective.h"
#include "sim/transfer.h"

using namespace ecomp;
using namespace ecomp::bench;

int main() {
  const double scale = corpus_scale();
  const sim::TransferSimulator simulator;
  const compress::DeflateCodec codec(9);

  std::printf(
      "=== Figure 5: effect of interleaving on time (relative to raw "
      "download) ===\n\n");
  std::printf("%-24s %7s | %8s %10s %10s\n", "file", "gzip F", "gzip",
              "zlib", "zlib+intl");
  print_rule(70);

  bool small_header = false;
  for (const auto& entry : workload::table2()) {
    const Bytes data = workload::generate(entry, scale);
    const double s = static_cast<double>(data.size()) / 1e6;
    if (!entry.large && !small_header) {
      std::printf("%-24s (small files)\n", "");
      small_header = true;
    }

    const double sc =
        static_cast<double>(codec.compress(data).size()) / 1e6;
    const auto blocks_res = compress::selective_compress(
        data, compress::SelectivePolicy::always());
    std::vector<sim::BlockTransfer> blocks;
    for (const auto& b : blocks_res.blocks)
      blocks.push_back({static_cast<double>(b.raw_size) / 1e6,
                        static_cast<double>(b.payload_size) / 1e6,
                        b.compressed});

    const double t_raw = simulator.download_uncompressed(s).time_s;
    sim::TransferOptions seq;
    sim::TransferOptions intl;
    intl.interleave = true;
    const double t_gzip =
        simulator.download_compressed(s, sc, "deflate", seq).time_s;
    const double t_zlib =
        simulator.download_selective(blocks, "deflate", seq).time_s;
    const double t_intl =
        simulator.download_selective(blocks, "deflate", intl).time_s;

    std::printf("%-24s %7.2f | %8.2f %10.2f %10.2f\n", entry.name.c_str(),
                s / sc, t_gzip / t_raw, t_zlib / t_raw, t_intl / t_raw);
  }
  std::printf(
      "\nreading: interleaving hides the decompression time inside the "
      "download's idle gaps — the third column drops toward the pure "
      "download time (paper §4.1).\n");
  return 0;
}

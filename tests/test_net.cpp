// Loopback proxy/client integration: real sockets, framed protocol,
// on-demand compression, streaming interleaved decode.
#include <gtest/gtest.h>

#include <thread>

#include "core/planner.h"
#include "net/proxy.h"
#include "workload/generator.h"

namespace ecomp::net {
namespace {

using workload::FileKind;

class ProxyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    xml_ = workload::generate_kind(FileKind::Xml, 300000, 1, 0.4);
    media_ = workload::generate_kind(FileKind::Media, 200000, 2, 0.0);
    tiny_ = workload::generate_kind(FileKind::Mail, 1500, 3, 0.0);
    FileStore store;
    store.put("page.xml", xml_);
    store.put("video.bin", media_);
    store.put("note.txt", tiny_);
    server_ = std::make_unique<ProxyServer>(
        std::move(store),
        core::make_selective_policy(core::EnergyModel::paper_11mbps()));
  }

  Bytes xml_, media_, tiny_;
  std::unique_ptr<ProxyServer> server_;
};

TEST_F(ProxyFixture, RawDownloadIsByteIdentical) {
  DownloadStats st;
  EXPECT_EQ(download(server_->port(), "page.xml", "raw", &st), xml_);
  EXPECT_EQ(st.bytes_on_wire, xml_.size());
}

TEST_F(ProxyFixture, FullCompressionShrinksWire) {
  DownloadStats st;
  EXPECT_EQ(download(server_->port(), "page.xml", "full", &st), xml_);
  EXPECT_LT(st.bytes_on_wire, xml_.size() / 2);
  EXPECT_GT(st.factor(), 2.0);
}

TEST_F(ProxyFixture, SelectiveDecodesBlockwise) {
  DownloadStats st;
  EXPECT_EQ(download(server_->port(), "page.xml", "selective", &st), xml_);
  EXPECT_GT(st.blocks, 1u);
  ASSERT_EQ(st.block_infos.size(), st.blocks);
  for (const auto& b : st.block_infos) EXPECT_TRUE(b.compressed);
}

TEST_F(ProxyFixture, SelectiveShipsIncompressibleRaw) {
  DownloadStats st;
  EXPECT_EQ(download(server_->port(), "video.bin", "selective", &st),
            media_);
  for (const auto& b : st.block_infos) EXPECT_FALSE(b.compressed);
  // Wire cost within a whisker of raw.
  EXPECT_LT(st.bytes_on_wire, media_.size() + 64);
}

TEST_F(ProxyFixture, SelectiveShipsTinyFilesRaw) {
  // 1.5 KB < 3900 B threshold: single raw block.
  DownloadStats st;
  EXPECT_EQ(download(server_->port(), "note.txt", "selective", &st), tiny_);
  ASSERT_EQ(st.block_infos.size(), 1u);
  EXPECT_FALSE(st.block_infos[0].compressed);
}

TEST_F(ProxyFixture, MissingFileReportsError) {
  EXPECT_THROW(download(server_->port(), "nope.bin", "raw"), Error);
}

TEST_F(ProxyFixture, BadModeReportsError) {
  EXPECT_THROW(download(server_->port(), "page.xml", "gzip"), Error);
}

TEST_F(ProxyFixture, ServesSequentialRequests) {
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(download(server_->port(), "page.xml", "selective"), xml_);
}

TEST_F(ProxyFixture, ConcurrentClients) {
  // The worker pool serves these concurrently (tests/test_load.cpp
  // pushes this to 100 clients); here we just want four correct copies.
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      const Bytes got = download(server_->port(), "page.xml", "full");
      if (got == xml_) ++ok;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 4);
}

TEST_F(ProxyFixture, StopIsIdempotent) {
  server_->stop();
  server_->stop();
}

TEST(FileStoreTest, PutGetContains) {
  FileStore fs;
  fs.put("a", {1, 2, 3});
  EXPECT_TRUE(fs.contains("a"));
  EXPECT_FALSE(fs.contains("b"));
  EXPECT_EQ(fs.get("a"), (Bytes{1, 2, 3}));
  EXPECT_THROW(fs.get("b"), Error);
}

TEST_F(ProxyFixture, UploadStoresAndRedownloads) {
  const Bytes data = workload::generate_kind(FileKind::Xml, 250000, 9, 0.4);
  const auto policy =
      core::make_selective_policy(core::EnergyModel::paper_11mbps());
  const std::size_t wire = upload(server_->port(), "uploaded.xml", data,
                                  policy);
  // Compressible data travels compressed.
  EXPECT_LT(wire, data.size() / 2);
  EXPECT_EQ(download(server_->port(), "uploaded.xml", "raw"), data);
}

TEST_F(ProxyFixture, UploadIncompressibleShipsRaw) {
  const Bytes noise = workload::generate_kind(FileKind::Random, 80000, 10,
                                              0.0);
  const auto policy =
      core::make_selective_policy(core::EnergyModel::paper_11mbps());
  const std::size_t wire =
      upload(server_->port(), "noise.bin", noise, policy);
  EXPECT_LT(wire, noise.size() + 128);   // tiny container overhead
  EXPECT_GE(wire, noise.size());         // but nothing compressed
  EXPECT_EQ(download(server_->port(), "noise.bin", "raw"), noise);
}

TEST_F(ProxyFixture, UploadOverwritesExisting) {
  const Bytes v2 = workload::generate_kind(FileKind::Mail, 3000, 11, 0.0);
  const auto policy = compress::SelectivePolicy::always();
  upload(server_->port(), "page.xml", v2, policy);
  EXPECT_EQ(download(server_->port(), "page.xml", "raw"), v2);
}

TEST(ProxyPrecompressed, ServesIdenticalContentFromCache) {
  // §3's "compressed a priori" proxy vs §5's on-demand proxy must be
  // indistinguishable on the wire.
  const Bytes xml = workload::generate_kind(FileKind::Xml, 200000, 30, 0.4);
  const auto policy =
      core::make_selective_policy(core::EnergyModel::paper_11mbps());

  FileStore a;
  a.put("f.xml", xml);
  ProxyServer ondemand(std::move(a), policy,
                       compress::kDefaultBlockSize, false);
  FileStore b;
  b.put("f.xml", xml);
  ProxyServer cached(std::move(b), policy, compress::kDefaultBlockSize,
                     true);

  for (const std::string mode : {"raw", "full", "selective"}) {
    DownloadStats sa, sb;
    EXPECT_EQ(download(ondemand.port(), "f.xml", mode, &sa), xml) << mode;
    EXPECT_EQ(download(cached.port(), "f.xml", mode, &sb), xml) << mode;
    EXPECT_EQ(sa.bytes_on_wire, sb.bytes_on_wire) << mode;
  }
}

TEST(ProxyPrecompressed, UploadInvalidatesCache) {
  const Bytes v1 = workload::generate_kind(FileKind::Xml, 100000, 31, 0.4);
  const Bytes v2 = workload::generate_kind(FileKind::Log, 120000, 32, 0.0);
  const auto policy =
      core::make_selective_policy(core::EnergyModel::paper_11mbps());
  FileStore store;
  store.put("f", v1);
  ProxyServer server(std::move(store), policy,
                     compress::kDefaultBlockSize, true);
  EXPECT_EQ(download(server.port(), "f", "selective"), v1);
  upload(server.port(), "f", v2, compress::SelectivePolicy::always());
  EXPECT_EQ(download(server.port(), "f", "selective"), v2);
  EXPECT_EQ(download(server.port(), "f", "full"), v2);
}

TEST(SocketFraming, RoundTripsFrames) {
  Listener listener(0);
  std::thread server([&] {
    Socket c = listener.accept();
    const Bytes req = recv_frame(c);
    send_frame(c, req);  // echo
  });
  Socket s = connect_local(listener.port());
  const Bytes msg = to_bytes("hello framing");
  send_frame(s, msg);
  EXPECT_EQ(recv_frame(s), msg);
  server.join();
}

TEST(SocketFraming, PeerCloseMidMessageThrows) {
  Listener listener(0);
  std::thread server([&] {
    Socket c = listener.accept();
    send_frame_header(c, 100);   // promise 100 bytes
    c.send_all(Bytes(10, 'x'));  // deliver 10, then close
  });
  Socket s = connect_local(listener.port());
  EXPECT_THROW(recv_frame(s), Error);
  server.join();
}

}  // namespace
}  // namespace ecomp::net

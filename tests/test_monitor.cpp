// Monitoring suite: the fixed-memory time-series store, the rule-driven
// watchdog (energy/latency SLOs, drift, stalls), the proxy's embedded
// sampler, and the `ecomp monitor` / `ecomp top` / `ecomp stats --watch`
// CLI surface.
//
// The headline acceptance pair: a fault-injected proxy run whose
// measured J/MB-served crosses the Eq. 6-derived SLO line must produce
// alert records in the JSONL event log, the flight recorder, and the
// STATS ALERTS section — and `ecomp monitor` must exit 4 — while the
// same workload on a clean channel produces zero alerts and exit 0.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cli/cli.h"
#include "compress/selective.h"
#include "net/fault.h"
#include "net/proxy.h"
#include "obs/events.h"
#include "obs/histogram.h"
#include "obs/json_parse.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/rules.h"
#include "obs/series.h"
#include "prof/flight.h"
#include "workload/generator.h"

namespace ecomp {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------ sample rings

TEST(SampleRing, WrapTotalsAndOrdinals) {
  obs::SampleRing ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 6; ++i)
    ring.push({static_cast<double>(i), static_cast<double>(10 * i)});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 6u);
  // Oldest retained sample is push #2; newest is push #5.
  EXPECT_DOUBLE_EQ(ring.from_oldest(0).v, 20.0);
  EXPECT_DOUBLE_EQ(ring.from_latest(0).v, 50.0);
  EXPECT_DOUBLE_EQ(ring.at_ordinal(4).v, 40.0);
  EXPECT_DOUBLE_EQ(ring.at_ordinal(ring.total() - 1).t_s, 5.0);
}

TEST(Series, TierDownsamplingWithInjectedTime) {
  obs::SeriesOptions so;  // tier1 = 10 s averages, tier2 = 60 s averages
  obs::Series s(so);
  for (int t = 0; t < 100; ++t)
    s.append(static_cast<double>(t), static_cast<double>(t));

  EXPECT_EQ(s.tier(0).size(), 100u);
  EXPECT_DOUBLE_EQ(s.last().v, 99.0);

  // A 10 s bucket is flushed when the first sample of the next decade
  // arrives: buckets [0,10) .. [80,90) are out, [90,100) still open.
  ASSERT_EQ(s.tier(1).size(), 9u);
  EXPECT_DOUBLE_EQ(s.tier(1).from_oldest(0).t_s, 0.0);
  EXPECT_DOUBLE_EQ(s.tier(1).from_oldest(0).v, 4.5);  // mean of 0..9
  EXPECT_DOUBLE_EQ(s.tier(1).from_latest(0).v, 84.5);

  ASSERT_EQ(s.tier(2).size(), 1u);
  EXPECT_DOUBLE_EQ(s.tier(2).from_oldest(0).v, 29.5);  // mean of 0..59
}

TEST(SeriesStore, ToJsonShapeAndPerTierLimit) {
  obs::SeriesStore store;
  for (int t = 0; t < 50; ++t)
    store.append("a.metric", static_cast<double>(t), 2.0 * t);
  store.append("b.metric", 0.0, 7.0);

  const auto doc = obs::parse_json(store.to_json(/*now_s=*/49.0,
                                                 /*max_per_tier=*/8));
  EXPECT_EQ(doc.number_or("now_s", -1), 49.0);
  const auto* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  const auto* a = series->find("a.metric");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->number_or("last", -1), 98.0);
  const auto* tiers = a->find("tiers");
  ASSERT_NE(tiers, nullptr);
  ASSERT_TRUE(tiers->is_array());
  ASSERT_EQ(tiers->array.size(), 3u);
  const auto* samples = tiers->array[0].find("samples");
  ASSERT_NE(samples, nullptr);
  // Only the newest max_per_tier samples are emitted, newest last.
  ASSERT_EQ(samples->array.size(), 8u);
  EXPECT_DOUBLE_EQ(samples->array.back().array[1].number, 98.0);
  EXPECT_DOUBLE_EQ(samples->array.front().array[1].number, 84.0);
  ASSERT_NE(series->find("b.metric"), nullptr);
}

// ------------------------------------------------ scratch histograms

TEST(SlidingHistogramScratch, MatchesAllocatingSnapshot) {
  obs::SlidingHistogram h;
  for (std::uint64_t v = 1; v <= 2000; ++v) h.record(v);
  std::vector<std::uint64_t> scratch(obs::SlidingHistogram::kBuckets);

  const auto a = h.snapshot();
  const auto b = h.snapshot(scratch.data());
  EXPECT_EQ(a.window_count, b.window_count);
  EXPECT_EQ(a.total_count, b.total_count);
  EXPECT_DOUBLE_EQ(a.total_sum, b.total_sum);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p90, b.p90);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_DOUBLE_EQ(a.p999, b.p999);
  EXPECT_EQ(a.from_window, b.from_window);
  for (const double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_DOUBLE_EQ(h.quantile(q), h.quantile(q, scratch.data())) << q;
}

// ------------------------------------------------------ rule parsing

TEST(Rules, ParseGrammarAndSymbolicTokens) {
  const std::string text =
      "# comment line\n"
      "\n"
      "slo jmb net.proxy.j_per_mb_served above eq6 for 2\n"
      "slo lat net.proxy.request_us.p99 above 250000\n"
      "stall conn net.proxy.conn_stall_s 5 for 1\n"
      "drift dj net.proxy.j_per_mb_served z 3.5 warmup 8 alpha 0.1\n";
  const auto rules = obs::parse_rules(
      text, [](const std::string& tok) -> double {
        EXPECT_EQ(tok, "eq6");
        return 4.06;
      });
  ASSERT_EQ(rules.size(), 4u);

  EXPECT_EQ(rules[0].kind, obs::RuleKind::Slo);
  EXPECT_EQ(rules[0].name, "jmb");
  EXPECT_EQ(rules[0].series, "net.proxy.j_per_mb_served");
  EXPECT_TRUE(rules[0].above);
  EXPECT_DOUBLE_EQ(rules[0].threshold, 4.06);
  EXPECT_EQ(rules[0].for_n, 2);

  EXPECT_DOUBLE_EQ(rules[1].threshold, 250000.0);
  EXPECT_EQ(rules[1].for_n, 3);  // slo default

  EXPECT_EQ(rules[2].kind, obs::RuleKind::Stall);
  EXPECT_DOUBLE_EQ(rules[2].threshold, 5.0);
  EXPECT_EQ(rules[2].for_n, 1);

  EXPECT_EQ(rules[3].kind, obs::RuleKind::Drift);
  EXPECT_DOUBLE_EQ(rules[3].z, 3.5);
  EXPECT_EQ(rules[3].warmup, 8);
  EXPECT_DOUBLE_EQ(rules[3].alpha, 0.1);
}

TEST(Rules, ParseErrorsCarryLineNumbers) {
  EXPECT_THROW(obs::parse_rules("bogus x y\n"), Error);
  EXPECT_THROW(obs::parse_rules("slo a b sideways 1\n"), Error);
  EXPECT_THROW(obs::parse_rules("stall a b\n"), Error);
  EXPECT_THROW(obs::parse_rules("slo a b above 1 for\n"), Error);
  EXPECT_THROW(obs::parse_rules("drift a b z nope\n"), Error);
  // Symbolic threshold without a resolver names the line.
  try {
    obs::parse_rules("# one\nslo a b above eq6\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------ watchdog

TEST(Watchdog, SloFiresOncePerEpisodeAndRearms) {
  obs::SeriesStore store;
  obs::Watchdog dog;
  obs::Rule r;
  r.name = "hot";
  r.series = "x";
  r.threshold = 10.0;
  r.for_n = 2;
  dog.add_rule(r);

  double t = 0.0;
  const auto push_eval = [&](double v) {
    store.append("x", t, v);
    t += 1.0;
    std::vector<obs::Alert> fired;
    dog.evaluate(store, &fired);
    return fired.size();
  };

  EXPECT_EQ(push_eval(5.0), 0u);   // below the line
  EXPECT_EQ(push_eval(15.0), 0u);  // breach 1 of 2
  EXPECT_EQ(push_eval(15.0), 1u);  // breach 2: fires
  EXPECT_EQ(push_eval(20.0), 0u);  // still in episode: silent
  EXPECT_EQ(push_eval(1.0), 0u);   // recovery re-arms
  EXPECT_EQ(push_eval(15.0), 0u);
  EXPECT_EQ(push_eval(15.0), 1u);  // second episode fires again
  EXPECT_EQ(dog.alerts_total(), 2u);
  ASSERT_EQ(dog.recent().size(), 2u);
  EXPECT_EQ(dog.recent().back().rule, "hot");
  EXPECT_DOUBLE_EQ(dog.recent().back().value, 15.0);
  EXPECT_DOUBLE_EQ(dog.recent().back().threshold, 10.0);
  // Samples are consumed exactly once: re-evaluating with no new
  // samples never refires.
  std::vector<obs::Alert> fired;
  EXPECT_EQ(dog.evaluate(store, &fired), 0u);
}

TEST(Watchdog, DriftFiresOnRegressionNotOnStableSeries) {
  // Synthetic J/MB-served: stable around the paper's 3.53 J/MB raw
  // line, then a regression steps it to 7 J/MB. The drift rule must
  // stay silent through the stable stretch (including its small noise)
  // and fire on the step.
  const auto run = [](bool regress) {
    obs::SeriesStore store;
    obs::Watchdog dog;
    obs::Rule r;
    r.name = "jdrift";
    r.kind = obs::RuleKind::Drift;
    r.series = "j";
    r.z = 4.0;
    r.warmup = 12;
    dog.add_rule(r);
    std::size_t fired_total = 0;
    for (int i = 0; i < 40; ++i) {
      const double noise = 0.02 * ((i % 5) - 2);  // deterministic wiggle
      const double v =
          (regress && i >= 30) ? 7.0 : 3.53 + noise;
      store.append("j", static_cast<double>(i), v);
      fired_total += dog.evaluate(store, nullptr);
    }
    return fired_total;
  };
  EXPECT_EQ(run(false), 0u);
  EXPECT_GE(run(true), 1u);
}

// ------------------------------------------------------ monitor core

TEST(Monitor, RegistrySampledWithInjectedClock) {
  auto& reg = obs::Registry::global();
  reg.reset();
  auto& ctr = reg.counter("montest.ops");
  auto& gauge = reg.gauge("montest.depth");
  auto& sliding = reg.sliding("montest.lat_us");

  std::uint64_t now = 0;
  obs::Monitor m;
  m.set_clock_for_test([&now] { return now; });

  ctr.add(100);
  gauge.set(42);
  sliding.record(1000);
  m.tick();  // baseline tick: counters seen, no rate yet
  EXPECT_EQ(m.ticks(), 1u);

  now += 2'000'000'000ull;  // 2 s
  ctr.add(100);             // 50/s over the interval
  gauge.set(17);
  m.tick();

  const auto latest = m.latest();
  const auto value_of = [&](const std::string& name) -> double {
    for (const auto& [n, v] : latest)
      if (n == name) return v;
    ADD_FAILURE() << "series missing: " << name;
    return -1.0;
  };
  EXPECT_NEAR(value_of("montest.ops.rate"), 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(value_of("montest.depth"), 17.0);
  EXPECT_NEAR(value_of("montest.lat_us.p50"), 1000.0,
              1000.0 * obs::SlidingHistogram::kMaxRelativeError);

  // A counter reset (registry cleared) clamps the rate to 0, not a
  // huge negative.
  now += 1'000'000'000ull;
  ctr.reset();
  m.tick();
  EXPECT_DOUBLE_EQ(value_of("montest.ops.rate"), 50.0);  // old snapshot
  const auto latest2 = m.latest();
  for (const auto& [n, v] : latest2) {
    if (n == "montest.ops.rate") {
      EXPECT_DOUBLE_EQ(v, 0.0);
    }
  }

  // The SERIES payload covers the sampled names.
  const auto doc = obs::parse_json(m.series_json());
  const auto* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_NE(series->find("montest.depth"), nullptr);
  EXPECT_NE(series->find("montest.ops.rate"), nullptr);
  reg.reset();
}

TEST(Monitor, RulesEvaluatePerTickAndSinkReceivesAlerts) {
  obs::MonitorOptions mo;
  mo.sample_registry = false;  // only the injected source below
  obs::Monitor m(mo);
  std::uint64_t now = 0;
  m.set_clock_for_test([&now] { return now; });

  double value = 1.0;
  m.add_source([&value](double t_s, obs::SeriesStore& store) {
    store.append("src.v", t_s, value);
  });
  obs::Rule r;
  r.name = "src-high";
  r.series = "src.v";
  r.threshold = 5.0;
  r.for_n = 2;
  m.add_rule(r);
  std::vector<obs::Alert> sunk;
  m.set_alert_sink([&sunk](const obs::Alert& a) { sunk.push_back(a); });

  for (int i = 0; i < 3; ++i) {
    now += 1'000'000'000ull;
    m.tick();
  }
  EXPECT_TRUE(sunk.empty());
  value = 9.0;
  for (int i = 0; i < 3; ++i) {
    now += 1'000'000'000ull;
    m.tick();
  }
  ASSERT_EQ(sunk.size(), 1u);  // fired once per episode
  EXPECT_EQ(sunk[0].rule, "src-high");
  EXPECT_EQ(m.alerts_total(), 1u);
  ASSERT_EQ(m.recent_alerts().size(), 1u);
}

// ------------------------------------------------------ event log cap

TEST(EventLogRotation, CapsFileAndKeepsEveryLineParseable) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("ecomp_rotate_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "events.jsonl").string();

  obs::EventLog log;
  log.open(path);
  log.set_max_bytes(2048);
  EXPECT_EQ(log.max_bytes(), 2048u);
  for (int i = 0; i < 100; ++i) {
    obs::Event e;
    e.stage = "close";
    e.side = "test";
    e.conn = i;
    log.emit(e);
  }
  log.close();

  ASSERT_TRUE(fs::exists(path));
  ASSERT_TRUE(fs::exists(path + ".1"));  // rotated generation
  EXPECT_LE(fs::file_size(path), 2048u);
  EXPECT_LE(fs::file_size(path + ".1"), 2048u);

  // Both generations are line-complete JSONL, and the newest event is
  // in the live file (rotation never drops the incoming line).
  int last_conn = -1;
  for (const std::string& p : {path + ".1", path}) {
    std::ifstream in(p);
    std::string line;
    while (std::getline(in, line)) {
      const auto doc = obs::parse_json(line);
      last_conn = static_cast<int>(doc.number_or("conn", -1));
    }
  }
  EXPECT_EQ(last_conn, 99);
  fs::remove_all(dir);
}

TEST(EventLogRotation, AlertEventsCarryValueAndThreshold) {
  obs::Event e;
  e.stage = "alert";
  e.side = "proxy";
  e.name = "energy-slo";
  e.value = 6.5;
  e.threshold = 4.06;
  const auto doc = obs::parse_json(obs::event_to_json(e));
  EXPECT_DOUBLE_EQ(doc.number_or("value", -1), 6.5);
  EXPECT_DOUBLE_EQ(doc.number_or("threshold", -1), 4.06);
  // Unset numeric fields stay omitted.
  obs::Event plain;
  plain.stage = "close";
  const auto doc2 = obs::parse_json(obs::event_to_json(plain));
  EXPECT_EQ(doc2.find("value"), nullptr);
  EXPECT_EQ(doc2.find("threshold"), nullptr);
}

// ------------------------------------------------------ live proxy

class MonitorProxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ecomp_monitor_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    proxy_log_path_ = (dir_ / "proxy.jsonl").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  net::FileStore store_with(const std::string& name, std::size_t bytes) {
    net::FileStore store;
    data_ = workload::generate_kind(workload::FileKind::Xml, bytes,
                                    /*seed=*/7, 0.3);
    store.put(name, data_);
    return store;
  }

  /// Fast-sampling monitor config for tests (20 ms cadence).
  static net::MonitorConfig fast_monitor(double stall_timeout_s = 60.0) {
    net::MonitorConfig mc;
    mc.cadence_ms = 20;
    mc.stall_timeout_s = stall_timeout_s;
    return mc;
  }

  /// Wait until the proxy's monitor has run at least `n` more ticks.
  static void await_ticks(const net::ProxyServer& server, std::uint64_t n) {
    ASSERT_NE(server.monitor(), nullptr);
    const std::uint64_t target = server.monitor()->ticks() + n;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.monitor()->ticks() < target &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_GE(server.monitor()->ticks(), target);
  }

  int run_cli(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return cli::run(args, out_, err_);
  }

  std::string write_rules(const std::string& text) {
    const std::string path = (dir_ / "rules.txt").string();
    cli::write_file(path, as_bytes(text));
    return path;
  }

  fs::path dir_;
  std::string proxy_log_path_;
  Bytes data_;
  std::ostringstream out_, err_;
};

constexpr const char* kEnergyRules =
    "# energy SLO: measured J/MB-served vs the Eq. 6 raw line x margin\n"
    "slo energy-slo net.proxy.j_per_mb_served above eq6*1.15 for 2\n";

TEST_F(MonitorProxyTest, CleanWorkloadProducesZeroAlerts) {
  // 50 fault-free requests: measured J/MB-served sits at (or below) the
  // raw Eq. 1 line, under the 1.15x SLO margin — nothing may fire, in
  // the proxy's own watchdog or in `ecomp monitor`.
  net::ProxyServer server(store_with("f", 100000),
                          compress::SelectivePolicy::always(),
                          compress::kDefaultBlockSize, false, 1,
                          fast_monitor());
  for (int i = 0; i < 50; ++i)
    net::download(server.port(), "f", i % 2 ? "raw" : "selective");
  await_ticks(server, 4);

  ASSERT_NE(server.monitor(), nullptr);
  EXPECT_EQ(server.monitor()->alerts_total(), 0u);
  const auto doc = obs::parse_json(net::fetch_stats(server.port(), "json"));
  const auto* mon = doc.find("monitor");
  ASSERT_NE(mon, nullptr);
  EXPECT_EQ(mon->number_or("alerts_total", -1), 0.0);
  EXPECT_GT(mon->number_or("ticks", 0), 0.0);
  // The measured gauge exists and sits under the SLO line.
  const auto* gauges = mon->find("gauges");
  ASSERT_NE(gauges, nullptr);
  const double jmb = gauges->number_or("net.proxy.j_per_mb_served", -1.0);
  EXPECT_GT(jmb, 0.0);
  EXPECT_LT(jmb, 4.06);  // 3.531 J/MB raw line x 1.15

  // Headless watchdog over the same SLO: clean exit.
  EXPECT_EQ(run_cli({"monitor", "--port", std::to_string(server.port()),
                     "--rules", write_rules(kEnergyRules), "--count", "4",
                     "--interval-ms", "20"}),
            0)
      << out_.str() << err_.str();
  EXPECT_NE(out_.str().find("0 alert(s)"), std::string::npos) << out_.str();
  server.stop();
}

TEST_F(MonitorProxyTest, EnergySloBreachAlertsEverywhere) {
  // Truncate faults burn wire bytes on failed connections; the measured
  // J/MB-served (download energy + waste, over useful MB) crosses the
  // Eq. 6-derived line and the alert must land in the JSONL event log,
  // the flight recorder, the STATS ALERTS section — and `ecomp monitor`
  // must exit 4.
  net::ProxyServer server(store_with("f", 200000),
                          compress::SelectivePolicy::always(),
                          compress::kDefaultBlockSize, false, 1,
                          fast_monitor());
  obs::EventLog proxy_log;
  proxy_log.open(proxy_log_path_);
  server.set_event_log(&proxy_log);
  prof::FlightRecorder::global().clear();
  prof::attach_flight_mirror();

  net::download(server.port(), "f", "raw");  // the useful MB served

  net::FaultSpec spec;
  spec.kind = net::FaultKind::Truncate;
  spec.at_byte = 40000;
  server.set_fault_injector(std::make_shared<net::FaultInjector>(spec, 6));
  for (int i = 0; i < 6; ++i)
    EXPECT_ANY_THROW(net::download(server.port(), "f", "raw"));
  server.set_fault_injector(nullptr);

  await_ticks(server, 4);  // >= 2 breaching samples at 20 ms cadence
  ASSERT_NE(server.monitor(), nullptr);
  EXPECT_GE(server.monitor()->alerts_total(), 1u);
  const auto alerts = server.monitor()->recent_alerts();
  ASSERT_FALSE(alerts.empty());
  const auto energy_alert =
      std::find_if(alerts.begin(), alerts.end(), [](const obs::Alert& a) {
        return a.rule == "energy-slo";
      });
  ASSERT_NE(energy_alert, alerts.end());
  EXPECT_GT(energy_alert->value, energy_alert->threshold);

  // STATS ALERTS section (json + text).
  const auto doc = obs::parse_json(net::fetch_stats(server.port(), "json"));
  const auto* mon = doc.find("monitor");
  ASSERT_NE(mon, nullptr);
  EXPECT_GE(mon->number_or("alerts_total", 0), 1.0);
  const auto* alist = mon->find("alerts");
  ASSERT_NE(alist, nullptr);
  bool in_stats = false;
  for (const auto& a : alist->array)
    if (a.find("rule") && a.find("rule")->string == "energy-slo")
      in_stats = true;
  EXPECT_TRUE(in_stats);
  const std::string text = net::fetch_stats(server.port(), "text");
  EXPECT_NE(text.find("ALERTS"), std::string::npos);
  EXPECT_NE(text.find("alert energy-slo"), std::string::npos);

  // Headless watchdog against the same line: breach exit code.
  EXPECT_EQ(run_cli({"monitor", "--port", std::to_string(server.port()),
                     "--rules", write_rules(kEnergyRules), "--count", "5",
                     "--interval-ms", "20"}),
            4)
      << out_.str() << err_.str();
  EXPECT_NE(out_.str().find("alert energy-slo"), std::string::npos)
      << out_.str();

  server.stop();
  proxy_log.close();

  // The structured alert record landed in the JSONL event log...
  bool logged = false;
  std::ifstream in(proxy_log_path_);
  std::string line;
  while (std::getline(in, line)) {
    const auto e = obs::parse_json(line);
    const auto* stage = e.find("stage");
    if (!stage || stage->string != "alert") continue;
    EXPECT_EQ(e.find("name")->string, "energy-slo");
    EXPECT_GT(e.number_or("value", -1), e.number_or("threshold", 1e9));
    logged = true;
  }
  EXPECT_TRUE(logged);
  // ...and was mirrored into the crash-safe flight recorder.
  EXPECT_NE(prof::FlightRecorder::global().dump_string().find("alert"),
            std::string::npos);
}

TEST_F(MonitorProxyTest, StallWatchdogFiresOnDelayedConnection) {
  // A Delay fault freezes an in-flight connection for 600 ms; the
  // liveness watchdog (stall timeout 150 ms, sampled every 20 ms) must
  // flag the stalled connection while the transfer itself still
  // completes.
  net::ProxyServer server(store_with("f", 120000),
                          compress::SelectivePolicy::always(),
                          compress::kDefaultBlockSize, false, 1,
                          fast_monitor(/*stall_timeout_s=*/0.15));
  net::FaultSpec spec;
  spec.kind = net::FaultKind::Delay;
  spec.at_byte = 5000;
  spec.delay_ms = 600;
  server.set_fault_injector(std::make_shared<net::FaultInjector>(spec, 1));
  const Bytes got = net::download(server.port(), "f", "raw");
  EXPECT_EQ(got, data_);
  server.set_fault_injector(nullptr);

  ASSERT_NE(server.monitor(), nullptr);
  const auto alerts = server.monitor()->recent_alerts();
  const bool stalled =
      std::any_of(alerts.begin(), alerts.end(), [](const obs::Alert& a) {
        return a.rule == "conn-stall";
      });
  EXPECT_TRUE(stalled);
  // The connection finished: the stall gauge recovered to zero.
  await_ticks(server, 2);
  const auto latest = server.monitor()->latest();
  for (const auto& [name, v] : latest) {
    if (name == "net.proxy.conn_stall_s") {
      EXPECT_DOUBLE_EQ(v, 0.0);
    }
  }
  server.stop();
}

// ------------------------------------------------------ CLI surface

TEST_F(MonitorProxyTest, SeriesStatsPayloadAndTopRender) {
  net::ProxyServer server(store_with("f", 60000),
                          compress::SelectivePolicy::always(),
                          compress::kDefaultBlockSize, false, 1,
                          fast_monitor());
  net::download(server.port(), "f", "raw");
  await_ticks(server, 3);

  // SERIES payload: fixed-memory store over the wire.
  const auto doc = obs::parse_json(net::fetch_stats(server.port(), "series"));
  EXPECT_EQ(doc.number_or("schema", -1), 1.0);
  const auto* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_FALSE(series->object.empty());
  EXPECT_NE(series->find("net.proxy.conns_active"), nullptr);

  // `ecomp top` renders a one-frame dashboard over it.
  ASSERT_EQ(run_cli({"top", "--port", std::to_string(server.port()),
                     "--count", "1"}),
            0)
      << err_.str();
  const std::string frame = out_.str();
  EXPECT_NE(frame.find("ecomp top"), std::string::npos);
  EXPECT_NE(frame.find("net.proxy.conns_active"), std::string::npos);
  EXPECT_NE(frame.find("▁"), std::string::npos);  // sparkline block
  EXPECT_NE(frame.find("no alerts"), std::string::npos);
  server.stop();
}

TEST_F(MonitorProxyTest, StatsWatchPrintsDeltasNotTotals) {
  net::ProxyServer server(store_with("f", 50000),
                          compress::SelectivePolicy::always(),
                          compress::kDefaultBlockSize, false, 1,
                          fast_monitor());
  net::download(server.port(), "f", "raw");

  // A request lands between the baseline tick and the second tick; the
  // watch output must report it as a delta, not repeat raw totals.
  std::thread mid([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    net::download(server.port(), "f", "raw");
  });
  const int rc = run_cli({"stats", "--port", std::to_string(server.port()),
                          "--watch", "--count", "2", "--interval-ms",
                          "400"});
  mid.join();
  ASSERT_EQ(rc, 0) << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("baseline:"), std::string::npos) << text;
  // +2: the mid-tick download plus the watch's own STATS poll.
  EXPECT_NE(text.find("requests_total +2"), std::string::npos) << text;
  EXPECT_NE(text.find("/s)"), std::string::npos) << text;
  // Raw totals do not repeat (the baseline count never reappears).
  EXPECT_EQ(text.find("requests_total  "), std::string::npos) << text;
  server.stop();
}

TEST_F(MonitorProxyTest, MonitorCliErrorsAreExitTwo) {
  EXPECT_EQ(run_cli({"monitor", "--port", "1"}), 2);  // no --rules
  EXPECT_NE(err_.str().find("--rules"), std::string::npos);
  EXPECT_EQ(run_cli({"monitor", "--rules", "x"}), 2);  // no --port
  // Unknown symbolic token in the rule file.
  net::ProxyServer server(store_with("f", 20000),
                          compress::SelectivePolicy::always());
  const std::string bad =
      write_rules("slo a net.proxy.j_per_mb_served above eq7\n");
  EXPECT_EQ(run_cli({"monitor", "--port", std::to_string(server.port()),
                     "--rules", bad, "--count", "1"}),
            2);
  EXPECT_NE(err_.str().find("eq7"), std::string::npos) << err_.str();
  server.stop();
}

}  // namespace
}  // namespace ecomp

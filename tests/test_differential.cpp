// Differential testing against the system tools over randomized
// structured inputs: every seed's data goes through our encoders and
// the real decoders (and back). Catches format drift that fixed-input
// interop tests could miss.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "cli/cli.h"
#include "compress/bz2_format.h"
#include "compress/gzip_format.h"
#include "compress/z_format.h"
#include "util/rng.h"

namespace ecomp::compress {
namespace {

namespace fs = std::filesystem;

/// Random structured data: runs, literals, window copies — the same
/// shape family the codec property tests use.
Bytes random_structured(std::uint64_t seed) {
  Rng rng(seed);
  Bytes out;
  const std::size_t target = 20000 + rng.below(60000);
  while (out.size() < target) {
    switch (rng.below(4)) {
      case 0:
        out.insert(out.end(), 1 + rng.below(300), rng.byte());
        break;
      case 1:
        for (int i = 0; i < 40; ++i) out.push_back(rng.byte());
        break;
      case 2:
        for (int i = 0; i < 30; ++i)
          out.push_back(static_cast<std::uint8_t>("etaoin shrdlu"[rng.below(13)]));
        break;
      default:
        if (!out.empty()) {
          const std::size_t d =
              1 + rng.below(std::min<std::size_t>(out.size(), 30000));
          const std::size_t l = 1 + rng.below(500);
          const std::size_t from = out.size() - d;
          for (std::size_t i = 0; i < l; ++i) out.push_back(out[from + i]);
        }
        break;
    }
  }
  return out;
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ecomp_diff_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    fs::create_directories(dir_);
    input_ = random_structured(GetParam());
  }
  void TearDown() override { fs::remove_all(dir_); }

  bool tool_available(const char* tool) {
    return std::system((std::string("command -v ") + tool +
                        " >/dev/null 2>&1")
                           .c_str()) == 0;
  }

  /// Run `cmd`, reading `in` and writing `out`; returns decoded bytes.
  Bytes through_tool(const std::string& cmd, const Bytes& in) {
    const fs::path pin = dir_ / "in";
    const fs::path pout = dir_ / "out";
    cli::write_file(pin.string(), in);
    const std::string full =
        cmd + " < " + pin.string() + " > " + pout.string() + " 2>/dev/null";
    if (std::system(full.c_str()) != 0) return {};
    return cli::read_file(pout.string());
  }

  fs::path dir_;
  Bytes input_;
};

TEST_P(Differential, GzipBothDirections) {
  if (!tool_available("gzip")) GTEST_SKIP();
  EXPECT_EQ(through_tool("gzip -dc", gzip_compress(input_, 9)), input_);
  const Bytes theirs = through_tool("gzip -6c", input_);
  ASSERT_FALSE(theirs.empty());
  EXPECT_EQ(gzip_decompress(theirs), input_);
}

TEST_P(Differential, ZWriteSide) {
  if (!tool_available("uncompress")) GTEST_SKIP();
  EXPECT_EQ(through_tool("uncompress -c", z_compress(input_, 16)), input_);
  EXPECT_EQ(through_tool("uncompress -c", z_compress(input_, 11)), input_);
}

TEST_P(Differential, Bz2BothDirections) {
  if (!tool_available("bzip2")) GTEST_SKIP();
  EXPECT_EQ(through_tool("bzip2 -dc", bz2_compress(input_, 9)), input_);
  const Bytes theirs = through_tool("bzip2 -9c", input_);
  ASSERT_FALSE(theirs.empty());
  EXPECT_EQ(bz2_decompress(theirs), input_);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006));

}  // namespace
}  // namespace ecomp::compress

// The ecomp command-line tool, driven through the cli library.
#include "cli/cli.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "obs/json_parse.h"
#include "obs/metrics.h"
#include "workload/generator.h"

namespace ecomp::cli {
namespace {

namespace fs = std::filesystem;

class CliFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ecomp_cli_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    input_ = workload::generate_kind(workload::FileKind::Xml, 200000,
                                     /*seed=*/1, 0.3);
    in_path_ = (dir_ / "input.xml").string();
    write_file(in_path_, input_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_cli(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return run(args, out_, err_);
  }

  fs::path dir_;
  Bytes input_;
  std::string in_path_;
  std::ostringstream out_, err_;
};

TEST_F(CliFixture, CompressDecompressRoundTripPerCodec) {
  for (const std::string codec :
       {"deflate", "lzw", "bwt", "selective", "gz", "Z", "bz2"}) {
    const std::string packed = (dir_ / (codec + ".ec")).string();
    const std::string restored = (dir_ / (codec + ".out")).string();
    ASSERT_EQ(run_cli({"compress", "-c", codec, in_path_, packed}), 0)
        << err_.str();
    EXPECT_NE(out_.str().find("factor"), std::string::npos);
    ASSERT_EQ(run_cli({"decompress", packed, restored}), 0) << err_.str();
    EXPECT_EQ(read_file(restored), input_);
  }
}

TEST_F(CliFixture, DecompressSniffsMagic) {
  // Same decompress invocation handles every container type (previous
  // test already proves it); here check a wrong file is rejected.
  const std::string junk = (dir_ / "junk").string();
  write_file(junk, Bytes{9, 9, 9, 9, 9, 9});
  EXPECT_EQ(run_cli({"decompress", junk, (dir_ / "x").string()}), 2);
  EXPECT_NE(err_.str().find("magic"), std::string::npos);
}

TEST_F(CliFixture, InspectSelectiveListsBlocks) {
  const std::string packed = (dir_ / "sel.ec").string();
  ASSERT_EQ(run_cli({"compress", "-c", "selective", "-b", "32768", in_path_,
                     packed}),
            0);
  ASSERT_EQ(run_cli({"inspect", packed}), 0) << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("container: selective"), std::string::npos);
  EXPECT_NE(text.find("block 0"), std::string::npos);
  EXPECT_NE(text.find("original bytes: 200000"), std::string::npos);
}

TEST_F(CliFixture, PlanGivesAdvice) {
  ASSERT_EQ(run_cli({"plan", in_path_}), 0) << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("sampled factors"), std::string::npos);
  EXPECT_NE(text.find("advice:"), std::string::npos);
  // Compressible XML must not be shipped raw.
  EXPECT_EQ(text.find("no compression"), std::string::npos);
}

TEST_F(CliFixture, PlanAt2Mbps) {
  ASSERT_EQ(run_cli({"plan", "-r", "2", in_path_}), 0) << err_.str();
  EXPECT_NE(out_.str().find("advice:"), std::string::npos);
}

TEST_F(CliFixture, CorpusMaterializesFiles) {
  const std::string outdir = (dir_ / "corpus").string();
  ASSERT_EQ(run_cli({"corpus", "-s", "0.002", outdir}), 0) << err_.str();
  std::size_t count = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(outdir))
    ++count;
  EXPECT_EQ(count, 37u);
  EXPECT_TRUE(fs::exists(fs::path(outdir) / "news96.xml"));
}

TEST_F(CliFixture, UsageErrors) {
  EXPECT_EQ(run_cli({}), 1);
  EXPECT_EQ(run_cli({"frobnicate"}), 1);
  EXPECT_EQ(run_cli({"compress", in_path_}), 2);  // missing OUT
  EXPECT_EQ(run_cli({"compress", "-x", in_path_, "y"}), 1);
  EXPECT_EQ(run_cli({"compress", "-c"}), 1);  // missing value
  EXPECT_NE(err_.str().find("usage"), std::string::npos);
}

TEST_F(CliFixture, MissingInputFileFails) {
  EXPECT_EQ(run_cli({"compress", (dir_ / "nope").string(),
                     (dir_ / "out").string()}),
            2);
}

TEST_F(CliFixture, BadCodecNameFails) {
  EXPECT_EQ(
      run_cli({"compress", "-c", "zstd", in_path_, (dir_ / "o").string()}),
      2);
}

// ------------------------------------------------- corrupt-input handling
// decompress/inspect on damaged containers must report exit 2 with a
// clear message — never crash, never succeed silently (except benign
// byte flips a format can't detect, which may still round-trip).

TEST_F(CliFixture, TruncatedContainersFailCleanly) {
  // ".Z" is absent: the real compress(1) format carries no length or
  // checksum, so a cut at a code boundary decodes cleanly by design
  // (it is covered by the byte-flip test below instead).
  for (const std::string codec :
       {"deflate", "lzw", "bwt", "selective", "gz", "bz2"}) {
    const std::string packed = (dir_ / (codec + ".ec")).string();
    ASSERT_EQ(run_cli({"compress", "-c", codec, in_path_, packed}), 0)
        << err_.str();
    const Bytes full = read_file(packed);
    // Cut at a spread of points: inside the magic, inside the header,
    // and at several places in the payload.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7},
          full.size() / 4, full.size() / 2, full.size() - 1}) {
      if (keep >= full.size()) continue;
      const std::string cut = (dir_ / "cut.bin").string();
      write_file(cut, Bytes(full.begin(), full.begin() + keep));
      const int code =
          run_cli({"decompress", cut, (dir_ / "cut.out").string()});
      EXPECT_EQ(code, 2) << codec << " truncated to " << keep
                         << " bytes: exit " << code << "\n"
                         << err_.str();
      EXPECT_FALSE(err_.str().empty()) << codec << " @" << keep;
      EXPECT_EQ(run_cli({"inspect", cut}), 2) << codec << " @" << keep;
    }
  }
}

TEST_F(CliFixture, CorruptedMagicFailsCleanly) {
  for (const std::string codec : {"selective", "gz", "Z", "bz2"}) {
    const std::string packed = (dir_ / (codec + ".ec")).string();
    ASSERT_EQ(run_cli({"compress", "-c", codec, in_path_, packed}), 0);
    Bytes data = read_file(packed);
    data[0] ^= 0xff;  // break the magic
    const std::string bad = (dir_ / "bad.bin").string();
    write_file(bad, data);
    EXPECT_EQ(run_cli({"decompress", bad, (dir_ / "bad.out").string()}), 2)
        << codec;
    EXPECT_FALSE(err_.str().empty());
    EXPECT_EQ(run_cli({"inspect", bad}), 2) << codec;
  }
}

TEST_F(CliFixture, PayloadByteFlipsNeverCrash) {
  // Deeper damage: flip bytes throughout the container. Formats with
  // checksums must reject (2); at worst a flip is benign and the file
  // still round-trips (0) — but no exit code other than 0/2 and no
  // crash is acceptable.
  for (const std::string codec : {"selective", "gz", "bz2", "Z"}) {
    const std::string packed = (dir_ / (codec + ".ec")).string();
    ASSERT_EQ(run_cli({"compress", "-c", codec, in_path_, packed}), 0);
    const Bytes full = read_file(packed);
    for (std::size_t i = 1; i < full.size(); i += full.size() / 13 + 1) {
      Bytes data = full;
      data[i] ^= 0x5a;
      const std::string bad = (dir_ / "flip.bin").string();
      write_file(bad, data);
      const int code =
          run_cli({"decompress", bad, (dir_ / "flip.out").string()});
      EXPECT_TRUE(code == 0 || code == 2)
          << codec << " flip @" << i << ": exit " << code << "\n"
          << err_.str();
    }
  }
}

// --------------------------------------------------- telemetry emission

TEST_F(CliFixture, TraceAndMetricsFlagsWriteJson) {
  const std::string packed = (dir_ / "out.ec").string();
  const std::string trace = (dir_ / "trace.json").string();
  const std::string metrics = (dir_ / "metrics.json").string();
  ASSERT_EQ(run_cli({"compress", "--trace", trace, "--metrics", metrics,
                     in_path_, packed}),
            0)
      << err_.str();
  const std::string tj = to_string(read_file(trace));
  EXPECT_NE(tj.find("\"traceEvents\""), std::string::npos);
  const std::string mj = to_string(read_file(metrics));
  EXPECT_NE(mj.find("\"counters\""), std::string::npos);
  // Span/counter content only exists when instrumentation is compiled in.
  if (obs::kObsEnabled) {
    EXPECT_NE(tj.find("\"compress\""), std::string::npos);
    EXPECT_NE(mj.find("\"cli.bytes_in\""), std::string::npos);
  }
}

TEST_F(CliFixture, TraceEnvFallback) {
  const std::string trace = (dir_ / "env_trace.json").string();
  ::setenv("ECOMP_TRACE", trace.c_str(), 1);
  const int code =
      run_cli({"compress", in_path_, (dir_ / "out.ec").string()});
  ::unsetenv("ECOMP_TRACE");
  ASSERT_EQ(code, 0) << err_.str();
  EXPECT_NE(to_string(read_file(trace)).find("\"traceEvents\""),
            std::string::npos);
}

TEST_F(CliFixture, UnwritableTelemetryPathsRejectedUpFront) {
  // --trace and --metrics destinations are probed before any work runs:
  // exit 2, a clear message, and no output artifact is produced.
  const std::string packed = (dir_ / "out.ec").string();
  EXPECT_EQ(run_cli({"compress", "--trace", "/nonexistent-dir/t.json",
                     in_path_, packed}),
            2);
  EXPECT_NE(err_.str().find("cannot open for writing"), std::string::npos)
      << err_.str();
  EXPECT_FALSE(fs::exists(packed));
  EXPECT_EQ(run_cli({"compress", "--metrics", "/nonexistent-dir/m.json",
                     in_path_, packed}),
            2);
  EXPECT_NE(err_.str().find("cannot open for writing"), std::string::npos)
      << err_.str();
  EXPECT_FALSE(fs::exists(packed));
}

TEST_F(CliFixture, UnwritableProbeLeavesExistingFilesIntact) {
  // The probe opens in append mode, so pointing --trace at an existing
  // file must not clobber it when the command later fails.
  const std::string trace = (dir_ / "keep.json").string();
  write_file(trace, Bytes{'x', 'y', 'z'});
  EXPECT_EQ(run_cli({"compress", "--trace", trace, (dir_ / "nope").string(),
                     (dir_ / "out.ec").string()}),
            2);  // input missing -> command fails after the probe
  // The failed run still flushes a (valid) trace; the probe itself must
  // not have truncated the file before that point. Easiest check: run a
  // command that fails argument parsing, where nothing is flushed.
  write_file(trace, Bytes{'x', 'y', 'z'});
  EXPECT_EQ(run_cli({"compress", "--trace", trace, "-c"}), 1);
  EXPECT_EQ(read_file(trace), (Bytes{'x', 'y', 'z'}));
}

// --------------------------------------------------- energy attribution

TEST_F(CliFixture, EnergyReportsSavingsForCompressibleInput) {
  ASSERT_EQ(run_cli({"energy", in_path_}), 0) << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("scenario: interleaved(deflate) at 11 Mb/s"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("saves"), std::string::npos);
  // Plain run prints no per-component table.
  EXPECT_EQ(text.find("component"), std::string::npos);
}

TEST_F(CliFixture, EnergyBreakdownPrintsTheComponentTree) {
  ASSERT_EQ(run_cli({"energy", "--breakdown", "-r", "2", "-c", "lzw",
                     in_path_}),
            0)
      << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("scenario: interleaved(lzw) at 2 Mb/s"),
            std::string::npos)
      << text;
  // The table prints the tree with indented short names: a "radio" root
  // with "recv"/"startup" children, the codec under "decompress", and a
  // closing total row.
  EXPECT_NE(text.find("component"), std::string::npos) << text;
  EXPECT_NE(text.find("radio"), std::string::npos) << text;
  EXPECT_NE(text.find("recv"), std::string::npos) << text;
  EXPECT_NE(text.find("startup"), std::string::npos) << text;
  EXPECT_NE(text.find("decompress"), std::string::npos) << text;
  EXPECT_NE(text.find("lzw"), std::string::npos) << text;
  EXPECT_NE(text.find("total"), std::string::npos) << text;
}

TEST_F(CliFixture, EnergyJsonCarriesAValidatedLedger) {
  ASSERT_EQ(run_cli({"energy", "--json", in_path_}), 0) << err_.str();
  const auto doc = obs::parse_json(out_.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("scenario")->string, "interleaved(deflate)");
  EXPECT_DOUBLE_EQ(doc.number_or("rate_mbps", 0.0), 11.0);
  EXPECT_NEAR(doc.number_or("original_mb", 0.0), 0.2, 1e-12);
  const obs::JsonValue* ledger = doc.find("ledger");
  ASSERT_NE(ledger, nullptr);
  const double total = ledger->number_or("total_energy_j", -1.0);
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total, doc.number_or("raw_energy_j", 0.0));
  // Root components sum to the total (the ledger invariant, end to end).
  const obs::JsonValue* comps = ledger->find("components");
  ASSERT_NE(comps, nullptr);
  double roots = 0.0;
  for (const auto& [path, node] : comps->object)
    if (path.find('/') == std::string::npos)
      roots += node.number_or("energy_j", 0.0);
  EXPECT_NEAR(roots, total, 1e-9);
}

TEST_F(CliFixture, EnergyReplaysSelectiveContainers) {
  const std::string packed = (dir_ / "sel.ec").string();
  ASSERT_EQ(run_cli({"compress", "-c", "selective", "-b", "32768", in_path_,
                     packed}),
            0);
  ASSERT_EQ(run_cli({"energy", packed}), 0) << err_.str();
  EXPECT_NE(out_.str().find("selective-replay(7 blocks)"), std::string::npos)
      << out_.str();
}

TEST_F(CliFixture, EnergyUsageErrors) {
  EXPECT_EQ(run_cli({"energy"}), 2);                      // missing IN
  EXPECT_EQ(run_cli({"energy", "-r", "5", in_path_}), 2); // bad rate
  EXPECT_EQ(run_cli({"energy", (dir_ / "nope").string()}), 2);
}

}  // namespace
}  // namespace ecomp::cli

// The ecomp command-line tool, driven through the cli library.
#include "cli/cli.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "workload/generator.h"

namespace ecomp::cli {
namespace {

namespace fs = std::filesystem;

class CliFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ecomp_cli_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    input_ = workload::generate_kind(workload::FileKind::Xml, 200000,
                                     /*seed=*/1, 0.3);
    in_path_ = (dir_ / "input.xml").string();
    write_file(in_path_, input_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_cli(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return run(args, out_, err_);
  }

  fs::path dir_;
  Bytes input_;
  std::string in_path_;
  std::ostringstream out_, err_;
};

TEST_F(CliFixture, CompressDecompressRoundTripPerCodec) {
  for (const std::string codec :
       {"deflate", "lzw", "bwt", "selective", "gz", "Z", "bz2"}) {
    const std::string packed = (dir_ / (codec + ".ec")).string();
    const std::string restored = (dir_ / (codec + ".out")).string();
    ASSERT_EQ(run_cli({"compress", "-c", codec, in_path_, packed}), 0)
        << err_.str();
    EXPECT_NE(out_.str().find("factor"), std::string::npos);
    ASSERT_EQ(run_cli({"decompress", packed, restored}), 0) << err_.str();
    EXPECT_EQ(read_file(restored), input_);
  }
}

TEST_F(CliFixture, DecompressSniffsMagic) {
  // Same decompress invocation handles every container type (previous
  // test already proves it); here check a wrong file is rejected.
  const std::string junk = (dir_ / "junk").string();
  write_file(junk, Bytes{9, 9, 9, 9, 9, 9});
  EXPECT_EQ(run_cli({"decompress", junk, (dir_ / "x").string()}), 2);
  EXPECT_NE(err_.str().find("magic"), std::string::npos);
}

TEST_F(CliFixture, InspectSelectiveListsBlocks) {
  const std::string packed = (dir_ / "sel.ec").string();
  ASSERT_EQ(run_cli({"compress", "-c", "selective", "-b", "32768", in_path_,
                     packed}),
            0);
  ASSERT_EQ(run_cli({"inspect", packed}), 0) << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("container: selective"), std::string::npos);
  EXPECT_NE(text.find("block 0"), std::string::npos);
  EXPECT_NE(text.find("original bytes: 200000"), std::string::npos);
}

TEST_F(CliFixture, PlanGivesAdvice) {
  ASSERT_EQ(run_cli({"plan", in_path_}), 0) << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("sampled factors"), std::string::npos);
  EXPECT_NE(text.find("advice:"), std::string::npos);
  // Compressible XML must not be shipped raw.
  EXPECT_EQ(text.find("no compression"), std::string::npos);
}

TEST_F(CliFixture, PlanAt2Mbps) {
  ASSERT_EQ(run_cli({"plan", "-r", "2", in_path_}), 0) << err_.str();
  EXPECT_NE(out_.str().find("advice:"), std::string::npos);
}

TEST_F(CliFixture, CorpusMaterializesFiles) {
  const std::string outdir = (dir_ / "corpus").string();
  ASSERT_EQ(run_cli({"corpus", "-s", "0.002", outdir}), 0) << err_.str();
  std::size_t count = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(outdir))
    ++count;
  EXPECT_EQ(count, 37u);
  EXPECT_TRUE(fs::exists(fs::path(outdir) / "news96.xml"));
}

TEST_F(CliFixture, UsageErrors) {
  EXPECT_EQ(run_cli({}), 1);
  EXPECT_EQ(run_cli({"frobnicate"}), 1);
  EXPECT_EQ(run_cli({"compress", in_path_}), 2);  // missing OUT
  EXPECT_EQ(run_cli({"compress", "-x", in_path_, "y"}), 1);
  EXPECT_EQ(run_cli({"compress", "-c"}), 1);  // missing value
  EXPECT_NE(err_.str().find("usage"), std::string::npos);
}

TEST_F(CliFixture, MissingInputFileFails) {
  EXPECT_EQ(run_cli({"compress", (dir_ / "nope").string(),
                     (dir_ / "out").string()}),
            2);
}

TEST_F(CliFixture, BadCodecNameFails) {
  EXPECT_EQ(
      run_cli({"compress", "-c", "zstd", in_path_, (dir_ / "o").string()}),
      2);
}

}  // namespace
}  // namespace ecomp::cli

#include "util/bitio.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ecomp {
namespace {

TEST(BitIoLsb, RoundTripFixedPattern) {
  BitWriterLsb w;
  w.put(0b101, 3);
  w.put(0xff, 8);
  w.put(0, 1);
  w.put(0x1234, 16);
  const Bytes buf = w.take();
  BitReaderLsb r(buf);
  EXPECT_EQ(r.get(3), 0b101u);
  EXPECT_EQ(r.get(8), 0xffu);
  EXPECT_EQ(r.get(1), 0u);
  EXPECT_EQ(r.get(16), 0x1234u);
}

TEST(BitIoLsb, SingleBits) {
  BitWriterLsb w;
  const int bits[] = {1, 0, 1, 1, 0, 0, 1, 0, 1};
  for (int b : bits) w.put(static_cast<std::uint32_t>(b), 1);
  const Bytes buf = w.take();
  BitReaderLsb r(buf);
  for (int b : bits) EXPECT_EQ(r.get(1), static_cast<std::uint32_t>(b));
}

TEST(BitIoLsb, ByteOrderMatchesDeflateConvention) {
  // LSB-first: first bit written lands in bit 0 of the first byte.
  BitWriterLsb w;
  w.put(1, 1);
  const Bytes buf = w.take();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0x01);
}

TEST(BitIoLsb, AlignAndAlignedBytes) {
  BitWriterLsb w;
  w.put(0b11, 2);
  w.align_to_byte();
  w.put_aligned_byte(0xAB);
  const Bytes buf = w.take();
  ASSERT_EQ(buf.size(), 2u);
  BitReaderLsb r(buf);
  EXPECT_EQ(r.get(2), 0b11u);
  r.align_to_byte();
  EXPECT_EQ(r.get_aligned_byte(), 0xAB);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitIoLsb, PeekDoesNotConsume) {
  BitWriterLsb w;
  w.put(0x5A, 8);
  const Bytes buf = w.take();
  BitReaderLsb r(buf);
  EXPECT_EQ(r.peek(4), 0xAu);
  EXPECT_EQ(r.peek(4), 0xAu);
  EXPECT_EQ(r.get(8), 0x5Au);
}

TEST(BitIoLsb, PeekPastEndPadsWithZeros) {
  BitWriterLsb w;
  w.put(0b1, 1);
  const Bytes buf = w.take();  // one byte: 0x01
  BitReaderLsb r(buf);
  EXPECT_EQ(r.peek(16), 0x01u);
}

TEST(BitIoLsb, ReadPastEndThrows) {
  BitWriterLsb w;
  w.put(3, 2);
  const Bytes buf = w.take();
  BitReaderLsb r(buf);
  r.get(8);
  EXPECT_THROW(r.get(8), Error);
}

TEST(BitIoLsb, BadCountThrows) {
  BitWriterLsb w;
  EXPECT_THROW(w.put(0, 33), Error);
  EXPECT_THROW(w.put(0, -1), Error);
  Bytes buf{0};
  BitReaderLsb r(buf);
  EXPECT_THROW(r.get(33), Error);
}

TEST(BitIoMsb, RoundTripFixedPattern) {
  BitWriterMsb w;
  w.put(0b101, 3);
  w.put(0x1234, 16);
  w.put(0x7, 3);
  const Bytes buf = w.take();
  BitReaderMsb r(buf);
  EXPECT_EQ(r.get(3), 0b101u);
  EXPECT_EQ(r.get(16), 0x1234u);
  EXPECT_EQ(r.get(3), 0x7u);
}

TEST(BitIoMsb, ByteOrderMatchesBzipConvention) {
  // MSB-first: first bit written lands in bit 7 of the first byte.
  BitWriterMsb w;
  w.put(1, 1);
  const Bytes buf = w.take();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0x80);
}

TEST(BitIoMsb, ReadPastEndThrows) {
  BitWriterMsb w;
  w.put(0xA, 4);
  const Bytes buf = w.take();
  BitReaderMsb r(buf);
  r.get(8);
  EXPECT_THROW(r.get(1), Error);
}

class BitIoRandomRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitIoRandomRoundTrip, Lsb) {
  Rng rng(GetParam());
  std::vector<std::pair<std::uint32_t, int>> items;
  BitWriterLsb w;
  for (int i = 0; i < 2000; ++i) {
    const int count = static_cast<int>(rng.range(0, 32));
    std::uint32_t v = static_cast<std::uint32_t>(rng.next());
    if (count < 32) v &= (1u << count) - 1;
    items.emplace_back(v, count);
    w.put(v, count);
  }
  const Bytes buf = w.take();
  BitReaderLsb r(buf);
  for (const auto& [v, count] : items) EXPECT_EQ(r.get(count), v);
}

TEST_P(BitIoRandomRoundTrip, Msb) {
  Rng rng(GetParam() ^ 0xabcdef);
  std::vector<std::pair<std::uint32_t, int>> items;
  BitWriterMsb w;
  for (int i = 0; i < 2000; ++i) {
    const int count = static_cast<int>(rng.range(0, 32));
    std::uint32_t v = static_cast<std::uint32_t>(rng.next());
    if (count < 32) v &= (1u << count) - 1;
    if (count == 0) v = 0;
    items.emplace_back(v, count);
    w.put(v, count);
  }
  const Bytes buf = w.take();
  BitReaderMsb r(buf);
  for (const auto& [v, count] : items) EXPECT_EQ(r.get(count), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIoRandomRoundTrip,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

}  // namespace
}  // namespace ecomp

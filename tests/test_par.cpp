// The parallel block pipeline: thread pool + SPSC queue primitives, the
// determinism guarantee of the parallel selective codec (byte-identical
// containers at any thread count), the threaded interleaved downloader
// against its serial twin, and the LZ77 hot-path copy loop.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "compress/lz77.h"
#include "compress/selective.h"
#include "core/interleave.h"
#include "net/proxy.h"
#include "par/spsc_queue.h"
#include "par/thread_pool.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ecomp {
namespace {

// ------------------------------------------------------------ primitives

TEST(ThreadPool, AsyncReturnsValues) {
  par::ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.async([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  par::ThreadPool pool(2);
  auto f = pool.async([]() -> int { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

TEST(ThreadPool, BoundedQueueBlocksInsteadOfDropping) {
  // A tiny queue forces submit() to block; every task must still run.
  par::ThreadPool pool(2, 2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.async([&] { ++ran; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    par::ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) pool.submit([&] { ++ran; });
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(SpscQueue, PreservesOrder) {
  par::SpscQueue<int> q(4);
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) ASSERT_TRUE(q.push(int(i)));
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) EXPECT_EQ(*v, expected++);
  EXPECT_EQ(expected, 1000);
  producer.join();
}

TEST(SpscQueue, CloseUnblocksProducerAndDrainsConsumer) {
  par::SpscQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] {
    // Queue is full; this push blocks until close(), then reports it.
    EXPECT_FALSE(q.push(2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  // The element accepted before close() is still delivered.
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(q.pop().has_value());
}

// --------------------------------------------- parallel selective codec

Bytes corpus_bytes(workload::FileKind kind, std::size_t size,
                   std::uint64_t seed) {
  return workload::generate_kind(kind, size, seed, 0.2);
}

TEST(ParallelSelective, ContainerByteIdenticalAcrossThreadCounts) {
  // The determinism guarantee: corpora x policies x levels x threads,
  // every parallel container must match the serial bytes exactly.
  compress::SelectivePolicy energy_like;
  energy_like.min_block_bytes = 1000;
  energy_like.energy_test = [](std::size_t raw, std::size_t comp) {
    return comp * 10 < raw * 9;  // pure -> trivially thread-safe
  };
  const std::vector<compress::SelectivePolicy> policies = {
      compress::SelectivePolicy::always(),
      compress::SelectivePolicy::never(), energy_like};
  const std::vector<Bytes> corpora = {
      corpus_bytes(workload::FileKind::TarMixed, 220000, 1),
      corpus_bytes(workload::FileKind::Xml, 180000, 2),
      corpus_bytes(workload::FileKind::Media, 150000, 3)};
  constexpr std::size_t kBlock = 16 * 1024;
  for (std::size_t c = 0; c < corpora.size(); ++c) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (const int level : {1, 9}) {
        const auto serial = compress::selective_compress(
            corpora[c], policies[p], kBlock, level, 1);
        for (const unsigned threads : {2u, 4u, 8u}) {
          const auto par = compress::selective_compress(
              corpora[c], policies[p], kBlock, level, threads);
          EXPECT_EQ(par.container, serial.container)
              << "corpus " << c << " policy " << p << " level " << level
              << " threads " << threads;
          EXPECT_EQ(par.blocks.size(), serial.blocks.size());
        }
      }
    }
  }
}

TEST(ParallelSelective, DecompressMatchesAtEveryThreadCount) {
  const Bytes input = corpus_bytes(workload::FileKind::TarMixed, 300000, 4);
  const auto res = compress::selective_compress(
      input, compress::SelectivePolicy::always(), 16 * 1024);
  for (const unsigned threads : {1u, 2u, 4u, 8u})
    EXPECT_EQ(compress::selective_decompress(res.container, threads), input)
        << threads;
}

TEST(ParallelSelective, DecompressEdgeCases) {
  // Empty input and a single sub-block input exercise the workers <= 1
  // fallback inside the parallel entry points.
  for (const Bytes& input :
       {Bytes{}, corpus_bytes(workload::FileKind::Xml, 500, 5)}) {
    const auto res = compress::selective_compress(
        input, compress::SelectivePolicy::always());
    EXPECT_EQ(compress::selective_decompress(res.container, 4), input);
  }
}

TEST(ParallelSelective, StreamEncoderChunksIdenticalToSerial) {
  const Bytes input = corpus_bytes(workload::FileKind::TarMixed, 200000, 6);
  const auto policy = compress::SelectivePolicy::always();
  constexpr std::size_t kBlock = 16 * 1024;

  compress::SelectiveStreamEncoder serial(input, policy, kBlock, 9, 1);
  std::vector<Bytes> serial_chunks;
  while (!serial.done()) serial_chunks.push_back(serial.next_chunk());

  for (const unsigned threads : {2u, 4u}) {
    compress::SelectiveStreamEncoder par(input, policy, kBlock, 9, threads);
    std::vector<Bytes> chunks;
    while (!par.done()) chunks.push_back(par.next_chunk());
    EXPECT_EQ(chunks, serial_chunks) << threads;
    ASSERT_EQ(par.blocks().size(), serial.blocks().size());
    for (std::size_t i = 0; i < par.blocks().size(); ++i)
      EXPECT_EQ(par.blocks()[i].payload_size,
                serial.blocks()[i].payload_size);
  }
}

TEST(ParallelSelective, AbandonedStreamEncoderShutsDownCleanly) {
  // Destroying the encoder with blocks still in flight must join the
  // pool without touching freed state.
  const Bytes input = corpus_bytes(workload::FileKind::TarMixed, 200000, 7);
  compress::SelectiveStreamEncoder enc(
      input, compress::SelectivePolicy::always(), 16 * 1024, 9, 4);
  enc.next_chunk();  // header
  enc.next_chunk();  // first block; the lookahead window is now full
}

// ------------------------------------------- threaded interleaving

/// Feed `wire` in deterministically varying chunk sizes.
core::InterleavedDownloader::ChunkSource stuttering_source(
    const Bytes& wire, std::uint64_t seed) {
  auto off = std::make_shared<std::size_t>(0);
  auto rng = std::make_shared<Rng>(seed);
  return [&wire, off, rng](std::uint8_t* dst,
                           std::size_t max) -> std::size_t {
    if (*off >= wire.size()) return 0;
    const std::size_t want =
        1 + static_cast<std::size_t>(rng->uniform() * 2000);
    const std::size_t n =
        std::min({max, want, wire.size() - *off});
    std::copy_n(wire.data() + *off, n, dst);
    *off += n;
    return n;
  };
}

TEST(ThreadedInterleave, PipelinedMatchesSerial) {
  const Bytes input = corpus_bytes(workload::FileKind::TarMixed, 250000, 8);
  const auto res = compress::selective_compress(
      input, compress::SelectivePolicy::always(), 16 * 1024);

  core::InterleavedDownloader serial_dl(4096);
  std::vector<compress::BlockInfo> serial_infos;
  Bytes serial_blocks;
  const Bytes serial_out = serial_dl.run(
      stuttering_source(res.container, 42),
      [&](ByteSpan b) {
        serial_blocks.insert(serial_blocks.end(), b.begin(), b.end());
      },
      &serial_infos);
  EXPECT_EQ(serial_out, input);
  EXPECT_EQ(serial_blocks, input);

  core::InterleavedDownloader::Options opt;
  opt.chunk_bytes = 4096;
  opt.threads = 2;
  opt.queue_chunks = 4;
  core::InterleavedDownloader pipe_dl(opt);
  std::vector<compress::BlockInfo> pipe_infos;
  Bytes pipe_blocks;
  const Bytes pipe_out = pipe_dl.run(
      stuttering_source(res.container, 42),
      [&](ByteSpan b) {
        pipe_blocks.insert(pipe_blocks.end(), b.begin(), b.end());
      },
      &pipe_infos);
  EXPECT_EQ(pipe_out, serial_out);
  EXPECT_EQ(pipe_blocks, serial_blocks);
  ASSERT_EQ(pipe_infos.size(), serial_infos.size());
  for (std::size_t i = 0; i < pipe_infos.size(); ++i) {
    EXPECT_EQ(pipe_infos[i].raw_size, serial_infos[i].raw_size);
    EXPECT_EQ(pipe_infos[i].payload_size, serial_infos[i].payload_size);
  }
}

void expect_same_recovery(const compress::RecoveryReport& a,
                          const compress::RecoveryReport& b) {
  EXPECT_EQ(a.blocks_total, b.blocks_total);
  EXPECT_EQ(a.blocks_recovered, b.blocks_recovered);
  EXPECT_EQ(a.blocks_lost, b.blocks_lost);
  EXPECT_EQ(a.bytes_recovered, b.bytes_recovered);
  EXPECT_EQ(a.bytes_lost, b.bytes_lost);
  EXPECT_EQ(a.framing_truncated, b.framing_truncated);
  EXPECT_EQ(a.crc_ok, b.crc_ok);
}

TEST(ThreadedInterleave, TolerantTruncationMatchesSerial) {
  const Bytes input = corpus_bytes(workload::FileKind::Xml, 200000, 9);
  const auto res = compress::selective_compress(
      input, compress::SelectivePolicy::always(), 16 * 1024);
  const Bytes truncated(res.container.begin(),
                        res.container.begin() +
                            static_cast<std::ptrdiff_t>(
                                res.container.size() * 3 / 5));

  core::InterleavedDownloader::Options serial_opt;
  serial_opt.chunk_bytes = 4096;
  serial_opt.tolerant = true;
  core::InterleavedDownloader serial_dl(serial_opt);
  const Bytes serial_out =
      serial_dl.run(stuttering_source(truncated, 7));
  EXPECT_TRUE(serial_dl.recovery().framing_truncated);
  EXPECT_FALSE(serial_dl.recovery().crc_ok);
  EXPECT_GT(serial_dl.recovery().blocks_recovered, 0u);

  core::InterleavedDownloader::Options pipe_opt = serial_opt;
  pipe_opt.threads = 2;
  core::InterleavedDownloader pipe_dl(pipe_opt);
  const Bytes pipe_out = pipe_dl.run(stuttering_source(truncated, 7));
  EXPECT_EQ(pipe_out, serial_out);
  expect_same_recovery(pipe_dl.recovery(), serial_dl.recovery());
}

TEST(ThreadedInterleave, TolerantCorruptBlockMatchesSerial) {
  const Bytes input = corpus_bytes(workload::FileKind::TarMixed, 180000, 10);
  const auto res = compress::selective_compress(
      input, compress::SelectivePolicy::always(), 16 * 1024);
  // Damage a byte deep inside a compressed payload (middle of the
  // container is well past the header and inside some block's body).
  Bytes damaged = res.container;
  damaged[damaged.size() / 2] ^= 0xff;

  auto run_mode = [&](unsigned threads) {
    core::InterleavedDownloader::Options opt;
    opt.chunk_bytes = 4096;
    opt.tolerant = true;
    opt.threads = threads;
    core::InterleavedDownloader dl(opt);
    Bytes out;
    compress::RecoveryReport rep;
    bool threw = false;
    try {
      out = dl.run(stuttering_source(damaged, 11));
      rep = dl.recovery();
    } catch (const Error&) {
      threw = true;  // framing byte hit: tolerant mode still throws
    }
    return std::make_tuple(threw, out, rep);
  };
  const auto [serial_threw, serial_out, serial_rep] = run_mode(1);
  const auto [pipe_threw, pipe_out, pipe_rep] = run_mode(2);
  EXPECT_EQ(pipe_threw, serial_threw);
  EXPECT_EQ(pipe_out, serial_out);
  if (!serial_threw) expect_same_recovery(pipe_rep, serial_rep);
}

TEST(ThreadedInterleave, PrematureEofThrowsInBothModes) {
  const Bytes input = corpus_bytes(workload::FileKind::Xml, 100000, 12);
  const auto res = compress::selective_compress(
      input, compress::SelectivePolicy::always(), 16 * 1024);
  const Bytes truncated(res.container.begin(),
                        res.container.begin() +
                            static_cast<std::ptrdiff_t>(
                                res.container.size() / 2));
  for (const unsigned threads : {1u, 2u}) {
    core::InterleavedDownloader::Options opt;
    opt.chunk_bytes = 4096;
    opt.threads = threads;
    core::InterleavedDownloader dl(opt);
    EXPECT_THROW(dl.run(stuttering_source(truncated, 13)), Error)
        << threads;
  }
}

TEST(ThreadedInterleave, ThreadedProxyAndClientMatchSerialWire) {
  // Server compresses on a pool, client decodes through the two-thread
  // pipeline — over real sockets, the bytes must match the serial pair.
  const Bytes input = corpus_bytes(workload::FileKind::TarMixed, 200000, 16);
  net::FileStore store;
  store.put("f", input);
  net::ProxyServer server(std::move(store),
                          compress::SelectivePolicy::always(), 16 * 1024,
                          /*precompress=*/false, /*threads=*/2);

  net::DownloadStats serial_stats;
  const Bytes serial_out =
      net::download(server.port(), "f", "selective", &serial_stats, 1);
  EXPECT_EQ(serial_out, input);

  net::DownloadStats pipe_stats;
  const Bytes pipe_out =
      net::download(server.port(), "f", "selective", &pipe_stats, 2);
  EXPECT_EQ(pipe_out, input);
  EXPECT_EQ(pipe_stats.bytes_on_wire, serial_stats.bytes_on_wire);
  EXPECT_EQ(pipe_stats.blocks, serial_stats.blocks);

  net::TransferPolicy tp;
  tp.threads = 4;
  const auto outcome =
      net::download_resilient(server.port(), "f", "selective", tp);
  EXPECT_EQ(outcome.data, input);
  EXPECT_TRUE(outcome.complete);
}

TEST(ThreadedInterleave, SourceErrorPropagatesFromFeedThread) {
  core::InterleavedDownloader::Options opt;
  opt.threads = 2;
  core::InterleavedDownloader dl(opt);
  EXPECT_THROW(
      dl.run([](std::uint8_t*, std::size_t) -> std::size_t {
        throw Error("socket died");
      }),
      Error);
}

// ------------------------------------------------------- LZ77 hot path

Bytes reconstruct_reference(const std::vector<compress::Lz77Token>& tokens) {
  Bytes out;
  for (const auto& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
      continue;
    }
    const std::size_t start = out.size() - t.distance;
    for (std::size_t i = 0; i < t.length; ++i)
      out.push_back(out[start + i]);
  }
  return out;
}

TEST(Lz77Reconstruct, OverlappedCopiesMatchReference) {
  // Every overlap regime of the chunked copy: distance < 8 (byte loop),
  // distance in [8, length) (strided doubling), distance >= length
  // (single memcpy) — across lengths that straddle each stride boundary.
  for (int distance : {1, 2, 3, 5, 7, 8, 9, 12, 16, 31, 64, 200}) {
    for (int length : {3, 7, 8, 9, 15, 16, 17, 100, 258}) {
      std::vector<compress::Lz77Token> tokens;
      for (int i = 0; i < std::max(distance, 4); ++i)
        tokens.push_back({0, 0, static_cast<std::uint8_t>('a' + i % 23)});
      tokens.push_back({static_cast<std::uint16_t>(length),
                        static_cast<std::uint16_t>(distance), 0});
      EXPECT_EQ(compress::lz77_reconstruct(tokens),
                reconstruct_reference(tokens))
          << "distance " << distance << " length " << length;
    }
  }
}

TEST(Lz77Reconstruct, RoundTripsPeriodicData) {
  const auto params = compress::Lz77Params::for_level(9);
  for (const std::size_t period : {1u, 3u, 8u, 13u, 64u}) {
    Bytes input;
    for (std::size_t i = 0; i < 50000; ++i)
      input.push_back(static_cast<std::uint8_t>((i % period) * 37 + 11));
    const auto tokens = compress::lz77_tokenize(input, params);
    EXPECT_EQ(compress::lz77_reconstruct(tokens), input) << period;
  }
}

TEST(Lz77Tokenize, ScratchReuseStaysDeterministic) {
  // Back-to-back tokenizations on the same thread reuse the arena; the
  // token stream must not depend on what ran before.
  const auto params = compress::Lz77Params::for_level(9);
  const Bytes a = corpus_bytes(workload::FileKind::TarMixed, 60000, 14);
  const Bytes b = corpus_bytes(workload::FileKind::Xml, 40000, 15);
  const auto first = compress::lz77_tokenize(a, params);
  compress::lz77_tokenize(b, params);  // pollute the scratch
  const auto again = compress::lz77_tokenize(a, params);
  ASSERT_EQ(again.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(again[i].length, first[i].length);
    EXPECT_EQ(again[i].distance, first[i].distance);
    EXPECT_EQ(again[i].literal, first[i].literal);
  }
}

}  // namespace
}  // namespace ecomp

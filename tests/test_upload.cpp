// Upload extension: simulator scenarios and the UploadModel closed
// forms (the paper's stated future-work direction).
#include <gtest/gtest.h>

#include <cmath>

#include "core/upload_model.h"
#include "sim/transfer.h"
#include "util/bytes.h"

namespace ecomp {
namespace {

using core::UploadModel;
using sim::TransferOptions;
using sim::TransferSimulator;

TEST(UploadSim, RawUploadSymmetricToDownload) {
  const TransferSimulator sim;
  const auto up = sim.upload_uncompressed(2.0);
  const auto down = sim.download_uncompressed(2.0);
  EXPECT_NEAR(up.energy_j, down.energy_j, 1e-9);
  EXPECT_NEAR(up.time_s, down.time_s, 1e-9);
}

TEST(UploadSim, SequentialPaysCompressionUpFront) {
  const TransferSimulator sim;
  TransferOptions opt;
  const auto r = sim.upload_compressed(2.0, 0.5, "deflate", opt);
  const double tc =
      sim.device().cpu.compress_cost("deflate").time_s(2.0, 0.5);
  EXPECT_NEAR(r.decompress_time_s, tc, 1e-9);  // reported as CPU work
  EXPECT_GT(r.time_s, tc);                     // compress then send
}

TEST(UploadSim, SleepDuringCompressionSavesEnergy) {
  const TransferSimulator sim;
  TransferOptions plain;
  TransferOptions sleep;
  sleep.sleep_during_decompress = true;
  const auto a = sim.upload_compressed(2.0, 0.5, "deflate", plain);
  const auto b = sim.upload_compressed(2.0, 0.5, "deflate", sleep);
  EXPECT_LT(b.energy_j, a.energy_j);
}

TEST(UploadSim, InterleavingNeverWorseThanSequential) {
  const TransferSimulator sim;
  for (double f : {1.5, 3.0, 8.0}) {
    TransferOptions seq;
    TransferOptions intl;
    intl.interleave = true;
    const auto a = sim.upload_compressed(3.0, 3.0 / f, "deflate", seq);
    const auto b = sim.upload_compressed(3.0, 3.0 / f, "deflate", intl);
    EXPECT_LE(b.time_s, a.time_s + 1e-9) << f;
    EXPECT_LE(b.energy_j, a.energy_j + 1e-9) << f;
  }
}

TEST(UploadSim, SlowCodecIsCpuBound) {
  // bwt compression on the iPAQ is far slower than the link: the wall
  // time approaches compression time, not send time.
  const TransferSimulator sim;
  TransferOptions intl;
  intl.interleave = true;
  const auto r = sim.upload_compressed(2.0, 0.5, "bwt", intl);
  const double tc = sim.device().cpu.compress_cost("bwt").time_s(2.0, 0.5);
  EXPECT_GT(r.time_s, 0.9 * tc);
}

TEST(UploadSim, RejectsNegativeSizes) {
  const TransferSimulator sim;
  EXPECT_THROW(sim.upload_uncompressed(-1.0), Error);
  EXPECT_THROW(sim.upload_compressed(-1.0, 0.5, "deflate", {}), Error);
}

TEST(UploadModelTest, MatchesSimulator) {
  const auto model = UploadModel::ipaq_11mbps();
  const TransferSimulator sim;
  for (double f : {1.5, 3.0, 10.0}) {
    const double s = 3.0, sc = s / f;
    TransferOptions seq;
    TransferOptions intl;
    intl.interleave = true;
    EXPECT_NEAR(model.sequential_energy_j(s, sc),
                sim.upload_compressed(s, sc, "deflate", seq).energy_j,
                0.02 * model.sequential_energy_j(s, sc))
        << f;
    EXPECT_NEAR(model.interleaved_energy_j(s, sc),
                sim.upload_compressed(s, sc, "deflate", intl).energy_j,
                0.02 * model.interleaved_energy_j(s, sc))
        << f;
  }
  EXPECT_NEAR(model.upload_energy_j(2.0),
              sim.upload_uncompressed(2.0).energy_j, 0.02);
}

TEST(UploadModelTest, ThresholdFactorMuchHigherThanDownload) {
  const auto up = UploadModel::ipaq_11mbps();
  const auto down = core::EnergyModel::paper_11mbps();
  const double f_up = up.min_factor(3.0);
  const double f_down = down.min_factor(3.0);
  EXPECT_GT(f_up, 2.0 * f_down);  // device compression is expensive
  EXPECT_LT(f_up, 100.0);         // but deep compression still pays
}

TEST(UploadModelTest, BwtNeverPaysOnUpload) {
  // bwt compression costs ~6 s/MB on the iPAQ — no realistic factor
  // recovers that at 0.6 MB/s.
  const UploadModel model(core::EnergyParams{},
                          sim::CpuModel::ipaq().compress_cost("bwt"));
  EXPECT_FALSE(model.should_compress(3.0, 10.0));
}

TEST(UploadModelTest, DegenerateInputsRejected) {
  const auto model = UploadModel::ipaq_11mbps();
  EXPECT_FALSE(model.should_compress(0.0, 3.0));
  EXPECT_FALSE(model.should_compress(1.0, 0.0));
}

TEST(UploadModelTest, InfiniteWhenNothingHelps) {
  const UploadModel model(core::EnergyParams{},
                          sim::CpuModel::ipaq().compress_cost("bwt"));
  EXPECT_TRUE(std::isinf(model.min_factor(1.0)));
}

}  // namespace
}  // namespace ecomp

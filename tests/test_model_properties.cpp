// Property sweeps over the energy model: monotonicity, branch
// continuity, threshold self-consistency, and dominance relations that
// must hold for ANY parameterization in the physical range.
#include <gtest/gtest.h>

#include <cmath>

#include "core/energy_model.h"
#include "core/upload_model.h"
#include "util/rng.h"

namespace ecomp::core {
namespace {

/// Random but physically sensible parameter sets.
EnergyParams random_params(Rng& rng) {
  EnergyParams p;
  p.m = 1.0 + rng.uniform() * 4.0;
  p.cs = rng.uniform() * 0.05;
  p.pi = 0.5 + rng.uniform() * 2.0;
  p.pd = p.pi + 0.5 + rng.uniform() * 2.0;  // busy > idle
  p.pd_sleep = p.pi + rng.uniform() * (p.pd - p.pi);
  p.rate = 0.1 + rng.uniform() * 1.0;
  p.idle_fraction = 0.1 + rng.uniform() * 0.8;
  p.block_mb = 0.032 + rng.uniform() * 0.25;
  p.td_a = 0.05 + rng.uniform() * 0.4;
  p.td_b = 0.05 + rng.uniform() * 0.4;
  p.td_c = rng.uniform() * 0.02;
  return p;
}

class ModelProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    model_ = std::make_unique<EnergyModel>(random_params(rng));
  }
  std::unique_ptr<EnergyModel> model_;
};

TEST_P(ModelProperties, DownloadEnergyIncreasesWithSize) {
  double prev = -1.0;
  for (double s = 0.01; s < 20.0; s *= 1.7) {
    const double e = model_->download_energy_j(s);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST_P(ModelProperties, InterleavedEnergyDecreasesWithFactor) {
  // At fixed s, a deeper compressor can only reduce predicted energy.
  for (double s : {0.05, 0.5, 3.0}) {
    double prev = 1e300;
    for (double f = 1.0; f < 100.0; f *= 1.3) {
      const double e = model_->interleaved_energy_j(s, s / f);
      EXPECT_LE(e, prev + 1e-9) << "s=" << s << " F=" << f;
      prev = e;
    }
  }
}

TEST_P(ModelProperties, InterleavedNeverWorseThanSequential) {
  for (double s : {0.05, 0.5, 3.0, 10.0})
    for (double f = 1.05; f < 50.0; f *= 1.6) {
      const double sc = s / f;
      EXPECT_LE(model_->interleaved_energy_j(s, sc),
                model_->sequential_energy_j(s, sc) + 1e-9)
          << "s=" << s << " F=" << f;
    }
}

TEST_P(ModelProperties, Eq3BranchesAgreeAtTheBoundary) {
  // The two Eq. 3 branches meet where ti' == td: scan for the crossing
  // and check continuity there.
  const double s = 2.0;
  double prev_e = model_->interleaved_energy_j(s, s / 1.001);
  for (double f = 1.01; f < 60.0; f *= 1.01) {
    const double e = model_->interleaved_energy_j(s, s / f);
    // Continuity: consecutive factor steps never jump more than the
    // communication saving of the step itself.
    const double step_saving =
        model_->params().m * (s / (f / 1.01) - s / f) * 3.0 + 0.05;
    EXPECT_LT(std::abs(e - prev_e), step_saving + 0.05) << f;
    prev_e = e;
  }
}

TEST_P(ModelProperties, IdleSplitSumsToTotalIdle) {
  for (double s : {0.01, 0.1, 1.0, 7.0})
    for (double f : {1.2, 3.0, 11.0}) {
      const double sc = s / f;
      double rest = 0, first = 0;
      model_->idle_split(s, sc, rest, first);
      EXPECT_NEAR(rest + first, model_->idle_time_s(sc), 1e-12);
      EXPECT_GE(rest, 0.0);
      EXPECT_GE(first, 0.0);
    }
}

TEST_P(ModelProperties, MinFactorIsExactThreshold) {
  for (double s : {0.05, 0.7, 4.0}) {
    const double f = model_->min_factor(s);
    if (std::isinf(f)) {
      EXPECT_FALSE(model_->should_compress(s, 1e5));
      continue;
    }
    if (f > 1.0) {
      EXPECT_FALSE(model_->should_compress(s, f * 0.999));
    }
    EXPECT_TRUE(model_->should_compress(s, f * 1.001));
  }
}

TEST_P(ModelProperties, MinFileSizeIsExactThreshold) {
  const double s_star = model_->min_file_mb();
  EXPECT_FALSE(model_->should_compress(s_star * 0.98, 1e5));
  EXPECT_TRUE(model_->should_compress(s_star * 1.02, 1e5));
}

TEST_P(ModelProperties, LargerFilesNeverNeedDeeperCompression) {
  double prev = 1e300;
  for (double s = 0.01; s < 20.0; s *= 2.0) {
    const double f = model_->min_factor(s);
    if (!std::isinf(prev) && !std::isinf(f)) {
      EXPECT_LE(f, prev * 1.001);
    }
    prev = f;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomParams, ModelProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ------------------------------------------------- upload-model duals

class UploadProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UploadProperties, InterleavedUploadDominatesDownloadPointwise) {
  // For the SAME link parameters and compression at least as expensive
  // as decompression, interleaved upload can never cost less energy
  // than interleaved download at the same (s, sc): the CPU work term is
  // larger and the first block is busy (pd) instead of idle (pi).
  // (With radio-sleep sequential upload the dominance can flip — the
  // whole compression runs at pd_sleep — so the comparison is
  // strategy-for-strategy.)
  Rng rng(GetParam() * 37 + 5);
  const EnergyParams p = random_params(rng);
  const EnergyModel down(p);
  sim::CodecCost compress_cost{p.td_a * (2.0 + rng.uniform() * 6.0),
                               p.td_b, p.td_c};
  const UploadModel up(p, compress_cost);
  for (double s : {0.5, 3.0})
    for (double f = 1.1; f < 40.0; f *= 1.7) {
      const double sc = s / f;
      EXPECT_GE(up.interleaved_energy_j(s, sc),
                down.interleaved_energy_j(s, sc) - 1e-9)
          << "s=" << s << " F=" << f;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomParams, UploadProperties,
                         ::testing::Values(11, 12, 13, 14, 15));

}  // namespace
}  // namespace ecomp::core

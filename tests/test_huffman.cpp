#include "compress/huffman.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace ecomp::huffman {
namespace {

std::uint64_t kraft_sum(const std::vector<std::uint8_t>& lengths,
                        int max_len) {
  std::uint64_t k = 0;
  for (auto l : lengths)
    if (l) k += std::uint64_t{1} << (max_len - l);
  return k;
}

TEST(HuffmanLengths, EmptyAndSingleSymbol) {
  EXPECT_EQ(build_code_lengths({0, 0, 0}, 15),
            (std::vector<std::uint8_t>{0, 0, 0}));
  EXPECT_EQ(build_code_lengths({0, 7, 0}, 15),
            (std::vector<std::uint8_t>{0, 1, 0}));
}

TEST(HuffmanLengths, TwoSymbols) {
  const auto l = build_code_lengths({5, 3}, 15);
  EXPECT_EQ(l, (std::vector<std::uint8_t>{1, 1}));
}

TEST(HuffmanLengths, FrequentSymbolsGetShorterCodes) {
  const auto l = build_code_lengths({100, 1, 1, 1, 1, 1, 1, 1}, 15);
  for (std::size_t s = 1; s < l.size(); ++s) EXPECT_LE(l[0], l[s]);
}

TEST(HuffmanLengths, KraftEqualityHolds) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> freqs(64);
    for (auto& f : freqs) f = rng.below(1000);
    freqs[0] = 1;  // at least two nonzero
    freqs[1] = 1;
    const auto l = build_code_lengths(freqs, 15);
    EXPECT_EQ(kraft_sum(l, 15), std::uint64_t{1} << 15);
  }
}

TEST(HuffmanLengths, RespectsLengthLimit) {
  // Fibonacci-like frequencies force deep optimal trees.
  std::vector<std::uint64_t> freqs;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  for (int limit : {7, 10, 15}) {
    const auto l = build_code_lengths(freqs, limit);
    for (auto len : l) EXPECT_LE(len, limit);
    // Overflow repair may leave the Kraft sum slightly under 1 (valid,
    // marginally suboptimal) but never over.
    EXPECT_LE(kraft_sum(l, limit), std::uint64_t{1} << limit);
    EXPECT_NO_THROW(canonical_codes(l));
  }
}

TEST(HuffmanLengths, AlphabetTooLargeForLimitThrows) {
  std::vector<std::uint64_t> freqs(5, 1);
  EXPECT_THROW(build_code_lengths(freqs, 2), Error);
}

TEST(CanonicalCodes, Rfc1951WorkedExample) {
  // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) yield codes
  // 010,011,100,101,110,00,1110,1111.
  const std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  const auto codes = canonical_codes(lengths);
  const std::vector<std::uint32_t> expect = {2, 3, 4, 5, 6, 0, 14, 15};
  EXPECT_EQ(codes, expect);
}

TEST(CanonicalCodes, OversubscribedThrows) {
  EXPECT_THROW(canonical_codes({1, 1, 1}), Error);
}

TEST(ReverseBits, Basics) {
  EXPECT_EQ(reverse_bits(0b1, 1), 0b1u);
  EXPECT_EQ(reverse_bits(0b100, 3), 0b001u);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101u);
}

class HuffmanRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HuffmanRoundTrip, LsbEncodeDecode) {
  Rng rng(GetParam());
  const std::size_t alphabet = 2 + rng.below(285);
  std::vector<std::uint64_t> freqs(alphabet, 0);
  // Skewed frequencies; some symbols absent.
  for (auto& f : freqs)
    f = rng.chance(0.3) ? 0 : (rng.below(1000) * rng.below(1000)) / 999 + 1;
  freqs[0] = 500;
  freqs[alphabet - 1] = 1;
  const auto lengths = build_code_lengths(freqs, 15);

  std::vector<std::uint32_t> symbols;
  for (std::uint32_t s = 0; s < alphabet; ++s)
    if (freqs[s])
      for (int k = 0; k < 20; ++k) symbols.push_back(s);
  std::shuffle(symbols.begin(), symbols.end(), rng);

  EncoderLsb enc(lengths);
  BitWriterLsb w;
  for (auto s : symbols) enc.encode(w, s);
  const Bytes buf = w.take();
  BitReaderLsb r(buf);
  DecoderLsb dec(lengths);
  for (auto s : symbols) EXPECT_EQ(dec.decode(r), s);
}

TEST_P(HuffmanRoundTrip, MsbEncodeDecode) {
  Rng rng(GetParam() * 31 + 7);
  const std::size_t alphabet = 2 + rng.below(256);
  std::vector<std::uint64_t> freqs(alphabet, 0);
  for (auto& f : freqs) f = rng.below(100);
  freqs[0] = 1;
  freqs[1] = 1;
  const auto lengths = build_code_lengths(freqs, 20);

  std::vector<std::uint32_t> symbols;
  for (std::uint32_t s = 0; s < alphabet; ++s)
    if (freqs[s]) symbols.push_back(s);
  std::shuffle(symbols.begin(), symbols.end(), rng);

  EncoderMsb enc(lengths);
  BitWriterMsb w;
  for (auto s : symbols) enc.encode(w, s);
  const Bytes buf = w.take();
  BitReaderMsb r(buf);
  DecoderMsb dec(lengths);
  for (auto s : symbols) EXPECT_EQ(dec.decode(r), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(HuffmanDecoder, LongCodesBeyondRootTableDecode) {
  // Force codes longer than the 10-bit fast table.
  std::vector<std::uint64_t> freqs;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 30; ++i) {
    freqs.push_back(a);
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  const auto lengths = build_code_lengths(freqs, 15);
  int max_len = 0;
  for (auto l : lengths) max_len = std::max<int>(max_len, l);
  ASSERT_GT(max_len, 10) << "test precondition: need codes beyond root bits";

  EncoderLsb enc(lengths);
  BitWriterLsb w;
  for (std::uint32_t s = 0; s < freqs.size(); ++s) enc.encode(w, s);
  const Bytes buf = w.take();
  BitReaderLsb r(buf);
  DecoderLsb dec(lengths);
  for (std::uint32_t s = 0; s < freqs.size(); ++s) EXPECT_EQ(dec.decode(r), s);
}

TEST(HuffmanEncoder, EncodingAbsentSymbolThrows) {
  EncoderLsb enc(build_code_lengths({10, 0, 10}, 15));
  BitWriterLsb w;
  EXPECT_THROW(enc.encode(w, 1), Error);
}

}  // namespace
}  // namespace ecomp::huffman

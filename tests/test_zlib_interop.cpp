// RFC 1950 zlib stream format: Adler-32 vectors, self round-trip, and
// differential interop against Python's zlib module where available.
#include "compress/zlib_format.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "cli/cli.h"
#include "workload/generator.h"

namespace ecomp::compress {
namespace {

namespace fs = std::filesystem;

TEST(Adler32Test, KnownVectors) {
  // RFC 1950: Adler-32 of "Wikipedia" is 0x11E60398.
  EXPECT_EQ(adler32(as_bytes(std::string("Wikipedia"))), 0x11E60398u);
  EXPECT_EQ(adler32({}), 1u);  // initial value
  EXPECT_EQ(adler32(as_bytes(std::string("a"))), 0x00620062u);
}

TEST(Adler32Test, IncrementalMatchesOneShot) {
  const Bytes data =
      workload::generate_kind(workload::FileKind::Log, 100000, 1, 0.0);
  Adler32 inc;
  inc.update(ByteSpan(data).subspan(0, 33333));
  inc.update(ByteSpan(data).subspan(33333));
  EXPECT_EQ(inc.value(), adler32(data));
}

TEST(ZlibFormat, SelfRoundTrip) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Bytes input = workload::generate_kind(workload::FileKind::Source,
                                                120000, seed, 0.2);
    const Bytes z = zlib_compress(input);
    EXPECT_TRUE(looks_like_zlib(z));
    EXPECT_EQ(zlib_decompress(z), input);
  }
}

TEST(ZlibFormat, HeaderCheckBitsValidAtEveryLevel) {
  const Bytes input = to_bytes("check bits");
  for (int level : {1, 3, 6, 9}) {
    const Bytes z = zlib_compress(input, level);
    const unsigned header = (unsigned{z[0]} << 8) | z[1];
    EXPECT_EQ(header % 31, 0u) << level;
    EXPECT_EQ(zlib_decompress(z), input);
  }
}

TEST(ZlibFormat, RejectsCorruption) {
  Bytes z = zlib_compress(to_bytes("some zlib data to protect"));
  Bytes bad_header = z;
  bad_header[1] ^= 0x01;  // breaks FCHECK
  EXPECT_THROW(zlib_decompress(bad_header), Error);
  Bytes bad_adler = z;
  bad_adler[bad_adler.size() - 1] ^= 0xff;
  EXPECT_THROW(zlib_decompress(bad_adler), Error);
  Bytes tiny = {0x78, 0x9c};
  EXPECT_THROW(zlib_decompress(tiny), Error);
}

class PythonZlibInterop : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::system("python3 -c 'import zlib' >/dev/null 2>&1") != 0)
      GTEST_SKIP() << "python3 zlib not available";
    dir_ = fs::temp_directory_path() /
           ("ecomp_zlib_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(PythonZlibInterop, PythonReadsOurStreams) {
  const Bytes input = workload::generate_kind(workload::FileKind::Xml,
                                              200000, 4, 0.3);
  cli::write_file((dir_ / "ours.zz").string(), zlib_compress(input));
  const std::string cmd =
      "python3 -c \"import zlib,sys;"
      "sys.stdout.buffer.write(zlib.decompress(open('" +
      (dir_ / "ours.zz").string() + "','rb').read()))\" > " +
      (dir_ / "out").string() + " 2>/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << "python zlib rejected us";
  EXPECT_EQ(cli::read_file((dir_ / "out").string()), input);
}

TEST_F(PythonZlibInterop, WeReadPythonStreams) {
  const Bytes input = workload::generate_kind(workload::FileKind::Log,
                                              150000, 5, 0.0);
  cli::write_file((dir_ / "raw").string(), input);
  for (int level : {1, 6, 9}) {
    const std::string cmd =
        "python3 -c \"import zlib,sys;"
        "sys.stdout.buffer.write(zlib.compress(open('" +
        (dir_ / "raw").string() + "','rb').read()," +
        std::to_string(level) + "))\" > " + (dir_ / "theirs.zz").string() +
        " 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    EXPECT_EQ(zlib_decompress(cli::read_file((dir_ / "theirs.zz").string())),
              input)
        << level;
  }
}

}  // namespace
}  // namespace ecomp::compress

// EnergyModel closed forms vs the paper's published equations, threshold
// derivations, and agreement with the independent discrete simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/deflate.h"
#include "core/calibration.h"
#include "core/energy_model.h"
#include "sim/transfer.h"
#include "workload/generator.h"

namespace ecomp::core {
namespace {

TEST(EnergyModel, Eq1MatchesPaperLine) {
  const auto m = EnergyModel::paper_11mbps();
  for (double s : {0.01, 0.1, 1.0, 5.0, 9.5})
    EXPECT_NEAR(m.download_energy_j(s), 3.519 * s + 0.012,
                0.001 * (3.519 * s + 0.012))
        << s;
}

TEST(EnergyModel, DecompressTimeIsPaperFit) {
  const auto m = EnergyModel::paper_11mbps();
  EXPECT_NEAR(m.decompress_time_s(2.0, 0.5), 0.161 * 2.5 + 0.004, 1e-12);
}

TEST(EnergyModel, IdleSplitEq4) {
  const auto m = EnergyModel::paper_11mbps();
  double rest = 0, first = 0;
  // Large file: ti1 covers the first 0.128 MB (in compressed terms).
  m.idle_split(1.0, 0.5, rest, first);
  EXPECT_NEAR(first, 0.4 * (0.128 * 0.5 / 1.0) / 0.6, 1e-12);
  EXPECT_NEAR(rest + first, 0.4 * 0.5 / 0.6, 1e-12);
  // Small file: everything is first-block idle.
  m.idle_split(0.1, 0.05, rest, first);
  EXPECT_EQ(rest, 0.0);
  EXPECT_NEAR(first, 0.4 * 0.05 / 0.6, 1e-12);
}

TEST(EnergyModel, InterleavedMatchesPaperEq5) {
  // Our Eq. 3 with paper constants vs the paper's printed Eq. 5 —
  // within a few percent across the (s, F) plane. (Eq. 5's printed
  // constants are themselves rounded.)
  const auto m = EnergyModel::paper_11mbps();
  for (double s : {0.05, 0.2, 0.5, 1.0, 3.0, 8.0}) {
    for (double f : {1.2, 1.6, 2.5, 3.5, 5.0, 12.0}) {
      const double sc = s / f;
      const double ours = m.interleaved_energy_j(s, sc);
      const double paper = EnergyModel::paper_eq5_11mbps(s, sc);
      // Eq. 5's branch boundary (3.14 − 0.265/s) is a linearization
      // that drifts for sub-0.5 MB files; allow more slack there.
      const double tol = s < 0.5 ? 0.12 : 0.04;
      EXPECT_NEAR(ours, paper, tol * paper) << "s=" << s << " F=" << f;
    }
  }
}

TEST(EnergyModel, ShouldCompressMatchesPaperEq6) {
  const auto m = EnergyModel::paper_11mbps();
  int agree = 0, total = 0;
  for (double s : {0.002, 0.01, 0.05, 0.2, 1.0, 5.0}) {
    for (double f = 1.02; f < 6.0; f *= 1.13) {
      ++total;
      if (m.should_compress(s, f) == EnergyModel::paper_eq6(s, f)) ++agree;
    }
  }
  // Boundary rounding differs slightly; overall agreement must be high.
  EXPECT_GE(static_cast<double>(agree) / total, 0.9);
}

TEST(EnergyModel, Published2MbpsFormIsSane) {
  // The §4.2 printed constants: monotone in both sizes, and far above
  // the 11 Mb/s cost for equal transfers (slow link = expensive link).
  const double e1 = EnergyModel::paper_eq5_2mbps(1.0, 0.5);
  EXPECT_NEAR(e1, 2.0125 + 12.4291 * 0.5 + 0.0275, 1e-9);
  EXPECT_GT(EnergyModel::paper_eq5_2mbps(2.0, 0.5), e1);
  EXPECT_GT(EnergyModel::paper_eq5_2mbps(1.0, 0.9), e1);
  EXPECT_GT(e1, EnergyModel::paper_eq5_11mbps(1.0, 0.5));
}

TEST(EnergyModel, FileSizeThresholdNearPaper3900Bytes) {
  const auto m = EnergyModel::paper_11mbps();
  EXPECT_NEAR(m.min_file_mb() * 1e6, 3900.0, 400.0);
}

TEST(EnergyModel, MinFactorLargeFileNearPaper) {
  // Eq. 6: 1.13/F < 1 − 0.00157/s ⇒ F* → 1.13 for large files.
  const auto m = EnergyModel::paper_11mbps();
  EXPECT_NEAR(m.min_factor(5.0), 1.13, 0.02);
  // Small files need deeper compression.
  EXPECT_GT(m.min_factor(0.01), m.min_factor(5.0));
  // Below the size threshold no factor helps.
  EXPECT_TRUE(std::isinf(m.min_factor(0.003)));
}

TEST(EnergyModel, SleepCrossoverNearPaper46) {
  const auto m = EnergyModel::paper_11mbps();
  EXPECT_NEAR(m.sleep_crossover_factor(), 4.6, 0.15);
}

TEST(EnergyModel, IdleFillFactorAt2MbpsNearPaper27) {
  const auto m = EnergyModel::from_device(sim::DeviceModel::ipaq_2mbps());
  EXPECT_NEAR(m.idle_fill_factor(), 27.0, 1.5);
}

TEST(EnergyModel, IdleFillFactorAt11MbpsIsModest) {
  const auto m = EnergyModel::paper_11mbps();
  // At 0.6 MB/s the idle share is smaller, so filling it is much easier.
  EXPECT_LT(m.idle_fill_factor(), 6.0);
}

TEST(EnergyModel, FromDeviceMatchesPaperPreset) {
  const auto a = EnergyModel::paper_11mbps();
  const auto b = EnergyModel::from_device(sim::DeviceModel::ipaq_11mbps());
  EXPECT_NEAR(a.params().m, b.params().m, 0.01);
  EXPECT_NEAR(a.params().pi, b.params().pi, 1e-9);
  EXPECT_NEAR(a.params().pd, b.params().pd, 1e-9);
  EXPECT_NEAR(a.params().rate, b.params().rate, 1e-9);
  EXPECT_NEAR(a.params().td_a, b.params().td_a, 1e-9);
}

TEST(EnergyModel, AgreesWithSimulatorInterleaved) {
  // Fig. 7's comparison: closed form vs the independent discrete
  // simulation. Large files: < 3% error here (paper reports 2.5% mean
  // vs hardware).
  const auto model = EnergyModel::paper_11mbps();
  const sim::TransferSimulator simulator;
  sim::TransferOptions opt;
  opt.interleave = true;
  for (double s : {0.3, 0.7, 1.5, 3.0, 6.0, 9.5}) {
    for (double f : {1.3, 2.0, 3.5, 7.0, 15.0}) {
      const double sc = s / f;
      const double est = model.interleaved_energy_j(s, sc);
      const double meas =
          simulator.download_compressed(s, sc, "deflate", opt).energy_j;
      EXPECT_NEAR(est, meas, 0.03 * meas) << "s=" << s << " F=" << f;
    }
  }
}

TEST(EnergyModel, AgreesWithSimulatorSequential) {
  const auto model = EnergyModel::paper_11mbps();
  const sim::TransferSimulator simulator;
  for (double s : {0.5, 2.0, 8.0}) {
    const double sc = s / 3.0;
    const double est = model.sequential_energy_j(s, sc);
    const double meas = simulator
                            .download_compressed(s, sc, "deflate",
                                                 sim::TransferOptions{})
                            .energy_j;
    EXPECT_NEAR(est, meas, 0.03 * meas);
  }
}

TEST(EnergyModel, WithCodecCostSwapsDecompressFit) {
  const auto base = EnergyModel::paper_11mbps();
  const auto bwt =
      base.with_codec_cost(sim::CpuModel::ipaq().decompress_cost("bwt"));
  EXPECT_GT(bwt.decompress_time_s(1.0, 0.3),
            3.0 * base.decompress_time_s(1.0, 0.3));
  // Slower decode ⇒ stricter compression threshold.
  EXPECT_GT(bwt.min_factor(1.0), base.min_factor(1.0));
}

TEST(EnergyModel, ShouldCompressRejectsDegenerateInputs) {
  const auto m = EnergyModel::paper_11mbps();
  EXPECT_FALSE(m.should_compress(0.0, 2.0));
  EXPECT_FALSE(m.should_compress(1.0, 0.0));
  EXPECT_FALSE(m.should_compress(-1.0, 2.0));
}

// ---------------------------------------------------------- Calibrator

TEST(Calibrator, DownloadFitRecoversPaperLine) {
  const Calibrator cal{sim::TransferSimulator{}};
  std::vector<double> sizes;
  for (double s = 0.05; s < 10.0; s *= 1.4) sizes.push_back(s);
  const auto fit = cal.fit_download_energy(sizes);
  EXPECT_NEAR(fit.joules_per_mb, 3.519, 0.03);
  EXPECT_NEAR(fit.startup_j, 0.012, 0.01);
  EXPECT_GT(fit.fit.r2, 0.999);
}

TEST(Calibrator, DecompressModelFitRecoversCoefficients) {
  const Calibrator cal{sim::TransferSimulator{}};
  const auto fit = cal.fit_decompress_time_model("deflate");
  EXPECT_NEAR(fit.a, 0.161, 1e-6);
  EXPECT_NEAR(fit.b, 0.161, 1e-6);
  EXPECT_NEAR(fit.c, 0.004, 1e-6);
  EXPECT_GT(fit.fit.r2, 0.9999);
}

TEST(Calibrator, CalibratedModelMatchesPreset) {
  const Calibrator cal{sim::TransferSimulator{}};
  const auto calibrated = cal.calibrate("deflate");
  const auto preset = EnergyModel::paper_11mbps();
  for (double s : {0.5, 2.0, 6.0}) {
    const double sc = s / 3.0;
    EXPECT_NEAR(calibrated.interleaved_energy_j(s, sc),
                preset.interleaved_energy_j(s, sc),
                0.02 * preset.interleaved_energy_j(s, sc));
  }
  EXPECT_NEAR(calibrated.min_file_mb() * 1e6, 3900, 500);
}

TEST(Calibrator, HostDecompressFitRuns) {
  // The paper's Fig. 8(a) claim is structural: decompression time is
  // affine in (s, sc). Exercise the host-timing fit on the real deflate
  // codec; wall-clock noise on shared machines makes tight R² bounds
  // flaky, so only the machinery and non-degeneracy are asserted here
  // (bench_fig8_fitting reports the actual fit quality).
  const compress::DeflateCodec codec(6);
  std::vector<Bytes> samples;
  for (std::size_t kb : {64, 128, 256, 384, 512, 768})
    samples.push_back(workload::generate_kind(
        workload::FileKind::Xml, kb * 1024, /*seed=*/kb, 0.2));
  const auto fit = Calibrator::fit_decompress_time_host(codec, samples, 2);
  EXPECT_EQ(fit.fit.coef.size(), 3u);
  EXPECT_TRUE(std::isfinite(fit.a));
  EXPECT_TRUE(std::isfinite(fit.b));
  EXPECT_TRUE(std::isfinite(fit.c));
}

TEST(Calibrator, HostFitRejectsCorruptCodec) {
  // The fit verifies roundtrips; a lying codec must be detected.
  struct BadCodec final : compress::Codec {
    std::string_view name() const override { return "bad"; }
    Bytes compress(ByteSpan input) const override {
      return Bytes(input.begin(), input.end());
    }
    Bytes decompress(ByteSpan) const override { return Bytes{1, 2, 3}; }
  };
  const BadCodec bad;
  EXPECT_THROW(
      Calibrator::fit_decompress_time_host(bad, {Bytes(100, 7)}, 1), Error);
}

}  // namespace
}  // namespace ecomp::core

// The fault matrix: every injected failure kind × wire mode × retry
// policy must end in verified-identical bytes or a clean typed error —
// never a hang, crash, or silent corruption. Plus the recovery pieces
// on their own: salvage of damaged containers, the tolerant streaming
// decoder, proxy hardening against garbage, and the CLI surface.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <thread>

#include "cli/cli.h"
#include "compress/selective.h"
#include "core/interleave.h"
#include "core/planner.h"
#include "net/fault.h"
#include "net/proxy.h"
#include "workload/generator.h"

namespace ecomp::net {
namespace {

using workload::FileKind;

TransferPolicy fast_policy(int max_retries) {
  TransferPolicy tp;
  tp.max_retries = max_retries;
  tp.timeout_ms = 2000;
  tp.backoff_base_ms = 1;
  tp.backoff_max_ms = 5;
  return tp;
}

class FaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = workload::generate_kind(FileKind::Xml, 300000, 7, 0.4);
    FileStore store;
    store.put("f.xml", data_);
    server_ = std::make_unique<ProxyServer>(
        std::move(store),
        core::make_selective_policy(core::EnergyModel::paper_11mbps()));
  }

  void arm(FaultKind kind, std::size_t at_byte, int arm_count = 1,
           std::uint32_t delay_ms = 100) {
    FaultSpec spec;
    spec.kind = kind;
    spec.at_byte = at_byte;
    spec.delay_ms = delay_ms;
    server_->set_fault_injector(
        std::make_shared<FaultInjector>(spec, arm_count));
  }

  Bytes data_;
  std::unique_ptr<ProxyServer> server_;
};

// --- the matrix itself ------------------------------------------------

TEST_F(FaultFixture, MatrixWithRetriesEveryCellRecovers) {
  for (const FaultKind kind : {FaultKind::Drop, FaultKind::Truncate,
                               FaultKind::Delay, FaultKind::Corrupt}) {
    for (const std::string mode : {"raw", "full", "selective"}) {
      SCOPED_TRACE(std::string(to_string(kind)) + " x " + mode);
      arm(kind, 5000);
      const auto outcome =
          download_resilient(server_->port(), "f.xml", mode,
                             fast_policy(4));
      EXPECT_EQ(outcome.data, data_);
      EXPECT_TRUE(outcome.complete);
      if (kind == FaultKind::Delay) {
        // A 100 ms stall is inside the 2 s deadline: first try wins.
        EXPECT_EQ(outcome.attempts, 1);
      } else {
        EXPECT_GE(outcome.attempts, 2);
      }
    }
  }
}

TEST_F(FaultFixture, MatrixWithoutRetriesFailsCleanOrSucceeds) {
  for (const FaultKind kind : {FaultKind::Drop, FaultKind::Truncate,
                               FaultKind::Delay, FaultKind::Corrupt}) {
    for (const std::string mode : {"raw", "full", "selective"}) {
      SCOPED_TRACE(std::string(to_string(kind)) + " x " + mode);
      arm(kind, 5000);
      if (kind == FaultKind::Delay) {
        // The stall is survivable without a retry.
        const auto outcome = download_resilient(server_->port(), "f.xml",
                                                mode, fast_policy(0));
        EXPECT_EQ(outcome.data, data_);
      } else {
        // One attempt, one injected failure: a typed error, not a hang.
        EXPECT_THROW(download_resilient(server_->port(), "f.xml", mode,
                                        fast_policy(0)),
                     Error);
      }
      // The armed channel is spent either way; the server must still
      // serve the next client.
      server_->set_fault_injector(nullptr);
      EXPECT_EQ(download(server_->port(), "f.xml", "raw"), data_);
    }
  }
}

TEST_F(FaultFixture, DeadlineTurnsLongStallIntoRetry) {
  // Stall past the client deadline: the first attempt times out; a
  // later one runs clean once the single-threaded server has burned
  // through the stall. This is the SO_RCVTIMEO path end to end.
  auto tp = fast_policy(5);
  tp.timeout_ms = 250;
  arm(FaultKind::Delay, 5000, 1, /*delay_ms=*/600);
  const auto outcome =
      download_resilient(server_->port(), "f.xml", "raw", tp);
  EXPECT_EQ(outcome.data, data_);
  EXPECT_GE(outcome.attempts, 2);
}

TEST_F(FaultFixture, ResumeCarriesBytesAcrossReconnects) {
  arm(FaultKind::Truncate, 100000);
  const auto outcome =
      download_resilient(server_->port(), "f.xml", "raw", fast_policy(3));
  EXPECT_EQ(outcome.data, data_);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_GT(outcome.resumed_bytes, 50000u);  // kept most of attempt 1

  arm(FaultKind::Truncate, 100000);
  auto tp = fast_policy(3);
  tp.resume = false;
  const auto fresh =
      download_resilient(server_->port(), "f.xml", "raw", tp);
  EXPECT_EQ(fresh.data, data_);
  EXPECT_EQ(fresh.resumed_bytes, 0u);
}

TEST_F(FaultFixture, CorruptionIsDetectedInRawMode) {
  // Raw mode has no container CRC of its own; GET-RANGE's payload crc32
  // must catch the flip and force a clean retry.
  arm(FaultKind::Corrupt, 40000);
  const auto outcome =
      download_resilient(server_->port(), "f.xml", "raw", fast_policy(2));
  EXPECT_EQ(outcome.data, data_);
  EXPECT_GE(outcome.attempts, 2);
}

TEST_F(FaultFixture, SalvageReturnsPartialWhenRetriesExhaust) {
  // Incompressible 300 KB file: its container is ~300 KB of raw blocks,
  // so three attempts truncated at 60 KB each leave the client with
  // block 1 intact and the tail missing — retries cannot win.
  // salvage=false throws; salvage=true yields the intact prefix blocks.
  const Bytes noise =
      workload::generate_kind(FileKind::Random, 300000, 12, 0.0);
  FileStore store;
  store.put("noise.bin", noise);
  ProxyServer server(std::move(store),
                     compress::SelectivePolicy::always());
  FaultSpec spec;
  spec.kind = FaultKind::Truncate;
  spec.at_byte = 60000;
  server.set_fault_injector(std::make_shared<FaultInjector>(spec, 100));
  EXPECT_THROW(download_resilient(server.port(), "noise.bin", "selective",
                                  fast_policy(2)),
               Error);

  auto tp = fast_policy(2);
  tp.salvage = true;
  const auto outcome =
      download_resilient(server.port(), "noise.bin", "selective", tp);
  EXPECT_FALSE(outcome.complete);
  EXPECT_FALSE(outcome.recovery.crc_ok);
  EXPECT_GT(outcome.recovery.blocks_recovered, 0u);
  EXPECT_GT(outcome.recovery.bytes_lost, 0u);
  // Whatever came back is the true prefix, byte for byte.
  ASSERT_LE(outcome.recovery.bytes_recovered, noise.size());
  ASSERT_GE(outcome.data.size(), outcome.recovery.bytes_recovered);
  EXPECT_TRUE(std::equal(outcome.data.begin(),
                         outcome.data.begin() +
                             static_cast<std::ptrdiff_t>(
                                 outcome.recovery.bytes_recovered),
                         noise.begin()));
}

TEST_F(FaultFixture, UploadRetriesThroughDroppedReply) {
  const Bytes v2 = workload::generate_kind(FileKind::Log, 120000, 8, 0.0);
  arm(FaultKind::Drop, 0);  // kill the server's reply frame
  int attempts = 0;
  upload_resilient(server_->port(), "up.log", v2,
                   compress::SelectivePolicy::always(), fast_policy(3),
                   &attempts);
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(download(server_->port(), "up.log", "raw"), v2);
}

// --- proxy hardening --------------------------------------------------

TEST_F(FaultFixture, GarbageRequestGetsErrAndServerSurvives) {
  Socket s = connect_local(server_->port());
  send_frame(s, to_bytes("NONSENSE utter nonsense"));
  const std::string reply = ecomp::to_string(recv_frame(s));
  EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
  EXPECT_EQ(download(server_->port(), "f.xml", "raw"), data_);
}

TEST_F(FaultFixture, OversizedControlFrameIsRejectedNotAllocated) {
  Socket s = connect_local(server_->port());
  // A length prefix promising 2 GB: the server must refuse to buffer
  // it, answer ERR, and keep serving.
  send_frame_header(s, 0x7FFFFFFFu);
  const std::string reply = ecomp::to_string(recv_frame(s));
  EXPECT_EQ(reply, "ERR bad frame");
  EXPECT_EQ(download(server_->port(), "f.xml", "selective"), data_);
}

TEST_F(FaultFixture, RecvFrameCapIsClientSideToo) {
  Listener listener(0);
  std::thread peer([&] {
    Socket c = listener.accept();
    send_frame_header(c, kMaxControlFrame + 1);
    Bytes dummy(16, 'x');
    try {
      c.send_all(dummy);
    } catch (const Error&) {
    }
  });
  Socket s = connect_local(listener.port());
  EXPECT_THROW(recv_frame(s), Error);
  peer.join();
}

TEST_F(FaultFixture, RecvTimeoutThrowsTimeoutError) {
  Listener listener(0);
  std::thread peer([&] {
    Socket c = listener.accept();
    // Say nothing; the client's deadline must fire.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  });
  Socket s = connect_local(listener.port());
  s.set_recv_timeout_ms(50);
  EXPECT_THROW(recv_frame(s), TimeoutError);
  peer.join();
}

TEST_F(FaultFixture, MissingFileStillReportsCleanError) {
  EXPECT_THROW(download(server_->port(), "absent.bin", "raw"), Error);
  EXPECT_EQ(download(server_->port(), "f.xml", "raw"), data_);
}

// --- fault primitives -------------------------------------------------

TEST(FaultChannel, FiresOnceAtExactOffset) {
  FaultSpec spec;
  spec.kind = FaultKind::Corrupt;
  spec.at_byte = 10;
  FaultChannel ch(spec);
  Bytes buf(8, 0x11);
  std::uint32_t sleep_ms = 0;
  FaultKind abort_after = FaultKind::None;
  // Bytes 0..7: before the trigger.
  EXPECT_EQ(ch.plan_send(buf.data(), buf.size(), &sleep_ms, &abort_after),
            buf.size());
  EXPECT_FALSE(ch.fired());
  // Bytes 8..15 contain offset 10: byte index 2 of this send flips.
  Bytes second(8, 0x11);
  EXPECT_EQ(ch.plan_send(second.data(), second.size(), &sleep_ms,
                         &abort_after),
            second.size());
  EXPECT_TRUE(ch.fired());
  EXPECT_EQ(second[2], 0x11 ^ 0xff);
  EXPECT_EQ(second[1], 0x11);
  // Later sends pass untouched.
  Bytes third(8, 0x11);
  ch.plan_send(third.data(), third.size(), &sleep_ms, &abort_after);
  EXPECT_EQ(third, Bytes(8, 0x11));
}

TEST(FaultChannel, TruncateSendsPrefixThenAborts) {
  FaultSpec spec;
  spec.kind = FaultKind::Truncate;
  spec.at_byte = 5;
  FaultChannel ch(spec);
  Bytes buf(20, 0x22);
  std::uint32_t sleep_ms = 0;
  FaultKind abort_after = FaultKind::None;
  EXPECT_EQ(ch.plan_send(buf.data(), buf.size(), &sleep_ms, &abort_after),
            5u);
  EXPECT_EQ(abort_after, FaultKind::Truncate);
}

TEST(FaultInjector, ArmsExactlyNConnections) {
  FaultSpec spec;
  spec.kind = FaultKind::Drop;
  FaultInjector inj(spec, 2);
  EXPECT_EQ(inj.remaining(), 2);
  EXPECT_NE(inj.next_channel(), nullptr);
  EXPECT_NE(inj.next_channel(), nullptr);
  EXPECT_EQ(inj.next_channel(), nullptr);
  EXPECT_EQ(inj.armed(), 2);
  EXPECT_EQ(inj.remaining(), 0);
}

TEST(FaultInjector, IndexTargetingArmsExactlyThoseConnections) {
  FaultSpec spec;
  spec.kind = FaultKind::Truncate;
  FaultInjector inj(spec, std::set<std::uint64_t>{2, 4});
  EXPECT_EQ(inj.remaining(), 2);
  EXPECT_EQ(inj.channel_for(1), nullptr);
  EXPECT_NE(inj.channel_for(2), nullptr);
  EXPECT_EQ(inj.channel_for(2), nullptr);  // each target arms once
  EXPECT_EQ(inj.channel_for(3), nullptr);
  EXPECT_NE(inj.channel_for(4), nullptr);
  EXPECT_EQ(inj.channel_for(5), nullptr);
  EXPECT_EQ(inj.armed(), 2);
  EXPECT_EQ(inj.remaining(), 0);
}

// --- the matrix at 8 concurrent clients -------------------------------

class ConcurrentFaultFixture : public ::testing::Test {
 protected:
  static constexpr int kClients = 8;

  void SetUp() override {
    data_ = workload::generate_kind(FileKind::Xml, 300000, 7, 0.4);
    FileStore store;
    store.put("f.xml", data_);
    ProxyOptions opt;
    opt.workers = kClients;  // true concurrency, unbounded admission
    server_ = std::make_unique<ProxyServer>(
        std::move(store),
        core::make_selective_policy(core::EnergyModel::paper_11mbps()),
        opt);
  }

  Bytes data_;
  std::unique_ptr<ProxyServer> server_;
};

// Every fault kind x wire mode, with 8 clients hammering the proxy at
// once and the injector index-targeting one victim among them ("fault
// connection 3 of 8"). The victim recovers through retries, every
// unfaulted connection's bytes are identical to the original, and the
// server survives the whole matrix on one accept loop + worker pool.
TEST_F(ConcurrentFaultFixture, MatrixEveryCellAllClientsRecover) {
  for (const FaultKind kind : {FaultKind::Drop, FaultKind::Truncate,
                               FaultKind::Delay, FaultKind::Corrupt}) {
    for (const std::string mode : {"raw", "full", "selective"}) {
      SCOPED_TRACE(std::string(to_string(kind)) + " x " + mode);
      // Conn indices are global to the server; aim at the 3rd
      // connection this cell will open.
      const std::uint64_t base = server_->stats().connections_total;
      FaultSpec spec;
      spec.kind = kind;
      spec.at_byte = 5000;
      spec.delay_ms = 100;
      auto inj = std::make_shared<FaultInjector>(
          spec, std::set<std::uint64_t>{base + 3});
      server_->set_fault_injector(inj);

      std::vector<DownloadOutcome> outcomes(kClients);
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
          try {
            outcomes[i] = download_resilient(server_->port(), "f.xml",
                                             mode, fast_policy(6));
          } catch (const std::exception&) {
            // leave outcomes[i].data empty — the EXPECT below fails
          }
        });
      for (auto& t : clients) t.join();

      EXPECT_EQ(inj->remaining(), 0u) << "victim connection never opened";
      for (int i = 0; i < kClients; ++i) {
        EXPECT_EQ(outcomes[i].data, data_) << "client " << i;
        EXPECT_TRUE(outcomes[i].complete) << "client " << i;
      }
    }
  }
  // The server survived: it still answers.
  EXPECT_EQ(download(server_->port(), "f.xml", "raw"), data_);
}

// N clients racing a cold cache compress the container exactly once:
// the first lookup becomes the builder, the rest join its flight, and
// every reply decodes to identical (CRC-verified) bytes.
TEST_F(ConcurrentFaultFixture, SingleFlightCacheCompressesOnce) {
  constexpr int kRacers = 8;
  std::vector<Bytes> got(kRacers);
  std::vector<std::thread> clients;
  clients.reserve(kRacers);
  for (int i = 0; i < kRacers; ++i)
    clients.emplace_back([&, i] {
      got[i] = download(server_->port(), "f.xml", "selective");
    });
  for (auto& t : clients) t.join();
  for (int i = 0; i < kRacers; ++i) EXPECT_EQ(got[i], data_);

  const ContainerCache::Stats cs = server_->cache_stats();
  EXPECT_EQ(cs.builds, 1u);
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits + cs.waits, static_cast<std::uint64_t>(kRacers - 1));
  EXPECT_EQ(cs.entries, 1u);
}

}  // namespace
}  // namespace ecomp::net

// --- container salvage + tolerant decoder -----------------------------

namespace ecomp::compress {
namespace {

Bytes xml_data() {
  return workload::generate_kind(workload::FileKind::Xml, 300000, 9, 0.4);
}

TEST(SelectiveSalvage, IntactContainerIsComplete) {
  const Bytes data = xml_data();
  const auto res = selective_compress(data, SelectivePolicy::always());
  const auto sr = selective_salvage(res.container);
  EXPECT_TRUE(sr.report.complete());
  EXPECT_TRUE(sr.report.crc_ok);
  EXPECT_EQ(sr.report.blocks_lost, 0u);
  EXPECT_EQ(sr.data, data);
}

TEST(SelectiveSalvage, CorruptPayloadLosesOneBlockKeepsOffsets) {
  const Bytes data = xml_data();
  auto container =
      selective_compress(data, SelectivePolicy::always()).container;
  // The container's final bytes are the last block's payload: flip one.
  container[container.size() - 10] ^= 0xff;
  const auto sr = selective_salvage(container);
  EXPECT_EQ(sr.report.blocks_lost, 1u);
  EXPECT_FALSE(sr.report.crc_ok);
  EXPECT_FALSE(sr.report.framing_truncated);
  ASSERT_EQ(sr.data.size(), data.size());  // zero-fill preserves offsets
  const std::size_t last_start =
      (data.size() / kDefaultBlockSize) * kDefaultBlockSize;
  EXPECT_TRUE(std::equal(sr.data.begin(),
                         sr.data.begin() +
                             static_cast<std::ptrdiff_t>(last_start),
                         data.begin()));
  for (std::size_t i = last_start; i < sr.data.size(); ++i)
    ASSERT_EQ(sr.data[i], 0u) << i;
  EXPECT_EQ(sr.report.bytes_recovered, last_start);
  EXPECT_EQ(sr.report.bytes_lost, data.size() - last_start);
}

TEST(SelectiveSalvage, TruncatedContainerKeepsPrefixBlocks) {
  const Bytes data = xml_data();
  auto container =
      selective_compress(data, SelectivePolicy::always()).container;
  container.resize(container.size() / 2);
  const auto sr = selective_salvage(container);
  EXPECT_TRUE(sr.report.framing_truncated);
  EXPECT_GT(sr.report.blocks_lost, 0u);
  EXPECT_GT(sr.report.bytes_lost, 0u);
  ASSERT_LE(sr.report.bytes_recovered, data.size());
  EXPECT_TRUE(std::equal(
      sr.data.begin(),
      sr.data.begin() +
          static_cast<std::ptrdiff_t>(sr.report.bytes_recovered),
      data.begin()));
}

TEST(SelectiveSalvage, GarbageYieldsFullyLostReportNotThrow) {
  const Bytes junk(4096, 0xAB);
  const auto sr = selective_salvage(junk);
  EXPECT_TRUE(sr.report.framing_truncated);
  EXPECT_TRUE(sr.data.empty());
  EXPECT_FALSE(sr.report.complete());
}

TEST(SelectiveSalvage, AbsurdHeaderSizeIsFramingDamageNotOom) {
  // A corrupted original_size varint must not drive a giant zero-fill.
  const Bytes data = xml_data();
  auto container =
      selective_compress(data, SelectivePolicy::always()).container;
  // Bytes 2.. hold the original_size varint; force a huge claim.
  for (std::size_t i = 2; i < 11; ++i) container[i] = 0xff;
  container[11] = 0x01;
  const auto sr = selective_salvage(container);
  EXPECT_TRUE(sr.report.framing_truncated);
  EXPECT_LT(sr.data.size(), container.size() * 8);
}

TEST(TolerantDecoder, ZeroFillsBadBlockAndRecordsRecovery) {
  const Bytes data = xml_data();
  auto container =
      selective_compress(data, SelectivePolicy::always()).container;
  container[container.size() - 10] ^= 0xff;

  // Strict decoder refuses.
  {
    core::SelectiveStreamDecoder dec;
    dec.feed(container);
    EXPECT_THROW(
        {
          while (auto b = dec.poll()) {
          }
        },
        Error);
  }
  // Tolerant decoder degrades gracefully, fed in small chunks.
  core::SelectiveStreamDecoder dec;
  dec.set_tolerant(true);
  Bytes out;
  for (std::size_t i = 0; i < container.size(); i += 1000) {
    const std::size_t n = std::min<std::size_t>(1000, container.size() - i);
    dec.feed(ByteSpan(container.data() + i, n));
    while (auto b = dec.poll()) out.insert(out.end(), b->begin(), b->end());
  }
  EXPECT_TRUE(dec.finished());
  dec.verify();  // records, does not throw
  EXPECT_FALSE(dec.recovery().crc_ok);
  EXPECT_EQ(dec.recovery().blocks_lost, 1u);
  EXPECT_EQ(dec.recovery().blocks_total,
            (data.size() + kDefaultBlockSize - 1) / kDefaultBlockSize);
  ASSERT_EQ(out.size(), data.size());
}

}  // namespace
}  // namespace ecomp::compress

// --- CLI surface ------------------------------------------------------

namespace ecomp::cli {
namespace {

namespace fs = std::filesystem;

class RobustCliFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ecomp_robust_cli_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    data_ = workload::generate_kind(workload::FileKind::Xml, 200000, 5, 0.4);
    net::FileStore store;
    store.put("f.xml", data_);
    server_ = std::make_unique<net::ProxyServer>(
        std::move(store), compress::SelectivePolicy::always());
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_cli(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return run(args, out_, err_);
  }

  fs::path dir_;
  Bytes data_;
  std::unique_ptr<net::ProxyServer> server_;
  std::ostringstream out_, err_;
};

TEST_F(RobustCliFixture, DownloadFetchesThroughInjectedFault) {
  net::FaultSpec spec;
  spec.kind = net::FaultKind::Truncate;
  spec.at_byte = 20000;
  server_->set_fault_injector(std::make_shared<net::FaultInjector>(spec, 1));
  const std::string out_path = (dir_ / "got.xml").string();
  ASSERT_EQ(run_cli({"download", "f.xml", out_path, "--port",
                     std::to_string(server_->port()), "-m", "raw",
                     "--resume", "--max-retries", "3"}),
            0)
      << err_.str();
  EXPECT_EQ(read_file(out_path), data_);
  EXPECT_NE(out_.str().find("attempts"), std::string::npos);
}

TEST_F(RobustCliFixture, PlanAndEnergyAcceptLossRates) {
  const std::string in_path = (dir_ / "in.xml").string();
  write_file(in_path, data_);
  ASSERT_EQ(run_cli({"plan", "--loss", "0.2", in_path}), 0) << err_.str();
  EXPECT_NE(out_.str().find("channel: 20.0% loss"), std::string::npos);
  // Regression: the raw side of the lossy comparison must use a codec
  // name the CpuModel knows (it used to pass "raw" and throw).
  ASSERT_EQ(run_cli({"energy", "--loss", "0.05", "--breakdown", in_path}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("+loss(0.050)"), std::string::npos);
  EXPECT_EQ(run_cli({"energy", "--loss", "1.5", in_path}), 2);
}

TEST_F(RobustCliFixture, InspectSalvageExitCodesTellTheTruth) {
  const auto container =
      compress::selective_compress(data_, compress::SelectivePolicy::always())
          .container;
  const std::string intact = (dir_ / "intact.ec").string();
  write_file(intact, container);

  Bytes damaged = container;
  damaged[damaged.size() - 10] ^= 0xff;
  const std::string hurt = (dir_ / "hurt.ec").string();
  write_file(hurt, damaged);

  const std::string salvaged = (dir_ / "salvaged.bin").string();
  EXPECT_EQ(run_cli({"inspect", "--salvage", intact}), 0) << err_.str();
  EXPECT_EQ(run_cli({"inspect", "--salvage", hurt, salvaged}), 3);
  // The salvaged file still has every intact block at its true offset.
  const Bytes got = read_file(salvaged);
  ASSERT_EQ(got.size(), data_.size());
  EXPECT_TRUE(std::equal(got.begin(),
                         got.begin() + static_cast<std::ptrdiff_t>(
                                           compress::kDefaultBlockSize),
                         data_.begin()));
}

}  // namespace
}  // namespace ecomp::cli

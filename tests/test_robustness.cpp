// Failure-injection sweeps: every decoder must reject corrupt input by
// throwing ecomp::Error (or, where a bit flip survives decoding, be
// caught by the CRC) — never crash, hang, or silently return wrong
// bytes.
#include <gtest/gtest.h>

#include "compress/codec.h"
#include "compress/selective.h"
#include "core/interleave.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ecomp {
namespace {

using compress::SelectivePolicy;

Bytes test_input(std::uint64_t seed) {
  return workload::generate_kind(workload::FileKind::TarMixed, 120000, seed,
                                 0.0);
}

/// Returns true if the decoder detected the corruption (threw, or the
/// output differs is impossible because CRC verified — so any non-throw
/// must produce the original bytes).
template <typename DecodeFn>
bool decode_detects_or_roundtrips(DecodeFn&& decode, const Bytes& packed,
                                  const Bytes& original) {
  try {
    const Bytes out = decode(packed);
    return out == original;  // false would mean silent corruption
  } catch (const Error&) {
    return true;
  }
}

class CodecCorruption
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(CodecCorruption, RandomBitFlipsNeverSilentlyCorrupt) {
  const auto& [name, seed] = GetParam();
  const auto codec = compress::make_codec(name);
  const Bytes original = test_input(static_cast<std::uint64_t>(seed));
  const Bytes packed = codec->compress(original);
  Rng rng(static_cast<std::uint64_t>(seed) * 977 + 13);
  for (int trial = 0; trial < 60; ++trial) {
    Bytes mutated = packed;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    EXPECT_TRUE(decode_detects_or_roundtrips(
        [&](const Bytes& b) { return codec->decompress(b); }, mutated,
        original))
        << name << " flip at " << pos;
  }
}

TEST_P(CodecCorruption, RandomTruncationsAlwaysThrowOrRoundtrip) {
  const auto& [name, seed] = GetParam();
  const auto codec = compress::make_codec(name);
  const Bytes original = test_input(static_cast<std::uint64_t>(seed) + 50);
  const Bytes packed = codec->compress(original);
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes cut = packed;
    cut.resize(rng.below(cut.size()));
    EXPECT_TRUE(decode_detects_or_roundtrips(
        [&](const Bytes& b) { return codec->decompress(b); }, cut,
        original))
        << name << " truncated to " << cut.size();
  }
}

TEST_P(CodecCorruption, GarbageInputNeverCrashes) {
  const auto& [name, seed] = GetParam();
  const auto codec = compress::make_codec(name);
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + 3);
  for (int trial = 0; trial < 40; ++trial) {
    Bytes junk(rng.below(4000) + 1);
    for (auto& b : junk) b = rng.byte();
    try {
      (void)codec->decompress(junk);
      // Random bytes matching a valid container is effectively
      // impossible, but not throwing is not itself a failure mode we
      // assert on — no crash is the contract.
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CodecCorruption,
    ::testing::Combine(::testing::Values("deflate", "lzw", "bwt"),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

class SelectiveCorruption : public ::testing::TestWithParam<int> {};

TEST_P(SelectiveCorruption, ContainerBitFlipsDetected) {
  const Bytes original = test_input(static_cast<std::uint64_t>(GetParam()));
  const auto res =
      compress::selective_compress(original, SelectivePolicy::always());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 60; ++trial) {
    Bytes mutated = res.container;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    EXPECT_TRUE(decode_detects_or_roundtrips(
        [](const Bytes& b) { return compress::selective_decompress(b); },
        mutated, original));
  }
}

TEST_P(SelectiveCorruption, StreamingDecoderDetectsCorruption) {
  const Bytes original =
      test_input(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto res =
      compress::selective_compress(original, SelectivePolicy::always());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes mutated = res.container;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      core::SelectiveStreamDecoder dec;
      dec.feed(mutated);
      Bytes out;
      while (auto blk = dec.poll())
        out.insert(out.end(), blk->begin(), blk->end());
      if (!dec.finished()) continue;  // detected as truncation-like
      dec.verify();
      EXPECT_EQ(out, original);  // survived CRC => must be intact
    } catch (const Error&) {
      // detected
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectiveCorruption,
                         ::testing::Values(11, 22, 33));

TEST(CrcCoverage, EveryContainerChecksTheWholePayload) {
  // Flipping the LAST byte of the original data must always be caught
  // (guards against off-by-one CRC coverage).
  for (const auto& name : compress::codec_names()) {
    const auto codec = compress::make_codec(name);
    const Bytes original = test_input(99);
    Bytes packed = codec->compress(original);
    // Decode, mutate the decoded copy, re-encode, then tamper with the
    // stored CRC? Simpler: mutate the stored CRC field itself (bytes
    // after magic+varint) and expect rejection.
    bool threw = false;
    for (std::size_t i = 2; i < 10 && !threw; ++i) {
      Bytes mutated = packed;
      mutated[i] ^= 0xff;
      try {
        const Bytes out = codec->decompress(mutated);
        if (out != original) threw = true;  // would be silent corruption
      } catch (const Error&) {
        threw = true;
      }
    }
    EXPECT_TRUE(threw) << name;
  }
}

}  // namespace
}  // namespace ecomp

// bzip2 .bz2 format: self round-trip, format edge cases, and real-tool
// interop in both directions where the bzip2 binary is installed.
#include "compress/bz2_format.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "cli/cli.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ecomp::compress {
namespace {

namespace fs = std::filesystem;
using workload::FileKind;

Bytes mixed_input() {
  Bytes b = workload::generate_kind(FileKind::Xml, 250000, 1, 0.2);
  const Bytes runs(5000, 'x');
  b.insert(b.end(), runs.begin(), runs.end());
  const Bytes noise =
      workload::generate_kind(FileKind::Random, 150000, 2, 0.0);
  b.insert(b.end(), noise.begin(), noise.end());
  return b;
}

TEST(Bz2Format, SelfRoundTripLevels) {
  const Bytes input = mixed_input();
  for (int level : {1, 5, 9}) {
    const Bytes bz = bz2_compress(input, level);
    EXPECT_TRUE(looks_like_bz2(bz));
    EXPECT_EQ(bz2_decompress(bz), input) << level;
  }
}

TEST(Bz2Format, EmptyTinyAndRuns) {
  EXPECT_EQ(bz2_decompress(bz2_compress({})), Bytes{});
  const Bytes one = {0x42};
  EXPECT_EQ(bz2_decompress(bz2_compress(one)), one);
  const Bytes runs(100000, 0xAA);  // exercises RLE1 atom chains
  EXPECT_EQ(bz2_decompress(bz2_compress(runs)), runs);
  Bytes exact259(259, 'q');  // single maximal RLE1 atom boundary
  EXPECT_EQ(bz2_decompress(bz2_compress(exact259)), exact259);
}

TEST(Bz2Format, MultiBlockAtLevel1) {
  // > 100 kB forces several blocks sharing one bit stream.
  const Bytes input = workload::generate_kind(FileKind::Log, 350000, 3, 0.0);
  const Bytes bz = bz2_compress(input, 1);
  EXPECT_EQ(bz2_decompress(bz), input);
}

TEST(Bz2Format, AllByteValues) {
  Bytes all;
  for (int rep = 0; rep < 20; ++rep)
    for (int v = 0; v < 256; ++v)
      all.push_back(static_cast<std::uint8_t>(v));
  EXPECT_EQ(bz2_decompress(bz2_compress(all)), all);
}

TEST(Bz2Format, RejectsBadHeadersAndCorruption) {
  EXPECT_THROW(bz2_decompress(to_bytes("BZh0junk")), Error);
  EXPECT_THROW(bz2_decompress(to_bytes("notbzip2")), Error);
  Bytes bz = bz2_compress(mixed_input(), 9);
  Bytes cut = bz;
  cut.resize(cut.size() / 2);
  EXPECT_THROW(bz2_decompress(cut), Error);
  // A flipped payload bit must be caught (block CRC) or throw earlier.
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes mutated = bz;
    mutated[16 + rng.below(mutated.size() - 16)] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    bool ok = true;
    try {
      ok = bz2_decompress(mutated) == mixed_input();
    } catch (const Error&) {
      ok = true;  // detected
    }
    EXPECT_TRUE(ok);
  }
}

class Bz2ToolInterop : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::system("command -v bzip2 >/dev/null 2>&1") != 0)
      GTEST_SKIP() << "system bzip2 not available";
    dir_ = fs::temp_directory_path() /
           ("ecomp_bz2_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(Bz2ToolInterop, SystemBzip2ReadsOurOutput) {
  const Bytes input = mixed_input();
  for (int level : {1, 9}) {
    const fs::path bz = dir_ / "ours.bz2";
    const fs::path out = dir_ / "ours.out";
    cli::write_file(bz.string(), bz2_compress(input, level));
    const std::string cmd = "bzip2 -dc " + bz.string() + " > " +
                            out.string() + " 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << "bzip2 rejected us, level "
                                           << level;
    EXPECT_EQ(cli::read_file(out.string()), input) << level;
  }
}

TEST_F(Bz2ToolInterop, WeReadSystemBzip2Output) {
  const Bytes input = mixed_input();
  const fs::path raw = dir_ / "theirs";
  cli::write_file(raw.string(), input);
  for (const char* level : {"-1", "-9"}) {
    const std::string cmd = std::string("bzip2 -kf ") + level + " " +
                            raw.string() + " 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    const Bytes bz = cli::read_file((dir_ / "theirs.bz2").string());
    EXPECT_EQ(bz2_decompress(bz), input) << level;
  }
}

TEST_F(Bz2ToolInterop, HighlyCompressibleBothDirections) {
  // Dense zero-runs exercise RUNA/RUNB chains and big MTF zero counts.
  Bytes input;
  Rng rng(5);
  for (int i = 0; i < 3000; ++i)
    input.insert(input.end(), 10 + rng.below(60),
                 static_cast<std::uint8_t>(rng.below(4)));
  const fs::path bz = dir_ / "dense.bz2";
  const fs::path out = dir_ / "dense.out";
  cli::write_file(bz.string(), bz2_compress(input, 9));
  ASSERT_EQ(std::system(("bzip2 -dc " + bz.string() + " > " + out.string() +
                         " 2>/dev/null")
                            .c_str()),
            0);
  EXPECT_EQ(cli::read_file(out.string()), input);
}

}  // namespace
}  // namespace ecomp::compress

// Profiling suite (`ctest -L profiling`): the ecomp::prof subsystem —
// exact self-time accounting, SIGPROF sampling with folded-stack
// output, allocation accounting, the flight recorder ring, and the
// crash-safe post-mortem path.
//
// The headline acceptance tests:
//  * a deterministic synthetic workload profiled in-process yields
//    non-empty folded stacks whose hottest frames are the known hot
//    codec stages (bwt.forward dominating a bwt run);
//  * a fault-injected child `ecomp download` (ECOMP_PROF_TEST_CRASH)
//    dies on SIGSEGV mid-transfer and leaves a parseable JSONL crash
//    dump carrying the last flight-recorder events — active trace id
//    included — while its JSONL event log stays line-parseable (the
//    one-write()-per-line crash-safety contract).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "compress/selective.h"
#include "net/proxy.h"
#include "obs/events.h"
#include "obs/json_parse.h"
#include "prof/alloc.h"
#include "prof/crash.h"
#include "prof/flight.h"
#include "prof/profiler.h"
#include "prof/zone.h"
#include "workload/generator.h"

namespace ecomp {
namespace {

namespace fs = std::filesystem;

/// Deterministic 1 MiB text-like input shared by the profiling tests.
const Bytes& xml_input() {
  static const Bytes data = workload::generate_kind(
      workload::FileKind::Xml, 1 << 20, /*seed=*/21, 0.2);
  return data;
}

/// Parse a JSONL blob; every non-empty line must be valid JSON.
std::vector<obs::JsonValue> parse_jsonl(const std::string& text) {
  std::vector<obs::JsonValue> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out.push_back(obs::parse_json(line));
  }
  return out;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --------------------------------------------------- exact self time

TEST(ProfTiming, SelfTableRanksKnownHotStage) {
  prof::ProfilerOptions opt;
  opt.sampling = false;  // exact timing only: deterministic ranking
  opt.timing = true;
  ASSERT_TRUE(prof::Profiler::global().start(opt));
  EXPECT_TRUE(prof::Profiler::global().running());
  EXPECT_FALSE(prof::Profiler::global().start(opt));  // one at a time

  const auto codec = compress::make_codec("bwt");
  const Bytes back = codec->decompress(codec->compress(xml_input()));
  const prof::ProfileReport report = prof::Profiler::global().stop();
  EXPECT_FALSE(prof::Profiler::global().running());
  ASSERT_EQ(back, xml_input());

  ASSERT_FALSE(report.self.empty());
  EXPECT_GT(report.total_self_ns, 0u);
  // The suffix sort is the known hot stage of a bwt round trip; every
  // instrumented stage showed up at all.
  EXPECT_GT(report.self_pct("bwt.forward"), 30.0);
  EXPECT_GT(report.self_pct("bwt.forward"), report.self_pct("mtf"));
  EXPECT_GT(report.self_pct("bwt.forward"),
            report.self_pct("huffman.encode"));
  for (const char* stage :
       {"bwt.forward", "mtf", "huffman.encode", "huffman.decode",
        "bwt.inverse", "crc32"})
    EXPECT_GT(report.self_pct(stage), 0.0) << stage;
  EXPECT_EQ(report.self_pct("no.such.zone"), 0.0);

  const std::string table = report.to_table();
  EXPECT_NE(table.find("bwt.forward"), std::string::npos);
}

TEST(ProfTiming, StartRejectsNoModeOptions) {
  prof::ProfilerOptions opt;
  opt.sampling = false;
  opt.timing = false;
  EXPECT_FALSE(prof::Profiler::global().start(opt));
  EXPECT_FALSE(prof::Profiler::global().running());
}

// ------------------------------------------------------- sampling

TEST(ProfSampling, FoldedStacksTopFramesMatchHotFunctions) {
  prof::ProfilerOptions opt;
  opt.hz = 997;
  opt.sampling = true;
  opt.timing = false;
  ASSERT_TRUE(prof::Profiler::global().start(opt));
  EXPECT_TRUE(prof::Profiler::sampler_active());

  // Deterministic workload; loop until the sampler has a solid base
  // (ITIMER_PROF fires against CPU time, so the iteration count needed
  // varies with host/sanitizer speed — the workload itself does not).
  const auto codec = compress::make_codec("bwt");
  const std::uint64_t before = prof::Profiler::lifetime_samples();
  for (int i = 0;
       i < 40 && prof::Profiler::lifetime_samples() - before < 300; ++i) {
    const Bytes packed = codec->compress(xml_input());
    ASSERT_FALSE(packed.empty());
  }
  const prof::ProfileReport report = prof::Profiler::global().stop();
  EXPECT_FALSE(prof::Profiler::sampler_active());
  EXPECT_GE(prof::Profiler::lifetime_samples() - before, report.samples);

  ASSERT_GT(report.samples, 0u);
  ASSERT_FALSE(report.folded.empty());
  // Aggregate leaf-frame sample counts across stacks.
  std::map<std::string, std::uint64_t> leaf;
  for (const auto& [stack, count] : report.folded) {
    const auto semi = stack.rfind(';');
    leaf[semi == std::string::npos ? stack : stack.substr(semi + 1)] +=
        count;
  }
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  for (const auto& [frame, count] : leaf) ranked.push_back({count, frame});
  std::sort(ranked.rbegin(), ranked.rend());

  // Top-2 frames are known hot functions of the bwt compress path; the
  // suffix sort leads outright.
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].second, "bwt.forward");
  const std::set<std::string> hot = {"bwt.forward", "mtf",
                                     "huffman.encode", "bwt.compress",
                                     "crc32", "ecomp"};
  EXPECT_TRUE(hot.count(ranked[1].second)) << ranked[1].second;

  // Folded text is FlameGraph-shaped, rooted at the process frame, and
  // lexicographically sorted for byte-stable output.
  const std::string text = report.to_folded();
  EXPECT_NE(text.find("bwt.forward"), std::string::npos);
  std::vector<std::string> stacks;
  for (const auto& [stack, count] : report.folded) {
    EXPECT_GT(count, 0u);
    EXPECT_EQ(stack.rfind("ecomp", 0), 0u) << stack;
    stacks.push_back(stack);
  }
  EXPECT_TRUE(std::is_sorted(stacks.begin(), stacks.end()));
}

TEST(ProfSampling, WriteFoldedRoundTripsThroughDisk) {
  prof::ProfilerOptions opt;
  opt.sampling = true;
  opt.timing = true;
  ASSERT_TRUE(prof::Profiler::global().start(opt));
  const auto codec = compress::make_codec("deflate");
  const Bytes packed = codec->compress(xml_input());
  ASSERT_FALSE(packed.empty());
  const prof::ProfileReport report = prof::Profiler::global().stop();

  const fs::path path =
      fs::temp_directory_path() /
      ("ecomp_prof_folded_" + std::to_string(::getpid()) + ".txt");
  prof::write_folded(path.string(), report);
  EXPECT_EQ(read_file(path), report.to_folded());
  fs::remove(path);

  EXPECT_THROW(prof::write_folded("/nonexistent-dir/x/y.folded", report),
               std::runtime_error);
}

// ------------------------------------------------ alloc accounting

TEST(ProfAlloc, BooksBytesCountsAndPeakPerComponent) {
  ECOMP_PROF_ALLOC("test.alloc_site", 1000);
  ECOMP_PROF_ALLOC("test.alloc_site", 500);
  ECOMP_PROF_RELEASE("test.alloc_site", 1500);
  ECOMP_PROF_ALLOC("test.alloc_site", 200);

  bool found = false;
  for (const auto& row : prof::alloc_snapshot()) {
    if (row.component != "test.alloc_site") continue;
    found = true;
    EXPECT_EQ(row.bytes, 1700u);    // total ever booked
    EXPECT_EQ(row.allocs, 3u);      // booking events
    EXPECT_EQ(row.current, 200u);   // live after the release
    EXPECT_EQ(row.peak, 1500u);     // high-water mark survives release
  }
  EXPECT_TRUE(found);
}

TEST(ProfAlloc, ScopedAccountingNamesTheCaller) {
  {
    prof::AllocScope scope("test.scoped_site");
    prof::account_scoped(4096);
  }
  prof::account_scoped(1 << 30);  // outside any scope: dropped
  bool found = false;
  for (const auto& row : prof::alloc_snapshot()) {
    if (row.component != "test.scoped_site") continue;
    found = true;
    EXPECT_EQ(row.bytes, 4096u);
    EXPECT_EQ(row.allocs, 1u);
  }
  EXPECT_TRUE(found);
  EXPECT_GT(prof::rss_peak_kb(), 0);  // VmHWM is readable on Linux
}

TEST(ProfAlloc, CodecScratchArenasAreInstrumented) {
  const auto codec = compress::make_codec("deflate");
  const Bytes packed = codec->compress(xml_input());
  ASSERT_FALSE(packed.empty());
  std::set<std::string> components;
  for (const auto& row : prof::alloc_snapshot())
    components.insert(row.component);
  EXPECT_TRUE(components.count("lz77.scratch"));
  EXPECT_TRUE(components.count("lz77.tokens"));
}

// ------------------------------------------------ flight recorder

TEST(FlightRecorderRing, WrapsPastCapacityAndDumpsParseableTail) {
  auto& fr = prof::FlightRecorder::global();
  fr.clear();
  ASSERT_EQ(fr.recorded(), 0u);

  constexpr int kNotes = 300;  // past kCapacity: oldest 44 roll off
  for (int i = 0; i < kNotes; ++i)
    fr.note("stage" + std::to_string(i % 7), "detail " + std::to_string(i),
            /*trace_id=*/0x1000 + static_cast<std::uint64_t>(i),
            /*a=*/i, /*b=*/1);
  EXPECT_EQ(fr.recorded(), static_cast<std::uint64_t>(kNotes));

  const auto lines = parse_jsonl(fr.dump_string());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(
                              prof::FlightRecorder::kCapacity));
  // Oldest-first, contiguous ordinals ending at the newest note.
  EXPECT_EQ(lines.front().number_or("seq", -1),
            kNotes - prof::FlightRecorder::kCapacity);
  EXPECT_EQ(lines.back().number_or("seq", -1), kNotes - 1);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ASSERT_TRUE(lines[i].is_object());
    ASSERT_NE(lines[i].find("stage"), nullptr);
    ASSERT_NE(lines[i].find("trace"), nullptr);
    EXPECT_EQ(lines[i].find("trace")->string.size(), 16u);
    EXPECT_EQ(lines[i].number_or("attempt", -1), 1.0);
  }
  EXPECT_EQ(lines.back().find("stage")->string,
            "stage" + std::to_string((kNotes - 1) % 7));

  // dump_to_file is the async-signal-safe path the crash handler uses.
  const fs::path path =
      fs::temp_directory_path() /
      ("ecomp_prof_flight_" + std::to_string(::getpid()) + ".jsonl");
  ASSERT_TRUE(fr.dump_to_file(path.string().c_str()));
  EXPECT_EQ(parse_jsonl(read_file(path)).size(), lines.size());
  fs::remove(path);
  fr.clear();
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_TRUE(fr.dump_string().empty());
}

TEST(FlightRecorderRing, MirrorsEventLogEmissions) {
  auto& fr = prof::FlightRecorder::global();
  fr.clear();
  prof::attach_flight_mirror();
  obs::Event e;
  e.stage = "stream";
  e.name = "file.bin";
  e.mode = "selective";
  e.trace_id = 0xdeadbeef;
  e.bytes_wire = 123;
  e.attempt = 2;
  obs::EventLog::global().emit(e);  // no file open: mirror still fires
  ASSERT_GE(fr.recorded(), 1u);
  const auto lines = parse_jsonl(fr.dump_string());
  ASSERT_FALSE(lines.empty());
  const auto& last = lines.back();
  EXPECT_EQ(last.find("stage")->string, "stream");
  EXPECT_EQ(last.find("trace")->string, "00000000deadbeef");
  EXPECT_NE(last.find("detail")->string.find("name=file.bin"),
            std::string::npos);
  EXPECT_EQ(last.number_or("bytes_wire", -1), 123.0);
  fr.clear();
}

// ------------------------------------------------ crash post-mortem

/// A fault-injected child `ecomp download` raises SIGSEGV after the
/// first payload bytes arrive (ECOMP_PROF_TEST_CRASH); the crash
/// handler must leave a parseable post-mortem dump whose flight events
/// carry the active trace id, and the child's JSONL event log must
/// parse line-by-line even though the process died mid-stream.
TEST(CrashDump, ChildCrashLeavesParseablePostMortemWithTraceId) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("ecomp_prof_crash_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path dump = dir / "crash.jsonl";
  const fs::path client_log = dir / "client.jsonl";
  const fs::path out_file = dir / "out.bin";

  net::FileStore store;
  store.put("f", workload::generate_kind(workload::FileKind::Xml, 200000,
                                         /*seed=*/7, 0.3));
  net::ProxyServer server(store, compress::SelectivePolicy::always());

  const std::string cmd =
      "ECOMP_CRASH_DUMP=" + dump.string() +
      " ECOMP_EVENTS=" + client_log.string() +
      " ECOMP_PROF_TEST_CRASH=1 " ECOMP_BIN " download --port " +
      std::to_string(server.port()) + " -m selective f " +
      out_file.string() + " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  server.stop();

  // The shell reports a signal death as 128 + signo.
  ASSERT_NE(rc, -1);
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 128 + SIGSEGV);

  // Post-mortem artifact: JSON header line naming the signal, then the
  // flight ring oldest-first.
  ASSERT_TRUE(fs::exists(dump));
  const auto lines = parse_jsonl(read_file(dump));
  ASSERT_GE(lines.size(), 2u);
  const auto& header = lines.front();
  ASSERT_NE(header.find("fatal"), nullptr);
  EXPECT_TRUE(header.find("fatal")->boolean);
  EXPECT_EQ(header.number_or("signal", -1),
            static_cast<double>(SIGSEGV));

  std::set<std::string> dump_traces, dump_stages;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    ASSERT_TRUE(lines[i].is_object());
    if (const auto* t = lines[i].find("trace"))
      dump_traces.insert(t->string);
    if (const auto* s = lines[i].find("stage"))
      dump_stages.insert(s->string);
  }
  // The transfer got far enough to mint a trace and log lifecycle
  // stages before dying.
  EXPECT_FALSE(dump_traces.empty());
  EXPECT_TRUE(dump_stages.count("connect") || dump_stages.count("request"))
      << "stages: " << dump_stages.size();

  // Crash-safe event log: every line the child managed to write is a
  // complete JSON object (one write(2) per line + fatal-signal fsync),
  // and the dump's trace ids come from those same events.
  ASSERT_TRUE(fs::exists(client_log));
  const auto events = parse_jsonl(read_file(client_log));
  ASSERT_FALSE(events.empty());
  std::set<std::string> log_traces;
  for (const auto& e : events) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("stage"), nullptr);
    if (const auto* t = e.find("trace")) log_traces.insert(t->string);
  }
  bool intersects = false;
  for (const auto& t : log_traces)
    if (dump_traces.count(t)) intersects = true;
  EXPECT_TRUE(intersects);

  fs::remove_all(dir);
}

/// fatal_dump covers non-signal deaths (uncaught CLI exceptions): same
/// artifact, "reason" instead of "signal".
TEST(CrashDump, FatalDumpWritesReasonHeader) {
  const fs::path dump =
      fs::temp_directory_path() /
      ("ecomp_prof_fatal_" + std::to_string(::getpid()) + ".jsonl");
  fs::remove(dump);
  prof::install_crash_handler(dump.string());
  EXPECT_TRUE(prof::crash_handler_installed());
  EXPECT_EQ(prof::crash_dump_path(), dump.string());

  prof::FlightRecorder::global().note("fatal-test", "before the throw",
                                      0x42);
  ASSERT_TRUE(prof::fatal_dump("unrecognized container magic"));
  const auto lines = parse_jsonl(read_file(dump));
  ASSERT_GE(lines.size(), 2u);
  EXPECT_TRUE(lines.front().find("fatal")->boolean);
  EXPECT_EQ(lines.front().find("reason")->string,
            "unrecognized container magic");
  bool saw_note = false;
  for (const auto& l : lines)
    if (const auto* s = l.find("stage"))
      if (s->string == "fatal-test") saw_note = true;
  EXPECT_TRUE(saw_note);
  fs::remove(dump);
}

}  // namespace
}  // namespace ecomp

// Lossy-channel model: Gilbert–Elliott statistics, ARQ backoff, the
// p=0 bit-for-bit guarantee, ledger invariants under loss, and the
// loss-adjusted Eq. 6 thresholds.
#include <gtest/gtest.h>

#include <cmath>

#include "core/energy_model.h"
#include "sim/channel.h"
#include "sim/energy_ledger.h"
#include "sim/packet.h"
#include "util/bytes.h"

namespace ecomp::sim {
namespace {

std::vector<BlockTransfer> uniform_blocks(double raw_mb, double factor,
                                          double block_mb = 0.128) {
  std::vector<BlockTransfer> out;
  double left = raw_mb;
  while (left > 1e-12) {
    const double b = std::min(block_mb, left);
    out.push_back({b, b / factor, true});
    left -= b;
  }
  return out;
}

TEST(ChannelModel, PerfectIsLossless) {
  const auto m = ChannelModel::perfect();
  EXPECT_TRUE(m.lossless());
  EXPECT_EQ(m.avg_loss_rate(), 0.0);
  EXPECT_EQ(m.expected_transmissions(), 1.0);
}

TEST(ChannelModel, BernoulliAverageIsItsParameter) {
  EXPECT_DOUBLE_EQ(ChannelModel::bernoulli(0.07).avg_loss_rate(), 0.07);
  EXPECT_NEAR(ChannelModel::bernoulli(0.2).expected_transmissions(), 1.25,
              1e-12);
  EXPECT_TRUE(ChannelModel::bernoulli(0.0).lossless());
}

TEST(ChannelModel, GilbertElliottStationaryAverage) {
  // pi_bad = p_gb / (p_gb + p_bg); avg = (1-pi)*lg + pi*lb.
  const auto m = ChannelModel::gilbert_elliott(0.02, 0.18, 0.01, 0.9);
  const double pi_bad = 0.02 / (0.02 + 0.18);
  EXPECT_NEAR(m.avg_loss_rate(), (1 - pi_bad) * 0.01 + pi_bad * 0.9, 1e-12);
}

TEST(ChannelModel, GilbertElliottAvgHitsTargetAndBurstLength) {
  for (double target : {0.01, 0.05, 0.2}) {
    const auto m = ChannelModel::gilbert_elliott_avg(target, 4.0);
    EXPECT_NEAR(m.avg_loss_rate(), target, 1e-12) << target;
    // Mean sojourn in the bad state is 1 / p_bg attempts.
    EXPECT_NEAR(1.0 / m.p_bad_to_good, 4.0, 1e-12) << target;
  }
  EXPECT_TRUE(ChannelModel::gilbert_elliott_avg(0.0).lossless());
}

TEST(ChannelModel, ValidateRejectsBadParameters) {
  EXPECT_THROW(ChannelModel::bernoulli(1.0).validate(), Error);
  EXPECT_THROW(ChannelModel::bernoulli(-0.1).validate(), Error);
  EXPECT_THROW(ChannelModel::gilbert_elliott(1.5, 0.2).validate(), Error);
  // A chain stuck in an always-lose bad state can never deliver.
  EXPECT_THROW(ChannelModel::gilbert_elliott(1.0, 0.0, 1.0, 1.0).validate(),
               Error);
  ChannelModel::gilbert_elliott_avg(0.2).validate();  // fine
}

TEST(ArqParams, BackoffDoublesThenSaturates) {
  const ArqParams arq;
  EXPECT_NEAR(arq.backoff_s(0), 310e-6, 1e-12);
  EXPECT_NEAR(arq.backoff_s(1), 620e-6, 1e-12);
  EXPECT_NEAR(arq.backoff_s(2), 1240e-6, 1e-12);
  EXPECT_NEAR(arq.backoff_s(50), arq.backoff_max_s, 1e-12);
  EXPECT_LE(arq.backoff_s(5), arq.backoff_max_s + 1e-12);
}

TEST(ChannelSampler, PerfectNeverLosesAndNeverDrawsRng) {
  ChannelSampler a(ChannelModel::perfect(), 1);
  ChannelSampler b(ChannelModel::perfect(), 2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(a.lose_next());
    EXPECT_FALSE(b.lose_next());
  }
  EXPECT_EQ(a.losses(), 0u);
  EXPECT_EQ(a.attempts(), 1000u);
}

TEST(ChannelSampler, DeterministicPerSeed) {
  const auto m = ChannelModel::gilbert_elliott_avg(0.1);
  ChannelSampler a(m, 42), b(m, 42), c(m, 43);
  std::vector<bool> fa, fb, fc;
  for (int i = 0; i < 2000; ++i) {
    fa.push_back(a.lose_next());
    fb.push_back(b.lose_next());
    fc.push_back(c.lose_next());
  }
  EXPECT_EQ(fa, fb);
  EXPECT_NE(fa, fc);  // astronomically unlikely to collide
}

TEST(ChannelSampler, EmpiricalRateMatchesStationary) {
  for (const auto& m : {ChannelModel::bernoulli(0.1),
                        ChannelModel::gilbert_elliott_avg(0.1, 4.0)}) {
    ChannelSampler s(m, 0xC0FFEE);
    const int n = 200000;
    int lost = 0;
    for (int i = 0; i < n; ++i) lost += s.lose_next() ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(lost) / n, 0.1, 0.01)
        << to_string(m.kind);
    EXPECT_EQ(s.attempts(), static_cast<std::uint64_t>(n));
    EXPECT_EQ(s.losses(), static_cast<std::uint64_t>(lost));
  }
}

// --- the p=0 property: enabling the channel machinery must not change
// --- a single bit of the lossless results.

TEST(ChannelPacketSim, ZeroLossIsBitForBitIdentical) {
  const PacketLevelSimulator psim;
  const auto blocks = uniform_blocks(2.0, 2.5);
  for (const bool interleave : {false, true}) {
    for (const bool power_saving : {false, true}) {
      PacketSimOptions base;
      base.interleave = interleave;
      base.power_saving = power_saving;
      const auto ref = psim.download(blocks, "deflate", base);

      for (const auto& ch :
           {ChannelModel::perfect(), ChannelModel::bernoulli(0.0),
            ChannelModel::gilbert_elliott_avg(0.0)}) {
        PacketSimOptions opt = base;
        opt.channel = ch;
        const auto got = psim.download(blocks, "deflate", opt);
        EXPECT_EQ(got.energy_j, ref.energy_j);  // exact, not NEAR
        EXPECT_EQ(got.time_s, ref.time_s);
        EXPECT_EQ(got.retransmissions, 0u);
        EXPECT_EQ(got.link_drops, 0u);
        EXPECT_EQ(got.retransmit_energy_j, 0.0);
        ASSERT_EQ(got.timeline.phases().size(), ref.timeline.phases().size());
        for (std::size_t i = 0; i < ref.timeline.phases().size(); ++i) {
          const auto& p = got.timeline.phases()[i];
          const auto& q = ref.timeline.phases()[i];
          EXPECT_EQ(p.label, q.label);
          EXPECT_EQ(p.duration_s, q.duration_s);
          EXPECT_EQ(p.power_w, q.power_w);
          EXPECT_EQ(p.attr.component, q.attr.component);
        }
      }
    }
  }
}

TEST(ChannelPacketSim, LedgerInvariantsHoldAcrossLossRates) {
  const PacketLevelSimulator psim;
  const auto blocks = uniform_blocks(3.0, 2.0);
  for (const double q : {0.0, 0.01, 0.05, 0.2}) {
    PacketSimOptions opt;
    opt.interleave = true;
    if (q > 0.0) opt.channel = ChannelModel::gilbert_elliott_avg(q);
    const auto r = psim.download(blocks, "deflate", opt);
    const auto ledger = EnergyLedger::from_timeline(r.timeline);
    EXPECT_EQ(ledger.validate(r.timeline), "") << q;
    const double retrans_j = ledger.energy_j("radio/retransmit");
    if (q == 0.0) {
      EXPECT_EQ(retrans_j, 0.0);
    } else if (r.retransmissions > 0) {
      EXPECT_GT(retrans_j, 0.0) << q;
      // The result's convenience field is the ledger component.
      EXPECT_NEAR(retrans_j, r.retransmit_energy_j,
                  1e-9 + 1e-9 * retrans_j);
      // Its children sum to it: recv attempts + backoff idling.
      EXPECT_NEAR(ledger.energy_j("radio/retransmit/recv") +
                      ledger.energy_j("radio/retransmit/backoff"),
                  retrans_j, 1e-9);
    }
  }
}

TEST(ChannelPacketSim, LossCostsEnergyMonotonically) {
  const PacketLevelSimulator psim;
  const auto blocks = uniform_blocks(3.0, 2.0);
  double prev_e = -1.0, prev_t = -1.0;
  for (const double q : {0.0, 0.05, 0.2}) {
    PacketSimOptions opt;
    opt.interleave = true;
    if (q > 0.0) opt.channel = ChannelModel::bernoulli(q);
    const auto r = psim.download(blocks, "deflate", opt);
    EXPECT_GT(r.energy_j, prev_e) << q;
    EXPECT_GT(r.time_s, prev_t) << q;
    prev_e = r.energy_j;
    prev_t = r.time_s;
  }
}

TEST(ChannelPacketSim, RetryCapEscalatesToLinkDrops) {
  const PacketLevelSimulator psim;
  PacketSimOptions opt;
  // A dreadful channel with a tiny retry budget must record drops but
  // still terminate and deliver (transport-level resend).
  opt.channel = ChannelModel::bernoulli(0.9);
  opt.arq.max_retries = 2;
  const auto r = psim.download(uniform_blocks(0.2, 2.0), "deflate", opt);
  EXPECT_GT(r.link_drops, 0u);
  EXPECT_GT(r.retransmissions, r.link_drops);
  EXPECT_GT(r.energy_j, 0.0);
}

TEST(ChannelPacketSim, SameSeedSameResultDifferentSeedDiffers) {
  const PacketLevelSimulator psim;
  const auto blocks = uniform_blocks(1.0, 2.0);
  PacketSimOptions a;
  a.channel = ChannelModel::gilbert_elliott_avg(0.1);
  PacketSimOptions b = a;
  b.channel_seed = a.channel_seed + 1;
  const auto r1 = psim.download(blocks, "deflate", a);
  const auto r2 = psim.download(blocks, "deflate", a);
  const auto r3 = psim.download(blocks, "deflate", b);
  EXPECT_EQ(r1.energy_j, r2.energy_j);
  EXPECT_EQ(r1.retransmissions, r2.retransmissions);
  EXPECT_NE(r1.retransmissions, r3.retransmissions);
}

// --- loss-adjusted closed form (Eq. 6 thresholds as functions of q).

TEST(EnergyModelLoss, WithLossShiftsThresholdsMonotonically) {
  const auto model = core::EnergyModel::paper_11mbps();
  double prev_f = 1e9, prev_mb = 1e9;
  for (const double q : {0.0, 0.05, 0.1, 0.3}) {
    const auto lossy = model.with_loss(q);
    const double f = lossy.min_factor(1.0);
    const double mb = lossy.min_file_mb();
    EXPECT_LT(f, prev_f) << q;   // compression pays at smaller factors
    EXPECT_LT(mb, prev_mb) << q; // and for smaller files
    prev_f = f;
    prev_mb = mb;
  }
}

TEST(EnergyModelLoss, ZeroLossIsIdentity) {
  const auto model = core::EnergyModel::paper_11mbps();
  EXPECT_DOUBLE_EQ(model.with_loss(0.0).min_factor(1.0),
                   model.min_factor(1.0));
  EXPECT_DOUBLE_EQ(
      model.with_channel(ChannelModel::perfect()).min_file_mb(),
      model.min_file_mb());
}

TEST(EnergyModelLoss, DownloadEnergyScalesWithExpectedTransmissions) {
  const auto model = core::EnergyModel::paper_11mbps();
  const double q = 0.2;
  // Radio m (J/MB) scales by n = 1/(1-q); rate drops by n.
  const auto lossy = model.with_loss(q);
  const double n = 1.0 / (1.0 - q);
  EXPECT_NEAR(lossy.params().m, model.params().m * n, 1e-12);
  EXPECT_NEAR(lossy.params().rate, model.params().rate / n, 1e-12);
}

TEST(EnergyModelLoss, RejectsInvalidLossRates) {
  const auto model = core::EnergyModel::paper_11mbps();
  EXPECT_THROW(model.with_loss(-0.1), Error);
  EXPECT_THROW(model.with_loss(1.0), Error);
}

}  // namespace
}  // namespace ecomp::sim

#include <gtest/gtest.h>

#include "util/crc32.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ecomp {
namespace {

// ------------------------------------------------------------------ CRC-32

TEST(Crc32, KnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(crc32(as_bytes(std::string("123456789"))), 0xCBF43926u);
  EXPECT_EQ(crc32(as_bytes(std::string(""))), 0x00000000u);
  EXPECT_EQ(crc32(as_bytes(std::string("a"))), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng rng(5);
  Bytes data(10000);
  for (auto& b : data) b = rng.byte();
  Crc32 inc;
  inc.update(ByteSpan(data).subspan(0, 3333));
  inc.update(ByteSpan(data).subspan(3333, 4444));
  inc.update(ByteSpan(data).subspan(7777));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, ByteAtATimeMatches) {
  const std::string s = "wireless handheld energy";
  Crc32 c;
  for (char ch : s) c.update(static_cast<std::uint8_t>(ch));
  EXPECT_EQ(c.value(), crc32(as_bytes(s)));
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data(256);
  Rng rng(6);
  for (auto& b : data) b = rng.byte();
  const std::uint32_t good = crc32(data);
  data[100] ^= 0x04;
  EXPECT_NE(crc32(data), good);
}

// --------------------------------------------------------------------- RNG

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto r = rng.range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

// ------------------------------------------------------------------- stats

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stats::mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stats::variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stats::stddev(v), 2.0);
}

TEST(Stats, LinearFitRecoversExactLine) {
  std::vector<double> x, y;
  for (double xi = 0; xi < 10; xi += 0.5) {
    x.push_back(xi);
    y.push_back(3.519 * xi + 0.012);
  }
  const auto fit = stats::linear_fit(x, y);
  EXPECT_NEAR(fit.coef[0], 3.519, 1e-9);
  EXPECT_NEAR(fit.coef[1], 0.012, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitWithNoise) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xi = rng.uniform() * 10.0;
    x.push_back(xi);
    y.push_back(2.0 * xi + 1.0 + (rng.uniform() - 0.5) * 0.01);
  }
  const auto fit = stats::linear_fit(x, y);
  EXPECT_NEAR(fit.coef[0], 2.0, 0.01);
  EXPECT_NEAR(fit.coef[1], 1.0, 0.01);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(Stats, MultivariateRecoversPlane) {
  // td = 0.161 s + 0.161 sc + 0.004, the paper's decompression fit.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double s = 0.1; s < 5.0; s += 0.3)
    for (double f = 1.2; f < 10.0; f += 1.1) {
      const double sc = s / f;
      x.push_back({s, sc, 1.0});
      y.push_back(0.161 * s + 0.161 * sc + 0.004);
    }
  const auto fit = stats::least_squares(x, y);
  EXPECT_NEAR(fit.coef[0], 0.161, 1e-9);
  EXPECT_NEAR(fit.coef[1], 0.161, 1e-9);
  EXPECT_NEAR(fit.coef[2], 0.004, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, SingularSystemThrows) {
  // Two identical columns.
  std::vector<std::vector<double>> x = {{1, 1}, {2, 2}, {3, 3}};
  std::vector<double> y = {1, 2, 3};
  EXPECT_THROW(stats::least_squares(x, y), Error);
}

TEST(Stats, ShapeMismatchThrows) {
  EXPECT_THROW(stats::least_squares({{1.0}}, {1.0, 2.0}), Error);
  EXPECT_THROW(stats::least_squares({}, {}), Error);
}

TEST(Stats, SolveLinearSystem) {
  // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
  auto sol = stats::solve_linear_system({{2, 1}, {1, -1}}, {5, 1});
  ASSERT_EQ(sol.size(), 2u);
  EXPECT_NEAR(sol[0], 2.0, 1e-12);
  EXPECT_NEAR(sol[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace ecomp

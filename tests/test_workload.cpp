// Workload generators and the Table 2 corpus reconstruction.
#include <gtest/gtest.h>

#include "compress/codec.h"
#include "workload/corpus.h"
#include "workload/generator.h"

namespace ecomp::workload {
namespace {

TEST(Generator, DeterministicAcrossCalls) {
  const Bytes a = generate_kind(FileKind::Xml, 50000, 42, 0.3);
  const Bytes b = generate_kind(FileKind::Xml, 50000, 42, 0.3);
  EXPECT_EQ(a, b);
}

TEST(Generator, SeedChangesContent) {
  EXPECT_NE(generate_kind(FileKind::Log, 20000, 1, 0.0),
            generate_kind(FileKind::Log, 20000, 2, 0.0));
}

TEST(Generator, ExactSizes) {
  for (auto kind : {FileKind::Xml, FileKind::Binary, FileKind::Wav,
                    FileKind::Random, FileKind::TarMixed})
    for (std::size_t size : {1u, 100u, 4096u, 100000u})
      EXPECT_EQ(generate_kind(kind, size, 7, 0.0).size(), size)
          << to_string(kind) << " " << size;
}

TEST(Generator, PositiveTuneRaisesFactor) {
  const auto codec = compress::make_deflate(6);
  const Bytes flat = generate_kind(FileKind::Binary, 200000, 5, 0.0);
  const Bytes tuned = generate_kind(FileKind::Binary, 200000, 5, 0.8);
  EXPECT_GT(compress::compression_factor(*codec, tuned),
            compress::compression_factor(*codec, flat) * 1.5);
}

TEST(Generator, NegativeTuneLowersFactor) {
  const auto codec = compress::make_deflate(6);
  const Bytes flat = generate_kind(FileKind::Xml, 200000, 6, 0.0);
  const Bytes noisy = generate_kind(FileKind::Xml, 200000, 6, -0.8);
  EXPECT_LT(compress::compression_factor(*codec, noisy),
            compress::compression_factor(*codec, flat) * 0.6);
}

TEST(Generator, KindsHaveCharacteristicEntropy) {
  const auto codec = compress::make_deflate(6);
  const double f_xml = compress::compression_factor(
      *codec, generate_kind(FileKind::Xml, 300000, 8, 0.0));
  const double f_bin = compress::compression_factor(
      *codec, generate_kind(FileKind::Binary, 300000, 8, 0.0));
  const double f_media = compress::compression_factor(
      *codec, generate_kind(FileKind::Media, 300000, 8, 0.0));
  const double f_rand = compress::compression_factor(
      *codec, generate_kind(FileKind::Random, 300000, 8, 0.0));
  EXPECT_GT(f_xml, f_bin);
  EXPECT_GT(f_bin, f_media);
  EXPECT_GE(f_media, f_rand * 0.98);
  EXPECT_NEAR(f_rand, 1.0, 0.02);
}

TEST(Generator, TuneForFactorHitsTargets) {
  const auto codec = compress::make_deflate(9);
  for (double target : {1.5, 3.0, 8.0}) {
    const double tune =
        tune_for_factor(FileKind::Source, 300000, 9, target);
    const Bytes data = generate_kind(FileKind::Source, 300000, 9, tune);
    const double got = compress::compression_factor(*codec, data);
    EXPECT_NEAR(got, target, 0.25 * target) << "target " << target;
  }
}

TEST(Generator, SeedFromNameIsStable) {
  EXPECT_EQ(seed_from_name("news96.xml"), seed_from_name("news96.xml"));
  EXPECT_NE(seed_from_name("news96.xml"), seed_from_name("M31C.xml"));
}

TEST(Generator, TarMixedHasHeterogeneousBlocks) {
  const auto codec = compress::make_deflate(6);
  const Bytes data = generate_kind(FileKind::TarMixed, 1500000, 10, 0.0);
  double min_f = 1e9, max_f = 0;
  const std::size_t block = 128 * 1024;
  for (std::size_t off = 0; off + block <= data.size(); off += block) {
    const double f = compress::compression_factor(
        *codec, ByteSpan(data).subspan(off, block));
    min_f = std::min(min_f, f);
    max_f = std::max(max_f, f);
  }
  // The whole point of this kind: block factors vary a lot (§4.3).
  EXPECT_GT(max_f, 2.0 * min_f);
}

// -------------------------------------------------------------- corpus

TEST(Corpus, Table2HasAllRows) {
  EXPECT_EQ(table2().size(), 37u);
  std::size_t large = 0, small = 0;
  for (const auto& f : table2()) (f.large ? large : small)++;
  EXPECT_EQ(large, 23u);
  EXPECT_EQ(small, 14u);
}

TEST(Corpus, LookupByName) {
  const auto& f = table2_entry("M31C.xml");
  EXPECT_EQ(f.size_bytes, 8391571u);
  EXPECT_NEAR(f.paper_gzip, 14.64, 1e-9);
  EXPECT_THROW(table2_entry("nonexistent"), Error);
}

TEST(Corpus, PaperFactorOrderingHolds) {
  // In nearly every Table 2 row bzip2 ≥ gzip ≥ compress; the audio file
  // is the one place compress beats gzip (LZW likes PCM), as in the
  // paper's own sclerp.wav row.
  for (const auto& f : table2()) {
    EXPECT_GE(f.paper_bwt, f.paper_lzw * 0.95) << f.name;
    const double slack = f.kind == FileKind::Wav ? 0.75 : 0.9;
    EXPECT_GE(f.paper_gzip, f.paper_lzw * slack) << f.name;
  }
}

TEST(Corpus, GeneratedFactorsTrackPaperGzipColumn) {
  // Spot-check one file per regime at reduced scale.
  const auto codec = compress::make_deflate(9);
  for (const char* name :
       {"M31Csmall.xml", "proxy.ps", "NTBACKUP.EXE", "input.random"}) {
    const auto& entry = table2_entry(name);
    const Bytes data = generate(entry, /*scale=*/0.1);
    const double f = compress::compression_factor(*codec, data);
    EXPECT_NEAR(f, entry.paper_gzip, 0.3 * entry.paper_gzip) << name;
  }
}

TEST(Corpus, CacheReturnsSameBuffer) {
  Corpus corpus(0.02);
  const Bytes& a = corpus.file("mail0");
  const Bytes& b = corpus.file("mail0");
  EXPECT_EQ(&a, &b);
}

TEST(Corpus, ScaledSizeFloorsAt4K) {
  Corpus corpus(0.001);
  EXPECT_EQ(corpus.scaled_size(table2_entry("mail0")), 4096u);
}

}  // namespace
}  // namespace ecomp::workload

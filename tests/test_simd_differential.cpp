// Differential tests for the perf-optimised hot paths: every fast
// implementation is checked byte-for-byte against its reference over
// randomized buffers and generated corpus material.
//
//  * SIMD kernels (match_length, find_byte_index, crc32_update): the
//    dispatched kernel at every tier the CPU supports vs the always-
//    compiled scalar reference.
//  * Flat-table Huffman decode vs the canonical bit-by-bit walk, both
//    bit orders, including length-limited codes forced past the 12-bit
//    root table so chained subtables are exercised.
//  * SA-IS bwt_forward vs the prefix-doubling reference (including
//    periodic blocks, where tie order is the subtle part) and the
//    stride-8 packed bwt_inverse round trip across its size cutoffs.
//  * Whole-codec byte identity across simd::set_level tiers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "compress/bwt.h"
#include "compress/codec.h"
#include "compress/huffman.h"
#include "util/bitio.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/simd.h"
#include "workload/generator.h"

namespace ecomp {
namespace {

/// Every tier from scalar up to what this CPU actually supports.
std::vector<simd::Level> supported_levels() {
  std::vector<simd::Level> levels;
  for (int l = 0; l <= static_cast<int>(simd::detected_level()); ++l)
    levels.push_back(static_cast<simd::Level>(l));
  return levels;
}

/// Restores the pre-test dispatch level even if an assertion fails.
class SimdDifferential : public ::testing::Test {
 protected:
  void TearDown() override { simd::set_level(saved_); }
  simd::Level saved_ = simd::active_level();
};

Bytes random_bytes(Rng& rng, std::size_t n, int alphabet = 256) {
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<std::uint8_t>(rng.below(static_cast<std::uint64_t>(alphabet)));
  return out;
}

// ---------------------------------------------------------------------------
// SIMD kernels vs scalar reference.

TEST_F(SimdDifferential, MatchLengthAgreesAtEveryLevel) {
  Rng rng(0x51411);
  for (int iter = 0; iter < 200; ++iter) {
    // Two buffers sharing a planted common prefix; lengths straddle the
    // 16/32-byte vector widths and the cap.
    const int prefix = static_cast<int>(rng.below(300));
    const int tail = static_cast<int>(rng.below(64));
    Bytes a = random_bytes(rng, static_cast<std::size_t>(prefix + tail + 1));
    Bytes b = a;
    // Force a divergence right after the prefix (random tails may
    // accidentally agree; the reference handles that identically, but a
    // planted mismatch makes the expected value obvious).
    b[static_cast<std::size_t>(prefix)] ^= 0x5a;
    for (std::size_t i = static_cast<std::size_t>(prefix) + 1; i < b.size();
         ++i)
      b[i] = rng.byte();
    const int max_len = static_cast<int>(a.size());
    const int want = simd::scalar::match_length(a.data(), b.data(), max_len);
    ASSERT_EQ(want, prefix);
    for (simd::Level level : supported_levels()) {
      simd::set_level(level);
      EXPECT_EQ(simd::match_length(a.data(), b.data(), max_len), want)
          << "level " << simd::level_name(level) << " prefix " << prefix;
      // Capped shorter than the divergence point.
      const int cap = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(max_len) + 1));
      EXPECT_EQ(simd::match_length(a.data(), b.data(), cap),
                simd::scalar::match_length(a.data(), b.data(), cap))
          << "level " << simd::level_name(level) << " cap " << cap;
    }
  }
}

TEST_F(SimdDifferential, FindByteIndexAgreesAtEveryLevel) {
  Rng rng(0xf1ddb);
  for (int iter = 0; iter < 200; ++iter) {
    const int n = static_cast<int>(rng.below(300));
    Bytes buf = random_bytes(rng, static_cast<std::size_t>(n), 7);
    // Probe values both present (small alphabet => common) and absent.
    const std::uint8_t probe =
        static_cast<std::uint8_t>(rng.below(2) ? rng.below(7) : 0xee);
    const int want = simd::scalar::find_byte_index(buf.data(), n, probe);
    for (simd::Level level : supported_levels()) {
      simd::set_level(level);
      EXPECT_EQ(simd::find_byte_index(buf.data(), n, probe), want)
          << "level " << simd::level_name(level) << " n " << n;
    }
  }
}

TEST_F(SimdDifferential, Crc32KnownVectorAtEveryLevel) {
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  for (simd::Level level : supported_levels()) {
    simd::set_level(level);
    const std::uint32_t raw =
        simd::crc32_update(0xffffffffu, check, sizeof check);
    EXPECT_EQ(~raw, 0xCBF43926u) << "level " << simd::level_name(level);
  }
}

TEST_F(SimdDifferential, Crc32SplitStateMatchesOneShotAtEveryLevel) {
  Rng rng(0xc3c32);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.below(5000);
    const Bytes buf = random_bytes(rng, n);
    const std::uint32_t want =
        simd::scalar::crc32_update(0xffffffffu, buf.data(), n);
    for (simd::Level level : supported_levels()) {
      simd::set_level(level);
      // One-shot.
      EXPECT_EQ(simd::crc32_update(0xffffffffu, buf.data(), n), want)
          << "level " << simd::level_name(level);
      // Continuation across random split points, including tiny chunks
      // below any fold width.
      std::uint32_t state = 0xffffffffu;
      std::size_t at = 0;
      while (at < n) {
        const std::size_t take = std::min(n - at, 1 + rng.below(257));
        state = simd::crc32_update(state, buf.data() + at, take);
        at += take;
      }
      EXPECT_EQ(state, want) << "level " << simd::level_name(level);
    }
  }
}

TEST_F(SimdDifferential, Crc32ClassMatchesKernel) {
  Rng rng(0xcc321);
  const Bytes buf = random_bytes(rng, 4097);
  Crc32 c;
  c.update(buf);
  EXPECT_EQ(c.value(),
            ~simd::scalar::crc32_update(0xffffffffu, buf.data(), buf.size()));
}

// ---------------------------------------------------------------------------
// Flat-table Huffman decode vs the canonical walk.

/// Encode `syms` with the given lengths and check that decode() and
/// decode_walk() produce identical symbols AND consume identical bit
/// counts, for both bit orders.
void check_huffman_both_orders(const std::vector<std::uint8_t>& lengths,
                               const std::vector<std::uint32_t>& syms) {
  {
    huffman::EncoderLsb enc(lengths);
    BitWriterLsb w;
    for (std::uint32_t s : syms) enc.encode(w, s);
    const Bytes stream = w.take();
    huffman::DecoderLsb dec(lengths);
    BitReaderLsb flat(stream), walk(stream);
    for (std::size_t i = 0; i < syms.size(); ++i) {
      ASSERT_EQ(dec.decode(flat), syms[i]) << "lsb flat at " << i;
      ASSERT_EQ(dec.decode_walk(walk), syms[i]) << "lsb walk at " << i;
      ASSERT_EQ(flat.bits_consumed(), walk.bits_consumed()) << "at " << i;
    }
  }
  {
    huffman::EncoderMsb enc(lengths);
    BitWriterMsb w;
    for (std::uint32_t s : syms) enc.encode(w, s);
    const Bytes stream = w.take();
    huffman::DecoderMsb dec(lengths);
    BitReaderMsb flat(stream), walk(stream);
    for (std::size_t i = 0; i < syms.size(); ++i) {
      ASSERT_EQ(dec.decode(flat), syms[i]) << "msb flat at " << i;
      ASSERT_EQ(dec.decode_walk(walk), syms[i]) << "msb walk at " << i;
      ASSERT_EQ(flat.bits_consumed(), walk.bits_consumed()) << "at " << i;
    }
  }
}

/// A random symbol stream that uses every coded symbol at least once
/// (so the longest codes are guaranteed to be decoded).
std::vector<std::uint32_t> stream_covering(
    const std::vector<std::uint8_t>& lengths, Rng& rng, std::size_t extra) {
  std::vector<std::uint32_t> coded;
  for (std::size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] > 0) coded.push_back(static_cast<std::uint32_t>(s));
  std::vector<std::uint32_t> syms = coded;
  for (std::size_t i = 0; i < extra; ++i)
    syms.push_back(coded[rng.below(coded.size())]);
  // Fisher–Yates with the test RNG (std::shuffle's URBG adaptation is
  // implementation-defined; this keeps the stream reproducible).
  for (std::size_t i = syms.size(); i > 1; --i)
    std::swap(syms[i - 1], syms[rng.below(i)]);
  return syms;
}

TEST(HuffmanDifferential, FlatMatchesWalkOnRandomDistributions) {
  Rng rng(0x4fa11);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t alphabet = 2 + rng.below(257);
    std::vector<std::uint64_t> freqs(alphabet);
    for (auto& f : freqs) f = rng.below(2) ? rng.below(10000) : 0;
    freqs[0] = 1 + freqs[0];  // at least one coded symbol pair
    freqs[alphabet - 1] = 1 + freqs[alphabet - 1];
    const int limit = rng.below(2) ? 15 : 20;
    const auto lengths = huffman::build_code_lengths(freqs, limit);
    check_huffman_both_orders(lengths, stream_covering(lengths, rng, 2000));
  }
}

TEST(HuffmanDifferential, MaxLengthCodesForceSubtables) {
  // Fibonacci-skewed frequencies drive the optimal tree far past the
  // length limit, so the fixup pins codes AT the limit — 15 and 20 both
  // exceed the 12-bit root table, exercising chained subtable links in
  // the flat decoder (and the link path in both bit orders).
  Rng rng(0x5ab1e);
  for (const int limit : {15, 20}) {
    std::vector<std::uint64_t> freqs(40);
    std::uint64_t a = 1, b = 1;
    for (auto& f : freqs) {
      f = a;
      const std::uint64_t next = a + b;
      a = b;
      b = next;
    }
    const auto lengths = huffman::build_code_lengths(freqs, limit);
    const int deepest =
        *std::max_element(lengths.begin(), lengths.end());
    ASSERT_EQ(deepest, limit) << "skew failed to reach the length limit";
    check_huffman_both_orders(lengths, stream_covering(lengths, rng, 3000));
  }
}

TEST(HuffmanDifferential, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freqs(10);
  freqs[7] = 42;
  const auto lengths = huffman::build_code_lengths(freqs, 15);
  check_huffman_both_orders(lengths, std::vector<std::uint32_t>(64, 7));
}

// ---------------------------------------------------------------------------
// SA-IS BWT vs the prefix-doubling reference; packed inverse round trip.

void expect_bwt_identical(const Bytes& block, const std::string& what) {
  std::uint32_t p_sais = 0, p_ref = 0;
  const Bytes fast = compress::bwt_forward(block, p_sais);
  const Bytes ref = compress::bwt_forward_doubling(block, p_ref);
  ASSERT_EQ(fast, ref) << what;
  ASSERT_EQ(p_sais, p_ref) << what;
  ASSERT_EQ(compress::bwt_inverse(fast, p_sais), block) << what;
}

TEST(BwtDifferential, RandomBlocksMatchDoublingReference) {
  Rng rng(0xb3713);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = rng.below(20000);
    const int alphabet = 1 + static_cast<int>(rng.below(256));
    expect_bwt_identical(random_bytes(rng, n, alphabet),
                         "n=" + std::to_string(n));
  }
}

TEST(BwtDifferential, PeriodicBlocksMatchDoublingReference) {
  // Cyclically periodic blocks are where SA-IS needs the aperiodic-unit
  // expansion to reproduce the doubling sort's tie order exactly.
  Rng rng(0x9e10d);
  for (std::size_t unit = 1; unit <= 7; ++unit) {
    const Bytes pattern = random_bytes(rng, unit);
    for (const std::size_t reps : {2, 3, 64, 1000}) {
      Bytes block;
      for (std::size_t r = 0; r < reps; ++r)
        block.insert(block.end(), pattern.begin(), pattern.end());
      expect_bwt_identical(block, "unit=" + std::to_string(unit) +
                                      " reps=" + std::to_string(reps));
    }
  }
  expect_bwt_identical(Bytes(4096, 0x61), "all-same");
  expect_bwt_identical(Bytes{}, "empty");
  expect_bwt_identical(Bytes{0x7f}, "single");
}

TEST(BwtDifferential, CorpusMaterialMatchesDoublingReference) {
  for (const auto kind :
       {workload::FileKind::Xml, workload::FileKind::Binary}) {
    const Bytes block = workload::generate_kind(kind, 30000, 17, 0.3);
    expect_bwt_identical(block, workload::to_string(kind));
  }
}

TEST(BwtDifferential, InverseRoundTripStraddlesStrideCutoffs) {
  // bwt_inverse switches representation at n = 2^16 (packed local walk
  // below, stride-8 squared tables above) and peels n % 8 head bytes in
  // the strided walk; hit sizes on both sides of the cutoff and every
  // residue class.
  Rng rng(0x1c0ff);
  std::vector<std::size_t> sizes = {1, 2, 7, 8, 9, 15, 16, 17};
  for (std::size_t n = (1u << 16) - 9; n <= (1u << 16) + 9; ++n)
    sizes.push_back(n);
  for (const std::size_t n : sizes) {
    const Bytes block = random_bytes(rng, n, 17);
    std::uint32_t primary = 0;
    const Bytes last = compress::bwt_forward(block, primary);
    ASSERT_EQ(compress::bwt_inverse(last, primary), block) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// MTF (dispatched rank scan) and whole-codec identity across tiers.

TEST_F(SimdDifferential, MtfIdenticalAtEveryLevelAndRoundTrips) {
  Rng rng(0x3174f);
  for (int iter = 0; iter < 10; ++iter) {
    const Bytes input = random_bytes(rng, 5000 + rng.below(5000),
                                     1 + static_cast<int>(rng.below(256)));
    simd::set_level(simd::Level::kScalar);
    const Bytes want = compress::mtf_encode(input);
    for (simd::Level level : supported_levels()) {
      simd::set_level(level);
      EXPECT_EQ(compress::mtf_encode(input), want)
          << "level " << simd::level_name(level);
      EXPECT_EQ(compress::mtf_decode(want), input)
          << "level " << simd::level_name(level);
    }
  }
}

TEST_F(SimdDifferential, CodecOutputByteIdenticalAcrossLevels) {
  const Bytes input =
      workload::generate_kind(workload::FileKind::Xml, 200000, 21, 0.2);
  for (const char* name : {"deflate", "lzw", "bwt"}) {
    const auto codec = compress::make_codec(name);
    simd::set_level(simd::Level::kScalar);
    const Bytes want = codec->compress(input);
    ASSERT_EQ(codec->decompress(want), input) << name;
    for (simd::Level level : supported_levels()) {
      simd::set_level(level);
      EXPECT_EQ(codec->compress(input), want)
          << name << " at " << simd::level_name(level);
      EXPECT_EQ(codec->decompress(want), input)
          << name << " at " << simd::level_name(level);
    }
  }
}

}  // namespace
}  // namespace ecomp

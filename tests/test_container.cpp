// Shared container helpers: varints, little-endian fields, headers.
#include "compress/container.h"

#include <gtest/gtest.h>

#include "util/crc32.h"

namespace ecomp::compress {
namespace {

TEST(Varint, RoundTripsBoundaryValues) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 129ull, 16383ull, 16384ull,
        0xffffffffull, 0xffffffffffffffffull}) {
    Bytes buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, EncodedLengths) {
  Bytes b;
  put_varint(b, 127);
  EXPECT_EQ(b.size(), 1u);
  b.clear();
  put_varint(b, 128);
  EXPECT_EQ(b.size(), 2u);
  b.clear();
  put_varint(b, 0xffffffffffffffffull);
  EXPECT_EQ(b.size(), 10u);
}

TEST(Varint, TruncatedThrows) {
  Bytes b;
  put_varint(b, 300);
  b.resize(1);  // continuation bit set but no next byte
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(b, pos), Error);
}

TEST(Varint, OverlongThrows) {
  // 11 continuation bytes exceed 64 bits.
  Bytes b(11, 0x80);
  b.push_back(0x01);
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(b, pos), Error);
}

TEST(LittleEndian, RoundTrips) {
  Bytes b;
  put_le(b, 0x0123456789abcdefull, 8);
  put_le(b, 0xbeef, 2);
  std::size_t pos = 0;
  EXPECT_EQ(get_le(b, pos, 8), 0x0123456789abcdefull);
  EXPECT_EQ(get_le(b, pos, 2), 0xbeefull);
  EXPECT_THROW(get_le(b, pos, 1), Error);  // exhausted
}

TEST(Header, WriteReadCycle) {
  Bytes b;
  const Bytes body = to_bytes("payload");
  write_header(b, 0xE001, body.size(), crc32(body));
  const Header h = read_header(b, 0xE001);
  EXPECT_EQ(h.original_size, body.size());
  EXPECT_EQ(h.crc, crc32(body));
  EXPECT_EQ(h.payload_offset, b.size());
  EXPECT_NO_THROW(check_crc(h, body));
}

TEST(Header, WrongMagicAndBadCrcRejected) {
  Bytes b;
  write_header(b, 0xE001, 3, 42);
  EXPECT_THROW(read_header(b, 0xE002), Error);
  const Header h = read_header(b, 0xE001);
  EXPECT_THROW(check_crc(h, to_bytes("abc")), Error);   // wrong crc
  EXPECT_THROW(check_crc(h, to_bytes("abcd")), Error);  // wrong size
}

TEST(Header, TruncatedInputThrows) {
  Bytes b = {0x01};
  EXPECT_THROW(read_header(b, 0xE001), Error);
}

}  // namespace
}  // namespace ecomp::compress

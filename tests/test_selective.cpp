// Selective container (Fig. 10) and the streaming interleaved decoder.
#include <gtest/gtest.h>

#include "compress/selective.h"
#include "core/interleave.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ecomp {
namespace {

using compress::SelectivePolicy;
using workload::FileKind;

Bytes mixed_input(std::size_t size, std::uint64_t seed) {
  return workload::generate_kind(FileKind::TarMixed, size, seed, 0.0);
}

TEST(Selective, AlwaysPolicyRoundTrips) {
  const Bytes input = mixed_input(700000, 1);
  const auto r = compress::selective_compress(input, SelectivePolicy::always());
  EXPECT_EQ(compress::selective_decompress(r.container), input);
  EXPECT_EQ(r.blocks.size(), (input.size() + 128 * 1024 - 1) / (128 * 1024));
}

TEST(Selective, NeverPolicyStoresRawAndRoundTrips) {
  const Bytes input = mixed_input(300000, 2);
  const auto r = compress::selective_compress(input, SelectivePolicy::never());
  for (const auto& b : r.blocks) {
    EXPECT_FALSE(b.compressed);
    EXPECT_EQ(b.payload_size, b.raw_size);
  }
  EXPECT_EQ(compress::selective_decompress(r.container), input);
  // Overhead of the raw container must be tiny.
  EXPECT_LT(r.container.size(), input.size() + 64);
}

TEST(Selective, EmptyInput) {
  const auto r = compress::selective_compress({}, SelectivePolicy::always());
  EXPECT_TRUE(r.blocks.empty());
  EXPECT_EQ(compress::selective_decompress(r.container), Bytes{});
}

TEST(Selective, MixedContentGetsMixedDecisions) {
  // tar-mixed alternates compressible and random members, so an
  // always-when-smaller policy must choose differently across blocks.
  const Bytes input = mixed_input(1500000, 3);
  const auto r = compress::selective_compress(input, SelectivePolicy::always());
  std::size_t compressed = 0, raw = 0;
  for (const auto& b : r.blocks) (b.compressed ? compressed : raw)++;
  EXPECT_GT(compressed, 0u);
  EXPECT_GT(raw, 0u);
  EXPECT_EQ(compress::selective_decompress(r.container), input);
}

TEST(Selective, MinBlockBytesShipsSmallBlocksRaw) {
  SelectivePolicy policy = SelectivePolicy::always();
  policy.min_block_bytes = 3900;  // the paper's threshold
  // 10 KB input in 2 KB blocks: every block is under the threshold.
  const Bytes input =
      workload::generate_kind(FileKind::Xml, 10000, 4, 0.5);
  const auto r =
      compress::selective_compress(input, policy, /*block_size=*/2048);
  for (const auto& b : r.blocks) EXPECT_FALSE(b.compressed);
  EXPECT_EQ(compress::selective_decompress(r.container), input);
}

TEST(Selective, CustomEnergyTestDrivesDecisions) {
  SelectivePolicy policy;
  policy.min_block_bytes = 0;
  // Require at least factor 3 per block.
  policy.energy_test = [](std::size_t raw, std::size_t comp) {
    return static_cast<double>(raw) / static_cast<double>(comp) >= 3.0;
  };
  const Bytes xml = workload::generate_kind(FileKind::Xml, 400000, 5, 0.6);
  const Bytes media = workload::generate_kind(FileKind::Media, 400000, 6, 0.0);
  const auto r_xml = compress::selective_compress(xml, policy);
  const auto r_media = compress::selective_compress(media, policy);
  for (const auto& b : r_xml.blocks) EXPECT_TRUE(b.compressed);
  for (const auto& b : r_media.blocks) EXPECT_FALSE(b.compressed);
}

TEST(Selective, BlockInfoMatchesCompressionOutput) {
  const Bytes input = mixed_input(500000, 7);
  const auto r = compress::selective_compress(input, SelectivePolicy::always());
  const auto infos = compress::selective_block_info(r.container);
  ASSERT_EQ(infos.size(), r.blocks.size());
  for (std::size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].raw_size, r.blocks[i].raw_size);
    EXPECT_EQ(infos[i].payload_size, r.blocks[i].payload_size);
    EXPECT_EQ(infos[i].compressed, r.blocks[i].compressed);
  }
}

TEST(Selective, TruncatedContainerThrows) {
  const Bytes input = mixed_input(300000, 8);
  auto r = compress::selective_compress(input, SelectivePolicy::always());
  r.container.resize(r.container.size() - 10);
  EXPECT_THROW(compress::selective_decompress(r.container), Error);
}

TEST(Selective, CorruptCrcDetected) {
  const Bytes input = mixed_input(200000, 9);
  auto r = compress::selective_compress(input, SelectivePolicy::never());
  // Flip a raw payload byte far from any header.
  r.container[r.container.size() / 2] ^= 1;
  EXPECT_THROW(compress::selective_decompress(r.container), Error);
}

TEST(Selective, ZeroBlockSizeRejected) {
  EXPECT_THROW(
      compress::selective_compress({}, SelectivePolicy::always(), 0), Error);
}

TEST(Selective, PolicyWithoutTestRejected) {
  SelectivePolicy p;  // energy_test unset
  EXPECT_THROW(compress::selective_compress({}, p), Error);
}

class SelectiveBlockSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SelectiveBlockSizes, RoundTrips) {
  const Bytes input = mixed_input(400000, 10);
  const auto r = compress::selective_compress(
      input, SelectivePolicy::always(), GetParam());
  EXPECT_EQ(compress::selective_decompress(r.container), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelectiveBlockSizes,
                         ::testing::Values(1024, 4096, 32 * 1024, 128 * 1024,
                                           512 * 1024, 1024 * 1024));

// ---------------------------------------------------- streaming encoder

TEST(StreamEncoder, ChunksConcatenateToTheBatchContainer) {
  const Bytes input = mixed_input(500000, 20);
  const auto batch =
      compress::selective_compress(input, SelectivePolicy::always());
  compress::SelectiveStreamEncoder enc(input, SelectivePolicy::always());
  Bytes streamed;
  std::size_t chunks = 0;
  while (!enc.done()) {
    const Bytes c = enc.next_chunk();
    streamed.insert(streamed.end(), c.begin(), c.end());
    ++chunks;
  }
  EXPECT_EQ(streamed, batch.container);
  // header + one chunk per block
  EXPECT_EQ(chunks, 1 + batch.blocks.size());
  ASSERT_EQ(enc.blocks().size(), batch.blocks.size());
  for (std::size_t i = 0; i < batch.blocks.size(); ++i)
    EXPECT_EQ(enc.blocks()[i].compressed, batch.blocks[i].compressed);
}

TEST(StreamEncoder, PipesDirectlyIntoStreamDecoder) {
  const Bytes input = mixed_input(300000, 21);
  compress::SelectiveStreamEncoder enc(
      input, SelectivePolicy::always(), 32 * 1024);
  core::SelectiveStreamDecoder dec;
  Bytes out;
  while (!enc.done()) {
    dec.feed(enc.next_chunk());
    while (auto block = dec.poll())
      out.insert(out.end(), block->begin(), block->end());
  }
  EXPECT_TRUE(dec.finished());
  dec.verify();
  EXPECT_EQ(out, input);
}

TEST(StreamEncoder, EmptyInputIsHeaderOnly) {
  compress::SelectiveStreamEncoder enc({}, SelectivePolicy::always());
  const Bytes header = enc.next_chunk();
  EXPECT_FALSE(header.empty());
  EXPECT_TRUE(enc.done());
  EXPECT_EQ(compress::selective_decompress(header), Bytes{});
}

TEST(StreamEncoder, InvalidConfigRejected) {
  EXPECT_THROW(compress::SelectiveStreamEncoder({},
                                                SelectivePolicy::always(), 0),
               Error);
  EXPECT_THROW(
      compress::SelectiveStreamEncoder({}, compress::SelectivePolicy{}),
      Error);
}

// ---------------------------------------------------- streaming decoder

TEST(StreamDecoder, DecodesBlocksAsTheyArrive) {
  const Bytes input = mixed_input(600000, 11);
  const auto r = compress::selective_compress(input, SelectivePolicy::always());

  core::SelectiveStreamDecoder dec;
  Bytes reassembled;
  std::size_t blocks_seen = 0;
  Rng rng(12);
  std::size_t off = 0;
  while (off < r.container.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng.below(9000),
                                                r.container.size() - off);
    dec.feed(ByteSpan(r.container).subspan(off, n));
    off += n;
    while (auto block = dec.poll()) {
      ++blocks_seen;
      reassembled.insert(reassembled.end(), block->begin(), block->end());
    }
  }
  EXPECT_TRUE(dec.finished());
  EXPECT_EQ(blocks_seen, r.blocks.size());
  EXPECT_EQ(reassembled, input);
  EXPECT_NO_THROW(dec.verify());
}

TEST(StreamDecoder, ByteAtATime) {
  const Bytes input = workload::generate_kind(FileKind::Xml, 50000, 13, 0.3);
  const auto r = compress::selective_compress(input, SelectivePolicy::always(),
                                              8 * 1024);
  core::SelectiveStreamDecoder dec;
  Bytes out;
  for (std::uint8_t b : r.container) {
    dec.feed(ByteSpan(&b, 1));
    while (auto block = dec.poll())
      out.insert(out.end(), block->begin(), block->end());
  }
  EXPECT_EQ(out, input);
  dec.verify();
}

TEST(StreamDecoder, VerifyBeforeFinishThrows) {
  core::SelectiveStreamDecoder dec;
  EXPECT_THROW(dec.verify(), Error);
}

TEST(StreamDecoder, BadMagicThrows) {
  core::SelectiveStreamDecoder dec;
  const Bytes junk = {0xde, 0xad, 0xbe, 0xef};
  dec.feed(junk);
  EXPECT_THROW(dec.poll(), Error);
}

TEST(InterleavedDownloader, RunsFromChunkSource) {
  const Bytes input = mixed_input(400000, 14);
  const auto r = compress::selective_compress(input, SelectivePolicy::always());
  std::size_t off = 0;
  std::size_t block_events = 0;
  core::InterleavedDownloader dl(4096);
  const Bytes out = dl.run(
      [&](std::uint8_t* dst, std::size_t max) -> std::size_t {
        const std::size_t n = std::min(max, r.container.size() - off);
        std::copy_n(r.container.begin() + static_cast<std::ptrdiff_t>(off), n,
                    dst);
        off += n;
        return n;
      },
      [&](ByteSpan) { ++block_events; });
  EXPECT_EQ(out, input);
  EXPECT_EQ(block_events, r.blocks.size());
}

TEST(InterleavedDownloader, TruncatedSourceThrows) {
  const Bytes input = mixed_input(200000, 15);
  const auto r = compress::selective_compress(input, SelectivePolicy::always());
  std::size_t off = 0;
  const std::size_t cutoff = r.container.size() / 2;
  core::InterleavedDownloader dl;
  EXPECT_THROW(
      dl.run([&](std::uint8_t* dst, std::size_t max) -> std::size_t {
        const std::size_t n = std::min(max, cutoff - off);
        std::copy_n(r.container.begin() + static_cast<std::ptrdiff_t>(off), n,
                    dst);
        off += n;
        return n;
      }),
      Error);
}

}  // namespace
}  // namespace ecomp

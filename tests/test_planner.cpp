// TransferPlanner decisions and the model-driven selective policy.
#include <gtest/gtest.h>

#include "compress/deflate.h"
#include "core/planner.h"
#include "workload/generator.h"

namespace ecomp::core {
namespace {

TransferPlanner make_planner() {
  return TransferPlanner(EnergyModel::paper_11mbps());
}

FileEstimate estimate(double size_mb, double f_deflate, double f_lzw,
                      double f_bwt) {
  FileEstimate e;
  e.size_mb = size_mb;
  e.factors = {{"deflate", f_deflate}, {"lzw", f_lzw}, {"bwt", f_bwt}};
  return e;
}

TEST(Planner, TinyFileShipsRaw) {
  // Below the 3900-byte threshold nothing beats raw.
  const auto plan = make_planner().plan(estimate(0.002, 2.0, 1.5, 2.2));
  EXPECT_EQ(plan.chosen.strategy, Strategy::Uncompressed);
  EXPECT_NEAR(plan.saving_fraction, 0.0, 1e-9);
}

TEST(Planner, IncompressibleFileShipsRaw) {
  const auto plan = make_planner().plan(estimate(4.0, 1.0, 0.82, 1.0));
  EXPECT_EQ(plan.chosen.strategy, Strategy::Uncompressed);
}

TEST(Planner, TypicalTextPrefersDeflateOverBwtDespiteFactor) {
  // Table 2-shaped: bzip2 compresses deeper but decodes far slower; the
  // paper's central finding is that gzip wins on energy.
  const auto plan = make_planner().plan(estimate(3.0, 3.8, 3.0, 6.9));
  EXPECT_EQ(plan.chosen.codec, "deflate");
  EXPECT_GT(plan.saving_fraction, 0.4);
}

TEST(Planner, HighFactorPrefersSleepOverInterleave) {
  // F > 4.6: sequential decompress with the radio sleeping wins (§4.2).
  const auto plan = make_planner().plan(estimate(3.0, 12.0, 6.0, 1.0));
  EXPECT_EQ(plan.chosen.codec, "deflate");
  EXPECT_EQ(plan.chosen.strategy, Strategy::SequentialSleep);
}

TEST(Planner, ModerateFactorPrefersInterleaveOverPlainSequential) {
  const auto planner = make_planner();
  const auto plan = planner.plan(estimate(3.0, 2.0, 1.5, 2.2));
  // Find the deflate candidates and compare directly.
  double seq = 0, inter = 0;
  for (const auto& c : plan.considered) {
    if (c.codec == "deflate" && c.strategy == Strategy::Sequential)
      seq = c.predicted_energy_j;
    if (c.codec == "deflate" && c.strategy == Strategy::Interleaved)
      inter = c.predicted_energy_j;
  }
  EXPECT_LT(inter, seq);
}

TEST(Planner, ConsidersEveryCandidate) {
  const auto plan = make_planner().plan(estimate(1.0, 3.0, 2.0, 4.0));
  // 1 raw + 3 codecs × 3 strategies.
  EXPECT_EQ(plan.considered.size(), 10u);
  // Chosen is the minimum of considered.
  for (const auto& c : plan.considered)
    EXPECT_GE(c.predicted_energy_j, plan.chosen.predicted_energy_j - 1e-12);
}

TEST(Planner, RejectsBadInputs) {
  const auto planner = make_planner();
  FileEstimate neg;
  neg.size_mb = -1.0;
  EXPECT_THROW(planner.plan(neg), Error);
  EXPECT_THROW(planner.plan(estimate(1.0, 0.0, 1.0, 1.0)), Error);
}

TEST(EstimateFactor, PrefixSampleTracksWholeFileFactor) {
  const Bytes file = workload::generate_kind(workload::FileKind::Xml,
                                             800000, /*seed=*/3, 0.3);
  const compress::DeflateCodec codec;
  const double sampled = estimate_factor(codec, file, 64 * 1024);
  const double full = compress::compression_factor(codec, file);
  EXPECT_NEAR(sampled, full, 0.35 * full);
  EXPECT_EQ(estimate_factor(codec, {}), 1.0);
}

TEST(SelectivePolicyFromModel, EncodesPaperThresholds) {
  const auto model = EnergyModel::paper_11mbps();
  const auto policy = make_selective_policy(model);
  // Size threshold lands near 3900 bytes.
  EXPECT_NEAR(static_cast<double>(policy.min_block_bytes), 3900.0, 500.0);
  // A 128 KB block at factor 1.05 fails; at factor 2 passes.
  EXPECT_FALSE(policy.energy_test(131072, 124830));
  EXPECT_TRUE(policy.energy_test(131072, 65536));
  // Expansion never passes.
  EXPECT_FALSE(policy.energy_test(1000, 1200));
  EXPECT_FALSE(policy.energy_test(1000, 0));
}

TEST(Strategy, ToStringCoversAll) {
  EXPECT_STREQ(to_string(Strategy::Uncompressed), "uncompressed");
  EXPECT_STREQ(to_string(Strategy::Sequential), "sequential");
  EXPECT_STREQ(to_string(Strategy::SequentialSleep), "sequential+sleep");
  EXPECT_STREQ(to_string(Strategy::Interleaved), "interleaved");
}

}  // namespace
}  // namespace ecomp::core

// Packet-level simulator: agreement with the coarser computations and
// packet-granularity effects.
#include <gtest/gtest.h>

#include "core/energy_model.h"
#include "sim/packet.h"
#include "sim/transfer.h"
#include "util/bytes.h"

namespace ecomp::sim {
namespace {

std::vector<BlockTransfer> uniform_blocks(double raw_mb, double factor,
                                          double block_mb = 0.128) {
  std::vector<BlockTransfer> out;
  double left = raw_mb;
  while (left > 1e-12) {
    const double b = std::min(block_mb, left);
    out.push_back({b, b / factor, true});
    left -= b;
  }
  return out;
}

TEST(PacketSim, AgreesWithBlockDiscreteSimulator) {
  const PacketLevelSimulator psim;
  const TransferSimulator bsim;
  for (double factor : {1.3, 2.0, 4.0, 10.0}) {
    const auto blocks = uniform_blocks(3.0, factor);
    PacketSimOptions popt;
    popt.interleave = true;
    TransferOptions bopt;
    bopt.interleave = true;
    const auto a = psim.download(blocks, "deflate", popt);
    const auto b = bsim.download_selective(blocks, "deflate", bopt);
    EXPECT_NEAR(a.energy_j, b.energy_j, 0.02 * b.energy_j) << factor;
    EXPECT_NEAR(a.time_s, b.time_s, 0.02 * b.time_s) << factor;
  }
}

TEST(PacketSim, DeviatesFromClosedFormByPerBlockStartupExactly) {
  // The whole-file closed form charges the decode startup (td_c) once;
  // block-wise decoding pays it per block. That accounts for the entire
  // difference on a large uniform file.
  const PacketLevelSimulator psim;
  const auto model = core::EnergyModel::paper_11mbps();
  const double s = 6.0, factor = 3.0;
  PacketSimOptions opt;
  opt.interleave = true;
  const auto blocks = uniform_blocks(s, factor);
  const auto r = psim.download(blocks, "deflate", opt);
  const double est = model.interleaved_energy_j(s, s / factor);
  const double per_block_startup =
      static_cast<double>(blocks.size() - 1) * model.params().td_c *
      model.params().pd;
  EXPECT_NEAR(r.energy_j, est + per_block_startup, 0.02 * est);
}

TEST(PacketSim, NoInterleaveLeavesGapsIdle) {
  const PacketLevelSimulator psim;
  const auto blocks = uniform_blocks(2.0, 3.0);
  PacketSimOptions seq;
  PacketSimOptions intl;
  intl.interleave = true;
  const auto a = psim.download(blocks, "deflate", seq);
  const auto b = psim.download(blocks, "deflate", intl);
  EXPECT_GT(a.time_s, b.time_s);
  EXPECT_GT(a.energy_j, b.energy_j);
  // Same total decompression work either way.
  EXPECT_NEAR(a.decompress_time_s, b.decompress_time_s, 1e-12);
}

TEST(PacketSim, GranularityEffectVisibleOnTinyFiles) {
  // One-block files cannot interleave at all at packet level either.
  const PacketLevelSimulator psim;
  PacketSimOptions intl;
  intl.interleave = true;
  const std::vector<BlockTransfer> one = {{0.05, 0.02, true}};
  const auto r = psim.download(one, "deflate", intl);
  // All decompression work lands in the tail.
  EXPECT_NEAR(r.timeline.energy_with_prefix("decomp"),
              r.decompress_time_s * 2.85, 1e-9);
}

TEST(PacketSim, PacketSizeBarelyMattersAtMtuScale) {
  const PacketLevelSimulator psim;
  const auto blocks = uniform_blocks(2.0, 2.5);
  double prev = -1.0;
  for (double pkt : {512e-6, 1480e-6, 4096e-6}) {
    PacketSimOptions opt;
    opt.interleave = true;
    opt.packet_mb = pkt;
    const double e = psim.download(blocks, "deflate", opt).energy_j;
    if (prev > 0.0) {
      EXPECT_NEAR(e, prev, 0.02 * prev);
    }
    prev = e;
  }
}

TEST(PacketSim, RejectsBadPacketSize) {
  const PacketLevelSimulator psim;
  PacketSimOptions opt;
  opt.packet_mb = 0.0;
  EXPECT_THROW(psim.download({}, "deflate", opt), Error);
}

TEST(PacketSim, EmptyContainer) {
  const PacketLevelSimulator psim;
  const auto r = psim.download({}, "deflate", PacketSimOptions{});
  EXPECT_NEAR(r.energy_j, 0.012, 1e-9);  // just the start-up charge
  EXPECT_EQ(r.time_s, 0.0);
}

TEST(PacketSim, PowerSavingSlowsAndSaves) {
  const PacketLevelSimulator psim;
  const auto blocks = uniform_blocks(2.0, 1.0);
  PacketSimOptions off;
  PacketSimOptions on;
  on.power_saving = true;
  const auto a = psim.download(blocks, "deflate", off);
  const auto b = psim.download(blocks, "deflate", on);
  EXPECT_GT(b.time_s, a.time_s);
  EXPECT_LT(b.energy_j, a.energy_j);
}

}  // namespace
}  // namespace ecomp::sim

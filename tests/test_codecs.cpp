// Roundtrip, framing, and behavioural tests across all three universal
// codecs, plus codec-specific edge cases.
#include <gtest/gtest.h>

#include "compress/bwt_codec.h"
#include "compress/codec.h"
#include "compress/deflate.h"
#include "compress/lzw.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ecomp::compress {
namespace {

using workload::FileKind;

Bytes sample(FileKind kind, std::size_t size, std::uint64_t seed) {
  return workload::generate_kind(kind, size, seed, 0.0);
}

// ------------------------------------------------- cross-codec properties

struct CodecCase {
  const char* name;
  FileKind kind;
  std::size_t size;
};

class AllCodecsRoundTrip
    : public ::testing::TestWithParam<std::tuple<const char*, CodecCase>> {};

TEST_P(AllCodecsRoundTrip, Lossless) {
  const auto& [codec_name, c] = GetParam();
  const auto codec = make_codec(codec_name);
  const Bytes input = sample(c.kind, c.size, 42);
  const Bytes packed = codec->compress(input);
  const Bytes output = codec->decompress(packed);
  EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllCodecsRoundTrip,
    ::testing::Combine(
        ::testing::Values("deflate", "lzw", "bwt"),
        ::testing::Values(
            CodecCase{"xml", FileKind::Xml, 200000},
            CodecCase{"log", FileKind::Log, 150000},
            CodecCase{"source", FileKind::Source, 120000},
            CodecCase{"binary", FileKind::Binary, 100000},
            CodecCase{"wav", FileKind::Wav, 80000},
            CodecCase{"media", FileKind::Media, 90000},
            CodecCase{"random", FileKind::Random, 60000},
            CodecCase{"tiny", FileKind::Mail, 700},
            CodecCase{"mixed", FileKind::TarMixed, 400000})),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param).name;
    });

class CodecEdgeCases : public ::testing::TestWithParam<const char*> {};

TEST_P(CodecEdgeCases, EmptyInput) {
  const auto codec = make_codec(GetParam());
  const Bytes packed = codec->compress({});
  EXPECT_EQ(codec->decompress(packed), Bytes{});
}

TEST_P(CodecEdgeCases, SingleByte) {
  const auto codec = make_codec(GetParam());
  const Bytes input = {0x42};
  EXPECT_EQ(codec->decompress(codec->compress(input)), input);
}

TEST_P(CodecEdgeCases, AllSameByte) {
  const auto codec = make_codec(GetParam());
  const Bytes input(300000, 0xAA);
  const Bytes packed = codec->compress(input);
  EXPECT_EQ(codec->decompress(packed), input);
  // Degenerate input must compress extremely well.
  EXPECT_LT(packed.size(), input.size() / 100);
}

TEST_P(CodecEdgeCases, AllByteValues) {
  const auto codec = make_codec(GetParam());
  Bytes input;
  for (int rep = 0; rep < 40; ++rep)
    for (int b = 0; b < 256; ++b)
      input.push_back(static_cast<std::uint8_t>(b));
  EXPECT_EQ(codec->decompress(codec->compress(input)), input);
}

TEST_P(CodecEdgeCases, ShortRepeats) {
  const auto codec = make_codec(GetParam());
  for (const char* pat : {"ab", "abc", "aab", "xyzzy"}) {
    Bytes input;
    while (input.size() < 5000) {
      for (const char* p = pat; *p; ++p)
        input.push_back(static_cast<std::uint8_t>(*p));
    }
    EXPECT_EQ(codec->decompress(codec->compress(input)), input) << pat;
  }
}

TEST_P(CodecEdgeCases, TruncatedStreamThrows) {
  const auto codec = make_codec(GetParam());
  const Bytes input = sample(FileKind::Xml, 50000, 9);
  Bytes packed = codec->compress(input);
  packed.resize(packed.size() / 2);
  EXPECT_THROW(codec->decompress(packed), Error);
}

TEST_P(CodecEdgeCases, CorruptPayloadDetected) {
  const auto codec = make_codec(GetParam());
  const Bytes input = sample(FileKind::Source, 60000, 10);
  Bytes packed = codec->compress(input);
  // Flip a bit in the middle of the payload; either the decoder throws
  // (invalid stream) or the CRC check rejects the result.
  packed[packed.size() / 2] ^= 0x10;
  bool detected = false;
  try {
    const Bytes out = codec->decompress(packed);
    detected = out != input;  // CRC must have thrown before this point
  } catch (const Error&) {
    detected = true;
  }
  EXPECT_TRUE(detected);
}

TEST_P(CodecEdgeCases, WrongMagicRejected) {
  const auto codec = make_codec(GetParam());
  Bytes junk = {0x00, 0x00, 0x05, 1, 2, 3, 4, 5};
  EXPECT_THROW(codec->decompress(junk), Error);
}

TEST_P(CodecEdgeCases, DeterministicOutput) {
  const auto codec = make_codec(GetParam());
  const Bytes input = sample(FileKind::Log, 80000, 17);
  EXPECT_EQ(codec->compress(input), codec->compress(input));
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecEdgeCases,
                         ::testing::Values("deflate", "lzw", "bwt"));

// ---------------------------------------------------- paper-shaped facts

TEST(CodecComparison, FactorOrderingOnTextMatchesPaper) {
  // Table 2: on text-like data bzip2 compresses deepest, compress least.
  const Bytes text = sample(FileKind::Xml, 400000, 3);
  const double f_deflate = compression_factor(*make_deflate(), text);
  const double f_lzw = compression_factor(*make_lzw(), text);
  const double f_bwt = compression_factor(*make_bwt(), text);
  EXPECT_GT(f_bwt, f_deflate);
  EXPECT_GT(f_deflate, f_lzw);
  EXPECT_GT(f_lzw, 1.5);
}

TEST(CodecComparison, RandomDataDoesNotCompress) {
  const Bytes noise = sample(FileKind::Random, 300000, 4);
  EXPECT_NEAR(compression_factor(*make_deflate(), noise), 1.0, 0.01);
  EXPECT_NEAR(compression_factor(*make_bwt(), noise), 1.0, 0.02);
  // Table 2 shows compress *expanding* random data (factor 0.81).
  EXPECT_LT(compression_factor(*make_lzw(), noise), 0.95);
}

TEST(Deflate, HigherLevelNeverMuchWorse) {
  const Bytes input = sample(FileKind::Source, 300000, 5);
  const double f1 = compression_factor(*make_deflate(1), input);
  const double f9 = compression_factor(*make_deflate(9), input);
  EXPECT_GE(f9, f1 * 0.98);
}

TEST(Deflate, StoredBlocksKickInForIncompressibleData) {
  const Bytes noise = sample(FileKind::Random, 100000, 6);
  const Bytes packed = DeflateCodec(9).compress(noise);
  // Overhead must be tiny thanks to stored blocks (< 0.2%).
  EXPECT_LT(packed.size(), noise.size() + noise.size() / 500 + 64);
}

TEST(Lzw, MaxBitsValidation) {
  EXPECT_THROW(LzwCodec(8), Error);
  EXPECT_THROW(LzwCodec(17), Error);
  EXPECT_NO_THROW(LzwCodec(9));
  EXPECT_NO_THROW(LzwCodec(16));
}

TEST(Lzw, SmallDictionaryStillRoundTrips) {
  // 9-bit cap forces constant dictionary churn.
  const LzwCodec small(9);
  const Bytes input = sample(FileKind::Xml, 200000, 7);
  EXPECT_EQ(small.decompress(small.compress(input)), input);
}

TEST(Lzw, DictionaryResetPathExercised) {
  // Structure change mid-file degrades the factor and triggers CLEAR:
  // compressible prefix, then noise, then compressible tail.
  Bytes input = sample(FileKind::Xml, 400000, 8);
  const Bytes noise = sample(FileKind::Random, 400000, 9);
  input.insert(input.end(), noise.begin(), noise.end());
  const Bytes tail = sample(FileKind::Xml, 400000, 10);
  input.insert(input.end(), tail.begin(), tail.end());
  const LzwCodec codec(12);  // small dictionary fills quickly
  EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(Lzw, KwkwkPattern) {
  // 'aaaa...' exercises the code==avail (KwKwK) decoder path densely.
  Bytes input;
  for (int i = 0; i < 1000; ++i)
    input.insert(input.end(), static_cast<std::size_t>(i % 7 + 1), 'a');
  const LzwCodec codec;
  EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(BwtCodec, BlockSizeFollowsLevel) {
  EXPECT_EQ(BwtCodec(1).block_size(), 100'000u);
  EXPECT_EQ(BwtCodec(9).block_size(), 900'000u);
}

TEST(BwtCodec, MultiBlockFiles) {
  const BwtCodec codec(1);  // 100 KB blocks
  const Bytes input = sample(FileKind::Log, 350000, 11);
  EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(BwtCodec, MultiTableRoundTripsEveryCap) {
  const Bytes input = sample(FileKind::TarMixed, 300000, 12);
  for (int cap : {1, 2, 3, 6}) {
    const BwtCodec codec(9, cap);
    EXPECT_EQ(codec.decompress(codec.compress(input)), input) << cap;
  }
}

TEST(BwtCodec, MultiTableHelpsHeterogeneousData) {
  // Mixed content has regions with different symbol statistics — the
  // whole point of bzip2's selector mechanism.
  const Bytes input = sample(FileKind::TarMixed, 600000, 13);
  const Bytes single = BwtCodec(9, 1).compress(input);
  const Bytes multi = BwtCodec(9, 6).compress(input);
  EXPECT_LT(multi.size(), single.size());
}

TEST(BwtCodec, MultiTableDecodableBySingleTableDecoder) {
  // The decoder reads the table count from the stream: outputs of any
  // cap decode with any codec instance.
  const Bytes input = sample(FileKind::Xml, 200000, 14);
  const Bytes multi = BwtCodec(9, 6).compress(input);
  EXPECT_EQ(BwtCodec(9, 1).decompress(multi), input);
}

class CodecSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecSeedSweep, RandomStructuredRoundTrips) {
  // Property sweep: random mixtures of runs, literals and copies.
  Rng rng(GetParam());
  Bytes input;
  const std::size_t target = 30000 + rng.below(80000);
  while (input.size() < target) {
    switch (rng.below(3)) {
      case 0:
        input.insert(input.end(), 1 + rng.below(200), rng.byte());
        break;
      case 1:
        for (int i = 0; i < 50; ++i) input.push_back(rng.byte());
        break;
      default:
        if (!input.empty()) {
          const std::size_t d = 1 + rng.below(std::min<std::size_t>(
                                        input.size(), 30000));
          const std::size_t l = 1 + rng.below(300);
          const std::size_t from = input.size() - d;
          for (std::size_t i = 0; i < l; ++i)
            input.push_back(input[from + i]);
        }
        break;
    }
  }
  for (const auto& name : codec_names()) {
    const auto codec = make_codec(name);
    EXPECT_EQ(codec->decompress(codec->compress(input)), input) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecSeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

TEST(CodecRegistry, NamesAndAliases) {
  EXPECT_EQ(make_codec("gzip")->name(), "deflate");
  EXPECT_EQ(make_codec("compress")->name(), "lzw");
  EXPECT_EQ(make_codec("bzip2")->name(), "bwt");
  EXPECT_THROW(make_codec("zstd"), Error);
  EXPECT_EQ(codec_names().size(), 3u);
}

TEST(CodecRegistry, OsFormatCodecsRoundTrip) {
  // The interoperable on-disk formats are also reachable via the
  // registry (for the CLI and the planner's sampling).
  const Bytes input = sample(FileKind::Source, 60000, 30);
  for (const char* name : {"gz", "Z", "bz2"}) {
    const auto codec = make_codec(name);
    EXPECT_EQ(codec->name(), name);
    EXPECT_EQ(codec->decompress(codec->compress(input)), input) << name;
  }
}

}  // namespace
}  // namespace ecomp::compress

// RFC 1952 gzip format: self round-trip, header-field handling, and —
// when /usr/bin/gzip exists — real interoperability in both directions.
// Interop is the strongest evidence that the from-scratch DEFLATE
// implementation is bit-correct against the paper's actual tool family.
#include "compress/gzip_format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "cli/cli.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ecomp::compress {
namespace {

namespace fs = std::filesystem;

Bytes sample(std::uint64_t seed, std::size_t size = 150000) {
  return workload::generate_kind(workload::FileKind::Source, size, seed, 0.2);
}

TEST(GzipFormat, SelfRoundTrip) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Bytes input = sample(seed);
    const Bytes gz = gzip_compress(input);
    EXPECT_TRUE(looks_like_gzip(gz));
    EXPECT_EQ(gzip_decompress(gz), input);
  }
}

TEST(GzipFormat, EmptyAndTinyInputs) {
  EXPECT_EQ(gzip_decompress(gzip_compress({})), Bytes{});
  const Bytes one = {0x42};
  EXPECT_EQ(gzip_decompress(gzip_compress(one)), one);
}

TEST(GzipFormat, RejectsBadMagicAndTruncation) {
  EXPECT_THROW(gzip_decompress(Bytes{0x1f, 0x8c, 0, 0}), Error);
  Bytes gz = gzip_compress(sample(4));
  gz.resize(gz.size() - 5);
  EXPECT_THROW(gzip_decompress(gz), Error);
  gz.resize(4);
  EXPECT_THROW(gzip_decompress(gz), Error);
}

TEST(GzipFormat, DetectsCorruptTrailer) {
  Bytes gz = gzip_compress(sample(5));
  gz[gz.size() - 2] ^= 0xff;  // ISIZE
  EXPECT_THROW(gzip_decompress(gz), Error);
  Bytes gz2 = gzip_compress(sample(5));
  gz2[gz2.size() - 6] ^= 0xff;  // CRC
  EXPECT_THROW(gzip_decompress(gz2), Error);
}

TEST(GzipFormat, SkipsOptionalHeaderFields) {
  // Hand-build a header with FEXTRA + FNAME + FCOMMENT around a valid
  // deflate stream from our encoder.
  const Bytes input = sample(6, 5000);
  const Bytes plain = gzip_compress(input);
  Bytes fancy = {0x1f, 0x8b, 8, 0x1c /*FEXTRA|FNAME|FCOMMENT*/,
                 0,    0,    0, 0,    0, 255};
  // FEXTRA: 4 bytes.
  fancy.push_back(4);
  fancy.push_back(0);
  for (int i = 0; i < 4; ++i) fancy.push_back(0xaa);
  // FNAME, FCOMMENT: NUL-terminated strings.
  for (char c : std::string("file.txt")) fancy.push_back(c);
  fancy.push_back(0);
  for (char c : std::string("a comment")) fancy.push_back(c);
  fancy.push_back(0);
  // Splice in the deflate payload + trailer from the plain member.
  fancy.insert(fancy.end(), plain.begin() + 10, plain.end());
  EXPECT_EQ(gzip_decompress(fancy), input);
}

TEST(GzipFormat, SkipsFhcrcField) {
  const Bytes input = sample(9, 3000);
  const Bytes plain = gzip_compress(input);
  Bytes with_hcrc = {0x1f, 0x8b, 8, 0x02 /*FHCRC*/, 0, 0, 0, 0, 0, 255};
  with_hcrc.push_back(0x12);  // CRC16 of the header (not verified)
  with_hcrc.push_back(0x34);
  with_hcrc.insert(with_hcrc.end(), plain.begin() + 10, plain.end());
  EXPECT_EQ(gzip_decompress(with_hcrc), input);
}

TEST(GzipFormat, ReservedFlagBitsRejected) {
  Bytes gz = gzip_compress(sample(10, 100));
  gz[3] |= 0x80;  // reserved bit
  EXPECT_THROW(gzip_decompress(gz), Error);
}

TEST(GzipFormat, NonDeflateMethodRejected) {
  Bytes gz = gzip_compress(sample(11, 100));
  gz[2] = 7;  // not CM=8
  EXPECT_THROW(gzip_decompress(gz), Error);
}

// ---- real-tool interop (skipped when the tools are not installed) ----

class GzipToolInterop : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::system("command -v gzip >/dev/null 2>&1") != 0)
      GTEST_SKIP() << "system gzip not available";
    dir_ = fs::temp_directory_path() /
           ("ecomp_gzip_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(GzipToolInterop, SystemGunzipReadsOurOutput) {
  const Bytes input = sample(7);
  const fs::path gz = dir_ / "ours.gz";
  const fs::path out = dir_ / "ours";
  cli::write_file(gz.string(), gzip_compress(input));
  const std::string cmd = "gzip -dc " + gz.string() + " > " + out.string() +
                          " 2>/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << "system gunzip rejected us";
  EXPECT_EQ(cli::read_file(out.string()), input);
}

TEST_F(GzipToolInterop, WeReadSystemGzipOutput) {
  const Bytes input = sample(8);
  const fs::path raw = dir_ / "theirs";
  cli::write_file(raw.string(), input);
  for (const char* level : {"-1", "-6", "-9"}) {
    const std::string cmd = std::string("gzip -kf ") + level + " " +
                            raw.string() + " 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    const Bytes gz = cli::read_file((dir_ / "theirs.gz").string());
    EXPECT_EQ(gzip_decompress(gz), input) << level;
  }
}

TEST_F(GzipToolInterop, RandomDataBothDirections) {
  Rng rng(99);
  Bytes input(80000);
  for (auto& b : input) b = rng.byte();  // stored-block path
  const fs::path gz = dir_ / "rand.gz";
  const fs::path out = dir_ / "rand.out";
  cli::write_file(gz.string(), gzip_compress(input));
  ASSERT_EQ(std::system(("gzip -dc " + gz.string() + " > " + out.string() +
                         " 2>/dev/null")
                            .c_str()),
            0);
  EXPECT_EQ(cli::read_file(out.string()), input);
}

}  // namespace
}  // namespace ecomp::compress

// The worker-pool proxy under real concurrency: admission control
// (BUSY shedding with a retry-after the client honors), the graceful
// degradation ladder (cheaper codec level, then no compression, before
// refusing work), graceful drain on stop(), and the headline survival
// test — 100 concurrent clients with faults firing on a subset, zero
// server crashes, every client's bytes verified. `ctest -L load` runs
// this binary; scripts/check.sh also runs it under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "core/planner.h"
#include "net/fault.h"
#include "net/proxy.h"
#include "net/socket.h"
#include "workload/generator.h"

namespace ecomp::net {
namespace {

using workload::FileKind;

TransferPolicy fast_policy(int max_retries) {
  TransferPolicy tp;
  tp.max_retries = max_retries;
  tp.timeout_ms = 5000;
  tp.backoff_base_ms = 1;
  tp.backoff_max_ms = 50;
  return tp;
}

Bytes test_data(std::size_t n = 200000) {
  return workload::generate_kind(FileKind::Xml, n, 7, 0.4);
}

std::unique_ptr<ProxyServer> make_server(const Bytes& data,
                                         ProxyOptions opt) {
  FileStore store;
  store.put("f.xml", data);
  return std::make_unique<ProxyServer>(
      std::move(store),
      core::make_selective_policy(core::EnergyModel::paper_11mbps()),
      opt);
}

/// Open a connection and send nothing: it is admitted at accept time
/// and its worker blocks waiting for the request frame, so it occupies
/// admission capacity until the socket closes (the protocol is one
/// request per connection, so a completed request would release the
/// slot immediately).
Socket hold_slot(std::uint16_t port) {
  return connect_local(port);
}

/// Wait (bounded) until the proxy's admission depth is exactly `n`:
/// the accept thread admits asynchronously after connect returns, and
/// a finished download's server side lingers a moment after the client
/// has its bytes.
void await_depth(ProxyServer& server, std::uint64_t n) {
  for (int i = 0; i < 200; ++i) {
    if (server.stats().admission.depth == n) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "admission depth never settled at " << n;
}

// --- the headline: 100 clients, faults on a subset, zero crashes ------

TEST(ProxyLoad, HundredClientsWithFaultsZeroCrashes) {
  const Bytes data = test_data();
  ProxyOptions opt;
  opt.workers = 8;
  opt.max_conns = 64;
  opt.busy_retry_ms = 5;
  // Warm the level-9 containers at startup so the stampede measures
  // admission behavior, not one cold compression.
  opt.precompress = true;
  auto server = make_server(data, opt);

  // Fault five of the first hundred connections ("fault connection 10
  // of 100"): whoever draws those indices recovers through retries.
  FaultSpec spec;
  spec.kind = FaultKind::Truncate;
  spec.at_byte = 5000;
  server->set_fault_injector(std::make_shared<FaultInjector>(
      spec, std::set<std::uint64_t>{10, 30, 50, 70, 90}));

  constexpr int kClients = 100;
  std::vector<DownloadOutcome> outcomes(kClients);
  std::vector<std::string> errors(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back([&, i] {
      const char* mode = (i % 3 == 0) ? "full" : "selective";
      try {
        outcomes[i] =
            download_resilient(server->port(), "f.xml", mode,
                               fast_policy(40));
      } catch (const std::exception& e) {
        errors[i] = e.what();
        failures.fetch_add(1);
      }
    });
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  for (int i = 0; i < kClients; ++i)
    EXPECT_TRUE(errors[i].empty()) << "client " << i << ": " << errors[i];
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(outcomes[i].data, data) << "client " << i;
    EXPECT_TRUE(outcomes[i].complete) << "client " << i;
  }

  // The server survived the stampede and still answers; the counters
  // are coherent (every admitted connection finished).
  const obs::StatsSnapshot s = server->stats();
  EXPECT_TRUE(s.admission.present);
  // Clients are gone; at most a few server workers may still be
  // noticing EOFs, but nothing exceeds capacity.
  EXPECT_LE(s.admission.depth, opt.max_conns);
  EXPECT_GE(s.connections_total, static_cast<std::uint64_t>(kClients));
  server->stop();
}

// --- admission: over capacity means BUSY, not a hang ------------------

TEST(ProxyLoad, SaturatedProxyRefusesWithBusy) {
  const Bytes data = test_data(20000);
  ProxyOptions opt;
  opt.workers = 1;
  opt.max_conns = 1;
  opt.busy_retry_ms = 7;  // every BUSY wait is at least this long
  auto server = make_server(data, opt);

  Socket held = hold_slot(server->port());
  await_depth(*server, 1);

  // Plain (non-resilient) client: the refusal surfaces as a typed
  // error carrying the BUSY status, immediately — no hang.
  try {
    (void)download(server->port(), "f.xml", "raw");
    FAIL() << "expected BUSY refusal";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("BUSY 7"), std::string::npos)
        << e.what();
  }

  // Resilient client: counts the BUSY, honors the retry-after, and
  // succeeds once the held connection releases capacity.
  std::thread releaser([&held] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    held.close();
  });
  const auto outcome =
      download_resilient(server->port(), "f.xml", "raw", fast_policy(40));
  releaser.join();
  EXPECT_EQ(outcome.data, data);
  EXPECT_GE(outcome.busy, 1);

  const obs::StatsSnapshot s = server->stats();
  EXPECT_TRUE(s.admission.present);
  EXPECT_GE(s.admission.busy_total, 2u);
  server->stop();
}

// --- the degradation ladder -------------------------------------------

TEST(ProxyLoad, LoadWatermarksDegradeBeforeShedding) {
  const Bytes data = test_data();
  ProxyOptions opt;
  opt.workers = 4;
  opt.max_conns = 4;
  opt.degrade_level_watermark = 0.5;   // load >= 2/4 admitted
  opt.degrade_raw_watermark = 0.75;    // load >= 3/4 admitted
  auto server = make_server(data, opt);

  // Baseline (inflight 0 -> load 1/4): served at full level.
  const Bytes clean = download(server->port(), "f.xml", "selective");
  EXPECT_EQ(clean, data);
  {
    const obs::StatsSnapshot s = server->stats();
    EXPECT_EQ(s.admission.degraded_level_total, 0u);
    EXPECT_EQ(s.admission.degraded_raw_total, 0u);
  }

  // One connection held (inflight 1 -> load 2/4): level rung. The
  // await lets the baseline's server side finish so the next admission
  // decision sees exactly the held connection.
  await_depth(*server, 0);
  Socket h1 = hold_slot(server->port());
  await_depth(*server, 1);
  const Bytes level = download(server->port(), "f.xml", "selective");
  EXPECT_EQ(level, data);  // decoded bytes identical, wire cheaper

  // Two held (inflight 2 -> load 3/4): raw rung, compression skipped.
  await_depth(*server, 1);
  Socket h2 = hold_slot(server->port());
  await_depth(*server, 2);
  const Bytes raw = download(server->port(), "f.xml", "selective");
  EXPECT_EQ(raw, data);
  // full mode has no stored rung: at the raw watermark it is served at
  // level 1 and counted on the level rung.
  await_depth(*server, 2);
  const Bytes rawfull = download(server->port(), "f.xml", "full");
  EXPECT_EQ(rawfull, data);

  h1.close();
  h2.close();
  const obs::StatsSnapshot s = server->stats();
  EXPECT_GE(s.admission.degraded_level_total, 2u);
  EXPECT_GE(s.admission.degraded_raw_total, 1u);
  server->stop();
}

// --- graceful drain ----------------------------------------------------

TEST(ProxyLoad, StopDrainsInFlightDownloads) {
  const Bytes data = test_data();
  ProxyOptions opt;
  opt.workers = 2;
  opt.drain_deadline_ms = 5000;
  auto server = make_server(data, opt);

  // Stall the victim connection mid-payload so stop() overlaps it.
  FaultSpec spec;
  spec.kind = FaultKind::Delay;
  spec.at_byte = 5000;
  spec.delay_ms = 300;
  server->set_fault_injector(std::make_shared<FaultInjector>(spec, 1));

  DownloadOutcome outcome;
  std::thread client([&] {
    outcome = download_resilient(server->port(), "f.xml", "full",
                                 fast_policy(4));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->stop();  // must wait for the stalled transfer, not break it
  client.join();
  EXPECT_EQ(outcome.data, data);
  EXPECT_EQ(outcome.attempts, 1);
}

TEST(ProxyLoad, DrainDeadlineBreaksIdleConnections) {
  const Bytes data = test_data(20000);
  ProxyOptions opt;
  opt.workers = 1;
  opt.drain_deadline_ms = 100;
  auto server = make_server(data, opt);

  // An idle-but-admitted connection would hold the drain forever; the
  // deadline breaks its socket instead.
  Socket held = hold_slot(server->port());
  await_depth(*server, 1);
  const auto t0 = std::chrono::steady_clock::now();
  server->stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

}  // namespace
}  // namespace ecomp::net

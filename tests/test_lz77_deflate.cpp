// LZ77 matcher internals and DEFLATE block-format behaviour.
#include <gtest/gtest.h>

#include "compress/deflate.h"
#include "compress/lz77.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ecomp::compress {
namespace {

TEST(Lz77, LiteralOnlyForUniqueBytes) {
  Bytes input;
  for (int i = 0; i < 200; ++i) input.push_back(static_cast<std::uint8_t>(i));
  const auto tokens = lz77_tokenize(input, Lz77Params::for_level(9));
  for (const auto& t : tokens) EXPECT_EQ(t.length, 0);
  EXPECT_EQ(lz77_reconstruct(tokens), input);
}

TEST(Lz77, FindsSimpleRepeat) {
  const Bytes input = to_bytes("abcdefabcdef");
  const auto tokens = lz77_tokenize(input, Lz77Params::for_level(9));
  // 6 literals + one (6, 6) match.
  bool has_match = false;
  for (const auto& t : tokens)
    if (t.length == 6 && t.distance == 6) has_match = true;
  EXPECT_TRUE(has_match);
  EXPECT_EQ(lz77_reconstruct(tokens), input);
}

TEST(Lz77, OverlappingMatchForRuns) {
  // "aaaa...": after one literal, a distance-1 match covers the rest.
  const Bytes input(500, 'a');
  const auto tokens = lz77_tokenize(input, Lz77Params::for_level(9));
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].length, 0);
  EXPECT_EQ(tokens[1].distance, 1);
  EXPECT_EQ(lz77_reconstruct(tokens), input);
}

TEST(Lz77, MatchLengthCapped) {
  const Bytes input(10000, 'x');
  const auto tokens = lz77_tokenize(input, Lz77Params::for_level(9));
  for (const auto& t : tokens) EXPECT_LE(t.length, kLzMaxMatch);
  EXPECT_EQ(lz77_reconstruct(tokens), input);
}

TEST(Lz77, DistanceNeverExceedsWindow) {
  // Repetition separated by more than the 32 KB window must NOT match.
  Bytes input = workload::generate_kind(workload::FileKind::Random, 40000, 1,
                                        0.0);
  Bytes far = input;
  Bytes middle =
      workload::generate_kind(workload::FileKind::Random, 50000, 2, 0.0);
  input.insert(input.end(), middle.begin(), middle.end());
  input.insert(input.end(), far.begin(), far.end());
  const auto tokens = lz77_tokenize(input, Lz77Params::for_level(9));
  for (const auto& t : tokens) {
    if (t.length > 0) {
      EXPECT_LE(t.distance, kLzWindowSize);
    }
  }
  EXPECT_EQ(lz77_reconstruct(tokens), input);
}

TEST(Lz77, LazyMatchingImprovesOverGreedy) {
  // Text where greedy takes a short match that blocks a longer one.
  const Bytes input = workload::generate_kind(workload::FileKind::Source,
                                              200000, 3, 0.2);
  const auto greedy = lz77_tokenize(input, Lz77Params::for_level(3));
  const auto lazy = lz77_tokenize(input, Lz77Params::for_level(9));
  EXPECT_EQ(lz77_reconstruct(greedy), input);
  EXPECT_EQ(lz77_reconstruct(lazy), input);
  EXPECT_LE(lazy.size(), greedy.size());
}

TEST(Lz77, ReconstructRejectsBadDistance) {
  std::vector<Lz77Token> tokens = {{0, 0, 'a'}, {5, 9, 0}};
  EXPECT_THROW(lz77_reconstruct(tokens), Error);
}

class Lz77WindowSweep : public ::testing::TestWithParam<int> {};

TEST_P(Lz77WindowSweep, DistancesRespectConfiguredWindow) {
  Lz77Params params = Lz77Params::for_level(9);
  params.window_size = GetParam();
  const Bytes input =
      workload::generate_kind(workload::FileKind::TarMixed, 200000, 20, 0.0);
  const auto tokens = lz77_tokenize(input, params);
  for (const auto& t : tokens) {
    if (t.length > 0) {
      EXPECT_LE(t.distance, params.window_size);
    }
  }
  EXPECT_EQ(lz77_reconstruct(tokens), input);
}

INSTANTIATE_TEST_SUITE_P(Windows, Lz77WindowSweep,
                         ::testing::Values(512, 1024, 4096, 16384, 32768));

TEST(Lz77Window, SmallerWindowNeverImprovesFactor) {
  const Bytes input =
      workload::generate_kind(workload::FileKind::Xml, 300000, 21, 0.3);
  double prev = 0.0;
  for (int window : {1024, 8192, 32768}) {
    Lz77Params params = Lz77Params::for_level(9);
    params.window_size = window;
    BitWriterLsb bw;
    deflate_raw(input, params, bw);
    const double factor = static_cast<double>(input.size()) /
                          static_cast<double>(bw.take().size());
    EXPECT_GE(factor, prev * 0.999);
    prev = factor;
  }
}

class Lz77LevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(Lz77LevelSweep, RoundTripsEveryLevel) {
  const Bytes input =
      workload::generate_kind(workload::FileKind::TarMixed, 150000, 4, 0.0);
  const auto tokens = lz77_tokenize(input, Lz77Params::for_level(GetParam()));
  EXPECT_EQ(lz77_reconstruct(tokens), input);
}

INSTANTIATE_TEST_SUITE_P(Levels, Lz77LevelSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9));

// -------------------------------------------------------------- DEFLATE

TEST(DeflateFormat, RawStreamRoundTrip) {
  const Bytes input =
      workload::generate_kind(workload::FileKind::Html, 90000, 5, 0.0);
  BitWriterLsb w;
  deflate_raw(input, Lz77Params::for_level(9), w);
  const Bytes payload = w.take();
  BitReaderLsb r(payload);
  EXPECT_EQ(inflate_raw(r, input.size()), input);
}

TEST(DeflateFormat, EmptyInputProducesValidStream) {
  BitWriterLsb w;
  deflate_raw({}, Lz77Params::for_level(9), w);
  const Bytes payload = w.take();
  BitReaderLsb r(payload);
  EXPECT_EQ(inflate_raw(r), Bytes{});
}

TEST(DeflateFormat, MultiBlockFilesRoundTrip) {
  // Large enough to force several blocks (> 48K tokens each).
  const Bytes input =
      workload::generate_kind(workload::FileKind::Random, 400000, 6, 0.0);
  const DeflateCodec codec(1);  // level 1: near-literal token stream
  EXPECT_EQ(codec.decompress(codec.compress(input)), input);
}

TEST(DeflateFormat, ContainerCarriesSizeAndCrc) {
  const Bytes input = to_bytes("hello deflate container");
  const DeflateCodec codec;
  Bytes packed = codec.compress(input);
  // Corrupt the stored CRC (bytes 3..6 after magic+varint for small
  // sizes: magic(2) + varint(1) + crc(4)); flip inside that window.
  packed[4] ^= 0xff;
  EXPECT_THROW(codec.decompress(packed), Error);
}

TEST(DeflateFormat, FixedAndDynamicBlocksBothDecode) {
  // Tiny inputs favour fixed-Huffman blocks; bigger skewed ones dynamic.
  const DeflateCodec codec(9);
  const Bytes tiny = to_bytes("tiny!");
  EXPECT_EQ(codec.decompress(codec.compress(tiny)), tiny);
  const Bytes big =
      workload::generate_kind(workload::FileKind::Log, 120000, 7, 0.0);
  EXPECT_EQ(codec.decompress(codec.compress(big)), big);
}

TEST(DeflateFormat, ReservedBlockTypeRejected) {
  // Hand-craft a stream with BTYPE=11.
  BitWriterLsb w;
  w.put(1, 1);  // BFINAL
  w.put(3, 2);  // reserved
  const Bytes payload = w.take();
  BitReaderLsb r(payload);
  EXPECT_THROW(inflate_raw(r), Error);
}

TEST(DeflateFormat, StoredBlockHeaderValidated) {
  BitWriterLsb w;
  w.put(1, 1);
  w.put(0, 2);  // stored
  w.align_to_byte();
  w.put(5, 16);       // LEN
  w.put(0x1234, 16);  // NLEN that doesn't match ~LEN
  const Bytes payload = w.take();
  BitReaderLsb r(payload);
  EXPECT_THROW(inflate_raw(r), Error);
}

TEST(DeflateCodecLevels, FactorImprovesWithLevelOnText) {
  const Bytes input =
      workload::generate_kind(workload::FileKind::Xml, 250000, 8, 0.2);
  double prev = 0.0;
  for (int level : {1, 5, 9}) {
    const double f = compression_factor(DeflateCodec(level), input);
    EXPECT_GE(f, prev * 0.999) << "level " << level;
    prev = f;
  }
}

}  // namespace
}  // namespace ecomp::compress

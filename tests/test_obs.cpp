// The observability layer: metrics registry semantics, concurrent
// recording, trace JSON well-formedness, and the disabled-build no-ops.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecomp::obs {
namespace {

// ------------------------------------------------------------- mini JSON
// A strict structural validator (not a full parser): enough to prove the
// exporters emit grammatically valid JSON, including escaping.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool is_valid_json(const std::string& s) { return JsonChecker(s).valid(); }

TEST(ObsJson, CheckerSanity) {
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,-3e4],"b":"x\n\"y"})"));
  EXPECT_FALSE(is_valid_json(R"({"a":1)"));
  EXPECT_FALSE(is_valid_json("{'a':1}"));
  EXPECT_FALSE(is_valid_json("{\"a\":\"\x01\"}"));  // raw control char
}

TEST(ObsJson, QuoteEscapes) {
  EXPECT_EQ(json_quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_TRUE(is_valid_json(json_quote(std::string("\x01\x1f tab\t"))));
}

TEST(ObsJson, NumberIsAlwaysValid) {
  EXPECT_TRUE(is_valid_json(json_number(1.5)));
  EXPECT_TRUE(is_valid_json(json_number(-0.0)));
  // Non-finite values must not leak "inf"/"nan" tokens into the JSON.
  EXPECT_TRUE(is_valid_json(json_number(1.0 / 0.0)));
  EXPECT_TRUE(is_valid_json(json_number(0.0 / 0.0)));
}

// ------------------------------------------------------------ instruments

TEST(ObsMetrics, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeBasics) {
  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsMetrics, HistogramBucketsAndSum) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0 (<=1)
  h.observe(1.0);  // bucket 0
  h.observe(3.0);  // bucket 2 (<=4)
  h.observe(99);   // overflow bucket
  EXPECT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket_values(), (std::vector<std::uint64_t>{2, 0, 1, 1}));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 3.0 + 99.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsMetrics, HistogramMergeBuckets) {
  Histogram h(pow2_bounds(3));  // bounds {1,2,4}, 4 buckets
  const std::uint64_t local[4] = {5, 0, 2, 1};
  h.merge_buckets(local, 4, 123.0);
  h.merge_buckets(local, 4, 1.0);
  EXPECT_EQ(h.bucket_values(), (std::vector<std::uint64_t>{10, 0, 4, 2}));
  EXPECT_EQ(h.count(), 16u);
  EXPECT_DOUBLE_EQ(h.sum(), 124.0);
}

TEST(ObsMetrics, Pow2BucketMatchesObserve) {
  // The local fast-path index must agree with Histogram::observe's
  // lower_bound placement for every small value.
  constexpr int n = 8;
  const auto bounds = pow2_bounds(n);
  ASSERT_EQ(bounds.size(), static_cast<std::size_t>(n));
  for (std::uint64_t v = 0; v <= 600; ++v) {
    Histogram h(bounds);
    h.observe(static_cast<double>(v));
    const auto placed = h.bucket_values();
    std::size_t observed = 0;
    for (std::size_t i = 0; i < placed.size(); ++i)
      if (placed[i]) observed = i;
    EXPECT_EQ(pow2_bucket(v, n), observed) << "v=" << v;
  }
}

TEST(ObsMetrics, RegistryDedupAndSnapshot) {
  auto& r = Registry::global();
  Counter& a = r.counter("test.obs.dedup");
  Counter& b = r.counter("test.obs.dedup");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(7);
  const auto snap = r.counter_values();
  ASSERT_TRUE(snap.count("test.obs.dedup"));
  EXPECT_EQ(snap.at("test.obs.dedup"), 7u);

  // Bounds apply on first registration only; later calls reuse them.
  Histogram& h1 = r.histogram("test.obs.h", {1.0, 2.0});
  Histogram& h2 = r.histogram("test.obs.h", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsMetrics, ResetKeepsReferencesValid) {
  auto& r = Registry::global();
  Counter& c = r.counter("test.obs.reset_ref");
  c.add(3);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the macro-cached static pattern relies on this
  EXPECT_EQ(r.counter("test.obs.reset_ref").value(), 2u);
}

TEST(ObsMetrics, ExportsAreWellFormed) {
  auto& r = Registry::global();
  r.counter("test.obs.\"quoted\"\nname").add(1);
  r.gauge("test.obs.gauge").set(-5);
  r.histogram("test.obs.export_h", {1.0, 8.0}).observe(3.0);
  const std::string json = r.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  const std::string text = r.to_text();
  EXPECT_NE(text.find("test.obs.gauge"), std::string::npos);
}

TEST(ObsMetrics, SnapshotOrderIsSortedByName) {
  // benchdiff and the golden sidecar tests rely on snapshots being
  // deterministic: instruments appear sorted by name no matter the
  // registration order.
  auto& r = Registry::global();
  r.counter("test.order.zz").add(1);
  r.counter("test.order.aa").add(1);
  r.counter("test.order.mm").add(1);
  r.gauge("test.order.g2").set(2);
  r.gauge("test.order.g1").set(1);
  for (const std::string& s : {r.to_json(), r.to_text()}) {
    const auto a = s.find("test.order.aa");
    const auto m = s.find("test.order.mm");
    const auto z = s.find("test.order.zz");
    ASSERT_NE(a, std::string::npos) << s;
    ASSERT_NE(m, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(a, m) << "snapshot not sorted:\n" << s;
    EXPECT_LT(m, z) << "snapshot not sorted:\n" << s;
    EXPECT_LT(s.find("test.order.g1"), s.find("test.order.g2"));
  }
  // Same registry, same contents -> byte-identical snapshot.
  EXPECT_EQ(r.to_json(), r.to_json());
}

TEST(ObsMetrics, ConcurrentIncrementsDontLose) {
  auto& r = Registry::global();
  Counter& c = r.counter("test.obs.mt_counter");
  Histogram& h = r.histogram("test.obs.mt_hist", pow2_bounds(4));
  c.reset();
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<double>(t % 5));
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t total = 0;
  for (const auto v : h.bucket_values()) total += v;
  EXPECT_EQ(total, h.count());
}

// ----------------------------------------------------------------- tracer

/// Restores a clean disabled/empty tracer however the test exits.
struct TracerGuard {
  ~TracerGuard() {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST(ObsTrace, DisabledRecordsNothing) {
  TracerGuard guard;
  auto& tr = Tracer::global();
  tr.disable();
  tr.clear();
  { Span s("ignored", "test"); }
  tr.add_complete("ignored", "test", 0.0, 1.0);
  tr.add_sim_complete("ignored", "test", 0.0, 1.0);
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST(ObsTrace, SpanRecordsWallEvent) {
  TracerGuard guard;
  auto& tr = Tracer::global();
  tr.enable();
  { Span s("unit_span", "test"); }
  EXPECT_EQ(tr.event_count(), 1u);
  const std::string json = tr.to_chrome_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"unit_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ObsTrace, SimEventsMapSecondsToMicros) {
  TracerGuard guard;
  auto& tr = Tracer::global();
  tr.enable();
  tr.add_sim_complete("phase", "sim_test", 1.5, 0.25);
  const std::string json = tr.to_chrome_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  // 1.5 s -> 1.5e6 us on the sim track (pid 2).
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":250000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  const std::string summary = tr.summary_text();
  EXPECT_NE(summary.find("phase"), std::string::npos);
}

TEST(ObsTrace, CounterEventsCarryValueNotDuration) {
  TracerGuard guard;
  auto& tr = Tracer::global();
  tr.enable();
  // 2.5 is exactly representable, so %.17g prints it without cruft.
  tr.add_sim_counter("power_w", "test", 1.5, 2.5);
  const std::string json = tr.to_chrome_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"value\":2.5}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"dur\""), std::string::npos)
      << "counter events must not carry a duration: " << json;
  // Counters have no duration; the span summary must skip them.
  EXPECT_EQ(tr.summary_text().find("power_w"), std::string::npos);
}

TEST(ObsTrace, DisabledIgnoresCounters) {
  TracerGuard guard;
  auto& tr = Tracer::global();
  tr.disable();
  tr.clear();
  tr.add_counter("c", "test", 0.0, 1.0);
  tr.add_sim_counter("c", "test", 0.0, 1.0);
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST(ObsTrace, ClearEmptiesEventLog) {
  TracerGuard guard;
  auto& tr = Tracer::global();
  tr.enable();
  tr.add_complete("x", "test", 0.0, 1.0);
  ASSERT_GT(tr.event_count(), 0u);
  tr.clear();
  EXPECT_EQ(tr.event_count(), 0u);
}

// ----------------------------------------------------- build-mode no-ops

TEST(ObsMacros, MacrosCompileInThisBuildMode) {
#if defined(ECOMP_OBS_ENABLED)
  Registry::global().counter("test.obs.macro").reset();
#endif
  ECOMP_COUNT("test.obs.macro");
  ECOMP_COUNT_N("test.obs.macro", 4);
  ECOMP_GAUGE_SET("test.obs.macro_gauge", 11);
  ECOMP_OBSERVE("test.obs.macro_hist", pow2_bounds(4), 3);
  ECOMP_TRACE_SPAN("test.obs.macro_span", "test");
#if defined(ECOMP_OBS_ENABLED)
  static_assert(kObsEnabled);
  EXPECT_EQ(Registry::global().counter("test.obs.macro").value(), 5u);
  EXPECT_EQ(Registry::global().gauge("test.obs.macro_gauge").value(), 11);
#else
  // ECOMP_OBS=OFF: the macros must evaluate nothing — names never reach
  // the registry.
  static_assert(!kObsEnabled);
  EXPECT_FALSE(Registry::global().counter_values().count("test.obs.macro"));
#endif
}

}  // namespace
}  // namespace ecomp::obs

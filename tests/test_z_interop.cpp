// UNIX compress .Z format: self round-trip, width-change and CLEAR
// paths, and real-tool interop (uncompress / gzip -d read our output).
#include "compress/z_format.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "cli/cli.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ecomp::compress {
namespace {

namespace fs = std::filesystem;
using workload::FileKind;

Bytes mixed_input() {
  // Text (fills the dictionary, many width changes), then noise (ratio
  // degrades => CLEAR), then text again (post-clear rebuild).
  Bytes b = workload::generate_kind(FileKind::Xml, 400000, 1, 0.2);
  const Bytes noise = workload::generate_kind(FileKind::Random, 300000, 2, 0.0);
  b.insert(b.end(), noise.begin(), noise.end());
  const Bytes tail = workload::generate_kind(FileKind::Log, 200000, 3, 0.0);
  b.insert(b.end(), tail.begin(), tail.end());
  return b;
}

TEST(ZFormat, SelfRoundTripAllWidths) {
  const Bytes input = mixed_input();
  for (int bits : {9, 11, 12, 14, 16}) {
    const Bytes z = z_compress(input, bits);
    EXPECT_TRUE(looks_like_z(z));
    EXPECT_EQ(z_decompress(z), input) << bits;
  }
}

TEST(ZFormat, EmptyAndTiny) {
  EXPECT_EQ(z_decompress(z_compress({})), Bytes{});
  const Bytes one = {0x55};
  EXPECT_EQ(z_decompress(z_compress(one)), one);
  const Bytes two = {0x55, 0x55};
  EXPECT_EQ(z_decompress(z_compress(two)), two);
}

TEST(ZFormat, RunsAndKwkwk) {
  Bytes runs;
  for (int i = 0; i < 2000; ++i)
    runs.insert(runs.end(), static_cast<std::size_t>(i % 9 + 1),
                static_cast<std::uint8_t>('a' + i % 3));
  EXPECT_EQ(z_decompress(z_compress(runs)), runs);
}

TEST(ZFormat, RejectsBadHeader) {
  EXPECT_THROW(z_decompress(Bytes{0x1f, 0x9e, 0x90}), Error);
  EXPECT_THROW(z_decompress(Bytes{0x1f, 0x9d}), Error);
  EXPECT_THROW(z_decompress(Bytes{0x1f, 0x9d, 0x88}), Error);  // 8 bits
  EXPECT_THROW(z_compress({}, 17), Error);
}

TEST(ZFormat, CorruptCodeDetected) {
  // A code pointing past free_ent must be rejected, not crash.
  Bytes z = z_compress(mixed_input(), 12);
  bool detected_or_garbage = true;
  try {
    Bytes mutated = z;
    mutated[100] ^= 0x7f;
    (void)z_decompress(mutated);
    // .Z has no checksum, so silent wrong output is possible — the
    // contract here is only "no crash, no hang".
  } catch (const Error&) {
  }
  EXPECT_TRUE(detected_or_garbage);
}

class ZToolInterop : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::system("command -v uncompress >/dev/null 2>&1") != 0 &&
        std::system("command -v gzip >/dev/null 2>&1") != 0)
      GTEST_SKIP() << "no .Z-capable tool available";
    dir_ = fs::temp_directory_path() /
           ("ecomp_z_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  void expect_tool_reads(const Bytes& input, int max_bits) {
    const fs::path z = dir_ / "ours.Z";
    const fs::path out = dir_ / "ours.out";
    cli::write_file(z.string(), z_compress(input, max_bits));
    const char* tool =
        std::system("command -v uncompress >/dev/null 2>&1") == 0
            ? "uncompress -c "
            : "gzip -dc ";
    const std::string cmd =
        std::string(tool) + z.string() + " > " + out.string() + " 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << "tool rejected our .Z";
    EXPECT_EQ(cli::read_file(out.string()), input) << "maxbits " << max_bits;
  }

  fs::path dir_;
};

TEST_F(ZToolInterop, ToolReadsOurTextOutput) {
  expect_tool_reads(workload::generate_kind(FileKind::Xml, 500000, 4, 0.2),
                    16);
}

TEST_F(ZToolInterop, ToolReadsMixedWithClears) {
  // Small dictionary + structure change forces CLEAR codes on the wire.
  expect_tool_reads(mixed_input(), 12);
}

TEST_F(ZToolInterop, ToolReadsEveryMaxBits) {
  const Bytes input =
      workload::generate_kind(FileKind::Source, 200000, 5, 0.1);
  for (int bits : {9, 10, 12, 14, 16}) expect_tool_reads(input, bits);
}

TEST_F(ZToolInterop, ToolReadsRandomData) {
  Rng rng(6);
  Bytes noise(150000);
  for (auto& b : noise) b = rng.byte();
  expect_tool_reads(noise, 16);
}

}  // namespace
}  // namespace ecomp::compress

// Energy attribution: the ledger's invariants over every simulator and
// the closed-form model timelines, plus the Perfetto counter tracks.
#include "sim/energy_ledger.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/energy_model.h"
#include "core/planner.h"
#include "core/session.h"
#include "core/upload_model.h"
#include "obs/json_parse.h"
#include "obs/trace.h"
#include "sim/packet.h"
#include "sim/timeline_trace.h"
#include "sim/transfer.h"
#include "util/rng.h"

namespace ecomp::sim {
namespace {

void expect_near_rel(double a, double b, const std::string& what) {
  const double tol = 1e-9 * std::max(1.0, std::max(std::fabs(a),
                                                   std::fabs(b)));
  EXPECT_NEAR(a, b, tol) << what;
}

/// Assert every ledger invariant against its source timeline and return
/// the ledger for further checks.
EnergyLedger checked_ledger(const Timeline& t, const std::string& what) {
  const EnergyLedger ledger = EnergyLedger::from_timeline(t);
  EXPECT_EQ(ledger.validate(t), "") << what;
  for (const auto& node : ledger.nodes()) {
    EXPECT_GE(node.energy_j, 0.0) << what << ": " << node.component;
    EXPECT_GE(node.time_s, 0.0) << what << ": " << node.component;
  }
  expect_near_rel(ledger.total_energy_j(), t.total_energy_j(), what);
  return ledger;
}

// --------------------------------------------------------- attribution

TEST(Attribution, LabelDefaultsFollowTheNamingScheme) {
  EXPECT_EQ(attribution_for_label("recv:first").component, "radio/recv/first");
  EXPECT_EQ(attribution_for_label("send:active").component,
            "radio/send/active");
  EXPECT_EQ(attribution_for_label("startup").component, "radio/startup");
  EXPECT_EQ(attribution_for_label("gap:rest").component, "idle/gap/rest");
  EXPECT_EQ(attribution_for_label("wait:proxy").component, "idle/wait/proxy");
  EXPECT_EQ(attribution_for_label("think").component, "idle/think");
  EXPECT_EQ(attribution_for_label("decomp:interleaved").component,
            "overlap/decompress");
  EXPECT_EQ(attribution_for_label("decomp:tail").component, "cpu/decompress");
  EXPECT_EQ(attribution_for_label("compress:front").component, "cpu/compress");
  EXPECT_EQ(attribution_for_label("compress:interleaved").component,
            "overlap/compress");
  EXPECT_EQ(attribution_for_label("mystery:x").component, "other/mystery");

  EXPECT_EQ(attribution_for_label("recv:first").radio, RadioState::Recv);
  EXPECT_EQ(attribution_for_label("recv:first").cpu, CpuState::Busy);
  EXPECT_EQ(attribution_for_label("gap:rest").radio, RadioState::Idle);
  EXPECT_EQ(attribution_for_label("decomp:interleaved").radio,
            RadioState::Recv);
}

TEST(Timeline, MultiPrefixQueryMatchesPerPrefixScans) {
  Rng rng(7);
  const std::vector<std::string> labels = {
      "recv:first", "recv:rest", "gap:first", "gap:rest",
      "decomp:interleaved", "decomp:tail", "wait:proxy", "startup", "think"};
  Timeline t;
  for (int i = 0; i < 200; ++i)
    t.add(rng.uniform() * 3.0, 0.5 + rng.uniform() * 3.0,
          labels[rng.below(labels.size())]);
  t.add_energy(0.012, "startup");
  const std::vector<std::string> prefixes = {"recv", "gap", "startup",
                                             "decomp", "wait", "absent"};
  const auto totals = t.totals_with_prefixes(prefixes);
  ASSERT_EQ(totals.size(), prefixes.size());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    EXPECT_DOUBLE_EQ(totals[i].energy_j, t.energy_with_prefix(prefixes[i]))
        << prefixes[i];
    EXPECT_DOUBLE_EQ(totals[i].time_s, t.time_with_prefix(prefixes[i]))
        << prefixes[i];
  }
}

TEST(Timeline, ExtendConcatenatesPhasesAndTotals) {
  Timeline a, b;
  a.add(1.0, 2.0, "recv:first");
  b.add(0.5, 1.0, "decomp:tail");
  b.add_energy(0.012, "startup");
  Timeline all;
  all.extend(a);
  all.extend(b);
  EXPECT_EQ(all.phases().size(), 3u);
  expect_near_rel(all.total_energy_j(),
                  a.total_energy_j() + b.total_energy_j(), "extend energy");
  expect_near_rel(all.total_time_s(), a.total_time_s() + b.total_time_s(),
                  "extend time");
}

// --------------------------------------------------------------- ledger

TEST(EnergyLedger, AggregatesAncestorsAndMarksLeaves) {
  Timeline t;
  t.add(1.0, 2.0, "recv:first",
        {"radio/recv/first", CpuState::Busy, RadioState::Recv});
  t.add(2.0, 1.0, "recv:rest",
        {"radio/recv/rest", CpuState::Busy, RadioState::Recv});
  t.add_energy(0.5, "startup",
               {"radio/startup", CpuState::Idle, RadioState::Idle});
  t.add(1.0, 2.85, "decomp:tail",
        {"cpu/decompress/deflate", CpuState::Busy, RadioState::Idle});

  const EnergyLedger ledger = checked_ledger(t, "hand-built");
  EXPECT_DOUBLE_EQ(ledger.energy_j("radio/recv/first"), 2.0);
  EXPECT_DOUBLE_EQ(ledger.energy_j("radio/recv"), 4.0);
  EXPECT_DOUBLE_EQ(ledger.energy_j("radio"), 4.5);
  EXPECT_DOUBLE_EQ(ledger.energy_j("cpu"), 2.85);
  EXPECT_DOUBLE_EQ(ledger.energy_j("no/such/component"), 0.0);
  EXPECT_DOUBLE_EQ(ledger.time_s("radio/recv"), 3.0);

  const auto roots = ledger.children("");
  ASSERT_EQ(roots.size(), 2u);  // cpu, radio
  EXPECT_EQ(roots[0]->component, "cpu");
  EXPECT_EQ(roots[1]->component, "radio");
  const auto recv_kids = ledger.children("radio/recv");
  ASSERT_EQ(recv_kids.size(), 2u);
  EXPECT_TRUE(recv_kids[0]->leaf);

  // nodes() is depth-first: every ancestor precedes its descendants.
  const auto& nodes = ledger.nodes();
  for (std::size_t i = 1; i < nodes.size(); ++i)
    EXPECT_LT(nodes[i - 1].component, nodes[i].component);
}

TEST(EnergyLedger, ToJsonRoundTripsThroughTheParser) {
  Timeline t;
  t.add(1.0, 2.0, "recv:first");
  t.add(0.5, 2.85, "decomp:tail");
  const EnergyLedger ledger = checked_ledger(t, "to_json");
  const obs::JsonValue doc = obs::parse_json(ledger.to_json());
  ASSERT_TRUE(doc.is_object());
  expect_near_rel(doc.number_or("total_energy_j", -1.0),
                  ledger.total_energy_j(), "json total");
  const obs::JsonValue* comps = doc.find("components");
  ASSERT_NE(comps, nullptr);
  ASSERT_TRUE(comps->is_object());
  EXPECT_EQ(comps->object.size(), ledger.nodes().size());
  for (const auto& node : ledger.nodes()) {
    const obs::JsonValue* entry = comps->find(node.component);
    ASSERT_NE(entry, nullptr) << node.component;
    expect_near_rel(entry->number_or("energy_j", -1.0), node.energy_j,
                    node.component);
  }
}

// ------------------------------------- randomized simulator scenarios

TEST(EnergyLedger, RandomizedTransferScenariosAlwaysSum) {
  Rng rng(42);
  const TransferSimulator sim;
  const std::vector<std::string> codecs = {"deflate", "lzw", "bwt"};
  for (int i = 0; i < 300; ++i) {
    const double s = rng.uniform() * 8.0;
    const double factor = 1.0 + rng.uniform() * 9.0;
    const double sc = s / factor;
    const std::string codec = codecs[rng.below(codecs.size())];
    TransferOptions opt;
    opt.interleave = rng.chance(0.5);
    opt.power_saving = rng.chance(0.3);
    opt.sleep_during_decompress = rng.chance(0.3);
    const int od = static_cast<int>(rng.below(3));
    opt.on_demand = od == 0   ? OnDemand::None
                    : od == 1 ? OnDemand::Sequential
                              : OnDemand::Overlapped;

    const std::string what = "i=" + std::to_string(i) + " codec=" + codec;
    checked_ledger(sim.download_uncompressed(s, opt.power_saving).timeline,
                   what + " raw");
    checked_ledger(sim.download_compressed(s, sc, codec, opt).timeline,
                   what + " compressed");
    checked_ledger(sim.upload_uncompressed(s, opt.power_saving).timeline,
                   what + " upload-raw");
    checked_ledger(sim.upload_compressed(s, sc, codec, opt).timeline,
                   what + " upload");
  }
}

TEST(EnergyLedger, RandomizedSelectiveAndPacketScenariosAlwaysSum) {
  Rng rng(43);
  const TransferSimulator sim;
  const PacketLevelSimulator packet_sim;
  for (int i = 0; i < 100; ++i) {
    std::vector<BlockTransfer> blocks;
    const int n = 1 + static_cast<int>(rng.below(12));
    for (int b = 0; b < n; ++b) {
      BlockTransfer bt;
      bt.raw_mb = 0.128 * (0.2 + rng.uniform());
      const bool compressed = rng.chance(0.7);
      bt.compressed = compressed;
      bt.payload_mb = compressed ? bt.raw_mb / (1.0 + rng.uniform() * 4.0)
                                 : bt.raw_mb;
      blocks.push_back(bt);
    }
    TransferOptions opt;
    opt.interleave = rng.chance(0.5);
    opt.power_saving = rng.chance(0.3);
    const std::string what = "selective i=" + std::to_string(i);
    checked_ledger(sim.download_selective(blocks, "deflate", opt).timeline,
                   what);
    PacketSimOptions popt;
    popt.interleave = opt.interleave;
    popt.power_saving = opt.power_saving;
    checked_ledger(packet_sim.download(blocks, "deflate", popt).timeline,
                   what + " packet");
  }
}

TEST(EnergyLedger, CodecNameReachesTheComponentTree) {
  const TransferSimulator sim;
  TransferOptions opt;
  opt.interleave = true;
  const auto r = sim.download_compressed(2.0, 0.4, "bwt", opt);
  const EnergyLedger ledger = checked_ledger(r.timeline, "codec path");
  EXPECT_GT(ledger.energy_j("cpu/decompress/bwt") +
                ledger.energy_j("overlap/decompress/bwt"),
            0.0);
  EXPECT_DOUBLE_EQ(ledger.energy_j("cpu/decompress/deflate"), 0.0);
}

// ------------------------------------------ model timelines == closed forms

TEST(EnergyModelTimelines, MatchClosedFormsOnRandomInputs) {
  Rng rng(44);
  const auto model = core::EnergyModel::paper_11mbps();
  for (int i = 0; i < 200; ++i) {
    const double s = rng.uniform() * 10.0;
    const double sc = s / (1.0 + rng.uniform() * 9.0);
    const bool sleep = rng.chance(0.5);

    const Timeline dl = model.download_timeline(s);
    checked_ledger(dl, "model download");
    expect_near_rel(dl.total_energy_j(), model.download_energy_j(s),
                    "download s=" + std::to_string(s));

    const Timeline seq = model.sequential_timeline(s, sc, sleep);
    checked_ledger(seq, "model sequential");
    expect_near_rel(seq.total_energy_j(),
                    model.sequential_energy_j(s, sc, sleep), "sequential");

    const Timeline inter = model.interleaved_timeline(s, sc);
    checked_ledger(inter, "model interleaved");
    expect_near_rel(inter.total_energy_j(), model.interleaved_energy_j(s, sc),
                    "interleaved");
  }
}

TEST(UploadModelTimelines, MatchClosedFormsOnRandomInputs) {
  Rng rng(45);
  const auto model = core::UploadModel::ipaq_11mbps();
  for (int i = 0; i < 200; ++i) {
    const double s = rng.uniform() * 10.0;
    const double sc = s / (1.0 + rng.uniform() * 9.0);
    const bool sleep = rng.chance(0.5);

    const Timeline up = model.upload_timeline(s);
    checked_ledger(up, "model upload");
    expect_near_rel(up.total_energy_j(), model.upload_energy_j(s), "upload");

    const Timeline seq = model.sequential_timeline(s, sc, sleep);
    checked_ledger(seq, "model upload sequential");
    expect_near_rel(seq.total_energy_j(),
                    model.sequential_energy_j(s, sc, sleep),
                    "upload sequential");

    const Timeline inter = model.interleaved_timeline(s, sc);
    checked_ledger(inter, "model upload interleaved");
    expect_near_rel(inter.total_energy_j(), model.interleaved_energy_j(s, sc),
                    "upload interleaved");
  }
}

TEST(EnergyModelTimelines, ComponentsTellTheInterleavingStory) {
  const auto model = core::EnergyModel::paper_11mbps();
  // High factor: gaps fill completely, tail spills past the download.
  const auto high = EnergyLedger::from_timeline(
      model.interleaved_timeline(2.0, 0.2, "deflate"));
  EXPECT_GT(high.energy_j("overlap/decompress/deflate"), 0.0);
  EXPECT_GT(high.energy_j("cpu/decompress/deflate"), 0.0);
  EXPECT_DOUBLE_EQ(high.energy_j("idle/gap/rest"), 0.0);
  // Low factor: decompression fits, leftover idle remains, no tail.
  const auto low = EnergyLedger::from_timeline(
      model.interleaved_timeline(2.0, 1.6, "deflate"));
  EXPECT_GT(low.energy_j("idle/gap/rest"), 0.0);
  EXPECT_DOUBLE_EQ(low.energy_j("cpu/decompress/deflate"), 0.0);
}

// ---------------------------------------------------------------- session

TEST(SessionTimeline, AggregatesTransfersAndThinkTime) {
  core::SessionConfig config;
  config.think_time_s = 5.0;
  const core::SessionSimulator sessions(
      core::TransferPlanner(core::EnergyModel::paper_11mbps()),
      TransferSimulator(), config);
  std::vector<core::SessionRequest> requests;
  for (int i = 0; i < 4; ++i) {
    core::SessionRequest r;
    r.name = "file" + std::to_string(i);
    r.size_mb = 0.5 + 0.5 * i;
    r.factors = {{"deflate", 3.0}, {"lzw", 2.0}, {"bwt", 3.5}};
    requests.push_back(r);
  }
  for (const auto policy :
       {core::SessionPolicy::Raw, core::SessionPolicy::AlwaysDeflate,
        core::SessionPolicy::Planned}) {
    const auto report = sessions.run(requests, policy);
    const EnergyLedger ledger =
        checked_ledger(report.timeline, core::to_string(policy));
    expect_near_rel(ledger.total_energy_j(), report.total_energy_j(),
                    "session total");
    expect_near_rel(ledger.energy_j("idle/think"), report.think_energy_j,
                    "think energy");
    expect_near_rel(report.timeline.total_time_s(), report.total_time_s,
                    "session time");
  }
}

// --------------------------------------------------------- counter tracks

TEST(TimelineTrace, EmitsPowerAndCumulativeEnergyCounters) {
  auto& tracer = obs::Tracer::global();
  tracer.disable();
  tracer.clear();
  tracer.enable();

  Timeline t;
  t.add_energy(0.012, "startup");
  t.add(1.0, 2.0, "recv:first");
  t.add(0.5, 2.85, "decomp:tail");
  const double dur = timeline_to_trace(t, tracer, "test", 0.0);
  expect_near_rel(dur, t.total_time_s(), "trace duration");

  const obs::JsonValue doc = obs::parse_json(tracer.to_chrome_json());
  tracer.disable();
  tracer.clear();

  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<std::pair<double, double>> power, energy;  // (ts, value)
  for (const auto& e : events->array) {
    const obs::JsonValue* ph = e.find("ph");
    if (!ph || ph->string != "C") continue;
    EXPECT_DOUBLE_EQ(e.number_or("pid", 0.0), 2.0);  // sim track
    const obs::JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const double ts = e.number_or("ts", -1.0);
    const double value = args->number_or("value", -1.0);
    if (e.find("name")->string == "power_w") power.emplace_back(ts, value);
    else energy.emplace_back(ts, value);
  }
  // One power sample per timed phase plus the closing zero.
  ASSERT_EQ(power.size(), 3u);
  EXPECT_DOUBLE_EQ(power[0].second, 2.0);
  EXPECT_DOUBLE_EQ(power[1].second, 2.85);
  EXPECT_DOUBLE_EQ(power[2].second, 0.0);
  // Energy samples step from 0 to the total; the last closes at
  // total_energy_j at the timeline's end (1.5 s -> 1.5e6 us).
  ASSERT_GE(energy.size(), 2u);
  EXPECT_DOUBLE_EQ(energy.front().second, 0.0);
  expect_near_rel(energy.back().second, t.total_energy_j(), "final energy");
  EXPECT_DOUBLE_EQ(energy.back().first, 1.5e6);
  // Samples arrive in time order.
  for (std::size_t i = 1; i < energy.size(); ++i) {
    EXPECT_LE(energy[i - 1].first, energy[i].first);
    EXPECT_LE(energy[i - 1].second, energy[i].second);
  }
}

}  // namespace
}  // namespace ecomp::sim

// Observability suite: sliding-window quantile histograms, wire-level
// trace propagation, JSONL event logs, and the proxy STATS surface.
//
// The headline acceptance test drives a fault-injected 50-request load
// against a live proxy and checks that `ecomp stats --json` reports
// request-latency quantiles within the histogram's documented bucket
// error of ground-truth per-request timings, and that every request's
// trace id shows up in both the client-side and proxy-side event logs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cli/cli.h"
#include "compress/selective.h"
#include "net/fault.h"
#include "net/proxy.h"
#include "obs/events.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/metrics.h"
#include "obs/stats_export.h"
#include "obs/trace.h"
#include "workload/generator.h"

namespace ecomp {
namespace {

namespace fs = std::filesystem;
using obs::SlidingHistogram;

// ------------------------------------------------------ bucket math

TEST(SlidingHistogramBuckets, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    const int idx = SlidingHistogram::bucket_index(v);
    EXPECT_EQ(SlidingHistogram::bucket_lower(idx), v);
    EXPECT_EQ(SlidingHistogram::bucket_upper(idx), v + 1);
  }
}

TEST(SlidingHistogramBuckets, IndexIsMonotoneAndContainsValue) {
  int prev = -1;
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{15}, std::uint64_t{16},
                          std::uint64_t{17}, std::uint64_t{100},
                          std::uint64_t{1000}, std::uint64_t{12345},
                          std::uint64_t{1} << 20, std::uint64_t{1} << 40,
                          (std::uint64_t{1} << 40) + 12345}) {
    const int idx = SlidingHistogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
    ASSERT_LT(idx, SlidingHistogram::kBuckets);
    EXPECT_LE(SlidingHistogram::bucket_lower(idx), v);
    EXPECT_LT(v, SlidingHistogram::bucket_upper(idx)) << v;
  }
  // The top bucket's upper bound saturates at the maximum value.
  const int top = SlidingHistogram::bucket_index(~std::uint64_t{0});
  ASSERT_LT(top, SlidingHistogram::kBuckets);
  EXPECT_LE(SlidingHistogram::bucket_lower(top), ~std::uint64_t{0});
  EXPECT_EQ(SlidingHistogram::bucket_upper(top), ~std::uint64_t{0});
}

TEST(SlidingHistogramBuckets, BucketsTileTheRange) {
  // bucket_upper(i) == bucket_lower(i+1): no gaps, no overlaps.
  for (int i = 0; i + 1 < SlidingHistogram::kBuckets; ++i)
    EXPECT_EQ(SlidingHistogram::bucket_upper(i),
              SlidingHistogram::bucket_lower(i + 1))
        << i;
}

TEST(SlidingHistogramBuckets, RelativeErrorWithinBound) {
  // The midpoint representative is within the documented bucket error
  // of every value in the bucket.
  std::uint64_t v = 1;
  while (v < (std::uint64_t{1} << 50)) {
    const int idx = SlidingHistogram::bucket_index(v);
    const double mid = SlidingHistogram::bucket_mid(idx);
    const double rel =
        std::abs(mid - static_cast<double>(v)) / static_cast<double>(v);
    EXPECT_LE(rel, SlidingHistogram::kMaxRelativeError) << v;
    v += 1 + v / 3;  // dense at the bottom, sparse at the top
  }
}

// ------------------------------------------------------ quantiles

/// Ground-truth quantile with the histogram's own rank convention
/// (1-based ceil rank over the sorted sample).
double true_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return xs[rank - 1];
}

TEST(SlidingHistogramQuantiles, UniformRampWithinBucketError) {
  SlidingHistogram h;
  std::vector<double> xs;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.record(v);
    xs.push_back(static_cast<double>(v));
  }
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double est = h.quantile(q);
    const double truth = true_quantile(xs, q);
    EXPECT_NEAR(est, truth, truth * SlidingHistogram::kMaxRelativeError + 1.0)
        << "q=" << q;
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total_count, 1000u);
  EXPECT_TRUE(snap.from_window);
  EXPECT_DOUBLE_EQ(snap.total_sum, 500500.0);
}

TEST(SlidingHistogramQuantiles, EmptyHistogramIsZero) {
  SlidingHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total_count, 0u);
  EXPECT_EQ(snap.p99, 0.0);
}

TEST(SlidingHistogramQuantiles, WindowExpiresButTotalsSurvive) {
  SlidingHistogram::Options opt;
  opt.window_s = 1.0;
  opt.slices = 4;
  SlidingHistogram h(opt);
  std::uint64_t now = 0;
  h.set_clock_for_test([&now] { return now; });

  for (int i = 0; i < 100; ++i) h.record(100);
  auto snap = h.snapshot();
  EXPECT_EQ(snap.window_count, 100u);
  EXPECT_TRUE(snap.from_window);

  now += 5'000'000'000ull;  // 5 s: far past the 1 s window
  snap = h.snapshot();
  EXPECT_EQ(snap.window_count, 0u);
  EXPECT_FALSE(snap.from_window);
  EXPECT_EQ(snap.total_count, 100u);
  // All-time distribution stands in for quantiles on a drained window.
  EXPECT_NEAR(h.quantile(0.5), 100.0,
              100.0 * SlidingHistogram::kMaxRelativeError);

  // New recordings dominate the window even though old totals remain.
  for (int i = 0; i < 50; ++i) h.record(10000);
  snap = h.snapshot();
  EXPECT_EQ(snap.window_count, 50u);
  EXPECT_TRUE(snap.from_window);
  EXPECT_NEAR(snap.p50, 10000.0,
              10000.0 * SlidingHistogram::kMaxRelativeError);
  EXPECT_EQ(snap.total_count, 150u);
}

TEST(SlidingHistogramQuantiles, RatePerSecondUsesCoveredWindow) {
  SlidingHistogram::Options opt;
  opt.window_s = 10.0;
  SlidingHistogram h(opt);
  std::uint64_t now = 0;
  h.set_clock_for_test([&now] { return now; });
  for (int i = 0; i < 500; ++i) h.record(1);
  now += 5'000'000'000ull;  // 5 s elapsed, window covers all of it
  const auto snap = h.snapshot();
  EXPECT_NEAR(snap.rate_per_s, 100.0, 1.0);
}

TEST(SlidingHistogramConcurrency, TotalsExactUnderConcurrentRecording) {
  SlidingHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(i % 1024));
    });
  for (auto& t : ts) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total_count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Quantiles remain sane (i % 1024 is uniform on [0, 1023]).
  EXPECT_NEAR(h.quantile(0.5), 512.0, 512.0 * 0.25);
}

TEST(SlidingHistogramConcurrency, EpochRolloverAcrossFullWindow) {
  // Injected clock marches across two full 60 s windows (default
  // Options) while recorder threads hammer: slice epochs roll over
  // under fire, totals stay exact, and a drained window falls back to
  // the all-time distribution until the next record flips it back.
  SlidingHistogram h;
  std::atomic<std::uint64_t> now{0};
  h.set_clock_for_test(
      [&now] { return now.load(std::memory_order_relaxed); });

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> recorded{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(100);
        recorded.fetch_add(1, std::memory_order_relaxed);
      }
    });
  // 64 half-slice steps = 2x the full window, snapshotting mid-roll.
  // Each step waits for fresh records so every slice really gets hit.
  for (int step = 0; step < 64; ++step) {
    const std::uint64_t before = recorded.load(std::memory_order_relaxed);
    while (recorded.load(std::memory_order_relaxed) < before + 100)
      std::this_thread::yield();
    now.fetch_add(3'750'000'000ull);  // 3.75 s = half of a 7.5 s slice
    const auto mid = h.snapshot();
    EXPECT_LE(mid.window_count, mid.total_count);
  }
  stop.store(true);
  for (auto& t : ts) t.join();

  const std::uint64_t total = recorded.load();
  auto snap = h.snapshot();
  EXPECT_EQ(snap.total_count, total);  // no rollover ever lost a count
  ASSERT_GT(total, 0u);
  EXPECT_TRUE(snap.from_window);  // recorders ran into the live slice
  EXPECT_GT(snap.window_count, 0u);
  EXPECT_LT(snap.window_count, total);  // old slices really expired
  EXPECT_NEAR(h.quantile(0.99), 100.0,
              100.0 * SlidingHistogram::kMaxRelativeError);

  // Silence past the whole window: the window drains, quantiles fall
  // back to all-time, and the snapshot says so.
  now.fetch_add(120'000'000'000ull);
  snap = h.snapshot();
  EXPECT_EQ(snap.window_count, 0u);
  EXPECT_FALSE(snap.from_window);
  EXPECT_EQ(snap.total_count, total);
  EXPECT_NEAR(h.quantile(0.5), 100.0,
              100.0 * SlidingHistogram::kMaxRelativeError);

  // The next record flips the snapshot back onto the live window.
  h.record(5000);
  snap = h.snapshot();
  EXPECT_TRUE(snap.from_window);
  EXPECT_EQ(snap.window_count, 1u);
  EXPECT_EQ(snap.total_count, total + 1);
  EXPECT_NEAR(snap.p50, 5000.0,
              5000.0 * SlidingHistogram::kMaxRelativeError);
}

// ------------------------------------------------------ registry

TEST(RegistrySliding, NamedSlidingHistogramsSortedAndResettable) {
  auto& reg = obs::Registry::global();
  reg.reset();
  auto& a = reg.sliding("ztest.b_us");
  auto& b = reg.sliding("ztest.a_us");
  a.record(10);
  b.record(20);
  EXPECT_EQ(&a, &reg.sliding("ztest.b_us"));  // stable references

  const auto snaps = reg.sliding_snapshots();
  std::vector<std::string> names;
  for (const auto& [name, _] : snaps) names.push_back(name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

  const std::string json = reg.to_json();
  const auto doc = obs::parse_json(json);
  const auto* sliding = doc.find("sliding");
  ASSERT_NE(sliding, nullptr);
  const auto* entry = sliding->find("ztest.a_us");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->number_or("count", -1), 1.0);
  EXPECT_GT(entry->number_or("p50", 0.0), 0.0);

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("ztest.a_us"), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);

  reg.reset();
  EXPECT_EQ(a.snapshot().total_count, 0u);  // reset, reference still valid
}

// ------------------------------------------------------ trace context

TEST(TraceContext, MintHexRoundTrip) {
  const auto a = obs::TraceContext::mint();
  const auto b = obs::TraceContext::mint();
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_EQ(a.hex().size(), 16u);
  EXPECT_EQ(obs::TraceContext::from_hex(a.hex()).trace_id, a.trace_id);
  EXPECT_FALSE(obs::TraceContext::from_hex("nope").valid());
  EXPECT_FALSE(obs::TraceContext::from_hex("123").valid());
  EXPECT_FALSE(obs::TraceContext::from_hex("zzzzzzzzzzzzzzzz").valid());
}

TEST(TraceContext, ScopeInstallsAndRestores) {
  EXPECT_FALSE(obs::current_trace().valid());
  {
    const auto ctx = obs::TraceContext::mint();
    obs::TraceScope scope(ctx);
    EXPECT_EQ(obs::current_trace().trace_id, ctx.trace_id);
  }
  EXPECT_FALSE(obs::current_trace().valid());
}

// ------------------------------------------------------ event log

/// Parse a JSONL file; every line must be valid JSON.
std::vector<obs::JsonValue> read_jsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<obs::JsonValue> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out.push_back(obs::parse_json(line));
  }
  return out;
}

/// All distinct "trace" values of events in `doc`s.
std::set<std::string> trace_ids(const std::vector<obs::JsonValue>& events) {
  std::set<std::string> ids;
  for (const auto& e : events)
    if (const auto* t = e.find("trace")) ids.insert(t->string);
  return ids;
}

class TelemetryProxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ecomp_telemetry_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    client_log_ = (dir_ / "client.jsonl").string();
    proxy_log_ = (dir_ / "proxy.jsonl").string();
    obs::EventLog::global().open(client_log_);
  }
  void TearDown() override {
    obs::EventLog::global().close();
    fs::remove_all(dir_);
  }

  net::FileStore store_with(const std::string& name, std::size_t bytes,
                            workload::FileKind kind = workload::FileKind::Xml) {
    net::FileStore store;
    data_ = workload::generate_kind(kind, bytes, /*seed=*/7, 0.3);
    store.put(name, data_);
    return store;
  }

  fs::path dir_;
  std::string client_log_, proxy_log_;
  Bytes data_;
};

TEST_F(TelemetryProxyTest, TraceEchoedAndLoggedOnBothSides) {
  net::ProxyServer server(store_with("f", 120000),
                          compress::SelectivePolicy::always());
  obs::EventLog proxy_log;
  proxy_log.open(proxy_log_);
  server.set_event_log(&proxy_log);

  net::DownloadStats stats;
  const Bytes got = net::download(server.port(), "f", "raw", &stats);
  EXPECT_EQ(got, data_);
  EXPECT_NE(stats.trace_id, 0u);
  EXPECT_TRUE(stats.trace_echoed);

  server.stop();
  obs::TraceContext ctx;
  ctx.trace_id = stats.trace_id;
  const auto client_events = read_jsonl(client_log_);
  const auto proxy_events = read_jsonl(proxy_log_);
  EXPECT_TRUE(trace_ids(client_events).count(ctx.hex()));
  EXPECT_TRUE(trace_ids(proxy_events).count(ctx.hex()));
  // Both sides logged the lifecycle stages around the transfer.
  std::set<std::string> proxy_stages, client_stages;
  for (const auto& e : proxy_events)
    proxy_stages.insert(e.find("stage")->string);
  for (const auto& e : client_events)
    client_stages.insert(e.find("stage")->string);
  for (const char* s : {"accept", "parse", "stream", "close"})
    EXPECT_TRUE(proxy_stages.count(s)) << s;
  for (const char* s : {"connect", "request", "stream", "close"})
    EXPECT_TRUE(client_stages.count(s)) << s;
}

TEST_F(TelemetryProxyTest, TraceSurvivesFaultMatrixRetries) {
  // One download per fault kind; the armed fault kills or degrades the
  // first connection, the retry succeeds — and every attempt carries
  // the same trace id into both logs.
  net::ProxyServer server(store_with("f", 150000),
                          compress::SelectivePolicy::always());
  obs::EventLog proxy_log;
  proxy_log.open(proxy_log_);
  server.set_event_log(&proxy_log);

  std::vector<std::uint64_t> ids;
  for (const net::FaultKind kind :
       {net::FaultKind::Drop, net::FaultKind::Truncate, net::FaultKind::Delay,
        net::FaultKind::Corrupt}) {
    net::FaultSpec spec;
    spec.kind = kind;
    spec.at_byte = 5000;
    spec.delay_ms = 30;
    server.set_fault_injector(std::make_shared<net::FaultInjector>(spec, 1));
    net::TransferPolicy tp;
    tp.timeout_ms = 3000;
    tp.resume = true;
    const auto out = net::download_resilient(server.port(), "f", "full", tp);
    EXPECT_EQ(out.data, data_) << net::to_string(kind);
    EXPECT_NE(out.stats.trace_id, 0u);
    EXPECT_TRUE(out.stats.trace_echoed);
    ids.push_back(out.stats.trace_id);
  }
  server.stop();
  const auto client_ids = trace_ids(read_jsonl(client_log_));
  const auto proxy_ids = trace_ids(read_jsonl(proxy_log_));
  for (const std::uint64_t id : ids) {
    obs::TraceContext ctx;
    ctx.trace_id = id;
    EXPECT_TRUE(client_ids.count(ctx.hex())) << ctx.hex();
    EXPECT_TRUE(proxy_ids.count(ctx.hex())) << ctx.hex();
  }
  // The retried transfers left retry markers under their trace ids.
  bool saw_retry = false;
  for (const auto& e : read_jsonl(client_log_))
    if (e.find("stage")->string == "retry") saw_retry = true;
  EXPECT_TRUE(saw_retry);
}

TEST_F(TelemetryProxyTest, TraceSurvivesSalvage) {
  net::ProxyServer server(store_with("f", 200000),
                          compress::SelectivePolicy::always(), 32768);
  obs::EventLog proxy_log;
  proxy_log.open(proxy_log_);
  server.set_event_log(&proxy_log);

  net::FaultSpec spec;
  spec.kind = net::FaultKind::Truncate;
  spec.at_byte = 20000;  // well inside the compressed container
  server.set_fault_injector(
      std::make_shared<net::FaultInjector>(spec, 100));  // every attempt
  net::TransferPolicy tp;
  tp.max_retries = 1;
  tp.timeout_ms = 2000;
  tp.resume = false;  // every attempt dies at the same offset
  tp.salvage = true;
  const auto out =
      net::download_resilient(server.port(), "f", "selective", tp);
  EXPECT_FALSE(out.complete);
  EXPECT_NE(out.stats.trace_id, 0u);
  server.stop();

  obs::TraceContext ctx;
  ctx.trace_id = out.stats.trace_id;
  bool salvage_logged = false;
  for (const auto& e : read_jsonl(client_log_)) {
    const auto* stage = e.find("stage");
    const auto* trace = e.find("trace");
    if (stage && stage->string == "salvage" && trace &&
        trace->string == ctx.hex())
      salvage_logged = true;
  }
  EXPECT_TRUE(salvage_logged);
  EXPECT_TRUE(trace_ids(read_jsonl(proxy_log_)).count(ctx.hex()));
}

TEST_F(TelemetryProxyTest, EventsCarryByteCountsAndParseAsJson) {
  net::ProxyServer server(store_with("f", 100000),
                          compress::SelectivePolicy::always());
  obs::EventLog proxy_log;
  proxy_log.open(proxy_log_);
  server.set_event_log(&proxy_log);
  net::DownloadStats stats;
  net::download(server.port(), "f", "selective", &stats);
  server.stop();

  bool saw_stream = false;
  for (const auto& e : read_jsonl(proxy_log_)) {  // every line parsed
    ASSERT_TRUE(e.is_object());
    EXPECT_NE(e.find("ts_ms"), nullptr);
    if (e.find("stage")->string == "stream") {
      saw_stream = true;
      EXPECT_EQ(e.number_or("bytes_raw", -1),
                static_cast<double>(data_.size()));
      EXPECT_EQ(e.number_or("bytes_wire", -1),
                static_cast<double>(stats.bytes_on_wire));
      EXPECT_GT(e.number_or("blocks", 0), 0.0);
      EXPECT_GT(e.number_or("j_est", 0.0), 0.0);  // ledgered energy
    }
  }
  EXPECT_TRUE(saw_stream);
}

// ------------------------------------------------------ STATS surface

TEST_F(TelemetryProxyTest, StatsVerbServesAllThreeFormats) {
  net::ProxyServer server(store_with("f", 80000),
                          compress::SelectivePolicy::always());
  for (int i = 0; i < 3; ++i) net::download(server.port(), "f", "raw");
  EXPECT_ANY_THROW(net::download(server.port(), "missing", "raw"));

  const std::string text = net::fetch_stats(server.port(), "text");
  EXPECT_NE(text.find("requests_total"), std::string::npos);
  EXPECT_NE(text.find("net.proxy.request_us"), std::string::npos);

  const std::string prom = net::fetch_stats(server.port(), "prom");
  EXPECT_NE(prom.find("# TYPE ecomp_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("ecomp_net_proxy_request_us{quantile=\"0.99\"}"),
            std::string::npos);

  const auto doc = obs::parse_json(net::fetch_stats(server.port(), "json"));
  EXPECT_GE(doc.number_or("requests_total", 0), 4.0);
  EXPECT_GE(doc.number_or("errors_total", 0), 1.0);
  EXPECT_GT(doc.number_or("bytes_sent", 0), 0.0);
  EXPECT_GT(doc.number_or("energy_served_j", 0), 0.0);
  EXPECT_GT(doc.number_or("uptime_s", -1), 0.0);
  const auto* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const auto* req = hists->find("net.proxy.request_us");
  ASSERT_NE(req, nullptr);
  EXPECT_GE(req->number_or("count", 0), 4.0);
  EXPECT_GT(req->number_or("p50", 0), 0.0);
  // Histogram keys arrive sorted (byte-stable rendering).
  std::vector<std::string> names;
  for (const auto& [name, _] : hists->object) names.push_back(name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  server.stop();
}

TEST_F(TelemetryProxyTest, StatsCountsFaultsAndActiveConnections) {
  net::ProxyServer server(store_with("f", 60000),
                          compress::SelectivePolicy::always());
  net::FaultSpec spec;
  spec.kind = net::FaultKind::Drop;
  spec.at_byte = 1000;
  server.set_fault_injector(std::make_shared<net::FaultInjector>(spec, 2));
  for (int i = 0; i < 2; ++i)
    EXPECT_ANY_THROW(net::download(server.port(), "f", "raw"));
  server.set_fault_injector(nullptr);

  const auto doc = obs::parse_json(net::fetch_stats(server.port(), "json"));
  EXPECT_EQ(doc.number_or("faults_injected", -1), 2.0);
  EXPECT_GE(doc.number_or("errors_total", 0), 2.0);
  EXPECT_GE(doc.number_or("connections_total", 0), 3.0);
  server.stop();
}

// ------------------------------------------------------ CLI surface

class StatsCliTest : public TelemetryProxyTest {
 protected:
  int run_cli(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return cli::run(args, out_, err_);
  }
  std::ostringstream out_, err_;
};

TEST_F(StatsCliTest, StatsCommandRendersAndWritesOut) {
  net::ProxyServer server(store_with("f", 50000),
                          compress::SelectivePolicy::always());
  net::download(server.port(), "f", "full");
  const std::string port = std::to_string(server.port());

  ASSERT_EQ(run_cli({"stats", "--port", port}), 0) << err_.str();
  EXPECT_NE(out_.str().find("requests_total"), std::string::npos);

  ASSERT_EQ(run_cli({"stats", "--port", port, "--prom"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("# TYPE ecomp_requests_total"),
            std::string::npos);

  const std::string snap = (dir_ / "snap.json").string();
  ASSERT_EQ(run_cli({"stats", "--port", port, "--json", "--out", snap}), 0)
      << err_.str();
  const auto doc = obs::parse_json(out_.str());
  EXPECT_GE(doc.number_or("requests_total", 0), 1.0);
  // --out mirrors the last snapshot to disk.
  const Bytes raw = cli::read_file(snap);
  const auto filed = obs::parse_json(std::string(raw.begin(), raw.end()));
  EXPECT_GE(filed.number_or("requests_total", 0), 1.0);

  // --watch --count polls N times.
  ASSERT_EQ(run_cli({"stats", "--port", port, "--json", "--watch",
                     "--count", "2", "--interval-ms", "10"}),
            0)
      << err_.str();
  const std::string watched = out_.str();
  EXPECT_EQ(std::count(watched.begin(), watched.end(), '\n'), 2);
  server.stop();
}

TEST_F(StatsCliTest, StatsErrorsAreExitTwo) {
  EXPECT_EQ(run_cli({"stats"}), 2);  // no --port
  EXPECT_NE(err_.str().find("stats needs --port"), std::string::npos);
  EXPECT_EQ(run_cli({"stats", "--port", "1", "--json", "--prom"}), 2);
}

TEST_F(StatsCliTest, UnwritableTelemetryPathsAreExitTwo) {
  const std::string bad = (dir_ / "nope" / "deep" / "x.jsonl").string();
  EXPECT_EQ(run_cli({"stats", "--port", "1", "--events", bad}), 2);
  EXPECT_NE(err_.str().find("cannot open for writing"), std::string::npos);
  EXPECT_EQ(run_cli({"stats", "--port", "1", "--out", bad}), 2);
  EXPECT_EQ(run_cli({"energy", "--json", "--metrics", bad, "ignored"}), 2);
}

TEST_F(StatsCliTest, EnergyJsonStillWellFormedViaSharedWriter) {
  const std::string in = (dir_ / "in.bin").string();
  cli::write_file(in, workload::generate_kind(workload::FileKind::Log,
                                              120000, 3, 0.3));
  ASSERT_EQ(run_cli({"energy", "--json", in}), 0) << err_.str();
  const auto doc = obs::parse_json(out_.str());
  EXPECT_TRUE(doc.find("scenario") != nullptr);
  EXPECT_GT(doc.number_or("raw_energy_j", 0), 0.0);
  ASSERT_NE(doc.find("ledger"), nullptr);
}

TEST_F(StatsCliTest, DownloadPrintsTraceAndLogsEvents) {
  net::ProxyServer server(store_with("f", 70000),
                          compress::SelectivePolicy::always());
  obs::EventLog proxy_log;
  proxy_log.open(proxy_log_);
  server.set_event_log(&proxy_log);
  obs::EventLog::global().close();  // the CLI owns the client log here

  const std::string dest = (dir_ / "dl.bin").string();
  const std::string cli_log = (dir_ / "cli.jsonl").string();
  ASSERT_EQ(run_cli({"download", "--port", std::to_string(server.port()),
                     "-m", "full", "--events", cli_log, "f", dest}),
            0)
      << err_.str();
  EXPECT_EQ(cli::read_file(dest), data_);
  const std::string text = out_.str();
  const auto pos = text.find("trace: ");
  ASSERT_NE(pos, std::string::npos) << text;
  const std::string hex = text.substr(pos + 7, 16);
  EXPECT_TRUE(obs::TraceContext::from_hex(hex).valid()) << hex;
  server.stop();
  EXPECT_TRUE(trace_ids(read_jsonl(cli_log)).count(hex));
  EXPECT_TRUE(trace_ids(read_jsonl(proxy_log_)).count(hex));
}

// ------------------------------------------------------ acceptance

TEST_F(TelemetryProxyTest, FiftyRequestLoadQuantilesMatchGroundTruth) {
  // 50 fault-injected requests with per-request injected delays chosen
  // to dominate loopback noise; `ecomp stats --json` must report
  // request-latency quantiles within the histogram's bucket error of
  // ground-truth per-request timings, and every request's trace id
  // must appear in both event logs.
  net::ProxyServer server(store_with("f", 100000),
                          compress::SelectivePolicy::always());
  obs::EventLog proxy_log;
  proxy_log.open(proxy_log_);
  server.set_event_log(&proxy_log);

  constexpr int kRequests = 50;
  std::vector<double> wall_us;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kRequests; ++i) {
    net::FaultSpec spec;
    spec.kind = net::FaultKind::Delay;
    spec.at_byte = 5000;
    spec.delay_ms = static_cast<std::uint32_t>(20 + 2 * i);  // 20..118 ms
    server.set_fault_injector(std::make_shared<net::FaultInjector>(spec, 1));
    const auto t0 = std::chrono::steady_clock::now();
    net::DownloadStats stats;
    const Bytes got = net::download(server.port(), "f", "raw", &stats);
    const auto t1 = std::chrono::steady_clock::now();
    ASSERT_EQ(got, data_);
    ASSERT_NE(stats.trace_id, 0u);
    ids.push_back(stats.trace_id);
    wall_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  server.set_fault_injector(nullptr);

  // Live snapshot through the real CLI against the running proxy.
  std::ostringstream out, err;
  ASSERT_EQ(cli::run({"stats", "--json", "--port",
                      std::to_string(server.port())},
                     out, err),
            0)
      << err.str();
  const auto doc = obs::parse_json(out.str());
  const auto* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const auto* req = hists->find("net.proxy.request_us");
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->number_or("count", 0), static_cast<double>(kRequests));

  // Quantiles within bucket error of ground truth (client wall times
  // run a hair over the proxy's own; the absolute slack covers that
  // transport overhead plus scheduler noise).
  for (const auto& [key, q] :
       std::vector<std::pair<std::string, double>>{{"p50", 0.5},
                                                   {"p90", 0.9},
                                                   {"p99", 0.99}}) {
    const double est = req->number_or(key, -1.0);
    const double truth = true_quantile(wall_us, q);
    EXPECT_NEAR(est, truth,
                truth * SlidingHistogram::kMaxRelativeError + 20000.0)
        << key;
  }

  server.stop();
  const auto client_ids = trace_ids(read_jsonl(client_log_));
  const auto proxy_ids = trace_ids(read_jsonl(proxy_log_));
  for (const std::uint64_t id : ids) {
    obs::TraceContext ctx;
    ctx.trace_id = id;
    ASSERT_TRUE(client_ids.count(ctx.hex())) << ctx.hex();
    ASSERT_TRUE(proxy_ids.count(ctx.hex())) << ctx.hex();
  }
}

// ------------------------------------------------------ renderers

TEST(StatsExport, RenderersCoverAllFields) {
  obs::StatsSnapshot s;
  s.uptime_s = 12.5;
  s.connections_total = 7;
  s.requests_total = 6;
  s.errors_total = 1;
  s.bytes_sent = 1000;
  s.energy_served_j = 0.25;
  s.counters.push_back({"net.sends", 42});
  obs::HistStat h;
  h.name = "net.proxy.request_us";
  h.snap.total_count = 6;
  h.snap.p50 = 100.0;
  h.snap.p99 = 900.0;
  s.histograms.push_back(h);

  const auto doc = obs::parse_json(obs::stats_to_json(s));
  EXPECT_EQ(doc.number_or("connections_total", 0), 7.0);
  EXPECT_EQ(doc.find("counters")->number_or("net.sends", 0), 42.0);

  const std::string text = obs::stats_to_text(s);
  EXPECT_NE(text.find("uptime_s"), std::string::npos);
  EXPECT_NE(text.find("counter net.sends 42"), std::string::npos);

  const std::string prom = obs::stats_to_prometheus(s);
  EXPECT_NE(prom.find("ecomp_net_sends 42"), std::string::npos);
  EXPECT_NE(prom.find("ecomp_net_proxy_request_us{quantile=\"0.5\"} 100"),
            std::string::npos);
  EXPECT_NE(prom.find("ecomp_net_proxy_request_us_count 6"),
            std::string::npos);

  EXPECT_EQ(obs::parse_stats_format("json"), obs::StatsFormat::Json);
  EXPECT_EQ(obs::parse_stats_format("prom"), obs::StatsFormat::Prometheus);
  EXPECT_EQ(obs::parse_stats_format("anything"), obs::StatsFormat::Text);
}

// ------------------------------------------- Prometheus exposition

/// promtool-style structural validation of a text exposition: every
/// family has exactly one # HELP and one # TYPE (before its samples),
/// sample names are legal and belong to the family that announced
/// them (summaries also own _count/_sum), and every value parses.
void validate_prometheus(const std::string& text) {
  const auto name_ok = [](const std::string& n) {
    if (n.empty()) return false;
    const auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
             c == '_' || c == ':';
    };
    if (!head(n[0])) return false;
    for (const char c : n)
      if (!head(c) && !(c >= '0' && c <= '9')) return false;
    return true;
  };
  std::map<std::string, int> help_count, type_count;
  std::set<std::string> families_with_samples;
  std::string current;  // family most recently announced
  std::istringstream in(text);
  std::string line;
  int samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_type = line[2] == 'T';
      std::istringstream meta(line.substr(7));
      std::string family, rest;
      meta >> family >> rest;
      EXPECT_TRUE(name_ok(family)) << line;
      EXPECT_FALSE(rest.empty()) << "metadata without text: " << line;
      if (is_type) {
        EXPECT_TRUE(rest == "counter" || rest == "gauge" ||
                    rest == "summary" || rest == "histogram" ||
                    rest == "untyped")
            << line;
        EXPECT_EQ(++type_count[family], 1) << "duplicate TYPE " << family;
      } else {
        EXPECT_EQ(++help_count[family], 1) << "duplicate HELP " << family;
      }
      EXPECT_FALSE(families_with_samples.count(family))
          << "metadata after samples: " << family;
      current = family;
      continue;
    }
    // Sample line: name[{labels}] value
    const std::size_t cut = line.find_first_of("{ ");
    ASSERT_NE(cut, std::string::npos) << line;
    const std::string name = line.substr(0, cut);
    EXPECT_TRUE(name_ok(name)) << line;
    EXPECT_TRUE(name == current || name == current + "_count" ||
                name == current + "_sum")
        << "sample " << name << " outside family " << current;
    families_with_samples.insert(current);
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::size_t parsed = 0;
    const double v = std::stod(line.substr(sp + 1), &parsed);
    EXPECT_EQ(parsed, line.size() - sp - 1) << line;
    (void)v;
    ++samples;
  }
  EXPECT_GT(samples, 0);
  // Families announce both metadata lines or neither.
  for (const auto& [family, n] : help_count)
    EXPECT_EQ(type_count[family], n) << family << " missing TYPE";
  for (const auto& [family, n] : type_count)
    EXPECT_EQ(help_count[family], n) << family << " missing HELP";
}

/// A fully-populated snapshot with adversarial names: a registry
/// counter and a histogram that both sanitize into already-claimed
/// family names (must be dropped, not duplicated), and an alloc
/// component whose label value needs escaping.
obs::StatsSnapshot prom_snapshot() {
  obs::StatsSnapshot s;
  // Pinned provenance: the golden file must not depend on the machine
  // or commit that happens to run the test.
  s.provenance.git_sha = "deadbeefcafe";
  s.provenance.build_type = "Release";
  s.provenance.hostname = "testhost";
  s.provenance.obs_enabled = true;
  s.uptime_s = 12.5;
  s.connections_active = 1;
  s.connections_total = 7;
  s.requests_total = 6;
  s.errors_total = 1;
  s.faults_injected = 2;
  s.bytes_sent = 4096;
  s.bytes_recv = 512;
  s.energy_served_j = 0.25;
  s.counters.push_back({"net.round_trips", 6});
  s.counters.push_back({"requests.total", 999});  // collides: dropped
  obs::HistStat h;
  h.name = "net.proxy.request_us";
  h.snap.window_count = 6;
  h.snap.rate_per_s = 0.5;
  h.snap.p50 = 100.0;
  h.snap.p90 = 400.0;
  h.snap.p99 = 900.0;
  h.snap.p999 = 950.0;
  h.snap.total_count = 6;
  h.snap.total_sum = 2100.0;
  h.snap.from_window = true;
  s.histograms.push_back(h);
  obs::HistStat clash = h;
  clash.name = "net/proxy/request-us";  // sanitizes into the same family
  s.histograms.push_back(clash);
  s.prof.present = true;
  s.prof.rss_peak_kb = 20480;
  s.prof.samples_lifetime = 1234;
  s.prof.sampler_active = false;
  s.prof.flight_recorded = 42;
  s.prof.alloc.push_back({"lz77.scratch", 1 << 20, 3, 1 << 19});
  s.prof.alloc.push_back({"odd \"name\"\\", 100, 1, 100});
  return s;
}

TEST(StatsExport, PrometheusExpositionValidates) {
  const std::string prom = obs::stats_to_prometheus(prom_snapshot());
  validate_prometheus(prom);
  // Sanitized-name collisions dropped the later claimants entirely.
  EXPECT_EQ(prom.find("ecomp_requests_total 999"), std::string::npos);
  EXPECT_NE(prom.find("ecomp_requests_total 6"), std::string::npos);
  // The PROF section rides along, with escaped label values.
  EXPECT_NE(prom.find("ecomp_prof_rss_peak_kb 20480"), std::string::npos);
  EXPECT_NE(prom.find("component=\"odd \\\"name\\\"\\\\\""),
            std::string::npos);
}

TEST(StatsExport, PrometheusGoldenFile) {
  const std::string prom = obs::stats_to_prometheus(prom_snapshot());
  const fs::path golden = fs::path(ECOMP_TEST_DATA_DIR) / "stats.prom";
  if (std::getenv("ECOMP_REGEN_GOLDEN")) {
    std::ofstream out(golden, std::ios::binary);
    out << prom;
    ASSERT_TRUE(out.good()) << golden;
    GTEST_SKIP() << "regenerated " << golden;
  }
  std::ifstream in(golden, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << golden << " missing; run with ECOMP_REGEN_GOLDEN=1 to create";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(prom, want.str())
      << "rendering drifted from the committed golden; if intentional, "
         "regenerate with ECOMP_REGEN_GOLDEN=1 and commit the diff";
}

TEST(StatsExport, LiveProxyPrometheusValidates) {
  net::FileStore store;
  store.put("f", workload::generate_kind(workload::FileKind::Xml, 60000,
                                         /*seed=*/7, 0.3));
  net::ProxyServer server(store, compress::SelectivePolicy::always());
  for (int i = 0; i < 2; ++i) net::download(server.port(), "f", "raw");
  const std::string prom = net::fetch_stats(server.port(), "prom");
  server.stop();
  validate_prometheus(prom);
  EXPECT_NE(prom.find("# TYPE ecomp_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE ecomp_net_proxy_request_us summary"),
            std::string::npos);
}

TEST(JsonWriter, NestedStructuresAndEscapes) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("s").value(std::string_view("a\"b\n"));
  w.key("n").value(3.5);
  w.key("arr").begin_array().value(1).value(true).end_array();
  w.key("o").begin_object().key("k").value(std::uint64_t{9}).end_object();
  w.end_object();
  const auto doc = obs::parse_json(w.str());
  EXPECT_EQ(doc.find("s")->string, "a\"b\n");
  EXPECT_EQ(doc.number_or("n", 0), 3.5);
  EXPECT_EQ(doc.find("arr")->array.size(), 2u);
  EXPECT_EQ(doc.find("o")->number_or("k", 0), 9.0);
}

}  // namespace
}  // namespace ecomp

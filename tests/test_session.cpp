// Browsing-session simulation and battery lifetime projection.
#include <gtest/gtest.h>

#include "core/session.h"
#include "util/bytes.h"

namespace ecomp::core {
namespace {

SessionSimulator make_sim() {
  return SessionSimulator(TransferPlanner(EnergyModel::paper_11mbps()),
                          sim::TransferSimulator{}, SessionConfig{});
}

std::vector<SessionRequest> mixed_requests() {
  // A browsing mix: pages (compressible), images (not), one big doc.
  return {
      {"page1.html", 0.08, {{"deflate", 4.0}, {"lzw", 2.5}, {"bwt", 4.5}}},
      {"photo.jpg", 0.9, {{"deflate", 1.02}, {"lzw", 0.85}, {"bwt", 1.03}}},
      {"page2.html", 0.12, {{"deflate", 3.5}, {"lzw", 2.2}, {"bwt", 4.0}}},
      {"spec.pdf", 2.5, {{"deflate", 2.8}, {"lzw", 2.0}, {"bwt", 3.0}}},
      {"tiny.txt", 0.002, {{"deflate", 2.0}, {"lzw", 1.5}, {"bwt", 1.8}}},
  };
}

TEST(Session, PlannedBeatsRawAndNaiveGzip) {
  const auto sim = make_sim();
  const auto reqs = mixed_requests();
  const auto raw = sim.run(reqs, SessionPolicy::Raw);
  const auto gz = sim.run(reqs, SessionPolicy::AlwaysDeflate);
  const auto planned = sim.run(reqs, SessionPolicy::Planned);
  // Naive gzip already beats raw on this mix…
  EXPECT_LT(gz.total_energy_j(), raw.total_energy_j());
  // …and the planner beats both (it skips the jpeg and the tiny file).
  EXPECT_LT(planned.total_energy_j(), gz.total_energy_j());
  EXPECT_EQ(planned.requests, reqs.size());
}

TEST(Session, AllIncompressibleMakesGzipWorseThanRaw) {
  const auto sim = make_sim();
  std::vector<SessionRequest> reqs = {
      {"a.jpg", 1.0, {{"deflate", 1.01}}},
      {"b.mp3", 2.0, {{"deflate", 1.02}}},
  };
  const auto raw = sim.run(reqs, SessionPolicy::Raw);
  const auto gz = sim.run(reqs, SessionPolicy::AlwaysDeflate);
  const auto planned = sim.run(reqs, SessionPolicy::Planned);
  EXPECT_GT(gz.total_energy_j(), raw.total_energy_j());
  // The planner must fall back to raw (within rounding).
  EXPECT_NEAR(planned.transfer_energy_j, raw.transfer_energy_j,
              0.01 * raw.transfer_energy_j);
}

TEST(Session, ThinkTimeChargedAtIdlePower) {
  SessionConfig cfg;
  cfg.think_time_s = 10.0;
  cfg.power_saving_idle = true;
  const SessionSimulator sim(TransferPlanner(EnergyModel::paper_11mbps()),
                             sim::TransferSimulator{}, cfg);
  const auto rep = sim.run({{"x", 0.1, {{"deflate", 2.0}}}},
                           SessionPolicy::Raw);
  EXPECT_NEAR(rep.think_energy_j, 10.0 * 0.55, 1e-9);  // 110 mA @ 5 V
}

TEST(Session, PowerSavingIdleSavesThinkEnergy) {
  SessionConfig on;
  on.power_saving_idle = true;
  SessionConfig off;
  off.power_saving_idle = false;
  const TransferPlanner planner{EnergyModel::paper_11mbps()};
  const auto a = SessionSimulator(planner, sim::TransferSimulator{}, on)
                     .run(mixed_requests(), SessionPolicy::Raw);
  const auto b = SessionSimulator(planner, sim::TransferSimulator{}, off)
                     .run(mixed_requests(), SessionPolicy::Raw);
  EXPECT_LT(a.think_energy_j, b.think_energy_j);
}

TEST(Session, RejectsNegativeSize) {
  const auto sim = make_sim();
  EXPECT_THROW(sim.run({{"bad", -1.0, {}}}, SessionPolicy::Raw), Error);
}

TEST(Battery, CapacityAndLifetimeArithmetic) {
  const sim::BatteryModel b = sim::BatteryModel::ipaq();
  // 1400 mAh × 5 V × 0.9 usable = 22.68 kJ.
  EXPECT_NEAR(b.capacity_j(), 22680.0, 1.0);
  EXPECT_NEAR(b.charges_per_task(22.68), 1000.0, 0.1);
  EXPECT_EQ(b.charges_per_task(0.0), 0.0);
}

TEST(Battery, SessionsPerChargeOrdersLikeEnergy) {
  const auto sim = make_sim();
  const auto reqs = mixed_requests();
  const sim::BatteryModel battery;
  const double raw =
      sim.run(reqs, SessionPolicy::Raw).sessions_per_charge(battery);
  const double planned =
      sim.run(reqs, SessionPolicy::Planned).sessions_per_charge(battery);
  EXPECT_GT(planned, raw);
}

TEST(Session, PolicyNames) {
  EXPECT_STREQ(to_string(SessionPolicy::Raw), "raw");
  EXPECT_STREQ(to_string(SessionPolicy::AlwaysDeflate), "always-gzip");
  EXPECT_STREQ(to_string(SessionPolicy::Planned), "planned");
}

}  // namespace
}  // namespace ecomp::core

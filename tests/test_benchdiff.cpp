// benchdiff: the JSON reader it is built on, the diff/gating semantics,
// and the CLI contract (golden output fragments + exit codes) that
// scripts/bench_gate.sh relies on.
#include "obs/benchdiff.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_parse.h"
#include "util/bytes.h"

namespace ecomp::obs {
namespace {

namespace fs = std::filesystem;

// ----------------------------------------------------------- parse_json

TEST(JsonParse, ObjectsPreserveInsertionOrder) {
  const JsonValue doc = parse_json(R"({"zz":1,"aa":2,"mm":{"k":[1,2,3]}})");
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.object.size(), 3u);
  EXPECT_EQ(doc.object[0].first, "zz");
  EXPECT_EQ(doc.object[1].first, "aa");
  EXPECT_EQ(doc.object[2].first, "mm");
  const JsonValue* arr = doc.object[2].second.find("k");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->array[2].number, 3.0);
}

TEST(JsonParse, NumbersBoolsNullsAndEscapes) {
  const JsonValue doc = parse_json(
      R"({"neg":-12.5,"exp":1.5e3,"t":true,"f":false,"n":null,)"
      R"("s":"a\"b\\c\ndA"})");
  EXPECT_DOUBLE_EQ(doc.number_or("neg", 0.0), -12.5);
  EXPECT_DOUBLE_EQ(doc.number_or("exp", 0.0), 1500.0);
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_FALSE(doc.find("f")->boolean);
  EXPECT_EQ(doc.find("n")->kind, JsonValue::Kind::Null);
  EXPECT_EQ(doc.find("s")->string, "a\"b\\c\ndA");
  EXPECT_DOUBLE_EQ(doc.number_or("absent", 7.0), 7.0);
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(JsonParse, MalformedInputThrowsWithOffset) {
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("{\"a\":}"), Error);
  EXPECT_THROW(parse_json("[1,2,]"), Error);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), Error);
  EXPECT_THROW(parse_json("'single'"), Error);
  try {
    parse_json("{\"a\":nope}");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

// ------------------------------------------------------------- fixtures

/// Two temp sidecar directories (baseline/current) torn down per test.
class BenchDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::temp_directory_path() /
            ("ecomp_benchdiff_" + std::to_string(::getpid()) + "_" +
             info->name());
    fs::remove_all(root_);
    base_ = root_ / "baseline";
    cur_ = root_ / "current";
    fs::create_directories(base_);
    fs::create_directories(cur_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static void write_file(const fs::path& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good()) << path;
  }

  /// Schema-2 sidecar with one gated time, one ungated count, and one
  /// energy ledger scenario ("seq") with radio/cpu components.
  static std::string sidecar(const std::string& bench, double total_s,
                             double files, double radio_j, double cpu_j) {
    std::ostringstream os;
    os << "{\"bench\":\"" << bench << "\",\"schema\":2,"
       << "\"provenance\":{\"git_sha\":\"test\",\"timestamp\":\"t\"},"
       << "\"headline\":{\"total_s\":" << total_s << ",\"files\":" << files
       << "},\"energy\":{\"seq\":{\"total_energy_j\":" << (radio_j + cpu_j)
       << ",\"total_time_s\":" << total_s << ",\"components\":{"
       << "\"cpu\":{\"energy_j\":" << cpu_j << ",\"time_s\":1.0},"
       << "\"radio\":{\"energy_j\":" << radio_j << ",\"time_s\":2.0}}}}}";
    return os.str();
  }

  int run(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return benchdiff_main(args, out_, err_);
  }
  std::string dirs_baseline() const { return base_.string(); }
  std::string dirs_current() const { return cur_.string(); }

  fs::path root_, base_, cur_;
  std::ostringstream out_, err_;
};

// --------------------------------------------------------- exit codes

TEST_F(BenchDiffTest, IdenticalSidecarsPass) {
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  write_file(cur_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0);
  EXPECT_NE(out_.str().find("0 regressed, 0 improved, 0 missing"),
            std::string::npos)
      << out_.str();
}

TEST_F(BenchDiffTest, ImprovementPassesAndIsLabelled) {
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  write_file(cur_ / "BENCH_fig.json", sidecar("fig", 2.0, 5, 3.0, 0.5));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0);
  EXPECT_NE(out_.str().find("improved"), std::string::npos) << out_.str();
  EXPECT_EQ(out_.str().find("REGRESSION"), std::string::npos) << out_.str();
}

TEST_F(BenchDiffTest, WithinThresholdPasses) {
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  // +2% on every gated metric, inside the default 5%.
  write_file(cur_ / "BENCH_fig.json", sidecar("fig", 3.06, 5, 4.08, 1.02));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0);
  EXPECT_EQ(out_.str().find("REGRESSION"), std::string::npos) << out_.str();
}

TEST_F(BenchDiffTest, RegressionBeyondThresholdFails) {
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  write_file(cur_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.6, 1.0));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 2);
  const std::string table = out_.str();
  EXPECT_NE(table.find("REGRESSION"), std::string::npos) << table;
  EXPECT_NE(table.find("energy.seq.radio"), std::string::npos) << table;
  // The ledger total moved too (+12%), so both lines gate.
  EXPECT_NE(table.find("energy.seq.total"), std::string::npos) << table;
}

TEST_F(BenchDiffTest, ThresholdFlagLoosensTheGate) {
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  write_file(cur_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.6, 1.0));
  EXPECT_EQ(run({"--threshold", "20", dirs_baseline(), dirs_current()}), 0);
}

TEST_F(BenchDiffTest, UngatedMetricsNeverFail) {
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  // "files" doubles but is a count (no _s/_j suffix): report, don't gate.
  write_file(cur_ / "BENCH_fig.json", sidecar("fig", 3.0, 10, 4.0, 1.0));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0);
  EXPECT_NE(out_.str().find("headline.files"), std::string::npos);
}

TEST_F(BenchDiffTest, MissingBenchmarkExitsThree) {
  write_file(base_ / "BENCH_a.json", sidecar("a", 3.0, 5, 4.0, 1.0));
  write_file(base_ / "BENCH_b.json", sidecar("b", 1.0, 1, 1.0, 0.1));
  write_file(cur_ / "BENCH_a.json", sidecar("a", 3.0, 5, 4.0, 1.0));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 3);
  EXPECT_NE(out_.str().find("MISSING: b"), std::string::npos) << out_.str();
}

TEST_F(BenchDiffTest, MissingMetricExitsThreeAndNewMetricsAreReported) {
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  // Current run renamed the scenario: old metrics missing, new ones added.
  std::string renamed = sidecar("fig", 3.0, 5, 4.0, 1.0);
  const auto pos = renamed.find("\"seq\"");
  ASSERT_NE(pos, std::string::npos);
  renamed.replace(pos, 5, "\"int\"");
  write_file(cur_ / "BENCH_fig.json", renamed);
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 3);
  EXPECT_NE(out_.str().find("MISSING: fig.energy.seq.total"),
            std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("new (not in baseline): fig.energy.int.total"),
            std::string::npos)
      << out_.str();
}

TEST_F(BenchDiffTest, UsageErrorsExitOne) {
  EXPECT_EQ(run({}), 1);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
  EXPECT_EQ(run({dirs_baseline()}), 1);
  EXPECT_EQ(run({"--threshold", "nope", dirs_baseline(), dirs_current()}), 1);
  EXPECT_EQ(run({"--threshold", "-3", dirs_baseline(), dirs_current()}), 1);
  EXPECT_EQ(run({"--bogus", dirs_baseline(), dirs_current()}), 1);
  EXPECT_EQ(run({dirs_baseline(), (root_ / "no_such_dir").string()}), 1);
}

TEST_F(BenchDiffTest, JsonOutputParsesAndFlagsTheRegression) {
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  write_file(cur_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.6, 1.0));
  EXPECT_EQ(run({"--json", dirs_baseline(), dirs_current()}), 2);
  const JsonValue doc = parse_json(out_.str());
  EXPECT_DOUBLE_EQ(doc.number_or("threshold_pct", 0.0), 5.0);
  const JsonValue* deltas = doc.find("deltas");
  ASSERT_NE(deltas, nullptr);
  bool saw_regression = false;
  for (const auto& d : deltas->array) {
    const JsonValue* metric = d.find("metric");
    ASSERT_NE(metric, nullptr);
    if (metric->string == "energy.seq.radio") {
      EXPECT_TRUE(d.find("regressed")->boolean);
      EXPECT_NEAR(d.number_or("delta_pct", 0.0), 15.0, 1e-9);
      saw_regression = true;
    }
  }
  EXPECT_TRUE(saw_regression);
}

TEST_F(BenchDiffTest, TraceArtifactsAndForeignFilesAreIgnored) {
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  write_file(cur_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  write_file(cur_ / "BENCH_fig.trace.json", "{not json at all");
  write_file(cur_ / "notes.txt", "hello");
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0);
}

// ----------------------------------------- schema 3: prof section

/// Schema-3 sidecar: minimal headline plus a prof section with one
/// gated _self_pct key and one ungated raw counter.
std::string sidecar_prof(const std::string& bench, double match_self_pct,
                         double samples) {
  std::ostringstream os;
  os << "{\"bench\":\"" << bench << "\",\"schema\":3,"
     << "\"provenance\":{\"git_sha\":\"test\",\"timestamp\":\"t\"},"
     << "\"headline\":{\"total_s\":1.0},"
     << "\"prof\":{\"deflate.lz77.match_self_pct\":" << match_self_pct
     << ",\"samples\":" << samples << "}}";
  return os.str();
}

TEST_F(BenchDiffTest, SelfPctGatesOnAbsolutePointsNotRelative) {
  // 40% -> 49% of codec self time: +22.5% relative (over any percent
  // threshold) but only +9 points — inside kSelfPctPoints, so it
  // passes. The same move judged relatively would have failed.
  write_file(base_ / "BENCH_p.json", sidecar_prof("p", 40.0, 100));
  write_file(cur_ / "BENCH_p.json", sidecar_prof("p", 49.0, 100));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0) << out_.str();
  EXPECT_NE(out_.str().find("ok (abs)"), std::string::npos) << out_.str();
  EXPECT_NE(out_.str().find("prof.deflate.lz77.match_self_pct"),
            std::string::npos)
      << out_.str();
}

TEST_F(BenchDiffTest, SelfPctBeyondAbsoluteGateFails) {
  write_file(base_ / "BENCH_p.json", sidecar_prof("p", 40.0, 100));
  write_file(cur_ / "BENCH_p.json", sidecar_prof("p", 51.0, 100));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 2) << out_.str();
  EXPECT_NE(out_.str().find("REGRESSION"), std::string::npos)
      << out_.str();
  // The absolute gate ignores --threshold: still 10 points at 50%.
  EXPECT_EQ(run({"--threshold", "50", dirs_baseline(), dirs_current()}),
            2)
      << out_.str();
}

TEST_F(BenchDiffTest, NonSelfPctProfKeysAreReportedNotGated) {
  write_file(base_ / "BENCH_p.json", sidecar_prof("p", 40.0, 100));
  write_file(cur_ / "BENCH_p.json", sidecar_prof("p", 40.0, 900));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0) << out_.str();
  EXPECT_NE(out_.str().find("prof.samples"), std::string::npos)
      << out_.str();
}

TEST_F(BenchDiffTest, JsonOutputMarksAbsoluteGating) {
  write_file(base_ / "BENCH_p.json", sidecar_prof("p", 40.0, 100));
  write_file(cur_ / "BENCH_p.json", sidecar_prof("p", 51.0, 100));
  EXPECT_EQ(run({"--json", dirs_baseline(), dirs_current()}), 2);
  const JsonValue doc = parse_json(out_.str());
  bool saw = false;
  for (const auto& d : doc.find("deltas")->array) {
    if (d.find("metric")->string != "prof.deflate.lz77.match_self_pct")
      continue;
    saw = true;
    EXPECT_TRUE(d.find("absolute")->boolean);
    EXPECT_TRUE(d.find("regressed")->boolean);
  }
  EXPECT_TRUE(saw);
}

TEST_F(BenchDiffTest, SchemaTwoAndThreeMixDiffsCleanly) {
  // A schema-2 baseline diffed against a schema-3 current run: the
  // shared metrics compare, the new prof.* keys show up as added.
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  std::string cur = sidecar("fig", 3.0, 5, 4.0, 1.0);
  const auto pos = cur.find("\"schema\":2");
  ASSERT_NE(pos, std::string::npos);
  cur.replace(pos, 10, "\"schema\":3");
  cur.insert(cur.size() - 1, ",\"prof\":{\"deflate.crc32_self_pct\":5.0}");
  write_file(cur_ / "BENCH_fig.json", cur);
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0) << out_.str();
  EXPECT_NE(
      out_.str().find(
          "new (not in baseline): fig.prof.deflate.crc32_self_pct"),
      std::string::npos)
      << out_.str();
}

TEST_F(BenchDiffTest, UnknownSchemaIsRejectedLoudly) {
  std::string bad = sidecar("fig", 3.0, 5, 4.0, 1.0);
  const auto pos = bad.find("\"schema\":2");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 10, "\"schema\":5");
  write_file(base_ / "BENCH_fig.json", sidecar("fig", 3.0, 5, 4.0, 1.0));
  write_file(cur_ / "BENCH_fig.json", bad);
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 1);
  EXPECT_NE(err_.str().find("unsupported schema"), std::string::npos)
      << err_.str();

  // Same for a sidecar with no schema field at all.
  std::string none = sidecar("fig", 3.0, 5, 4.0, 1.0);
  const auto pos2 = none.find("\"schema\":2,");
  ASSERT_NE(pos2, std::string::npos);
  none.erase(pos2, 11);
  write_file(cur_ / "BENCH_fig.json", none);
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 1);
  EXPECT_NE(err_.str().find("unsupported schema"), std::string::npos)
      << err_.str();
}

// ------------------------------------------- required-speedup (_mb_s)

namespace {

/// Schema-4 sidecar with one throughput key, one gated time, and SIMD
/// provenance fields.
std::string rate_sidecar(const std::string& bench, double mb_s,
                         const std::string& simd_level,
                         const std::string& cpu_flags) {
  std::ostringstream os;
  os << "{\"bench\":\"" << bench << "\",\"schema\":4,"
     << "\"provenance\":{\"git_sha\":\"test\",\"timestamp\":\"t\","
     << "\"simd_level\":\"" << simd_level << "\",\"cpu_flags\":\""
     << cpu_flags << "\"},"
     << "\"headline\":{\"deflate.decode_mb_s\":" << mb_s
     << ",\"total_s\":1.0},\"energy\":{}}";
  return os.str();
}

}  // namespace

TEST_F(BenchDiffTest, ThroughputWithinMinSpeedupPasses) {
  write_file(base_ / "BENCH_tp.json", rate_sidecar("tp", 100.0, "avx2", "x"));
  write_file(cur_ / "BENCH_tp.json", rate_sidecar("tp", 80.0, "avx2", "x"));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0) << out_.str();
  EXPECT_NE(out_.str().find("ok (rate)"), std::string::npos) << out_.str();
}

TEST_F(BenchDiffTest, ThroughputBelowMinSpeedupIsRegression) {
  // 50/100 = 0.5x, under the default 0.7 floor. Note the SLOWDOWN is
  // what fails: the plain percent threshold would not fire on a
  // smaller current value.
  write_file(base_ / "BENCH_tp.json", rate_sidecar("tp", 100.0, "avx2", "x"));
  write_file(cur_ / "BENCH_tp.json", rate_sidecar("tp", 50.0, "avx2", "x"));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 2) << out_.str();
  EXPECT_NE(out_.str().find("REGRESSION"), std::string::npos) << out_.str();
}

TEST_F(BenchDiffTest, ThroughputGainIsLabelledImproved) {
  // Throughput is larger-is-better: a higher current MB/s must read as
  // an improvement, not trip the larger-is-worse headline gate.
  write_file(base_ / "BENCH_tp.json", rate_sidecar("tp", 100.0, "avx2", "x"));
  write_file(cur_ / "BENCH_tp.json", rate_sidecar("tp", 250.0, "avx2", "x"));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0) << out_.str();
  EXPECT_NE(out_.str().find("improved"), std::string::npos) << out_.str();
}

TEST_F(BenchDiffTest, MinSpeedupFlagOverridesDefault) {
  write_file(base_ / "BENCH_tp.json", rate_sidecar("tp", 100.0, "avx2", "x"));
  write_file(cur_ / "BENCH_tp.json", rate_sidecar("tp", 50.0, "avx2", "x"));
  EXPECT_EQ(run({"--min-speedup", "0.4", dirs_baseline(), dirs_current()}),
            0)
      << out_.str();
  EXPECT_EQ(run({"--min-speedup", "0.6", dirs_baseline(), dirs_current()}),
            2)
      << out_.str();
  EXPECT_EQ(run({"--min-speedup", "nope", dirs_baseline(), dirs_current()}),
            1);
}

TEST_F(BenchDiffTest, SimdProvenanceMismatchSkipsRateGatesWithWarning) {
  // A scalar-forced run (or another machine) must not fail the MB/s
  // gate against an AVX2 baseline — the delta measures the machine.
  write_file(base_ / "BENCH_tp.json", rate_sidecar("tp", 100.0, "avx2", "x"));
  write_file(cur_ / "BENCH_tp.json", rate_sidecar("tp", 10.0, "scalar", "x"));
  EXPECT_EQ(run({dirs_baseline(), dirs_current()}), 0) << out_.str();
  EXPECT_NE(out_.str().find("WARNING"), std::string::npos) << out_.str();
  EXPECT_NE(out_.str().find("simd_level"), std::string::npos) << out_.str();
}

TEST_F(BenchDiffTest, RateMetricsInJsonOutput) {
  write_file(base_ / "BENCH_tp.json", rate_sidecar("tp", 100.0, "avx2", "x"));
  write_file(cur_ / "BENCH_tp.json", rate_sidecar("tp", 50.0, "avx2", "x"));
  EXPECT_EQ(run({"--json", "--min-speedup", "0.75", dirs_baseline(),
                 dirs_current()}),
            2);
  EXPECT_NE(out_.str().find("\"rate\":true"), std::string::npos)
      << out_.str();
  EXPECT_NE(out_.str().find("\"min_speedup\":0.75"), std::string::npos)
      << out_.str();
}

TEST(MetricDelta, ZeroBaselineGrowthIsInfinite) {
  MetricDelta d;
  d.baseline = 0.0;
  d.current = 1.0;
  EXPECT_TRUE(std::isinf(d.delta_pct()));
  EXPECT_GT(d.delta_pct(), 0.0);
  d.current = 0.0;
  EXPECT_DOUBLE_EQ(d.delta_pct(), 0.0);
}

}  // namespace
}  // namespace ecomp::obs

// Unit tests for each stage of the BWT pipeline in isolation.
#include "compress/bwt.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ecomp::compress {
namespace {

TEST(BwtForward, KnownExample) {
  // The canonical "banana" example: sorted rotations of "banana" give
  // last column "nnbaaa" with the original at row 3.
  std::uint32_t primary = 0;
  const Bytes last = bwt_forward(as_bytes(std::string("banana")), primary);
  EXPECT_EQ(to_string(last), "nnbaaa");
  EXPECT_EQ(primary, 3u);
}

TEST(BwtInverse, KnownExample) {
  const Bytes orig = bwt_inverse(as_bytes(std::string("nnbaaa")), 3);
  EXPECT_EQ(to_string(orig), "banana");
}

TEST(Bwt, EmptyAndSingle) {
  std::uint32_t primary = 7;
  EXPECT_TRUE(bwt_forward({}, primary).empty());
  EXPECT_TRUE(bwt_inverse({}, 0).empty());
  const Bytes one = bwt_forward(as_bytes(std::string("x")), primary);
  EXPECT_EQ(to_string(one), "x");
  EXPECT_EQ(primary, 0u);
  EXPECT_EQ(to_string(bwt_inverse(one, primary)), "x");
}

TEST(Bwt, PeriodicInput) {
  // Fully periodic strings have duplicate rotations; the inverse must
  // still reconstruct the original.
  for (const std::string s :
       {"abababab", "aaaa", "abcabcabcabc", "xyxyxyxyxyxy"}) {
    std::uint32_t primary = 0;
    const Bytes last = bwt_forward(as_bytes(s), primary);
    EXPECT_EQ(to_string(bwt_inverse(last, primary)), s) << s;
  }
}

TEST(Bwt, InverseRejectsBadPrimary) {
  EXPECT_THROW(bwt_inverse(as_bytes(std::string("abc")), 3), Error);
}

TEST(Bwt, GroupsSimilarContext) {
  // On English-like text the BWT output must have more adjacent equal
  // byte pairs than the input — that's the whole point of the transform.
  std::string text;
  for (int i = 0; i < 500; ++i) text += "the quick brown fox ";
  std::uint32_t primary = 0;
  const Bytes last = bwt_forward(as_bytes(text), primary);
  auto runs = [](ByteSpan b) {
    std::size_t n = 0;
    for (std::size_t i = 1; i < b.size(); ++i)
      if (b[i] == b[i - 1]) ++n;
    return n;
  };
  EXPECT_GT(runs(last), 2 * runs(as_bytes(text)));
}

class BwtRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BwtRoundTrip, RandomBlocks) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.below(20000);
  Bytes block(n);
  // Mix of random and runs to stress the sorter.
  for (std::size_t i = 0; i < n;) {
    if (rng.chance(0.3)) {
      const std::size_t run = std::min(n - i, 1 + rng.below(100));
      const std::uint8_t b = rng.byte();
      for (std::size_t k = 0; k < run; ++k) block[i++] = b;
    } else {
      block[i++] = static_cast<std::uint8_t>(rng.below(8));  // tiny alphabet
    }
  }
  std::uint32_t primary = 0;
  const Bytes last = bwt_forward(block, primary);
  ASSERT_EQ(last.size(), block.size());
  EXPECT_EQ(bwt_inverse(last, primary), block);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BwtRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Rle1, EncodesLongRuns) {
  Bytes input(1000, 'z');
  const Bytes enc = rle1_encode(input);
  EXPECT_LT(enc.size(), 30u);
  EXPECT_EQ(rle1_decode(enc), input);
}

TEST(Rle1, ShortRunsPassThrough) {
  const Bytes input = to_bytes("aabbccaabbcc");
  EXPECT_EQ(rle1_encode(input), input);
  EXPECT_EQ(rle1_decode(input), input);
}

TEST(Rle1, ExactlyFourBytes) {
  // A run of exactly 4 emits 4 copies + count 0.
  const Bytes input = to_bytes("bbbb");
  const Bytes enc = rle1_encode(input);
  EXPECT_EQ(enc.size(), 5u);
  EXPECT_EQ(enc[4], 0);
  EXPECT_EQ(rle1_decode(enc), input);
}

TEST(Rle1, TruncatedCountThrows) {
  EXPECT_THROW(rle1_decode(to_bytes("cccc")), Error);
}

TEST(Rle1, RoundTripsRandom) {
  Rng rng(9);
  Bytes input;
  for (int i = 0; i < 500; ++i)
    input.insert(input.end(), 1 + rng.below(600),
                 static_cast<std::uint8_t>(rng.below(4)));
  EXPECT_EQ(rle1_decode(rle1_encode(input)), input);
}

TEST(Mtf, KnownSequence) {
  // 'a'=97 is at index 97 initially, then moves to front.
  const Bytes out = mtf_encode(to_bytes("aaa"));
  EXPECT_EQ(out, (Bytes{97, 0, 0}));
}

TEST(Mtf, RoundTrips) {
  Rng rng(10);
  Bytes input(5000);
  for (auto& b : input) b = rng.byte();
  EXPECT_EQ(mtf_decode(mtf_encode(input)), input);
}

TEST(Mtf, ProducesSmallValuesOnClusteredInput) {
  Bytes clustered;
  for (int i = 0; i < 100; ++i)
    clustered.insert(clustered.end(), 50, static_cast<std::uint8_t>(i % 3));
  const Bytes out = mtf_encode(clustered);
  std::size_t zeros = 0;
  for (auto b : out)
    if (b == 0) ++zeros;
  EXPECT_GT(zeros, out.size() * 9 / 10);
}

TEST(Zrle, RunLengthsBijectiveBase2) {
  for (std::size_t run : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 100u, 1000u}) {
    Bytes mtf(run, 0);
    const auto syms = zrle_encode(mtf);
    EXPECT_EQ(zrle_decode(syms), mtf) << "run=" << run;
  }
}

TEST(Zrle, MixedContent) {
  const Bytes mtf = {0, 0, 0, 5, 0, 200, 1, 0, 0, 0, 0, 0, 0, 0, 3};
  EXPECT_EQ(zrle_decode(zrle_encode(mtf)), mtf);
}

TEST(Zrle, EndsWithEob) {
  const auto syms = zrle_encode(Bytes{1, 2, 3});
  ASSERT_FALSE(syms.empty());
  EXPECT_EQ(syms.back(), kZrleEob);
}

TEST(Zrle, MissingEobThrows) {
  EXPECT_THROW(zrle_decode({kZrleRunA}), Error);
}

TEST(Zrle, EmptyInput) {
  EXPECT_EQ(zrle_decode(zrle_encode({})), Bytes{});
}

}  // namespace
}  // namespace ecomp::compress

// Simulator layer: power table (Table 1), radio model, timeline
// accounting, and the transfer scenarios' agreement with the paper's
// published equations.
#include <gtest/gtest.h>

#include <limits>

#include "sim/device.h"
#include "sim/timeline.h"
#include "sim/transfer.h"
#include "util/bytes.h"

namespace ecomp::sim {
namespace {

// ------------------------------------------------------------- PowerModel

TEST(PowerModel, Table1Rows) {
  const auto pm = PowerModel::ipaq_wavelan();
  EXPECT_DOUBLE_EQ(pm.current_ma(CpuState::Idle, RadioState::Sleep, false),
                   90);
  EXPECT_DOUBLE_EQ(pm.current_ma(CpuState::Busy, RadioState::Sleep, false),
                   310);
  EXPECT_DOUBLE_EQ(pm.current_ma(CpuState::Idle, RadioState::Idle, false),
                   310);
  EXPECT_DOUBLE_EQ(pm.current_ma(CpuState::Idle, RadioState::Idle, true),
                   110);
  EXPECT_DOUBLE_EQ(pm.current_ma(CpuState::Busy, RadioState::Idle, false),
                   570);
  EXPECT_DOUBLE_EQ(pm.current_ma(CpuState::Busy, RadioState::Idle, true),
                   340);
  EXPECT_DOUBLE_EQ(pm.current_ma(CpuState::Idle, RadioState::Recv, false),
                   430);
  EXPECT_DOUBLE_EQ(pm.current_ma(CpuState::Idle, RadioState::Recv, true),
                   400);
}

TEST(PowerModel, PaperPowerConstants) {
  // pi = 1.55 W, pd = 2.85 W, pd_sleep = 1.70 W at 5 V.
  const auto d = DeviceModel::ipaq_11mbps();
  EXPECT_NEAR(d.gap_power_w(false), 1.55, 1e-9);
  EXPECT_NEAR(d.decompress_power_w(false), 2.85, 1e-9);
  EXPECT_NEAR(d.decompress_power_w(true), 1.70, 1e-9);
}

TEST(PowerModel, ReceiveEnergyMatchesPaperM) {
  // m = 2.486 J/MB (the calibrated receive+copy mix).
  const auto d = DeviceModel::ipaq_11mbps();
  EXPECT_NEAR(d.recv_energy_per_mb(false), 2.486, 0.005);
}

TEST(PowerModel, PowerIsCurrentTimesVoltage) {
  const auto pm = PowerModel::ipaq_wavelan();
  EXPECT_NEAR(pm.power_w(CpuState::Idle, RadioState::Idle, false),
              5.0 * 310 / 1000.0, 1e-12);
}

// ------------------------------------------------------------- RadioModel

TEST(RadioModel, EffectiveRatesMatchPaper) {
  const auto r11 = RadioModel::wavelan_11mbps();
  EXPECT_NEAR(r11.rate_mb_per_s(false), 0.6, 1e-9);
  EXPECT_NEAR(r11.idle_fraction(false), 0.4, 1e-9);
  const auto r2 = RadioModel::wavelan_2mbps();
  EXPECT_NEAR(r2.rate_mb_per_s(false), 0.18, 1e-9);
  EXPECT_NEAR(r2.idle_fraction(false), 0.815, 1e-9);
}

TEST(RadioModel, PowerSavingDeratesRate) {
  const auto r = RadioModel::wavelan_11mbps();
  EXPECT_NEAR(r.rate_mb_per_s(true), 0.45, 1e-9);
  // Slower delivery means a larger idle fraction.
  EXPECT_GT(r.idle_fraction(true), r.idle_fraction(false));
}

// --------------------------------------------------------------- Timeline

TEST(Timeline, EnergyIsPowerTimesTime) {
  Timeline t;
  t.add(2.0, 1.5, "recv");
  t.add(1.0, 0.5, "gap");
  t.add_energy(0.012, "startup");
  EXPECT_NEAR(t.total_time_s(), 3.0, 1e-12);
  EXPECT_NEAR(t.total_energy_j(), 2.0 * 1.5 + 0.5 + 0.012, 1e-12);
}

TEST(Timeline, DropsNonPositiveDurations) {
  Timeline t;
  t.add(0.0, 5.0, "zero");
  t.add(-1.0, 5.0, "negative");
  EXPECT_TRUE(t.phases().empty());
}

TEST(Timeline, PrefixQueries) {
  Timeline t;
  t.add(1.0, 2.0, "recv:first");
  t.add(2.0, 2.0, "recv:rest");
  t.add(1.0, 1.0, "gap:rest");
  EXPECT_NEAR(t.energy_with_prefix("recv"), 6.0, 1e-12);
  EXPECT_NEAR(t.time_with_prefix("recv"), 3.0, 1e-12);
  EXPECT_NEAR(t.energy_with_prefix("gap"), 1.0, 1e-12);
}

TEST(Timeline, AsciiRenderUsesLabelInitials) {
  Timeline t;
  t.add(1.0, 1.0, "recv");
  t.add(0.5, 1.0, "gap");
  const std::string bar = t.render_ascii(0.5);
  EXPECT_EQ(bar, "rrg");
}

TEST(Timeline, AsciiRenderRejectsNonPositiveScale) {
  // Regression: s_per_char <= 0 used to divide by zero; any such scale
  // (zero, negative, NaN) now yields an empty bar instead.
  Timeline t;
  t.add(1.0, 1.0, "recv");
  EXPECT_EQ(t.render_ascii(0.0), "");
  EXPECT_EQ(t.render_ascii(-0.5), "");
  EXPECT_EQ(t.render_ascii(std::numeric_limits<double>::quiet_NaN()), "");
  // An empty timeline renders empty at any scale.
  EXPECT_EQ(Timeline{}.render_ascii(0.5), "");
}

// ------------------------------------------------------ TransferSimulator

TEST(Transfer, UncompressedMatchesPaperEq1) {
  // E = 3.519·s + 0.012 with avg error well under the paper's 7.2%.
  const TransferSimulator sim;
  for (double s : {0.1, 0.5, 1.0, 2.0, 5.0, 9.5}) {
    const auto r = sim.download_uncompressed(s);
    EXPECT_NEAR(r.energy_j, 3.519 * s + 0.012, 0.02 * (3.519 * s + 0.012))
        << "s=" << s;
    EXPECT_NEAR(r.time_s, s / 0.6, 1e-9);
  }
}

TEST(Transfer, SequentialMatchesEq2) {
  const TransferSimulator sim;
  const double s = 2.0, sc = 0.5;
  TransferOptions opt;  // defaults: sequential, no PS
  const auto r = sim.download_compressed(s, sc, "deflate", opt);
  const double td = 0.161 * s + 0.161 * sc + 0.004;
  const double ti = 0.4 / 0.6 * sc;
  const double expect = 2.486 * sc + 0.012 + ti * 1.55 + td * 2.85;
  EXPECT_NEAR(r.energy_j, expect, 0.01 * expect);
}

TEST(Transfer, InterleavedMatchesEq3BothBranches) {
  const TransferSimulator sim;
  TransferOptions opt;
  opt.interleave = true;

  // High factor (F=10): decompression spills past the gaps (ti' <= td).
  {
    const double s = 2.0, sc = 0.2;
    const auto r = sim.download_compressed(s, sc, "deflate", opt);
    const double td = 0.161 * s + 0.161 * sc + 0.004;
    const double ti1 = 0.4 / 0.6 * (0.128 * sc / s);
    const double expect = 2.486 * sc + 0.012 + td * 2.85 + ti1 * 1.55;
    EXPECT_NEAR(r.energy_j, expect, 0.01 * expect);
  }
  // Low factor (F=1.25): gaps exceed decompression (ti' > td).
  {
    const double s = 2.0, sc = 1.6;
    const auto r = sim.download_compressed(s, sc, "deflate", opt);
    const double td = 0.161 * s + 0.161 * sc + 0.004;
    const double ti = 0.4 / 0.6 * sc;
    const double ti1 = 0.4 / 0.6 * (0.128 * sc / s);
    const double ti_rest = ti - ti1;
    const double expect =
        2.486 * sc + 0.012 + td * 2.85 + (ti_rest - td + ti1) * 1.55;
    EXPECT_NEAR(r.energy_j, expect, 0.01 * expect);
  }
}

TEST(Transfer, InterleavingNeverSlowerOrCostlierThanSequential) {
  const TransferSimulator sim;
  for (double f : {1.2, 2.0, 4.0, 8.0, 16.0}) {
    const double s = 3.0, sc = s / f;
    TransferOptions seq;
    TransferOptions inter;
    inter.interleave = true;
    const auto a = sim.download_compressed(s, sc, "deflate", seq);
    const auto b = sim.download_compressed(s, sc, "deflate", inter);
    EXPECT_LE(b.time_s, a.time_s + 1e-9) << "F=" << f;
    EXPECT_LE(b.energy_j, a.energy_j + 1e-9) << "F=" << f;
  }
}

TEST(Transfer, SmallFileHasNoFillableGaps) {
  // s <= block: interleave degenerates to sequential (ti' = 0, Eq. 4).
  const TransferSimulator sim;
  const double s = 0.1, sc = 0.05;
  TransferOptions seq;
  TransferOptions inter;
  inter.interleave = true;
  const auto a = sim.download_compressed(s, sc, "deflate", seq);
  const auto b = sim.download_compressed(s, sc, "deflate", inter);
  EXPECT_NEAR(a.energy_j, b.energy_j, 1e-9);
}

TEST(Transfer, BzipStyleSleepReducesTailEnergy) {
  const TransferSimulator sim;
  const double s = 3.0, sc = 0.6;
  TransferOptions plain;
  TransferOptions sleep;
  sleep.sleep_during_decompress = true;
  const auto a = sim.download_compressed(s, sc, "bwt", plain);
  const auto b = sim.download_compressed(s, sc, "bwt", sleep);
  EXPECT_LT(b.energy_j, a.energy_j);
  EXPECT_NEAR(a.energy_j - b.energy_j,
              a.decompress_time_s * (2.85 - 1.70), 1e-6);
}

TEST(Transfer, OnDemandSequentialAddsProxyWait) {
  const TransferSimulator sim;
  const double s = 2.0, sc = 0.5;
  TransferOptions pre;
  TransferOptions od;
  od.on_demand = OnDemand::Sequential;
  const auto a = sim.download_compressed(s, sc, "deflate", pre);
  const auto b = sim.download_compressed(s, sc, "deflate", od);
  EXPECT_GT(b.time_s, a.time_s);
  EXPECT_GT(b.energy_j, a.energy_j);
  EXPECT_GT(b.wait_time_s, 0.0);
  // The wait is charged at idle power.
  EXPECT_NEAR(b.wait_energy_j, b.wait_time_s * 1.55, 1e-9);
}

TEST(Transfer, OnDemandOverlappedMasksFastCodecs) {
  // gzip on the P-III compresses faster than the link drains, so the
  // only extra cost vs precompressed is the first block's latency (§5).
  const TransferSimulator sim;
  const double s = 4.0, sc = 1.0;
  TransferOptions pre;
  pre.interleave = true;
  TransferOptions od;
  od.interleave = true;
  od.on_demand = OnDemand::Overlapped;
  const auto a = sim.download_compressed(s, sc, "deflate", pre);
  const auto b = sim.download_compressed(s, sc, "deflate", od);
  EXPECT_NEAR(b.time_s - a.time_s, b.wait_time_s, 1e-9);
  EXPECT_LT(b.wait_time_s, 0.1);  // one 128 KB block at proxy speed
}

TEST(Transfer, OnDemandOverlappedThrottlesSlowCodecs) {
  // bzip2 cannot keep up with the link; delivery slows to proxy rate.
  const TransferSimulator sim;
  const double s = 4.0, sc = 1.0;
  TransferOptions pre;
  pre.interleave = true;
  TransferOptions od = pre;
  od.on_demand = OnDemand::Overlapped;
  const auto a = sim.download_compressed(s, sc, "bwt", pre);
  const auto b = sim.download_compressed(s, sc, "bwt", od);
  EXPECT_GT(b.download_time_s, a.download_time_s * 1.5);
}

TEST(Transfer, SelectiveRawBlocksPayOnlyCopy) {
  const TransferSimulator sim;
  std::vector<BlockTransfer> raw_blocks = {{0.128, 0.128, false},
                                           {0.128, 0.128, false}};
  TransferOptions opt;
  opt.interleave = true;
  const auto r = sim.download_selective(raw_blocks, "deflate", opt);
  const auto plain = sim.download_uncompressed(0.256);
  // Nearly identical to a raw download: copy cost only.
  EXPECT_NEAR(r.energy_j, plain.energy_j, 0.05 * plain.energy_j);
}

TEST(Transfer, SelectiveMixedBlocksBetweenRawAndFull) {
  const TransferSimulator sim;
  TransferOptions opt;
  opt.interleave = true;
  std::vector<BlockTransfer> mixed = {
      {0.128, 0.02, true}, {0.128, 0.128, false}, {0.128, 0.03, true}};
  const auto r = sim.download_selective(mixed, "deflate", opt);
  const auto raw = sim.download_uncompressed(0.384);
  EXPECT_LT(r.energy_j, raw.energy_j);
}

TEST(Transfer, PowerSavingTradesRateForGapPower) {
  const TransferSimulator sim;
  const auto off = sim.download_uncompressed(1.0, false);
  const auto on = sim.download_uncompressed(1.0, true);
  EXPECT_GT(on.time_s, off.time_s);       // 25% rate penalty
  EXPECT_LT(on.energy_j, off.energy_j);   // cheaper gaps win
}

TEST(Transfer, NegativeSizeRejected) {
  const TransferSimulator sim;
  EXPECT_THROW(sim.download_uncompressed(-1.0), Error);
  EXPECT_THROW(
      sim.download_compressed(-1.0, 0.5, "deflate", TransferOptions{}),
      Error);
}

TEST(Transfer, UnknownCodecRejected) {
  const TransferSimulator sim;
  EXPECT_THROW(
      sim.download_compressed(1.0, 0.5, "zstd", TransferOptions{}), Error);
}

TEST(Transfer, DeterministicResults) {
  const TransferSimulator sim;
  TransferOptions opt;
  opt.interleave = true;
  const auto a = sim.download_compressed(2.0, 0.5, "deflate", opt);
  const auto b = sim.download_compressed(2.0, 0.5, "deflate", opt);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.time_s, b.time_s);
}

TEST(CpuModelCosts, DecompressMatchesPaperGzipFit) {
  const auto cpu = CpuModel::ipaq();
  // td(sc=0.5, s=2.0) = 0.161·2 + 0.161·0.5 + 0.004
  EXPECT_NEAR(cpu.decompress_time_s("deflate", 0.5, 2.0),
              0.161 * 2.0 + 0.161 * 0.5 + 0.004, 1e-12);
}

TEST(CpuModelCosts, BwtDecodeSlowerThanDeflate) {
  const auto cpu = CpuModel::ipaq();
  const double g = cpu.decompress_time_s("deflate", 0.5, 2.0);
  const double b = cpu.decompress_time_s("bwt", 0.5, 2.0);
  EXPECT_GT(b, 4.0 * g);
}

TEST(ProxyModelCosts, CompressionKeepsUpWithLinkForFastCodecs) {
  // §5: gzip/compress overlap transmission almost completely. Sending
  // 0.6 MB/s of compressed output at factor F consumes 0.6·F MB/s of
  // raw input, so "keeps up at F" means s_per_raw_mb ≤ 1/(0.6·F).
  const auto proxy = ProxyModel::dell_p3();
  const double factor = 3.0, ratio = 1.0 / factor;
  const double budget_s_per_raw_mb = 1.0 / (0.6 * factor);
  for (const char* codec : {"deflate", "lzw"}) {
    const auto c = proxy.compress_cost(codec);
    EXPECT_LT(c.s_per_mb_in + c.s_per_mb_out * ratio, budget_s_per_raw_mb)
        << codec;
  }
  const auto bwt = proxy.compress_cost("bwt");
  EXPECT_GT(bwt.s_per_mb_in + bwt.s_per_mb_out * ratio,
            budget_s_per_raw_mb);  // bzip2 throttles the link
}

}  // namespace
}  // namespace ecomp::sim

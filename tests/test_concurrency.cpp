// Thread-compatibility: const codec methods, the energy model, and the
// simulator must be safely usable from concurrent threads (the Codec
// interface documents this contract).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "compress/codec.h"
#include "core/energy_model.h"
#include "sim/transfer.h"
#include "workload/generator.h"

namespace ecomp {
namespace {

TEST(Concurrency, SharedCodecInstanceAcrossThreads) {
  for (const auto& name : compress::codec_names()) {
    const auto codec = compress::make_codec(name);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        const Bytes input = workload::generate_kind(
            workload::FileKind::TarMixed, 60000,
            static_cast<std::uint64_t>(t) + 1, 0.0);
        for (int rep = 0; rep < 3; ++rep) {
          const Bytes packed = codec->compress(input);
          if (codec->decompress(packed) != input) ++failures;
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0) << name;
  }
}

TEST(Concurrency, SharedEnergyModelAndSimulator) {
  const auto model = core::EnergyModel::paper_11mbps();
  const sim::TransferSimulator simulator;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 1; i < 200; ++i) {
        const double s = 0.01 * (t + 1) * i;
        const double sc = s / 3.0;
        const double est = model.interleaved_energy_j(s, sc);
        sim::TransferOptions opt;
        opt.interleave = true;
        const double meas =
            simulator.download_compressed(s, sc, "deflate", opt).energy_j;
        if (std::abs(est - meas) > 0.05 * meas + 0.05) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Concurrency, DeterministicUnderParallelGeneration) {
  // Workload generation is pure: concurrent calls with the same seed
  // must produce identical bytes.
  const Bytes reference =
      workload::generate_kind(workload::FileKind::Xml, 80000, 7, 0.3);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < 3; ++rep) {
        if (workload::generate_kind(workload::FileKind::Xml, 80000, 7,
                                    0.3) != reference)
          ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ecomp

# Bench targets are declared from the top level so that build/bench/
# contains ONLY the runnable binaries (no CMake bookkeeping files) —
# `for b in build/bench/*; do $b; done` then runs cleanly.
# One binary per paper table/figure (see DESIGN.md's experiment index),
# plus ablations and a google-benchmark codec micro-bench.
set(ECOMP_BENCHES
  bench_table1_power
  bench_table2_factors
  bench_fig1_time
  bench_fig2_energy
  bench_fig3_timeline
  bench_fig5_interleave_time
  bench_fig6_interleave_energy
  bench_fig7_model_error
  bench_fig8_fitting
  bench_fig9_estimation_error
  bench_fig11_adaptive
  bench_fig12_ondemand_time
  bench_fig13_ondemand_energy
  bench_thresholds
  bench_ablation_blocksize
  bench_ablation_bwt
  bench_ablation_window
  bench_ablation_lz
  bench_ext_loss_sweep
  bench_ext_packet
  bench_ext_rate_sweep
  bench_ext_tool_parity
  bench_ext_session
  bench_ext_upload
  bench_proxy_load
  bench_codec_throughput
  bench_par_scaling
)

foreach(b ${ECOMP_BENCHES})
  add_executable(${b} ${CMAKE_SOURCE_DIR}/bench/${b}.cpp)
  target_link_libraries(${b} PRIVATE
    ecomp_cli ecomp_core ecomp_workload benchmark::benchmark)
  set_target_properties(${b} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()

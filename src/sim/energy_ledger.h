// EnergyLedger — hierarchical energy attribution over a sim::Timeline.
//
// Every timeline phase carries an Attribution whose component is a
// slash path ("radio/recv/first", "cpu/decompress/deflate"); the ledger
// aggregates joules and seconds for every node of that tree, so a
// scenario's energy can be read at any granularity:
//
//   radio            4.97 J          cpu               1.05 J
//     radio/recv     4.96 J            cpu/decompress  1.05 J
//     radio/startup  0.01 J
//
// Invariants (validate()): every interior node equals the sum of its
// children, the root total equals Timeline::total_energy_j() to 1e-9,
// and no component carries negative energy. The paper's argument is a
// claim about exactly this breakdown (receive vs decompress vs idle
// overlap), so the ledger is the quantity benches export and benchdiff
// gates across PRs.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/timeline.h"

namespace ecomp::sim {

struct LedgerNode {
  std::string component;  ///< full slash path, e.g. "radio/recv/first"
  int depth = 0;          ///< 0 for roots ("radio"), 1 for "radio/recv", ...
  bool leaf = false;      ///< no child components below this node
  double energy_j = 0.0;
  double time_s = 0.0;
};

class EnergyLedger {
 public:
  /// Aggregate a timeline's phases into the component tree.
  static EnergyLedger from_timeline(const Timeline& timeline);

  double total_energy_j() const { return total_energy_j_; }
  double total_time_s() const { return total_time_s_; }

  /// Energy/time under a component path (0 when the path is absent).
  double energy_j(std::string_view component) const;
  double time_s(std::string_view component) const;

  /// All nodes in depth-first (lexicographic) order, ancestors before
  /// descendants.
  const std::vector<LedgerNode>& nodes() const { return nodes_; }

  /// Direct children of `component` ("" for the roots).
  std::vector<const LedgerNode*> children(std::string_view component) const;

  /// Check the ledger invariants against the timeline it came from.
  /// Returns an empty string when everything holds, otherwise a
  /// description of the first violation. `tol` is the absolute energy
  /// tolerance in joules.
  std::string validate(const Timeline& timeline, double tol = 1e-9) const;

  /// Indented table: component, energy, share of total, time.
  std::string to_text() const;
  /// {"total_energy_j":..,"total_time_s":..,"components":{path:{...}}}.
  std::string to_json() const;

 private:
  std::map<std::string, LedgerNode> by_path_;
  std::vector<LedgerNode> nodes_;
  double total_energy_j_ = 0.0;
  double total_time_s_ = 0.0;
};

}  // namespace ecomp::sim

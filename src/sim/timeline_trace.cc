#include "sim/timeline_trace.h"

namespace ecomp::sim {

double timeline_to_trace(const Timeline& timeline, obs::Tracer& tracer,
                         std::string_view cat, double offset_s) {
  double t = offset_s;
  for (const auto& p : timeline.phases()) {
    const std::string_view name =
        p.label.empty() ? std::string_view("(unlabeled)") : p.label;
    if (p.duration_s > 0.0) {
      tracer.add_sim_complete(name, cat, t, p.duration_s);
      t += p.duration_s;
    } else {
      // Instantaneous charge (e.g. the cs network start-up term).
      tracer.add_sim_complete(name, cat, t, 0.0);
    }
  }
  return t - offset_s;
}

}  // namespace ecomp::sim

#include "sim/timeline_trace.h"

namespace ecomp::sim {

double timeline_to_trace(const Timeline& timeline, obs::Tracer& tracer,
                         std::string_view cat, double offset_s) {
  double t = offset_s;
  double cumulative_j = 0.0;
  for (const auto& p : timeline.phases()) {
    const std::string_view name =
        p.label.empty() ? std::string_view("(unlabeled)") : p.label;
    if (p.duration_s > 0.0) {
      tracer.add_sim_complete(name, cat, t, p.duration_s);
      tracer.add_sim_counter("power_w", cat, t, p.power_w);
      tracer.add_sim_counter("energy_j", cat, t, cumulative_j);
      t += p.duration_s;
    } else {
      // Instantaneous charge (e.g. the cs network start-up term): a
      // zero-duration instant plus an energy step; power is untouched
      // (the charge has no duration to spread it over).
      tracer.add_sim_complete(name, cat, t, 0.0);
      tracer.add_sim_counter("energy_j", cat, t, cumulative_j);
    }
    cumulative_j += p.energy_j();
  }
  if (!timeline.phases().empty()) {
    // Close the step functions at the end of the timeline so Perfetto
    // draws the final phase's power and the total energy reached.
    tracer.add_sim_counter("power_w", cat, t, 0.0);
    tracer.add_sim_counter("energy_j", cat, t, cumulative_j);
  }
  return t - offset_s;
}

}  // namespace ecomp::sim

// Packet-level discrete-event download simulation.
//
// The fluid model (Eqs. 1-5) and the block-discrete simulator both treat
// packet arrivals as a continuous process with an aggregate idle
// fraction. This simulator walks individual packet arrivals (MTU-sized,
// 1480-byte payloads by default): each packet costs the CPU its
// per-packet handling time, the residue of the packet period is a gap,
// and — under interleaving — decompression backlog drains gap by gap,
// with a block's work entering the backlog only once its last packet
// has arrived. It is the finest-granularity of the three independent
// energy computations and the closest to what the paper's iPAQ actually
// did.
#pragma once

#include <cstdint>

#include "sim/channel.h"
#include "sim/device.h"
#include "sim/transfer.h"

namespace ecomp::sim {

struct PacketSimOptions {
  double packet_mb = 1480e-6;  ///< MTU payload per packet
  bool interleave = false;
  bool power_saving = false;
  /// Loss process per transmission attempt. With the default Perfect
  /// channel the simulation is bit-for-bit the lossless computation
  /// (no RNG is consulted and no extra phases appear).
  ChannelModel channel;
  /// Link-layer recovery: retry cap + binary-exponential backoff.
  ArqParams arq;
  /// Seed for the loss sampler; same seed, same losses.
  std::uint64_t channel_seed = 0x5EEDull;
};

class PacketLevelSimulator {
 public:
  explicit PacketLevelSimulator(DeviceModel device) : device_(device) {}
  PacketLevelSimulator() : PacketLevelSimulator(DeviceModel::ipaq_11mbps()) {}

  /// Download a block container packet by packet.
  TransferResult download(const std::vector<BlockTransfer>& blocks,
                          const std::string& codec,
                          const PacketSimOptions& opt) const;

  const DeviceModel& device() const { return device_; }

 private:
  DeviceModel device_;
};

}  // namespace ecomp::sim

#include "sim/timeline.h"

#include <algorithm>
#include <cmath>

namespace ecomp::sim {

void Timeline::add(double duration_s, double power_w, std::string label) {
  if (duration_s <= 0.0) return;
  phases_.push_back({duration_s, power_w, 0.0, std::move(label)});
}

void Timeline::add_energy(double energy_j, std::string label) {
  if (energy_j <= 0.0) return;
  phases_.push_back({0.0, 0.0, energy_j, std::move(label)});
}

double Timeline::total_time_s() const {
  double t = 0.0;
  for (const auto& p : phases_) t += p.duration_s;
  return t;
}

double Timeline::total_energy_j() const {
  double e = 0.0;
  for (const auto& p : phases_) e += p.energy_j();
  return e;
}

double Timeline::energy_with_prefix(const std::string& prefix) const {
  double e = 0.0;
  for (const auto& p : phases_)
    if (p.label.rfind(prefix, 0) == 0) e += p.energy_j();
  return e;
}

double Timeline::time_with_prefix(const std::string& prefix) const {
  double t = 0.0;
  for (const auto& p : phases_)
    if (p.label.rfind(prefix, 0) == 0) t += p.duration_s;
  return t;
}

std::string Timeline::render_ascii(double s_per_char) const {
  std::string bar;
  // Zero, negative, or NaN scales have no sensible rendering (and would
  // divide by zero below); return an empty bar rather than attempting a
  // huge or negative append.
  if (!(s_per_char > 0.0)) return bar;
  for (const auto& p : phases_) {
    if (p.duration_s <= 0.0) continue;
    const int chars = std::max(
        1, static_cast<int>(std::lround(p.duration_s / s_per_char)));
    const char c = p.label.empty() ? '?' : p.label[0];
    bar.append(static_cast<std::size_t>(chars), c);
  }
  return bar;
}

}  // namespace ecomp::sim

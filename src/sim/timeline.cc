#include "sim/timeline.h"

#include <algorithm>
#include <cmath>

namespace ecomp::sim {
namespace {

/// "recv:first" -> "first"; "" when the label has no subpath.
std::string subpath(const std::string& label) {
  const auto colon = label.find(':');
  if (colon == std::string::npos) return "";
  std::string sub = label.substr(colon + 1);
  std::replace(sub.begin(), sub.end(), ':', '/');
  return sub;
}

std::string join(const char* root, const std::string& sub) {
  return sub.empty() ? root : root + ("/" + sub);
}

}  // namespace

Attribution attribution_for_label(const std::string& label) {
  const auto has = [&](const char* prefix) {
    return label.rfind(prefix, 0) == 0;
  };
  const std::string sub = subpath(label);
  if (has("recv"))
    return {join("radio/recv", sub), CpuState::Busy, RadioState::Recv};
  if (has("send"))
    return {join("radio/send", sub), CpuState::Busy, RadioState::Send};
  if (has("startup"))
    return {join("radio/startup", sub), CpuState::Idle, RadioState::Idle};
  if (has("gap"))
    return {join("idle/gap", sub), CpuState::Idle, RadioState::Idle};
  if (has("wait"))
    return {join("idle/wait", sub), CpuState::Idle, RadioState::Idle};
  if (has("think"))
    return {join("idle/think", sub), CpuState::Idle, RadioState::Idle};
  if (has("decomp")) {
    // Interleaved decompression runs inside receive gaps — the paper's
    // overlap term; the tail runs with the radio merely idle.
    if (sub.rfind("interleaved", 0) == 0)
      return {"overlap/decompress", CpuState::Busy, RadioState::Recv};
    return {"cpu/decompress", CpuState::Busy, RadioState::Idle};
  }
  if (has("compress")) {
    if (sub.rfind("interleaved", 0) == 0)
      return {"overlap/compress", CpuState::Busy, RadioState::Send};
    return {"cpu/compress", CpuState::Busy, RadioState::Idle};
  }
  // Unknown label family: keep it attributable without guessing states.
  std::string head = label.substr(0, label.find(':'));
  if (head.empty()) head = "unlabeled";
  return {join("other", head), CpuState::Idle, RadioState::Idle};
}

void Timeline::add(double duration_s, double power_w, std::string label) {
  if (duration_s <= 0.0) return;
  Attribution attr = attribution_for_label(label);
  phases_.push_back(
      {duration_s, power_w, 0.0, std::move(label), std::move(attr)});
}

void Timeline::add(double duration_s, double power_w, std::string label,
                   Attribution attr) {
  if (duration_s <= 0.0) return;
  phases_.push_back(
      {duration_s, power_w, 0.0, std::move(label), std::move(attr)});
}

void Timeline::add_energy(double energy_j, std::string label) {
  if (energy_j <= 0.0) return;
  Attribution attr = attribution_for_label(label);
  phases_.push_back({0.0, 0.0, energy_j, std::move(label), std::move(attr)});
}

void Timeline::add_energy(double energy_j, std::string label,
                          Attribution attr) {
  if (energy_j <= 0.0) return;
  phases_.push_back({0.0, 0.0, energy_j, std::move(label), std::move(attr)});
}

void Timeline::extend(const Timeline& other) {
  phases_.insert(phases_.end(), other.phases_.begin(), other.phases_.end());
}

double Timeline::total_time_s() const {
  double t = 0.0;
  for (const auto& p : phases_) t += p.duration_s;
  return t;
}

double Timeline::total_energy_j() const {
  double e = 0.0;
  for (const auto& p : phases_) e += p.energy_j();
  return e;
}

double Timeline::energy_with_prefix(const std::string& prefix) const {
  double e = 0.0;
  for (const auto& p : phases_)
    if (p.label.rfind(prefix, 0) == 0) e += p.energy_j();
  return e;
}

double Timeline::time_with_prefix(const std::string& prefix) const {
  double t = 0.0;
  for (const auto& p : phases_)
    if (p.label.rfind(prefix, 0) == 0) t += p.duration_s;
  return t;
}

std::vector<Timeline::PrefixTotals> Timeline::totals_with_prefixes(
    const std::vector<std::string>& prefixes) const {
  std::vector<PrefixTotals> out(prefixes.size());
  for (const auto& p : phases_) {
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      if (p.label.rfind(prefixes[i], 0) != 0) continue;
      out[i].energy_j += p.energy_j();
      out[i].time_s += p.duration_s;
    }
  }
  return out;
}

std::string Timeline::render_ascii(double s_per_char) const {
  std::string bar;
  // Zero, negative, or NaN scales have no sensible rendering (and would
  // divide by zero below); return an empty bar rather than attempting a
  // huge or negative append.
  if (!(s_per_char > 0.0)) return bar;
  for (const auto& p : phases_) {
    if (p.duration_s <= 0.0) continue;
    const int chars = std::max(
        1, static_cast<int>(std::lround(p.duration_s / s_per_char)));
    const char c = p.label.empty() ? '?' : p.label[0];
    bar.append(static_cast<std::size_t>(chars), c);
  }
  return bar;
}

}  // namespace ecomp::sim

#include "sim/channel.h"

#include <algorithm>
#include <string>

namespace ecomp::sim {
namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw Error(std::string("ChannelModel: ") + what +
                " must be a probability in [0, 1]");
}

}  // namespace

const char* to_string(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::Perfect: return "perfect";
    case ChannelKind::Bernoulli: return "bernoulli";
    case ChannelKind::GilbertElliott: return "gilbert-elliott";
  }
  return "?";
}

ChannelModel ChannelModel::bernoulli(double p) {
  ChannelModel c;
  c.kind = ChannelKind::Bernoulli;
  c.loss = p;
  c.validate();
  return c;
}

ChannelModel ChannelModel::gilbert_elliott(double p_gb, double p_bg,
                                           double loss_good,
                                           double loss_bad) {
  ChannelModel c;
  c.kind = ChannelKind::GilbertElliott;
  c.p_good_to_bad = p_gb;
  c.p_bad_to_good = p_bg;
  c.loss_good = loss_good;
  c.loss_bad = loss_bad;
  c.validate();
  return c;
}

ChannelModel ChannelModel::gilbert_elliott_avg(double target_loss,
                                               double mean_burst) {
  check_probability(target_loss, "target_loss");
  if (target_loss >= 1.0)
    throw Error("ChannelModel: target_loss must be < 1");
  if (!(mean_burst >= 1.0))
    throw Error("ChannelModel: mean_burst must be >= 1 attempt");
  if (target_loss <= 0.0) return perfect();
  // Stationary bad-state occupancy pi_b = p_gb / (p_gb + p_bg); with
  // loss_good = 0 and loss_bad = 1 the average loss equals pi_b, so
  // p_gb = q * p_bg / (1 - q).
  const double p_bg = 1.0 / mean_burst;
  const double p_gb = target_loss * p_bg / (1.0 - target_loss);
  return gilbert_elliott(std::min(p_gb, 1.0), p_bg, 0.0, 1.0);
}

double ChannelModel::avg_loss_rate() const {
  switch (kind) {
    case ChannelKind::Perfect:
      return 0.0;
    case ChannelKind::Bernoulli:
      return loss;
    case ChannelKind::GilbertElliott: {
      const double denom = p_good_to_bad + p_bad_to_good;
      if (denom <= 0.0) return loss_good;  // chain never moves
      const double pi_bad = p_good_to_bad / denom;
      return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
    }
  }
  return 0.0;
}

double ChannelModel::expected_transmissions() const {
  const double q = avg_loss_rate();
  if (q <= 0.0) return 1.0;
  if (q >= 1.0)
    throw Error("ChannelModel: average loss rate of 1 never delivers");
  return 1.0 / (1.0 - q);
}

void ChannelModel::validate() const {
  check_probability(loss, "loss");
  check_probability(p_good_to_bad, "p_good_to_bad");
  check_probability(p_bad_to_good, "p_bad_to_good");
  check_probability(loss_good, "loss_good");
  check_probability(loss_bad, "loss_bad");
  if (avg_loss_rate() >= 1.0)
    throw Error("ChannelModel: average loss rate of 1 never delivers");
}

double ArqParams::backoff_s(int attempt) const {
  double b = backoff_base_s;
  for (int i = 0; i < attempt && b < backoff_max_s; ++i) b *= 2.0;
  return std::min(b, backoff_max_s);
}

ChannelSampler::ChannelSampler(const ChannelModel& model, std::uint64_t seed)
    : model_(model), rng_(seed) {
  model_.validate();
}

bool ChannelSampler::lose_next() {
  ++attempts_;
  bool lost = false;
  switch (model_.kind) {
    case ChannelKind::Perfect:
      break;
    case ChannelKind::Bernoulli:
      lost = model_.loss > 0.0 && rng_.chance(model_.loss);
      break;
    case ChannelKind::GilbertElliott: {
      const double p_loss = bad_ ? model_.loss_bad : model_.loss_good;
      lost = p_loss > 0.0 && rng_.chance(p_loss);
      const double p_move = bad_ ? model_.p_bad_to_good : model_.p_good_to_bad;
      if (rng_.chance(p_move)) bad_ = !bad_;
      break;
    }
  }
  if (lost) ++losses_;
  return lost;
}

}  // namespace ecomp::sim

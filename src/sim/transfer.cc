#include "sim/transfer.h"

#include <algorithm>

#include "util/bytes.h"

namespace ecomp::sim {
namespace {

// Attribution helpers. Component paths follow the scheme documented in
// docs/OBSERVABILITY.md: radio/ (receive, send, startup), idle/ (gaps,
// proxy waits), cpu/<work>/<codec> for CPU work with the radio idle,
// overlap/<work>/<codec> for CPU work hidden inside radio gaps.

Attribution attr_recv(const char* sub) {
  return {std::string("radio/recv/") + sub, CpuState::Busy, RadioState::Recv};
}

Attribution attr_send() {
  return {"radio/send", CpuState::Busy, RadioState::Send};
}

Attribution attr_gap(const char* sub) {
  return {std::string("idle/gap/") + sub, CpuState::Idle, RadioState::Idle};
}

Attribution attr_wait(const char* sub) {
  return {std::string("idle/wait/") + sub, CpuState::Idle, RadioState::Idle};
}

Attribution attr_startup() {
  return {"radio/startup", CpuState::Idle, RadioState::Idle};
}

Attribution attr_decomp(bool overlapped, const std::string& codec) {
  return {(overlapped ? "overlap/decompress/" : "cpu/decompress/") + codec,
          CpuState::Busy, overlapped ? RadioState::Recv : RadioState::Idle};
}

Attribution attr_comp(bool overlapped, const std::string& codec) {
  return {(overlapped ? "overlap/compress/" : "cpu/compress/") + codec,
          CpuState::Busy, overlapped ? RadioState::Send : RadioState::Idle};
}

TransferResult finish(Timeline&& t, double download_time_s,
                      double decompress_time_s) {
  TransferResult r;
  r.timeline = std::move(t);
  r.time_s = r.timeline.total_time_s();
  r.energy_j = r.timeline.total_energy_j();
  r.download_time_s = download_time_s;
  r.decompress_time_s = decompress_time_s;
  // One pass over the phase list for all five breakdown prefixes —
  // finish() runs once per simulated scenario and the benches simulate
  // thousands of scenarios per run.
  static const std::vector<std::string> kPrefixes = {"recv", "gap", "startup",
                                                     "decomp", "wait"};
  const auto totals = r.timeline.totals_with_prefixes(kPrefixes);
  r.download_energy_j =
      totals[0].energy_j + totals[1].energy_j + totals[2].energy_j;
  r.decompress_energy_j = totals[3].energy_j;
  r.wait_energy_j = totals[4].energy_j;
  r.wait_time_s = totals[4].time_s;
  return r;
}

}  // namespace

void TransferSimulator::run_download(Timeline& t, const DownloadSpec& spec,
                                     bool sleep_during_tail) const {
  const bool ps = spec.power_saving;
  const double rate = spec.rate_mb_s;
  if (rate <= 0.0) throw Error("TransferSimulator: rate must be positive");
  const double f =
      std::max(0.0, 1.0 - device_.radio.cpu_active_s_per_mb * rate);
  const double p_active = device_.recv_active_power_w(ps);
  const double p_gap = device_.gap_power_w(ps);
  const double p_decomp = device_.decompress_power_w(ps);

  const double first = std::min(spec.first_block_mb, spec.payload_mb);
  const double rest = spec.payload_mb - first;

  // First block: its packet gaps cannot be filled (nothing complete to
  // decompress yet) — the paper's ti1 term.
  if (first > 0.0) {
    const double ta = first / rate;
    t.add((1.0 - f) * ta, p_active, "recv:first", attr_recv("first"));
    t.add(f * ta, p_gap, "gap:first", attr_gap("first"));
  }

  // Remaining download: gaps (the paper's ti') are filled with
  // decompression work while it lasts.
  double work = spec.decompress_work_s;
  if (rest > 0.0) {
    const double tb = rest / rate;
    t.add((1.0 - f) * tb, p_active, "recv:rest", attr_recv("rest"));
    const double gap = f * tb;
    const double filled = std::min(work, gap);
    t.add(filled, p_decomp, "decomp:interleaved",
          attr_decomp(true, spec.codec));
    t.add(gap - filled, p_gap, "gap:rest", attr_gap("rest"));
    work -= filled;
  }

  // Decompression tail after the download completes.
  if (work > 0.0) {
    const double p_tail =
        device_.decompress_power_w(sleep_during_tail ? true : ps);
    t.add(work, p_tail, "decomp:tail", attr_decomp(false, spec.codec));
  }
}

TransferResult TransferSimulator::download_uncompressed(
    double mb, bool power_saving) const {
  if (mb < 0.0) throw Error("download_uncompressed: negative size");
  Timeline t;
  t.add_energy(device_.radio.startup_energy_j, "startup", attr_startup());
  DownloadSpec spec;
  spec.payload_mb = mb;
  spec.rate_mb_s = device_.radio.rate_mb_per_s(power_saving);
  spec.first_block_mb = mb;  // no decompression: every gap stays idle
  spec.decompress_work_s = 0.0;
  spec.power_saving = power_saving;
  run_download(t, spec, false);
  return finish(std::move(t), mb / spec.rate_mb_s, 0.0);
}

TransferResult TransferSimulator::download_compressed(
    double original_mb, double compressed_mb, const std::string& codec,
    const TransferOptions& opt) const {
  if (original_mb < 0.0 || compressed_mb < 0.0)
    throw Error("download_compressed: negative size");
  Timeline t;
  t.add_energy(device_.radio.startup_energy_j, "startup", attr_startup());

  const double td =
      device_.cpu.decompress_time_s(codec, compressed_mb, original_mb);
  double rate = device_.radio.rate_mb_per_s(opt.power_saving);

  if (opt.on_demand == OnDemand::Sequential) {
    // Device waits idle while the proxy compresses the whole file.
    const double tc =
        proxy_.compress_time_s(codec, original_mb, compressed_mb);
    t.add(tc, device_.gap_power_w(opt.power_saving), "wait:proxy",
          attr_wait("proxy"));
  } else if (opt.on_demand == OnDemand::Overlapped) {
    // Proxy compresses block-by-block behind the send. The device pays
    // the first block's compression latency; afterwards delivery is
    // throttled to the proxy's compressed-output rate if that is slower
    // than the link.
    const double ratio =
        original_mb > 0.0 ? compressed_mb / original_mb : 1.0;
    const double first_raw = std::min(opt.block_mb, original_mb);
    const double tc1 =
        proxy_.compress_time_s(codec, first_raw, first_raw * ratio);
    t.add(tc1, device_.gap_power_w(opt.power_saving), "wait:proxy-first",
          attr_wait("proxy-first"));
    const auto cost = proxy_.compress_cost(codec);
    const double s_per_raw_mb =
        cost.s_per_mb_in + cost.s_per_mb_out * ratio;
    if (s_per_raw_mb > 0.0) {
      const double proxy_out_rate = ratio / s_per_raw_mb;
      rate = std::min(rate, proxy_out_rate);
    }
  }

  DownloadSpec spec;
  spec.payload_mb = compressed_mb;
  spec.rate_mb_s = rate;
  spec.power_saving = opt.power_saving;
  spec.decompress_work_s = td;
  spec.codec = codec;
  if (opt.interleave) {
    const double ratio =
        original_mb > 0.0 ? compressed_mb / original_mb : 1.0;
    spec.first_block_mb = std::min(opt.block_mb * ratio, compressed_mb);
  } else {
    spec.first_block_mb = compressed_mb;  // no gap filling at all
  }
  run_download(t, spec, opt.sleep_during_decompress && !opt.interleave);
  return finish(std::move(t), compressed_mb / rate, td);
}

TransferResult TransferSimulator::download_selective(
    const std::vector<BlockTransfer>& blocks, const std::string& codec,
    const TransferOptions& opt) const {
  Timeline t;
  t.add_energy(device_.radio.startup_energy_j, "startup", attr_startup());

  double payload = 0.0, raw = 0.0, total_work = 0.0;
  const auto cost = device_.cpu.decompress_cost(codec);
  auto block_work = [&](const BlockTransfer& b) {
    return b.compressed ? cost.time_s(b.payload_mb, b.raw_mb)
                        : kRawCopySPerMb * b.raw_mb;
  };
  for (const auto& b : blocks) {
    payload += b.payload_mb;
    raw += b.raw_mb;
    total_work += block_work(b);
  }

  double rate = device_.radio.rate_mb_per_s(opt.power_saving);
  if (opt.on_demand == OnDemand::Sequential) {
    const double tc = proxy_.compress_time_s(codec, raw, payload);
    t.add(tc, device_.gap_power_w(opt.power_saving), "wait:proxy",
          attr_wait("proxy"));
  } else if (opt.on_demand == OnDemand::Overlapped && !blocks.empty()) {
    const double tc1 = proxy_.compress_time_s(codec, blocks[0].raw_mb,
                                              blocks[0].payload_mb);
    t.add(tc1, device_.gap_power_w(opt.power_saving), "wait:proxy-first",
          attr_wait("proxy-first"));
    const auto pcost = proxy_.compress_cost(codec);
    const double ratio = raw > 0.0 ? payload / raw : 1.0;
    const double s_per_raw_mb =
        pcost.s_per_mb_in + pcost.s_per_mb_out * ratio;
    if (s_per_raw_mb > 0.0)
      rate = std::min(rate, ratio / s_per_raw_mb);
  }
  if (rate <= 0.0) throw Error("TransferSimulator: rate must be positive");

  // Discrete per-block simulation. Unlike the fluid closed form
  // (Eqs. 3-4), a block's decompression work only becomes available
  // once that block has FULLY arrived, so early gaps can starve even
  // when total work exceeds total gap time — the granularity effect
  // the analytic model ignores (and one source of its Figs. 7/9 error).
  const bool ps = opt.power_saving;
  const double f = std::max(0.0, 1.0 - device_.radio.cpu_active_s_per_mb * rate);
  const double p_active = device_.recv_active_power_w(ps);
  const double p_gap = device_.gap_power_w(ps);
  const double p_decomp = device_.decompress_power_w(ps);

  double backlog_s = 0.0;  // decode work ready to run
  for (const auto& b : blocks) {
    const double ti = b.payload_mb / rate;
    t.add((1.0 - f) * ti, p_active, "recv:block", attr_recv("block"));
    const double gap = f * ti;
    const double filled = opt.interleave ? std::min(backlog_s, gap) : 0.0;
    t.add(filled, p_decomp, "decomp:interleaved", attr_decomp(true, codec));
    t.add(gap - filled, p_gap, "gap:block", attr_gap("block"));
    backlog_s -= filled;
    backlog_s += block_work(b);
  }
  if (backlog_s > 0.0) {
    const double p_tail = device_.decompress_power_w(
        (opt.sleep_during_decompress && !opt.interleave) ? true : ps);
    t.add(backlog_s, p_tail, "decomp:tail", attr_decomp(false, codec));
  }
  return finish(std::move(t), payload / rate, total_work);
}

TransferResult TransferSimulator::upload_uncompressed(
    double mb, bool power_saving) const {
  if (mb < 0.0) throw Error("upload_uncompressed: negative size");
  Timeline t;
  t.add_energy(device_.radio.startup_energy_j, "startup", attr_startup());
  const double rate = device_.radio.rate_mb_per_s(power_saving);
  const double f =
      std::max(0.0, 1.0 - device_.radio.cpu_active_s_per_mb * rate);
  const double total = mb / rate;
  t.add((1.0 - f) * total, device_.recv_active_power_w(power_saving),
        "send:active", attr_send());
  t.add(f * total, device_.gap_power_w(power_saving), "gap:send",
        attr_gap("send"));
  return finish(std::move(t), total, 0.0);
}

TransferResult TransferSimulator::upload_compressed(
    double original_mb, double compressed_mb, const std::string& codec,
    const TransferOptions& opt) const {
  if (original_mb < 0.0 || compressed_mb < 0.0)
    throw Error("upload_compressed: negative size");
  Timeline t;
  t.add_energy(device_.radio.startup_energy_j, "startup", attr_startup());

  const bool ps = opt.power_saving;
  const double rate = device_.radio.rate_mb_per_s(ps);
  const double f =
      std::max(0.0, 1.0 - device_.radio.cpu_active_s_per_mb * rate);
  const double p_active = device_.recv_active_power_w(ps);
  const double p_gap = device_.gap_power_w(ps);
  const double p_comp = device_.decompress_power_w(ps);  // busy, radio idle

  const double tc = device_.cpu.compress_cost(codec).time_s(
      original_mb, compressed_mb);
  const double send_time = compressed_mb / rate;

  if (!opt.interleave) {
    // Compress everything up front (radio may sleep), then send.
    const double p_front = device_.decompress_power_w(
        opt.sleep_during_decompress ? true : ps);
    t.add(tc, p_front, "compress:front", attr_comp(false, codec));
    t.add((1.0 - f) * send_time, p_active, "send:active", attr_send());
    t.add(f * send_time, p_gap, "gap:send", attr_gap("send"));
    return finish(std::move(t), send_time, tc);
  }

  // Interleaved: the first block must be compressed before sending
  // starts; the rest competes with the sender for the CPU's gap time.
  const double first_raw = std::min(opt.block_mb, original_mb);
  const double tc1 = original_mb > 0.0 ? tc * first_raw / original_mb : tc;
  t.add(tc1, p_comp, "compress:first", attr_comp(false, codec));

  const double gap_budget = f * send_time;
  const double work = tc - tc1;
  if (work <= gap_budget) {
    // CPU keeps up: send runs at full rate.
    t.add((1.0 - f) * send_time, p_active, "send:active", attr_send());
    t.add(work, p_comp, "compress:interleaved", attr_comp(true, codec));
    t.add(gap_budget - work, p_gap, "gap:send", attr_gap("send"));
    return finish(std::move(t), send_time, tc);
  }
  // CPU-bound: sending stalls on compression; the wall clock stretches
  // to active-send + remaining compression, with no idle at all.
  const double active_send = (1.0 - f) * send_time;
  t.add(active_send, p_active, "send:active", attr_send());
  t.add(work, p_comp, "compress:interleaved", attr_comp(true, codec));
  return finish(std::move(t), active_send + work, tc);
}

}  // namespace ecomp::sim

// Lossy-channel models for the packet-level simulator — the piece the
// paper's perfect-loopback testbed leaves out. An 802.11b link drops
// frames (independently, or in fading bursts), and every retransmission
// is radio energy the compress-or-not decision (Eq. 6) must account
// for: at high loss the radio term dominates and compression pays at
// ever-smaller factors.
//
// Two loss processes are modelled:
//   * Bernoulli       — i.i.d. per-packet loss with probability `loss`
//   * Gilbert–Elliott — two-state Markov chain (good/bad) with
//                       per-state loss probabilities; the classic burst
//                       model for fading radio channels
// plus ArqParams, the 802.11b-style stop-and-wait recovery: capped
// retransmissions with binary-exponential backoff. All sampling is
// seeded through util::rng so every lossy run is reproducible.
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/rng.h"

namespace ecomp::sim {

enum class ChannelKind { Perfect, Bernoulli, GilbertElliott };

const char* to_string(ChannelKind kind);

struct ChannelModel {
  ChannelKind kind = ChannelKind::Perfect;

  /// Bernoulli: every transmission attempt is lost i.i.d. with this
  /// probability. Ignored for the other kinds.
  double loss = 0.0;

  // Gilbert–Elliott parameters (per transmission attempt):
  double p_good_to_bad = 0.0;  ///< transition probability good -> bad
  double p_bad_to_good = 1.0;  ///< transition probability bad -> good
  double loss_good = 0.0;      ///< loss probability while in `good`
  double loss_bad = 1.0;       ///< loss probability while in `bad`

  static ChannelModel perfect() { return ChannelModel{}; }
  static ChannelModel bernoulli(double p);
  /// Burst-loss chain; mean burst length is 1 / p_bg attempts.
  static ChannelModel gilbert_elliott(double p_gb, double p_bg,
                                      double loss_good = 0.0,
                                      double loss_bad = 1.0);
  /// Gilbert–Elliott chain with mean burst length `mean_burst` whose
  /// stationary average loss equals `target_loss` (loss_good = 0,
  /// loss_bad = 1) — the convenient way to compare burst vs i.i.d.
  /// loss at the same average rate.
  static ChannelModel gilbert_elliott_avg(double target_loss,
                                          double mean_burst = 4.0);

  /// Long-run average per-attempt loss probability (the stationary
  /// distribution of the chain for Gilbert–Elliott).
  double avg_loss_rate() const;

  /// Expected transmission attempts per delivered packet, 1/(1 - q).
  /// The ARQ retry cap bounds per-frame backoff growth, not ultimate
  /// delivery (the transport above resends), so the truncated and
  /// untruncated expectations coincide.
  double expected_transmissions() const;

  bool lossless() const {
    return kind == ChannelKind::Perfect || avg_loss_rate() <= 0.0;
  }

  /// Throws Error when any probability is out of range or the chain
  /// can never deliver (average loss rate of 1).
  void validate() const;
};

/// 802.11b-style ARQ recovery parameters. Defaults follow the DSSS PHY:
/// long retry limit 7; contention window 31..1023 slots of 20 us, so
/// the mean backoff before retry r is (2^r * 32 - 1)/2 slots, capped.
struct ArqParams {
  int max_retries = 7;             ///< link-layer retry cap per frame
  double backoff_base_s = 310e-6;  ///< mean initial backoff (CWmin/2)
  double backoff_max_s = 10.23e-3; ///< backoff ceiling (CWmax/2)

  /// Mean backoff delay before retry `attempt` (0-based), capped.
  double backoff_s(int attempt) const;
};

/// Stateful per-attempt loss sampler: steps the Gilbert–Elliott chain
/// (a no-op for the other kinds) and draws losses deterministically
/// from the seed. Perfect channels never touch the RNG, so a
/// Perfect-channel run is bit-for-bit the no-channel computation.
class ChannelSampler {
 public:
  ChannelSampler(const ChannelModel& model, std::uint64_t seed);

  /// Sample the fate of the next transmission attempt.
  bool lose_next();

  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t losses() const { return losses_; }

 private:
  ChannelModel model_;
  Rng rng_;
  bool bad_ = false;  // current Gilbert–Elliott state
  std::uint64_t attempts_ = 0;
  std::uint64_t losses_ = 0;
};

}  // namespace ecomp::sim

// Timeline: the simulator's energy ledger. Every scenario reduces to a
// sequence of (duration, power, label) phases; energy is the integral.
// Keeping the phases explicit lets benches print the Fig. 3/4 style
// breakdowns and lets tests assert on structure, not just totals.
#pragma once

#include <string>
#include <vector>

namespace ecomp::sim {

struct Phase {
  double duration_s = 0.0;
  double power_w = 0.0;
  double fixed_energy_j = 0.0;  ///< instantaneous charge (e.g. cs)
  std::string label;

  double energy_j() const { return duration_s * power_w + fixed_energy_j; }
};

class Timeline {
 public:
  /// Append a phase. Zero/negative durations are dropped (they arise
  /// naturally from degenerate scenarios, e.g. no idle gap remaining).
  void add(double duration_s, double power_w, std::string label);

  /// Add an instantaneous energy cost (e.g. the cs network start-up
  /// term, which the paper models as a constant charge, not a phase).
  void add_energy(double energy_j, std::string label);

  double total_time_s() const;
  double total_energy_j() const;

  /// Sum of energy over phases whose label starts with `prefix`.
  double energy_with_prefix(const std::string& prefix) const;
  /// Sum of time over phases whose label starts with `prefix`.
  double time_with_prefix(const std::string& prefix) const;

  const std::vector<Phase>& phases() const { return phases_; }

  /// Fixed-width ASCII rendering (one char per `s_per_char` seconds,
  /// each phase drawn with the first letter of its label) for the
  /// Fig. 3/4 style diagrams. Non-positive (or NaN) `s_per_char`
  /// returns an empty string.
  std::string render_ascii(double s_per_char) const;

 private:
  std::vector<Phase> phases_;
};

}  // namespace ecomp::sim

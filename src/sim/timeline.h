// Timeline: the simulator's energy ledger. Every scenario reduces to a
// sequence of (duration, power, label) phases; energy is the integral.
// Keeping the phases explicit lets benches print the Fig. 3/4 style
// breakdowns and lets tests assert on structure, not just totals.
//
// Each phase additionally carries an Attribution — a slash-separated
// component path ("radio/recv/first", "cpu/decompress/deflate",
// "overlap/decompress/deflate") plus the (CpuState, RadioState) pair the
// device sits in during the phase — which EnergyLedger aggregates into
// the paper's where-do-the-joules-go breakdown (Eqs. 1-5, Tables 1-3).
#pragma once

#include <string>
#include <vector>

#include "sim/power.h"

namespace ecomp::sim {

/// Energy-attribution tag for a phase. `component` is a slash path
/// rooted at one of: radio/ (receive, send, startup), idle/ (gaps,
/// proxy waits, think time), cpu/ (decompress/compress with the radio
/// otherwise idle), overlap/ (CPU work hidden inside radio gaps).
struct Attribution {
  std::string component;
  CpuState cpu = CpuState::Idle;
  RadioState radio = RadioState::Idle;
};

/// Default attribution derived from a phase label ("recv:first" ->
/// radio/recv/first, "decomp:tail" -> cpu/decompress, ...). Callers
/// that know more (e.g. the codec name) pass an explicit Attribution.
Attribution attribution_for_label(const std::string& label);

struct Phase {
  double duration_s = 0.0;
  double power_w = 0.0;
  double fixed_energy_j = 0.0;  ///< instantaneous charge (e.g. cs)
  std::string label;
  Attribution attr;

  double energy_j() const { return duration_s * power_w + fixed_energy_j; }
};

class Timeline {
 public:
  /// Append a phase. Zero/negative durations are dropped (they arise
  /// naturally from degenerate scenarios, e.g. no idle gap remaining).
  /// The attribution is derived from the label (attribution_for_label).
  void add(double duration_s, double power_w, std::string label);
  /// Append a phase with an explicit attribution.
  void add(double duration_s, double power_w, std::string label,
           Attribution attr);

  /// Add an instantaneous energy cost (e.g. the cs network start-up
  /// term, which the paper models as a constant charge, not a phase).
  void add_energy(double energy_j, std::string label);
  void add_energy(double energy_j, std::string label, Attribution attr);

  /// Append every phase of `other` (session-style aggregation of
  /// several transfers into one attributable timeline).
  void extend(const Timeline& other);

  double total_time_s() const;
  double total_energy_j() const;

  /// Sum of energy over phases whose label starts with `prefix`.
  double energy_with_prefix(const std::string& prefix) const;
  /// Sum of time over phases whose label starts with `prefix`.
  double time_with_prefix(const std::string& prefix) const;

  struct PrefixTotals {
    double energy_j = 0.0;
    double time_s = 0.0;
  };
  /// Single-pass equivalent of calling {energy,time}_with_prefix once
  /// per entry of `prefixes`: result[i] sums phases whose label starts
  /// with prefixes[i]. Use this in per-iteration code — the per-prefix
  /// queries above scan the whole phase list each call.
  std::vector<PrefixTotals> totals_with_prefixes(
      const std::vector<std::string>& prefixes) const;

  const std::vector<Phase>& phases() const { return phases_; }

  /// Fixed-width ASCII rendering (one char per `s_per_char` seconds,
  /// each phase drawn with the first letter of its label) for the
  /// Fig. 3/4 style diagrams. Non-positive (or NaN) `s_per_char`
  /// returns an empty string.
  std::string render_ascii(double s_per_char) const;

 private:
  std::vector<Phase> phases_;
};

}  // namespace ecomp::sim

#include "sim/packet.h"

#include <algorithm>
#include <cmath>

#include "util/bytes.h"

namespace ecomp::sim {

TransferResult PacketLevelSimulator::download(
    const std::vector<BlockTransfer>& blocks, const std::string& codec,
    const PacketSimOptions& opt) const {
  if (opt.packet_mb <= 0.0)
    throw Error("PacketLevelSimulator: packet size must be positive");
  const bool ps = opt.power_saving;
  const double rate = device_.radio.rate_mb_per_s(ps);
  const double period = opt.packet_mb / rate;
  const double active = std::min(
      period, device_.radio.cpu_active_s_per_mb * opt.packet_mb);
  const double gap = period - active;

  const auto cost = device_.cpu.decompress_cost(codec);
  auto block_work = [&](const BlockTransfer& b) {
    return b.compressed ? cost.time_s(b.payload_mb, b.raw_mb)
                        : TransferSimulator::kRawCopySPerMb * b.raw_mb;
  };

  // Lossy channel: each failed attempt re-occupies the radio for the
  // packet's active-receive time and adds a backoff gap; the retry cap
  // bounds the backoff growth, after which the frame escalates to the
  // transport (a link drop) and starts over with a fresh window.
  const bool lossy = !opt.channel.lossless();
  if (lossy) opt.channel.validate();
  ChannelSampler sampler(opt.channel, opt.channel_seed);
  double retrans_s = 0.0, backoff_s = 0.0;
  std::uint64_t retransmissions = 0, link_drops = 0;

  // Walk packets; aggregate the per-packet pieces into totals so the
  // timeline stays small regardless of file size.
  double recv_s = 0.0, gap_idle_s = 0.0, gap_decomp_s = 0.0;
  double backlog = 0.0, total_work = 0.0, payload = 0.0;

  for (const auto& b : blocks) {
    payload += b.payload_mb;
    const auto n_packets = static_cast<std::uint64_t>(
        std::ceil(b.payload_mb / opt.packet_mb - 1e-12));
    // Last packet of the block may be short; model its period pro rata.
    for (std::uint64_t p = 0; p < n_packets; ++p) {
      const bool last = p + 1 == n_packets;
      const double frac =
          last ? (b.payload_mb - static_cast<double>(n_packets - 1) *
                                     opt.packet_mb) /
                     opt.packet_mb
               : 1.0;
      if (lossy) {
        int attempt = 0;
        while (sampler.lose_next()) {
          retrans_s += active * frac;
          backoff_s += opt.arq.backoff_s(attempt);
          ++retransmissions;
          if (++attempt > opt.arq.max_retries) {
            ++link_drops;
            attempt = 0;  // transport resend, contention window resets
          }
        }
      }
      recv_s += active * frac;
      double g = gap * frac;
      if (opt.interleave && backlog > 0.0) {
        const double run = std::min(backlog, g);
        gap_decomp_s += run;
        backlog -= run;
        g -= run;
      }
      gap_idle_s += g;
    }
    const double w = block_work(b);
    backlog += w;
    total_work += w;
  }

  Timeline t;
  t.add_energy(device_.radio.startup_energy_j, "startup",
               {"radio/startup", CpuState::Idle, RadioState::Idle});
  t.add(recv_s, device_.recv_active_power_w(ps), "recv:packets",
        {"radio/recv/packets", CpuState::Busy, RadioState::Recv});
  // Retransmissions: the radio is busy re-receiving the lost frame
  // (radio/retransmit/recv), then sits out the backoff window
  // (radio/retransmit/backoff). Both are zero-duration — and therefore
  // absent — on a lossless run.
  t.add(retrans_s, device_.recv_active_power_w(ps), "recv:retransmit",
        {"radio/retransmit/recv", CpuState::Busy, RadioState::Recv});
  t.add(backoff_s, device_.gap_power_w(ps), "gap:backoff",
        {"radio/retransmit/backoff", CpuState::Idle, RadioState::Idle});
  t.add(gap_decomp_s, device_.decompress_power_w(ps), "decomp:interleaved",
        {"overlap/decompress/" + codec, CpuState::Busy, RadioState::Recv});
  t.add(gap_idle_s, device_.gap_power_w(ps), "gap:packets",
        {"idle/gap/packets", CpuState::Idle, RadioState::Idle});
  if (backlog > 0.0)
    t.add(backlog, device_.decompress_power_w(ps), "decomp:tail",
          {"cpu/decompress/" + codec, CpuState::Busy, RadioState::Idle});

  TransferResult r;
  r.timeline = std::move(t);
  r.time_s = r.timeline.total_time_s();
  r.energy_j = r.timeline.total_energy_j();
  r.download_time_s = payload / rate;
  r.decompress_time_s = total_work;
  r.retransmissions = retransmissions;
  r.link_drops = link_drops;
  r.retransmit_energy_j =
      retrans_s * device_.recv_active_power_w(ps) +
      backoff_s * device_.gap_power_w(ps);
  static const std::vector<std::string> kPrefixes = {"recv", "gap", "startup",
                                                     "decomp"};
  const auto totals = r.timeline.totals_with_prefixes(kPrefixes);
  r.download_energy_j =
      totals[0].energy_j + totals[1].energy_j + totals[2].energy_j;
  r.decompress_energy_j = totals[3].energy_j;
  return r;
}

}  // namespace ecomp::sim

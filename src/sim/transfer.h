// TransferSimulator — deterministic reconstruction of the paper's
// download scenarios, producing time and energy from the device model:
//
//   * uncompressed download                         (Eq. 1 shape)
//   * precompressed download, sequential decompress (Eq. 2 shape)
//   * precompressed download, interleaved decompress(Eq. 3 shape)
//   * compression on demand at the proxy, sequential or overlapped (§5)
//   * selective block containers (Fig. 10/11)
//
// The simulator is an independent computation from core::EnergyModel's
// closed forms; Figs. 7/9 compare the two.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/timeline.h"

namespace ecomp::sim {

enum class OnDemand {
  None,        ///< file is precompressed on the proxy
  Sequential,  ///< proxy compresses fully before sending (gzip/compress)
  Overlapped,  ///< proxy compresses block-by-block while sending (zlib)
};

struct TransferOptions {
  bool interleave = false;
  bool power_saving = false;  ///< radio power-saving during download
  /// Put the radio in the power-saving sleep/idle toggle while doing a
  /// sequential (non-interleaved) decompress tail (the bzip2 case).
  bool sleep_during_decompress = false;
  OnDemand on_demand = OnDemand::None;
  /// Compression buffer granularity; the paper assumes 0.128 MB.
  double block_mb = 0.128;
};

struct TransferResult {
  Timeline timeline;
  double time_s = 0.0;
  double energy_j = 0.0;
  // Phase breakdowns (by timeline label prefix):
  double download_time_s = 0.0;    ///< time the link is delivering bits
  double decompress_time_s = 0.0;  ///< CPU time spent decompressing
  double wait_time_s = 0.0;        ///< waiting on proxy compression
  double download_energy_j = 0.0;  ///< receive + gap energy
  double decompress_energy_j = 0.0;
  double wait_energy_j = 0.0;
  // Lossy-channel accounting (packet-level simulator only; zero on a
  // perfect channel):
  std::uint64_t retransmissions = 0;  ///< failed link-layer attempts
  std::uint64_t link_drops = 0;       ///< retry-cap exhaustions (frame
                                      ///< escalated to the transport)
  double retransmit_energy_j = 0.0;   ///< energy under radio/retransmit
};

/// One block of a selective container, in MB.
struct BlockTransfer {
  double raw_mb = 0.0;
  double payload_mb = 0.0;
  bool compressed = false;
};

class TransferSimulator {
 public:
  TransferSimulator(DeviceModel device, ProxyModel proxy)
      : device_(device), proxy_(proxy) {}
  explicit TransferSimulator(DeviceModel device)
      : TransferSimulator(device, ProxyModel::dell_p3()) {}
  TransferSimulator()
      : TransferSimulator(DeviceModel::ipaq_11mbps()) {}

  /// Download `mb` megabytes with no compression.
  TransferResult download_uncompressed(double mb,
                                       bool power_saving = false) const;

  /// Download a file precompressed (or compressed on demand) with
  /// `codec` from `original_mb` down to `compressed_mb`.
  TransferResult download_compressed(double original_mb, double compressed_mb,
                                     const std::string& codec,
                                     const TransferOptions& opt) const;

  /// Download a selective container block-by-block. Raw blocks cost a
  /// small copy pass instead of a decompress pass.
  TransferResult download_selective(const std::vector<BlockTransfer>& blocks,
                                    const std::string& codec,
                                    const TransferOptions& opt) const;

  // ---- upload (the paper's stated future work, §1/§7) ----------------

  /// Upload `mb` megabytes uncompressed (send is modelled symmetric to
  /// receive on the WaveLAN card).
  TransferResult upload_uncompressed(double mb,
                                     bool power_saving = false) const;

  /// Compress on the handheld, then upload. opt.interleave compresses
  /// block i+1 inside the send gaps of block i (the upload dual of the
  /// download interleaving); when the 206 MHz CPU cannot keep up, the
  /// send stretches to the compression rate. opt.sleep_during_decompress
  /// is reused as "radio sleeps during the up-front compression" for
  /// the sequential variant.
  TransferResult upload_compressed(double original_mb, double compressed_mb,
                                   const std::string& codec,
                                   const TransferOptions& opt) const;

  const DeviceModel& device() const { return device_; }
  const ProxyModel& proxy() const { return proxy_; }

  /// Simulated raw-download energy per delivered MB — the discrete
  /// counterpart of core::EnergyModel::raw_j_per_mb, used to price
  /// wasted wire bytes in the proxy's J/MB-served monitor gauge.
  double raw_j_per_mb(double mb = 1.0) const {
    return download_uncompressed(mb).energy_j / mb;
  }

  /// CPU cost of handling a raw (uncompressed) block in a selective
  /// container, s/MB. Nearly free: the same buffer hand-off happens for
  /// a plain raw download, so only the container bookkeeping is extra.
  static constexpr double kRawCopySPerMb = 0.005;

 private:
  struct DownloadSpec {
    double payload_mb = 0.0;
    double rate_mb_s = 0.0;        ///< effective delivery rate
    double first_block_mb = 0.0;   ///< portion whose gaps cannot be filled
    double decompress_work_s = 0.0;///< CPU work available to fill gaps
    bool power_saving = false;
    std::string codec = "raw";     ///< codec name for energy attribution
  };
  /// Shared engine: download with optional gap-filling decompression,
  /// then a decompress tail for whatever work remains.
  void run_download(Timeline& t, const DownloadSpec& spec,
                    bool sleep_during_tail) const;

  DeviceModel device_;
  ProxyModel proxy_;
};

}  // namespace ecomp::sim

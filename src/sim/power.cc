#include "sim/power.h"

#include "util/bytes.h"

namespace ecomp::sim {

const char* to_string(CpuState s) {
  return s == CpuState::Idle ? "idle" : "busy";
}

const char* to_string(RadioState s) {
  switch (s) {
    case RadioState::Sleep: return "sleep";
    case RadioState::Idle: return "idle";
    case RadioState::Recv: return "recv";
    case RadioState::Send: return "send";
  }
  return "?";
}

PowerModel::PowerModel(double voltage, std::vector<PowerEntry> entries)
    : voltage_(voltage), entries_(std::move(entries)) {}

double PowerModel::current_ma(CpuState cpu, RadioState radio,
                              bool power_saving) const {
  for (const auto& e : entries_)
    if (e.cpu == cpu && e.radio == radio && e.power_saving == power_saving)
      return e.avg_ma;
  throw Error(std::string("PowerModel: no entry for cpu=") + to_string(cpu) +
              " radio=" + to_string(radio) +
              (power_saving ? " ps=on" : " ps=off"));
}

double PowerModel::power_w(CpuState cpu, RadioState radio,
                           bool power_saving) const {
  return voltage_ * current_ma(cpu, radio, power_saving) / 1000.0;
}

PowerModel PowerModel::ipaq_wavelan() {
  // Table 1 of the paper. Sleep-mode rows apply regardless of the
  // power-saving flag (the card is asleep either way), so they appear
  // under both flag values. Averages in parentheses in the paper (gzip
  // decompression mix) are used where given; plain readings otherwise;
  // busy+recv rows use the range midpoint.
  using C = CpuState;
  using R = RadioState;
  std::vector<PowerEntry> rows = {
      {C::Idle, R::Sleep, false, 90, 90, 90},
      {C::Idle, R::Sleep, true, 90, 90, 90},
      {C::Busy, R::Sleep, false, 300, 440, 310},
      {C::Busy, R::Sleep, true, 300, 440, 310},
      {C::Idle, R::Idle, false, 310, 310, 310},
      {C::Idle, R::Idle, true, 110, 110, 110},
      {C::Busy, R::Idle, false, 530, 670, 570},
      {C::Busy, R::Idle, true, 330, 470, 340},
      {C::Idle, R::Recv, false, 430, 430, 430},
      {C::Idle, R::Recv, true, 400, 400, 400},
      {C::Busy, R::Recv, false, 550, 690, 620},
      {C::Busy, R::Recv, true, 470, 690, 580},
      // The paper's table covers downloading; sending draws similar
      // current to receiving on this card, modelled symmetric here.
      {C::Idle, R::Send, false, 430, 430, 430},
      {C::Idle, R::Send, true, 400, 400, 400},
      {C::Busy, R::Send, false, 550, 690, 620},
      {C::Busy, R::Send, true, 470, 690, 580},
  };
  return PowerModel(5.0, std::move(rows));
}

}  // namespace ecomp::sim

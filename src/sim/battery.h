// Battery model for lifetime projections. The paper measures current
// with the battery removed (bench supply); this converts its energy
// numbers back into "hours of use per charge" for the session benches.
#pragma once

namespace ecomp::sim {

struct BatteryModel {
  /// iPAQ 36xx main battery: ~1400 mAh Li-polymer.
  double capacity_mah = 1400.0;
  double voltage = 5.0;  ///< measured at the 5 V rail, matching Table 1
  /// Fraction of nominal capacity usable before shutdown.
  double usable_fraction = 0.9;

  double capacity_j() const {
    return capacity_mah / 1000.0 * 3600.0 * voltage * usable_fraction;
  }

  /// How many times a task costing `energy_j` fits in one charge.
  double charges_per_task(double energy_j) const {
    return energy_j > 0.0 ? capacity_j() / energy_j : 0.0;
  }

  static BatteryModel ipaq() { return BatteryModel{}; }
};

}  // namespace ecomp::sim

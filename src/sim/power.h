// Power-state model of the handheld: the paper's Table 1 (electrical
// current in mA at 5 V for each CPU × WaveLAN × power-saving state),
// measured on a Compaq iPAQ 3650 with a Lucent WaveLAN card.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace ecomp::sim {

enum class CpuState { Idle, Busy };
enum class RadioState { Sleep, Idle, Recv, Send };

const char* to_string(CpuState s);
const char* to_string(RadioState s);

/// One row of Table 1. Rows whose current fluctuates with the executed
/// instruction mix carry a [min,max] range; `avg_ma` is the paper's
/// parenthesized average for gzip decompression where given, otherwise
/// the single reading or the range midpoint.
struct PowerEntry {
  CpuState cpu;
  RadioState radio;
  bool power_saving;
  double min_ma;
  double max_ma;
  double avg_ma;
};

class PowerModel {
 public:
  PowerModel(double voltage, std::vector<PowerEntry> entries);

  /// Average current draw (mA) for a state. Throws Error for states the
  /// model has no row for.
  double current_ma(CpuState cpu, RadioState radio, bool power_saving) const;

  /// Average power draw in watts.
  double power_w(CpuState cpu, RadioState radio, bool power_saving) const;

  double voltage() const { return voltage_; }
  const std::vector<PowerEntry>& entries() const { return entries_; }

  /// Table 1 as measured on the iPAQ 3650 + WaveLAN.
  static PowerModel ipaq_wavelan();

 private:
  double voltage_;
  std::vector<PowerEntry> entries_;
};

}  // namespace ecomp::sim

// Wireless link model for the WaveLAN 802.11b card, using the paper's
// measured characteristics: 11 Mb/s nominal ⇒ ~0.6 MB/s effective with
// the CPU idle 40% of the receive time; 2 Mb/s nominal ⇒ 0.18 MB/s with
// 81.5% idle; power-saving mode costs ~25% of effective rate.
#pragma once

namespace ecomp::sim {

struct RadioModel {
  double nominal_mbps = 11.0;
  /// Effective application-level receive rate without power saving, in
  /// MB/s (the paper measures 602 KB/s ≈ 0.6 MB/s at 11 Mb/s).
  double effective_mbps_mbytes = 0.6;
  /// CPU time consumed per MB received (interrupts, copies, reassembly).
  /// ≈ 1.0 s/MB on the iPAQ at both measured rates, which is exactly why
  /// the idle fraction is 40% at 0.6 MB/s and 81.5% at 0.18 MB/s.
  double cpu_active_s_per_mb = 1.0;
  /// Network communication start-up energy (the paper's cs), joules.
  double startup_energy_j = 0.012;
  /// Effective-rate derating when the power-saving mode is enabled.
  double power_saving_derate = 0.25;

  /// Effective receive rate in MB/s under the given power mode.
  double rate_mb_per_s(bool power_saving) const {
    return effective_mbps_mbytes * (power_saving ? 1.0 - power_saving_derate
                                                 : 1.0);
  }

  /// Fraction of download wall-time the CPU sits idle between packets.
  double idle_fraction(bool power_saving) const {
    const double f = 1.0 - cpu_active_s_per_mb * rate_mb_per_s(power_saving);
    return f < 0.0 ? 0.0 : f;
  }

  /// The paper's 11 Mb/s environment (main experiments).
  static RadioModel wavelan_11mbps() { return RadioModel{}; }

  /// The §4.2 robustness setting: 2 Mb/s nominal, 180 KB/s effective,
  /// 81.5% idle. cpu_active_s_per_mb is re-derived from those readings:
  /// (1 − 0.815) / 0.18 ≈ 1.028 s/MB.
  static RadioModel wavelan_2mbps() {
    RadioModel r;
    r.nominal_mbps = 2.0;
    r.effective_mbps_mbytes = 0.18;
    r.cpu_active_s_per_mb = (1.0 - 0.815) / 0.18;
    return r;
  }
};

}  // namespace ecomp::sim

// CPU cost models: decompression/compression time as an affine function
// of input and output sizes, the same functional form the paper fits
// for gzip on the iPAQ (td = 0.161·s + 0.161·sc + 0.004, sizes in MB,
// R² = 96.7%). Costs for the other codecs keep the paper's qualitative
// ordering: LZW decodes slightly slower than LZ77 per byte; BWT decode
// pays the inverse block sort and runs several times slower.
#pragma once

#include <string>
#include <string_view>

namespace ecomp::sim {

/// t = s_per_mb_in · MB_in + s_per_mb_out · MB_out + startup_s
struct CodecCost {
  double s_per_mb_in = 0.0;
  double s_per_mb_out = 0.0;
  double startup_s = 0.0;

  double time_s(double mb_in, double mb_out) const {
    return s_per_mb_in * mb_in + s_per_mb_out * mb_out + startup_s;
  }
};

/// Handheld-side (iPAQ, 206 MHz StrongARM) codec costs.
class CpuModel {
 public:
  /// Decompression cost for "deflate" | "lzw" | "bwt". Throws on unknown
  /// codec names.
  CodecCost decompress_cost(std::string_view codec) const;
  /// Compression cost on the handheld (used by upload-style scenarios).
  CodecCost compress_cost(std::string_view codec) const;

  double decompress_time_s(std::string_view codec, double mb_in,
                           double mb_out) const {
    return decompress_cost(codec).time_s(mb_in, mb_out);
  }

  static CpuModel ipaq();
};

/// Proxy-side (Dell Dimension 4100, 1 GHz P-III) compression costs, for
/// the §5 compression-on-demand experiments.
class ProxyModel {
 public:
  CodecCost compress_cost(std::string_view codec) const;
  double compress_time_s(std::string_view codec, double mb_in,
                         double mb_out) const {
    return compress_cost(codec).time_s(mb_in, mb_out);
  }

  static ProxyModel dell_p3();
};

}  // namespace ecomp::sim

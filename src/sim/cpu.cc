#include "sim/cpu.h"

#include "util/bytes.h"

namespace ecomp::sim {
namespace {

[[noreturn]] void unknown(std::string_view codec) {
  throw Error("CpuModel: unknown codec " + std::string(codec));
}

}  // namespace

CodecCost CpuModel::decompress_cost(std::string_view codec) const {
  // deflate is the paper's measured gzip fit. lzw decode touches the
  // dictionary per output byte and is mildly slower per byte of output;
  // bwt pays the inverse transform and, per the paper, is slower "by
  // some constant factors" — Fig. 1's decompress bars put it at roughly
  // 5-6x gzip on equal data.
  if (codec == "deflate" || codec == "gzip" || codec == "zlib")
    return {0.161, 0.161, 0.004};
  if (codec == "lzw" || codec == "compress") return {0.14, 0.26, 0.004};
  if (codec == "bwt" || codec == "bzip2") return {0.35, 1.00, 0.015};
  unknown(codec);
}

CodecCost CpuModel::compress_cost(std::string_view codec) const {
  // Compression on the 206 MHz StrongARM is far more expensive than
  // decompression (level-9 searching): roughly 9x slower than the 1 GHz
  // P-III proxy (1/5 clock, weaker memory system). Used by the upload
  // scenarios.
  if (codec == "deflate" || codec == "gzip" || codec == "zlib")
    return {1.25, 0.05, 0.004};
  if (codec == "lzw" || codec == "compress") return {0.45, 0.05, 0.004};
  if (codec == "bwt" || codec == "bzip2") return {8.0, 0.2, 0.02};
  unknown(codec);
}

CpuModel CpuModel::ipaq() { return CpuModel{}; }

CodecCost ProxyModel::compress_cost(std::string_view codec) const {
  // 1 GHz P-III. gzip -9 sustains ~7 MB/s of input; compress (LZW) is
  // faster; bzip2 -9 is the slow one. Sending 0.6 MB/s of *compressed*
  // output demands 0.6·F MB/s of raw input from the compressor, so
  // gzip/lzw overlap transmission almost completely up to F ≈ 10-30
  // (the paper's §5 observation) while bzip2 throttles the link.
  if (codec == "deflate" || codec == "gzip" || codec == "zlib")
    return {0.14, 0.01, 0.002};
  if (codec == "lzw" || codec == "compress") return {0.05, 0.01, 0.001};
  if (codec == "bwt" || codec == "bzip2") return {0.9, 0.03, 0.01};
  throw Error("ProxyModel: unknown codec " + std::string(codec));
}

ProxyModel ProxyModel::dell_p3() { return ProxyModel{}; }

}  // namespace ecomp::sim

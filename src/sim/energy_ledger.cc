#include "sim/energy_ledger.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace ecomp::sim {
namespace {

/// "a/b/c" -> {"a", "a/b", "a/b/c"}.
std::vector<std::string> ancestry(const std::string& path) {
  std::vector<std::string> out;
  for (std::size_t pos = path.find('/'); pos != std::string::npos;
       pos = path.find('/', pos + 1))
    out.push_back(path.substr(0, pos));
  out.push_back(path);
  return out;
}

bool is_child_of(const std::string& path, std::string_view parent) {
  if (parent.empty())  // roots: no '/' at all
    return path.find('/') == std::string::npos;
  if (path.size() <= parent.size() + 1) return false;
  if (path.compare(0, parent.size(), parent) != 0) return false;
  if (path[parent.size()] != '/') return false;
  return path.find('/', parent.size() + 1) == std::string::npos;
}

}  // namespace

EnergyLedger EnergyLedger::from_timeline(const Timeline& timeline) {
  EnergyLedger ledger;
  for (const auto& p : timeline.phases()) {
    const std::string& component =
        p.attr.component.empty() ? attribution_for_label(p.label).component
                                 : p.attr.component;
    const double e = p.energy_j();
    ledger.total_energy_j_ += e;
    ledger.total_time_s_ += p.duration_s;
    int depth = 0;
    for (const auto& node_path : ancestry(component)) {
      LedgerNode& node = ledger.by_path_[node_path];
      if (node.component.empty()) {
        node.component = node_path;
        node.depth = depth;
        node.leaf = true;
      }
      node.energy_j += e;
      node.time_s += p.duration_s;
      ++depth;
    }
  }
  // Mark interior nodes: any node that is a proper prefix of another.
  for (auto& [path, node] : ledger.by_path_) {
    const auto next = ledger.by_path_.upper_bound(path);
    if (next != ledger.by_path_.end() &&
        next->first.rfind(path + "/", 0) == 0)
      node.leaf = false;
  }
  ledger.nodes_.reserve(ledger.by_path_.size());
  for (const auto& [_, node] : ledger.by_path_) ledger.nodes_.push_back(node);
  return ledger;
}

double EnergyLedger::energy_j(std::string_view component) const {
  const auto it = by_path_.find(std::string(component));
  return it == by_path_.end() ? 0.0 : it->second.energy_j;
}

double EnergyLedger::time_s(std::string_view component) const {
  const auto it = by_path_.find(std::string(component));
  return it == by_path_.end() ? 0.0 : it->second.time_s;
}

std::vector<const LedgerNode*> EnergyLedger::children(
    std::string_view component) const {
  std::vector<const LedgerNode*> out;
  for (const auto& [path, node] : by_path_)
    if (is_child_of(path, component)) out.push_back(&node);
  return out;
}

std::string EnergyLedger::validate(const Timeline& timeline,
                                   double tol) const {
  char buf[256];
  // 1. The ledger total must equal the timeline's independent sum.
  const double timeline_total = timeline.total_energy_j();
  double root_sum = 0.0;
  for (const auto* root : children(""))
    root_sum += root->energy_j;
  if (std::abs(root_sum - timeline_total) > tol) {
    std::snprintf(buf, sizeof buf,
                  "ledger roots sum to %.12g J but timeline total is %.12g J",
                  root_sum, timeline_total);
    return buf;
  }
  if (std::abs(total_energy_j_ - timeline_total) > tol) {
    std::snprintf(buf, sizeof buf,
                  "ledger total %.12g J != timeline total %.12g J",
                  total_energy_j_, timeline_total);
    return buf;
  }
  // 2. Children sum to their parent.
  for (const auto& [path, node] : by_path_) {
    if (node.leaf) continue;
    double child_sum = 0.0;
    for (const auto* child : children(path)) child_sum += child->energy_j;
    if (std::abs(child_sum - node.energy_j) > tol) {
      std::snprintf(buf, sizeof buf,
                    "children of '%s' sum to %.12g J but parent has %.12g J",
                    path.c_str(), child_sum, node.energy_j);
      return buf;
    }
  }
  // 3. No component carries negative energy or time.
  for (const auto& [path, node] : by_path_) {
    if (node.energy_j < -tol || node.time_s < -tol) {
      std::snprintf(buf, sizeof buf, "component '%s' is negative (%.12g J)",
                    path.c_str(), node.energy_j);
      return buf;
    }
  }
  return "";
}

std::string EnergyLedger::to_text() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-36s %12s %7s %10s\n", "component",
                "energy (J)", "share", "time (s)");
  os << buf;
  for (const auto& node : nodes_) {
    const std::string name =
        std::string(static_cast<std::size_t>(2 * node.depth), ' ') +
        node.component.substr(node.component.find_last_of('/') + 1);
    const double share =
        total_energy_j_ > 0.0 ? node.energy_j / total_energy_j_ : 0.0;
    std::snprintf(buf, sizeof buf, "%-36s %12.6f %6.1f%% %10.4f\n",
                  name.c_str(), node.energy_j, 100.0 * share, node.time_s);
    os << buf;
  }
  std::snprintf(buf, sizeof buf, "%-36s %12.6f %6.1f%% %10.4f\n", "total",
                total_energy_j_, 100.0, total_time_s_);
  os << buf;
  return os.str();
}

std::string EnergyLedger::to_json() const {
  std::ostringstream os;
  os << "{\"total_energy_j\":" << obs::json_number(total_energy_j_)
     << ",\"total_time_s\":" << obs::json_number(total_time_s_)
     << ",\"components\":{";
  bool first = true;
  for (const auto& node : nodes_) {
    if (!first) os << ",";
    first = false;
    os << obs::json_quote(node.component)
       << ":{\"energy_j\":" << obs::json_number(node.energy_j)
       << ",\"time_s\":" << obs::json_number(node.time_s) << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace ecomp::sim

// DeviceModel composes the power table, the radio model and the CPU cost
// model, and derives the handful of effective powers the paper's energy
// equations are built from (m, pi, pd).
#pragma once

#include "sim/cpu.h"
#include "sim/power.h"
#include "sim/radio.h"

namespace ecomp::sim {

struct DeviceModel {
  PowerModel power = PowerModel::ipaq_wavelan();
  RadioModel radio = RadioModel::wavelan_11mbps();
  CpuModel cpu = CpuModel::ipaq();

  /// Fraction of active receive time the CPU spends copying/assembling
  /// packets (busy+recv) rather than plain receiving (idle+recv).
  /// Calibrated so that receive energy per MB without power saving
  /// reproduces the paper's fitted m = 2.486 J/MB at 1.0 s/MB of active
  /// time: (1-k)·2.15 W + k·3.10 W = 2.486 W ⇒ k ≈ 0.354.
  double recv_copy_fraction = 0.3537;

  /// Average power while actively receiving (the mix above).
  double recv_active_power_w(bool power_saving) const {
    const double p_recv =
        power.power_w(CpuState::Idle, RadioState::Recv, power_saving);
    const double p_busy =
        power.power_w(CpuState::Busy, RadioState::Recv, power_saving);
    return (1.0 - recv_copy_fraction) * p_recv +
           recv_copy_fraction * p_busy;
  }

  /// Power during CPU-idle gaps between packets (radio stays idle-on,
  /// or idle/sleep toggling under power saving). The paper's pi.
  double gap_power_w(bool power_saving) const {
    return power.power_w(CpuState::Idle, RadioState::Idle, power_saving);
  }

  /// Power while decompressing with the radio idle. The paper's pd:
  /// 2.85 W with power saving off, 1.70 W with the card in the
  /// power-saving sleep/idle toggle.
  double decompress_power_w(bool power_saving) const {
    return power.power_w(CpuState::Busy, RadioState::Idle, power_saving);
  }

  /// Receive (+copy) energy per MB — the paper's m.
  double recv_energy_per_mb(bool power_saving) const {
    return recv_active_power_w(power_saving) * radio.cpu_active_s_per_mb;
  }

  static DeviceModel ipaq_11mbps() { return DeviceModel{}; }
  static DeviceModel ipaq_2mbps() {
    DeviceModel d;
    d.radio = RadioModel::wavelan_2mbps();
    return d;
  }
};

}  // namespace ecomp::sim

// Timeline -> trace bridge: replays a sim::Timeline's phase ledger onto
// the tracer's simulated-seconds track, so every Fig. 3/4-style phase
// diagram can also be opened in Perfetto next to the wall-clock spans.
#pragma once

#include <string_view>

#include "obs/trace.h"
#include "sim/timeline.h"

namespace ecomp::sim {

/// Emit one sim-track complete event per timed phase (cumulative start
/// offsets, labels as event names) and one zero-duration instant per
/// fixed-energy charge. `cat` groups the timeline's events in the
/// viewer; `offset_s` shifts the whole timeline (for laying several
/// scenarios side by side). Returns the timeline's total duration so
/// callers can stack the next one after it.
double timeline_to_trace(const Timeline& timeline, obs::Tracer& tracer,
                         std::string_view cat, double offset_s = 0.0);

}  // namespace ecomp::sim

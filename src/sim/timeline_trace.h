// Timeline -> trace bridge: replays a sim::Timeline's phase ledger onto
// the tracer's simulated-seconds track, so every Fig. 3/4-style phase
// diagram can also be opened in Perfetto next to the wall-clock spans.
//
// Besides one complete event per phase, the bridge emits two counter
// tracks on the sim pid — instantaneous power ("power_w") and running
// cumulative energy ("energy_j") — so the energy story renders directly
// under the span story (fig3/fig5 traces).
#pragma once

#include <string_view>

#include "obs/trace.h"
#include "sim/timeline.h"

namespace ecomp::sim {

/// Emit one sim-track complete event per timed phase (cumulative start
/// offsets, labels as event names) and one zero-duration instant per
/// fixed-energy charge, plus "power_w" / "energy_j" counter samples at
/// every phase boundary. `cat` groups the timeline's events in the
/// viewer; `offset_s` shifts the whole timeline (for laying several
/// scenarios side by side). Returns the timeline's total duration so
/// callers can stack the next one after it.
double timeline_to_trace(const Timeline& timeline, obs::Tracer& tracer,
                         std::string_view cat, double offset_s = 0.0);

}  // namespace ecomp::sim

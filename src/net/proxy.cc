#include "net/proxy.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "compress/deflate.h"
#include "core/interleave.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "sim/transfer.h"
#include "util/crc32.h"
#include "util/rng.h"

#if defined(ECOMP_OBS_ENABLED)
#include "core/energy_model.h"
#include "obs/monitor.h"
#include "prof/alloc.h"
#include "prof/flight.h"
#include "prof/profiler.h"
#endif

namespace ecomp::net {
namespace {

/// Strip an optional trailing " trace=<16hex>" token off a request
/// line. Returns the parsed context — invalid (and the line untouched)
/// when the token is absent or malformed.
obs::TraceContext strip_trace(std::string* req) {
  static const std::string kKey = " trace=";
  const auto pos = req->rfind(kKey);
  if (pos == std::string::npos) return {};
  const obs::TraceContext ctx =
      obs::TraceContext::from_hex(std::string_view(*req).substr(pos + kKey.size()));
  if (ctx.valid()) req->erase(pos);
  return ctx;
}

/// Append the reply-side trace echo when the request carried one.
std::string with_trace(std::string status, const obs::TraceContext& ctx) {
  if (ctx.valid()) status += " trace=" + ctx.hex();
  return status;
}

/// Parse the echoed trace id out of a reply status (0 when absent).
std::uint64_t echoed_trace(const std::string& status) {
  static const std::string kKey = " trace=";
  const auto pos = status.rfind(kKey);
  if (pos == std::string::npos) return 0;
  return obs::TraceContext::from_hex(
             std::string_view(status).substr(pos + kKey.size()))
      .trace_id;
}

/// Parse a "BUSY <retry-after-ms>" status (anywhere in `s`, so client
/// retry loops can also fish it out of a wrapped error message).
/// Returns -1 when absent.
std::int64_t parse_busy_retry_ms(const std::string& s) {
  const auto pos = s.find("BUSY ");
  if (pos == std::string::npos) return -1;
  std::istringstream iss(s.substr(pos + 5));
  std::uint64_t ms = 0;
  if (!(iss >> ms)) return -1;
  return static_cast<std::int64_t>(ms);
}

/// Test hook: when ECOMP_PROF_TEST_CRASH is set, fault mid-download
/// (after the first payload bytes arrive) so the crash-dump pipeline can
/// be exercised end-to-end from a child process.
void maybe_test_crash() {
#if defined(ECOMP_OBS_ENABLED)
  static const bool want = std::getenv("ECOMP_PROF_TEST_CRASH") != nullptr;
  if (want) ::raise(SIGSEGV);
#endif
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return static_cast<std::uint64_t>(us < 0 ? 0 : us);
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void FileStore::put(std::string name, Bytes data) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[std::move(name)] = std::move(data);
}

Bytes FileStore::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = files_.find(name);
  if (it == files_.end()) throw Error("FileStore: no file named " + name);
  return it->second;
}

bool FileStore::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) != 0;
}

std::map<std::string, Bytes> FileStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_;
}

ProxyServer::ProxyServer(FileStore store, compress::SelectivePolicy policy,
                         std::size_t block_size, bool precompress,
                         unsigned threads, MonitorConfig monitor)
    : ProxyServer(std::move(store), std::move(policy), [&] {
        ProxyOptions o;
        o.block_size = block_size;
        o.precompress = precompress;
        o.threads = threads;
        o.monitor = monitor;
        return o;
      }()) {}

ProxyServer::ProxyServer(FileStore store, compress::SelectivePolicy policy,
                         ProxyOptions options)
    : store_(std::move(store)),
      policy_(std::move(policy)),
      options_(options),
      cache_(options.cache_capacity_bytes),
      listener_(options.port) {
  if (options_.threads == 0) options_.threads = 1;
  if (options_.workers == 0) options_.workers = 1;
#if defined(ECOMP_OBS_ENABLED)
  // Every event emitted anywhere in the process also lands in the
  // flight recorder, so a crash dump always has recent history.
  prof::attach_flight_mirror();
#endif
  if (options_.precompress) {
    for (const auto& [name, data] : store_.snapshot()) {
      cache_.put(cache_key(name, "full9"),
                 compress::DeflateCodec().compress(data));
      cache_.put(cache_key(name, "sel9"),
                 compress::selective_compress(data, policy_,
                                              options_.block_size, 9,
                                              options_.threads)
                     .container);
    }
  }
  // The pool's bounded queue is the admission queue: with max_conns=K
  // at most K connections are queued or in service, and try_submit
  // never refuses an admitted connection (queued <= admitted <= K).
  // Unbounded admission (K=0, the legacy mode) gets an effectively
  // infinite queue so connections wait instead of being refused.
  const std::size_t queue_cap =
      options_.max_conns ? options_.max_conns : (std::size_t{1} << 20);
  pool_ = std::make_unique<par::ThreadPool>(options_.workers, queue_cap);
  start_monitor(options_.monitor);
  thread_ = std::thread([this] { serve(); });
}

std::string ProxyServer::cache_key(const std::string& name,
                                   const char* variant) const {
  return name + '\x1f' + variant;
}

std::shared_ptr<const Bytes> ProxyServer::cached_payload(
    const std::string& key, const std::function<Bytes()>& build) {
  // Loop: when a concurrent builder abandons (its connection died), one
  // waiter wins the next flight and builds.
  while (true) {
    auto lk = cache_.acquire(key);
    if (lk.data) return lk.data;
    if (lk.builder) return lk.builder->publish(build());
  }
}

void ProxyServer::start_monitor(const MonitorConfig& cfg) {
#if defined(ECOMP_OBS_ENABLED)
  if (!cfg.enabled) return;
  // The SLO baseline: Eq. 1 raw-download energy per MB on the paper's
  // iPAQ/11 Mb/s device, shifted by the observed loss rate (every
  // delivered MB costs 1/(1-q) transmissions). A healthy proxy serves
  // at or below this line; faults push measured J/MB-served above it.
  double raw_line = 0.0;
  try {
    raw_line = core::EnergyModel::from_device(sim::DeviceModel::ipaq_11mbps())
                   .with_loss(cfg.loss)
                   .raw_j_per_mb(1.0);
  } catch (const std::exception&) {
    raw_line = core::EnergyModel::from_device(sim::DeviceModel::ipaq_11mbps())
                   .raw_j_per_mb(1.0);
  }
  // Price wasted wire bytes at the clean raw line: energy the device
  // spent receiving data that an error then threw away.
  const double waste_line = sim::TransferSimulator().raw_j_per_mb();

  obs::MonitorOptions mopt;
  mopt.cadence_ms = cfg.cadence_ms;
  monitor_ = std::make_shared<obs::Monitor>(mopt);

  monitor_->add_source([this, waste_line](double t, obs::SeriesStore& st) {
    const double ok_mb =
        static_cast<double>(bytes_ok_raw_.load(std::memory_order_relaxed)) /
        1e6;
    const double waste_mb =
        static_cast<double>(
            bytes_waste_wire_.load(std::memory_order_relaxed)) /
        1e6;
    const double e_down_j =
        static_cast<double>(energy_down_uj_.load(std::memory_order_relaxed)) *
        1e-6;
    if (ok_mb > 0.0)
      st.series("net.proxy.j_per_mb_served")
          .append(t, (e_down_j + waste_mb * waste_line) / ok_mb);
    st.series("net.proxy.wire_waste_mb").append(t, waste_mb);
    st.series("net.proxy.conns_active")
        .append(t, static_cast<double>(
                       conns_active_.load(std::memory_order_relaxed)));
    st.series("net.proxy.admission_depth")
        .append(t, static_cast<double>(
                       admitted_.load(std::memory_order_relaxed)));
    st.series("net.proxy.conns_busy")
        .append(t, static_cast<double>(
                       conns_busy_.load(std::memory_order_relaxed)));
    st.series("net.proxy.degraded")
        .append(
            t,
            static_cast<double>(
                degraded_level_total_.load(std::memory_order_relaxed) +
                degraded_raw_total_.load(std::memory_order_relaxed)));
    // Seconds the most-stalled active connection has gone without
    // moving a byte (0 when idle). Delay faults sleep inside send/recv,
    // so progress goes stale while the connection stays active. Every
    // live connection is inspected — one stuck transfer among many
    // healthy ones still trips the watchdog.
    double stall_s = 0.0;
    const std::uint64_t now = steady_now_ns();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& [id, state] : conns_) {
        const std::uint64_t since =
            state->active_since_ns.load(std::memory_order_relaxed);
        if (since == 0) continue;
        const std::uint64_t ref = std::max(
            since, state->progress_ns.load(std::memory_order_relaxed));
        if (now > ref)
          stall_s = std::max(stall_s,
                             static_cast<double>(now - ref) / 1e9);
      }
    }
    st.series("net.proxy.conn_stall_s").append(t, stall_s);
  });

  {
    obs::Rule r;
    r.name = "energy-slo";
    r.kind = obs::RuleKind::Slo;
    r.series = "net.proxy.j_per_mb_served";
    r.threshold = raw_line * cfg.jmb_margin;
    r.above = true;
    r.for_n = 2;
    monitor_->add_rule(std::move(r));
  }
  if (cfg.latency_slo_ms > 0.0) {
    obs::Rule r;
    r.name = "latency-slo";
    r.kind = obs::RuleKind::Slo;
    r.series = "net.proxy.request_us.p99";
    r.threshold = cfg.latency_slo_ms * 1000.0;
    r.above = true;
    r.for_n = 2;
    monitor_->add_rule(std::move(r));
  }
  {
    obs::Rule r;
    r.name = "conn-stall";
    r.kind = obs::RuleKind::Stall;
    r.series = "net.proxy.conn_stall_s";
    r.threshold = cfg.stall_timeout_s;
    r.for_n = 1;
    monitor_->add_rule(std::move(r));
  }
  if (options_.max_conns > 0) {
    // Admission depth pinned near capacity means the pool is at the
    // shedding edge: clients are about to see BUSY.
    obs::Rule r;
    r.name = "admission-saturated";
    r.kind = obs::RuleKind::Slo;
    r.series = "net.proxy.admission_depth";
    r.threshold = 0.95 * static_cast<double>(options_.max_conns);
    r.above = true;
    r.for_n = 2;
    monitor_->add_rule(std::move(r));
  }
  if (options_.threads > 1) {
    // The pool queue holds 4x threads tasks; a p99 depth pinned near
    // capacity means compression cannot keep up with the wire.
    obs::Rule r;
    r.name = "par-queue-saturated";
    r.kind = obs::RuleKind::Slo;
    r.series = "par.queue_depth.p99";
    r.threshold = 0.95 * 4.0 * static_cast<double>(options_.threads);
    r.above = true;
    r.for_n = 2;
    monitor_->add_rule(std::move(r));
  }

  monitor_->set_alert_sink([this](const obs::Alert& a) {
    obs::Event e;
    e.stage = "alert";
    e.side = "proxy";
    e.name = a.rule;
    e.mode = a.series;
    e.err = a.detail;
    e.value = a.value;
    e.threshold = a.threshold;
    emit(e);
  });
  monitor_->start();
#else
  (void)cfg;
#endif
}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::stop() {
  if (stopping_.exchange(true)) return;
#if defined(ECOMP_OBS_ENABLED)
  if (monitor_) monitor_->stop();
#endif
  // Poke the accept loop awake with a throwaway connection, then join
  // it — no new connection is admitted past this point.
  try {
    Socket s = connect_local(listener_.port());
  } catch (const Error&) {
  }
  if (thread_.joinable()) thread_.join();
  // Graceful drain: in-flight (and already-queued) connections finish
  // under the deadline...
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drained_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_deadline_ms),
        [this] { return admitted_.load(std::memory_order_acquire) == 0; });
  }
  // ...after which still-queued connections are refused (workers check
  // drain_expired_ before reading the request) and in-service sockets
  // are broken so no transfer can wedge shutdown. ::shutdown (not
  // close) is safe against fd reuse: the registry entry is erased —
  // under conns_mu_ — strictly before the worker closes the fd.
  if (admitted_.load(std::memory_order_acquire) != 0) {
    drain_expired_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, state] : conns_) {
      const int fd = state->fd.load(std::memory_order_relaxed);
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  pool_.reset();  // runs every remaining queued task, then joins
}

void ProxyServer::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_injector_ = std::move(injector);
}

void ProxyServer::set_event_log(obs::EventLog* log) {
  events_.store(log, std::memory_order_release);
}

void ProxyServer::emit(const obs::Event& e) const {
  if (obs::EventLog* log = events_.load(std::memory_order_acquire))
    log->emit(e);
}

double ProxyServer::estimate_request_j(const std::string& mode,
                                       std::size_t raw_bytes,
                                       std::size_t wire_bytes) const {
  const double raw_mb = static_cast<double>(raw_bytes) / 1e6;
  const double wire_mb = static_cast<double>(wire_bytes) / 1e6;
  if (raw_mb <= 0.0 || wire_mb <= 0.0) return 0.0;
  try {
    const sim::TransferSimulator sim;
    if (mode == "raw") return sim.download_uncompressed(raw_mb).energy_j;
    sim::TransferOptions opt;
    opt.interleave = mode == "selective";
    if (mode == "put")
      return sim.upload_compressed(raw_mb, wire_mb, "zlib", opt).energy_j;
    return sim.download_compressed(raw_mb, wire_mb, "zlib", opt).energy_j;
  } catch (const std::exception&) {
    return 0.0;  // a ledger estimate must never fail a request
  }
}

obs::StatsSnapshot ProxyServer::stats() const {
  obs::StatsSnapshot s;
  s.provenance = obs::collect_provenance();
  s.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started_)
                   .count();
  s.connections_active = conns_active_.load(std::memory_order_relaxed);
  s.connections_total = conns_total_.load(std::memory_order_relaxed);
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.errors_total = errors_total_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_recv = bytes_recv_.load(std::memory_order_relaxed);
  s.energy_served_j =
      static_cast<double>(energy_served_uj_.load(std::memory_order_relaxed)) *
      1e-6;
  s.admission.present = true;
  s.admission.workers = options_.workers;
  s.admission.capacity = options_.max_conns;
  s.admission.depth = admitted_.load(std::memory_order_relaxed);
  s.admission.busy_total = conns_busy_.load(std::memory_order_relaxed);
  s.admission.degraded_level_total =
      degraded_level_total_.load(std::memory_order_relaxed);
  s.admission.degraded_raw_total =
      degraded_raw_total_.load(std::memory_order_relaxed);
  {
    const ContainerCache::Stats cs = cache_.stats();
    s.cache.present = true;
    s.cache.hits = cs.hits;
    s.cache.misses = cs.misses;
    s.cache.waits = cs.waits;
    s.cache.builds = cs.builds;
    s.cache.evictions = cs.evictions;
    s.cache.bytes = cs.bytes;
    s.cache.entries = cs.entries;
  }
  for (const auto& [name, v] : obs::Registry::global().counter_values())
    s.counters.emplace_back(name, v);
  // Instance histograms first, then the process-wide sliding set; one
  // final sort keeps the rendering byte-stable.
  s.histograms.push_back({"net.proxy.full_us", full_us_.snapshot()});
  s.histograms.push_back({"net.proxy.put_us", put_us_.snapshot()});
  s.histograms.push_back({"net.proxy.raw_us", raw_us_.snapshot()});
  s.histograms.push_back({"net.proxy.request_us", req_us_.snapshot()});
  s.histograms.push_back({"net.proxy.selective_us", selective_us_.snapshot()});
  for (auto& [name, snap] : obs::Registry::global().sliding_snapshots()) {
    if (name == "net.proxy.request_us") continue;  // instance copy wins
    s.histograms.push_back({name, snap});
  }
  std::sort(s.histograms.begin(), s.histograms.end(),
            [](const obs::HistStat& a, const obs::HistStat& b) {
              return a.name < b.name;
            });
#if defined(ECOMP_OBS_ENABLED)
  s.prof.present = true;
  s.prof.rss_peak_kb = prof::rss_peak_kb();
  s.prof.samples_lifetime = prof::Profiler::lifetime_samples();
  s.prof.sampler_active = prof::Profiler::sampler_active();
  s.prof.flight_recorded = prof::FlightRecorder::global().recorded();
  for (const auto& a : prof::alloc_snapshot())
    s.prof.alloc.push_back({a.component, a.bytes, a.allocs, a.peak});
  if (monitor_) {
    s.monitor.present = true;
    s.monitor.ticks = monitor_->ticks();
    s.monitor.alerts_total = monitor_->alerts_total();
    s.monitor.gauges = monitor_->latest();
    for (const auto& a : monitor_->recent_alerts())
      s.monitor.alerts.push_back(
          {a.rule, a.series, a.detail, a.t_s, a.value, a.threshold});
  }
#endif
  return s;
}

void ProxyServer::shed(Socket client, std::uint64_t conn) {
  conns_busy_.fetch_add(1, std::memory_order_relaxed);
  ECOMP_COUNT("net.proxy.busy");
  try {
    // Consume the request frame before refusing: closing with unread
    // data pending would RST the connection and the RST can destroy
    // the BUSY reply in flight (the client would see a broken pipe
    // instead of the retry-after hint). The deadline keeps a silent
    // peer from stalling the accept thread.
    client.set_recv_timeout_ms(50);
    (void)recv_frame(client);
  } catch (const Error&) {
    // Slow or gone peer — refuse anyway; the close may be unclean.
  }
  try {
    send_frame(client,
               as_bytes("BUSY " + std::to_string(options_.busy_retry_ms)));
  } catch (const Error&) {
    // The peer may already be gone; the shed still counts.
  }
  obs::Event e;
  e.stage = "busy";
  e.side = "proxy";
  e.conn = static_cast<std::int64_t>(conn);
  e.value = options_.busy_retry_ms;
  emit(e);
}

void ProxyServer::serve() {
  while (!stopping_.load()) {
    Socket client;
    try {
      client = listener_.accept();
    } catch (const std::exception&) {
      if (stopping_.load()) break;
      continue;  // a failed accept must not kill the server
    }
    if (stopping_.load()) break;
    const std::uint64_t conn =
        conns_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    {
      std::lock_guard<std::mutex> lock(fault_mu_);
      if (fault_injector_)
        if (auto ch = fault_injector_->channel_for(conn)) {
          faults_injected_.fetch_add(1, std::memory_order_relaxed);
          client.inject(std::move(ch));
        }
    }
    {
      obs::Event e;
      e.stage = "accept";
      e.side = "proxy";
      e.conn = static_cast<std::int64_t>(conn);
      emit(e);
    }
    // Admission: K in flight max; above the watermarks new work is
    // served degraded before being shed outright. Only this thread
    // increments admitted_, so check-then-admit cannot overshoot.
    Degrade degrade = Degrade::None;
    if (options_.max_conns > 0) {
      const std::uint64_t inflight =
          admitted_.load(std::memory_order_relaxed);
      if (inflight >= options_.max_conns) {
        shed(std::move(client), conn);
        continue;
      }
      const double load = static_cast<double>(inflight + 1) /
                          static_cast<double>(options_.max_conns);
      if (load >= options_.degrade_raw_watermark) degrade = Degrade::Raw;
      else if (load >= options_.degrade_level_watermark)
        degrade = Degrade::Level;
    }
    admitted_.fetch_add(1, std::memory_order_acq_rel);
    // std::function needs a copyable callable; the socket rides a
    // shared_ptr. The local copy of `shared` keeps the socket
    // reachable if try_submit refuses (shed below).
    auto shared = std::make_shared<Socket>(std::move(client));
    const bool queued = pool_->try_submit([this, shared, conn, degrade] {
      try {
        handle(std::move(*shared), conn, degrade);
      } catch (const std::exception&) {
        // Per-connection failures — injected or real — never take the
        // server down; the next task proceeds.
      }
      if (admitted_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(drain_mu_);
        drained_.notify_all();
      }
    });
    if (!queued) {
      // Shutdown raced the admit (the pool refuses after stop).
      admitted_.fetch_sub(1, std::memory_order_acq_rel);
      shed(std::move(*shared), conn);
    }
  }
}

void ProxyServer::handle(Socket client, std::uint64_t conn,
                         Degrade degrade) {
  if (drain_expired_.load(std::memory_order_acquire)) {
    // stop() gave up waiting while this connection sat in the queue:
    // refuse it instead of starting a transfer nobody will wait for.
    shed(std::move(client), conn);
    return;
  }
  ECOMP_COUNT("net.proxy.requests");
  if (options_.io_timeout_ms) {
    try {
      client.set_recv_timeout_ms(options_.io_timeout_ms);
      client.set_send_timeout_ms(options_.io_timeout_ms);
    } catch (const Error&) {
    }
  }
  conns_active_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<ConnState>();
  const std::uint64_t now_ns = steady_now_ns();
  state->active_since_ns.store(now_ns, std::memory_order_relaxed);
  state->progress_ns.store(now_ns, std::memory_order_relaxed);
  state->fd.store(client.fd(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_[conn] = state;
  }
  // Unregister strictly before the socket closes (locals die before
  // parameters), so stop()'s ::shutdown can never hit a reused fd.
  struct Unregister {
    ProxyServer* self;
    std::uint64_t conn;
    ~Unregister() {
      std::lock_guard<std::mutex> lock(self->conns_mu_);
      self->conns_.erase(conn);
    }
  } unregister{this, conn};

  const auto t0 = std::chrono::steady_clock::now();
  ReqInfo info;
  obs::TraceContext ctx;
  std::exception_ptr rethrow;

  Bytes req;
  bool have_req = false;
  try {
    req = recv_frame(client);
    have_req = true;
  } catch (const Error&) {
    // A corrupted length prefix (recv_frame caps control frames) or a
    // broken read. Answer if the peer can still hear us, then give up
    // on this connection only.
    info.error = true;
    try {
      send_frame(client, as_bytes(std::string("ERR bad frame")));
    } catch (const Error&) {
    }
  }
  if (have_req) {
    std::string line = ecomp::to_string(req);
    ctx = strip_trace(&line);
    obs::TraceScope scope(ctx);
    requests_total_.fetch_add(1, std::memory_order_relaxed);
    try {
      handle_request(client, line, &info, conn, degrade, *state);
    } catch (const FaultError& e) {
      // Injected kill: the connection is already dead by design.
      info.error = true;
      obs::Event ev;
      ev.stage = "error";
      ev.side = "proxy";
      ev.trace_id = ctx.trace_id;
      ev.conn = static_cast<std::int64_t>(conn);
      ev.name = info.name;
      ev.mode = info.mode;
      ev.err = e.what();
      emit(ev);
      rethrow = std::current_exception();
    } catch (const std::exception& e) {
      // Anything a request trips over (missing file, bad upload, codec
      // error) is that request's problem: reply ERR unless the status
      // frame already went out and the peer now expects stream bytes.
      info.error = true;
      obs::Event ev;
      ev.stage = "error";
      ev.side = "proxy";
      ev.trace_id = ctx.trace_id;
      ev.conn = static_cast<std::int64_t>(conn);
      ev.name = info.name;
      ev.mode = info.mode;
      ev.err = e.what();
      emit(ev);
      if (!info.streaming) {
        try {
          send_frame(client,
                     as_bytes(with_trace(std::string("ERR ") + e.what(), ctx)));
        } catch (const Error&) {
        }
      }
    }
  }

  const std::uint64_t us = elapsed_us(t0);
  req_us_.record(us);
  ECOMP_SLIDING_OBSERVE("net.proxy.request_us", us);
  if (info.mode == "raw") raw_us_.record(us);
  else if (info.mode == "full") full_us_.record(us);
  else if (info.mode == "selective") selective_us_.record(us);
  else if (info.mode == "put") put_us_.record(us);
  if (info.error) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    // Wire bytes this connection burned before failing: paid for but
    // useless, so they count against the J/MB-served gauge.
    bytes_waste_wire_.fetch_add(client.bytes_sent(),
                                std::memory_order_relaxed);
  } else if (info.mode == "raw" || info.mode == "full" ||
             info.mode == "selective") {
    bytes_ok_raw_.fetch_add(info.raw_bytes, std::memory_order_relaxed);
  }
  bytes_sent_.fetch_add(client.bytes_sent(), std::memory_order_relaxed);
  bytes_recv_.fetch_add(client.bytes_recv(), std::memory_order_relaxed);
  state->active_since_ns.store(0, std::memory_order_relaxed);
  conns_active_.fetch_sub(1, std::memory_order_relaxed);
  {
    obs::Event e;
    e.stage = "close";
    e.side = "proxy";
    e.trace_id = ctx.trace_id;
    e.conn = static_cast<std::int64_t>(conn);
    e.name = info.name;
    e.mode = info.mode;
    e.bytes_wire = static_cast<std::int64_t>(client.bytes_sent());
    emit(e);
  }
  if (rethrow) std::rethrow_exception(rethrow);
}

void ProxyServer::handle_request(Socket& client, const std::string& req,
                                 ReqInfo* info, std::uint64_t conn,
                                 Degrade degrade, ConnState& state) {
  std::istringstream iss(req);
  std::string verb;
  iss >> verb;
  const obs::TraceContext ctx = obs::current_trace();
  const auto reply = [&](std::string status) {
    send_frame(client, as_bytes(with_trace(std::move(status), ctx)));
  };
  const auto fail = [&](std::string status) {
    info->error = true;
    reply(std::move(status));
  };
  const auto event = [&](obs::Event e) {
    e.side = "proxy";
    e.trace_id = ctx.trace_id;
    e.conn = static_cast<std::int64_t>(conn);
    if (e.name.empty()) e.name = info->name;
    if (e.mode.empty()) e.mode = info->mode;
    emit(e);
  };
  // Ledger the device-side energy a served transfer represents and
  // stamp it into the stream event.
  const auto ledger = [&](obs::Event e) {
    const double j = estimate_request_j(info->mode, info->raw_bytes,
                                        info->wire_bytes);
    energy_served_uj_.fetch_add(static_cast<std::uint64_t>(j * 1e6),
                                std::memory_order_relaxed);
    if (info->mode != "put")
      energy_down_uj_.fetch_add(static_cast<std::uint64_t>(j * 1e6),
                                std::memory_order_relaxed);
    e.j_est = j;
    event(std::move(e));
  };
  // Stamp "this connection just moved bytes" for the stall watchdog.
  const auto touch = [&state] {
    state.progress_ns.store(steady_now_ns(), std::memory_order_relaxed);
  };

  if (verb == "STATS") {
    info->mode = "stats";
    std::string format;
    iss >> format;
    std::string payload;
    if (format == "series") {
      // Raw time-series dump for `ecomp top` sparklines; an empty store
      // shape when no monitor is attached keeps clients branch-free.
#if defined(ECOMP_OBS_ENABLED)
      if (monitor_) payload = monitor_->series_json();
#endif
      if (payload.empty()) payload = "{\"schema\":1,\"series\":{}}";
    } else {
      payload = obs::render_stats(stats(), obs::parse_stats_format(format));
    }
    reply("OK " + std::to_string(payload.size()));
    info->streaming = true;
    send_frame(client, as_bytes(payload));  // may exceed the control cap
    return;
  }

  if (verb == "PUT") {
    std::string name;
    iss >> name;
    if (name.empty()) {
      fail("ERR bad request");
      return;
    }
    info->mode = "put";
    info->name = name;
    event({.stage = "parse"});
    // Receive a streamed selective container, decoding block by block.
    core::SelectiveStreamDecoder dec;
    Bytes data;
    Bytes buf(16 * 1024);
    std::size_t wire = 0;
    while (!dec.finished()) {
      while (auto block = dec.poll())
        data.insert(data.end(), block->begin(), block->end());
      if (dec.finished()) break;
      const std::size_t n = client.recv_some(buf.data(), buf.size());
      if (n == 0) {
        fail("ERR truncated upload");
        return;
      }
      wire += n;
      touch();
      dec.feed(ByteSpan(buf.data(), n));
    }
    dec.verify();
    info->raw_bytes = data.size();
    info->wire_bytes = wire;
    std::ostringstream status;
    status << "OK stored " << data.size();
    const std::int64_t blocks =
        static_cast<std::int64_t>(dec.block_infos().size());
    store_.put(name, std::move(data));
    // New content invalidates every cached variant of the name.
    cache_.invalidate_prefix(name + '\x1f');
    reply(status.str());
    ledger({.stage = "stream",
            .bytes_wire = static_cast<std::int64_t>(info->wire_bytes),
            .bytes_raw = static_cast<std::int64_t>(info->raw_bytes),
            .blocks = blocks});
    return;
  }

  std::string mode, name;
  iss >> mode >> name;
  const bool ranged = verb == "GET-RANGE";
  std::uint64_t offset = 0;
  if ((verb != "GET" && !ranged) || name.empty() ||
      (mode != "raw" && mode != "full" && mode != "selective") ||
      (ranged && !(iss >> offset))) {
    fail("ERR bad request");
    return;
  }
  info->mode = mode;
  info->name = name;
  event({.stage = "parse"});
  if (!store_.contains(name)) {
    fail("ERR no such file: " + name);
    return;
  }
  const Bytes original = store_.get(name);
  info->raw_bytes = original.size();
  constexpr std::size_t kChunk = 32 * 1024;

  // The degradation ladder (chosen at admission time): under load a
  // compressed GET is served at deflate level 1, then — one rung lower
  // — with compression skipped entirely (stored container blocks; full
  // mode bottoms out at level 1, the cheapest valid member). The
  // response stays protocol- and decoder-compatible; only the wire
  // size changes, and the ledger prices the extra bytes so the energy
  // cost of shedding is visible. raw GETs have nothing to degrade, and
  // GET-RANGE is NEVER degraded, not even at offset 0: a resumable
  // transfer's bytes must be identical across attempts, and the server
  // is stateless across connections — it cannot know which variant an
  // earlier attempt streamed, so every ranged request is served from
  // the canonical level-9 containers. (Degrading the first attempt and
  // resuming canonical would splice two different containers into one
  // stream; under fault churn that can poison the client's partial for
  // the whole retry budget.)
  int level = 9;
  const char* sel_variant = "sel9";
  const char* full_variant = "full9";
  compress::SelectivePolicy sel_policy = policy_;
  if (degrade != Degrade::None && !ranged &&
      (mode == "full" || mode == "selective")) {
    level = 1;
    if (degrade == Degrade::Raw && mode == "selective") {
      sel_variant = "selraw";
      sel_policy = compress::SelectivePolicy::never();
      degraded_raw_total_.fetch_add(1, std::memory_order_relaxed);
    } else {
      sel_variant = "sel1";
      degraded_level_total_.fetch_add(1, std::memory_order_relaxed);
    }
    full_variant = "full1";
    ECOMP_COUNT("net.proxy.degraded");
    event({.stage = "degrade",
           .err = degrade == Degrade::Raw ? "raw" : "level"});
  }

  if (mode == "selective") {
    const std::int64_t blocks = static_cast<std::int64_t>(
        options_.block_size
            ? (original.size() + options_.block_size - 1) /
                  options_.block_size
            : 0);
    const std::string key = cache_key(name, sel_variant);
    if (!ranged) {
      // Single flight: the builder compresses on demand, overlapping
      // each block's encode with its send (§5's zlib arrangement), and
      // publishes the accumulated container; concurrent requests for
      // the same variant wait and ship the published bytes.
      while (true) {
        auto lk = cache_.acquire(key);
        if (lk.data) {
          // Cached (precompressed a priori, §3, or a finished flight):
          // ship the stored container.
          info->streaming = true;
          reply("OK stream");
          for (std::size_t off = 0; off < lk.data->size(); off += kChunk) {
            const std::size_t n = std::min(kChunk, lk.data->size() - off);
            client.send_all(ByteSpan(*lk.data).subspan(off, n));
            touch();
            info->wire_bytes += n;
          }
          break;
        }
        if (!lk.builder) continue;  // builder abandoned; contend again
        info->streaming = true;
        reply("OK stream");
        event({.stage = "compress"});
        Bytes container;
        compress::SelectiveStreamEncoder enc(original, sel_policy,
                                             options_.block_size, level,
                                             options_.threads);
        while (!enc.done()) {
          const Bytes chunk = enc.next_chunk();
          if (!chunk.empty()) {
            container.insert(container.end(), chunk.begin(), chunk.end());
            client.send_all(chunk);
            touch();
            info->wire_bytes += chunk.size();
          }
        }
        lk.builder->publish(std::move(container));
        break;
      }
      ledger({.stage = "stream",
              .bytes_wire = static_cast<std::int64_t>(info->wire_bytes),
              .bytes_raw = static_cast<std::int64_t>(original.size()),
              .blocks = blocks});
      return;
    }
    // Resume: the container bytes must be identical across attempts —
    // deflate is deterministic, so the cached (or rebuilt) container
    // matches the earlier stream of the same variant.
    const auto container = cached_payload(key, [&] {
      event({.stage = "compress"});
      return compress::selective_compress(original, sel_policy,
                                          options_.block_size, level,
                                          options_.threads)
          .container;
    });
    if (offset > container->size()) {
      fail("ERR bad offset");
      return;
    }
    info->streaming = true;
    reply("OK stream");
    for (std::size_t off = offset; off < container->size(); off += kChunk) {
      const std::size_t n = std::min(kChunk, container->size() - off);
      client.send_all(ByteSpan(*container).subspan(off, n));
      touch();
      info->wire_bytes += n;
    }
    ledger({.stage = "stream",
            .bytes_wire = static_cast<std::int64_t>(info->wire_bytes),
            .bytes_raw = static_cast<std::int64_t>(original.size()),
            .blocks = blocks});
    return;
  }

  std::shared_ptr<const Bytes> payload;
  if (mode == "raw") {
    payload = std::make_shared<const Bytes>(original);
  } else {
    payload = cached_payload(cache_key(name, full_variant), [&] {
      event({.stage = "compress"});
      return compress::DeflateCodec(level).compress(original);
    });
  }
  if (ranged && offset > payload->size()) {
    fail("ERR bad offset");
    return;
  }
  const std::size_t remaining = payload->size() - (ranged ? offset : 0);
  std::ostringstream status;
  if (ranged) {
    status << "OK " << remaining << " " << payload->size() << " "
           << crc32(*payload);
  } else {
    status << "OK " << payload->size();
  }
  info->streaming = true;
  reply(status.str());
  send_frame_header(client, static_cast<std::uint32_t>(remaining));
  for (std::size_t off = ranged ? offset : 0; off < payload->size();
       off += kChunk) {
    const std::size_t n = std::min(kChunk, payload->size() - off);
    client.send_all(ByteSpan(*payload).subspan(off, n));
    touch();
  }
  info->wire_bytes = remaining;
  ledger({.stage = "stream",
          .bytes_wire = static_cast<std::int64_t>(remaining),
          .bytes_raw = static_cast<std::int64_t>(original.size()),
          .blocks = -1});
  return;
}

Bytes download(std::uint16_t port, const std::string& name,
               const std::string& mode, DownloadStats* stats,
               unsigned threads) {
  obs::TraceContext ctx = obs::current_trace();
  if (!ctx.valid()) ctx = obs::TraceContext::mint();
  obs::TraceScope scope(ctx);
  ECOMP_TRACE_SPAN("net.download", "net");
  ECOMP_COUNT("net.round_trips");
  const auto t0 = std::chrono::steady_clock::now();
  const auto event = [&](obs::Event e) {
    e.side = "client";
    e.trace_id = ctx.trace_id;
    if (e.name.empty()) e.name = name;
    if (e.mode.empty()) e.mode = mode;
    obs::EventLog::global().emit(e);
  };
  Socket s = connect_local(port);
  event({.stage = "connect"});
  send_frame(s, as_bytes(with_trace("GET " + mode + " " + name, ctx)));
  event({.stage = "request"});
  const std::string status = ecomp::to_string(recv_frame(s));
  if (status.rfind("OK ", 0) != 0) {
    event({.stage = "error", .err = "download: " + status});
    throw Error("download: " + status);
  }

  DownloadStats local;
  local.trace_id = ctx.trace_id;
  local.trace_echoed = echoed_trace(status) == ctx.trace_id;
  Bytes result;
  if (mode == "selective") {
    // Unframed stream: the container itself tells the decoder when the
    // last block has arrived. With threads >= 2 the socket reads run on
    // a feed thread while this thread decodes (§4.1 overlap for real) —
    // bytes_on_wire is only touched from the feed thread, and the
    // pipeline joins it before run() returns.
    core::InterleavedDownloader::Options opt;
    opt.chunk_bytes = 16 * 1024;
    opt.threads = threads;
    core::InterleavedDownloader dl(opt);
    result = dl.run(
        [&](std::uint8_t* dst, std::size_t max) -> std::size_t {
          const std::size_t n = s.recv_some(dst, max);
          local.bytes_on_wire += n;
          if (n) maybe_test_crash();
          return n;
        },
        [&](ByteSpan) { ++local.blocks; }, &local.block_infos);
  } else {
    const std::uint32_t payload_size = recv_frame_header(s);
    local.bytes_on_wire = payload_size;
    const Bytes payload = s.recv_exact(payload_size);
    maybe_test_crash();
    result = mode == "raw" ? payload
                           : compress::DeflateCodec().decompress(payload);
  }
  local.bytes_decoded = result.size();
  ECOMP_SLIDING_OBSERVE("net.client.request_us", elapsed_us(t0));
  event({.stage = "stream",
         .bytes_wire = static_cast<std::int64_t>(local.bytes_on_wire),
         .bytes_raw = static_cast<std::int64_t>(local.bytes_decoded),
         .blocks = static_cast<std::int64_t>(local.blocks)});
  event({.stage = "close"});
  if (stats) *stats = local;
  return result;
}

namespace {

std::size_t upload_once(std::uint16_t port, const std::string& name,
                        ByteSpan data,
                        const compress::SelectivePolicy& policy,
                        std::uint32_t timeout_ms) {
  obs::TraceContext ctx = obs::current_trace();
  if (!ctx.valid()) ctx = obs::TraceContext::mint();
  obs::TraceScope scope(ctx);
  ECOMP_TRACE_SPAN("net.upload", "net");
  ECOMP_COUNT("net.round_trips");
  const auto t0 = std::chrono::steady_clock::now();
  const auto event = [&](obs::Event e) {
    e.side = "client";
    e.trace_id = ctx.trace_id;
    if (e.name.empty()) e.name = name;
    if (e.mode.empty()) e.mode = "put";
    obs::EventLog::global().emit(e);
  };
  Socket s = connect_local(port);
  if (timeout_ms) {
    s.set_recv_timeout_ms(timeout_ms);
    s.set_send_timeout_ms(timeout_ms);
  }
  event({.stage = "connect"});
  send_frame(s, as_bytes(with_trace("PUT " + name, ctx)));
  event({.stage = "request"});
  compress::SelectiveStreamEncoder enc(data, policy);
  std::size_t sent = 0;
  while (!enc.done()) {
    const Bytes chunk = enc.next_chunk();
    if (!chunk.empty()) {
      s.send_all(chunk);
      sent += chunk.size();
    }
  }
  const std::string status = ecomp::to_string(recv_frame(s));
  if (status.rfind("OK stored", 0) != 0) {
    event({.stage = "error", .err = "upload: " + status});
    throw Error("upload: " + status);
  }
  ECOMP_SLIDING_OBSERVE("net.client.request_us", elapsed_us(t0));
  event({.stage = "stream",
         .bytes_wire = static_cast<std::int64_t>(sent),
         .bytes_raw = static_cast<std::int64_t>(data.size())});
  event({.stage = "close"});
  return sent;
}

/// Exponential backoff with ±50% deterministic jitter, in ms, before
/// retry `attempt` (1-based).
std::uint32_t backoff_ms(const TransferPolicy& p, int attempt, Rng& rng) {
  double ms = p.backoff_base_ms;
  for (int i = 1; i < attempt && ms < p.backoff_max_ms; ++i) ms *= 2.0;
  ms = std::min(ms, static_cast<double>(p.backoff_max_ms));
  return static_cast<std::uint32_t>(ms * (0.5 + rng.uniform()));
}

}  // namespace

std::size_t upload(std::uint16_t port, const std::string& name,
                   ByteSpan data, const compress::SelectivePolicy& policy) {
  return upload_once(port, name, data, policy, 0);
}

DownloadOutcome download_resilient(std::uint16_t port,
                                   const std::string& name,
                                   const std::string& mode,
                                   const TransferPolicy& policy) {
  if (mode != "raw" && mode != "full" && mode != "selective")
    throw Error("download: bad mode " + mode);
  // One trace context for the whole transfer: every retry, resume, and
  // the eventual salvage all carry the id minted here.
  obs::TraceContext ctx = obs::current_trace();
  if (policy.trace && !ctx.valid()) ctx = obs::TraceContext::mint();
  obs::TraceScope scope(policy.trace ? ctx : obs::TraceContext{});
  ECOMP_TRACE_SPAN("net.download_resilient", "net");
  const auto event = [&](obs::Event e) {
    e.side = "client";
    e.trace_id = policy.trace ? ctx.trace_id : 0;
    if (e.name.empty()) e.name = name;
    if (e.mode.empty()) e.mode = mode;
    obs::EventLog::global().emit(e);
  };

  DownloadOutcome out;
  if (policy.trace) out.stats.trace_id = ctx.trace_id;
  Rng rng(policy.jitter_seed);
  // Wire bytes accumulated so far: the framed payload (raw/full) or the
  // container stream (selective). This is what resume carries across
  // reconnects — and what salvage digs through when retries run out.
  Bytes partial;
  std::uint64_t expected_total = 0;
  std::uint32_t expected_crc = 0;
  bool have_total = false;
  std::string last_error = "no attempts made";
  // A BUSY reply's retry-after raises the floor of the next backoff
  // wait — the server said when it wants to hear from us again.
  std::uint32_t busy_floor_ms = 0;

  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    if (attempt > 0) {
      std::uint32_t wait = backoff_ms(policy, attempt, rng);
      wait = std::max(wait, busy_floor_ms);
      busy_floor_ms = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
    ++out.attempts;
    if (!policy.resume) partial.clear();
    const std::size_t offset = partial.size();
    if (attempt > 0 && offset > 0)
      out.resumed_bytes = std::max(out.resumed_bytes, offset);
    if (attempt > 0)
      event({.stage = "retry",
             .bytes_wire = static_cast<std::int64_t>(offset),
             .attempt = attempt + 1});

    const auto attempt_t0 = std::chrono::steady_clock::now();
    const auto record_attempt = [&] {
      ECOMP_SLIDING_OBSERVE("net.client.attempt_us",
                            elapsed_us(attempt_t0));
    };
    try {
      ECOMP_COUNT("net.round_trips");
      Socket s = connect_local(port);
      if (policy.timeout_ms) {
        s.set_recv_timeout_ms(policy.timeout_ms);
        s.set_send_timeout_ms(policy.timeout_ms);
      }
      // Lifecycle markers per attempt: if this attempt dies mid-stream
      // the flight recorder still knows a connection was up and what
      // was asked of it (the crash-dump tests pivot on these).
      event({.stage = "connect", .attempt = attempt + 1});
      send_frame(s,
                 as_bytes(with_trace("GET-RANGE " + mode + " " + name + " " +
                                         std::to_string(offset),
                                     policy.trace ? ctx
                                                  : obs::TraceContext{})));
      event({.stage = "request",
             .bytes_wire = static_cast<std::int64_t>(offset),
             .attempt = attempt + 1});
      const std::string status = ecomp::to_string(recv_frame(s));
      if (policy.trace && echoed_trace(status) == ctx.trace_id)
        out.stats.trace_echoed = true;
      if (const std::int64_t retry_after = parse_busy_retry_ms(status);
          retry_after >= 0 && status.rfind("BUSY", 0) == 0) {
        // Admission control shed us before reading the request; back
        // off at least as long as the server asked and try again.
        ++out.busy;
        busy_floor_ms = static_cast<std::uint32_t>(retry_after);
        last_error = "download: " + status;
        record_attempt();
        event({.stage = "busy", .attempt = out.attempts,
               .value = static_cast<double>(retry_after)});
        continue;
      }

      if (mode == "selective") {
        if (status.rfind("OK stream", 0) != 0)
          throw Error("download: " + status);
        Bytes buf(16 * 1024);
        while (true) {
          const std::size_t n = s.recv_some(buf.data(), buf.size());
          if (n == 0) break;  // server finished (or died; decode decides)
          maybe_test_crash();
          partial.insert(partial.end(), buf.begin(), buf.begin() + n);
        }
        // Fully received container + parallel decode requested: inflate
        // the independently decodable blocks concurrently. Any failure
        // (truncation, corruption) falls through to the streaming
        // decoder below, which classifies it for retry/resume.
        if (policy.threads >= 2) {
          try {
            out.data = compress::selective_decompress(partial,
                                                      policy.threads);
            std::vector<compress::BlockInfo> infos =
                compress::selective_block_info(partial);
            out.stats.bytes_on_wire = partial.size();
            out.stats.bytes_decoded = out.data.size();
            out.stats.blocks = infos.size();
            out.stats.block_infos = std::move(infos);
            record_attempt();
            event({.stage = "stream",
                   .bytes_wire =
                       static_cast<std::int64_t>(out.stats.bytes_on_wire),
                   .bytes_raw =
                       static_cast<std::int64_t>(out.stats.bytes_decoded),
                   .blocks = static_cast<std::int64_t>(out.stats.blocks),
                   .attempt = out.attempts});
            event({.stage = "close"});
            return out;
          } catch (const Error&) {
          }
        }
        // Decode the accumulated container from scratch: corruption is
        // detected here, and a short stream simply isn't finished yet.
        core::SelectiveStreamDecoder dec;
        dec.feed(partial);
        Bytes data;
        try {
          while (auto block = dec.poll())
            data.insert(data.end(), block->begin(), block->end());
        } catch (const Error&) {
          partial.clear();  // a block failed to decode: stream poisoned
          throw;
        }
        // Truncated (keep the partial — resume finishes it) vs corrupt
        // past the block boundaries (clear — no byte is trustworthy).
        if (!dec.finished()) throw Error("download: stream ended early");
        try {
          dec.verify();
        } catch (const Error&) {
          partial.clear();
          throw;
        }
        out.data = std::move(data);
        out.stats.bytes_on_wire = partial.size();
        out.stats.bytes_decoded = out.data.size();
        out.stats.blocks = dec.block_infos().size();
        out.stats.block_infos = dec.block_infos();
        record_attempt();
        event({.stage = "stream",
               .bytes_wire =
                   static_cast<std::int64_t>(out.stats.bytes_on_wire),
               .bytes_raw =
                   static_cast<std::int64_t>(out.stats.bytes_decoded),
               .blocks = static_cast<std::int64_t>(out.stats.blocks),
               .attempt = out.attempts});
        event({.stage = "close"});
        return out;
      }

      // raw/full: "OK <remaining> <total> <crc32>"
      std::istringstream iss(status);
      std::string ok;
      std::uint64_t remaining = 0, total = 0;
      std::uint32_t crc = 0;
      if (!(iss >> ok >> remaining >> total >> crc) || ok != "OK")
        throw Error("download: " + status);
      if (have_total && total != expected_total) {
        // The file changed server-side between attempts; the partial
        // prefix no longer belongs to this payload. Forget the stale
        // total too, or the next attempt's fresh payload would be
        // rejected against it and the mismatch would never heal.
        partial.clear();
        have_total = false;
        throw Error("download: payload changed between attempts");
      }
      expected_total = total;
      expected_crc = crc;
      have_total = true;
      if (recv_frame_header(s) != remaining)
        throw Error("download: frame disagrees with status");

      Bytes buf(32 * 1024);
      std::uint64_t left = remaining;
      while (left > 0) {
        const std::size_t n = s.recv_some(
            buf.data(),
            static_cast<std::size_t>(std::min<std::uint64_t>(buf.size(),
                                                             left)));
        if (n == 0) throw Error("net: peer closed mid-message");
        maybe_test_crash();
        partial.insert(partial.end(), buf.begin(), buf.begin() + n);
        left -= n;
      }
      if (partial.size() != expected_total)
        throw Error("download: size mismatch after reassembly");
      if (crc32(partial) != expected_crc) {
        partial.clear();  // corrupted somewhere; no byte is trustworthy
        have_total = false;
        throw Error("download: payload CRC mismatch");
      }
      out.data = mode == "raw"
                     ? partial
                     : compress::DeflateCodec().decompress(partial);
      out.stats.bytes_on_wire = partial.size();
      out.stats.bytes_decoded = out.data.size();
      record_attempt();
      event({.stage = "stream",
             .bytes_wire = static_cast<std::int64_t>(out.stats.bytes_on_wire),
             .bytes_raw = static_cast<std::int64_t>(out.stats.bytes_decoded),
             .attempt = out.attempts});
      event({.stage = "close"});
      return out;
    } catch (const Error& e) {
      last_error = e.what();
      record_attempt();
      event({.stage = "error", .attempt = out.attempts, .err = last_error});
    }
  }

  if (mode == "selective" && policy.salvage && !partial.empty()) {
    auto sr = compress::selective_salvage(partial);
    out.data = std::move(sr.data);
    out.recovery = sr.report;
    out.complete = false;
    out.stats.bytes_on_wire = partial.size();
    out.stats.bytes_decoded = out.data.size();
    event({.stage = "salvage",
           .bytes_wire = static_cast<std::int64_t>(out.stats.bytes_on_wire),
           .bytes_raw = static_cast<std::int64_t>(out.stats.bytes_decoded),
           .attempt = out.attempts});
    event({.stage = "close"});
    return out;
  }
  event({.stage = "close", .attempt = out.attempts});
  throw Error("download: retries exhausted: " + last_error);
}

std::size_t upload_resilient(std::uint16_t port, const std::string& name,
                             ByteSpan data,
                             const compress::SelectivePolicy& policy,
                             const TransferPolicy& tp, int* attempts) {
  // One trace context across every replay: upload_once reuses the
  // thread's current trace instead of minting per attempt.
  obs::TraceContext ctx = obs::current_trace();
  if (tp.trace && !ctx.valid()) ctx = obs::TraceContext::mint();
  obs::TraceScope scope(tp.trace ? ctx : obs::TraceContext{});
  Rng rng(tp.jitter_seed);
  std::string last_error;
  std::uint32_t busy_floor_ms = 0;
  for (int attempt = 0; attempt <= tp.max_retries; ++attempt) {
    if (attempt > 0) {
      std::uint32_t wait = backoff_ms(tp, attempt, rng);
      wait = std::max(wait, busy_floor_ms);
      busy_floor_ms = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      obs::Event e;
      e.stage = "retry";
      e.side = "client";
      e.trace_id = tp.trace ? ctx.trace_id : 0;
      e.name = name;
      e.mode = "put";
      e.attempt = attempt + 1;
      obs::EventLog::global().emit(e);
    }
    if (attempts) *attempts = attempt + 1;
    try {
      // PUT replaces the whole file, so a replay after any failure is
      // safe — no server-side partial state survives a dead connection.
      return upload_once(port, name, data, policy, tp.timeout_ms);
    } catch (const Error& e) {
      last_error = e.what();
      // A BUSY shed surfaces as "upload: BUSY <ms>" when the container
      // fit the socket buffer (the status was readable); honor the
      // retry-after. A mid-stream broken pipe falls back to plain
      // backoff.
      if (const std::int64_t retry_after = parse_busy_retry_ms(last_error);
          retry_after >= 0)
        busy_floor_ms = static_cast<std::uint32_t>(retry_after);
    }
  }
  throw Error("upload: retries exhausted: " + last_error);
}

std::string fetch_stats(std::uint16_t port, const std::string& format) {
  Socket s = connect_local(port);
  send_frame(s, as_bytes("STATS " + format));
  const std::string status = ecomp::to_string(recv_frame(s));
  if (status.rfind("OK ", 0) != 0) throw Error("stats: " + status);
  // The payload is one frame but can far exceed the control cap.
  const Bytes payload = recv_frame(s, 16u * 1024 * 1024);
  return ecomp::to_string(payload);
}

}  // namespace ecomp::net

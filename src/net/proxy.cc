#include "net/proxy.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "compress/deflate.h"
#include "core/interleave.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace ecomp::net {

void FileStore::put(std::string name, Bytes data) {
  files_[std::move(name)] = std::move(data);
}

const Bytes& FileStore::get(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) throw Error("FileStore: no file named " + name);
  return it->second;
}

bool FileStore::contains(const std::string& name) const {
  return files_.count(name) != 0;
}

ProxyServer::ProxyServer(FileStore store, compress::SelectivePolicy policy,
                         std::size_t block_size, bool precompress,
                         unsigned threads)
    : store_(std::move(store)),
      policy_(std::move(policy)),
      block_size_(block_size),
      threads_(threads == 0 ? 1 : threads),
      listener_(0) {
  if (precompress) {
    for (const auto& [name, data] : store_.files()) {
      full_cache_[name] = compress::DeflateCodec().compress(data);
      selective_cache_[name] =
          compress::selective_compress(data, policy_, block_size_, 9,
                                       threads_)
              .container;
    }
  }
  thread_ = std::thread([this] { serve(); });
}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::stop() {
  if (stopping_.exchange(true)) return;
  // Poke the accept loop awake with a throwaway connection.
  try {
    Socket s = connect_local(listener_.port());
  } catch (const Error&) {
  }
  if (thread_.joinable()) thread_.join();
}

void ProxyServer::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_injector_ = std::move(injector);
}

void ProxyServer::serve() {
  while (!stopping_.load()) {
    Socket client;
    try {
      client = listener_.accept();
    } catch (const std::exception&) {
      if (stopping_.load()) break;
      continue;  // a failed accept must not kill the server
    }
    if (stopping_.load()) break;
    {
      std::lock_guard<std::mutex> lock(fault_mu_);
      if (fault_injector_)
        if (auto ch = fault_injector_->next_channel())
          client.inject(std::move(ch));
    }
    try {
      handle(std::move(client));
    } catch (const std::exception&) {
      // Per-connection failures — injected or real — never take the
      // server down; the next accept proceeds.
    }
  }
}

void ProxyServer::handle(Socket client) {
  ECOMP_COUNT("net.proxy.requests");
  Bytes req;
  try {
    req = recv_frame(client);
  } catch (const Error&) {
    // A corrupted length prefix (recv_frame caps control frames) or a
    // broken read. Answer if the peer can still hear us, then give up
    // on this connection only.
    try {
      send_frame(client, as_bytes(std::string("ERR bad frame")));
    } catch (const Error&) {
    }
    return;
  }
  bool streaming = false;
  try {
    handle_request(client, ecomp::to_string(req), &streaming);
  } catch (const FaultError&) {
    throw;  // injected kill: the connection is already dead by design
  } catch (const std::exception& e) {
    // Anything a request trips over (missing file, bad upload, codec
    // error) is that request's problem: reply ERR unless the status
    // frame already went out and the peer now expects stream bytes.
    if (streaming) return;
    try {
      send_frame(client, as_bytes(std::string("ERR ") + e.what()));
    } catch (const Error&) {
    }
  }
}

void ProxyServer::handle_request(Socket& client, const std::string& req,
                                 bool* streaming) {
  std::istringstream iss(req);
  std::string verb;
  iss >> verb;

  if (verb == "PUT") {
    std::string name;
    iss >> name;
    if (name.empty()) {
      send_frame(client, as_bytes(std::string("ERR bad request")));
      return;
    }
    // Receive a streamed selective container, decoding block by block.
    core::SelectiveStreamDecoder dec;
    Bytes data;
    Bytes buf(16 * 1024);
    while (!dec.finished()) {
      while (auto block = dec.poll())
        data.insert(data.end(), block->begin(), block->end());
      if (dec.finished()) break;
      const std::size_t n = client.recv_some(buf.data(), buf.size());
      if (n == 0) {
        send_frame(client, as_bytes(std::string("ERR truncated upload")));
        return;
      }
      dec.feed(ByteSpan(buf.data(), n));
    }
    dec.verify();
    std::ostringstream status;
    status << "OK stored " << data.size();
    store_.put(name, std::move(data));
    // New content invalidates any precompressed copies.
    full_cache_.erase(name);
    selective_cache_.erase(name);
    send_frame(client, as_bytes(status.str()));
    return;
  }

  std::string mode, name;
  iss >> mode >> name;
  const bool ranged = verb == "GET-RANGE";
  std::uint64_t offset = 0;
  if ((verb != "GET" && !ranged) || name.empty() ||
      (mode != "raw" && mode != "full" && mode != "selective") ||
      (ranged && !(iss >> offset))) {
    send_frame(client, as_bytes(std::string("ERR bad request")));
    return;
  }
  if (!store_.contains(name)) {
    send_frame(client, as_bytes(std::string("ERR no such file: ") + name));
    return;
  }
  const Bytes& original = store_.get(name);
  constexpr std::size_t kChunk = 32 * 1024;

  if (mode == "selective") {
    if (!ranged) {
      *streaming = true;
      send_frame(client, as_bytes(std::string("OK stream")));
      if (const auto it = selective_cache_.find(name);
          it != selective_cache_.end()) {
        // Precompressed a priori (§3): ship the stored container.
        client.send_all(it->second);
        return;
      }
      // Compression on demand, overlapped with sending: each block goes
      // on the wire as soon as it is encoded (§5's zlib arrangement).
      compress::SelectiveStreamEncoder enc(original, policy_, block_size_,
                                           9, threads_);
      while (!enc.done()) {
        const Bytes chunk = enc.next_chunk();
        if (!chunk.empty()) client.send_all(chunk);
      }
      return;
    }
    // Resume: the container bytes must be identical across attempts, so
    // use the cache or build the whole thing now (deflate is
    // deterministic, so a rebuild matches the earlier stream).
    const Bytes* container = nullptr;
    Bytes built;
    if (const auto it = selective_cache_.find(name);
        it != selective_cache_.end()) {
      container = &it->second;
    } else {
      built = compress::selective_compress(original, policy_, block_size_,
                                           9, threads_)
                  .container;
      container = &built;
    }
    if (offset > container->size()) {
      send_frame(client, as_bytes(std::string("ERR bad offset")));
      return;
    }
    *streaming = true;
    send_frame(client, as_bytes(std::string("OK stream")));
    for (std::size_t off = offset; off < container->size(); off += kChunk) {
      const std::size_t n = std::min(kChunk, container->size() - off);
      client.send_all(ByteSpan(*container).subspan(off, n));
    }
    return;
  }

  Bytes payload;
  if (mode == "raw") {
    payload = original;
  } else if (const auto it = full_cache_.find(name);
             it != full_cache_.end()) {
    payload = it->second;
  } else {
    payload = compress::DeflateCodec().compress(original);
  }
  if (ranged && offset > payload.size()) {
    send_frame(client, as_bytes(std::string("ERR bad offset")));
    return;
  }
  const std::size_t remaining = payload.size() - (ranged ? offset : 0);
  std::ostringstream status;
  if (ranged) {
    status << "OK " << remaining << " " << payload.size() << " "
           << crc32(payload);
  } else {
    status << "OK " << payload.size();
  }
  *streaming = true;
  send_frame(client, as_bytes(status.str()));
  send_frame_header(client, static_cast<std::uint32_t>(remaining));
  for (std::size_t off = ranged ? offset : 0; off < payload.size();
       off += kChunk) {
    const std::size_t n = std::min(kChunk, payload.size() - off);
    client.send_all(ByteSpan(payload).subspan(off, n));
  }
}

Bytes download(std::uint16_t port, const std::string& name,
               const std::string& mode, DownloadStats* stats,
               unsigned threads) {
  ECOMP_TRACE_SPAN("net.download", "net");
  ECOMP_COUNT("net.round_trips");
  Socket s = connect_local(port);
  send_frame(s, as_bytes("GET " + mode + " " + name));
  const std::string status = ecomp::to_string(recv_frame(s));
  if (status.rfind("OK ", 0) != 0) throw Error("download: " + status);

  DownloadStats local;
  Bytes result;
  if (mode == "selective") {
    // Unframed stream: the container itself tells the decoder when the
    // last block has arrived. With threads >= 2 the socket reads run on
    // a feed thread while this thread decodes (§4.1 overlap for real) —
    // bytes_on_wire is only touched from the feed thread, and the
    // pipeline joins it before run() returns.
    core::InterleavedDownloader::Options opt;
    opt.chunk_bytes = 16 * 1024;
    opt.threads = threads;
    core::InterleavedDownloader dl(opt);
    result = dl.run(
        [&](std::uint8_t* dst, std::size_t max) -> std::size_t {
          const std::size_t n = s.recv_some(dst, max);
          local.bytes_on_wire += n;
          return n;
        },
        [&](ByteSpan) { ++local.blocks; }, &local.block_infos);
  } else {
    const std::uint32_t payload_size = recv_frame_header(s);
    local.bytes_on_wire = payload_size;
    const Bytes payload = s.recv_exact(payload_size);
    result = mode == "raw" ? payload
                           : compress::DeflateCodec().decompress(payload);
  }
  local.bytes_decoded = result.size();
  if (stats) *stats = local;
  return result;
}

namespace {

std::size_t upload_once(std::uint16_t port, const std::string& name,
                        ByteSpan data,
                        const compress::SelectivePolicy& policy,
                        std::uint32_t timeout_ms) {
  ECOMP_TRACE_SPAN("net.upload", "net");
  ECOMP_COUNT("net.round_trips");
  Socket s = connect_local(port);
  if (timeout_ms) {
    s.set_recv_timeout_ms(timeout_ms);
    s.set_send_timeout_ms(timeout_ms);
  }
  send_frame(s, as_bytes("PUT " + name));
  compress::SelectiveStreamEncoder enc(data, policy);
  std::size_t sent = 0;
  while (!enc.done()) {
    const Bytes chunk = enc.next_chunk();
    if (!chunk.empty()) {
      s.send_all(chunk);
      sent += chunk.size();
    }
  }
  const std::string status = ecomp::to_string(recv_frame(s));
  if (status.rfind("OK stored", 0) != 0) throw Error("upload: " + status);
  return sent;
}

/// Exponential backoff with ±50% deterministic jitter, in ms, before
/// retry `attempt` (1-based).
std::uint32_t backoff_ms(const TransferPolicy& p, int attempt, Rng& rng) {
  double ms = p.backoff_base_ms;
  for (int i = 1; i < attempt && ms < p.backoff_max_ms; ++i) ms *= 2.0;
  ms = std::min(ms, static_cast<double>(p.backoff_max_ms));
  return static_cast<std::uint32_t>(ms * (0.5 + rng.uniform()));
}

}  // namespace

std::size_t upload(std::uint16_t port, const std::string& name,
                   ByteSpan data, const compress::SelectivePolicy& policy) {
  return upload_once(port, name, data, policy, 0);
}

DownloadOutcome download_resilient(std::uint16_t port,
                                   const std::string& name,
                                   const std::string& mode,
                                   const TransferPolicy& policy) {
  if (mode != "raw" && mode != "full" && mode != "selective")
    throw Error("download: bad mode " + mode);
  ECOMP_TRACE_SPAN("net.download_resilient", "net");

  DownloadOutcome out;
  Rng rng(policy.jitter_seed);
  // Wire bytes accumulated so far: the framed payload (raw/full) or the
  // container stream (selective). This is what resume carries across
  // reconnects — and what salvage digs through when retries run out.
  Bytes partial;
  std::uint64_t expected_total = 0;
  std::uint32_t expected_crc = 0;
  bool have_total = false;
  std::string last_error = "no attempts made";

  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff_ms(policy, attempt, rng)));
    ++out.attempts;
    if (!policy.resume) partial.clear();
    const std::size_t offset = partial.size();
    if (attempt > 0 && offset > 0)
      out.resumed_bytes = std::max(out.resumed_bytes, offset);

    try {
      ECOMP_COUNT("net.round_trips");
      Socket s = connect_local(port);
      if (policy.timeout_ms) {
        s.set_recv_timeout_ms(policy.timeout_ms);
        s.set_send_timeout_ms(policy.timeout_ms);
      }
      send_frame(s, as_bytes("GET-RANGE " + mode + " " + name + " " +
                             std::to_string(offset)));
      const std::string status = ecomp::to_string(recv_frame(s));

      if (mode == "selective") {
        if (status != "OK stream") throw Error("download: " + status);
        Bytes buf(16 * 1024);
        while (true) {
          const std::size_t n = s.recv_some(buf.data(), buf.size());
          if (n == 0) break;  // server finished (or died; decode decides)
          partial.insert(partial.end(), buf.begin(), buf.begin() + n);
        }
        // Fully received container + parallel decode requested: inflate
        // the independently decodable blocks concurrently. Any failure
        // (truncation, corruption) falls through to the streaming
        // decoder below, which classifies it for retry/resume.
        if (policy.threads >= 2) {
          try {
            out.data = compress::selective_decompress(partial,
                                                      policy.threads);
            std::vector<compress::BlockInfo> infos =
                compress::selective_block_info(partial);
            out.stats.bytes_on_wire = partial.size();
            out.stats.bytes_decoded = out.data.size();
            out.stats.blocks = infos.size();
            out.stats.block_infos = std::move(infos);
            return out;
          } catch (const Error&) {
          }
        }
        // Decode the accumulated container from scratch: corruption is
        // detected here, and a short stream simply isn't finished yet.
        core::SelectiveStreamDecoder dec;
        dec.feed(partial);
        Bytes data;
        try {
          while (auto block = dec.poll())
            data.insert(data.end(), block->begin(), block->end());
        } catch (const Error&) {
          partial.clear();  // a block failed to decode: stream poisoned
          throw;
        }
        // Truncated (keep the partial — resume finishes it) vs corrupt
        // past the block boundaries (clear — no byte is trustworthy).
        if (!dec.finished()) throw Error("download: stream ended early");
        try {
          dec.verify();
        } catch (const Error&) {
          partial.clear();
          throw;
        }
        out.data = std::move(data);
        out.stats.bytes_on_wire = partial.size();
        out.stats.bytes_decoded = out.data.size();
        out.stats.blocks = dec.block_infos().size();
        out.stats.block_infos = dec.block_infos();
        return out;
      }

      // raw/full: "OK <remaining> <total> <crc32>"
      std::istringstream iss(status);
      std::string ok;
      std::uint64_t remaining = 0, total = 0;
      std::uint32_t crc = 0;
      if (!(iss >> ok >> remaining >> total >> crc) || ok != "OK")
        throw Error("download: " + status);
      if (have_total && total != expected_total) {
        // The file changed server-side between attempts; the partial
        // prefix no longer belongs to this payload.
        partial.clear();
        throw Error("download: payload changed between attempts");
      }
      expected_total = total;
      expected_crc = crc;
      have_total = true;
      if (recv_frame_header(s) != remaining)
        throw Error("download: frame disagrees with status");

      Bytes buf(32 * 1024);
      std::uint64_t left = remaining;
      while (left > 0) {
        const std::size_t n = s.recv_some(
            buf.data(),
            static_cast<std::size_t>(std::min<std::uint64_t>(buf.size(),
                                                             left)));
        if (n == 0) throw Error("net: peer closed mid-message");
        partial.insert(partial.end(), buf.begin(), buf.begin() + n);
        left -= n;
      }
      if (partial.size() != expected_total)
        throw Error("download: size mismatch after reassembly");
      if (crc32(partial) != expected_crc) {
        partial.clear();  // corrupted somewhere; no byte is trustworthy
        throw Error("download: payload CRC mismatch");
      }
      out.data = mode == "raw"
                     ? partial
                     : compress::DeflateCodec().decompress(partial);
      out.stats.bytes_on_wire = partial.size();
      out.stats.bytes_decoded = out.data.size();
      return out;
    } catch (const Error& e) {
      last_error = e.what();
    }
  }

  if (mode == "selective" && policy.salvage && !partial.empty()) {
    auto sr = compress::selective_salvage(partial);
    out.data = std::move(sr.data);
    out.recovery = sr.report;
    out.complete = false;
    out.stats.bytes_on_wire = partial.size();
    out.stats.bytes_decoded = out.data.size();
    return out;
  }
  throw Error("download: retries exhausted: " + last_error);
}

std::size_t upload_resilient(std::uint16_t port, const std::string& name,
                             ByteSpan data,
                             const compress::SelectivePolicy& policy,
                             const TransferPolicy& tp, int* attempts) {
  Rng rng(tp.jitter_seed);
  std::string last_error;
  for (int attempt = 0; attempt <= tp.max_retries; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff_ms(tp, attempt, rng)));
    if (attempts) *attempts = attempt + 1;
    try {
      // PUT replaces the whole file, so a replay after any failure is
      // safe — no server-side partial state survives a dead connection.
      return upload_once(port, name, data, policy, tp.timeout_ms);
    } catch (const Error& e) {
      last_error = e.what();
    }
  }
  throw Error("upload: retries exhausted: " + last_error);
}

}  // namespace ecomp::net

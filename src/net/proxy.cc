#include "net/proxy.h"

#include <algorithm>
#include <sstream>

#include "compress/deflate.h"
#include "core/interleave.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecomp::net {

void FileStore::put(std::string name, Bytes data) {
  files_[std::move(name)] = std::move(data);
}

const Bytes& FileStore::get(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) throw Error("FileStore: no file named " + name);
  return it->second;
}

bool FileStore::contains(const std::string& name) const {
  return files_.count(name) != 0;
}

ProxyServer::ProxyServer(FileStore store, compress::SelectivePolicy policy,
                         std::size_t block_size, bool precompress)
    : store_(std::move(store)),
      policy_(std::move(policy)),
      block_size_(block_size),
      listener_(0) {
  if (precompress) {
    for (const auto& [name, data] : store_.files()) {
      full_cache_[name] = compress::DeflateCodec().compress(data);
      selective_cache_[name] =
          compress::selective_compress(data, policy_, block_size_)
              .container;
    }
  }
  thread_ = std::thread([this] { serve(); });
}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::stop() {
  if (stopping_.exchange(true)) return;
  // Poke the accept loop awake with a throwaway connection.
  try {
    Socket s = connect_local(listener_.port());
  } catch (const Error&) {
  }
  if (thread_.joinable()) thread_.join();
}

void ProxyServer::serve() {
  while (!stopping_.load()) {
    Socket client = listener_.accept();
    if (stopping_.load()) break;
    try {
      handle(std::move(client));
    } catch (const Error&) {
      // Per-connection failures don't take the server down.
    }
  }
}

void ProxyServer::handle(Socket client) {
  ECOMP_COUNT("net.proxy.requests");
  const Bytes req = recv_frame(client);
  std::istringstream iss(to_string(req));
  std::string verb, mode, name;
  iss >> verb;

  if (verb == "PUT") {
    iss >> name;
    if (name.empty()) {
      send_frame(client, as_bytes(std::string("ERR bad request")));
      return;
    }
    // Receive a streamed selective container, decoding block by block.
    core::SelectiveStreamDecoder dec;
    Bytes data;
    Bytes buf(16 * 1024);
    while (!dec.finished()) {
      while (auto block = dec.poll())
        data.insert(data.end(), block->begin(), block->end());
      if (dec.finished()) break;
      const std::size_t n = client.recv_some(buf.data(), buf.size());
      if (n == 0) {
        send_frame(client, as_bytes(std::string("ERR truncated upload")));
        return;
      }
      dec.feed(ByteSpan(buf.data(), n));
    }
    dec.verify();
    std::ostringstream status;
    status << "OK stored " << data.size();
    store_.put(name, std::move(data));
    // New content invalidates any precompressed copies.
    full_cache_.erase(name);
    selective_cache_.erase(name);
    send_frame(client, as_bytes(status.str()));
    return;
  }

  iss >> mode >> name;
  if (verb != "GET" || name.empty() ||
      (mode != "raw" && mode != "full" && mode != "selective")) {
    send_frame(client, as_bytes(std::string("ERR bad request")));
    return;
  }
  if (!store_.contains(name)) {
    send_frame(client, as_bytes(std::string("ERR no such file: ") + name));
    return;
  }
  const Bytes& original = store_.get(name);

  if (mode == "selective") {
    send_frame(client, as_bytes(std::string("OK stream")));
    if (const auto it = selective_cache_.find(name);
        it != selective_cache_.end()) {
      // Precompressed a priori (§3): ship the stored container.
      client.send_all(it->second);
      return;
    }
    // Compression on demand, overlapped with sending: each block goes
    // on the wire as soon as it is encoded (§5's zlib arrangement).
    compress::SelectiveStreamEncoder enc(original, policy_, block_size_);
    while (!enc.done()) {
      const Bytes chunk = enc.next_chunk();
      if (!chunk.empty()) client.send_all(chunk);
    }
    return;
  }

  Bytes payload;
  if (mode == "raw") {
    payload = original;
  } else if (const auto it = full_cache_.find(name);
             it != full_cache_.end()) {
    payload = it->second;
  } else {
    payload = compress::DeflateCodec().compress(original);
  }
  std::ostringstream status;
  status << "OK " << payload.size();
  send_frame(client, as_bytes(status.str()));
  send_frame_header(client, static_cast<std::uint32_t>(payload.size()));
  constexpr std::size_t kChunk = 32 * 1024;
  for (std::size_t off = 0; off < payload.size(); off += kChunk) {
    const std::size_t n = std::min(kChunk, payload.size() - off);
    client.send_all(ByteSpan(payload).subspan(off, n));
  }
}

Bytes download(std::uint16_t port, const std::string& name,
               const std::string& mode, DownloadStats* stats) {
  ECOMP_TRACE_SPAN("net.download", "net");
  ECOMP_COUNT("net.round_trips");
  Socket s = connect_local(port);
  send_frame(s, as_bytes("GET " + mode + " " + name));
  const std::string status = to_string(recv_frame(s));
  if (status.rfind("OK ", 0) != 0) throw Error("download: " + status);

  DownloadStats local;
  Bytes result;
  if (mode == "selective") {
    // Unframed stream: the container itself tells the decoder when the
    // last block has arrived.
    core::InterleavedDownloader dl(16 * 1024);
    result = dl.run(
        [&](std::uint8_t* dst, std::size_t max) -> std::size_t {
          const std::size_t n = s.recv_some(dst, max);
          local.bytes_on_wire += n;
          return n;
        },
        [&](ByteSpan) { ++local.blocks; }, &local.block_infos);
  } else {
    const std::uint32_t payload_size = recv_frame_header(s);
    local.bytes_on_wire = payload_size;
    const Bytes payload = s.recv_exact(payload_size);
    result = mode == "raw" ? payload
                           : compress::DeflateCodec().decompress(payload);
  }
  local.bytes_decoded = result.size();
  if (stats) *stats = local;
  return result;
}

std::size_t upload(std::uint16_t port, const std::string& name,
                   ByteSpan data, const compress::SelectivePolicy& policy) {
  ECOMP_TRACE_SPAN("net.upload", "net");
  ECOMP_COUNT("net.round_trips");
  Socket s = connect_local(port);
  send_frame(s, as_bytes("PUT " + name));
  compress::SelectiveStreamEncoder enc(data, policy);
  std::size_t sent = 0;
  while (!enc.done()) {
    const Bytes chunk = enc.next_chunk();
    if (!chunk.empty()) {
      s.send_all(chunk);
      sent += chunk.size();
    }
  }
  const std::string status = to_string(recv_frame(s));
  if (status.rfind("OK stored", 0) != 0) throw Error("upload: " + status);
  return sent;
}

}  // namespace ecomp::net

#include "net/fault.h"

namespace ecomp::net {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Drop: return "drop";
    case FaultKind::Truncate: return "truncate";
    case FaultKind::Delay: return "delay";
    case FaultKind::Corrupt: return "corrupt";
  }
  return "?";
}

std::size_t FaultChannel::plan_send(std::uint8_t* data, std::size_t n,
                                    std::uint32_t* sleep_ms,
                                    FaultKind* abort_after) {
  *sleep_ms = 0;
  *abort_after = FaultKind::None;
  const std::size_t start = offset_;
  offset_ += n;
  if (fired_ || spec_.kind == FaultKind::None || n == 0) return n;
  // The trigger fires when its offset falls inside this buffer's
  // [start, start + n) span of the outbound stream.
  if (spec_.at_byte >= start + n) return n;
  const std::size_t rel = spec_.at_byte > start ? spec_.at_byte - start : 0;
  fired_ = true;
  switch (spec_.kind) {
    case FaultKind::None:
      break;
    case FaultKind::Drop:
    case FaultKind::Truncate:
      *abort_after = spec_.kind;  // send the prefix, then kill the link
      return rel;
    case FaultKind::Delay:
      *sleep_ms = spec_.delay_ms;
      break;
    case FaultKind::Corrupt:
      data[rel] ^= 0xff;
      break;
  }
  return n;
}

std::shared_ptr<FaultChannel> FaultInjector::next_channel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!targets_.empty()) return nullptr;  // needs an index; see channel_for
  if (remaining_ <= 0) return nullptr;
  --remaining_;
  ++armed_;
  return std::make_shared<FaultChannel>(spec_);
}

std::shared_ptr<FaultChannel> FaultInjector::channel_for(
    std::uint64_t conn_index) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!targets_.empty()) {
      if (targets_.erase(conn_index) == 0) return nullptr;
      ++armed_;
      return std::make_shared<FaultChannel>(spec_);
    }
  }
  return next_channel();
}

int FaultInjector::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!targets_.empty()) return static_cast<int>(targets_.size());
  return remaining_;
}

int FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

}  // namespace ecomp::net

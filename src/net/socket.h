// Minimal RAII wrappers over POSIX TCP sockets (loopback use). The
// examples run a real proxy server and client over these; energy is
// always computed by the simulator, but the protocol and the streaming
// decoder run for real.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace ecomp::net {

/// Owns a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Send the whole buffer; throws Error on failure.
  void send_all(ByteSpan data) const;
  /// Receive up to `max` bytes; returns 0 on orderly shutdown.
  std::size_t recv_some(std::uint8_t* dst, std::size_t max) const;
  /// Receive exactly n bytes; throws if the peer closes early.
  Bytes recv_exact(std::size_t n) const;

  void close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Port 0 picks a free port.
class Listener {
 public:
  explicit Listener(std::uint16_t port = 0);
  std::uint16_t port() const { return port_; }
  Socket accept() const;

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:port.
Socket connect_local(std::uint16_t port);

/// Length-prefixed frame helpers (u32 LE length + payload).
void send_frame(const Socket& s, ByteSpan payload);
Bytes recv_frame(const Socket& s);
/// Frame header only — callers stream the payload themselves.
void send_frame_header(const Socket& s, std::uint32_t payload_size);
std::uint32_t recv_frame_header(const Socket& s);

}  // namespace ecomp::net

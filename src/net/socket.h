// Minimal RAII wrappers over POSIX TCP sockets (loopback use). The
// examples run a real proxy server and client over these; energy is
// always computed by the simulator, but the protocol and the streaming
// decoder run for real.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/bytes.h"

namespace ecomp::net {

class FaultChannel;

/// A socket deadline expired (SO_RCVTIMEO / SO_SNDTIMEO). Distinct
/// from Error so retry loops can treat stalls like any other transient
/// failure while tests can still tell them apart.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what)
      : Error("net: timed out: " + what) {}
};

/// Owns a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& o) noexcept
      : fd_(o.fd_),
        fault_(std::move(o.fault_)),
        bytes_sent_(o.bytes_sent_),
        bytes_recv_(o.bytes_recv_) {
    o.fd_ = -1;
    o.bytes_sent_ = 0;
    o.bytes_recv_ = 0;
  }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Send the whole buffer; throws Error on failure, TimeoutError when
  /// a send deadline expires.
  void send_all(ByteSpan data) const;
  /// Receive up to `max` bytes; returns 0 on orderly shutdown. Throws
  /// TimeoutError when a receive deadline expires.
  std::size_t recv_some(std::uint8_t* dst, std::size_t max) const;
  /// Receive exactly n bytes; throws if the peer closes early.
  Bytes recv_exact(std::size_t n) const;

  /// Arm SO_RCVTIMEO / SO_SNDTIMEO; 0 clears the deadline.
  void set_recv_timeout_ms(std::uint32_t ms) const;
  void set_send_timeout_ms(std::uint32_t ms) const;

  /// Attach a fault channel (testing): every send is routed through it
  /// and may be delayed, corrupted, or cut short. An armed Drop/Truncate
  /// fault makes send_all throw FaultError after the planned prefix,
  /// with the socket set up so closing it RSTs (Drop) or FINs (Truncate)
  /// the peer.
  void inject(std::shared_ptr<FaultChannel> fault) {
    fault_ = std::move(fault);
  }

  void close();

  /// Per-socket payload byte tallies (what actually went over the
  /// wire, faults included). Plain counters: each direction of a socket
  /// is driven by one thread at a time, matching how every caller in
  /// the tree already uses sockets.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_recv() const { return bytes_recv_; }

 private:
  int fd_ = -1;
  std::shared_ptr<FaultChannel> fault_;
  mutable std::uint64_t bytes_sent_ = 0;
  mutable std::uint64_t bytes_recv_ = 0;
};

/// Listening socket bound to 127.0.0.1. Port 0 picks a free port.
class Listener {
 public:
  explicit Listener(std::uint16_t port = 0);
  std::uint16_t port() const { return port_; }
  Socket accept() const;

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:port.
Socket connect_local(std::uint16_t port);

/// Control frames (requests, status lines) are short strings; any
/// length prefix beyond this is a corrupted or hostile header, not a
/// request, and must be rejected before the allocation it asks for.
inline constexpr std::uint32_t kMaxControlFrame = 64 * 1024;

/// Length-prefixed frame helpers (u32 LE length + payload). recv_frame
/// rejects frames whose announced length exceeds `max_size` (throws
/// Error) instead of allocating up to 4 GiB on a corrupted prefix.
void send_frame(const Socket& s, ByteSpan payload);
Bytes recv_frame(const Socket& s, std::uint32_t max_size = kMaxControlFrame);
/// Frame header only — callers stream the payload themselves.
void send_frame_header(const Socket& s, std::uint32_t payload_size);
std::uint32_t recv_frame_header(const Socket& s);

}  // namespace ecomp::net

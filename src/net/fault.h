// Deterministic network fault injection for loopback testing — the
// adversarial half of the robustness story. A FaultInjector armed on
// the proxy plants a FaultChannel on the first N accepted connections;
// the channel watches the outbound byte stream and, at a chosen byte
// offset, drops the connection (RST), truncates it (early FIN), stalls
// it, or flips a byte. Because the trigger is an exact offset and
// arming is per-connection, every failure is reproducible and a retry
// against an unarmed connection can succeed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>

#include "util/bytes.h"

namespace ecomp::net {

/// An injected fault firing server-side. Distinct from Error so tests
/// can tell a planted failure from a real one.
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what) : Error("fault: " + what) {}
};

enum class FaultKind {
  None,
  Drop,      ///< abort the connection (RST) at the trigger offset
  Truncate,  ///< close cleanly (FIN) after sending the trigger prefix
  Delay,     ///< stall for delay_ms at the trigger offset, then continue
  Corrupt,   ///< XOR-flip the byte at the trigger offset, then continue
};

const char* to_string(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::None;
  std::size_t at_byte = 0;       ///< outbound-stream offset of the trigger
  std::uint32_t delay_ms = 100;  ///< Delay only
};

/// Per-connection fault state. The owning Socket consults it on every
/// send; the channel tracks the outbound offset and says what to do.
class FaultChannel {
 public:
  explicit FaultChannel(FaultSpec spec) : spec_(spec) {}

  /// Plan the next send of `n` bytes (mutating `data` in place for
  /// Corrupt). Returns how many bytes of the buffer to actually put on
  /// the wire; sets *sleep_ms when the send must stall first, and
  /// *abort_after to Drop/Truncate when the connection must die after
  /// the prefix goes out.
  std::size_t plan_send(std::uint8_t* data, std::size_t n,
                        std::uint32_t* sleep_ms, FaultKind* abort_after);

  const FaultSpec& spec() const { return spec_; }
  bool fired() const { return fired_; }

 private:
  FaultSpec spec_;
  std::size_t offset_ = 0;  // outbound bytes seen so far
  bool fired_ = false;
};

/// Hands out FaultChannels for accepted connections: the first
/// `arm_count` connections get the spec, later ones run clean — which
/// is exactly what lets a bounded-retry client recover. Alternatively,
/// target explicit connection indices ("fault connection 3 of 10") so
/// a fault can pick one victim among concurrent clients — under a
/// worker pool, "the next N connections" is ambiguous because accept
/// order and service order diverge. Thread-safe (the proxy's accept
/// loop calls in from its own thread).
class FaultInjector {
 public:
  FaultInjector(FaultSpec spec, int arm_count = 1)
      : spec_(spec), remaining_(arm_count) {}

  /// Target specific 1-based connection indices (the proxy's accept
  /// counter): only those connections get the spec, all others run
  /// clean regardless of order.
  FaultInjector(FaultSpec spec, std::set<std::uint64_t> target_conns)
      : spec_(spec), targets_(std::move(target_conns)) {}

  /// Channel for the next accepted connection; nullptr once disarmed.
  /// Count-based arming only — an index-targeted injector needs the
  /// connection number and must be asked via channel_for().
  std::shared_ptr<FaultChannel> next_channel();

  /// Channel for accepted connection number `conn_index` (1-based).
  /// Index-targeted injectors arm exactly the listed connections;
  /// count-based injectors fall back to next_channel() semantics.
  std::shared_ptr<FaultChannel> channel_for(std::uint64_t conn_index);

  /// Connections still to be armed.
  int remaining() const;
  /// Connections armed so far.
  int armed() const;

 private:
  mutable std::mutex mu_;
  FaultSpec spec_;
  std::set<std::uint64_t> targets_;  ///< empty = count-based arming
  int remaining_ = 0;
  int armed_ = 0;
};

}  // namespace ecomp::net

#include "net/cache.h"

namespace ecomp::net {

ContainerCache::Lookup ContainerCache::acquire(const std::string& key) {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      // Refresh recency: splice the key to the MRU end.
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      ++stats_.hits;
      return {it->second.data, nullptr};
    }
    if (const auto it = flights_.find(key); it != flights_.end()) {
      flight = it->second;
      ++stats_.waits;
    } else {
      auto fresh = std::make_shared<Flight>();
      fresh->future = fresh->promise.get_future().share();
      flights_.emplace(key, std::move(fresh));
      ++stats_.misses;
      return {nullptr,
              std::unique_ptr<Builder>(new Builder(this, key))};
    }
  }
  // Join the in-flight build outside the lock. A null result means the
  // builder abandoned (its request failed); the caller loops on
  // acquire() and one of the waiters becomes the next builder.
  return {flight->future.get(), nullptr};
}

void ContainerCache::insert_locked(const std::string& key,
                                   std::shared_ptr<const Bytes> data) {
  if (capacity_ == 0) return;
  if (entries_.count(key)) return;  // racing precompress/put; keep first
  lru_.push_front(key);
  entries_[key] = {data, lru_.begin()};
  stats_.bytes += data->size();
  stats_.entries = entries_.size();
  while (stats_.bytes > capacity_ && lru_.size() > 1) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    stats_.bytes -= it->second.data->size();
    entries_.erase(it);
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
}

void ContainerCache::finish_flight(const std::string& key,
                                   std::shared_ptr<const Bytes> data) {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
      flights_.erase(it);
    }
    if (data) {
      insert_locked(key, data);
      ++stats_.builds;
    }
  }
  // Fulfil outside the lock: waiters wake straight into future.get().
  if (flight) flight->promise.set_value(std::move(data));
}

void ContainerCache::put(const std::string& key, Bytes data) {
  auto shared = std::make_shared<const Bytes>(std::move(data));
  std::lock_guard<std::mutex> lock(mu_);
  insert_locked(key, std::move(shared));
}

void ContainerCache::invalidate_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.lower_bound(prefix); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    stats_.bytes -= it->second.data->size();
    lru_.erase(it->second.pos);
    it = entries_.erase(it);
  }
  stats_.entries = entries_.size();
}

ContainerCache::Stats ContainerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ContainerCache::Builder::~Builder() {
  if (!published_) cache_->finish_flight(key_, nullptr);
}

std::shared_ptr<const Bytes> ContainerCache::Builder::publish(Bytes data) {
  auto shared = std::make_shared<const Bytes>(std::move(data));
  cache_->finish_flight(key_, shared);
  published_ = true;
  return shared;
}

}  // namespace ecomp::net

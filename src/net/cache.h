// net::ContainerCache — a shared, byte-bounded LRU cache of
// precompressed payloads (selective containers and full-file deflate
// members) with single-flight building: when N concurrent requests
// miss on the same key, exactly one caller compresses while the rest
// wait for the published bytes. This is what makes the worker-pool
// proxy's on-demand mode (§5) survive a thundering herd — the paper's
// "compressed a priori and stored on the proxy" arrangement (§3)
// becomes a warm cache instead of a startup pass.
//
// Protocol between cache and builder:
//   auto lk = cache.acquire(key);
//   if (lk.data)       -> hit (or a concurrent builder finished): serve it.
//   if (lk.builder)    -> this caller must build; call
//                         lk.builder->publish(bytes) on success. If the
//                         Builder dies unpublished (request failed),
//                         waiters are released and retry acquire() —
//                         the next one becomes the builder.
//
// Entries are immutable once published (shared_ptr<const Bytes>), so
// readers never copy under the lock and invalidation is O(variants).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/bytes.h"

namespace ecomp::net {

class ContainerCache {
 public:
  /// Capacity in payload bytes; entries are evicted LRU-first once the
  /// total exceeds it. 0 disables caching entirely (every acquire is a
  /// build, still single-flighted).
  explicit ContainerCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  class Builder;

  struct Lookup {
    /// Non-null on a hit (including "waited for a concurrent builder").
    std::shared_ptr<const Bytes> data;
    /// Non-null when this caller owns the build for the key.
    std::unique_ptr<Builder> builder;
  };

  /// Resolve `key`: cached data, or a Builder making this caller the
  /// single flight, or (after a builder failed) neither — callers loop.
  Lookup acquire(const std::string& key);

  /// Drop every key beginning with `prefix` (a PUT invalidating all
  /// cached variants of one name). In-flight builds are left to finish;
  /// their publish lands in the cache and is simply stale-free because
  /// publish re-checks nothing — callers must invalidate after the
  /// store mutation, which the proxy does under its request ordering.
  void invalidate_prefix(const std::string& prefix);

  /// Insert an already-built payload (precompress startup pass).
  void put(const std::string& key, Bytes data);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< acquires that started a build
    std::uint64_t waits = 0;       ///< acquires that joined a flight
    std::uint64_t builds = 0;      ///< publishes (successful builds)
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;       ///< resident payload bytes
    std::uint64_t entries = 0;
  };
  Stats stats() const;

  /// RAII single-flight token: publish() stores the bytes and wakes the
  /// waiters; destruction without publish wakes them empty-handed so
  /// one of them can retry.
  class Builder {
   public:
    ~Builder();
    Builder(const Builder&) = delete;
    Builder& operator=(const Builder&) = delete;
    std::shared_ptr<const Bytes> publish(Bytes data);

   private:
    friend class ContainerCache;
    Builder(ContainerCache* cache, std::string key)
        : cache_(cache), key_(std::move(key)) {}
    ContainerCache* cache_;
    std::string key_;
    bool published_ = false;
  };

 private:
  struct Flight {
    std::promise<std::shared_ptr<const Bytes>> promise;
    std::shared_future<std::shared_ptr<const Bytes>> future;
  };

  /// Insert under lock, updating LRU order and evicting to capacity.
  void insert_locked(const std::string& key,
                     std::shared_ptr<const Bytes> data);
  void finish_flight(const std::string& key,
                     std::shared_ptr<const Bytes> data);

  mutable std::mutex mu_;
  std::size_t capacity_;
  /// MRU-first recency list; map values hold an iterator into it.
  std::list<std::string> lru_;
  struct Entry {
    std::shared_ptr<const Bytes> data;
    std::list<std::string>::iterator pos;
  };
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;
  Stats stats_;
};

}  // namespace ecomp::net

// A working proxy server + download/upload client over loopback TCP —
// the §2 topology (Dell proxy ⇄ iPAQ) with the radio replaced by
// localhost.
//
// Protocol (control frames are u32-length-prefixed):
//   download: "GET <mode> <name>"   mode ∈ { raw | full | selective }
//     raw/full  → status "OK <n>", then an n-byte length-framed payload
//     selective → status "OK stream", then container bytes streamed
//                 unframed while blocks are still being compressed
//                 (§5's on-demand overlap, for real); the client's
//                 streaming decoder knows when the container ends.
//   upload:   "PUT <name>", then a streamed selective container; reply
//             "OK stored <bytes>" once decoded and stored.
//
// raw        — original bytes
// full       — one deflate member for the whole file
// selective  — Fig. 10 block container (what the streaming interleaved
//              decoder consumes)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "compress/selective.h"
#include "net/socket.h"

namespace ecomp::net {

/// In-memory file store the proxy serves from (and uploads land in).
class FileStore {
 public:
  void put(std::string name, Bytes data);
  const Bytes& get(const std::string& name) const;  // throws if absent
  bool contains(const std::string& name) const;
  const std::map<std::string, Bytes>& files() const { return files_; }

 private:
  std::map<std::string, Bytes> files_;
};

/// Serves GET/PUT requests until stopped. Runs its accept loop on an
/// internal thread. By default compression happens on demand per
/// request (§5); with `precompress` the containers are built once at
/// startup and served from cache (§3's "compressed a priori and stored
/// on the proxy" arrangement).
class ProxyServer {
 public:
  ProxyServer(FileStore store, compress::SelectivePolicy policy,
              std::size_t block_size = compress::kDefaultBlockSize,
              bool precompress = false);
  ~ProxyServer();
  ProxyServer(const ProxyServer&) = delete;
  ProxyServer& operator=(const ProxyServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Stop accepting and join the server thread (idempotent).
  void stop();

 private:
  void serve();
  void handle(Socket client);

  FileStore store_;
  compress::SelectivePolicy policy_;
  std::size_t block_size_;
  /// Precompressed caches (name -> container); empty in on-demand mode.
  std::map<std::string, Bytes> full_cache_;
  std::map<std::string, Bytes> selective_cache_;
  Listener listener_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Client-side download statistics.
struct DownloadStats {
  std::size_t bytes_on_wire = 0;   ///< payload bytes received
  std::size_t bytes_decoded = 0;   ///< original bytes reconstructed
  std::size_t blocks = 0;          ///< blocks decoded (selective mode)
  /// Per-block sizes/decisions (selective mode only) — feed these to
  /// sim::TransferSimulator::download_selective for energy estimates.
  std::vector<compress::BlockInfo> block_infos;
  double factor() const {
    return bytes_on_wire
               ? static_cast<double>(bytes_decoded) / bytes_on_wire
               : 1.0;
  }
};

/// Fetch `name` from a proxy at `port`. mode "selective" uses the
/// streaming interleaved decoder (decoding each block as it completes);
/// "full"/"raw" buffer then decode.
Bytes download(std::uint16_t port, const std::string& name,
               const std::string& mode, DownloadStats* stats = nullptr);

/// Upload `data` as `name`: the client compresses block by block with
/// `policy` while sending (the paper's upload direction, its stated
/// future work); the server decodes and stores the original bytes.
/// Returns the wire bytes sent.
std::size_t upload(std::uint16_t port, const std::string& name,
                   ByteSpan data, const compress::SelectivePolicy& policy);

}  // namespace ecomp::net

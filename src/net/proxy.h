// A working proxy server + download/upload client over loopback TCP —
// the §2 topology (Dell proxy ⇄ iPAQ) with the radio replaced by
// localhost.
//
// Protocol (control frames are u32-length-prefixed):
//   download: "GET <mode> <name>"   mode ∈ { raw | full | selective }
//     raw/full  → status "OK <n>", then an n-byte length-framed payload
//     selective → status "OK stream", then container bytes streamed
//                 unframed while blocks are still being compressed
//                 (§5's on-demand overlap, for real); the client's
//                 streaming decoder knows when the container ends.
//   resume:   "GET-RANGE <mode> <name> <offset>" — re-fetch from a byte
//     offset of the same wire payload, so an interrupted download keeps
//     what it has. raw/full → status "OK <remaining> <total> <crc32>"
//     (crc32 of the whole payload, so even raw mode is verifiable),
//     then the remaining bytes length-framed; selective → "OK stream",
//     then container bytes from the offset. Plain GET is unchanged, so
//     old clients keep working.
//   upload:   "PUT <name>", then a streamed selective container; reply
//             "OK stored <bytes>" once decoded and stored.
//   overload: a connection refused by admission control receives a
//             single "BUSY <retry-after-ms>" frame (before the request
//             is even read) and is closed. Resilient clients honor the
//             retry-after in their backoff and try again.
//   Malformed, unknown, or failing requests get "ERR <reason>" and the
//   connection is dropped; the server never dies with a client.
//
// raw        — original bytes
// full       — one deflate member for the whole file
// selective  — Fig. 10 block container (what the streaming interleaved
//              decoder consumes)
//   stats:    "STATS [text|json|prom]" — live telemetry snapshot. Reply
//             "OK <n>", then the rendered payload as one frame (may
//             exceed kMaxControlFrame; fetch with a larger cap). STATS
//             is subject to admission control like any other request.
//
// Concurrency: connections are served by a worker pool (ProxyOptions::
// workers) fed from the accept thread through a bounded admission
// queue (ProxyOptions::max_conns). Above the degradation watermarks,
// new requests are served at a cheaper codec level, then with
// compression skipped entirely (ledgered, so the energy cost of
// shedding is visible), before outright BUSY shedding. A shared
// single-flight LRU cache (net::ContainerCache) makes N concurrent
// requests for the same payload compress once.
//
// Tracing: a request line may end with an optional `trace=<16hex>`
// token (minted client-side, see obs::TraceContext). The proxy strips
// it, runs the request under that trace, echoes the token at the end of
// every reply status, and stamps it into its span tracer and JSONL
// event log. Requests without the token behave exactly as before.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "compress/selective.h"
#include "net/cache.h"
#include "net/fault.h"
#include "net/socket.h"
#include "obs/events.h"
#include "obs/histogram.h"
#include "obs/stats_export.h"
#include "obs/trace.h"

namespace ecomp::obs {
class Monitor;  // obs/monitor.h — only linked in ECOMP_OBS=ON builds
}
namespace ecomp::par {
class ThreadPool;  // par/thread_pool.h — the connection worker pool
}

namespace ecomp::net {

/// Continuous-monitoring knobs for the proxy's embedded obs::Monitor
/// (sampler + watchdog; see docs/MONITORING.md). The monitor exists
/// only in ECOMP_OBS=ON builds — in OFF builds the config is accepted
/// and ignored so call sites need no guards.
struct MonitorConfig {
  bool enabled = true;
  std::uint32_t cadence_ms = 1000;  ///< sampler period
  /// Liveness: alert when an active connection makes no wire progress
  /// for this long (Delay faults, dead peers).
  double stall_timeout_s = 5.0;
  /// Latency SLO on net.proxy.request_us.p99; 0 disables the rule.
  double latency_slo_ms = 0.0;
  /// Energy SLO line = Eq. 1 raw J/MB (shifted by `loss`) x this
  /// margin; measured J/MB-served above it for 2 samples alerts.
  double jmb_margin = 1.15;
  /// Observed channel loss rate folded into the baseline via
  /// EnergyModel::with_loss (PR 3's threshold shift).
  double loss = 0.0;
};

/// Serving knobs for ProxyServer (see docs/ROBUSTNESS.md §admission).
struct ProxyOptions {
  /// TCP port to bind on loopback; 0 = pick an ephemeral port (read it
  /// back via ProxyServer::port()).
  std::uint16_t port = 0;
  std::size_t block_size = compress::kDefaultBlockSize;
  /// Build every container at startup and serve from the cache (§3's
  /// "compressed a priori and stored on the proxy" arrangement).
  bool precompress = false;
  /// Compression threads per request (the parallel block pipeline);
  /// wire bytes are byte-identical to the serial encoder's.
  unsigned threads = 1;
  /// Connection worker threads. 1 keeps the legacy one-at-a-time
  /// service order (connections queue, none refused when max_conns=0).
  unsigned workers = 1;
  /// Admission capacity K: connections in service + queued. 0 =
  /// unbounded (never BUSY, never degrade) — the legacy behavior.
  std::size_t max_conns = 0;
  /// Load = (in-flight connections)/K at admission time. At or above
  /// these fractions a GET is served at deflate level 1, then with
  /// compression skipped entirely (stored blocks / identity member).
  double degrade_level_watermark = 0.5;
  double degrade_raw_watermark = 0.75;
  /// Retry-after hint in the BUSY reply.
  std::uint32_t busy_retry_ms = 50;
  /// stop() waits this long for in-flight connections before breaking
  /// their sockets.
  std::uint32_t drain_deadline_ms = 5000;
  /// Per-connection socket deadlines (SO_RCVTIMEO/SO_SNDTIMEO) on the
  /// server side; 0 = none. A dead peer then costs a worker at most
  /// this long.
  std::uint32_t io_timeout_ms = 0;
  /// Byte budget of the shared single-flight container cache.
  std::size_t cache_capacity_bytes = 64 * 1024 * 1024;
  MonitorConfig monitor;
};

/// In-memory file store the proxy serves from (and uploads land in).
/// Internally synchronized: GET workers and PUT workers race on it.
class FileStore {
 public:
  FileStore() = default;
  FileStore(const FileStore& o) : files_(o.snapshot()) {}
  FileStore(FileStore&& o) noexcept : files_(std::move(o.files_)) {}
  FileStore& operator=(const FileStore&) = delete;

  void put(std::string name, Bytes data);
  /// Copy of the named file's bytes; throws if absent. A copy (not a
  /// reference) because a concurrent PUT may replace the entry while a
  /// GET streams it.
  Bytes get(const std::string& name) const;
  bool contains(const std::string& name) const;
  std::map<std::string, Bytes> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Bytes> files_;
};

/// Serves GET/PUT requests until stopped. The accept loop runs on an
/// internal thread and feeds a worker pool through a bounded admission
/// queue. By default compression happens on demand per request (§5),
/// memoized in the shared container cache; with `precompress` the
/// containers are built once at startup (§3).
class ProxyServer {
 public:
  ProxyServer(FileStore store, compress::SelectivePolicy policy,
              ProxyOptions options);
  /// Legacy signature (sequential service order: one worker, unbounded
  /// admission). `threads` > 1 compresses selective containers on a
  /// thread pool; the wire bytes are byte-identical to the serial
  /// encoder's at any thread count.
  ProxyServer(FileStore store, compress::SelectivePolicy policy,
              std::size_t block_size = compress::kDefaultBlockSize,
              bool precompress = false, unsigned threads = 1,
              MonitorConfig monitor = {});
  ~ProxyServer();
  ProxyServer(const ProxyServer&) = delete;
  ProxyServer& operator=(const ProxyServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Stop accepting, drain in-flight connections (bounded by
  /// options.drain_deadline_ms, after which their sockets are broken),
  /// and join every thread (idempotent).
  void stop();

  /// Arm fault injection (testing): subsequent accepted connections ask
  /// the injector for a FaultChannel (channel_for(conn), so index-
  /// targeted injectors can pick a victim among concurrent clients).
  /// Pass nullptr to disarm.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  /// Attach a proxy-side JSONL event log (non-owning; the caller keeps
  /// it alive past the server). Pass nullptr to detach. Instance-based
  /// so several proxies in one process keep separate logs.
  void set_event_log(obs::EventLog* log);

  /// Point-in-time telemetry snapshot — what the STATS verb serves.
  /// Histograms cover this instance's requests; counters mirror the
  /// process-wide registry.
  obs::StatsSnapshot stats() const;

  /// The embedded monitor (nullptr in OFF builds or when disabled).
  obs::Monitor* monitor() const { return monitor_.get(); }

  /// Shared container cache counters (single-flight test surface).
  ContainerCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  /// Degradation ladder rung chosen at admission time.
  enum class Degrade { None, Level, Raw };

  /// Live-connection registry entry: progress words for the per-
  /// connection stall watchdog, plus the fd so a drain past its
  /// deadline can break the socket from outside the worker.
  struct ConnState {
    std::atomic<std::uint64_t> active_since_ns{0};
    std::atomic<std::uint64_t> progress_ns{0};
    std::atomic<int> fd{-1};
  };

  /// What handle_request learned about a request — drives the per-mode
  /// latency attribution, error accounting, and the close event.
  struct ReqInfo {
    bool streaming = false;  ///< status frame sent; payload may follow
    bool error = false;      ///< replied ERR without throwing
    std::string mode;        ///< raw|full|selective|put|stats ("" = unparsed)
    std::string name;
    std::size_t raw_bytes = 0;
    std::size_t wire_bytes = 0;
  };

  void serve();
  void handle(Socket client, std::uint64_t conn, Degrade degrade);
  void handle_request(Socket& client, const std::string& req, ReqInfo* info,
                      std::uint64_t conn, Degrade degrade,
                      ConnState& state);
  void emit(const obs::Event& e) const;
  /// Ledgered device-side energy estimate for a served download, J.
  double estimate_request_j(const std::string& mode, std::size_t raw_bytes,
                            std::size_t wire_bytes) const;
  /// Build/start the embedded monitor (ON builds; no-op otherwise).
  void start_monitor(const MonitorConfig& cfg);
  /// Refuse `client` with "BUSY <retry-after-ms>" and count the shed.
  void shed(Socket client, std::uint64_t conn);
  /// The cache key of one payload variant ("\x1f" keeps names from
  /// colliding with variant tags).
  std::string cache_key(const std::string& name, const char* variant) const;
  /// Resolve `key` through the single-flight cache, building via
  /// `build` when this request owns the flight.
  std::shared_ptr<const Bytes> cached_payload(const std::string& key,
                                              const std::function<Bytes()>&
                                                  build);

  FileStore store_;
  compress::SelectivePolicy policy_;
  ProxyOptions options_;
  ContainerCache cache_;
  Listener listener_;
  std::atomic<bool> stopping_{false};
  /// Set when stop()'s drain deadline passes: still-queued connections
  /// are refused instead of served.
  std::atomic<bool> drain_expired_{false};
  std::mutex fault_mu_;
  std::shared_ptr<FaultInjector> fault_injector_;

  /// Connection worker pool; its bounded queue is the admission queue.
  std::unique_ptr<par::ThreadPool> pool_;
  /// Connections admitted and not yet finished (queued + in service).
  std::atomic<std::uint64_t> admitted_{0};
  std::mutex drain_mu_;
  std::condition_variable drained_;

  /// Live-connection registry (per-connection stall telemetry and the
  /// drain-deadline socket break).
  mutable std::mutex conns_mu_;
  std::map<std::uint64_t, std::shared_ptr<ConnState>> conns_;

  // ---- instance telemetry (the STATS surface) ----
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  std::atomic<obs::EventLog*> events_{nullptr};
  std::atomic<std::uint64_t> conns_total_{0};
  std::atomic<std::uint64_t> conns_active_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> errors_total_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_recv_{0};
  std::atomic<std::uint64_t> energy_served_uj_{0};  ///< microjoules
  // ---- admission/degradation telemetry ----
  std::atomic<std::uint64_t> conns_busy_{0};           ///< shed with BUSY
  std::atomic<std::uint64_t> degraded_level_total_{0};
  std::atomic<std::uint64_t> degraded_raw_total_{0};

  // ---- monitoring (the J/MB-served gauge and stall watchdog) ----
  /// Raw bytes of downloads that completed without error — the useful
  /// payload the energy above was spent serving.
  std::atomic<std::uint64_t> bytes_ok_raw_{0};
  /// Wire bytes burned on connections that ended in an error: sent but
  /// useless, so they raise measured J/MB-served under faults.
  std::atomic<std::uint64_t> bytes_waste_wire_{0};
  /// Download-only slice of the energy ledger (PUTs excluded), µJ.
  std::atomic<std::uint64_t> energy_down_uj_{0};
  /// Embedded sampler/watchdog. shared_ptr keeps obs::Monitor an
  /// incomplete type here: its deleter is bound at construction (in
  /// proxy.cc, ON builds only), so OFF builds reference no monitor
  /// symbols at all.
  std::shared_ptr<obs::Monitor> monitor_;
  obs::SlidingHistogram req_us_;        ///< all requests
  obs::SlidingHistogram raw_us_;        ///< per-mode request latency
  obs::SlidingHistogram full_us_;
  obs::SlidingHistogram selective_us_;
  obs::SlidingHistogram put_us_;

  std::thread thread_;
};

/// Client-side download statistics.
struct DownloadStats {
  std::size_t bytes_on_wire = 0;   ///< payload bytes received
  std::size_t bytes_decoded = 0;   ///< original bytes reconstructed
  std::size_t blocks = 0;          ///< blocks decoded (selective mode)
  std::uint64_t trace_id = 0;      ///< id sent with the request (0 = none)
  bool trace_echoed = false;       ///< proxy echoed the id back
  /// Per-block sizes/decisions (selective mode only) — feed these to
  /// sim::TransferSimulator::download_selective for energy estimates.
  std::vector<compress::BlockInfo> block_infos;
  double factor() const {
    return bytes_on_wire
               ? static_cast<double>(bytes_decoded) / bytes_on_wire
               : 1.0;
  }
};

/// Fetch `name` from a proxy at `port`. mode "selective" uses the
/// streaming interleaved decoder (decoding each block as it completes);
/// "full"/"raw" buffer then decode. `threads` >= 2 runs the selective
/// decode as a true receive/decompress pipeline (feed thread + decode
/// worker) — the reconstructed bytes are identical either way.
Bytes download(std::uint16_t port, const std::string& name,
               const std::string& mode, DownloadStats* stats = nullptr,
               unsigned threads = 1);

/// Upload `data` as `name`: the client compresses block by block with
/// `policy` while sending (the paper's upload direction, its stated
/// future work); the server decodes and stores the original bytes.
/// Returns the wire bytes sent.
std::size_t upload(std::uint16_t port, const std::string& name,
                   ByteSpan data, const compress::SelectivePolicy& policy);

/// Client-side resilience knobs for download_resilient/upload_resilient.
struct TransferPolicy {
  int max_retries = 4;  ///< reconnect attempts after the first failure
  std::uint32_t timeout_ms = 2000;  ///< per-socket recv/send deadline; 0 = none
  std::uint32_t backoff_base_ms = 10;
  std::uint32_t backoff_max_ms = 250;
  std::uint64_t jitter_seed = 0x5EEDull;  ///< deterministic backoff jitter
  bool resume = true;  ///< GET-RANGE from the bytes already received
  /// Selective mode only: when retries run out mid-container, salvage
  /// whatever blocks arrived intact instead of throwing.
  bool salvage = false;
  /// Selective mode only: decode a fully received container with this
  /// many pool threads (1 = serial). Retry/resume classification is
  /// unchanged — the parallel path is a fast path for intact streams.
  unsigned threads = 1;
  /// Mint/propagate a TraceContext with each request (an already-current
  /// thread trace is reused) and stamp it into events and stats.
  bool trace = true;
};

struct DownloadOutcome {
  Bytes data;
  DownloadStats stats;
  int attempts = 0;               ///< connections opened (>= 1)
  int busy = 0;                   ///< attempts refused with BUSY
  std::size_t resumed_bytes = 0;  ///< bytes carried across reconnects
  /// False only when retries were exhausted and the partial container
  /// was salvaged (recovery then says what was lost).
  bool complete = true;
  compress::RecoveryReport recovery;
};

/// download() with deadlines, bounded retries (exponential backoff with
/// deterministic jitter; a BUSY reply's retry-after raises the floor of
/// the next wait), and resume-from-offset over GET-RANGE. Every
/// completed download is CRC-verified — raw mode included. Throws the
/// last failure once retries are exhausted, unless policy.salvage turns
/// a partial selective container into a salvaged DownloadOutcome.
DownloadOutcome download_resilient(std::uint16_t port,
                                   const std::string& name,
                                   const std::string& mode,
                                   const TransferPolicy& policy = {});

/// upload() with deadlines and bounded retries (PUT is idempotent, so a
/// failed attempt is simply replayed; BUSY retry-after is honored like
/// the download side). Returns the wire bytes of the successful
/// attempt; `attempts` (optional) receives the count.
std::size_t upload_resilient(std::uint16_t port, const std::string& name,
                             ByteSpan data,
                             const compress::SelectivePolicy& policy,
                             const TransferPolicy& tp = {},
                             int* attempts = nullptr);

/// Fetch a live telemetry snapshot over the STATS verb. `format` is
/// "text", "json", or "prom"; returns the rendered payload verbatim.
std::string fetch_stats(std::uint16_t port,
                        const std::string& format = "json");

}  // namespace ecomp::net

#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/fault.h"
#include "obs/metrics.h"

namespace ecomp::net {
namespace {

[[noreturn]] void fail(const std::string& what) {
  if (errno == EAGAIN || errno == EWOULDBLOCK) throw TimeoutError(what);
  throw Error("net: " + what + ": " + std::strerror(errno));
}

void set_timeout(int fd, int which, std::uint32_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof tv) < 0)
    fail("setsockopt timeout");
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
    fault_ = std::move(o.fault_);
    bytes_sent_ = o.bytes_sent_;
    bytes_recv_ = o.bytes_recv_;
    o.bytes_sent_ = 0;
    o.bytes_recv_ = 0;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(ByteSpan data) const {
  Bytes faulted;
  std::size_t send_n = data.size();
  FaultKind abort_after = FaultKind::None;
  if (fault_) {
    faulted.assign(data.begin(), data.end());
    std::uint32_t sleep_ms = 0;
    send_n = fault_->plan_send(faulted.data(), faulted.size(), &sleep_ms,
                               &abort_after);
    if (sleep_ms)
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    data = ByteSpan(faulted.data(), send_n);
  }

  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    off += static_cast<std::size_t>(n);
  }
  bytes_sent_ += data.size();
  ECOMP_COUNT_N("net.bytes_sent", data.size());
  ECOMP_COUNT("net.sends");

  if (abort_after == FaultKind::Truncate) {
    // Early FIN: the peer sees a clean, but short, stream.
    ::shutdown(fd_, SHUT_WR);
    throw FaultError("injected truncate");
  }
  if (abort_after == FaultKind::Drop) {
    // SO_LINGER with zero timeout makes the eventual close send RST.
    struct linger lg {1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    throw FaultError("injected drop");
  }
}

std::size_t Socket::recv_some(std::uint8_t* dst, std::size_t max) const {
  while (true) {
    const ssize_t n = ::recv(fd_, dst, max, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    bytes_recv_ += static_cast<std::uint64_t>(n);
    ECOMP_COUNT_N("net.bytes_recv", n);
    return static_cast<std::size_t>(n);
  }
}

Bytes Socket::recv_exact(std::size_t n) const {
  Bytes out(n);
  std::size_t off = 0;
  while (off < n) {
    const std::size_t got = recv_some(out.data() + off, n - off);
    if (got == 0) throw Error("net: peer closed mid-message");
    off += got;
  }
  return out;
}

void Socket::set_recv_timeout_ms(std::uint32_t ms) const {
  set_timeout(fd_, SO_RCVTIMEO, ms);
}

void Socket::set_send_timeout_ms(std::uint32_t ms) const {
  set_timeout(fd_, SO_SNDTIMEO, ms);
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    fail("bind");
  // Backlog sized for the load tests' 100-client bursts: the admission
  // layer (not the kernel queue) is what should refuse excess work.
  if (::listen(fd, 128) < 0) fail("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    fail("getsockname");
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept() const {
  while (true) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      fail("accept");
    }
    return Socket(fd);
  }
}

Socket connect_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    fail("connect");
  ECOMP_COUNT("net.connections");
  return s;
}

void send_frame_header(const Socket& s, std::uint32_t payload_size) {
  std::uint8_t hdr[4];
  for (int i = 0; i < 4; ++i)
    hdr[i] = static_cast<std::uint8_t>((payload_size >> (8 * i)) & 0xff);
  s.send_all(ByteSpan(hdr, 4));
}

std::uint32_t recv_frame_header(const Socket& s) {
  const Bytes hdr = s.recv_exact(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
  return v;
}

void send_frame(const Socket& s, ByteSpan payload) {
  if (payload.size() > 0xffffffffu) throw Error("net: frame too large");
  send_frame_header(s, static_cast<std::uint32_t>(payload.size()));
  s.send_all(payload);
}

Bytes recv_frame(const Socket& s, std::uint32_t max_size) {
  const std::uint32_t n = recv_frame_header(s);
  if (n > max_size) throw Error("net: frame length exceeds cap");
  return s.recv_exact(n);
}

}  // namespace ecomp::net

#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace ecomp::net {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw Error("net: " + what + ": " + std::strerror(errno));
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(ByteSpan data) const {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    off += static_cast<std::size_t>(n);
  }
  ECOMP_COUNT_N("net.bytes_sent", data.size());
  ECOMP_COUNT("net.sends");
}

std::size_t Socket::recv_some(std::uint8_t* dst, std::size_t max) const {
  while (true) {
    const ssize_t n = ::recv(fd_, dst, max, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    ECOMP_COUNT_N("net.bytes_recv", n);
    return static_cast<std::size_t>(n);
  }
}

Bytes Socket::recv_exact(std::size_t n) const {
  Bytes out(n);
  std::size_t off = 0;
  while (off < n) {
    const std::size_t got = recv_some(out.data() + off, n - off);
    if (got == 0) throw Error("net: peer closed mid-message");
    off += got;
  }
  return out;
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    fail("bind");
  if (::listen(fd, 8) < 0) fail("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    fail("getsockname");
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept() const {
  while (true) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      fail("accept");
    }
    return Socket(fd);
  }
}

Socket connect_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    fail("connect");
  ECOMP_COUNT("net.connections");
  return s;
}

void send_frame_header(const Socket& s, std::uint32_t payload_size) {
  std::uint8_t hdr[4];
  for (int i = 0; i < 4; ++i)
    hdr[i] = static_cast<std::uint8_t>((payload_size >> (8 * i)) & 0xff);
  s.send_all(ByteSpan(hdr, 4));
}

std::uint32_t recv_frame_header(const Socket& s) {
  const Bytes hdr = s.recv_exact(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
  return v;
}

void send_frame(const Socket& s, ByteSpan payload) {
  if (payload.size() > 0xffffffffu) throw Error("net: frame too large");
  send_frame_header(s, static_cast<std::uint32_t>(payload.size()));
  s.send_all(payload);
}

Bytes recv_frame(const Socket& s) {
  return s.recv_exact(recv_frame_header(s));
}

}  // namespace ecomp::net

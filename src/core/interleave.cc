#include "core/interleave.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "compress/container.h"
#include "compress/deflate.h"
#include "compress/selective.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/spsc_queue.h"

namespace ecomp::core {
namespace {

/// Try to read a varint from `data` at `pos`; returns nullopt when more
/// bytes are needed (never throws for truncation, unlike get_varint).
std::optional<std::uint64_t> try_varint(ByteSpan data, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  std::size_t p = pos;
  while (true) {
    if (p >= data.size()) return std::nullopt;
    if (shift >= 64) throw Error("stream: varint overflow");
    const std::uint8_t b = data[p++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  pos = p;
  return v;
}

}  // namespace

void SelectiveStreamDecoder::feed(ByteSpan chunk) {
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

bool SelectiveStreamDecoder::try_parse_header() {
  // magic(2) | varint size | crc(4) | varint block_size | varint n_blocks
  std::size_t p = pos_;
  if (buf_.size() - p < 2) return false;
  const std::uint16_t magic =
      static_cast<std::uint16_t>(buf_[p] | (buf_[p + 1] << 8));
  if (magic != compress::kSelectiveMagic)
    throw Error("stream: bad container magic");
  p += 2;
  const auto size = try_varint(buf_, p);
  if (!size) return false;
  if (buf_.size() - p < 4) return false;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i)
    crc |= static_cast<std::uint32_t>(buf_[p + i]) << (8 * i);
  p += 4;
  const auto block_size = try_varint(buf_, p);
  if (!block_size) return false;
  const auto n_blocks = try_varint(buf_, p);
  if (!n_blocks) return false;

  original_size_ = *size;
  expected_crc_ = crc;
  block_size_ = *block_size;
  n_blocks_ = *n_blocks;
  pos_ = p;
  header_done_ = true;
  return true;
}

std::optional<Bytes> SelectiveStreamDecoder::poll() {
  if (!header_done_ && !try_parse_header()) return std::nullopt;
  if (blocks_done_ >= n_blocks_) return std::nullopt;

  // flag(1) | varint payload_size | payload
  std::size_t p = pos_;
  if (buf_.size() - p < 1) return std::nullopt;
  const std::uint8_t flag = buf_[p++];
  if (flag > 1 && !tolerant_) throw Error("stream: bad block flag");
  const auto payload_size = try_varint(buf_, p);
  if (!payload_size) return std::nullopt;
  if (buf_.size() - p < *payload_size) return std::nullopt;

  const ByteSpan payload = ByteSpan(buf_).subspan(p, *payload_size);
  // What this block must decode to for downstream offsets to line up —
  // the zero-fill size when a damaged block is skipped in tolerant mode.
  const std::uint64_t expected =
      std::min<std::uint64_t>(block_size_,
                              original_size_ > decoded_bytes_
                                  ? original_size_ - decoded_bytes_
                                  : 0);
  Bytes block;
  bool ok = flag <= 1;
  if (ok) {
    ECOMP_SLIDING_TIMER("selective.decode_block_us");
    try {
      if (flag == 1) {
        block = compress::DeflateCodec().decompress(payload);
      } else {
        block.assign(payload.begin(), payload.end());
      }
      if (tolerant_ && block.size() != expected) ok = false;
    } catch (const Error&) {
      if (!tolerant_) throw;
      ok = false;
    }
  }
  ++recovery_.blocks_total;
  if (!ok) {
    block.assign(static_cast<std::size_t>(expected), 0);
    ++recovery_.blocks_lost;
    recovery_.bytes_lost += expected;
  } else {
    ++recovery_.blocks_recovered;
    recovery_.bytes_recovered += block.size();
  }
  pos_ = p + *payload_size;
  ++blocks_done_;
  running_crc_.update(block);
  decoded_bytes_ += block.size();
  infos_.push_back({block.size(), static_cast<std::size_t>(*payload_size),
                    flag == 1});

  // Reclaim consumed buffer space occasionally.
  if (pos_ > 1 << 20) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return block;
}

void SelectiveStreamDecoder::verify() {
  if (!finished()) throw Error("stream: verify before stream finished");
  recovery_.crc_ok = decoded_bytes_ == original_size_ &&
                     running_crc_.value() == expected_crc_;
  if (tolerant_) return;
  if (decoded_bytes_ != original_size_)
    throw Error("stream: decoded size mismatch");
  if (running_crc_.value() != expected_crc_)
    throw Error("stream: CRC mismatch");
}

namespace {

/// Close out a finished-or-truncated stream: verify when complete, and
/// in tolerant mode fold a truncated tail into the recovery report the
/// same way selective_salvage accounts a missing tail. Shared by both
/// execution modes so their outcomes are identical by construction.
compress::RecoveryReport finalize_stream(SelectiveStreamDecoder& dec,
                                         const Bytes& out, bool tolerant) {
  if (dec.finished()) {
    dec.verify();  // tolerant mode records crc_ok instead of throwing
    return dec.recovery();
  }
  if (!tolerant) throw Error("InterleavedDownloader: source ended early");
  compress::RecoveryReport rep = dec.recovery();
  rep.framing_truncated = true;
  rep.crc_ok = false;
  rep.blocks_total = dec.blocks_total();
  rep.blocks_lost += dec.blocks_total() - dec.blocks_decoded();
  if (dec.original_size() > out.size())
    rep.bytes_lost += dec.original_size() - out.size();
  return rep;
}

}  // namespace

Bytes InterleavedDownloader::run(const ChunkSource& read_chunk,
                                 const BlockSink& on_block,
                                 std::vector<compress::BlockInfo>* infos)
    const {
  if (!read_chunk) throw Error("InterleavedDownloader: null source");
  recovery_ = {};
  return opt_.threads >= 2 ? run_pipelined(read_chunk, on_block, infos)
                           : run_serial(read_chunk, on_block, infos);
}

Bytes InterleavedDownloader::run_serial(
    const ChunkSource& read_chunk, const BlockSink& on_block,
    std::vector<compress::BlockInfo>* infos) const {
  SelectiveStreamDecoder dec;
  dec.set_tolerant(opt_.tolerant);
  Bytes out;
  Bytes chunk(opt_.chunk_bytes);
  bool eof = false;
  while (!dec.finished()) {
    // Drain every block that is already complete (this is the work the
    // pipelined mode overlaps with the next receive for real).
    while (auto block = dec.poll()) {
      if (on_block) on_block(*block);
      out.insert(out.end(), block->begin(), block->end());
    }
    if (dec.finished() || eof) break;
    const std::size_t n = read_chunk(chunk.data(), chunk.size());
    if (n == 0) {
      eof = true;
      continue;
    }
    if (n > chunk.size())
      throw Error("InterleavedDownloader: source overran buffer");
    dec.feed(ByteSpan(chunk.data(), n));
  }
  recovery_ = finalize_stream(dec, out, opt_.tolerant);
  if (infos) *infos = dec.block_infos();
  return out;
}

Bytes InterleavedDownloader::run_pipelined(
    const ChunkSource& read_chunk, const BlockSink& on_block,
    std::vector<compress::BlockInfo>* infos) const {
  ECOMP_TRACE_SPAN("interleave.pipelined", "core");
  par::SpscQueue<Bytes> queue(opt_.queue_chunks);
  std::exception_ptr feed_error;  // read only after join()

  // Feed thread: the "network half" of §4.1 — it keeps receiving while
  // the calling thread decodes. It stops on EOF, on a source error, or
  // when the consumer closes the queue after a decode failure. Note it
  // may read a bounded distance ahead of the decoder, so the source
  // must return EOF (0) once the stream ends rather than block forever.
  std::thread feeder([&] {
    try {
      while (true) {
        Bytes chunk(opt_.chunk_bytes);
        const std::size_t n = read_chunk(chunk.data(), chunk.size());
        if (n == 0) break;
        if (n > chunk.size())
          throw Error("InterleavedDownloader: source overran buffer");
        chunk.resize(n);
        ECOMP_COUNT("interleave.chunks_fed");
        if (!queue.push(std::move(chunk))) return;  // consumer bailed
      }
    } catch (...) {
      feed_error = std::current_exception();
    }
    queue.close();
  });

  SelectiveStreamDecoder dec;
  dec.set_tolerant(opt_.tolerant);
  Bytes out;
  try {
    while (!dec.finished()) {
      while (auto block = dec.poll()) {
        if (on_block) on_block(*block);
        out.insert(out.end(), block->begin(), block->end());
      }
      if (dec.finished()) break;
      auto chunk = queue.pop();
      if (!chunk) break;  // EOF (or feeder failed; sorted out below)
      dec.feed(*chunk);
    }
  } catch (...) {
    queue.close();
    feeder.join();
    throw;
  }
  queue.close();
  feeder.join();
  if (feed_error) std::rethrow_exception(feed_error);

  recovery_ = finalize_stream(dec, out, opt_.tolerant);
  if (infos) *infos = dec.block_infos();
  return out;
}

std::vector<sim::BlockTransfer> to_block_transfers(
    const std::vector<compress::BlockInfo>& infos) {
  std::vector<sim::BlockTransfer> blocks;
  blocks.reserve(infos.size());
  for (const auto& info : infos) {
    sim::BlockTransfer b;
    b.raw_mb = static_cast<double>(info.raw_size) / 1e6;
    b.payload_mb = static_cast<double>(info.payload_size) / 1e6;
    b.compressed = info.compressed;
    blocks.push_back(b);
  }
  return blocks;
}

sim::TransferResult simulate_decoded_stream(
    const std::vector<compress::BlockInfo>& infos,
    const sim::TransferSimulator& sim, const std::string& codec,
    const sim::TransferOptions& opt) {
  return sim.download_selective(to_block_transfers(infos), codec, opt);
}

}  // namespace ecomp::core

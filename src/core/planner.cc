#include "core/planner.h"

#include <algorithm>
#include <cmath>

#include "util/bytes.h"

namespace ecomp::core {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::Uncompressed: return "uncompressed";
    case Strategy::Sequential: return "sequential";
    case Strategy::SequentialSleep: return "sequential+sleep";
    case Strategy::Interleaved: return "interleaved";
  }
  return "?";
}

Plan TransferPlanner::plan(const FileEstimate& file) const {
  if (file.size_mb < 0.0) throw Error("planner: negative file size");
  Plan plan;
  const double s = file.size_mb;
  plan.baseline_energy_j = model_.download_energy_j(s);

  PlanCandidate raw;
  raw.strategy = Strategy::Uncompressed;
  raw.predicted_energy_j = plan.baseline_energy_j;
  raw.predicted_time_s = s / model_.params().rate;
  plan.considered.push_back(raw);

  for (const auto& [codec, factor] : file.factors) {
    if (factor <= 0.0) throw Error("planner: non-positive factor");
    const double sc = s / factor;
    const EnergyModel m = model_.with_codec_cost(cpu_.decompress_cost(codec));
    const double td = m.decompress_time_s(s, sc);
    const double dl_time = sc / m.params().rate;

    PlanCandidate seq{codec, Strategy::Sequential,
                      m.sequential_energy_j(s, sc, false), dl_time + td};
    PlanCandidate slp{codec, Strategy::SequentialSleep,
                      m.sequential_energy_j(s, sc, true), dl_time + td};
    PlanCandidate inter{codec, Strategy::Interleaved,
                        m.interleaved_energy_j(s, sc), 0.0};
    // Interleaved wall time: download plus whatever decompress work
    // spills past the gaps.
    double ti_rest = 0.0, ti_first = 0.0;
    m.idle_split(s, sc, ti_rest, ti_first);
    inter.predicted_time_s = dl_time + std::max(0.0, td - ti_rest);

    plan.considered.push_back(seq);
    plan.considered.push_back(slp);
    plan.considered.push_back(inter);
  }

  plan.chosen = *std::min_element(
      plan.considered.begin(), plan.considered.end(),
      [](const PlanCandidate& a, const PlanCandidate& b) {
        return a.predicted_energy_j < b.predicted_energy_j;
      });
  plan.saving_fraction =
      plan.baseline_energy_j > 0.0
          ? 1.0 - plan.chosen.predicted_energy_j / plan.baseline_energy_j
          : 0.0;
  return plan;
}

double estimate_factor(const compress::Codec& codec, ByteSpan data,
                       std::size_t sample_bytes) {
  if (data.empty()) return 1.0;
  const ByteSpan sample = data.subspan(0, std::min(sample_bytes, data.size()));
  const Bytes comp = codec.compress(sample);
  if (comp.empty()) return 1.0;
  return static_cast<double>(sample.size()) /
         static_cast<double>(comp.size());
}

compress::SelectivePolicy make_selective_policy(const EnergyModel& model) {
  compress::SelectivePolicy policy;
  const double threshold_mb = model.min_file_mb();
  policy.min_block_bytes =
      static_cast<std::size_t>(std::ceil(threshold_mb * 1e6));
  policy.energy_test = [model](std::size_t raw_size,
                               std::size_t compressed_size) {
    if (compressed_size == 0 || compressed_size >= raw_size) return false;
    const double s = static_cast<double>(raw_size) / 1e6;
    const double f = static_cast<double>(raw_size) /
                     static_cast<double>(compressed_size);
    return model.should_compress(s, f);
  };
  return policy;
}

}  // namespace ecomp::core

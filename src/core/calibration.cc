#include "core/calibration.h"

#include <chrono>

namespace ecomp::core {

DownloadFit Calibrator::fit_download_energy(
    const std::vector<double>& sizes_mb) const {
  std::vector<double> xs, ys;
  xs.reserve(sizes_mb.size());
  ys.reserve(sizes_mb.size());
  for (double s : sizes_mb) {
    xs.push_back(s);
    ys.push_back(sim_.download_uncompressed(s).energy_j);
  }
  DownloadFit f;
  f.fit = stats::linear_fit(xs, ys);
  f.joules_per_mb = f.fit.coef[0];
  f.startup_j = f.fit.coef[1];
  return f;
}

DecompressFit Calibrator::fit_decompress_time_host(
    const compress::Codec& codec, const std::vector<Bytes>& samples,
    int repeats) {
  using clock = std::chrono::steady_clock;
  std::vector<std::vector<double>> design;
  std::vector<double> times;
  for (const auto& sample : samples) {
    const Bytes comp = codec.compress(sample);
    // Warm-up decode, then time the median-ish average of `repeats`.
    Bytes out = codec.decompress(comp);
    if (out != sample) throw Error("calibration: codec roundtrip failed");
    const auto t0 = clock::now();
    for (int r = 0; r < repeats; ++r) {
      Bytes d = codec.decompress(comp);
      if (d.size() != sample.size())
        throw Error("calibration: decode size changed between runs");
    }
    const auto t1 = clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count() / repeats;
    const double s_mb = static_cast<double>(sample.size()) / 1e6;
    const double sc_mb = static_cast<double>(comp.size()) / 1e6;
    design.push_back({s_mb, sc_mb, 1.0});
    times.push_back(secs);
  }
  DecompressFit f;
  f.fit = stats::least_squares(design, times);
  f.a = f.fit.coef[0];
  f.b = f.fit.coef[1];
  f.c = f.fit.coef[2];
  return f;
}

DecompressFit Calibrator::fit_decompress_time_model(
    std::string_view codec_name) const {
  const sim::CpuModel& cpu = sim_.device().cpu;
  std::vector<std::vector<double>> design;
  std::vector<double> times;
  for (double s : {0.05, 0.1, 0.3, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    for (double factor : {1.1, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0}) {
      const double sc = s / factor;
      design.push_back({s, sc, 1.0});
      times.push_back(cpu.decompress_time_s(codec_name, sc, s));
    }
  }
  DecompressFit f;
  f.fit = stats::least_squares(design, times);
  f.a = f.fit.coef[0];
  f.b = f.fit.coef[1];
  f.c = f.fit.coef[2];
  return f;
}

EnergyModel Calibrator::calibrate(std::string_view codec_name) const {
  const sim::DeviceModel& dev = sim_.device();
  std::vector<double> sizes;
  for (double s = 0.05; s <= 10.0; s *= 1.5) sizes.push_back(s);
  const DownloadFit dl = fit_download_energy(sizes);
  const DecompressFit dt = fit_decompress_time_model(codec_name);

  EnergyParams p;
  p.pi = dev.gap_power_w(false);
  p.pd = dev.decompress_power_w(false);
  p.pd_sleep = dev.decompress_power_w(true);
  p.rate = dev.radio.rate_mb_per_s(false);
  p.idle_fraction = dev.radio.idle_fraction(false);
  // α = m + idle_fraction/rate · pi  ⇒  recover m from the fit.
  p.m = dl.joules_per_mb - p.idle_fraction / p.rate * p.pi;
  p.cs = dl.startup_j;
  p.td_a = dt.a;
  p.td_b = dt.b;
  p.td_c = dt.c;
  return EnergyModel(p);
}

}  // namespace ecomp::core

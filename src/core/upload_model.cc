#include "core/upload_model.h"

#include <algorithm>
#include <limits>

namespace ecomp::core {
namespace {

/// Send front shared by all three upload forms: startup charge plus the
/// active-send phase carrying the m·s energy (send modelled symmetric
/// to receive on the WaveLAN card).
void add_send(sim::Timeline& t, const EnergyParams& p, double sc) {
  t.add_energy(p.cs, "startup",
               {"radio/startup", sim::CpuState::Idle, sim::RadioState::Idle});
  const sim::Attribution send{"radio/send/active", sim::CpuState::Busy,
                              sim::RadioState::Send};
  const double active = (1.0 - p.idle_fraction) / p.rate * sc;
  if (active > 0.0)
    t.add(active, p.m * sc / active, "send:active", send);
  else if (p.m * sc > 0.0)
    t.add_energy(p.m * sc, "send:active", send);
}

sim::Attribution attr_comp(bool overlapped, std::string_view codec) {
  return {(overlapped ? "overlap/compress/" : "cpu/compress/") +
              std::string(codec),
          sim::CpuState::Busy,
          overlapped ? sim::RadioState::Send : sim::RadioState::Idle};
}

sim::Attribution attr_gap(const char* sub) {
  return {std::string("idle/gap/") + sub, sim::CpuState::Idle,
          sim::RadioState::Idle};
}

}  // namespace

double UploadModel::upload_energy_j(double s) const {
  return p_.m * s + p_.cs + p_.idle_fraction / p_.rate * s * p_.pi;
}

double UploadModel::sequential_energy_j(double s, double sc,
                                        bool sleep) const {
  const double tc = compress_time_s(s, sc);
  const double pc = sleep ? p_.pd_sleep : p_.pd;
  const double ti = p_.idle_fraction / p_.rate * sc;
  return tc * pc + p_.m * sc + p_.cs + ti * p_.pi;
}

double UploadModel::interleaved_energy_j(double s, double sc) const {
  const double tc = compress_time_s(s, sc);
  const double tc1 = s > 0.0 ? tc * std::min(p_.block_mb, s) / s : tc;
  const double gaps = p_.idle_fraction / p_.rate * sc;
  const double work = tc - tc1;
  const double send_active_energy = p_.m * sc;
  if (work <= gaps) {
    return tc1 * p_.pd + send_active_energy + p_.cs + work * p_.pd +
           (gaps - work) * p_.pi;
  }
  // CPU-bound: no idle remains; everything beyond active send is
  // compression at busy power.
  return tc1 * p_.pd + send_active_energy + p_.cs + work * p_.pd;
}

sim::Timeline UploadModel::upload_timeline(double s) const {
  sim::Timeline t;
  add_send(t, p_, s);
  t.add(p_.idle_fraction / p_.rate * s, p_.pi, "gap:send", attr_gap("send"));
  return t;
}

sim::Timeline UploadModel::sequential_timeline(double s, double sc, bool sleep,
                                               std::string_view codec) const {
  sim::Timeline t;
  t.add(compress_time_s(s, sc), sleep ? p_.pd_sleep : p_.pd, "compress:front",
        attr_comp(false, codec));
  add_send(t, p_, sc);
  t.add(p_.idle_fraction / p_.rate * sc, p_.pi, "gap:send", attr_gap("send"));
  return t;
}

sim::Timeline UploadModel::interleaved_timeline(double s, double sc,
                                                std::string_view codec) const {
  sim::Timeline t;
  const double tc = compress_time_s(s, sc);
  const double tc1 = s > 0.0 ? tc * std::min(p_.block_mb, s) / s : tc;
  const double gaps = p_.idle_fraction / p_.rate * sc;
  const double work = tc - tc1;
  t.add(tc1, p_.pd, "compress:first", attr_comp(false, codec));
  add_send(t, p_, sc);
  if (work <= gaps) {
    t.add(work, p_.pd, "compress:interleaved", attr_comp(true, codec));
    t.add(gaps - work, p_.pi, "gap:send", attr_gap("send"));
  } else {
    // CPU-bound: every gap is filled and compression spills past the
    // send; no idle remains.
    t.add(work, p_.pd, "compress:interleaved", attr_comp(true, codec));
  }
  return t;
}

bool UploadModel::should_compress(double s_mb, double factor) const {
  if (s_mb <= 0.0 || factor <= 0.0) return false;
  const double sc = s_mb / factor;
  const double best =
      std::min(sequential_energy_j(s_mb, sc, /*sleep=*/true),
               interleaved_energy_j(s_mb, sc));
  return best < upload_energy_j(s_mb);
}

double UploadModel::min_factor(double s_mb) const {
  constexpr double kMaxF = 1e6;
  if (!should_compress(s_mb, kMaxF))
    return std::numeric_limits<double>::infinity();
  double lo = 1.0, hi = kMaxF;
  if (should_compress(s_mb, lo)) return lo;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (should_compress(s_mb, mid) ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace ecomp::core

#include "core/upload_model.h"

#include <algorithm>
#include <limits>

namespace ecomp::core {

double UploadModel::upload_energy_j(double s) const {
  return p_.m * s + p_.cs + p_.idle_fraction / p_.rate * s * p_.pi;
}

double UploadModel::sequential_energy_j(double s, double sc,
                                        bool sleep) const {
  const double tc = compress_time_s(s, sc);
  const double pc = sleep ? p_.pd_sleep : p_.pd;
  const double ti = p_.idle_fraction / p_.rate * sc;
  return tc * pc + p_.m * sc + p_.cs + ti * p_.pi;
}

double UploadModel::interleaved_energy_j(double s, double sc) const {
  const double tc = compress_time_s(s, sc);
  const double tc1 = s > 0.0 ? tc * std::min(p_.block_mb, s) / s : tc;
  const double gaps = p_.idle_fraction / p_.rate * sc;
  const double work = tc - tc1;
  const double send_active_energy = p_.m * sc;
  if (work <= gaps) {
    return tc1 * p_.pd + send_active_energy + p_.cs + work * p_.pd +
           (gaps - work) * p_.pi;
  }
  // CPU-bound: no idle remains; everything beyond active send is
  // compression at busy power.
  return tc1 * p_.pd + send_active_energy + p_.cs + work * p_.pd;
}

bool UploadModel::should_compress(double s_mb, double factor) const {
  if (s_mb <= 0.0 || factor <= 0.0) return false;
  const double sc = s_mb / factor;
  const double best =
      std::min(sequential_energy_j(s_mb, sc, /*sleep=*/true),
               interleaved_energy_j(s_mb, sc));
  return best < upload_energy_j(s_mb);
}

double UploadModel::min_factor(double s_mb) const {
  constexpr double kMaxF = 1e6;
  if (!should_compress(s_mb, kMaxF))
    return std::numeric_limits<double>::infinity();
  double lo = 1.0, hi = kMaxF;
  if (should_compress(s_mb, lo)) return lo;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (should_compress(s_mb, mid) ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace ecomp::core

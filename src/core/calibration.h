// Calibrator — re-derives the paper's fitted constants the way §4.2
// does, but against this repo's artifacts:
//
//  * download-energy fit E(s) = α·s + β from a TransferSimulator sweep
//    (paper: 3.519·s + 0.012, avg error 7.2%);
//  * decompression-time fit td(s, sc) = a·s + b·sc + c from *measured
//    host wall-times* of the real codecs over a corpus (paper: gzip on
//    the iPAQ, R² = 96.7%);
//  * a full EnergyParams set assembled from those fits.
#pragma once

#include <string_view>
#include <vector>

#include "compress/codec.h"
#include "core/energy_model.h"
#include "sim/transfer.h"
#include "util/stats.h"

namespace ecomp::core {

struct DownloadFit {
  double joules_per_mb = 0.0;  ///< α (paper: 3.519)
  double startup_j = 0.0;      ///< β (paper: 0.012)
  stats::FitResult fit;
};

struct DecompressFit {
  double a = 0.0;  ///< s/MB of original output (paper: 0.161)
  double b = 0.0;  ///< s/MB of compressed input (paper: 0.161)
  double c = 0.0;  ///< startup seconds (paper: 0.004)
  stats::FitResult fit;
};

class Calibrator {
 public:
  explicit Calibrator(sim::TransferSimulator simulator)
      : sim_(std::move(simulator)) {}

  /// Fit E_raw(s) over the given sizes (MB) using simulated downloads.
  DownloadFit fit_download_energy(const std::vector<double>& sizes_mb) const;

  /// Fit td(s, sc) from actual wall-clock decompression of `codec` over
  /// the given sample buffers (measured on this host — the fit's shape
  /// and R², not its absolute scale, are the reproduction target).
  static DecompressFit fit_decompress_time_host(
      const compress::Codec& codec, const std::vector<Bytes>& samples,
      int repeats = 3);

  /// Fit td(s, sc) against the CPU cost model itself over an (s, F)
  /// grid — a consistency check that the regression machinery recovers
  /// the generating coefficients.
  DecompressFit fit_decompress_time_model(std::string_view codec_name) const;

  /// Assemble a calibrated EnergyModel: α/β from the download fit,
  /// pi/pd from the device's power table, td from the model fit.
  EnergyModel calibrate(std::string_view codec_name = "deflate") const;

  const sim::TransferSimulator& simulator() const { return sim_; }

 private:
  sim::TransferSimulator sim_;
};

}  // namespace ecomp::core

// TransferPlanner — the decision layer the paper's conclusion points at:
// given a file (size + estimated per-codec compression factors), pick
// the codec and transfer strategy with the lowest predicted energy, and
// produce the Eq. 6 block policy for selective compression.
#pragma once

#include <string>
#include <vector>

#include "compress/selective.h"
#include "core/energy_model.h"

namespace ecomp::core {

enum class Strategy {
  Uncompressed,         ///< ship raw
  Sequential,           ///< download, then decompress
  SequentialSleep,      ///< download, then decompress with radio sleeping
  Interleaved,          ///< decompress block i while receiving block i+1
};

const char* to_string(Strategy s);

struct PlanCandidate {
  std::string codec;  ///< empty for Uncompressed
  Strategy strategy = Strategy::Uncompressed;
  double predicted_energy_j = 0.0;
  double predicted_time_s = 0.0;
};

struct Plan {
  PlanCandidate chosen;
  double baseline_energy_j = 0.0;  ///< uncompressed download (Eq. 1)
  double saving_fraction = 0.0;    ///< 1 - chosen/baseline
  std::vector<PlanCandidate> considered;
};

struct FileEstimate {
  double size_mb = 0.0;
  /// (codec name, expected compression factor) pairs, e.g. from
  /// estimate_factor() on a sample or from stored metadata.
  std::vector<std::pair<std::string, double>> factors;
};

class TransferPlanner {
 public:
  /// `model` supplies the link/power parameters; per-codec td costs come
  /// from `cpu`.
  TransferPlanner(EnergyModel model, sim::CpuModel cpu)
      : model_(std::move(model)), cpu_(cpu) {}
  explicit TransferPlanner(EnergyModel model)
      : TransferPlanner(std::move(model), sim::CpuModel::ipaq()) {}

  /// Evaluate every (codec, strategy) pair and return the cheapest.
  Plan plan(const FileEstimate& file) const;

  const EnergyModel& model() const { return model_; }

 private:
  EnergyModel model_;
  sim::CpuModel cpu_;
};

/// Estimate a codec's compression factor for a file by compressing a
/// prefix sample of up to `sample_bytes`.
double estimate_factor(const compress::Codec& codec, ByteSpan data,
                       std::size_t sample_bytes = 64 * 1024);

/// Build the Fig. 10 block policy from the model: blocks below the
/// Eq. 6 size threshold ship raw; larger blocks ship compressed only if
/// the model predicts an energy saving at the block's achieved factor.
compress::SelectivePolicy make_selective_policy(const EnergyModel& model);

}  // namespace ecomp::core

// Incremental decoding of selective containers — the receiving half of
// the paper's interleaving scheme (§4.1): block i is decompressed while
// block i+1 is still arriving. SelectiveStreamDecoder consumes arbitrary
// byte chunks and yields decoded blocks as soon as each is complete;
// InterleavedDownloader drives it from a chunk source.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "compress/selective.h"
#include "sim/transfer.h"
#include "util/bytes.h"
#include "util/crc32.h"

namespace ecomp::core {

/// Push-based streaming decoder for the kSelectiveMagic container.
/// feed() appends received bytes; poll() returns the next fully
/// received, decoded block, or nullopt until more bytes arrive.
class SelectiveStreamDecoder {
 public:
  void feed(ByteSpan chunk);

  /// Decode the next complete block if its payload has fully arrived.
  std::optional<Bytes> poll();

  /// Tolerant mode: a block whose payload fails to decode (bad flag,
  /// inflate error, member-CRC mismatch, wrong size) is zero-filled to
  /// its expected size instead of throwing, so the stream skips to the
  /// next block boundary and keeps going; verify() records the CRC
  /// outcome in recovery() instead of throwing. Framing damage still
  /// throws — a destroyed boundary ends the stream either way.
  void set_tolerant(bool on) { tolerant_ = on; }

  /// What was lost and recovered so far (meaningful in tolerant mode).
  const compress::RecoveryReport& recovery() const { return recovery_; }

  /// True once every block of the container has been decoded.
  bool finished() const { return header_done_ && blocks_done_ == n_blocks_; }

  std::uint64_t blocks_decoded() const { return blocks_done_; }
  std::uint64_t blocks_total() const { return n_blocks_; }
  std::uint64_t original_size() const { return original_size_; }
  std::uint64_t bytes_buffered() const { return buf_.size() - pos_; }

  /// Verify the container CRC over everything decoded so far; call once
  /// finished(). Throws on mismatch or if not finished (tolerant mode
  /// records the outcome in recovery().crc_ok instead of throwing).
  void verify();

  /// Per-block sizes/decisions observed so far (one entry per block
  /// already returned by poll()); feeds the transfer simulator.
  const std::vector<compress::BlockInfo>& block_infos() const {
    return infos_;
  }

 private:
  bool try_parse_header();

  Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_

  bool header_done_ = false;
  std::uint64_t original_size_ = 0;
  std::uint32_t expected_crc_ = 0;
  std::uint64_t block_size_ = 0;
  std::uint64_t n_blocks_ = 0;
  std::uint64_t blocks_done_ = 0;
  Crc32 running_crc_;
  std::uint64_t decoded_bytes_ = 0;
  std::vector<compress::BlockInfo> infos_;
  bool tolerant_ = false;
  compress::RecoveryReport recovery_;
};

/// Pulls chunks from `read_chunk` (returning the number of bytes it
/// produced; 0 = end of stream), feeding the stream decoder and
/// collecting decoded blocks. Returns the reassembled original data,
/// CRC-verified.
///
/// Two execution modes:
///   * serial (threads <= 1): one loop alternating receive and decode —
///     the original simulated overlap.
///   * pipelined (threads >= 2): a dedicated feed thread pulls from
///     `read_chunk` into a bounded SPSC chunk queue while the calling
///     thread decodes — the paper's §4.1 receive/decompress overlap
///     physically realized. `read_chunk` runs on the feed thread;
///     `on_block` stays on the calling thread. Results (bytes, block
///     infos, CRC verification, recovery report) are identical to the
///     serial mode's.
class InterleavedDownloader {
 public:
  using ChunkSource =
      std::function<std::size_t(std::uint8_t* dst, std::size_t max)>;
  using BlockSink = std::function<void(ByteSpan block)>;

  struct Options {
    std::size_t chunk_bytes = 16 * 1024;
    /// >= 2 enables the feed-thread/decode-worker pipeline.
    unsigned threads = 1;
    /// Tolerant decode: damaged blocks zero-fill instead of throwing,
    /// a truncated stream returns what arrived; recovery() reports the
    /// damage (mirrors SelectiveStreamDecoder::set_tolerant).
    bool tolerant = false;
    /// Bounded SPSC queue depth, in chunks (pipelined mode).
    std::size_t queue_chunks = 8;
  };

  explicit InterleavedDownloader(std::size_t chunk_bytes = 16 * 1024) {
    opt_.chunk_bytes = chunk_bytes;
  }
  explicit InterleavedDownloader(const Options& opt) : opt_(opt) {}

  /// Run to completion. `on_block` (optional) observes each decoded
  /// block in order — this is where an application consumes data before
  /// the download has finished. `infos` (optional) receives the
  /// per-block sizes/decisions.
  Bytes run(const ChunkSource& read_chunk,
            const BlockSink& on_block = nullptr,
            std::vector<compress::BlockInfo>* infos = nullptr) const;

  /// What the last run() lost and recovered (meaningful in tolerant
  /// mode, after run() returned).
  const compress::RecoveryReport& recovery() const { return recovery_; }

 private:
  Bytes run_serial(const ChunkSource& read_chunk, const BlockSink& on_block,
                   std::vector<compress::BlockInfo>* infos) const;
  Bytes run_pipelined(const ChunkSource& read_chunk,
                      const BlockSink& on_block,
                      std::vector<compress::BlockInfo>* infos) const;

  Options opt_;
  mutable compress::RecoveryReport recovery_;
};

/// Convert the per-block sizes/decisions of a decoded selective
/// container into the transfer simulator's MB-denominated blocks.
std::vector<sim::BlockTransfer> to_block_transfers(
    const std::vector<compress::BlockInfo>& infos);

/// Replay a decoded selective stream through the transfer simulator:
/// the attributed timeline (and per-component energy breakdown) for
/// exactly the container that was just decoded, block for block.
sim::TransferResult simulate_decoded_stream(
    const std::vector<compress::BlockInfo>& infos,
    const sim::TransferSimulator& sim, const std::string& codec,
    const sim::TransferOptions& opt);

}  // namespace ecomp::core

// Browsing-session simulation: a sequence of downloads with think time
// between them, under a per-file transfer policy. Turns the paper's
// per-file joules into the quantity a user feels — how much longer one
// battery charge lasts when the proxy compresses intelligently.
#pragma once

#include <string>
#include <vector>

#include "core/planner.h"
#include "sim/battery.h"
#include "sim/transfer.h"

namespace ecomp::core {

/// One request in a session: a file plus its per-codec factors (as the
/// proxy would know them from content type or sampling).
struct SessionRequest {
  std::string name;
  double size_mb = 0.0;
  std::vector<std::pair<std::string, double>> factors;
};

enum class SessionPolicy {
  Raw,            ///< never compress
  AlwaysDeflate,  ///< gzip everything, sequential decompress
  Planned,        ///< TransferPlanner picks codec+strategy per file
};

const char* to_string(SessionPolicy p);

struct SessionConfig {
  double think_time_s = 8.0;      ///< user dwell time between requests
  bool power_saving_idle = true;  ///< radio power-saving while thinking
};

struct SessionReport {
  double transfer_energy_j = 0.0;
  double think_energy_j = 0.0;
  double total_time_s = 0.0;
  std::size_t requests = 0;
  /// Every transfer's phases plus the think-time phases, concatenated
  /// in session order — feeds sim::EnergyLedger for the per-component
  /// breakdown of a whole browsing session.
  sim::Timeline timeline;

  double total_energy_j() const { return transfer_energy_j + think_energy_j; }
  /// Sessions like this one per battery charge.
  double sessions_per_charge(const sim::BatteryModel& battery) const {
    return battery.charges_per_task(total_energy_j());
  }
};

class SessionSimulator {
 public:
  SessionSimulator(TransferPlanner planner, sim::TransferSimulator sim,
                   SessionConfig config)
      : planner_(std::move(planner)), sim_(sim), config_(config) {}

  SessionReport run(const std::vector<SessionRequest>& requests,
                    SessionPolicy policy) const;

 private:
  /// Energy+time for one request under the policy.
  sim::TransferResult transfer(const SessionRequest& r,
                               SessionPolicy policy) const;

  TransferPlanner planner_;
  sim::TransferSimulator sim_;
  SessionConfig config_;
};

}  // namespace ecomp::core

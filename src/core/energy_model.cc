#include "core/energy_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/bytes.h"

namespace ecomp::core {
namespace {

/// Shared receive front of Eqs. 1-3: the cs startup charge plus the
/// active-receive phase carrying the m·s energy. The m J/MB constant
/// folds the radio's receive power into per-MB energy, so the phase's
/// power is m·s spread over the active (non-idle) share of the
/// download time.
void add_receive(sim::Timeline& t, const EnergyParams& p, double sc) {
  t.add_energy(p.cs, "startup",
               {"radio/startup", sim::CpuState::Idle, sim::RadioState::Idle});
  const sim::Attribution recv{"radio/recv/active", sim::CpuState::Busy,
                              sim::RadioState::Recv};
  const double active = (1.0 - p.idle_fraction) / p.rate * sc;
  if (active > 0.0)
    t.add(active, p.m * sc / active, "recv:active", recv);
  else if (p.m * sc > 0.0)
    t.add_energy(p.m * sc, "recv:active", recv);
}

sim::Attribution attr_decomp(bool overlapped, std::string_view codec) {
  return {(overlapped ? "overlap/decompress/" : "cpu/decompress/") +
              std::string(codec),
          sim::CpuState::Busy,
          overlapped ? sim::RadioState::Recv : sim::RadioState::Idle};
}

}  // namespace

EnergyModel EnergyModel::from_device(const sim::DeviceModel& device,
                                     std::string_view codec) {
  EnergyParams p;
  p.m = device.recv_energy_per_mb(false);
  p.cs = device.radio.startup_energy_j;
  p.pi = device.gap_power_w(false);
  p.pd = device.decompress_power_w(false);
  p.pd_sleep = device.decompress_power_w(true);
  p.rate = device.radio.rate_mb_per_s(false);
  p.idle_fraction = device.radio.idle_fraction(false);
  const sim::CodecCost cost = device.cpu.decompress_cost(codec);
  p.td_a = cost.s_per_mb_out;  // per MB of original (output)
  p.td_b = cost.s_per_mb_in;   // per MB of compressed (input)
  p.td_c = cost.startup_s;
  return EnergyModel(p);
}

EnergyModel EnergyModel::with_codec_cost(const sim::CodecCost& cost) const {
  EnergyParams p = p_;
  p.td_a = cost.s_per_mb_out;
  p.td_b = cost.s_per_mb_in;
  p.td_c = cost.startup_s;
  return EnergyModel(p);
}

EnergyModel EnergyModel::with_loss(double packet_loss_rate) const {
  if (!(packet_loss_rate >= 0.0 && packet_loss_rate < 1.0))
    throw Error("EnergyModel: loss rate must be in [0, 1)");
  EnergyParams p = p_;
  const double n = 1.0 / (1.0 - packet_loss_rate);
  p.m *= n;      // every delivered MB is received n times
  p.rate /= n;   // effective goodput shrinks by the same factor
  return EnergyModel(p);
}

void EnergyModel::idle_split(double s, double sc, double& ti_rest,
                             double& ti_first) const {
  const double ti = idle_time_s(sc);
  if (s <= p_.block_mb || s <= 0.0) {
    ti_rest = 0.0;
    ti_first = ti;
    return;
  }
  ti_first = p_.idle_fraction / p_.rate * (p_.block_mb * sc / s);
  ti_rest = ti - ti_first;
}

double EnergyModel::download_energy_j(double s) const {
  return p_.m * s + p_.cs + idle_time_s(s) * p_.pi;
}

double EnergyModel::sequential_energy_j(double s, double sc,
                                        bool sleep) const {
  const double td = decompress_time_s(s, sc);
  const double pd = sleep ? p_.pd_sleep : p_.pd;
  return p_.m * sc + p_.cs + idle_time_s(sc) * p_.pi + td * pd;
}

double EnergyModel::interleaved_energy_j(double s, double sc) const {
  const double td = decompress_time_s(s, sc);
  double ti_rest = 0.0, ti_first = 0.0;
  idle_split(s, sc, ti_rest, ti_first);
  if (ti_rest > td) {
    // Decompression fits in the gaps; leftover idle remains.
    return p_.m * sc + p_.cs + td * p_.pd +
           (ti_rest - td + ti_first) * p_.pi;
  }
  // Gaps fully filled; decompression spills past the download.
  return p_.m * sc + p_.cs + td * p_.pd + ti_first * p_.pi;
}

sim::Timeline EnergyModel::download_timeline(double s) const {
  sim::Timeline t;
  add_receive(t, p_, s);
  t.add(idle_time_s(s), p_.pi, "gap:idle",
        {"idle/gap", sim::CpuState::Idle, sim::RadioState::Idle});
  return t;
}

sim::Timeline EnergyModel::sequential_timeline(double s, double sc, bool sleep,
                                               std::string_view codec) const {
  sim::Timeline t;
  add_receive(t, p_, sc);
  t.add(idle_time_s(sc), p_.pi, "gap:idle",
        {"idle/gap", sim::CpuState::Idle, sim::RadioState::Idle});
  t.add(decompress_time_s(s, sc), sleep ? p_.pd_sleep : p_.pd, "decomp:tail",
        attr_decomp(false, codec));
  return t;
}

sim::Timeline EnergyModel::interleaved_timeline(double s, double sc,
                                                std::string_view codec) const {
  sim::Timeline t;
  add_receive(t, p_, sc);
  const double td = decompress_time_s(s, sc);
  double ti_rest = 0.0, ti_first = 0.0;
  idle_split(s, sc, ti_rest, ti_first);
  const double filled = std::min(td, ti_rest);
  t.add(ti_first, p_.pi, "gap:first",
        {"idle/gap/first", sim::CpuState::Idle, sim::RadioState::Idle});
  t.add(filled, p_.pd, "decomp:interleaved", attr_decomp(true, codec));
  t.add(ti_rest - filled, p_.pi, "gap:rest",
        {"idle/gap/rest", sim::CpuState::Idle, sim::RadioState::Idle});
  t.add(td - filled, p_.pd, "decomp:tail", attr_decomp(false, codec));
  return t;
}

bool EnergyModel::should_compress(double s_mb, double factor) const {
  if (s_mb <= 0.0 || factor <= 0.0) return false;
  return interleaved_energy_j(s_mb, s_mb / factor) <
         download_energy_j(s_mb);
}

double EnergyModel::min_factor(double s_mb) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kMaxF = 1e6;
  if (!should_compress(s_mb, kMaxF)) return kInf;
  double lo = 1.0, hi = kMaxF;
  if (should_compress(s_mb, lo)) return lo;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (should_compress(s_mb, mid) ? hi : lo) = mid;
  }
  return hi;
}

double EnergyModel::min_file_mb() const {
  constexpr double kMaxF = 1e6;
  double lo = 1e-7, hi = 10.0;
  if (should_compress(lo, kMaxF)) return lo;
  if (!should_compress(hi, kMaxF))
    throw Error("EnergyModel: compression never pays in this model");
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (should_compress(mid, kMaxF) ? hi : lo) = mid;
  }
  return hi;
}

double EnergyModel::sleep_crossover_factor() const {
  // Evaluate at a large file so the block term vanishes; find the
  // smallest F where sequential+sleep beats interleaving.
  const double s = 1000.0;
  auto sleep_wins = [&](double f) {
    const double sc = s / f;
    return sequential_energy_j(s, sc, true) < interleaved_energy_j(s, sc);
  };
  if (sleep_wins(1.0)) return 1.0;
  if (!sleep_wins(1e6)) return std::numeric_limits<double>::infinity();
  double lo = 1.0, hi = 1e6;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (sleep_wins(mid) ? hi : lo) = mid;
  }
  return hi;
}

double EnergyModel::idle_fill_factor() const {
  const double s = 1000.0;
  auto fills = [&](double f) {
    const double sc = s / f;
    double ti_rest = 0.0, ti_first = 0.0;
    idle_split(s, sc, ti_rest, ti_first);
    return decompress_time_s(s, sc) >= ti_rest;
  };
  if (fills(1.0)) return 1.0;
  if (!fills(1e6)) return std::numeric_limits<double>::infinity();
  double lo = 1.0, hi = 1e6;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (fills(mid) ? hi : lo) = mid;
  }
  return hi;
}

double EnergyModel::paper_eq5_11mbps(double s, double sc) {
  const double f = s > 0.0 ? s / sc : 1.0;
  if (s <= 0.128) return 0.4589 * s + 3.9784 * sc + 0.0234;
  if (f > 3.14 - 0.265 / s)
    return 0.4589 * s + 2.945 * sc + 0.132 / f + 0.0234;
  return 0.2093 * s + 3.729 * sc + 0.0172;
}

double EnergyModel::paper_eq5_2mbps(double s, double sc) {
  return 2.0125 * s + 12.4291 * sc + 0.0275;
}

bool EnergyModel::paper_eq6(double s, double factor) {
  if (s > 0.128) return 1.13 / factor < 1.0 - 0.00157 / s;
  return 1.30 / factor < 1.0 - 0.00372 / s;
}

}  // namespace ecomp::core

// Umbrella header for the ecomp public API.
//
// Typical use:
//   #include "core/api.h"
//   auto model   = ecomp::core::EnergyModel::paper_11mbps();
//   auto planner = ecomp::core::TransferPlanner(model);
//   auto policy  = ecomp::core::make_selective_policy(model);
//   auto result  = ecomp::compress::selective_compress(bytes, policy);
#pragma once

#include "compress/codec.h"       // IWYU pragma: export
#include "compress/selective.h"   // IWYU pragma: export
#include "core/calibration.h"     // IWYU pragma: export
#include "core/energy_model.h"    // IWYU pragma: export
#include "core/interleave.h"      // IWYU pragma: export
#include "core/planner.h"         // IWYU pragma: export
#include "core/upload_model.h"    // IWYU pragma: export
#include "sim/transfer.h"         // IWYU pragma: export

// UploadModel — the dual of the paper's download energy model, for the
// future-work direction its §1/§7 name explicitly: the handheld
// compresses locally captured data (voice, pictures) before uploading.
//
// The structure mirrors Eqs. 1-3 with the roles swapped: compression —
// far more expensive than decompression on the 206 MHz StrongARM —
// happens on the device, either entirely up front (optionally with the
// radio sleeping) or interleaved into the send gaps block by block.
#pragma once

#include "core/energy_model.h"
#include "sim/cpu.h"

namespace ecomp::core {

class UploadModel {
 public:
  /// `params` carries the link/power constants (same as the download
  /// model); `compress_cost` is the device-side compression cost for
  /// the chosen codec (CpuModel::compress_cost).
  UploadModel(EnergyParams params, sim::CodecCost compress_cost)
      : p_(params), cc_(compress_cost) {}

  static UploadModel ipaq_11mbps(std::string_view codec = "deflate") {
    return UploadModel(EnergyParams{},
                       sim::CpuModel::ipaq().compress_cost(codec));
  }

  /// Device-side compression time for s MB down to sc MB.
  double compress_time_s(double s, double sc) const {
    return cc_.time_s(s, sc);
  }

  /// Upload s MB raw (send modelled symmetric to receive).
  double upload_energy_j(double s) const;

  /// Compress fully, then send. `sleep` puts the radio in power saving
  /// during the up-front compression.
  double sequential_energy_j(double s, double sc, bool sleep = false) const;

  /// Compress block i+1 inside block i's send gaps; when the CPU cannot
  /// keep up the send stretches to the compression rate.
  double interleaved_energy_j(double s, double sc) const;

  // ---- attributed timelines -----------------------------------------
  // Phase-ledger decompositions of the three closed forms above, with
  // device-side compression attributed to cpu/compress/<codec> (up
  // front) or overlap/compress/<codec> (hidden in send gaps). Each
  // timeline's total_energy_j() equals the matching *_energy_j() up to
  // floating-point summation order.

  sim::Timeline upload_timeline(double s) const;
  sim::Timeline sequential_timeline(double s, double sc, bool sleep = false,
                                    std::string_view codec = "deflate") const;
  sim::Timeline interleaved_timeline(double s, double sc,
                                     std::string_view codec = "deflate") const;

  /// True when compressing at `factor` before uploading is predicted to
  /// save energy (taking the cheaper of sequential+sleep/interleaved).
  bool should_compress(double s_mb, double factor) const;

  /// Minimum factor that saves energy on upload — substantially higher
  /// than the download threshold, because compression is charged to the
  /// handheld. +inf if no factor helps.
  double min_factor(double s_mb) const;

  const EnergyParams& params() const { return p_; }
  const sim::CodecCost& compress_cost() const { return cc_; }

 private:
  EnergyParams p_;
  sim::CodecCost cc_;
};

}  // namespace ecomp::core

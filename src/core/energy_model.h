// EnergyModel — the paper's analytic model of compressed downloading
// (Section 4), in closed form:
//
//   Eq. 1  E_raw(s)            = m·s + cs + ti(s)·pi
//   Eq. 2  E_seq(s, sc)        = m·sc + cs + ti(sc)·pi + td·pd
//   Eq. 3  E_int(s, sc)        = m·sc + cs + td·pd + leftover-idle·pi
//   Eq. 4  ti'/ti1 split at the compression-buffer boundary (0.128 MB)
//   Eq. 5  the same closed form with the paper's constants plugged in
//   Eq. 6  compress/don't-compress thresholds (min factor, 3900 B size)
//
// All sizes are in MB (as in the paper); energies in joules; times in
// seconds. Parameters can come from the published constants
// (paper_11mbps) or be derived from a sim::DeviceModel (from_device),
// which is how the model and the discrete simulator stay independent.
#pragma once

#include <string_view>

#include "sim/channel.h"
#include "sim/cpu.h"
#include "sim/device.h"
#include "sim/timeline.h"

namespace ecomp::core {

struct EnergyParams {
  double m = 2.486;        ///< receive energy, J/MB
  double cs = 0.012;       ///< network start-up energy, J
  double pi = 1.55;        ///< idle power (CPU idle, radio idle-on), W
  double pd = 2.85;        ///< decompress power, radio idle-on, W
  double pd_sleep = 1.70;  ///< decompress power, radio power-saving, W
  double rate = 0.6;       ///< effective download rate, MB/s
  double idle_fraction = 0.4;  ///< CPU idle share of download time
  double block_mb = 0.128;     ///< compression buffer size
  /// Decompression-time fit td = td_a·s + td_b·sc + td_c (s = original
  /// MB, sc = compressed MB). Paper: 0.161/0.161/0.004 for gzip.
  double td_a = 0.161;
  double td_b = 0.161;
  double td_c = 0.004;
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams p) : p_(p) {}

  /// The paper's measured 11 Mb/s environment (published constants).
  static EnergyModel paper_11mbps() { return EnergyModel(EnergyParams{}); }

  /// Derive all parameters from a device model + codec name, using the
  /// same decomposition the paper uses (m from active receive power,
  /// pi/pd from Table 1, td from the CPU cost model).
  static EnergyModel from_device(const sim::DeviceModel& device,
                                 std::string_view codec = "deflate");

  /// Copy of this model with the td fit replaced by another codec's
  /// cost (td_a = out-cost, td_b = in-cost, td_c = startup).
  EnergyModel with_codec_cost(const sim::CodecCost& cost) const;

  /// Copy of this model with an average per-packet loss rate q folded
  /// in: every delivered MB costs n = 1/(1-q) transmissions, so the
  /// receive energy scales by n and the effective delivery rate drops
  /// by n while the CPU's idle share of each wall-second stays put.
  /// This is how Eq. 6's compress-or-not thresholds become functions
  /// of channel quality. Throws Error unless 0 <= q < 1.
  EnergyModel with_loss(double packet_loss_rate) const;

  /// with_loss using a channel model's long-run average loss rate.
  EnergyModel with_channel(const sim::ChannelModel& channel) const {
    return with_loss(channel.avg_loss_rate());
  }

  // ---- closed forms -------------------------------------------------

  /// Total CPU-idle time while downloading x MB (ti).
  double idle_time_s(double mb) const {
    return p_.idle_fraction / p_.rate * mb;
  }

  /// Decompression time for s MB decompressed from sc MB.
  double decompress_time_s(double s, double sc) const {
    return p_.td_a * s + p_.td_b * sc + p_.td_c;
  }

  /// Eq. 4: split ti into the unusable first-block part (ti1) and the
  /// fillable remainder (ti').
  void idle_split(double s, double sc, double& ti_rest,
                  double& ti_first) const;

  /// Eq. 1.
  double download_energy_j(double s) const;

  /// Eq. 2; `sleep` selects pd_sleep for the decompress tail (the
  /// bzip2-style radio-sleep variant).
  double sequential_energy_j(double s, double sc, bool sleep = false) const;

  /// Eq. 3 (equivalently Eq. 5 with this model's constants).
  double interleaved_energy_j(double s, double sc) const;

  // ---- attributed timelines -----------------------------------------
  // The same closed forms, decomposed into phase ledgers so the energy
  // can be attributed per component (sim::EnergyLedger) and rendered as
  // Perfetto power/energy counter tracks. Each timeline's
  // total_energy_j() equals the corresponding *_energy_j() closed form
  // up to floating-point summation order.

  /// Eq. 1 as a timeline: startup charge, active receive, idle gaps.
  sim::Timeline download_timeline(double s) const;

  /// Eq. 2 as a timeline; the decompress tail is attributed to
  /// cpu/decompress/<codec>.
  sim::Timeline sequential_timeline(double s, double sc, bool sleep = false,
                                    std::string_view codec = "deflate") const;

  /// Eq. 3 as a timeline; gap-filling decompression is attributed to
  /// overlap/decompress/<codec>, any spill past the download to
  /// cpu/decompress/<codec>.
  sim::Timeline interleaved_timeline(double s, double sc,
                                     std::string_view codec = "deflate") const;

  // ---- thresholds (Eq. 6 and §4.2 derivations) -----------------------

  /// True when compressing (factor F) then interleave-downloading is
  /// predicted to use less energy than downloading raw.
  bool should_compress(double s_mb, double factor) const;

  /// Minimum compression factor that saves energy for a file of s MB.
  /// Returns +inf when no factor can save (file below size threshold).
  double min_factor(double s_mb) const;

  /// File-size threshold below which no compression helps (the paper's
  /// 3900 bytes ≈ 0.00372 MB).
  double min_file_mb() const;

  /// Compression factor above which sequential decompress with the
  /// radio sleeping beats interleaving (paper: ≈ 4.6), evaluated at
  /// asymptotically large file size.
  double sleep_crossover_factor() const;

  /// Compression factor needed for decompression work to fill the
  /// entire download idle time (paper: ≈ 27 at 2 Mb/s).
  double idle_fill_factor() const;

  /// Eq. 1 normalized per delivered MB — the monitoring SLO baseline: a
  /// proxy serving raw data on a clean channel should never exceed this
  /// line, and with_loss(q) shifts it with channel quality.
  double raw_j_per_mb(double s_mb = 1.0) const {
    return download_energy_j(s_mb) / s_mb;
  }

  const EnergyParams& params() const { return p_; }

  // ---- the paper's published constants, for validation benches ------

  /// Eq. 5 exactly as printed (11 Mb/s).
  static double paper_eq5_11mbps(double s, double sc);
  /// The §4.2 published 2 Mb/s closed form (s > 0.128, F < 27).
  static double paper_eq5_2mbps(double s, double sc);
  /// Eq. 6 exactly as printed.
  static bool paper_eq6(double s, double factor);

 private:
  EnergyParams p_;
};

}  // namespace ecomp::core

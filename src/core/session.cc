#include "core/session.h"

#include <algorithm>

#include "util/bytes.h"

namespace ecomp::core {

const char* to_string(SessionPolicy p) {
  switch (p) {
    case SessionPolicy::Raw: return "raw";
    case SessionPolicy::AlwaysDeflate: return "always-gzip";
    case SessionPolicy::Planned: return "planned";
  }
  return "?";
}

sim::TransferResult SessionSimulator::transfer(const SessionRequest& r,
                                               SessionPolicy policy) const {
  if (policy == SessionPolicy::Raw)
    return sim_.download_uncompressed(r.size_mb);

  if (policy == SessionPolicy::AlwaysDeflate) {
    double factor = 1.0;
    for (const auto& [codec, f] : r.factors)
      if (codec == "deflate") factor = f;
    sim::TransferOptions opt;  // plain sequential, like naive gzip use
    return sim_.download_compressed(r.size_mb, r.size_mb / std::max(factor, 1e-9),
                                    "deflate", opt);
  }

  // Planned: let the planner pick, then run the matching scenario.
  FileEstimate est;
  est.size_mb = r.size_mb;
  est.factors = r.factors;
  const Plan plan = planner_.plan(est);
  if (plan.chosen.strategy == Strategy::Uncompressed)
    return sim_.download_uncompressed(r.size_mb);

  double factor = 1.0;
  for (const auto& [codec, f] : r.factors)
    if (codec == plan.chosen.codec) factor = f;
  sim::TransferOptions opt;
  opt.interleave = plan.chosen.strategy == Strategy::Interleaved;
  opt.sleep_during_decompress =
      plan.chosen.strategy == Strategy::SequentialSleep;
  return sim_.download_compressed(r.size_mb,
                                  r.size_mb / std::max(factor, 1e-9),
                                  plan.chosen.codec, opt);
}

SessionReport SessionSimulator::run(
    const std::vector<SessionRequest>& requests,
    SessionPolicy policy) const {
  SessionReport report;
  const double think_power =
      sim_.device().gap_power_w(config_.power_saving_idle);
  for (const auto& r : requests) {
    if (r.size_mb < 0.0) throw Error("session: negative request size");
    const auto t = transfer(r, policy);
    report.transfer_energy_j += t.energy_j;
    report.total_time_s += t.time_s;
    report.think_energy_j += config_.think_time_s * think_power;
    report.total_time_s += config_.think_time_s;
    ++report.requests;
    report.timeline.extend(t.timeline);
    report.timeline.add(config_.think_time_s, think_power, "think",
                        {"idle/think", sim::CpuState::Idle,
                         sim::RadioState::Idle});
  }
  return report;
}

}  // namespace ecomp::core

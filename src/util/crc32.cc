#include "util/crc32.h"

#include "util/simd.h"

namespace ecomp {

void Crc32::update(ByteSpan data) {
  state_ = simd::crc32_update(state_, data.data(), data.size());
}

void Crc32::update(std::uint8_t byte) {
  state_ = simd::crc32_update(state_, &byte, 1);
}

std::uint32_t crc32(ByteSpan data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace ecomp

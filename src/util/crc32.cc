#include "util/crc32.h"

#include <array>

namespace ecomp {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(ByteSpan data) {
  std::uint32_t c = state_;
  for (std::uint8_t b : data) c = kTable[(c ^ b) & 0xff] ^ (c >> 8);
  state_ = c;
}

void Crc32::update(std::uint8_t byte) {
  state_ = kTable[(state_ ^ byte) & 0xff] ^ (state_ >> 8);
}

std::uint32_t crc32(ByteSpan data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace ecomp

#include "util/simd.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(ECOMP_SIMD_ENABLED) && \
    (defined(__x86_64__) || defined(__i386__))
#define ECOMP_SIMD_X86 1
#include <immintrin.h>
#else
#define ECOMP_SIMD_X86 0
#endif

namespace ecomp::simd {

// --------------------------------------------------------- scalar kernels

namespace scalar {

int match_length(const std::uint8_t* a, const std::uint8_t* b, int max_len) {
  int n = 0;
  while (n + 8 <= max_len) {
    std::uint64_t va, vb;
    std::memcpy(&va, a + n, 8);
    std::memcpy(&vb, b + n, 8);
    const std::uint64_t x = va ^ vb;
    if (x != 0) {
      if constexpr (std::endian::native == std::endian::little)
        return n + std::countr_zero(x) / 8;
      else
        return n + std::countl_zero(x) / 8;
    }
    n += 8;
  }
  while (n < max_len && a[n] == b[n]) ++n;
  return n;
}

int find_byte_index(const std::uint8_t* p, int n, std::uint8_t value) {
  for (int i = 0; i < n; ++i)
    if (p[i] == value) return i;
  return -1;
}

namespace {

// Slice-by-8 CRC-32 tables: t[0] is the classic byte table, t[j] folds a
// byte j positions further into the 8-byte window.
struct Crc8Tables {
  std::uint32_t t[8][256];
};

constexpr Crc8Tables make_crc_tables() {
  Crc8Tables tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    tb.t[0][i] = c;
  }
  for (int j = 1; j < 8; ++j)
    for (std::uint32_t i = 0; i < 256; ++i)
      tb.t[j][i] = tb.t[0][tb.t[j - 1][i] & 0xff] ^ (tb.t[j - 1][i] >> 8);
  return tb;
}

constexpr Crc8Tables kCrc = make_crc_tables();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* p,
                           std::size_t n) {
  std::uint32_t c = state;
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo, hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      c ^= lo;
      c = kCrc.t[7][c & 0xff] ^ kCrc.t[6][(c >> 8) & 0xff] ^
          kCrc.t[5][(c >> 16) & 0xff] ^ kCrc.t[4][c >> 24] ^
          kCrc.t[3][hi & 0xff] ^ kCrc.t[2][(hi >> 8) & 0xff] ^
          kCrc.t[1][(hi >> 16) & 0xff] ^ kCrc.t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n--) c = kCrc.t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  return c;
}

}  // namespace scalar

// ----------------------------------------------------------- x86 kernels

#if ECOMP_SIMD_X86
namespace detail {

__attribute__((target("sse2"))) int match_length_sse2(const std::uint8_t* a,
                                                      const std::uint8_t* b,
                                                      int max_len) {
  int n = 0;
  while (n + 16 <= max_len) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + n));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + n));
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)));
    if (mask != 0xffffu) return n + std::countr_zero(~mask & 0xffffu);
    n += 16;
  }
  return n + scalar::match_length(a + n, b + n, max_len - n);
}

__attribute__((target("avx2"))) int match_length_avx2(const std::uint8_t* a,
                                                      const std::uint8_t* b,
                                                      int max_len) {
  int n = 0;
  while (n + 32 <= max_len) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + n));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + n));
    const std::uint32_t mask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (mask != 0xffffffffu) return n + std::countr_zero(~mask);
    n += 32;
  }
  return n + match_length_sse2(a + n, b + n, max_len - n);
}

__attribute__((target("sse2"))) int find_byte_sse2(const std::uint8_t* p,
                                                   int n, std::uint8_t value) {
  const __m128i needle = _mm_set1_epi8(static_cast<char>(value));
  int i = 0;
  while (i + 16 <= n) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, needle)));
    if (mask != 0) return i + std::countr_zero(mask);
    i += 16;
  }
  const int rest = scalar::find_byte_index(p + i, n - i, value);
  return rest < 0 ? -1 : i + rest;
}

__attribute__((target("avx2"))) int find_byte_avx2(const std::uint8_t* p,
                                                   int n, std::uint8_t value) {
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(value));
  int i = 0;
  while (i + 32 <= n) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const std::uint32_t mask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)));
    if (mask != 0) return i + std::countr_zero(mask);
    i += 32;
  }
  const int rest = find_byte_sse2(p + i, n - i, value);
  return rest < 0 ? -1 : i + rest;
}

/// PCLMULQDQ CRC-32 folding (reflected gzip polynomial), the classic
/// fold-by-4 construction from Gopal et al.'s "Fast CRC Computation for
/// Generic Polynomials Using PCLMULQDQ" as deployed in zlib. `len` must
/// be a multiple of 64 and at least 64; `crc` is the raw inverted-domain
/// state, same convention as the scalar tables.
__attribute__((target("sse4.2,pclmul"))) std::uint32_t crc32_clmul(
    std::uint32_t crc, const std::uint8_t* buf, std::size_t len) {
  const __m128i k1k2 = _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);
  const __m128i k3k4 = _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);
  const __m128i k5 = _mm_set_epi64x(0, 0x0163cd6124);
  const __m128i poly = _mm_set_epi64x(0x01f7011641, 0x01db710641);

  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 16));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 32));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 48));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  buf += 64;
  len -= 64;

  // Fold 64 bytes per iteration across four 128-bit lanes.
  while (len >= 64) {
    const __m128i y1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    const __m128i y2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    const __m128i y3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    const __m128i y4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x1 = _mm_xor_si128(
        _mm_xor_si128(x1, y1),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf)));
    x2 = _mm_xor_si128(
        _mm_xor_si128(x2, y2),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 16)));
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, y3),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 32)));
    x4 = _mm_xor_si128(
        _mm_xor_si128(x4, y4),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 48)));
    buf += 64;
    len -= 64;
  }

  // Fold the four lanes into one.
  __m128i y;
  y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, y), x2);
  y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, y), x3);
  y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, y), x4);

  // Fold 128 bits to 64, then Barrett-reduce to 32.
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  y = _mm_clmulepi64_si128(x1, k3k4, 0x10);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, y);

  y = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
  x1 = _mm_xor_si128(x1, y);

  y = _mm_and_si128(x1, mask32);
  y = _mm_clmulepi64_si128(y, poly, 0x10);
  y = _mm_and_si128(y, mask32);
  y = _mm_clmulepi64_si128(y, poly, 0x00);
  x1 = _mm_xor_si128(x1, y);

  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

}  // namespace detail
#endif  // ECOMP_SIMD_X86

// --------------------------------------------------------------- dispatch

namespace {

Level probe_level() {
#if ECOMP_SIMD_X86
  Level l = Level::kScalar;
  if (__builtin_cpu_supports("sse2")) l = Level::kSse2;
  if (l == Level::kSse2 && __builtin_cpu_supports("sse4.2") &&
      __builtin_cpu_supports("pclmul"))
    l = Level::kClmul;
  if (l == Level::kClmul && __builtin_cpu_supports("avx2")) l = Level::kAvx2;
  return l;
#else
  return Level::kScalar;
#endif
}

bool parse_level(const char* name, Level* out) {
  const std::string s(name);
  if (s == "scalar") *out = Level::kScalar;
  else if (s == "sse2") *out = Level::kSse2;
  else if (s == "clmul") *out = Level::kClmul;
  else if (s == "avx2") *out = Level::kAvx2;
  else return false;
  return true;
}

std::atomic<int>& active_store() {
  static std::atomic<int> level{[] {
    Level l = probe_level();
    if (const char* env = std::getenv("ECOMP_SIMD_LEVEL")) {
      Level forced;
      if (parse_level(env, &forced) &&
          static_cast<int>(forced) < static_cast<int>(l))
        l = forced;
    }
    return static_cast<int>(l);
  }()};
  return level;
}

}  // namespace

Level detected_level() {
  static const Level l = probe_level();
  return l;
}

Level active_level() {
  return static_cast<Level>(active_store().load(std::memory_order_relaxed));
}

Level set_level(Level level) {
  int want = static_cast<int>(level);
  const int cap = static_cast<int>(detected_level());
  if (want > cap) want = cap;
  if (want < 0) want = 0;
  active_store().store(want, std::memory_order_relaxed);
  return static_cast<Level>(want);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kSse2: return "sse2";
    case Level::kClmul: return "clmul";
    case Level::kAvx2: return "avx2";
    default: return "scalar";
  }
}

std::string cpu_flags() {
  std::string flags;
#if defined(__x86_64__) || defined(__i386__)
  const auto add = [&](const char* name, bool has) {
    if (!has) return;
    if (!flags.empty()) flags += ' ';
    flags += name;
  };
  add("sse2", __builtin_cpu_supports("sse2"));
  add("ssse3", __builtin_cpu_supports("ssse3"));
  add("sse4.2", __builtin_cpu_supports("sse4.2"));
  add("pclmul", __builtin_cpu_supports("pclmul"));
  add("avx2", __builtin_cpu_supports("avx2"));
#endif
  return flags;
}

MatchLengthFn match_length_fn() {
#if ECOMP_SIMD_X86
  const Level l = active_level();
  if (l == Level::kAvx2) return detail::match_length_avx2;
  if (l != Level::kScalar) return detail::match_length_sse2;
#endif
  return scalar::match_length;
}

FindByteFn find_byte_fn() {
#if ECOMP_SIMD_X86
  const Level l = active_level();
  if (l == Level::kAvx2) return detail::find_byte_avx2;
  if (l != Level::kScalar) return detail::find_byte_sse2;
#endif
  return scalar::find_byte_index;
}

int match_length(const std::uint8_t* a, const std::uint8_t* b, int max_len) {
  return match_length_fn()(a, b, max_len);
}

int find_byte_index(const std::uint8_t* p, int n, std::uint8_t value) {
  return find_byte_fn()(p, n, value);
}

std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* p,
                           std::size_t n) {
#if ECOMP_SIMD_X86
  if (static_cast<int>(active_level()) >= static_cast<int>(Level::kClmul) &&
      n >= 64) {
    const std::size_t chunk = n & ~std::size_t{63};
    state = detail::crc32_clmul(state, p, chunk);
    p += chunk;
    n -= chunk;
  }
#endif
  return scalar::crc32_update(state, p, n);
}

}  // namespace ecomp::simd

// Common byte-buffer aliases and small helpers shared across ecomp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ecomp {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Error type for all recoverable failures in the library (corrupt
/// streams, invalid parameters, protocol violations).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// View a string's bytes without copying.
inline ByteSpan as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Copy a byte span into a std::string (for tests and examples).
inline std::string to_string(ByteSpan b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace ecomp

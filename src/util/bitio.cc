#include "util/bitio.h"

#include <bit>
#include <cstring>

namespace ecomp {
namespace {

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, 8);
  if constexpr (std::endian::native == std::endian::big)
    w = __builtin_bswap64(w);
  return w;
}

std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, 8);
  if constexpr (std::endian::native == std::endian::little)
    w = __builtin_bswap64(w);
  return w;
}

}  // namespace

// ---------------------------------------------------------------- LSB order

void BitWriterLsb::put(std::uint32_t value, int count) {
  if (count < 0 || count > 32) throw Error("BitWriterLsb::put: bad count");
  if (count < 32) value &= (std::uint32_t{1} << count) - 1;
  acc_ |= std::uint64_t{value} << acc_bits_;
  acc_bits_ += count;
  bit_count_ += static_cast<std::uint64_t>(count);
  while (acc_bits_ >= 8) {
    out_.push_back(static_cast<std::uint8_t>(acc_ & 0xff));
    acc_ >>= 8;
    acc_bits_ -= 8;
  }
}

void BitWriterLsb::align_to_byte() {
  if (acc_bits_ > 0) put(0, 8 - acc_bits_);
}

void BitWriterLsb::put_aligned_byte(std::uint8_t b) {
  if (acc_bits_ != 0) throw Error("put_aligned_byte: not byte aligned");
  out_.push_back(b);
  bit_count_ += 8;
}

Bytes BitWriterLsb::take() {
  align_to_byte();
  return std::move(out_);
}

void BitReaderLsb::refill() const {
  if (acc_bits_ > 56) return;
  if (pos_ + 8 <= data_.size()) {
    // Branch-light bulk refill: shift a full 64-bit little-endian load
    // into place, then account for exactly the bytes that fit. The
    // partially shifted-in top byte is masked back out to keep the
    // "zero above acc_bits_" invariant the byte path relies on.
    acc_ |= load_le64(data_.data() + pos_) << acc_bits_;
    pos_ += static_cast<std::size_t>((63 - acc_bits_) >> 3);
    acc_bits_ |= 56;
    acc_ &= ~std::uint64_t{0} >> (64 - acc_bits_);
    return;
  }
  while (acc_bits_ <= 56 && pos_ < data_.size()) {
    acc_ |= std::uint64_t{data_[pos_++]} << acc_bits_;
    acc_bits_ += 8;
  }
}

std::uint32_t BitReaderLsb::get(int count) {
  if (count < 0 || count > 32) throw Error("BitReaderLsb::get: bad count");
  refill();
  if (acc_bits_ < count) throw Error("BitReaderLsb: read past end of stream");
  std::uint32_t v = count == 0
                        ? 0u
                        : static_cast<std::uint32_t>(
                              acc_ & ((std::uint64_t{1} << count) - 1));
  acc_ >>= count;
  acc_bits_ -= count;
  return v;
}

std::uint32_t BitReaderLsb::peek(int count) const {
  if (count < 0 || count > 32) throw Error("BitReaderLsb::peek: bad count");
  refill();
  if (count == 0) return 0;
  return static_cast<std::uint32_t>(acc_ &
                                    ((std::uint64_t{1} << count) - 1));
}

void BitReaderLsb::skip(int count) {
  refill();
  if (acc_bits_ < count) throw Error("BitReaderLsb: skip past end of stream");
  acc_ >>= count;
  acc_bits_ -= count;
}

void BitReaderLsb::align_to_byte() {
  int rem = acc_bits_ % 8;
  if (rem != 0) {
    acc_ >>= rem;
    acc_bits_ -= rem;
  }
}

std::uint8_t BitReaderLsb::get_aligned_byte() {
  if (acc_bits_ % 8 != 0) throw Error("get_aligned_byte: not byte aligned");
  return static_cast<std::uint8_t>(get(8));
}

bool BitReaderLsb::exhausted() const {
  refill();
  return acc_bits_ == 0 && pos_ >= data_.size();
}

// ---------------------------------------------------------------- MSB order

void BitWriterMsb::put(std::uint32_t value, int count) {
  if (count < 0 || count > 32) throw Error("BitWriterMsb::put: bad count");
  if (count < 32 && count > 0) value &= (std::uint32_t{1} << count) - 1;
  acc_ = (acc_ << count) | value;
  acc_bits_ += count;
  bit_count_ += static_cast<std::uint64_t>(count);
  while (acc_bits_ >= 8) {
    out_.push_back(static_cast<std::uint8_t>((acc_ >> (acc_bits_ - 8)) & 0xff));
    acc_bits_ -= 8;
  }
  // Keep only the unwritten low bits to avoid unbounded accumulation.
  if (acc_bits_ > 0)
    acc_ &= (std::uint64_t{1} << acc_bits_) - 1;
  else
    acc_ = 0;
}

void BitWriterMsb::align_to_byte() {
  if (acc_bits_ > 0) put(0, 8 - acc_bits_);
}

Bytes BitWriterMsb::take() {
  align_to_byte();
  return std::move(out_);
}

void BitReaderMsb::refill() const {
  if (acc_bits_ > 56) return;
  if (pos_ + 8 <= data_.size()) {
    // Mirror image of the LSB bulk refill: big-endian load shifted down
    // under the bits already held, partially shifted-in low byte masked
    // back out to preserve "zero below acc_bits_".
    acc_ |= load_be64(data_.data() + pos_) >> acc_bits_;
    pos_ += static_cast<std::size_t>((63 - acc_bits_) >> 3);
    acc_bits_ |= 56;
    acc_ &= ~std::uint64_t{0} << (64 - acc_bits_);
    return;
  }
  while (acc_bits_ <= 56 && pos_ < data_.size()) {
    acc_ |= std::uint64_t{data_[pos_++]} << (56 - acc_bits_);
    acc_bits_ += 8;
  }
}

std::uint32_t BitReaderMsb::get(int count) {
  if (count < 0 || count > 32) throw Error("BitReaderMsb::get: bad count");
  refill();
  if (acc_bits_ < count) throw Error("BitReaderMsb: read past end of stream");
  std::uint32_t v =
      count == 0 ? 0u : static_cast<std::uint32_t>(acc_ >> (64 - count));
  acc_ <<= count;
  acc_bits_ -= count;
  bits_consumed_ += static_cast<std::uint64_t>(count);
  return v;
}

std::uint32_t BitReaderMsb::peek(int count) const {
  if (count < 0 || count > 32) throw Error("BitReaderMsb::peek: bad count");
  refill();
  // Bits past the end of the stream read as zero, which the low-zero
  // accumulator invariant provides without a branch.
  return count == 0 ? 0u : static_cast<std::uint32_t>(acc_ >> (64 - count));
}

void BitReaderMsb::skip(int count) {
  if (count < 0 || count > 32) throw Error("BitReaderMsb::skip: bad count");
  refill();
  if (acc_bits_ < count) throw Error("BitReaderMsb: skip past end of stream");
  acc_ <<= count;
  acc_bits_ -= count;
  bits_consumed_ += static_cast<std::uint64_t>(count);
}

bool BitReaderMsb::exhausted() const {
  return acc_bits_ == 0 && pos_ >= data_.size();
}

}  // namespace ecomp

#include "util/stats.h"

#include <cmath>
#include <cstdlib>

#include "util/bytes.h"

namespace ecomp::stats {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw Error("solve_linear_system: shape mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-12)
      throw Error("solve_linear_system: singular matrix");
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i][c] * x[c];
    x[i] = s / a[i][i];
  }
  return x;
}

FitResult least_squares(const std::vector<std::vector<double>>& x,
                        const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size())
    throw Error("least_squares: shape mismatch");
  const std::size_t n = x.size();
  const std::size_t k = x[0].size();
  for (const auto& row : x)
    if (row.size() != k) throw Error("least_squares: ragged design matrix");

  // Normal equations: (XᵀX) beta = Xᵀy.
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += x[i][a] * y[i];
      for (std::size_t b = 0; b < k; ++b) xtx[a][b] += x[i][a] * x[i][b];
    }
  }

  FitResult res;
  res.coef = solve_linear_system(std::move(xtx), std::move(xty));

  const double ym = mean(y);
  double ss_res = 0.0, ss_tot = 0.0, rel_sum = 0.0, rel_max = 0.0;
  std::size_t rel_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double yhat = 0.0;
    for (std::size_t a = 0; a < k; ++a) yhat += res.coef[a] * x[i][a];
    ss_res += (y[i] - yhat) * (y[i] - yhat);
    ss_tot += (y[i] - ym) * (y[i] - ym);
    if (y[i] != 0.0) {
      const double rel = std::abs((yhat - y[i]) / y[i]);
      rel_sum += rel;
      rel_max = std::max(rel_max, rel);
      ++rel_n;
    }
  }
  res.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  res.mean_abs_rel_error = rel_n ? rel_sum / static_cast<double>(rel_n) : 0.0;
  res.max_abs_rel_error = rel_max;
  return res;
}

FitResult linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  std::vector<std::vector<double>> design;
  design.reserve(x.size());
  for (double xi : x) design.push_back({xi, 1.0});
  return least_squares(design, y);
}

}  // namespace ecomp::stats

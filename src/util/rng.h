// Deterministic random number generation for workload synthesis and tests.
//
// The whole repository must be reproducible run-to-run, so nothing uses
// std::random_device; every stream of randomness is seeded explicitly.
#pragma once

#include <cstdint>

namespace ecomp {

/// splitmix64 — used to expand a user seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97f4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97f4A7C15ull) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  std::uint8_t byte() { return static_cast<std::uint8_t>(next() & 0xff); }

  // UniformRandomBitGenerator interface, so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace ecomp

// Bit-level readers/writers used by every entropy coder in ecomp.
//
// Two bit orders are provided because the codecs need both:
//  * LSB-first (DEFLATE, LZW as in UNIX compress): bits fill each byte
//    from bit 0 upward.
//  * MSB-first (the BWT pipeline's Huffman stage, as in bzip2): bits
//    fill each byte from bit 7 downward.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace ecomp {

/// Accumulates bits LSB-first into a growing byte buffer.
class BitWriterLsb {
 public:
  /// Append `count` bits (0..32) of `value`, least-significant first.
  void put(std::uint32_t value, int count);
  /// Pad with zero bits to the next byte boundary.
  void align_to_byte();
  /// Append a whole byte; requires byte alignment.
  void put_aligned_byte(std::uint8_t b);
  /// Number of bits written so far.
  std::uint64_t bit_count() const { return bit_count_; }
  /// Finish (aligns) and return the buffer.
  Bytes take();

 private:
  Bytes out_;
  std::uint64_t acc_ = 0;
  int acc_bits_ = 0;
  std::uint64_t bit_count_ = 0;
};

/// Reads bits LSB-first from a byte span.
///
/// The accumulator is refilled 8 bytes at a time (branch-light: one
/// 64-bit load, then `pos_` advances by however many whole bytes fit)
/// so the flat-table Huffman decoder pays roughly one refill per code
/// instead of one branch per byte.
class BitReaderLsb {
 public:
  explicit BitReaderLsb(ByteSpan data) : data_(data) {}

  /// Read `count` bits (0..32). Throws Error past end of stream.
  std::uint32_t get(int count);
  /// Peek up to `count` bits without consuming; missing bits read as 0.
  std::uint32_t peek(int count) const;
  /// Consume `count` bits previously peeked.
  void skip(int count);
  /// Discard bits up to the next byte boundary.
  void align_to_byte();
  /// Read a whole byte; requires byte alignment.
  std::uint8_t get_aligned_byte();
  /// True once every bit has been consumed.
  bool exhausted() const;
  /// Bits consumed so far.
  std::uint64_t bits_consumed() const { return pos_ * 8 - acc_bits_; }

 private:
  void refill() const;

  ByteSpan data_;
  mutable std::uint64_t acc_ = 0;
  mutable int acc_bits_ = 0;
  mutable std::size_t pos_ = 0;  // next byte index to load
};

/// Accumulates bits MSB-first into a growing byte buffer.
class BitWriterMsb {
 public:
  void put(std::uint32_t value, int count);
  void align_to_byte();
  std::uint64_t bit_count() const { return bit_count_; }
  Bytes take();

 private:
  Bytes out_;
  std::uint64_t acc_ = 0;
  int acc_bits_ = 0;
  std::uint64_t bit_count_ = 0;
};

/// Reads bits MSB-first from a byte span.
///
/// The accumulator keeps the next unread bit in bit 63 (top-aligned),
/// with every bit below the valid region held at zero. That invariant
/// makes `peek` a single shift and gives zero-padding past the end for
/// free, mirroring BitReaderLsb's peek/skip contract so the flat-table
/// Huffman decoder can drive both orders identically.
class BitReaderMsb {
 public:
  explicit BitReaderMsb(ByteSpan data) : data_(data) {}

  /// Read `count` bits (0..32). Throws Error past end of stream.
  std::uint32_t get(int count);
  /// Peek up to `count` bits without consuming; missing bits read as 0.
  std::uint32_t peek(int count) const;
  /// Consume `count` bits previously peeked. Throws past end of stream.
  void skip(int count);
  bool exhausted() const;
  std::uint64_t bits_consumed() const { return bits_consumed_; }

 private:
  void refill() const;

  ByteSpan data_;
  mutable std::uint64_t acc_ = 0;  // top-aligned; zero below acc_bits_
  mutable int acc_bits_ = 0;
  mutable std::size_t pos_ = 0;  // next byte index to load
  std::uint64_t bits_consumed_ = 0;
};

}  // namespace ecomp

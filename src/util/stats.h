// Small statistics toolkit: summaries and multivariate least squares.
//
// core::Calibrator re-derives the paper's fitted constants (download
// energy E(s), decompression time td(s, sc)) from simulated sweeps the
// way Section 4.2 fits them from measurements; this is the numerical
// machinery behind that.
#pragma once

#include <cstddef>
#include <vector>

namespace ecomp::stats {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  // population variance
double stddev(const std::vector<double>& v);
double max_abs(const std::vector<double>& v);

/// Result of a least-squares fit y ≈ X·beta.
struct FitResult {
  std::vector<double> coef;  ///< beta, one per column of X
  double r2 = 0.0;           ///< coefficient of determination
  double mean_abs_rel_error = 0.0;  ///< mean of |(yhat-y)/y| over y != 0
  double max_abs_rel_error = 0.0;
};

/// Ordinary least squares via normal equations with Gaussian elimination
/// (partial pivoting). rows of `x` are observations; `x[i].size()` must be
/// constant. Throws ecomp::Error on singular systems or shape mismatch.
FitResult least_squares(const std::vector<std::vector<double>>& x,
                        const std::vector<double>& y);

/// Convenience: fit y = a*x + b. Returns {a, b} in FitResult::coef.
FitResult linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Solve the linear system a·x = b in place. Throws on singularity.
std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b);

}  // namespace ecomp::stats

// CRC-32 (IEEE 802.3 polynomial, as used by gzip) for container integrity.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace ecomp {

/// Incremental CRC-32 (reflected, poly 0xEDB88320), gzip-compatible.
class Crc32 {
 public:
  void update(ByteSpan data);
  void update(std::uint8_t byte);
  /// Final checksum of everything fed so far.
  std::uint32_t value() const { return ~state_; }
  void reset() { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience.
std::uint32_t crc32(ByteSpan data);

}  // namespace ecomp

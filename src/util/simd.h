// Runtime-dispatched SIMD kernels for the codec hot paths.
//
// Three kernels back the measured hot loops: LZ77 common-prefix length
// (match search), first-index-of-byte (the MTF rank scan), and bulk
// CRC-32. Each has a scalar reference implementation that is always
// compiled (`simd::scalar::`), plus SSE2/AVX2/CLMUL variants compiled
// only when ECOMP_SIMD=ON (the default) and targeting x86. The dispatch
// level is probed from cpuid once, can be forced down with
// ECOMP_SIMD_LEVEL=scalar|sse2|clmul|avx2 or set_level() (differential
// tests), and never exceeds what the CPU supports. Containers are
// byte-identical at every level — the kernels change speed, not output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ecomp::simd {

/// Dispatch tiers, ordered: each tier implies the ones below it.
/// kClmul means SSE4.2 + PCLMULQDQ (the CRC folding kernel's needs).
enum class Level : int { kScalar = 0, kSse2 = 1, kClmul = 2, kAvx2 = 3 };

/// Highest level this build + CPU supports (cached cpuid probe).
/// Always kScalar when compiled with ECOMP_SIMD=OFF or off-x86.
Level detected_level();

/// Level the dispatched kernels currently run at. Starts at
/// detected_level(), lowered by the ECOMP_SIMD_LEVEL env var if set.
Level active_level();

/// Force the active level (clamped to detected_level()); returns the
/// level now active. For differential tests; not thread-safe against
/// concurrent kernel calls picking the old level mid-batch (harmless:
/// every level computes identical results).
Level set_level(Level level);

const char* level_name(Level level);

/// Space-separated ISA flags this CPU reports (e.g. "sse2 sse4.2 pclmul
/// avx2"), independent of the active level. For bench provenance.
std::string cpu_flags();

/// Length of the common prefix of a and b, capped at max_len. Both
/// pointers must have max_len readable bytes.
int match_length(const std::uint8_t* a, const std::uint8_t* b, int max_len);

/// Index of the first occurrence of `value` in p[0..n), or -1.
int find_byte_index(const std::uint8_t* p, int n, std::uint8_t value);

/// Advance a raw (inverted-domain) reflected CRC-32 state over p[0..n).
std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* p,
                           std::size_t n);

/// Hot-loop accessors: fetch the active kernel once per batch instead of
/// re-dispatching per call (the LZ77 chain walk calls match_length
/// millions of times per block).
using MatchLengthFn = int (*)(const std::uint8_t*, const std::uint8_t*, int);
using FindByteFn = int (*)(const std::uint8_t*, int, std::uint8_t);
MatchLengthFn match_length_fn();
FindByteFn find_byte_fn();

/// Reference kernels, always compiled, used directly by differential
/// tests and as the dispatch fallback.
namespace scalar {
int match_length(const std::uint8_t* a, const std::uint8_t* b, int max_len);
int find_byte_index(const std::uint8_t* p, int n, std::uint8_t value);
std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* p,
                           std::size_t n);
}  // namespace scalar

}  // namespace ecomp::simd

// ecomp::par — a small fixed-size thread pool with a bounded task
// queue, the execution engine behind the parallel block pipeline:
// selective_compress / SelectiveStreamEncoder compress blocks on it
// (with an ordered-completion reorder buffer, so the container bytes
// are identical to the serial path at any thread count) and
// selective_decompress decodes blocks on it.
//
// Design notes:
//   * The queue is bounded (default 4x the worker count): submit()
//     blocks the producer instead of letting an encode outrun the
//     consumer by an unbounded number of buffered blocks. Tasks must
//     therefore never submit() to their own pool (documented deadlock).
//   * Obs-instrumented: "par.tasks" counts executed tasks,
//     "par.queue_depth" is a sliding-window histogram of the queue
//     backlog sampled at every push/pop (so p50/p99 backlog and not
//     just the last value survive to the STATS surface),
//     "par.workers" records the pool size, and each task body runs
//     under an ECOMP_TRACE_SPAN("par.task") so pool activity shows up
//     on the wall-clock trace track.
//   * Exceptions: async() returns a std::future that rethrows whatever
//     the task threw — the reorder buffers in the compression stack
//     propagate worker failures to the caller in block order.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/bytes.h"

namespace ecomp::par {

/// std::thread::hardware_concurrency with a floor of 1 (the function is
/// allowed to return 0 when the hardware offers no hint).
unsigned default_threads();

class ThreadPool {
 public:
  /// `threads` workers (clamped to >= 1); `queue_capacity` 0 means
  /// 4 * threads.
  explicit ThreadPool(unsigned threads, std::size_t queue_capacity = 0);
  ~ThreadPool();  // drains the queue, then joins every worker
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue `fn`; blocks while the queue is at capacity. Throws Error
  /// after shutdown began. Never call from a task running on this pool.
  void submit(std::function<void()> fn);

  /// Non-blocking submit: returns false (and drops nothing on the
  /// caller) when the queue is at capacity or shutdown began. The
  /// admission-control path in net::ProxyServer uses this to reply
  /// BUSY instead of wedging its accept thread in submit().
  bool try_submit(std::function<void()> fn);

  /// Tasks currently queued (not yet picked up by a worker).
  std::size_t depth() const;

  /// submit() wrapped in a packaged task: the returned future yields
  /// the callable's result or rethrows its exception.
  template <class F>
  auto async(F&& f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

 private:
  void worker();

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::size_t capacity_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ecomp::par

// Bounded single-producer / single-consumer queue — the hand-off
// between the network feed thread and the decode worker in the
// threaded InterleavedDownloader (the paper's §4.1 receive/decompress
// overlap, physically realized). Blocking push/pop with a close()
// escape hatch so either side can shut the pipeline down when it hits
// an error; mutex + condvar keeps it simple and exact under TSan (the
// per-item payload is a 16 KB chunk, so lock cost is noise).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace ecomp::par {

template <class T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while full. Returns false (dropping `v`) once closed.
  bool push(T v) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(v));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed AND drained (items
  /// pushed before close() are still delivered).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Wakes both sides; push() starts failing, pop() drains then ends.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace ecomp::par

#include "par/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecomp::par {

unsigned default_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads, std::size_t queue_capacity) {
  const unsigned n = std::max(1u, threads);
  capacity_ = queue_capacity ? queue_capacity : 4 * static_cast<std::size_t>(n);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker(); });
  ECOMP_GAUGE_SET("par.workers", n);
  ECOMP_GAUGE_SET("par.queue_capacity", capacity_);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  if (!fn) throw Error("ThreadPool: null task");
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return stopping_ || queue_.size() < capacity_; });
    if (stopping_) throw Error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(fn));
    ECOMP_SLIDING_OBSERVE("par.queue_depth", queue_.size());
  }
  not_empty_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> fn) {
  if (!fn) throw Error("ThreadPool: null task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(fn));
    ECOMP_SLIDING_OBSERVE("par.queue_depth", queue_.size());
  }
  not_empty_.notify_one();
  return true;
}

std::size_t ThreadPool::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ECOMP_SLIDING_OBSERVE("par.queue_depth", queue_.size());
    }
    not_full_.notify_one();
    {
      ECOMP_TRACE_SPAN("par.task", "par");
      task();  // packaged_task captures exceptions into its future
    }
    ECOMP_COUNT("par.tasks");
  }
}

}  // namespace ecomp::par

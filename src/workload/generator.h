// Synthetic workload generators. The paper's corpus (Table 2/3) is a mix
// of web pages, logs, documents, program binaries and media files; the
// energy results depend on each file's (size, per-codec compression
// factor, block-level factor variance), not on its literal bytes. Each
// FileKind has a base-material generator that produces bytes with that
// type's character (markup, log lines, opcodes, audio walks, …), wrapped
// in a tunable redundancy stage so the deflate compression factor can be
// matched to the paper's gzip column.
//
// Everything is deterministic: same (kind, size, seed, tune) → same
// bytes, on every platform.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/rng.h"

namespace ecomp::workload {

enum class FileKind {
  Xml,         ///< XML web pages (news96.xml, M31C.xml)
  Html,        ///< HTML pages (yahooindex.html)
  HtmlTar,     ///< tar of HTML files (langspec-2.0.html.tar)
  Log,         ///< web server log (input.log)
  Source,      ///< program source (input.source)
  PostScript,  ///< .ps documents
  Eps,         ///< encapsulated postscript
  Pdf,         ///< PDF: text mixed with already-compressed streams
  Binary,      ///< machine code (pegwit, NTBACKUP.EXE, pp.exe)
  JavaClass,   ///< .class files
  Wav,         ///< PCM audio
  Media,       ///< already-encoded media (jpg, mp3, m2v)
  Gif,         ///< LZW-coded image (factor ≈ 1 for gzip)
  Random,      ///< uniform random bytes
  Mail,        ///< small text mail
  Script,      ///< shell scripts
  TarMixed,    ///< heterogeneous archive (for the Fig. 11 experiments)
};

const char* to_string(FileKind k);

/// Raw material with the type's natural redundancy (tune = 0).
Bytes base_material(FileKind kind, std::size_t size, Rng& rng);

/// Generate `size` bytes of `kind` with redundancy control `tune`:
///   tune in (0, 1): with that probability, splice a copy of recent
///     output (raises the compression factor smoothly);
///   tune in (-1, 0): with probability |tune|, overwrite output with
///     random bytes (lowers the factor toward 1);
///   tune == 0: the base material as-is.
Bytes generate_kind(FileKind kind, std::size_t size, std::uint64_t seed,
                    double tune);

/// Search `tune` so that the deflate compression factor of a prototype
/// (capped at `proto_cap` bytes) lands within ~5% of `target_factor`.
/// Returns the tuned parameter (clamped to the achievable range).
double tune_for_factor(FileKind kind, std::size_t size, std::uint64_t seed,
                       double target_factor,
                       std::size_t proto_cap = 384 * 1024);

/// Stable 64-bit seed from a file name.
std::uint64_t seed_from_name(const std::string& name);

}  // namespace ecomp::workload

// The paper's test corpus (Tables 2 and 3), regenerated synthetically.
// Each entry carries the paper's file name, size, per-codec compression
// factors, and category; generate() produces deterministic bytes of the
// right type tuned so our deflate factor tracks the paper's gzip column.
//
// A few cells are illegible in the scanned source; those values are
// reconstructed from context and flagged (`reconstructed`), see
// EXPERIMENTS.md.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "workload/generator.h"

namespace ecomp::workload {

struct CorpusFile {
  std::string name;
  std::size_t size_bytes = 0;
  FileKind kind = FileKind::Random;
  double paper_gzip = 1.0;  ///< Table 2 gzip compression factor
  double paper_lzw = 1.0;   ///< Table 2 compress factor
  double paper_bwt = 1.0;   ///< Table 2 bzip2 factor
  bool large = false;       ///< Table 2's large/small split (>~50 KB)
  bool reconstructed = false;  ///< some cell was illegible in the scan
  std::string description;     ///< Table 3
};

/// All Table 2 rows (21 large + 14 small files).
const std::vector<CorpusFile>& table2();

/// Look up a row by name; throws Error if absent.
const CorpusFile& table2_entry(const std::string& name);

/// Generate one corpus file. `scale` shrinks every file (min 4 KB) so
/// quick runs don't pay for the full ~70 MB corpus; factors are
/// essentially scale-invariant for these generators.
Bytes generate(const CorpusFile& f, double scale = 1.0);

/// Lazily generated, memoized corpus.
class Corpus {
 public:
  explicit Corpus(double scale = 1.0) : scale_(scale) {}

  const Bytes& file(const std::string& name);
  double scale() const { return scale_; }

  /// Scaled size of an entry without generating it.
  std::size_t scaled_size(const CorpusFile& f) const;

 private:
  double scale_;
  std::map<std::string, Bytes> cache_;
};

}  // namespace ecomp::workload

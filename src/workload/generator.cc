#include "workload/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "compress/deflate.h"

namespace ecomp::workload {
namespace {

using namespace std::string_view_literals;

void append(Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

void append_num(Bytes& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(v));
  out.insert(out.end(), buf, buf + n);
}

// Small deterministic word pool with a Zipf-ish draw.
constexpr std::array kWords = {
    "the"sv,    "of"sv,      "and"sv,      "to"sv,       "in"sv,
    "system"sv, "data"sv,    "network"sv,  "energy"sv,   "device"sv,
    "server"sv, "wireless"sv,"compress"sv, "download"sv, "battery"sv,
    "proxy"sv,  "packet"sv,  "measure"sv,  "result"sv,   "section"sv,
    "model"sv,  "factor"sv,  "scheme"sv,   "figure"sv,   "power"sv,
    "time"sv,   "file"sv,    "block"sv,    "buffer"sv,   "value"sv,
    "signal"sv, "channel"sv, "protocol"sv, "process"sv,  "table"sv,
};

std::string_view zipf_word(Rng& rng) {
  // P(rank r) ∝ 1/(r+1): draw via rejection on a harmonic-ish CDF.
  const double u = rng.uniform();
  const double h = std::log1p(static_cast<double>(kWords.size()));
  const auto idx = static_cast<std::size_t>(std::expm1(u * h));
  return kWords[std::min(idx, kWords.size() - 1)];
}

void sentence(Bytes& out, Rng& rng) {
  const int n = static_cast<int>(rng.range(5, 14));
  for (int i = 0; i < n; ++i) {
    append(out, zipf_word(rng));
    out.push_back(i + 1 == n ? '.' : ' ');
  }
  out.push_back(' ');
}

Bytes gen_xml(std::size_t size, Rng& rng) {
  constexpr std::array kTags = {"record"sv, "item"sv,  "field"sv,
                                "entry"sv,  "value"sv, "meta"sv};
  Bytes out;
  out.reserve(size + 256);
  append(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<document>\n");
  while (out.size() < size) {
    const auto tag = kTags[rng.below(kTags.size())];
    append(out, "  <");
    append(out, tag);
    append(out, " id=\"");
    append_num(out, rng.below(100000));
    append(out, "\" class=\"standard\">");
    const int words = static_cast<int>(rng.range(2, 8));
    for (int i = 0; i < words; ++i) {
      append(out, zipf_word(rng));
      if (i + 1 < words) out.push_back(' ');
    }
    append(out, "</");
    append(out, tag);
    append(out, ">\n");
  }
  out.resize(size);
  return out;
}

Bytes gen_html(std::size_t size, Rng& rng) {
  Bytes out;
  out.reserve(size + 256);
  append(out, "<html><head><title>index</title></head><body>\n");
  while (out.size() < size) {
    append(out, "<p><a href=\"/dir/page");
    append_num(out, rng.below(5000));
    append(out, ".html\">");
    append(out, zipf_word(rng));
    out.push_back(' ');
    append(out, zipf_word(rng));
    append(out, "</a> ");
    sentence(out, rng);
    append(out, "</p>\n");
  }
  out.resize(size);
  return out;
}

Bytes gen_log(std::size_t size, Rng& rng) {
  constexpr std::array kPaths = {
      "/index.html"sv,      "/images/logo.gif"sv, "/docs/spec.ps"sv,
      "/cgi-bin/query"sv,   "/download/app.tar"sv,"/news/today.xml"sv};
  constexpr std::array kCodes = {"200"sv, "200"sv, "200"sv, "304"sv,
                                 "404"sv, "500"sv};
  Bytes out;
  out.reserve(size + 256);
  std::uint64_t t = 852076800;  // epoch-ish counter, monotonically rising
  while (out.size() < size) {
    t += rng.below(30);
    append(out, "host");
    append_num(out, rng.below(400));
    append(out, ".example.edu - - [");
    append_num(out, t);
    append(out, "] \"GET ");
    append(out, kPaths[rng.below(kPaths.size())]);
    append(out, " HTTP/1.0\" ");
    append(out, kCodes[rng.below(kCodes.size())]);
    out.push_back(' ');
    append_num(out, rng.below(65536));
    out.push_back('\n');
  }
  out.resize(size);
  return out;
}

Bytes gen_source(std::size_t size, Rng& rng) {
  constexpr std::array kLines = {
      "for (int i = 0; i < n; i++) {"sv,
      "    sum += table[i] * weight[i];"sv,
      "}"sv,
      "if (status != OK) return status;"sv,
      "static int process(struct node *p, int flags)"sv,
      "{"sv,
      "    assert(p != NULL);"sv,
      "    p->next = head; head = p;"sv,
      "    return dispatch(p->kind, flags);"sv,
      "/* recompute the checksum over the payload */"sv,
      "memcpy(dst + off, src, len);"sv,
      "#define MAX_ENTRIES 1024"sv,
  };
  Bytes out;
  out.reserve(size + 128);
  while (out.size() < size) {
    append(out, kLines[rng.below(kLines.size())]);
    out.push_back('\n');
    if (rng.chance(0.1)) {
      append(out, "int var_");
      append_num(out, rng.below(1000));
      append(out, " = ");
      append_num(out, rng.below(100000));
      append(out, ";\n");
    }
  }
  out.resize(size);
  return out;
}

Bytes gen_postscript(std::size_t size, Rng& rng) {
  Bytes out;
  out.reserve(size + 256);
  append(out, "%!PS-Adobe-2.0\n%%Creator: ecomp\n");
  while (out.size() < size) {
    switch (rng.below(4)) {
      case 0:
        append_num(out, rng.below(612));
        out.push_back(' ');
        append_num(out, rng.below(792));
        append(out, " moveto ");
        break;
      case 1:
        append_num(out, rng.below(612));
        out.push_back(' ');
        append_num(out, rng.below(792));
        append(out, " lineto stroke\n");
        break;
      case 2:
        append(out, "/Times-Roman findfont 10 scalefont setfont (");
        append(out, zipf_word(rng));
        out.push_back(' ');
        append(out, zipf_word(rng));
        append(out, ") show\n");
        break;
      default:
        append(out, "gsave 0.5 setgray newpath grestore\n");
        break;
    }
  }
  out.resize(size);
  return out;
}

Bytes gen_binary(std::size_t size, Rng& rng) {
  // Instruction-like 32-bit words: a small, skewed opcode set in the top
  // byte, register fields with few live values, immediates mostly small.
  constexpr std::array<std::uint8_t, 8> kOps = {0xe5, 0xe1, 0xe3, 0xe5,
                                                0xeb, 0xe2, 0xe5, 0x05};
  Bytes out;
  out.reserve(size + 4);
  while (out.size() < size) {
    if (rng.chance(0.08)) {
      // String-table / symbol fragments appear in real binaries.
      append(out, "_sym");
      append_num(out, rng.below(500));
      out.push_back('\0');
      continue;
    }
    out.push_back(static_cast<std::uint8_t>(rng.below(16) * 4));
    out.push_back(rng.chance(0.7) ? 0x00 : rng.byte());
    out.push_back(static_cast<std::uint8_t>(rng.below(13) << 4));
    out.push_back(kOps[rng.below(kOps.size())]);
  }
  out.resize(size);
  return out;
}

Bytes gen_class(std::size_t size, Rng& rng) {
  Bytes out;
  out.reserve(size + 64);
  // Magic + constant-pool-ish strings + bytecode-ish tail.
  for (std::uint8_t b : {0xca, 0xfe, 0xba, 0xbe, 0x00, 0x03, 0x00, 0x2d})
    out.push_back(b);
  while (out.size() < size / 2) {
    out.push_back(0x01);  // CONSTANT_Utf8
    append(out, "java/lang/");
    append(out, zipf_word(rng));
    append(out, ";()V");
  }
  while (out.size() < size) {
    const std::array<std::uint8_t, 6> ops = {0x2a, 0xb6, 0xb1,
                                             0x19, 0xb7, 0x10};
    out.push_back(ops[rng.below(ops.size())]);
    if (rng.chance(0.4)) out.push_back(static_cast<std::uint8_t>(rng.below(64)));
  }
  out.resize(size);
  return out;
}

Bytes gen_wav(std::size_t size, Rng& rng) {
  // 16-bit PCM random walk: correlated, so gzip finds some structure but
  // not much — matching the ~1.9 factor of the paper's .wav file.
  Bytes out;
  out.reserve(size + 2);
  append(out, "RIFFWAVEfmt ");
  std::int32_t sample = 0;
  while (out.size() < size) {
    sample += static_cast<std::int32_t>(rng.range(-96, 96));
    sample = std::clamp(sample, -30000, 30000);
    out.push_back(static_cast<std::uint8_t>(sample & 0xff));
    out.push_back(static_cast<std::uint8_t>((sample >> 8) & 0xff));
  }
  out.resize(size);
  return out;
}

Bytes gen_media(std::size_t size, Rng& rng) {
  // Already-encoded data: near-uniform bytes with occasional marker runs
  // (JPEG-style 0xff segments) providing a sliver of redundancy.
  Bytes out;
  out.reserve(size + 16);
  while (out.size() < size) {
    if (rng.chance(0.002)) {
      out.push_back(0xff);
      out.push_back(static_cast<std::uint8_t>(0xd0 + rng.below(8)));
      out.insert(out.end(), 8, 0x00);
    } else {
      out.push_back(rng.byte());
    }
  }
  out.resize(size);
  return out;
}

Bytes gen_random(std::size_t size, Rng& rng) {
  Bytes out(size);
  for (auto& b : out) b = rng.byte();
  return out;
}

Bytes gen_mail(std::size_t size, Rng& rng) {
  Bytes out;
  out.reserve(size + 128);
  append(out, "From: user@cs.example.edu\nTo: list@cs.example.edu\n"
              "Subject: ");
  append(out, zipf_word(rng));
  append(out, "\nDate: Mon, 6 Jan 2003 10:");
  append_num(out, rng.below(60));
  append(out, ":00 -0500\n\n");
  while (out.size() < size) sentence(out, rng);
  out.resize(size);
  return out;
}

Bytes gen_script(std::size_t size, Rng& rng) {
  constexpr std::array kLines = {
      "#!/bin/sh"sv,
      "set -e"sv,
      "for f in *.log; do"sv,
      "  gzip -9 \"$f\""sv,
      "done"sv,
      "if [ -z \"$1\" ]; then echo usage >&2; exit 1; fi"sv,
      "TMP=$(mktemp) || exit 1"sv,
      "trap 'rm -f \"$TMP\"' EXIT"sv,
  };
  Bytes out;
  out.reserve(size + 64);
  while (out.size() < size) {
    append(out, kLines[rng.below(kLines.size())]);
    out.push_back('\n');
  }
  out.resize(size);
  return out;
}

Bytes gen_pdf(std::size_t size, Rng& rng) {
  // Alternating text objects and "compressed stream" objects, like real
  // PDFs: heterogeneous block factors, which is what the selective
  // scheme exploits.
  Bytes out;
  out.reserve(size + 256);
  append(out, "%PDF-1.3\n");
  while (out.size() < size) {
    if (rng.chance(0.5)) {
      append(out, "obj << /Type /Page >> stream\nBT /F1 12 Tf (");
      for (int i = 0; i < 40 && out.size() < size; ++i) {
        append(out, zipf_word(rng));
        out.push_back(' ');
      }
      append(out, ") Tj ET\nendstream endobj\n");
    } else {
      append(out, "obj << /Filter /FlateDecode >> stream\n");
      const std::size_t n = std::min<std::size_t>(
          2048 + rng.below(4096), size > out.size() ? size - out.size() : 0);
      for (std::size_t i = 0; i < n; ++i) out.push_back(rng.byte());
      append(out, "\nendstream endobj\n");
    }
  }
  out.resize(size);
  return out;
}

Bytes gen_tar_mixed(std::size_t size, Rng& rng) {
  // Concatenated members of very different compressibility — the tar /
  // PowerPoint / PDF case the paper's §4.3 motivates.
  Bytes out;
  out.reserve(size + 512);
  const std::array<FileKind, 5> members = {FileKind::Xml, FileKind::Media,
                                           FileKind::Source, FileKind::Random,
                                           FileKind::Log};
  std::size_t idx = 0;
  while (out.size() < size) {
    const std::size_t member_size =
        std::min<std::size_t>(64 * 1024 + rng.below(192 * 1024),
                              size - out.size());
    append(out, "member");
    append_num(out, idx);
    out.push_back('\0');
    Bytes m = base_material(members[idx % members.size()], member_size, rng);
    out.insert(out.end(), m.begin(), m.end());
    ++idx;
  }
  out.resize(size);
  return out;
}

/// Redundancy wrapper: splice copies of recent output (tune > 0) or
/// clobber with random bytes (tune < 0).
Bytes apply_tune(Bytes base, double tune, Rng& rng) {
  if (tune == 0.0 || base.empty()) return base;
  if (tune < 0.0) {
    const double p = std::min(1.0, -tune);
    for (auto& b : base)
      if (rng.chance(p)) b = rng.byte();
    return base;
  }
  const double p = std::min(0.995, tune);
  Bytes out;
  out.reserve(base.size());
  std::size_t src = 0;
  while (out.size() < base.size()) {
    if (out.size() > 64 && rng.chance(p)) {
      // Copy a chunk from within the LZ77 window.
      const std::size_t max_dist = std::min<std::size_t>(out.size(), 32000);
      const std::size_t dist = 1 + rng.below(max_dist);
      const std::size_t len =
          std::min<std::size_t>(8 + rng.below(120), base.size() - out.size());
      const std::size_t from = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[from + i]);
    } else {
      const std::size_t len =
          std::min<std::size_t>(16 + rng.below(48), base.size() - out.size());
      for (std::size_t i = 0; i < len && src < base.size(); ++i)
        out.push_back(base[src++]);
      if (src >= base.size()) src = 0;
    }
  }
  return out;
}

}  // namespace

const char* to_string(FileKind k) {
  switch (k) {
    case FileKind::Xml: return "xml";
    case FileKind::Html: return "html";
    case FileKind::HtmlTar: return "html-tar";
    case FileKind::Log: return "log";
    case FileKind::Source: return "source";
    case FileKind::PostScript: return "ps";
    case FileKind::Eps: return "eps";
    case FileKind::Pdf: return "pdf";
    case FileKind::Binary: return "binary";
    case FileKind::JavaClass: return "class";
    case FileKind::Wav: return "wav";
    case FileKind::Media: return "media";
    case FileKind::Gif: return "gif";
    case FileKind::Random: return "random";
    case FileKind::Mail: return "mail";
    case FileKind::Script: return "script";
    case FileKind::TarMixed: return "tar-mixed";
  }
  return "?";
}

Bytes base_material(FileKind kind, std::size_t size, Rng& rng) {
  switch (kind) {
    case FileKind::Xml: return gen_xml(size, rng);
    case FileKind::Html: return gen_html(size, rng);
    case FileKind::HtmlTar: return gen_html(size, rng);
    case FileKind::Log: return gen_log(size, rng);
    case FileKind::Source: return gen_source(size, rng);
    case FileKind::PostScript: return gen_postscript(size, rng);
    case FileKind::Eps: return gen_postscript(size, rng);
    case FileKind::Pdf: return gen_pdf(size, rng);
    case FileKind::Binary: return gen_binary(size, rng);
    case FileKind::JavaClass: return gen_class(size, rng);
    case FileKind::Wav: return gen_wav(size, rng);
    case FileKind::Media: return gen_media(size, rng);
    case FileKind::Gif: return gen_media(size, rng);
    case FileKind::Random: return gen_random(size, rng);
    case FileKind::Mail: return gen_mail(size, rng);
    case FileKind::Script: return gen_script(size, rng);
    case FileKind::TarMixed: return gen_tar_mixed(size, rng);
  }
  throw Error("base_material: unknown kind");
}

Bytes generate_kind(FileKind kind, std::size_t size, std::uint64_t seed,
                    double tune) {
  Rng rng(seed);
  Bytes base = base_material(kind, size, rng);
  return apply_tune(std::move(base), tune, rng);
}

double tune_for_factor(FileKind kind, std::size_t size, std::uint64_t seed,
                       double target_factor, std::size_t proto_cap) {
  if (kind == FileKind::Random) return 0.0;  // factor pinned at 1.0
  const std::size_t proto = std::min(size, proto_cap);
  const compress::DeflateCodec codec(6);  // tuning probe; final uses -9

  auto factor_at = [&](double tune) {
    const Bytes data = generate_kind(kind, proto, seed, tune);
    return compress::compression_factor(codec, data);
  };

  double lo = -1.0, hi = 0.995;
  const double f_lo = factor_at(lo), f_hi = factor_at(hi);
  if (target_factor <= f_lo) return lo;
  if (target_factor >= f_hi) return hi;
  double mid = 0.0;
  for (int i = 0; i < 12; ++i) {
    mid = 0.5 * (lo + hi);
    const double f = factor_at(mid);
    if (std::abs(f - target_factor) / target_factor < 0.04) return mid;
    (f < target_factor ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

std::uint64_t seed_from_name(const std::string& name) {
  // FNV-1a, then splitmix to decorrelate.
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return splitmix64(h);
}

}  // namespace ecomp::workload

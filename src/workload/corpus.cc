#include "workload/corpus.h"

#include <algorithm>

#include "util/bytes.h"

namespace ecomp::workload {
namespace {

std::vector<CorpusFile> build_table2() {
  using K = FileKind;
  // name, bytes, kind, gzip F, compress F, bzip2 F, large, reconstructed,
  // description (Table 3). Reconstructed cells: value chosen to respect
  // the row's codec ordering and the column's neighbours.
  return {
      // ---- relatively large files (sorted roughly by gzip factor) ----
      {"news96.xml", 2961063, K::Xml, 18.23, 6.51, 23.59, true, true,
       "an xml webpage"},
      {"M31C.xml", 8391571, K::Xml, 14.64, 9.91, 18.58, true, false,
       "an xml webpage"},
      {"M31Csmall.xml", 900051, K::Xml, 12.90, 6.63, 11.52, true, true,
       "an xml webpage"},
      {"input.log", 4096036, K::Log, 11.11, 5.92, 18.37, true, true,
       "a webpage log (from SPEC 2000)"},
      {"langspec-2.0.html.tar", 1162816, K::HtmlTar, 4.60, 3.08, 6.13, true,
       true, "a tar file of Java language specification in html format"},
      {"input.source", 9553920, K::Source, 3.90, 2.54, 4.88, true, true,
       "a program source (from SPEC 2000)"},
      {"proxy.ps", 2175331, K::PostScript, 3.80, 3.00, 6.87, true, false,
       "a postscript document"},
      {"j2d-book.ps", 5234774, K::PostScript, 3.40, 2.75, 4.70, true, true,
       "a postscript document"},
      {"java.ps", 1698978, K::PostScript, 3.55, 2.61, 4.46, true, false,
       "a postscript document"},
      {"localedef", 330072, K::Binary, 3.50, 2.18, 3.72, true, false,
       "a program binary"},
      {"JavaCCParser.class", 126241, K::JavaClass, 3.00, 2.00, 3.17, true,
       false, "a Java class file"},
      {"langspec-2.0.pdf", 4419906, K::Pdf, 2.79, 1.98, 3.00, true, true,
       "Java specification in pdf format"},
      {"pegwit", 360188, K::Binary, 2.57, 1.73, 2.60, true, true,
       "a program binary"},
      {"NTBACKUP.EXE", 1162512, K::Binary, 2.46, 1.79, 2.50, true, false,
       "a program binary"},
      {"input.program", 3550558, K::Binary, 2.30, 1.90, 2.41, true, true,
       "a program binary (from SPEC 2000)"},
      {"sclerp.wav", 1158380, K::Wav, 1.90, 2.26, 3.25, true, true,
       "a data file in .wav format"},
      {"pp.exe", 920316, K::Binary, 1.11, 0.94, 1.23, true, true,
       "a program binary"},
      {"input.graphic", 6656364, K::Media, 1.09, 0.97, 1.38, true, false,
       "a TIFF image (from SPEC 2000)"},
      {"image01.jpg", 1833027, K::Media, 1.04, 0.88, 1.36, true, true,
       "a jpeg image"},
      {"lovecnife.mp3", 4328513, K::Media, 1.02, 0.83, 1.02, true, false,
       "a mp3 music"},
      {"tom.015.m2v", 2816594, K::Media, 1.01, 0.85, 1.02, true, false,
       "a mpeg-2 movie"},
      {"image01.gif", 5075287, K::Gif, 1.00, 0.82, 1.00, true, true,
       "a GIF file"},
      {"input.random", 4194309, K::Random, 1.00, 0.81, 1.00, true, true,
       "random data (from SPEC 2000)"},
      // ---- small files (sorted by increasing size) --------------------
      {"mail0", 1438, K::Mail, 1.82, 1.47, 1.67, false, false,
       "a text mail"},
      {"mail1", 1611, K::Mail, 1.91, 1.48, 1.75, false, false,
       "a text mail"},
      {"PolyhedronElement.class", 2211, K::JavaClass, 1.79, 1.42, 1.50,
       false, true, "a Java class file"},
      {"nohup", 2600, K::Script, 1.97, 1.47, 1.81, false, true,
       "a shell script"},
      {"mail2", 4285, K::Mail, 2.16, 1.66, 2.00, false, true,
       "a text mail"},
      {"yahooindex.html", 16709, K::Html, 3.30, 2.22, 3.50, false, true,
       "an html webpage"},
      {"Stele.class", 21890, K::JavaClass, 2.23, 1.60, 2.15, false, true,
       "a Java class file"},
      {"tail", 26240, K::Binary, 2.00, 1.59, 2.11, false, true,
       "a program binary"},
      {"amdig.eps", 31290, K::Eps, 3.22, 1.95, 3.17, false, false,
       "an encapsulated postscript file"},
      {"intro.pdf", 44000, K::Pdf, 1.77, 1.23, 1.80, false, true,
       "a pdf file"},
      {"fscrub", 57312, K::Binary, 2.05, 1.55, 2.14, false, true,
       "a program binary"},
      {"intro.ps", 69000, K::PostScript, 2.37, 1.87, 2.54, false, true,
       "a postscript document"},
      {"JavaFiles.class", 74000, K::JavaClass, 2.93, 1.82, 2.97, false,
       true, "a Java class file"},
      {"perl.ps", 79012, K::PostScript, 2.58, 1.90, 2.83, false, true,
       "a postscript file"},
  };
}

}  // namespace

const std::vector<CorpusFile>& table2() {
  static const std::vector<CorpusFile> kTable = build_table2();
  return kTable;
}

const CorpusFile& table2_entry(const std::string& name) {
  for (const auto& f : table2())
    if (f.name == name) return f;
  throw Error("corpus: no Table 2 entry named " + name);
}

Bytes generate(const CorpusFile& f, double scale) {
  const auto size = static_cast<std::size_t>(
      std::max(4096.0, static_cast<double>(f.size_bytes) * scale));
  const std::uint64_t seed = seed_from_name(f.name);
  const double tune = tune_for_factor(f.kind, size, seed, f.paper_gzip);
  return generate_kind(f.kind, size, seed, tune);
}

const Bytes& Corpus::file(const std::string& name) {
  auto it = cache_.find(name);
  if (it != cache_.end()) return it->second;
  const CorpusFile& entry = table2_entry(name);
  return cache_.emplace(name, generate(entry, scale_)).first->second;
}

std::size_t Corpus::scaled_size(const CorpusFile& f) const {
  return static_cast<std::size_t>(
      std::max(4096.0, static_cast<double>(f.size_bytes) * scale_));
}

}  // namespace ecomp::workload

#include "cli/cli.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#include "compress/bwt_codec.h"
#include "compress/bz2_format.h"
#include "compress/container.h"
#include "compress/deflate.h"
#include "compress/gzip_format.h"
#include "compress/lzw.h"
#include "compress/selective.h"
#include "compress/z_format.h"
#include "compress/zlib_format.h"
#include "core/energy_model.h"
#include "core/interleave.h"
#include "core/planner.h"
#include "net/proxy.h"
#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "sim/channel.h"
#include "sim/energy_ledger.h"
#include "sim/packet.h"
#include "workload/corpus.h"

#if defined(ECOMP_OBS_ENABLED)
#include "prof/alloc.h"
#include "prof/crash.h"
#include "prof/flight.h"
#include "prof/profiler.h"
#endif

namespace ecomp::cli {
namespace {

constexpr const char* kUsage =
    "usage:\n"
    "  ecomp compress   [-c deflate|lzw|bwt|selective|gz|Z|bz2|zz] [-l LEVEL]"
    " [-b BYTES]\n"
    "                   [--threads N] IN OUT\n"
    "  ecomp decompress [--threads N] IN OUT\n"
    "  ecomp inspect    [--salvage] IN [OUT]\n"
    "  ecomp plan       [-r 11|2] [--loss P] IN\n"
    "  ecomp energy     [-r 11|2] [-c CODEC] [--loss P] [--breakdown]"
    " [--json] IN\n"
    "  ecomp download   --port PORT [-m raw|full|selective] [--resume]\n"
    "                   [--max-retries N] [--timeout-ms MS] [--salvage]\n"
    "                   [--threads N] NAME OUT\n"
    "  ecomp stats      --port PORT [--json|--prom] [--watch]\n"
    "                   [--interval-ms MS] [--count N] [--out FILE]\n"
    "  ecomp corpus     [-s SCALE] OUTDIR\n"
    "  ecomp profile    COMMAND [args...]   run any command under the\n"
    "                   sampling profiler and print a self-time table\n"
    "parallelism (compress/decompress/download, selective containers):\n"
    "  --threads N      worker threads; 0 = one per hardware thread"
    " (default)\n"
    "observability (any command):\n"
    "  --trace FILE     write a Chrome trace-event JSON (Perfetto-loadable);\n"
    "                   the ECOMP_TRACE env var sets a default path\n"
    "  --metrics FILE   write the metrics registry snapshot as JSON\n"
    "  --events FILE    write a JSONL connection-lifecycle event log;\n"
    "                   the ECOMP_EVENTS env var sets a default path\n"
    "profiling (any command; see docs/PROFILING.md):\n"
    "  --profile FILE   sample this run and write collapsed stacks\n"
    "                   (flamegraph.pl / inferno-flamegraph compatible)\n"
    "  --profile-hz N   sampling rate for --profile / profile (default"
    " 997)\n"
    "  --crash-dump FILE install a fatal-signal handler that dumps the\n"
    "                   flight recorder; ECOMP_CRASH_DUMP sets a default\n";

struct ArgParser {
  std::vector<std::string> positional;
  std::string codec = "deflate";
  int level = 9;
  std::size_t block = compress::kDefaultBlockSize;
  double scale = 0.05;
  int rate = 11;
  std::string trace_path;    // --trace / ECOMP_TRACE
  std::string metrics_path;  // --metrics
  std::string events_path;   // --events / ECOMP_EVENTS
  std::string out_path;      // stats: --out snapshot destination
  std::string profile_path;  // --profile folded-stack destination
  int profile_hz = 997;      // --profile-hz sampling rate
  std::string crash_dump_path;  // --crash-dump / ECOMP_CRASH_DUMP
  bool breakdown = false;    // energy: per-component ledger table
  bool json = false;         // energy/stats: machine-readable output
  bool prom = false;         // stats: Prometheus exposition
  bool watch = false;        // stats: repeat until --count is reached
  int interval_ms = 1000;    // stats: --watch polling period
  int count = 0;             // stats: snapshots under --watch (0 = forever)
  std::string mode = "selective";  // download: -m wire mode
  int port = 0;                    // download: --port
  int max_retries = 4;             // download: --max-retries
  std::uint32_t timeout_ms = 2000; // download: --timeout-ms
  bool resume = false;             // download: --resume
  bool salvage = false;            // download/inspect: --salvage
  double loss = 0.0;               // plan/energy: --loss packet-loss rate
  int threads = 0;                 // --threads; 0 = auto (hw concurrency)

  /// The worker-thread count the commands actually use.
  unsigned resolved_threads() const {
    return threads <= 0 ? par::default_threads()
                        : static_cast<unsigned>(threads);
  }

  /// Returns empty string on success, or an error message.
  std::string parse(const std::vector<std::string>& args, std::size_t from) {
    for (std::size_t i = from; i < args.size(); ++i) {
      const std::string& a = args[i];
      auto value = [&](const char* flag) -> std::string {
        if (++i >= args.size())
          throw Error(std::string("missing value for ") + flag);
        return args[i];
      };
      try {
        if (a == "-c") {
          codec = value("-c");
        } else if (a == "-l") {
          level = std::stoi(value("-l"));
        } else if (a == "-b") {
          block = static_cast<std::size_t>(std::stoull(value("-b")));
        } else if (a == "-s") {
          scale = std::stod(value("-s"));
        } else if (a == "-r") {
          rate = std::stoi(value("-r"));
        } else if (a == "--trace") {
          trace_path = value("--trace");
        } else if (a == "--metrics") {
          metrics_path = value("--metrics");
        } else if (a == "--events") {
          events_path = value("--events");
        } else if (a == "--out") {
          out_path = value("--out");
        } else if (a == "--profile") {
          profile_path = value("--profile");
        } else if (a == "--profile-hz") {
          profile_hz = std::stoi(value("--profile-hz"));
        } else if (a == "--crash-dump") {
          crash_dump_path = value("--crash-dump");
        } else if (a == "--breakdown") {
          breakdown = true;
        } else if (a == "--json") {
          json = true;
        } else if (a == "--prom") {
          prom = true;
        } else if (a == "--watch") {
          watch = true;
        } else if (a == "--interval-ms") {
          interval_ms = std::stoi(value("--interval-ms"));
        } else if (a == "--count") {
          count = std::stoi(value("--count"));
        } else if (a == "-m") {
          mode = value("-m");
        } else if (a == "--port") {
          port = std::stoi(value("--port"));
        } else if (a == "--max-retries") {
          max_retries = std::stoi(value("--max-retries"));
        } else if (a == "--timeout-ms") {
          timeout_ms =
              static_cast<std::uint32_t>(std::stoul(value("--timeout-ms")));
        } else if (a == "--resume") {
          resume = true;
        } else if (a == "--salvage") {
          salvage = true;
        } else if (a == "--loss") {
          loss = std::stod(value("--loss"));
        } else if (a == "--threads") {
          threads = std::stoi(value("--threads"));
        } else if (!a.empty() && a[0] == '-') {
          return "unknown flag: " + a;
        } else {
          positional.push_back(a);
        }
      } catch (const std::exception& e) {
        return std::string("bad argument: ") + e.what();
      }
    }
    if (trace_path.empty())
      if (const char* env = std::getenv("ECOMP_TRACE")) trace_path = env;
    if (events_path.empty())
      if (const char* env = std::getenv("ECOMP_EVENTS")) events_path = env;
    if (crash_dump_path.empty())
      if (const char* env = std::getenv("ECOMP_CRASH_DUMP"))
        crash_dump_path = env;
    return "";
  }
};

std::uint16_t sniff_magic(ByteSpan data) {
  if (data.size() < 2) throw Error("input too short to identify");
  return static_cast<std::uint16_t>(data[0] | (data[1] << 8));
}

core::EnergyModel model_for_rate(int rate) {
  if (rate == 11) return core::EnergyModel::paper_11mbps();
  if (rate == 2)
    return core::EnergyModel::from_device(sim::DeviceModel::ipaq_2mbps());
  throw Error("rate must be 11 or 2 (Mb/s)");
}

int cmd_compress(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 2) throw Error("compress needs IN and OUT");
  const Bytes input = [&] {
    ECOMP_TRACE_SPAN("read_input", "cli");
    return read_file(p.positional[0]);
  }();
  ECOMP_COUNT_N("cli.bytes_in", input.size());
  ECOMP_TRACE_SPAN("compress", "cli");
  Bytes packed;
  if (p.codec == "gz") {
    packed = compress::gzip_compress(input, p.level);
  } else if (p.codec == "Z") {
    packed = compress::z_compress(input);
  } else if (p.codec == "bz2") {
    packed = compress::bz2_compress(input, p.level);
  } else if (p.codec == "zz") {
    packed = compress::zlib_compress(input, p.level);
  } else if (p.codec == "selective") {
    const auto model = core::EnergyModel::paper_11mbps();
    const auto res = compress::selective_compress(
        input, core::make_selective_policy(model), p.block, p.level,
        p.resolved_threads());
    packed = res.container;
    std::size_t raw = 0;
    for (const auto& b : res.blocks)
      if (!b.compressed) ++raw;
    out << "selective: " << res.blocks.size() << " blocks, " << raw
        << " shipped raw\n";
  } else {
    packed = compress::make_codec(p.codec)->compress(input);
  }
  ECOMP_COUNT_N("cli.bytes_out", packed.size());
  {
    ECOMP_TRACE_SPAN("write_output", "cli");
    write_file(p.positional[1], packed);
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "%zu -> %zu bytes (factor %.3f)\n",
                input.size(), packed.size(),
                packed.empty() ? 1.0
                               : static_cast<double>(input.size()) /
                                     static_cast<double>(packed.size()));
  out << buf;
  return 0;
}

int cmd_decompress(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 2) throw Error("decompress needs IN and OUT");
  const Bytes input = read_file(p.positional[0]);
  Bytes decoded;
  if (compress::looks_like_gzip(input)) {
    decoded = compress::gzip_decompress(input);
    write_file(p.positional[1], decoded);
    out << decoded.size() << " bytes restored (gzip member)\n";
    return 0;
  }
  if (compress::looks_like_z(input)) {
    decoded = compress::z_decompress(input);
    write_file(p.positional[1], decoded);
    out << decoded.size() << " bytes restored (compress .Z)\n";
    return 0;
  }
  if (compress::looks_like_bz2(input)) {
    decoded = compress::bz2_decompress(input);
    write_file(p.positional[1], decoded);
    out << decoded.size() << " bytes restored (bzip2 .bz2)\n";
    return 0;
  }
  if (compress::looks_like_zlib(input)) {
    decoded = compress::zlib_decompress(input);
    write_file(p.positional[1], decoded);
    out << decoded.size() << " bytes restored (zlib stream)\n";
    return 0;
  }
  switch (sniff_magic(input)) {
    case compress::kDeflateMagic:
      decoded = compress::DeflateCodec().decompress(input);
      break;
    case compress::kLzwMagic:
      decoded = compress::LzwCodec().decompress(input);
      break;
    case compress::kBwtMagic:
      decoded = compress::BwtCodec().decompress(input);
      break;
    case compress::kSelectiveMagic:
      decoded = compress::selective_decompress(input, p.resolved_threads());
      break;
    default:
      throw Error("unrecognized container magic");
  }
  write_file(p.positional[1], decoded);
  out << decoded.size() << " bytes restored\n";
  return 0;
}

/// Shared report printer for inspect --salvage and download --salvage.
void print_recovery(const compress::RecoveryReport& rep, std::ostream& out) {
  out << "salvage: " << rep.blocks_recovered << "/" << rep.blocks_total
      << " blocks recovered, " << rep.bytes_recovered << " bytes ("
      << rep.bytes_lost << " lost"
      << (rep.framing_truncated ? ", tail truncated" : "")
      << (rep.crc_ok ? ", crc ok" : ", crc FAILED") << ")\n";
}

int cmd_inspect(const ArgParser& p, std::ostream& out) {
  if (p.salvage) {
    // Tolerant path: never throws on damaged content; reports what a
    // best-effort decode can pull out of the container.
    if (p.positional.empty() || p.positional.size() > 2)
      throw Error("inspect --salvage needs IN [OUT]");
    const Bytes input = read_file(p.positional[0]);
    const auto sr = compress::selective_salvage(input);
    print_recovery(sr.report, out);
    if (p.positional.size() == 2) write_file(p.positional[1], sr.data);
    if (sr.report.complete()) return 0;
    return sr.report.bytes_recovered > 0 ? 3 : 2;
  }
  if (p.positional.size() != 1) throw Error("inspect needs IN");
  const Bytes input = read_file(p.positional[0]);
  const std::uint16_t magic = sniff_magic(input);
  const char* kind = magic == compress::kDeflateMagic     ? "deflate"
                     : magic == compress::kLzwMagic       ? "lzw"
                     : magic == compress::kBwtMagic       ? "bwt"
                     : magic == compress::kSelectiveMagic ? "selective"
                                                          : nullptr;
  if (!kind) throw Error("unrecognized container magic");
  const auto header = compress::read_header(input, magic);
  out << "container: " << kind << "\n"
      << "stored bytes: " << input.size() << "\n"
      << "original bytes: " << header.original_size << "\n"
      << "crc32: " << header.crc << "\n";
  if (magic == compress::kSelectiveMagic) {
    const auto infos = compress::selective_block_info(input);
    out << "blocks: " << infos.size() << "\n";
    for (std::size_t i = 0; i < infos.size(); ++i)
      out << "  block " << i << ": raw " << infos[i].raw_size << " stored "
          << infos[i].payload_size
          << (infos[i].compressed ? " (compressed)\n" : " (raw)\n");
    return 0;
  }
  // Raw containers: the header alone can't reveal payload truncation, so
  // verify by decoding (throws -> exit 2 on a damaged payload).
  const Bytes decoded =
      magic == compress::kDeflateMagic
          ? compress::DeflateCodec().decompress(input)
          : magic == compress::kLzwMagic
                ? compress::LzwCodec().decompress(input)
                : compress::BwtCodec().decompress(input);
  out << "payload: verified, " << decoded.size() << " bytes (crc ok)\n";
  return 0;
}

int cmd_plan(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 1) throw Error("plan needs IN");
  const Bytes input = read_file(p.positional[0]);
  // Loss shifts Eq. 6: every delivered MB costs 1/(1-q) transmissions,
  // so compression starts paying at smaller factors.
  const auto model = model_for_rate(p.rate).with_loss(p.loss);

  core::FileEstimate est;
  est.size_mb = static_cast<double>(input.size()) / 1e6;
  for (const auto& name : compress::codec_names()) {
    const auto codec = compress::make_codec(name);
    est.factors.emplace_back(name, core::estimate_factor(*codec, input));
  }
  const core::Plan plan = core::TransferPlanner(model).plan(est);

  out << "file: " << p.positional[0] << " (" << input.size() << " bytes)\n";
  if (p.loss > 0.0) {
    char lbuf[96];
    std::snprintf(lbuf, sizeof lbuf,
                  "channel: %.1f%% loss -> %.2f transmissions/packet\n",
                  100.0 * p.loss, 1.0 / (1.0 - p.loss));
    out << lbuf;
  }
  out << "sampled factors:";
  for (const auto& [name, f] : est.factors) {
    char buf[48];
    std::snprintf(buf, sizeof buf, " %s=%.2f", name.c_str(), f);
    out << buf;
  }
  out << "\n";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "advice: %s / %s  (predicted %.3f J vs raw %.3f J, saves "
                "%.1f%%)\n",
                plan.chosen.codec.empty() ? "no compression"
                                          : plan.chosen.codec.c_str(),
                core::to_string(plan.chosen.strategy),
                plan.chosen.predicted_energy_j, plan.baseline_energy_j,
                100.0 * plan.saving_fraction);
  out << buf;
  return 0;
}

int cmd_energy(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 1) throw Error("energy needs IN");
  const Bytes input = read_file(p.positional[0]);

  sim::DeviceModel device = sim::DeviceModel::ipaq_11mbps();
  if (p.rate == 2)
    device = sim::DeviceModel::ipaq_2mbps();
  else if (p.rate != 11)
    throw Error("rate must be 11 or 2 (Mb/s)");
  const sim::TransferSimulator simulator(device);

  // Selective containers replay the exact blocks on disk; anything else
  // is simulated from a sampled compression-factor estimate.
  sim::TransferResult result;
  std::string scenario;
  double original_mb = static_cast<double>(input.size()) / 1e6;
  std::vector<sim::BlockTransfer> blocks;
  if (input.size() >= 2 &&
      sniff_magic(input) == compress::kSelectiveMagic) {
    const auto infos = compress::selective_block_info(input);
    double raw_bytes = 0.0;
    for (const auto& b : infos) raw_bytes += static_cast<double>(b.raw_size);
    original_mb = raw_bytes / 1e6;
    blocks = core::to_block_transfers(infos);
    sim::TransferOptions opt;
    opt.interleave = true;
    result = core::simulate_decoded_stream(infos, simulator, p.codec, opt);
    scenario = "selective-replay(" + std::to_string(infos.size()) + " blocks)";
  } else {
    const auto codec = compress::make_codec(p.codec);
    const double factor =
        std::max(core::estimate_factor(*codec, input), 1e-9);
    blocks.push_back({original_mb, original_mb / factor, true});
    sim::TransferOptions opt;
    opt.interleave = true;
    result = simulator.download_compressed(original_mb, original_mb / factor,
                                           p.codec, opt);
    scenario = "interleaved(" + p.codec + ")";
  }
  sim::TransferResult raw = simulator.download_uncompressed(original_mb);

  if (p.loss > 0.0) {
    // Re-run both sides on the packet-level simulator over a bursty
    // channel at the requested average loss, so the comparison includes
    // the radio/retransmit energy neither closed form sees.
    const sim::PacketLevelSimulator psim(device);
    sim::PacketSimOptions popt;
    popt.interleave = true;
    popt.channel = sim::ChannelModel::gilbert_elliott_avg(p.loss);
    result = psim.download(blocks, p.codec, popt);
    sim::PacketSimOptions raw_opt;
    raw_opt.channel = popt.channel;
    // The uncompressed block never decodes, but the codec name must be
    // one the CpuModel knows.
    raw = psim.download({{original_mb, original_mb, false}}, p.codec,
                        raw_opt);
    char lbuf[64];
    std::snprintf(lbuf, sizeof lbuf, "+loss(%.3f)", p.loss);
    scenario += lbuf;
  }

  const auto ledger = sim::EnergyLedger::from_timeline(result.timeline);
  const std::string violation = ledger.validate(result.timeline);
  if (!violation.empty())
    throw Error("energy ledger invariant violated: " + violation);

  if (p.json) {
    // Emitted through the shared JsonWriter — the same serializer the
    // STATS surface uses, so quoting/number formats cannot diverge.
    obs::JsonWriter w;
    w.begin_object();
    w.key("scenario").value(scenario);
    w.key("rate_mbps").value(p.rate);
    w.key("codec").value(p.codec);
    w.key("original_mb").value(original_mb);
    w.key("raw_energy_j").value(raw.energy_j);
    w.key("ledger").raw(ledger.to_json());
    w.end_object();
    out << w.str() << "\n";
    return 0;
  }

  char buf[256];
  std::snprintf(buf, sizeof buf,
                "scenario: %s at %d Mb/s\n"
                "energy: %.4f J over %.3f s (raw download: %.4f J, "
                "saves %.1f%%)\n",
                scenario.c_str(), p.rate, ledger.total_energy_j(),
                ledger.total_time_s(), raw.energy_j,
                raw.energy_j > 0.0
                    ? 100.0 * (1.0 - ledger.total_energy_j() / raw.energy_j)
                    : 0.0);
  out << buf;
  if (p.breakdown) out << ledger.to_text();
  return 0;
}

int cmd_download(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 2) throw Error("download needs NAME and OUT");
  if (p.port <= 0 || p.port > 0xffff)
    throw Error("download needs --port of a running proxy");
  net::TransferPolicy tp;
  tp.max_retries = p.max_retries;
  tp.timeout_ms = p.timeout_ms;
  tp.resume = p.resume;
  tp.salvage = p.salvage;
  tp.threads = p.resolved_threads();
  const auto outcome = net::download_resilient(
      static_cast<std::uint16_t>(p.port), p.positional[0], p.mode, tp);
  write_file(p.positional[1], outcome.data);
  out << p.positional[0] << ": " << outcome.stats.bytes_on_wire
      << " wire bytes -> " << outcome.data.size() << " bytes in "
      << outcome.attempts << " attempt"
      << (outcome.attempts == 1 ? "" : "s");
  if (outcome.resumed_bytes)
    out << " (resumed " << outcome.resumed_bytes << " bytes)";
  out << "\n";
  if (outcome.stats.trace_id) {
    obs::TraceContext ctx;
    ctx.trace_id = outcome.stats.trace_id;
    out << "trace: " << ctx.hex()
        << (outcome.stats.trace_echoed ? "" : " (not echoed by proxy)")
        << "\n";
  }
  if (!outcome.complete) {
    print_recovery(outcome.recovery, out);
    return 3;  // partial data on disk — distinct from clean (0)/error (2)
  }
  return 0;
}

int cmd_stats(const ArgParser& p, std::ostream& out) {
  if (!p.positional.empty()) throw Error("stats takes no positional args");
  if (p.port <= 0 || p.port > 0xffff)
    throw Error("stats needs --port of a running proxy");
  if (p.json && p.prom) throw Error("stats: pick one of --json / --prom");
  const std::string format = p.prom ? "prom" : p.json ? "json" : "text";
  // One snapshot by default; --watch repeats every --interval-ms until
  // --count snapshots have been printed (0 = until interrupted).
  const int reps = p.watch ? p.count : 1;
  std::string last;
  for (int i = 0; reps == 0 || i < reps; ++i) {
    if (i > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(p.interval_ms, 1)));
    last = net::fetch_stats(static_cast<std::uint16_t>(p.port), format);
    out << last;
    if (last.empty() || last.back() != '\n') out << "\n";
  }
  if (!p.out_path.empty()) write_file(p.out_path, as_bytes(last));
  return 0;
}

int cmd_corpus(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 1) throw Error("corpus needs OUTDIR");
  const std::filesystem::path dir(p.positional[0]);
  std::filesystem::create_directories(dir);
  for (const auto& entry : workload::table2()) {
    const Bytes data = workload::generate(entry, p.scale);
    write_file((dir / entry.name).string(), data);
    out << entry.name << ": " << data.size() << " bytes\n";
  }
  return 0;
}

}  // namespace

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  return Bytes(s.begin(), s.end());
}

void write_file(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw Error("short write: " + path);
}

namespace {

/// Write the trace/metrics files requested via --trace/--metrics (or
/// ECOMP_TRACE). Returns false (with a message on `err`) if a write
/// fails; telemetry is flushed even when the command itself failed, so
/// a crash-adjacent run still leaves its counters behind.
bool flush_obs_outputs(const ArgParser& p, std::ostream& err) {
  bool ok = true;
  if (!p.trace_path.empty()) {
    try {
      const std::string json = obs::Tracer::global().to_chrome_json();
      write_file(p.trace_path, as_bytes(json));
    } catch (const std::exception& e) {
      err << "error: writing trace: " << e.what() << "\n";
      ok = false;
    }
  }
  if (!p.metrics_path.empty()) {
    try {
#if defined(ECOMP_OBS_ENABLED)
      prof::publish_alloc_metrics();  // prof.alloc.* gauges ride along
#endif
      const std::string json = obs::Registry::global().to_json();
      write_file(p.metrics_path, as_bytes(json));
    } catch (const std::exception& e) {
      err << "error: writing metrics: " << e.what() << "\n";
      ok = false;
    }
  }
  return ok;
}

/// Reject an unwritable --trace/--metrics destination before any work
/// runs (exit 2), instead of doing the whole command and then losing
/// the telemetry at flush time. Returns an error message, or "" if the
/// path is writable. The probe opens in append mode so an existing
/// file's contents are untouched.
std::string probe_writable(const std::string& path) {
  std::ofstream probe(path, std::ios::binary | std::ios::app);
  if (!probe) return "cannot open for writing: " + path;
  return "";
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 1;
  }
  // `ecomp profile CMD ...` is CMD run under the profiler with the
  // self-time table printed afterwards; flags parse identically.
  std::vector<std::string> cmd_args = args;
  bool profile_wrapper = false;
  if (cmd_args[0] == "profile") {
    if (cmd_args.size() < 2) {
      err << "profile needs a command to run\n" << kUsage;
      return 1;
    }
    profile_wrapper = true;
    cmd_args.erase(cmd_args.begin());
  }
  ArgParser p;
  const std::string msg = p.parse(cmd_args, 1);
  if (!msg.empty()) {
    err << msg << "\n" << kUsage;
    return 1;
  }
  for (const std::string* path :
       {&p.trace_path, &p.metrics_path, &p.events_path, &p.out_path,
        &p.profile_path, &p.crash_dump_path}) {
    if (path->empty()) continue;
    const std::string werr = probe_writable(*path);
    if (!werr.empty()) {
      err << "error: " << werr << "\n";
      return 2;
    }
  }
  if (!p.trace_path.empty()) obs::Tracer::global().enable();
  if (!p.events_path.empty()) {
    try {
      obs::EventLog::global().open(p.events_path);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
  }
  const bool want_profile = profile_wrapper || !p.profile_path.empty();
#if defined(ECOMP_OBS_ENABLED)
  if (!p.crash_dump_path.empty())
    prof::install_crash_handler(p.crash_dump_path);
  if (want_profile) {
    prof::attach_flight_mirror();
    prof::ProfilerOptions popt;
    popt.hz = std::max(p.profile_hz, 1);
    if (!prof::Profiler::global().start(popt)) {
      err << "error: profiler already running\n";
      return 2;
    }
  }
#else
  if (want_profile)
    err << "warning: profiling is a no-op in this build (ECOMP_OBS=OFF)\n";
  if (!p.crash_dump_path.empty())
    err << "warning: crash dumps are a no-op in this build"
           " (ECOMP_OBS=OFF)\n";
#endif

  int code;
  try {
    const std::string& cmd = cmd_args[0];
    ECOMP_TRACE_SPAN("ecomp", "cli");
    if (cmd == "compress") {
      code = cmd_compress(p, out);
    } else if (cmd == "decompress") {
      code = cmd_decompress(p, out);
    } else if (cmd == "inspect") {
      code = cmd_inspect(p, out);
    } else if (cmd == "plan") {
      code = cmd_plan(p, out);
    } else if (cmd == "energy") {
      code = cmd_energy(p, out);
    } else if (cmd == "download") {
      code = cmd_download(p, out);
    } else if (cmd == "stats") {
      code = cmd_stats(p, out);
    } else if (cmd == "corpus") {
      code = cmd_corpus(p, out);
    } else {
      err << "unknown command: " << cmd << "\n" << kUsage;
      return 1;
    }
  } catch (const Error& e) {
#if defined(ECOMP_OBS_ENABLED)
    if (prof::crash_handler_installed()) prof::fatal_dump(e.what());
#endif
    err << "error: " << e.what() << "\n";
    code = 2;
  } catch (const std::exception& e) {
    // Corrupt input can surface as std::bad_alloc / length_error from a
    // lying size field before a codec's own validation catches it; that
    // is still "corrupt input", not a crash.
#if defined(ECOMP_OBS_ENABLED)
    if (prof::crash_handler_installed()) prof::fatal_dump(e.what());
#endif
    err << "error: corrupt or unreadable input (" << e.what() << ")\n";
    code = 2;
  }
#if defined(ECOMP_OBS_ENABLED)
  if (want_profile && prof::Profiler::global().running()) {
    const prof::ProfileReport report = prof::Profiler::global().stop();
    if (!p.profile_path.empty()) {
      try {
        prof::write_folded(p.profile_path, report);
      } catch (const std::exception& e) {
        err << "error: writing profile: " << e.what() << "\n";
        if (code == 0) code = 2;
      }
    }
    if (profile_wrapper) out << report.to_table();
  }
#endif
  if (!flush_obs_outputs(p, err) && code == 0) code = 2;
  // The event log is per-invocation: close it so repeated cli::run calls
  // in one process (tests) don't bleed events across runs.
  if (!p.events_path.empty()) obs::EventLog::global().close();
  return code;
}

}  // namespace ecomp::cli

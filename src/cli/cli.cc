#include "cli/cli.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <thread>

#include "compress/bwt_codec.h"
#include "compress/bz2_format.h"
#include "compress/container.h"
#include "compress/deflate.h"
#include "compress/gzip_format.h"
#include "compress/lzw.h"
#include "compress/selective.h"
#include "compress/z_format.h"
#include "compress/zlib_format.h"
#include "core/energy_model.h"
#include "core/interleave.h"
#include "core/planner.h"
#include "net/proxy.h"
#include "obs/events.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "sim/channel.h"
#include "sim/energy_ledger.h"
#include "sim/packet.h"
#include "workload/corpus.h"

#if defined(ECOMP_OBS_ENABLED)
#include "obs/rules.h"
#include "prof/alloc.h"
#include "prof/crash.h"
#include "prof/flight.h"
#include "prof/profiler.h"
#endif

namespace ecomp::cli {
namespace {

constexpr const char* kUsage =
    "usage:\n"
    "  ecomp compress   [-c deflate|lzw|bwt|selective|gz|Z|bz2|zz] [-l LEVEL]"
    " [-b BYTES]\n"
    "                   [--threads N] IN OUT\n"
    "  ecomp decompress [--threads N] IN OUT\n"
    "  ecomp inspect    [--salvage] IN [OUT]\n"
    "  ecomp plan       [-r 11|2] [--loss P] IN\n"
    "  ecomp energy     [-r 11|2] [-c CODEC] [--loss P] [--breakdown]"
    " [--json] IN\n"
    "  ecomp download   --port PORT [-m raw|full|selective] [--resume]\n"
    "                   [--max-retries N] [--timeout-ms MS] [--salvage]\n"
    "                   [--threads N] NAME OUT\n"
    "  ecomp stats      --port PORT [--json|--prom] [--watch]\n"
    "                   [--interval-ms MS] [--count N] [--out FILE]\n"
    "                   (--watch in text mode prints per-interval counter\n"
    "                   deltas and rates, not raw totals)\n"
    "  ecomp top        --port PORT [--interval-ms MS] [--count N]\n"
    "                   live terminal dashboard: sparklines over the\n"
    "                   proxy's monitored time series + recent alerts\n"
    "  ecomp monitor    --port PORT --rules FILE [--interval-ms MS]\n"
    "                   [--count N] [-r 11|2] [--loss P]\n"
    "                   headless watchdog over proxy stats; exits 4 on\n"
    "                   SLO breach (rule syntax: docs/MONITORING.md)\n"
    "  ecomp serve      [--port PORT] [--workers N] [--max-conns K]\n"
    "                   [--busy-retry-ms MS] [--drain-ms MS]\n"
    "                   [--io-timeout-ms MS] [--precompress] [-b BYTES]\n"
    "                   [--threads N] [--duration-ms MS] DIR\n"
    "                   serve DIR's files over the proxy protocol with a\n"
    "                   worker pool + admission control; K=0 never sheds\n"
    "                   (over K: BUSY <retry-after-ms>; past the load\n"
    "                   watermarks replies degrade to cheaper/no\n"
    "                   compression first — see docs/ROBUSTNESS.md)\n"
    "  ecomp corpus     [-s SCALE] OUTDIR\n"
    "  ecomp profile    COMMAND [args...]   run any command under the\n"
    "                   sampling profiler and print a self-time table\n"
    "parallelism (compress/decompress/download, selective containers):\n"
    "  --threads N      worker threads; 0 = one per hardware thread"
    " (default)\n"
    "observability (any command):\n"
    "  --trace FILE     write a Chrome trace-event JSON (Perfetto-loadable);\n"
    "                   the ECOMP_TRACE env var sets a default path\n"
    "  --metrics FILE   write the metrics registry snapshot as JSON\n"
    "  --events FILE    write a JSONL connection-lifecycle event log;\n"
    "                   the ECOMP_EVENTS env var sets a default path\n"
    "  --events-max-mb N  rotate the event log past N MB (default 64;\n"
    "                   0 = never; old generation kept as FILE.1)\n"
    "profiling (any command; see docs/PROFILING.md):\n"
    "  --profile FILE   sample this run and write collapsed stacks\n"
    "                   (flamegraph.pl / inferno-flamegraph compatible)\n"
    "  --profile-hz N   sampling rate for --profile / profile (default"
    " 997)\n"
    "  --crash-dump FILE install a fatal-signal handler that dumps the\n"
    "                   flight recorder; ECOMP_CRASH_DUMP sets a default\n";

struct ArgParser {
  std::vector<std::string> positional;
  std::string codec = "deflate";
  int level = 9;
  std::size_t block = compress::kDefaultBlockSize;
  double scale = 0.05;
  int rate = 11;
  std::string trace_path;    // --trace / ECOMP_TRACE
  std::string metrics_path;  // --metrics
  std::string events_path;   // --events / ECOMP_EVENTS
  std::string out_path;      // stats: --out snapshot destination
  std::string rules_path;    // monitor: --rules watchdog rule file
  int events_max_mb = 64;    // --events-max-mb rotation cap (0 = off)
  std::string profile_path;  // --profile folded-stack destination
  int profile_hz = 997;      // --profile-hz sampling rate
  std::string crash_dump_path;  // --crash-dump / ECOMP_CRASH_DUMP
  bool breakdown = false;    // energy: per-component ledger table
  bool json = false;         // energy/stats: machine-readable output
  bool prom = false;         // stats: Prometheus exposition
  bool watch = false;        // stats: repeat until --count is reached
  int interval_ms = 1000;    // stats: --watch polling period
  int count = 0;             // stats: snapshots under --watch (0 = forever)
  std::string mode = "selective";  // download: -m wire mode
  int port = 0;                    // download: --port
  int max_retries = 4;             // download: --max-retries
  std::uint32_t timeout_ms = 2000; // download: --timeout-ms
  bool resume = false;             // download: --resume
  bool salvage = false;            // download/inspect: --salvage
  int workers = 4;                 // serve: --workers pool size
  int max_conns = 0;               // serve: --max-conns admission cap
  int busy_retry_ms = 50;          // serve: BUSY retry-after hint
  int drain_ms = 5000;             // serve: --drain-ms stop() deadline
  int io_timeout_ms = 0;           // serve: per-conn socket deadline
  bool precompress = false;        // serve: build containers at startup
  int duration_ms = 0;             // serve: exit after MS (0 = forever)
  double loss = 0.0;               // plan/energy: --loss packet-loss rate
  int threads = 0;                 // --threads; 0 = auto (hw concurrency)

  /// The worker-thread count the commands actually use.
  unsigned resolved_threads() const {
    return threads <= 0 ? par::default_threads()
                        : static_cast<unsigned>(threads);
  }

  /// Returns empty string on success, or an error message.
  std::string parse(const std::vector<std::string>& args, std::size_t from) {
    for (std::size_t i = from; i < args.size(); ++i) {
      const std::string& a = args[i];
      auto value = [&](const char* flag) -> std::string {
        if (++i >= args.size())
          throw Error(std::string("missing value for ") + flag);
        return args[i];
      };
      try {
        if (a == "-c") {
          codec = value("-c");
        } else if (a == "-l") {
          level = std::stoi(value("-l"));
        } else if (a == "-b") {
          block = static_cast<std::size_t>(std::stoull(value("-b")));
        } else if (a == "-s") {
          scale = std::stod(value("-s"));
        } else if (a == "-r") {
          rate = std::stoi(value("-r"));
        } else if (a == "--trace") {
          trace_path = value("--trace");
        } else if (a == "--metrics") {
          metrics_path = value("--metrics");
        } else if (a == "--events") {
          events_path = value("--events");
        } else if (a == "--events-max-mb") {
          events_max_mb = std::stoi(value("--events-max-mb"));
        } else if (a == "--rules") {
          rules_path = value("--rules");
        } else if (a == "--out") {
          out_path = value("--out");
        } else if (a == "--profile") {
          profile_path = value("--profile");
        } else if (a == "--profile-hz") {
          profile_hz = std::stoi(value("--profile-hz"));
        } else if (a == "--crash-dump") {
          crash_dump_path = value("--crash-dump");
        } else if (a == "--breakdown") {
          breakdown = true;
        } else if (a == "--json") {
          json = true;
        } else if (a == "--prom") {
          prom = true;
        } else if (a == "--watch") {
          watch = true;
        } else if (a == "--interval-ms") {
          interval_ms = std::stoi(value("--interval-ms"));
        } else if (a == "--count") {
          count = std::stoi(value("--count"));
        } else if (a == "-m") {
          mode = value("-m");
        } else if (a == "--port") {
          port = std::stoi(value("--port"));
        } else if (a == "--max-retries") {
          max_retries = std::stoi(value("--max-retries"));
        } else if (a == "--timeout-ms") {
          timeout_ms =
              static_cast<std::uint32_t>(std::stoul(value("--timeout-ms")));
        } else if (a == "--workers") {
          workers = std::stoi(value("--workers"));
        } else if (a == "--max-conns") {
          max_conns = std::stoi(value("--max-conns"));
        } else if (a == "--busy-retry-ms") {
          busy_retry_ms = std::stoi(value("--busy-retry-ms"));
        } else if (a == "--drain-ms") {
          drain_ms = std::stoi(value("--drain-ms"));
        } else if (a == "--io-timeout-ms") {
          io_timeout_ms = std::stoi(value("--io-timeout-ms"));
        } else if (a == "--precompress") {
          precompress = true;
        } else if (a == "--duration-ms") {
          duration_ms = std::stoi(value("--duration-ms"));
        } else if (a == "--resume") {
          resume = true;
        } else if (a == "--salvage") {
          salvage = true;
        } else if (a == "--loss") {
          loss = std::stod(value("--loss"));
        } else if (a == "--threads") {
          threads = std::stoi(value("--threads"));
        } else if (!a.empty() && a[0] == '-') {
          return "unknown flag: " + a;
        } else {
          positional.push_back(a);
        }
      } catch (const std::exception& e) {
        return std::string("bad argument: ") + e.what();
      }
    }
    if (trace_path.empty())
      if (const char* env = std::getenv("ECOMP_TRACE")) trace_path = env;
    if (events_path.empty())
      if (const char* env = std::getenv("ECOMP_EVENTS")) events_path = env;
    if (crash_dump_path.empty())
      if (const char* env = std::getenv("ECOMP_CRASH_DUMP"))
        crash_dump_path = env;
    return "";
  }
};

std::uint16_t sniff_magic(ByteSpan data) {
  if (data.size() < 2) throw Error("input too short to identify");
  return static_cast<std::uint16_t>(data[0] | (data[1] << 8));
}

core::EnergyModel model_for_rate(int rate) {
  if (rate == 11) return core::EnergyModel::paper_11mbps();
  if (rate == 2)
    return core::EnergyModel::from_device(sim::DeviceModel::ipaq_2mbps());
  throw Error("rate must be 11 or 2 (Mb/s)");
}

int cmd_compress(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 2) throw Error("compress needs IN and OUT");
  const Bytes input = [&] {
    ECOMP_TRACE_SPAN("read_input", "cli");
    return read_file(p.positional[0]);
  }();
  ECOMP_COUNT_N("cli.bytes_in", input.size());
  ECOMP_TRACE_SPAN("compress", "cli");
  Bytes packed;
  if (p.codec == "gz") {
    packed = compress::gzip_compress(input, p.level);
  } else if (p.codec == "Z") {
    packed = compress::z_compress(input);
  } else if (p.codec == "bz2") {
    packed = compress::bz2_compress(input, p.level);
  } else if (p.codec == "zz") {
    packed = compress::zlib_compress(input, p.level);
  } else if (p.codec == "selective") {
    const auto model = core::EnergyModel::paper_11mbps();
    const auto res = compress::selective_compress(
        input, core::make_selective_policy(model), p.block, p.level,
        p.resolved_threads());
    packed = res.container;
    std::size_t raw = 0;
    for (const auto& b : res.blocks)
      if (!b.compressed) ++raw;
    out << "selective: " << res.blocks.size() << " blocks, " << raw
        << " shipped raw\n";
  } else {
    packed = compress::make_codec(p.codec)->compress(input);
  }
  ECOMP_COUNT_N("cli.bytes_out", packed.size());
  {
    ECOMP_TRACE_SPAN("write_output", "cli");
    write_file(p.positional[1], packed);
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "%zu -> %zu bytes (factor %.3f)\n",
                input.size(), packed.size(),
                packed.empty() ? 1.0
                               : static_cast<double>(input.size()) /
                                     static_cast<double>(packed.size()));
  out << buf;
  return 0;
}

int cmd_decompress(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 2) throw Error("decompress needs IN and OUT");
  const Bytes input = read_file(p.positional[0]);
  Bytes decoded;
  if (compress::looks_like_gzip(input)) {
    decoded = compress::gzip_decompress(input);
    write_file(p.positional[1], decoded);
    out << decoded.size() << " bytes restored (gzip member)\n";
    return 0;
  }
  if (compress::looks_like_z(input)) {
    decoded = compress::z_decompress(input);
    write_file(p.positional[1], decoded);
    out << decoded.size() << " bytes restored (compress .Z)\n";
    return 0;
  }
  if (compress::looks_like_bz2(input)) {
    decoded = compress::bz2_decompress(input);
    write_file(p.positional[1], decoded);
    out << decoded.size() << " bytes restored (bzip2 .bz2)\n";
    return 0;
  }
  if (compress::looks_like_zlib(input)) {
    decoded = compress::zlib_decompress(input);
    write_file(p.positional[1], decoded);
    out << decoded.size() << " bytes restored (zlib stream)\n";
    return 0;
  }
  switch (sniff_magic(input)) {
    case compress::kDeflateMagic:
      decoded = compress::DeflateCodec().decompress(input);
      break;
    case compress::kLzwMagic:
      decoded = compress::LzwCodec().decompress(input);
      break;
    case compress::kBwtMagic:
      decoded = compress::BwtCodec().decompress(input);
      break;
    case compress::kSelectiveMagic:
      decoded = compress::selective_decompress(input, p.resolved_threads());
      break;
    default:
      throw Error("unrecognized container magic");
  }
  write_file(p.positional[1], decoded);
  out << decoded.size() << " bytes restored\n";
  return 0;
}

/// Shared report printer for inspect --salvage and download --salvage.
void print_recovery(const compress::RecoveryReport& rep, std::ostream& out) {
  out << "salvage: " << rep.blocks_recovered << "/" << rep.blocks_total
      << " blocks recovered, " << rep.bytes_recovered << " bytes ("
      << rep.bytes_lost << " lost"
      << (rep.framing_truncated ? ", tail truncated" : "")
      << (rep.crc_ok ? ", crc ok" : ", crc FAILED") << ")\n";
}

int cmd_inspect(const ArgParser& p, std::ostream& out) {
  if (p.salvage) {
    // Tolerant path: never throws on damaged content; reports what a
    // best-effort decode can pull out of the container.
    if (p.positional.empty() || p.positional.size() > 2)
      throw Error("inspect --salvage needs IN [OUT]");
    const Bytes input = read_file(p.positional[0]);
    const auto sr = compress::selective_salvage(input);
    print_recovery(sr.report, out);
    if (p.positional.size() == 2) write_file(p.positional[1], sr.data);
    if (sr.report.complete()) return 0;
    return sr.report.bytes_recovered > 0 ? 3 : 2;
  }
  if (p.positional.size() != 1) throw Error("inspect needs IN");
  const Bytes input = read_file(p.positional[0]);
  const std::uint16_t magic = sniff_magic(input);
  const char* kind = magic == compress::kDeflateMagic     ? "deflate"
                     : magic == compress::kLzwMagic       ? "lzw"
                     : magic == compress::kBwtMagic       ? "bwt"
                     : magic == compress::kSelectiveMagic ? "selective"
                                                          : nullptr;
  if (!kind) throw Error("unrecognized container magic");
  const auto header = compress::read_header(input, magic);
  out << "container: " << kind << "\n"
      << "stored bytes: " << input.size() << "\n"
      << "original bytes: " << header.original_size << "\n"
      << "crc32: " << header.crc << "\n";
  if (magic == compress::kSelectiveMagic) {
    const auto infos = compress::selective_block_info(input);
    out << "blocks: " << infos.size() << "\n";
    for (std::size_t i = 0; i < infos.size(); ++i)
      out << "  block " << i << ": raw " << infos[i].raw_size << " stored "
          << infos[i].payload_size
          << (infos[i].compressed ? " (compressed)\n" : " (raw)\n");
    return 0;
  }
  // Raw containers: the header alone can't reveal payload truncation, so
  // verify by decoding (throws -> exit 2 on a damaged payload).
  const Bytes decoded =
      magic == compress::kDeflateMagic
          ? compress::DeflateCodec().decompress(input)
          : magic == compress::kLzwMagic
                ? compress::LzwCodec().decompress(input)
                : compress::BwtCodec().decompress(input);
  out << "payload: verified, " << decoded.size() << " bytes (crc ok)\n";
  return 0;
}

int cmd_plan(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 1) throw Error("plan needs IN");
  const Bytes input = read_file(p.positional[0]);
  // Loss shifts Eq. 6: every delivered MB costs 1/(1-q) transmissions,
  // so compression starts paying at smaller factors.
  const auto model = model_for_rate(p.rate).with_loss(p.loss);

  core::FileEstimate est;
  est.size_mb = static_cast<double>(input.size()) / 1e6;
  for (const auto& name : compress::codec_names()) {
    const auto codec = compress::make_codec(name);
    est.factors.emplace_back(name, core::estimate_factor(*codec, input));
  }
  const core::Plan plan = core::TransferPlanner(model).plan(est);

  out << "file: " << p.positional[0] << " (" << input.size() << " bytes)\n";
  if (p.loss > 0.0) {
    char lbuf[96];
    std::snprintf(lbuf, sizeof lbuf,
                  "channel: %.1f%% loss -> %.2f transmissions/packet\n",
                  100.0 * p.loss, 1.0 / (1.0 - p.loss));
    out << lbuf;
  }
  out << "sampled factors:";
  for (const auto& [name, f] : est.factors) {
    char buf[48];
    std::snprintf(buf, sizeof buf, " %s=%.2f", name.c_str(), f);
    out << buf;
  }
  out << "\n";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "advice: %s / %s  (predicted %.3f J vs raw %.3f J, saves "
                "%.1f%%)\n",
                plan.chosen.codec.empty() ? "no compression"
                                          : plan.chosen.codec.c_str(),
                core::to_string(plan.chosen.strategy),
                plan.chosen.predicted_energy_j, plan.baseline_energy_j,
                100.0 * plan.saving_fraction);
  out << buf;
  return 0;
}

int cmd_energy(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 1) throw Error("energy needs IN");
  const Bytes input = read_file(p.positional[0]);

  sim::DeviceModel device = sim::DeviceModel::ipaq_11mbps();
  if (p.rate == 2)
    device = sim::DeviceModel::ipaq_2mbps();
  else if (p.rate != 11)
    throw Error("rate must be 11 or 2 (Mb/s)");
  const sim::TransferSimulator simulator(device);

  // Selective containers replay the exact blocks on disk; anything else
  // is simulated from a sampled compression-factor estimate.
  sim::TransferResult result;
  std::string scenario;
  double original_mb = static_cast<double>(input.size()) / 1e6;
  std::vector<sim::BlockTransfer> blocks;
  if (input.size() >= 2 &&
      sniff_magic(input) == compress::kSelectiveMagic) {
    const auto infos = compress::selective_block_info(input);
    double raw_bytes = 0.0;
    for (const auto& b : infos) raw_bytes += static_cast<double>(b.raw_size);
    original_mb = raw_bytes / 1e6;
    blocks = core::to_block_transfers(infos);
    sim::TransferOptions opt;
    opt.interleave = true;
    result = core::simulate_decoded_stream(infos, simulator, p.codec, opt);
    scenario = "selective-replay(" + std::to_string(infos.size()) + " blocks)";
  } else {
    const auto codec = compress::make_codec(p.codec);
    const double factor =
        std::max(core::estimate_factor(*codec, input), 1e-9);
    blocks.push_back({original_mb, original_mb / factor, true});
    sim::TransferOptions opt;
    opt.interleave = true;
    result = simulator.download_compressed(original_mb, original_mb / factor,
                                           p.codec, opt);
    scenario = "interleaved(" + p.codec + ")";
  }
  sim::TransferResult raw = simulator.download_uncompressed(original_mb);

  if (p.loss > 0.0) {
    // Re-run both sides on the packet-level simulator over a bursty
    // channel at the requested average loss, so the comparison includes
    // the radio/retransmit energy neither closed form sees.
    const sim::PacketLevelSimulator psim(device);
    sim::PacketSimOptions popt;
    popt.interleave = true;
    popt.channel = sim::ChannelModel::gilbert_elliott_avg(p.loss);
    result = psim.download(blocks, p.codec, popt);
    sim::PacketSimOptions raw_opt;
    raw_opt.channel = popt.channel;
    // The uncompressed block never decodes, but the codec name must be
    // one the CpuModel knows.
    raw = psim.download({{original_mb, original_mb, false}}, p.codec,
                        raw_opt);
    char lbuf[64];
    std::snprintf(lbuf, sizeof lbuf, "+loss(%.3f)", p.loss);
    scenario += lbuf;
  }

  const auto ledger = sim::EnergyLedger::from_timeline(result.timeline);
  const std::string violation = ledger.validate(result.timeline);
  if (!violation.empty())
    throw Error("energy ledger invariant violated: " + violation);

  if (p.json) {
    // Emitted through the shared JsonWriter — the same serializer the
    // STATS surface uses, so quoting/number formats cannot diverge.
    obs::JsonWriter w;
    w.begin_object();
    w.key("scenario").value(scenario);
    w.key("rate_mbps").value(p.rate);
    w.key("codec").value(p.codec);
    w.key("original_mb").value(original_mb);
    w.key("raw_energy_j").value(raw.energy_j);
    w.key("ledger").raw(ledger.to_json());
    w.end_object();
    out << w.str() << "\n";
    return 0;
  }

  char buf[256];
  std::snprintf(buf, sizeof buf,
                "scenario: %s at %d Mb/s\n"
                "energy: %.4f J over %.3f s (raw download: %.4f J, "
                "saves %.1f%%)\n",
                scenario.c_str(), p.rate, ledger.total_energy_j(),
                ledger.total_time_s(), raw.energy_j,
                raw.energy_j > 0.0
                    ? 100.0 * (1.0 - ledger.total_energy_j() / raw.energy_j)
                    : 0.0);
  out << buf;
  if (p.breakdown) out << ledger.to_text();
  return 0;
}

int cmd_download(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 2) throw Error("download needs NAME and OUT");
  if (p.port <= 0 || p.port > 0xffff)
    throw Error("download needs --port of a running proxy");
  net::TransferPolicy tp;
  tp.max_retries = p.max_retries;
  tp.timeout_ms = p.timeout_ms;
  tp.resume = p.resume;
  tp.salvage = p.salvage;
  tp.threads = p.resolved_threads();
  const auto outcome = net::download_resilient(
      static_cast<std::uint16_t>(p.port), p.positional[0], p.mode, tp);
  write_file(p.positional[1], outcome.data);
  out << p.positional[0] << ": " << outcome.stats.bytes_on_wire
      << " wire bytes -> " << outcome.data.size() << " bytes in "
      << outcome.attempts << " attempt"
      << (outcome.attempts == 1 ? "" : "s");
  if (outcome.resumed_bytes)
    out << " (resumed " << outcome.resumed_bytes << " bytes)";
  out << "\n";
  if (outcome.stats.trace_id) {
    obs::TraceContext ctx;
    ctx.trace_id = outcome.stats.trace_id;
    out << "trace: " << ctx.hex()
        << (outcome.stats.trace_echoed ? "" : " (not echoed by proxy)")
        << "\n";
  }
  if (!outcome.complete) {
    print_recovery(outcome.recovery, out);
    return 3;  // partial data on disk — distinct from clean (0)/error (2)
  }
  return 0;
}

/// Pull every monotonically-growing count out of a STATS json payload:
/// the named top-level totals plus the whole registry counters object.
std::map<std::string, double> stats_counters(const obs::JsonValue& root) {
  std::map<std::string, double> cur;
  for (const char* key :
       {"connections_total", "requests_total", "errors_total",
        "faults_injected", "bytes_sent", "bytes_recv"})
    cur[key] = root.number_or(key, 0.0);
  if (const obs::JsonValue* c = root.find("counters"); c && c->is_object())
    for (const auto& [name, v] : c->object)
      if (v.is_number()) cur[name] = v.number;
  return cur;
}

int cmd_stats(const ArgParser& p, std::ostream& out) {
  if (!p.positional.empty()) throw Error("stats takes no positional args");
  if (p.port <= 0 || p.port > 0xffff)
    throw Error("stats needs --port of a running proxy");
  if (p.json && p.prom) throw Error("stats: pick one of --json / --prom");
  const std::string format = p.prom ? "prom" : p.json ? "json" : "text";
  // One snapshot by default; --watch repeats every --interval-ms until
  // --count snapshots have been printed (0 = until interrupted).
  const int reps = p.watch ? p.count : 1;
  // Watching raw totals repeats everything since proxy start and buries
  // the live signal, so text --watch reports what changed each interval
  // (counter deltas and per-second rates). The machine formats stay
  // verbatim snapshots so scrapers keep working under --watch.
  const bool deltas = p.watch && format == "text";
  std::string last;
  std::map<std::string, double> prev;
  double prev_uptime = 0.0;
  char buf[192];
  for (int i = 0; reps == 0 || i < reps; ++i) {
    if (i > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(p.interval_ms, 1)));
    if (!deltas) {
      last = net::fetch_stats(static_cast<std::uint16_t>(p.port), format);
      out << last;
      if (last.empty() || last.back() != '\n') out << "\n";
      out.flush();  // --watch output is commonly piped; keep it live
      continue;
    }
    last = net::fetch_stats(static_cast<std::uint16_t>(p.port), "json");
    const obs::JsonValue root = obs::parse_json(last);
    const double uptime = root.number_or("uptime_s", 0.0);
    std::map<std::string, double> cur = stats_counters(root);
    if (i == 0) {
      std::snprintf(buf, sizeof buf,
                    "t=%.1fs baseline: %zu counters (deltas follow)\n",
                    uptime, cur.size());
      out << buf;
    } else {
      const double dt = std::max(uptime - prev_uptime, 1e-9);
      bool any = false;
      for (const auto& [name, v] : cur) {
        const auto it = prev.find(name);
        const double d = v - (it == prev.end() ? 0.0 : it->second);
        if (d == 0.0) continue;
        any = true;
        std::snprintf(buf, sizeof buf, "t=%.1fs %s %+g (%.1f/s)\n", uptime,
                      name.c_str(), d, d / dt);
        out << buf;
      }
      if (!any) {
        std::snprintf(buf, sizeof buf, "t=%.1fs (idle)\n", uptime);
        out << buf;
      }
    }
    prev = std::move(cur);
    prev_uptime = uptime;
    out.flush();
  }
  if (!p.out_path.empty()) write_file(p.out_path, as_bytes(last));
  return 0;
}

/// Scale `vals` into the eight Unicode block heights. A flat series
/// renders as all-minimum rather than dividing by zero.
std::string sparkline(const std::vector<double>& vals) {
  static constexpr const char* kBlocks[8] = {"▁", "▂", "▃",
                                             "▄", "▅", "▆",
                                             "▇", "█"};
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (double v : vals) {
    if (!std::isfinite(v)) continue;
    lo = first ? v : std::min(lo, v);
    hi = first ? v : std::max(hi, v);
    first = false;
  }
  std::string s;
  for (double v : vals) {
    int idx = 0;
    if (std::isfinite(v) && hi > lo)
      idx = static_cast<int>((v - lo) / (hi - lo) * 7.999);
    s += kBlocks[std::clamp(idx, 0, 7)];
  }
  return s;
}

int cmd_top(const ArgParser& p, std::ostream& out) {
  if (!p.positional.empty()) throw Error("top takes no positional args");
  if (p.port <= 0 || p.port > 0xffff)
    throw Error("top needs --port of a running proxy");
  const std::uint16_t port = static_cast<std::uint16_t>(p.port);
  char buf[224];
  for (int frame = 0; p.count == 0 || frame < p.count; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(p.interval_ms, 1)));
      out << "\x1b[2J\x1b[H";  // clear + home; first frame scrolls normally
    }
    const obs::JsonValue stats =
        obs::parse_json(net::fetch_stats(port, "json"));
    const obs::JsonValue series =
        obs::parse_json(net::fetch_stats(port, "series"));
    std::string sha = "unknown";
    if (const obs::JsonValue* prov = stats.find("provenance"))
      if (const obs::JsonValue* s = prov->find("git_sha"); s && s->is_string())
        sha = s->string;
    std::snprintf(buf, sizeof buf,
                  "ecomp top — :%u  build %s  up %.1fs  conns %g  reqs %g"
                  "  errs %g\n",
                  port, sha.c_str(), stats.number_or("uptime_s", 0.0),
                  stats.number_or("connections_active", 0.0),
                  stats.number_or("requests_total", 0.0),
                  stats.number_or("errors_total", 0.0));
    out << buf;
    const obs::JsonValue* map = series.find("series");
    if (!map || !map->is_object() || map->object.empty()) {
      out << "(no series — proxy built or started without monitoring)\n";
    } else {
      for (const auto& [name, s] : map->object) {
        std::vector<double> vals;
        // Tier 0 = raw sampler cadence; newest samples come last.
        if (const obs::JsonValue* tiers = s.find("tiers");
            tiers && tiers->is_array() && !tiers->array.empty()) {
          const obs::JsonValue* samp = tiers->array[0].find("samples");
          if (samp && samp->is_array())
            for (const obs::JsonValue& pair : samp->array)
              if (pair.is_array() && pair.array.size() == 2)
                vals.push_back(pair.array[1].number);
        }
        if (vals.size() > 48)
          vals.erase(vals.begin(),
                     vals.end() - static_cast<std::ptrdiff_t>(48));
        std::snprintf(buf, sizeof buf, "%-34s %12.4g  ", name.c_str(),
                      s.number_or("last", 0.0));
        out << buf << sparkline(vals) << "\n";
      }
    }
    const obs::JsonValue* mon = stats.find("monitor");
    const obs::JsonValue* alerts = mon ? mon->find("alerts") : nullptr;
    if (alerts && alerts->is_array() && !alerts->array.empty()) {
      out << "ALERTS (" << alerts->array.size() << " recent, "
          << (mon ? mon->number_or("alerts_total", 0.0) : 0.0)
          << " total)\n";
      for (const obs::JsonValue& a : alerts->array) {
        const obs::JsonValue* rule = a.find("rule");
        const obs::JsonValue* detail = a.find("detail");
        out << "  ! " << (rule && rule->is_string() ? rule->string : "?")
            << "  " << (detail && detail->is_string() ? detail->string : "")
            << "\n";
      }
    } else {
      out << "no alerts\n";
    }
    out.flush();
  }
  return 0;
}

#if defined(ECOMP_OBS_ENABLED)

int cmd_monitor(const ArgParser& p, std::ostream& out) {
  if (!p.positional.empty()) throw Error("monitor takes no positional args");
  if (p.port <= 0 || p.port > 0xffff)
    throw Error("monitor needs --port of a running proxy");
  if (p.rules_path.empty()) throw Error("monitor needs --rules FILE");
  // Symbolic thresholds resolve against the paper's energy model here,
  // where the model lives: "eq6" is the raw-download J/MB line for the
  // selected -r rate, "eq6@L" shifts it for expected loss L (--loss is
  // the default), "eq6*M" adds headroom margin M. Both suffixes compose
  // as eq6@0.05*1.15.
  const obs::ThresholdResolver resolve = [&](const std::string& tok) {
    if (tok.rfind("eq6", 0) != 0)
      throw Error("monitor: unknown threshold token: " + tok);
    double loss = p.loss, margin = 1.0;
    std::string rest = tok.substr(3);
    std::size_t end = 0;
    if (!rest.empty() && rest[0] == '@') {
      loss = std::stod(rest.substr(1), &end);
      rest = rest.substr(1 + end);
    }
    if (!rest.empty() && rest[0] == '*') {
      margin = std::stod(rest.substr(1), &end);
      rest = rest.substr(1 + end);
    }
    if (!rest.empty()) throw Error("monitor: bad threshold token: " + tok);
    return model_for_rate(p.rate).with_loss(loss).raw_j_per_mb(1.0) * margin;
  };
  const Bytes rules_text = read_file(p.rules_path);
  obs::Watchdog dog;
  for (obs::Rule& r : obs::parse_rules(
           std::string(rules_text.begin(), rules_text.end()), resolve))
    dog.add_rule(std::move(r));
  if (dog.rules().empty()) throw Error("monitor: no rules in " + p.rules_path);

  // Client-side mirror of the in-proxy sampler: each poll folds the
  // STATS payload into a local SeriesStore (counters become .rate
  // series, histograms expose .p50/.p99/.rate, monitor gauges pass
  // through verbatim) and the watchdog evaluates the new samples.
  obs::SeriesStore store;
  std::map<std::string, double> prev;
  double prev_uptime = -1.0;
  std::uint64_t fired_total = 0;
  char buf[192];
  const std::uint16_t port = static_cast<std::uint16_t>(p.port);
  std::vector<obs::Alert> fired;
  int polls = 0;
  for (int i = 0; p.count == 0 || i < p.count; ++i, ++polls) {
    if (i > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(p.interval_ms, 1)));
    const obs::JsonValue root =
        obs::parse_json(net::fetch_stats(port, "json"));
    // Series time is the *server's* clock so rule windows survive slow
    // polls; a restarted proxy would run time backwards, so clamp.
    double t = root.number_or("uptime_s", 0.0);
    if (t < prev_uptime) t = prev_uptime;
    const std::map<std::string, double> cur = stats_counters(root);
    if (prev_uptime >= 0.0) {
      const double dt = std::max(t - prev_uptime, 1e-9);
      for (const auto& [name, v] : cur) {
        const auto it = prev.find(name);
        const double base = it == prev.end() ? 0.0 : it->second;
        store.append(name + ".rate", t, v >= base ? (v - base) / dt : 0.0);
      }
    }
    if (const obs::JsonValue* h = root.find("histograms");
        h && h->is_object())
      for (const auto& [name, hv] : h->object) {
        store.append(name + ".p50", t, hv.number_or("p50", 0.0));
        store.append(name + ".p99", t, hv.number_or("p99", 0.0));
        store.append(name + ".rate", t, hv.number_or("rate_per_s", 0.0));
      }
    if (const obs::JsonValue* mon = root.find("monitor"))
      if (const obs::JsonValue* g = mon->find("gauges"); g && g->is_object())
        for (const auto& [name, v] : g->object)
          if (v.is_number()) store.append(name, t, v.number);
    store.append("connections_active", t,
                 root.number_or("connections_active", 0.0));
    prev = cur;
    prev_uptime = t;

    fired.clear();
    dog.evaluate(store, &fired);
    for (const obs::Alert& a : fired) {
      std::snprintf(buf, sizeof buf, "alert %s %s\n", a.rule.c_str(),
                    a.detail.c_str());
      out << buf;
    }
    fired_total += fired.size();
    out.flush();
    // With no --count the monitor is a tripwire: run until something
    // breaks, then let the exit code wake the wrapper script.
    if (p.count == 0 && fired_total > 0) {
      ++polls;
      break;
    }
  }
  std::snprintf(buf, sizeof buf, "monitor: %llu alert(s) in %d poll(s)\n",
                static_cast<unsigned long long>(fired_total), polls);
  out << buf;
  return fired_total > 0 ? 4 : 0;
}

#else  // !ECOMP_OBS_ENABLED

int cmd_monitor(const ArgParser&, std::ostream&) {
  // The watchdog/series machinery is compiled out (the OFF-build link
  // gate forbids its symbols), so this is a hard error, not a warning.
  throw Error("monitor requires an ECOMP_OBS=ON build");
}

#endif

int cmd_serve(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 1) throw Error("serve needs DIR");
  if (p.port < 0 || p.port > 0xffff) throw Error("serve: bad --port");
  if (p.workers <= 0) throw Error("serve: --workers must be >= 1");
  if (p.max_conns < 0) throw Error("serve: --max-conns must be >= 0");

  net::FileStore store;
  std::size_t n_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(p.positional[0])) {
    if (!entry.is_regular_file()) continue;
    store.put(entry.path().filename().string(),
              read_file(entry.path().string()));
    ++n_files;
  }
  if (n_files == 0) throw Error("serve: no regular files in " +
                                p.positional[0]);

  net::ProxyOptions opt;
  opt.port = static_cast<std::uint16_t>(p.port);
  opt.block_size = p.block;
  opt.precompress = p.precompress;
  opt.threads = p.resolved_threads();
  opt.workers = static_cast<unsigned>(p.workers);
  opt.max_conns = static_cast<std::size_t>(p.max_conns);
  opt.busy_retry_ms = static_cast<std::uint32_t>(std::max(p.busy_retry_ms, 0));
  opt.drain_deadline_ms = static_cast<std::uint32_t>(std::max(p.drain_ms, 0));
  opt.io_timeout_ms = static_cast<std::uint32_t>(std::max(p.io_timeout_ms, 0));
  net::ProxyServer server(std::move(store), compress::SelectivePolicy::always(),
                          opt);

  out << "serving " << n_files << " files on port " << server.port() << " ("
      << p.workers << " workers, ";
  if (p.max_conns)
    out << "max " << p.max_conns << " conns";
  else
    out << "unbounded admission";
  out << (p.precompress ? ", precompressed" : "") << ")\n";
  out.flush();

  // Foreground serve loop: --duration-ms bounds it (tests/benches); 0
  // runs until the process is interrupted.
  const auto t0 = std::chrono::steady_clock::now();
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (p.duration_ms > 0 &&
        std::chrono::steady_clock::now() - t0 >=
            std::chrono::milliseconds(p.duration_ms))
      break;
  }
  server.stop();
  const obs::StatsSnapshot s = server.stats();
  out << "served " << s.requests_total << " requests ("
      << s.errors_total << " errors";
  if (s.admission.present)
    out << ", " << s.admission.busy_total << " shed, "
        << s.admission.degraded_level_total + s.admission.degraded_raw_total
        << " degraded";
  out << ")\n";
  return 0;
}

int cmd_corpus(const ArgParser& p, std::ostream& out) {
  if (p.positional.size() != 1) throw Error("corpus needs OUTDIR");
  const std::filesystem::path dir(p.positional[0]);
  std::filesystem::create_directories(dir);
  for (const auto& entry : workload::table2()) {
    const Bytes data = workload::generate(entry, p.scale);
    write_file((dir / entry.name).string(), data);
    out << entry.name << ": " << data.size() << " bytes\n";
  }
  return 0;
}

}  // namespace

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  return Bytes(s.begin(), s.end());
}

void write_file(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw Error("short write: " + path);
}

namespace {

/// Write the trace/metrics files requested via --trace/--metrics (or
/// ECOMP_TRACE). Returns false (with a message on `err`) if a write
/// fails; telemetry is flushed even when the command itself failed, so
/// a crash-adjacent run still leaves its counters behind.
bool flush_obs_outputs(const ArgParser& p, std::ostream& err) {
  bool ok = true;
  if (!p.trace_path.empty()) {
    try {
      const std::string json = obs::Tracer::global().to_chrome_json();
      write_file(p.trace_path, as_bytes(json));
    } catch (const std::exception& e) {
      err << "error: writing trace: " << e.what() << "\n";
      ok = false;
    }
  }
  if (!p.metrics_path.empty()) {
    try {
#if defined(ECOMP_OBS_ENABLED)
      prof::publish_alloc_metrics();  // prof.alloc.* gauges ride along
#endif
      const std::string json = obs::Registry::global().to_json();
      write_file(p.metrics_path, as_bytes(json));
    } catch (const std::exception& e) {
      err << "error: writing metrics: " << e.what() << "\n";
      ok = false;
    }
  }
  return ok;
}

/// Reject an unwritable --trace/--metrics destination before any work
/// runs (exit 2), instead of doing the whole command and then losing
/// the telemetry at flush time. Returns an error message, or "" if the
/// path is writable. The probe opens in append mode so an existing
/// file's contents are untouched.
std::string probe_writable(const std::string& path) {
  std::ofstream probe(path, std::ios::binary | std::ios::app);
  if (!probe) return "cannot open for writing: " + path;
  return "";
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 1;
  }
  // `ecomp profile CMD ...` is CMD run under the profiler with the
  // self-time table printed afterwards; flags parse identically.
  std::vector<std::string> cmd_args = args;
  bool profile_wrapper = false;
  if (cmd_args[0] == "profile") {
    if (cmd_args.size() < 2) {
      err << "profile needs a command to run\n" << kUsage;
      return 1;
    }
    profile_wrapper = true;
    cmd_args.erase(cmd_args.begin());
  }
  ArgParser p;
  const std::string msg = p.parse(cmd_args, 1);
  if (!msg.empty()) {
    err << msg << "\n" << kUsage;
    return 1;
  }
  for (const std::string* path :
       {&p.trace_path, &p.metrics_path, &p.events_path, &p.out_path,
        &p.profile_path, &p.crash_dump_path}) {
    if (path->empty()) continue;
    const std::string werr = probe_writable(*path);
    if (!werr.empty()) {
      err << "error: " << werr << "\n";
      return 2;
    }
  }
  if (!p.trace_path.empty()) obs::Tracer::global().enable();
  if (!p.events_path.empty()) {
    try {
      obs::EventLog::global().open(p.events_path);
      obs::EventLog::global().set_max_bytes(
          p.events_max_mb <= 0
              ? 0
              : static_cast<std::uint64_t>(p.events_max_mb) << 20);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
  }
  const bool want_profile = profile_wrapper || !p.profile_path.empty();
#if defined(ECOMP_OBS_ENABLED)
  if (!p.crash_dump_path.empty())
    prof::install_crash_handler(p.crash_dump_path);
  if (want_profile) {
    prof::attach_flight_mirror();
    prof::ProfilerOptions popt;
    popt.hz = std::max(p.profile_hz, 1);
    if (!prof::Profiler::global().start(popt)) {
      err << "error: profiler already running\n";
      return 2;
    }
  }
#else
  if (want_profile)
    err << "warning: profiling is a no-op in this build (ECOMP_OBS=OFF)\n";
  if (!p.crash_dump_path.empty())
    err << "warning: crash dumps are a no-op in this build"
           " (ECOMP_OBS=OFF)\n";
#endif

  int code;
  try {
    const std::string& cmd = cmd_args[0];
    ECOMP_TRACE_SPAN("ecomp", "cli");
    if (cmd == "compress") {
      code = cmd_compress(p, out);
    } else if (cmd == "decompress") {
      code = cmd_decompress(p, out);
    } else if (cmd == "inspect") {
      code = cmd_inspect(p, out);
    } else if (cmd == "plan") {
      code = cmd_plan(p, out);
    } else if (cmd == "energy") {
      code = cmd_energy(p, out);
    } else if (cmd == "download") {
      code = cmd_download(p, out);
    } else if (cmd == "stats") {
      code = cmd_stats(p, out);
    } else if (cmd == "top") {
      code = cmd_top(p, out);
    } else if (cmd == "monitor") {
      code = cmd_monitor(p, out);
    } else if (cmd == "serve") {
      code = cmd_serve(p, out);
    } else if (cmd == "corpus") {
      code = cmd_corpus(p, out);
    } else {
      err << "unknown command: " << cmd << "\n" << kUsage;
      return 1;
    }
  } catch (const Error& e) {
#if defined(ECOMP_OBS_ENABLED)
    if (prof::crash_handler_installed()) prof::fatal_dump(e.what());
#endif
    err << "error: " << e.what() << "\n";
    code = 2;
  } catch (const std::exception& e) {
    // Corrupt input can surface as std::bad_alloc / length_error from a
    // lying size field before a codec's own validation catches it; that
    // is still "corrupt input", not a crash.
#if defined(ECOMP_OBS_ENABLED)
    if (prof::crash_handler_installed()) prof::fatal_dump(e.what());
#endif
    err << "error: corrupt or unreadable input (" << e.what() << ")\n";
    code = 2;
  }
#if defined(ECOMP_OBS_ENABLED)
  if (want_profile && prof::Profiler::global().running()) {
    const prof::ProfileReport report = prof::Profiler::global().stop();
    if (!p.profile_path.empty()) {
      try {
        prof::write_folded(p.profile_path, report);
      } catch (const std::exception& e) {
        err << "error: writing profile: " << e.what() << "\n";
        if (code == 0) code = 2;
      }
    }
    if (profile_wrapper) out << report.to_table();
  }
#endif
  if (!flush_obs_outputs(p, err) && code == 0) code = 2;
  // The event log is per-invocation: close it so repeated cli::run calls
  // in one process (tests) don't bleed events across runs.
  if (!p.events_path.empty()) obs::EventLog::global().close();
  return code;
}

}  // namespace ecomp::cli

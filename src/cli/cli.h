// ecomp command-line tool, as a library so tests can drive it directly.
//
//   ecomp compress   [-c deflate|lzw|bwt|selective] [-l N] [-b BYTES] IN OUT
//   ecomp decompress IN OUT               (sniffs the container magic)
//   ecomp inspect    IN                   (container metadata, block table)
//   ecomp plan       [-r 11|2] IN         (factor estimate + energy advice)
//   ecomp corpus     [-s SCALE] OUTDIR    (materialize the Table 2 corpus)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace ecomp::cli {

/// Entry point; argv-style args WITHOUT the program name. Returns the
/// process exit code (0 success, 1 usage error, 2 runtime failure).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// File helpers (throw ecomp::Error on I/O failure).
Bytes read_file(const std::string& path);
void write_file(const std::string& path, ByteSpan data);

}  // namespace ecomp::cli

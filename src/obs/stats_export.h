// obs::StatsSnapshot — the proxy STATS surface's payload, plus its three
// renderers (human text, JSON via the shared JsonWriter, and Prometheus
// text exposition). net::ProxyServer fills one of these per STATS
// request; `ecomp stats` fetches and re-renders the same shapes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/provenance.h"

namespace ecomp::obs {

/// Rendering formats accepted by the STATS verb and `ecomp stats`.
enum class StatsFormat { Text, Json, Prometheus };

/// Parse "text"|"json"|"prom" (defaulting to Text on anything else).
StatsFormat parse_stats_format(const std::string& s);

struct HistStat {
  std::string name;
  SlidingHistogram::Snapshot snap;
};

/// One component row of the prof allocation-accounting table.
struct ProfAllocStat {
  std::string component;
  std::uint64_t bytes = 0;   ///< total bytes ever booked
  std::uint64_t allocs = 0;  ///< booking events
  std::uint64_t peak = 0;    ///< high-water mark of live bytes
};

/// The STATS PROF section: profiler/allocation/flight-recorder state.
/// `present` is false in ECOMP_OBS=OFF builds (section omitted).
struct ProfStats {
  bool present = false;
  std::int64_t rss_peak_kb = -1;          ///< VmHWM; -1 when unknown
  std::uint64_t samples_lifetime = 0;     ///< sampler stacks ever captured
  bool sampler_active = false;            ///< ITIMER_PROF currently armed
  std::uint64_t flight_recorded = 0;      ///< events seen by the recorder
  std::vector<ProfAllocStat> alloc;       ///< sorted by component
};

/// One alert row of the STATS ALERTS section (mirrors obs::Alert; kept
/// separate so stats_export does not pull in the rules layer).
struct AlertStat {
  std::string rule;
  std::string series;
  std::string detail;
  double t_s = 0.0;
  double value = 0.0;
  double threshold = 0.0;
};

/// The STATS ADMISSION section: worker-pool admission control and the
/// graceful-degradation ladder (schema 3). `present` is false when the
/// proxy runs with unbounded admission (max_conns=0) — section omitted.
struct AdmissionStats {
  bool present = false;
  std::uint64_t workers = 0;    ///< worker-pool size
  std::uint64_t capacity = 0;   ///< max concurrent admitted connections
  std::uint64_t depth = 0;      ///< connections admitted right now
  std::uint64_t busy_total = 0; ///< connections shed with BUSY
  std::uint64_t degraded_level_total = 0;  ///< served at reduced level
  std::uint64_t degraded_raw_total = 0;    ///< served uncompressed
};

/// The STATS CACHE section: shared single-flight container cache
/// (schema 3). `present` is false when the cache is disabled.
struct CacheStats {
  bool present = false;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< lookups that became the builder
  std::uint64_t waits = 0;      ///< lookups that joined an in-flight build
  std::uint64_t builds = 0;     ///< builds published into the cache
  std::uint64_t evictions = 0;  ///< entries pushed out by capacity
  std::uint64_t bytes = 0;      ///< resident payload bytes
  std::uint64_t entries = 0;    ///< resident entry count
};

/// The STATS MONITOR section: continuous-monitoring state from
/// obs::Monitor. `present` is false when no monitor is attached
/// (ECOMP_OBS=OFF builds, or monitoring disabled) — section omitted.
struct MonitorStats {
  bool present = false;
  std::uint64_t ticks = 0;         ///< sampler cycles completed
  std::uint64_t alerts_total = 0;  ///< alerts fired since start
  /// Newest value of every tracked series, name-sorted.
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<AlertStat> alerts;   ///< recent alerts, oldest first
};

/// Point-in-time view of one proxy instance. Counters and histograms
/// are kept sorted by name so every rendering is byte-stable across
/// identical states.
struct StatsSnapshot {
  /// STATS payload schema version: bumped to 2 when provenance and the
  /// MONITOR/ALERTS sections were added, to 3 for the ADMISSION/CACHE
  /// sections (fields are append-only).
  int schema = 3;
  double uptime_s = 0.0;
  std::uint64_t connections_active = 0;
  std::uint64_t connections_total = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t errors_total = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  double energy_served_j = 0.0;  ///< ledgered transfer energy, joules

  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< sorted
  std::vector<HistStat> histograms;                             ///< sorted
  ProfStats prof;        ///< PROF section (omitted unless prof.present)
  AdmissionStats admission;  ///< ADMISSION (omitted unless present)
  CacheStats cache;          ///< CACHE (omitted unless present)
  Provenance provenance; ///< build/run identity (satellite: stats schema)
  MonitorStats monitor;  ///< MONITOR/ALERTS (omitted unless present)
};

/// One JSON object (see docs/OBSERVABILITY.md for the schema).
std::string stats_to_json(const StatsSnapshot& s);
/// Aligned human-readable lines for the terminal.
std::string stats_to_text(const StatsSnapshot& s);
/// Prometheus text exposition: dotted names become underscored metric
/// names under the `ecomp_` prefix; quantiles become labeled samples.
std::string stats_to_prometheus(const StatsSnapshot& s);
/// Dispatch on `format`.
std::string render_stats(const StatsSnapshot& s, StatsFormat format);

}  // namespace ecomp::obs

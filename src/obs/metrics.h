// obs::Registry — process-wide named counters, gauges, and fixed-bucket
// histograms behind lock-free atomics. Hot paths record through the
// ECOMP_COUNT*/ECOMP_OBSERVE macros (a static reference caches the
// registry lookup, so steady-state cost is one relaxed atomic op); with
// the CMake option ECOMP_OBS=OFF the macros compile to true no-ops and
// `kObsEnabled` lets call sites `if constexpr` away their bookkeeping.
//
// Naming scheme: lowercase dotted paths, `<layer>.<thing>[_<unit>]` —
// e.g. "lz77.match_probes", "net.bytes_sent" (see docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace ecomp::obs {

#if defined(ECOMP_OBS_ENABLED)
inline constexpr bool kObsEnabled = true;
#else
inline constexpr bool kObsEnabled = false;
#endif

/// Monotonically increasing event count. Thread-safe.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written signed value (e.g. a configured block size). Thread-safe.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i],
/// plus one overflow bucket. Bounds are set at registration and never
/// change, so observation is a bounds scan + one relaxed increment.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  /// Bulk-merge locally accumulated buckets (must match bucket_count()).
  /// Lets inner loops count into a plain array and flush once.
  void merge_buckets(const std::uint64_t* counts, std::size_t n, double sum);

  std::size_t bucket_count() const { return counts_.size(); }  // bounds+1
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_values() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  void reset();

 private:
  void add_sum(double d);

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double, CAS-accumulated
};

/// Power-of-two bounds {1, 2, 4, ..., 2^(n-1)} — the default shape for
/// length-like distributions (chain lengths, block sizes).
std::vector<double> pow2_bounds(int n);

/// Index into a pow2_bounds(n) histogram's local bucket array for value
/// v (the first bucket whose bound is >= v; last bucket is overflow).
inline std::size_t pow2_bucket(std::uint64_t v, int n) {
  if (v <= 1) return 0;
  int b = 64 - std::countl_zero(v - 1);  // ceil(log2(v))
  return b < n ? static_cast<std::size_t>(b) : static_cast<std::size_t>(n);
}

/// Named-instrument registry. Instruments are created on first use and
/// live for the life of the process; reset() zeroes values but never
/// invalidates references, so the macros' cached statics stay valid.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies on first registration only (ascending).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// Sliding-window quantile histogram (see obs/histogram.h). `opt`
  /// applies on first registration only.
  SlidingHistogram& sliding(std::string_view name,
                            SlidingHistogram::Options opt = {});

  /// Zero every instrument (benches diff before/after a workload).
  void reset();

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — histograms
  /// carry bounds, bucket counts, count and sum.
  std::string to_json() const;
  /// Flat `name value` lines, sorted, for terminal diffing.
  std::string to_text() const;

  /// Counter name -> value snapshot (programmatic diffing in tests).
  std::map<std::string, std::uint64_t> counter_values() const;

  /// Name-sorted snapshots of every sliding histogram (the STATS
  /// surface merges these with its instance histograms).
  std::vector<std::pair<std::string, SlidingHistogram::Snapshot>>
  sliding_snapshots() const;

  // Allocation-free iteration (obs::Monitor's sample path): the
  // callback runs under the registry mutex per instrument, name-sorted.
  // Callbacks must not call back into the registry.
  void visit_counters(
      const std::function<void(std::string_view, std::uint64_t)>& fn) const;
  void visit_gauges(
      const std::function<void(std::string_view, std::int64_t)>& fn) const;
  void visit_sliding(
      const std::function<void(std::string_view, const SlidingHistogram&)>& fn)
      const;

 private:
  Registry() = default;

  mutable std::mutex mu_;  // guards the maps; instruments are atomic
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<SlidingHistogram>, std::less<>>
      sliding_;
};

}  // namespace ecomp::obs

// Recording macros. The static reference makes the map lookup a
// once-per-callsite cost; afterwards each hit is one relaxed atomic.
#if defined(ECOMP_OBS_ENABLED)
#define ECOMP_COUNT_N(name, n)                                       \
  do {                                                               \
    static ::ecomp::obs::Counter& ecomp_obs_c_ =                     \
        ::ecomp::obs::Registry::global().counter(name);              \
    ecomp_obs_c_.add(static_cast<std::uint64_t>(n));                 \
  } while (0)
#define ECOMP_COUNT(name) ECOMP_COUNT_N(name, 1)
#define ECOMP_GAUGE_SET(name, v)                                     \
  do {                                                               \
    static ::ecomp::obs::Gauge& ecomp_obs_g_ =                       \
        ::ecomp::obs::Registry::global().gauge(name);                \
    ecomp_obs_g_.set(static_cast<std::int64_t>(v));                  \
  } while (0)
#define ECOMP_OBSERVE(name, bounds, v)                               \
  do {                                                               \
    static ::ecomp::obs::Histogram& ecomp_obs_h_ =                   \
        ::ecomp::obs::Registry::global().histogram(name, bounds);    \
    ecomp_obs_h_.observe(static_cast<double>(v));                    \
  } while (0)
#define ECOMP_SLIDING_OBSERVE(name, v)                               \
  do {                                                               \
    static ::ecomp::obs::SlidingHistogram& ecomp_obs_sh_ =           \
        ::ecomp::obs::Registry::global().sliding(name);              \
    ecomp_obs_sh_.record(static_cast<std::uint64_t>(v));             \
  } while (0)
#define ECOMP_OBS_CONCAT2_(a, b) a##b
#define ECOMP_OBS_CONCAT2(a, b) ECOMP_OBS_CONCAT2_(a, b)
/// Scoped timer: records the enclosing block's duration (µs) into the
/// named sliding histogram. Declares locals — use at block scope.
#define ECOMP_SLIDING_TIMER(name)                                    \
  static ::ecomp::obs::SlidingHistogram&                             \
      ECOMP_OBS_CONCAT2(ecomp_obs_shr_, __LINE__) =                  \
          ::ecomp::obs::Registry::global().sliding(name);            \
  ::ecomp::obs::SlidingTimer ECOMP_OBS_CONCAT2(ecomp_obs_sht_,       \
                                               __LINE__)(            \
      ECOMP_OBS_CONCAT2(ecomp_obs_shr_, __LINE__))
#else
// `sizeof` keeps the operands syntactically used (no -Wunused noise)
// without evaluating them.
#define ECOMP_COUNT_N(name, n) do { (void)sizeof(name); (void)sizeof(n); } while (0)
#define ECOMP_COUNT(name) do { (void)sizeof(name); } while (0)
#define ECOMP_GAUGE_SET(name, v) do { (void)sizeof(name); (void)sizeof(v); } while (0)
#define ECOMP_OBSERVE(name, bounds, v) \
  do { (void)sizeof(name); (void)sizeof(v); } while (0)
#define ECOMP_SLIDING_OBSERVE(name, v) \
  do { (void)sizeof(name); (void)sizeof(v); } while (0)
#define ECOMP_SLIDING_TIMER(name) do { (void)sizeof(name); } while (0)
#endif

// obs::SlidingHistogram — log-bucketed (HdrHistogram-style) value
// recorder with quantile queries over a sliding time window, built for
// live serving telemetry: every proxy request, codec invocation, and
// resilient-transfer attempt records its latency (or size) here, and
// the STATS surface reads p50/p90/p99/p999 + rate out the other side.
//
// Shape:
//   * Log-linear buckets: values 0..15 map 1:1; above that each octave
//     splits into 2^kSubBits = 8 sub-buckets, so quantile estimates are
//     within kMaxRelativeError = 12.5% of the true value (the "bucket
//     error" the tests and acceptance criteria budget for).
//   * Sliding window: a ring of `slices` time slices covering
//     `window_s` seconds. Recording claims/clears the current slice's
//     slot lazily (epoch CAS), queries merge the slices still inside
//     the window. An all-time total is kept alongside so snapshots stay
//     meaningful after the window drains.
//   * Lock-free shards: writers pick a shard by thread, so concurrent
//     recorders touch disjoint cache lines; every access is a relaxed
//     atomic (TSan-clean by construction). A recorder racing a slice
//     rotation can mis-file a handful of counts into the just-cleared
//     slice — bounded, harmless fuzz; totals are exact.
//
// The class is always compiled (OFF builds can still use it directly);
// the ECOMP_SLIDING_* macros in obs/metrics.h are what hot paths use
// and what ECOMP_OBS=OFF turns into no-ops.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace ecomp::obs {

class SlidingHistogram {
 public:
  /// Sub-bucket bits per octave: 8 sub-buckets, <= 12.5% bucket error.
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Worst-case relative half-width... full width of one bucket.
  static constexpr double kMaxRelativeError = 1.0 / kSubBuckets;
  /// Highest bucket index for a 64-bit value (see bucket_index).
  static constexpr int kBuckets = ((64 - kSubBits) << kSubBits) + kSubBuckets;

  struct Options {
    double window_s = 60.0;  ///< sliding-window span
    int slices = 8;          ///< ring granularity (window_s / slices each)
    int shards = 4;          ///< concurrent-writer shards
  };

  struct Snapshot {
    std::uint64_t window_count = 0;  ///< observations inside the window
    double window_sum = 0.0;
    double rate_per_s = 0.0;         ///< window_count / covered seconds
    std::uint64_t total_count = 0;   ///< all-time observations
    double total_sum = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0;
    /// True when the quantiles come from the live window; false when
    /// the window was empty and the all-time distribution stood in.
    bool from_window = false;
  };

  SlidingHistogram() : SlidingHistogram(Options{}) {}
  explicit SlidingHistogram(Options opt);

  void record(std::uint64_t v);

  /// Quantile estimate (bucket midpoint) over the window, falling back
  /// to the all-time distribution when the window is empty. q in [0,1].
  double quantile(double q) const;
  /// Allocation-free variant: `scratch` must hold >= kBuckets u64s and
  /// is clobbered (obs::Monitor's sample path reuses one buffer).
  double quantile(double q, std::uint64_t* scratch) const;

  Snapshot snapshot() const;
  /// Allocation-free variant; same scratch contract as quantile().
  Snapshot snapshot(std::uint64_t* scratch) const;

  /// Zero everything (registry reset). Not linearizable against
  /// concurrent recorders — callers quiesce first, as with the other
  /// instruments.
  void reset();

  const Options& options() const { return opt_; }

  /// Replace the time source (tests drive window rotation
  /// deterministically). Must be set before concurrent use.
  void set_clock_for_test(std::function<std::uint64_t()> now_ns);

  // ---- bucket math (exposed for tests and error-bound reasoning) ----

  /// Log-linear index: exact for v < 16, then 8 sub-buckets per octave.
  static int bucket_index(std::uint64_t v) {
    if (v < (1u << (kSubBits + 1))) return static_cast<int>(v);
    const int exp = 63 - std::countl_zero(v);
    const int shift = exp - kSubBits;
    return ((exp - kSubBits) << kSubBits) +
           static_cast<int>(v >> shift);
  }
  /// Smallest value that lands in bucket `idx`.
  static std::uint64_t bucket_lower(int idx) {
    if (idx < (1 << (kSubBits + 1))) return static_cast<std::uint64_t>(idx);
    const int k = (idx >> kSubBits) - 1;
    const std::uint64_t m =
        static_cast<std::uint64_t>(idx - (k << kSubBits));
    return m << k;
  }
  /// One past the largest value in bucket `idx` (saturating at the top
  /// bucket, whose true upper bound of 2^64 is not representable).
  static std::uint64_t bucket_upper(int idx) {
    if (idx + 1 >= kBuckets) return ~std::uint64_t{0};
    return bucket_lower(idx + 1);
  }
  /// Representative value: the bucket's midpoint (halves the error).
  static double bucket_mid(int idx) {
    return (static_cast<double>(bucket_lower(idx)) +
            static_cast<double>(bucket_upper(idx)) - 1.0) /
           2.0;
  }

 private:
  std::uint64_t now_ns() const;
  std::atomic<std::uint64_t>& cell(int shard, int slot, int idx) {
    return counts_[(static_cast<std::size_t>(shard) *
                        static_cast<std::size_t>(opt_.slices) +
                    static_cast<std::size_t>(slot)) *
                       kBuckets +
                   static_cast<std::size_t>(idx)];
  }
  const std::atomic<std::uint64_t>& cell(int shard, int slot,
                                         int idx) const {
    return const_cast<SlidingHistogram*>(this)->cell(shard, slot, idx);
  }
  /// Rotate `slot` to epoch `e` if it is stale (claim via CAS + clear).
  void refresh_slot(int slot, std::uint64_t e);
  /// Merge window buckets; returns the in-window count.
  std::uint64_t merge_window(std::uint64_t* merged, double* sum) const;

  Options opt_;
  std::uint64_t slice_ns_ = 0;
  std::uint64_t start_ns_ = 0;
  std::function<std::uint64_t()> clock_;  ///< test override; empty = steady

  // shard-major [shard][slot][bucket] flat array
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::vector<std::atomic<std::uint64_t>> slice_epoch_;  ///< per slot
  std::vector<std::atomic<std::uint64_t>> slice_sum_;    ///< per slot, raw u64
  std::vector<std::atomic<std::uint64_t>> total_;        ///< per-bucket
  std::atomic<std::uint64_t> total_count_{0};
  std::atomic<std::uint64_t> total_sum_{0};
};

/// RAII scope timer: records elapsed microseconds into a histogram on
/// destruction — the body of ECOMP_SLIDING_TIMER.
class SlidingTimer {
 public:
  explicit SlidingTimer(SlidingHistogram& h)
      : h_(h), t0_(std::chrono::steady_clock::now()) {}
  ~SlidingTimer() {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    h_.record(static_cast<std::uint64_t>(us < 0 ? 0 : us));
  }
  SlidingTimer(const SlidingTimer&) = delete;
  SlidingTimer& operator=(const SlidingTimer&) = delete;

 private:
  SlidingHistogram& h_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace ecomp::obs

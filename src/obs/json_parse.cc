#include "obs/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace ecomp::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (our emitters only escape
          // control characters, so surrogate pairs don't arise).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("bad number");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v && v->is_number() ? v->number : fallback;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ecomp::obs

#include "obs/rules.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/bytes.h"

namespace ecomp::obs {
namespace {

/// 1 / Phi^-1(3/4): scales a mean absolute deviation to a standard
/// deviation under normality, the usual MAD z-score convention.
constexpr double kMadScale = 1.4826;

double parse_threshold(const std::string& tok,
                       const ThresholdResolver& resolve, int line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used == tok.size()) return v;
  } catch (const std::exception&) {
  }
  if (!resolve)
    throw Error("rules line " + std::to_string(line_no) +
                ": symbolic threshold '" + tok + "' but no resolver");
  return resolve(tok);
}

int parse_int(const std::string& tok, int line_no, const char* what) {
  try {
    return std::stoi(tok);
  } catch (const std::exception&) {
    throw Error("rules line " + std::to_string(line_no) + ": bad " +
                what + " '" + tok + "'");
  }
}

double parse_double(const std::string& tok, int line_no, const char* what) {
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    throw Error("rules line " + std::to_string(line_no) + ": bad " +
                what + " '" + tok + "'");
  }
}

}  // namespace

const char* to_string(RuleKind k) {
  switch (k) {
    case RuleKind::Slo: return "slo";
    case RuleKind::Drift: return "drift";
    case RuleKind::Stall: return "stall";
  }
  return "?";
}

std::vector<Rule> parse_rules(const std::string& text,
                              const ThresholdResolver& resolve) {
  std::vector<Rule> rules;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream iss(line);
    std::string kind;
    if (!(iss >> kind) || kind[0] == '#') continue;

    Rule r;
    if (!(iss >> r.name >> r.series))
      throw Error("rules line " + std::to_string(line_no) +
                  ": expected NAME SERIES after '" + kind + "'");
    std::string tok;
    if (kind == "slo") {
      r.kind = RuleKind::Slo;
      std::string dir, thr;
      if (!(iss >> dir >> thr) || (dir != "above" && dir != "below"))
        throw Error("rules line " + std::to_string(line_no) +
                    ": slo needs 'above|below THRESHOLD'");
      r.above = dir == "above";
      r.threshold = parse_threshold(thr, resolve, line_no);
      r.for_n = 3;
    } else if (kind == "stall") {
      r.kind = RuleKind::Stall;
      std::string thr;
      if (!(iss >> thr))
        throw Error("rules line " + std::to_string(line_no) +
                    ": stall needs SECONDS");
      r.above = true;
      r.threshold = parse_threshold(thr, resolve, line_no);
    } else if (kind == "drift") {
      r.kind = RuleKind::Drift;
      r.for_n = 1;
    } else {
      throw Error("rules line " + std::to_string(line_no) +
                  ": unknown rule kind '" + kind + "'");
    }
    // Trailing key/value options, shared across kinds.
    while (iss >> tok) {
      std::string val;
      if (!(iss >> val))
        throw Error("rules line " + std::to_string(line_no) +
                    ": option '" + tok + "' needs a value");
      if (tok == "for") r.for_n = parse_int(val, line_no, "for count");
      else if (tok == "z") r.z = parse_double(val, line_no, "z");
      else if (tok == "warmup") r.warmup = parse_int(val, line_no, "warmup");
      else if (tok == "alpha") r.alpha = parse_double(val, line_no, "alpha");
      else
        throw Error("rules line " + std::to_string(line_no) +
                    ": unknown option '" + tok + "'");
    }
    if (r.for_n < 1) r.for_n = 1;
    rules.push_back(std::move(r));
  }
  return rules;
}

void Watchdog::add_rule(Rule r) {
  rules_.push_back(std::move(r));
  states_.emplace_back();
}

void Watchdog::fire(const Rule& r, const Sample& s, double threshold,
                    std::vector<Alert>* fired) {
  Alert a;
  a.rule = r.name;
  a.series = r.series;
  a.t_s = s.t_s;
  a.value = s.v;
  a.threshold = threshold;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s %s: %s %.6g %s %.6g at t=%.1fs",
                to_string(r.kind), r.name.c_str(), r.series.c_str(), s.v,
                r.kind == RuleKind::Drift ? "z>" : (r.above ? ">" : "<"),
                threshold, s.t_s);
  a.detail = buf;
  ++alerts_total_;
  recent_.push_back(a);
  while (recent_.size() > kRecentCap) recent_.pop_front();
  if (fired) fired->push_back(std::move(a));
}

std::size_t Watchdog::evaluate(const SeriesStore& store,
                               std::vector<Alert>* fired) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& r = rules_[i];
    State& st = states_[i];
    const Series* s = store.find(r.series);
    if (!s) continue;
    const SampleRing& ring = s->tier(0);
    // Catch up if the ring lapped us (only the retained tail is left).
    const std::uint64_t oldest = ring.total() - ring.size();
    if (st.consumed < oldest) st.consumed = oldest;

    for (; st.consumed < ring.total(); ++st.consumed) {
      const Sample& smp = ring.at_ordinal(st.consumed);
      bool breach = false;
      double line = r.threshold;
      if (r.kind == RuleKind::Drift) {
        // Robust z-score against the EWMA mean and EWMA absolute
        // deviation *before* this sample is folded in, so a step change
        // is judged against the pre-step baseline.
        if (st.seen >= static_cast<std::uint64_t>(r.warmup)) {
          const double sigma = kMadScale * st.adev;
          const double zscore =
              std::fabs(smp.v - st.ewma) / (sigma > 1e-12 ? sigma : 1e-12);
          breach = zscore > r.z;
        }
        line = r.z;
        const double dev = std::fabs(smp.v - st.ewma);
        if (st.seen == 0) {
          st.ewma = smp.v;
        } else {
          st.ewma = (1.0 - r.alpha) * st.ewma + r.alpha * smp.v;
          st.adev = (1.0 - r.alpha) * st.adev + r.alpha * dev;
        }
        ++st.seen;
      } else {
        breach = r.above ? smp.v > r.threshold : smp.v < r.threshold;
      }

      if (breach) {
        ++st.streak;
        if (st.streak >= r.for_n && !st.in_episode) {
          st.in_episode = true;
          fire(r, smp, line, fired);
          ++count;
        }
      } else {
        st.streak = 0;
        st.in_episode = false;  // recovered: re-arm for the next episode
      }
    }
  }
  return count;
}

}  // namespace ecomp::obs

// obs::SeriesStore — fixed-memory in-process time series, the retention
// layer the monitor samples the Registry into. Each metric owns a
// Series: three preallocated rings of (t, value) samples at widening
// granularity (tier 0 = raw sampler cadence, tier 1 = 10 s averages,
// tier 2 = 60 s averages), so a long-running proxy keeps minutes of
// fine history and hours of coarse history in a few KB per series and
// never grows.
//
// Allocation discipline: every ring is sized at construction; append()
// never allocates. The only allocations in the store happen on the
// first sight of a new series name — the steady-state sample path is
// allocation-free, which is what lets the sampler run inside the ≤3%
// observability overhead budget.
//
// Not internally synchronized: obs::Monitor owns a store behind its own
// mutex; standalone users (benches, `ecomp monitor`) are single-threaded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ecomp::obs {

struct Sample {
  double t_s = 0.0;  ///< seconds since the store's epoch
  double v = 0.0;
};

/// Fixed-capacity ring of samples. push() overwrites the oldest entry
/// once full; total() counts every push ever (monotonic), which is how
/// the watchdog knows which samples it has already evaluated.
class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity)
      : buf_(capacity ? capacity : 1) {}

  void push(const Sample& s) {
    buf_[static_cast<std::size_t>(total_ % buf_.size())] = s;
    ++total_;
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const {
    return total_ < buf_.size() ? static_cast<std::size_t>(total_)
                                : buf_.size();
  }
  bool empty() const { return total_ == 0; }
  std::uint64_t total() const { return total_; }

  /// i = 0 is the oldest retained sample.
  const Sample& from_oldest(std::size_t i) const {
    const std::uint64_t oldest = total_ - size();
    return buf_[static_cast<std::size_t>((oldest + i) % buf_.size())];
  }
  /// back = 0 is the newest sample.
  const Sample& from_latest(std::size_t back) const {
    return buf_[static_cast<std::size_t>((total_ - 1 - back) % buf_.size())];
  }
  /// The sample with monotonic push ordinal `ordinal` (must still be
  /// retained: total() - size() <= ordinal < total()).
  const Sample& at_ordinal(std::uint64_t ordinal) const {
    return buf_[static_cast<std::size_t>(ordinal % buf_.size())];
  }

 private:
  std::vector<Sample> buf_;
  std::uint64_t total_ = 0;
};

/// Retention configuration shared by every series in a store. Defaults
/// keep 4 min of raw samples (at 1 s cadence), 30 min of 10 s averages
/// and 2 h of 60 s averages — ~8.4 KB per series, fixed.
struct SeriesOptions {
  std::size_t tier0_capacity = 240;
  std::size_t tier1_capacity = 180;
  std::size_t tier2_capacity = 120;
  double tier1_period_s = 10.0;
  double tier2_period_s = 60.0;
};

/// One metric's history: tier 0 holds raw samples, tiers 1 and 2 hold
/// period averages stamped at the period's start time. A period's
/// average is flushed when the first sample of the next period arrives.
class Series {
 public:
  static constexpr int kTiers = 3;

  explicit Series(const SeriesOptions& opt);

  /// `t_s` must be monotonically non-decreasing per series.
  void append(double t_s, double v);

  const SampleRing& tier(int i) const;
  bool empty() const { return tier0_.empty(); }
  /// Newest raw sample (tier 0 must be non-empty).
  const Sample& last() const { return tier0_.from_latest(0); }

 private:
  struct Acc {
    double period_s = 0.0;
    double sum = 0.0;
    std::uint64_t n = 0;
    std::int64_t bucket = -1;  ///< floor(t / period); -1 = empty
  };
  void fold(Acc& acc, SampleRing& ring, double t_s, double v);

  SampleRing tier0_, tier1_, tier2_;
  Acc acc1_, acc2_;
};

/// Name-keyed collection of Series sharing one SeriesOptions. Lookup is
/// transparent (string_view keys, no temporary strings); creation
/// happens only on first sight of a name.
class SeriesStore {
 public:
  explicit SeriesStore(SeriesOptions opt = {}) : opt_(opt) {}

  /// Find-or-create (the only allocating path).
  Series& series(std::string_view name);
  /// nullptr when the name has never been appended to.
  const Series* find(std::string_view name) const;

  void append(std::string_view name, double t_s, double v) {
    series(name).append(t_s, v);
  }

  std::size_t size() const { return series_.size(); }
  const SeriesOptions& options() const { return opt_; }

  /// Name-sorted iteration (std::map order).
  void visit(
      const std::function<void(const std::string&, const Series&)>& fn) const;

  /// The SERIES STATS payload: {"schema":1,"now_s":..,"series":{name:
  /// {"last":..,"tiers":[{"period_s":..,"samples":[[t,v],..]},..]}}}.
  /// Each tier emits at most `max_per_tier` newest samples.
  std::string to_json(double now_s, std::size_t max_per_tier = 64) const;

 private:
  SeriesOptions opt_;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
};

}  // namespace ecomp::obs

// obs::EventLog — structured JSONL log of connection-lifecycle events.
//
// One line per lifecycle stage (accept, parse, compress, stream, retry,
// error, close), emitted by both ends of a proxy transfer and stamped
// with the request's TraceContext, so a single trace id can be joined
// across the client-side and proxy-side logs. The schema is flat and
// append-only (see docs/OBSERVABILITY.md); fields that do not apply to
// a stage are simply omitted.
//
// The log is instance-based: the client CLI writes through
// EventLog::global() (opened via `--events FILE` / ECOMP_EVENTS), while
// each net::ProxyServer owns its own sink so tests can run several
// proxies in one process without interleaving their logs.
//
// Crash safety: the sink is a raw POSIX fd and every event is exactly
// one write(2) of a complete line — there is no userspace buffer to
// lose, so a process killed (or crashing) mid-stream leaves a log whose
// every line parses. Open fds are tracked in a small async-signal-safe
// registry so the prof crash handler can fsync them before re-raising,
// and every emission is offered to an optional mirror hook (the prof
// flight recorder) whether or not a file is open.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>

namespace ecomp::obs {

/// One lifecycle event. `stage` is the required discriminator; numeric
/// fields default to -1 (= "not set", omitted from the JSON line).
struct Event {
  std::string stage;    ///< accept|parse|compress|stream|retry|error|close|...
  std::string side;     ///< "client" or "proxy"
  std::uint64_t trace_id = 0;  ///< 0 = no trace attached (field omitted)
  std::int64_t conn = -1;      ///< proxy connection ordinal
  std::string name;            ///< object/file name, when known
  std::string mode;            ///< transfer mode: raw|full|selective|put
  std::int64_t bytes_wire = -1;  ///< bytes on the wire (compressed)
  std::int64_t bytes_raw = -1;   ///< bytes after decode (original)
  std::int64_t blocks = -1;      ///< selective-mode block count
  std::int64_t attempt = -1;     ///< 1-based retry attempt ordinal
  double j_est = -1.0;           ///< ledgered energy estimate, joules
  std::string err;               ///< error detail for stage == "error"
  // Monitoring fields (stage == "alert"): the offending sample and the
  // breached line. NaN = not set, omitted. Appended last so existing
  // designated-initializer call sites stay valid.
  double value = std::numeric_limits<double>::quiet_NaN();
  double threshold = std::numeric_limits<double>::quiet_NaN();
};

/// Serialize `e` as one JSON object (with a wall-clock "ts_ms" stamp).
std::string event_to_json(const Event& e);

/// Process-wide mirror called for every emit() on every EventLog — even
/// ones with no file open. The prof flight recorder installs itself
/// here; the hook must be cheap and must not call back into EventLog.
using EventMirror = void (*)(const Event&);
void set_event_mirror(EventMirror mirror);

inline constexpr int kMaxEventLogFds = 8;
/// Snapshot of every open EventLog's fd (async-signal-safe: the fatal-
/// signal handler fsyncs these). Returns how many were written to `out`.
int event_log_fds(int* out, int max);

/// Append-only JSONL sink. Thread-safe; emit() is a no-op until open()
/// succeeds (the mirror hook still fires), so instrumented paths need
/// no "is logging on?" checks.
class EventLog {
 public:
  EventLog() = default;
  ~EventLog();

  /// Truncates/creates `path`; throws std::runtime_error on failure.
  void open(const std::string& path);
  void close();
  bool is_open() const;
  const std::string& path() const { return path_; }

  /// Size cap: when an emit would push the file past `n` bytes, the
  /// current file is renamed to `path + ".1"` (replacing any previous
  /// rotation) and a fresh file is started — bounded disk for long-
  /// running proxies, at most one whole generation of history lost.
  /// 0 disables rotation. Default 64 MB.
  void set_max_bytes(std::uint64_t n);
  std::uint64_t max_bytes() const;

  /// Mirror `e`, then (when open) serialize and append it as one
  /// complete line in a single write(2) — crash-durable per event.
  void emit(const Event& e);

  /// The process-wide client-side log (the CLI's sink).
  static EventLog& global();

 private:
  /// Rotate path_ -> path_ + ".1" and reopen fresh. Caller holds mu_.
  void rotate_locked();

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  std::uint64_t bytes_ = 0;  ///< written to the current generation
  std::uint64_t max_bytes_ = 64ull << 20;
};

}  // namespace ecomp::obs

#include "obs/trace.h"

#include <map>
#include <sstream>

#include "obs/json.h"

namespace ecomp::obs {
namespace {

/// Small dense thread ids for the trace (Chrome tids), first-use order.
int this_thread_tid() {
  static std::atomic<int> next{1};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

Tracer::Tracer() : t0_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

void Tracer::enable() {
  {
    std::lock_guard lock(mu_);
    t0_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void Tracer::add_complete(std::string_view name, std::string_view cat,
                          double ts_us, double dur_us, int pid) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.cat = std::string(cat);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = pid;
  e.tid = pid == kSimPid ? 1 : this_thread_tid();
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::add_sim_complete(std::string_view name, std::string_view cat,
                              double start_s, double dur_s) {
  add_complete(name, cat, start_s * 1e6, dur_s * 1e6, kSimPid);
}

void Tracer::add_counter(std::string_view name, std::string_view cat,
                         double ts_us, double value, int pid) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.cat = std::string(cat);
  e.ts_us = ts_us;
  e.pid = pid;
  e.tid = pid == kSimPid ? 1 : this_thread_tid();
  e.ph = 'C';
  e.value = value;
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::add_sim_counter(std::string_view name, std::string_view cat,
                             double t_s, double value) {
  add_counter(name, cat, t_s * 1e6, value, kSimPid);
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Track-name metadata so Perfetto labels the two timebases.
  os << "{\"ph\":\"M\",\"pid\":" << kWallPid
     << ",\"name\":\"process_name\",\"args\":{\"name\":\"wall\"}},";
  os << "{\"ph\":\"M\",\"pid\":" << kSimPid
     << ",\"name\":\"process_name\",\"args\":{\"name\":\"sim\"}}";
  for (const auto& e : events_) {
    os << ",{\"name\":" << json_quote(e.name)
       << ",\"cat\":" << json_quote(e.cat.empty() ? "ecomp" : e.cat);
    if (e.ph == 'C') {
      os << ",\"ph\":\"C\",\"ts\":" << json_number(e.ts_us)
         << ",\"args\":{\"value\":" << json_number(e.value) << "}";
    } else {
      os << ",\"ph\":\"X\",\"ts\":" << json_number(e.ts_us)
         << ",\"dur\":" << json_number(e.dur_us);
    }
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << "}";
  }
  os << "]}";
  return os.str();
}

std::string Tracer::summary_text() const {
  std::lock_guard lock(mu_);
  struct Agg {
    std::size_t count = 0;
    double total_us = 0.0;
  };
  std::map<std::string, Agg> agg;
  for (const auto& e : events_) {
    if (e.ph == 'C') continue;  // counters have no duration to summarize
    Agg& a = agg[std::string(e.pid == kSimPid ? "sim " : "wall ") + e.cat +
                 " " + e.name];
    ++a.count;
    a.total_us += e.dur_us;
  }
  std::ostringstream os;
  for (const auto& [key, a] : agg)
    os << key << " count=" << a.count
       << " total_ms=" << json_number(a.total_us / 1e3) << "\n";
  return os.str();
}

Span::Span(std::string_view name, std::string_view cat)
    : name_(name), cat_(cat) {
  Tracer& t = Tracer::global();
  if (!t.enabled()) return;
  active_ = true;
  start_us_ = t.now_us();
}

Span::~Span() {
  if (!active_) return;
  Tracer& t = Tracer::global();
  t.add_complete(name_, cat_, start_us_, t.now_us() - start_us_);
}

}  // namespace ecomp::obs

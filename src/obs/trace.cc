#include "obs/trace.h"

#include <map>
#include <random>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "prof/zone.h"

namespace ecomp::obs {
namespace {

/// Small dense thread ids for the trace (Chrome tids), first-use order.
int this_thread_tid() {
  static std::atomic<int> next{1};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local TraceContext g_current_trace;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TraceContext TraceContext::mint() {
  // Entropy once per process, then a counter walked through splitmix64:
  // ids are unique in-process and collision-resistant across processes.
  static const std::uint64_t seed = [] {
    std::random_device rd;
    const std::uint64_t hi = rd(), lo = rd();
    return splitmix64((hi << 32) ^ lo ^
                      static_cast<std::uint64_t>(
                          std::chrono::steady_clock::now()
                              .time_since_epoch()
                              .count()));
  }();
  static std::atomic<std::uint64_t> ctr{0};
  TraceContext ctx;
  do {
    ctx.trace_id =
        splitmix64(seed + ctr.fetch_add(1, std::memory_order_relaxed));
  } while (ctx.trace_id == 0);
  ctx.span_id = 1;
  return ctx;
}

std::string TraceContext::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(i)] =
        digits[(trace_id >> (60 - 4 * i)) & 0xf];
  return out;
}

TraceContext TraceContext::from_hex(std::string_view hex) {
  TraceContext ctx;
  if (hex.size() != 16) return ctx;
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return ctx;
  }
  ctx.trace_id = v;
  ctx.span_id = 1;
  return ctx;
}

TraceContext current_trace() { return g_current_trace; }

TraceScope::TraceScope(TraceContext ctx) : prev_(g_current_trace) {
  g_current_trace = ctx;
}

TraceScope::~TraceScope() { g_current_trace = prev_; }

Tracer::Tracer() : t0_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

void Tracer::enable() {
  {
    std::lock_guard lock(mu_);
    t0_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void Tracer::add_complete(std::string_view name, std::string_view cat,
                          double ts_us, double dur_us, int pid) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.cat = std::string(cat);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = pid;
  e.tid = pid == kSimPid ? 1 : this_thread_tid();
  e.trace_id = g_current_trace.trace_id;
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::add_sim_complete(std::string_view name, std::string_view cat,
                              double start_s, double dur_s) {
  add_complete(name, cat, start_s * 1e6, dur_s * 1e6, kSimPid);
}

void Tracer::add_counter(std::string_view name, std::string_view cat,
                         double ts_us, double value, int pid) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.cat = std::string(cat);
  e.ts_us = ts_us;
  e.pid = pid;
  e.tid = pid == kSimPid ? 1 : this_thread_tid();
  e.ph = 'C';
  e.value = value;
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::add_sim_counter(std::string_view name, std::string_view cat,
                             double t_s, double value) {
  add_counter(name, cat, t_s * 1e6, value, kSimPid);
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Track-name metadata so Perfetto labels the two timebases.
  os << "{\"ph\":\"M\",\"pid\":" << kWallPid
     << ",\"name\":\"process_name\",\"args\":{\"name\":\"wall\"}},";
  os << "{\"ph\":\"M\",\"pid\":" << kSimPid
     << ",\"name\":\"process_name\",\"args\":{\"name\":\"sim\"}}";
  for (const auto& e : events_) {
    os << ",{\"name\":" << json_quote(e.name)
       << ",\"cat\":" << json_quote(e.cat.empty() ? "ecomp" : e.cat);
    if (e.ph == 'C') {
      os << ",\"ph\":\"C\",\"ts\":" << json_number(e.ts_us)
         << ",\"args\":{\"value\":" << json_number(e.value) << "}";
    } else {
      os << ",\"ph\":\"X\",\"ts\":" << json_number(e.ts_us)
         << ",\"dur\":" << json_number(e.dur_us);
      if (e.trace_id) {
        TraceContext ctx;
        ctx.trace_id = e.trace_id;
        os << ",\"args\":{\"trace\":" << json_quote(ctx.hex()) << "}";
      }
    }
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << "}";
  }
  os << "]}";
  return os.str();
}

std::string Tracer::summary_text() const {
  std::lock_guard lock(mu_);
  struct Agg {
    std::size_t count = 0;
    double total_us = 0.0;
  };
  std::map<std::string, Agg> agg;
  for (const auto& e : events_) {
    if (e.ph == 'C') continue;  // counters have no duration to summarize
    Agg& a = agg[std::string(e.pid == kSimPid ? "sim " : "wall ") + e.cat +
                 " " + e.name];
    ++a.count;
    a.total_us += e.dur_us;
  }
  std::ostringstream os;
  for (const auto& [key, a] : agg)
    os << key << " count=" << a.count
       << " total_ms=" << json_number(a.total_us / 1e3) << "\n";
  return os.str();
}

Span::Span(std::string_view name, std::string_view cat)
    : name_(name), cat_(cat) {
#if defined(ECOMP_OBS_ENABLED)
  // Zone push is independent of tracer enablement: profiling a run must
  // not require (or pay for) trace collection.
  if (prof::zones_active()) zone_pushed_ = prof::zone_push(name_);
#endif
  Tracer& t = Tracer::global();
  if (!t.enabled()) return;
  active_ = true;
  start_us_ = t.now_us();
}

Span::~Span() {
#if defined(ECOMP_OBS_ENABLED)
  if (zone_pushed_) prof::zone_pop();
#endif
  if (!active_) return;
  Tracer& t = Tracer::global();
  const double dur_us = t.now_us() - start_us_;
  t.add_complete(name_, cat_, start_us_, dur_us);
  // Span durations also feed the sliding-window quantile histograms,
  // one per category ("span.codec_us", "span.net_us", ...), so the
  // STATS surface can report live span tails without a trace file.
  Registry::global()
      .sliding(std::string("span.") + std::string(cat_) + "_us")
      .record(static_cast<std::uint64_t>(dur_us < 0 ? 0 : dur_us));
}

}  // namespace ecomp::obs

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace ecomp::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    bounds_.clear();  // degenerate registration: everything overflows
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_sum(v);
}

void Histogram::merge_buckets(const std::uint64_t* counts, std::size_t n,
                              double sum) {
  const std::size_t m = std::min(n, counts_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (!counts[i]) continue;
    counts_[i].fetch_add(counts[i], std::memory_order_relaxed);
    total += counts[i];
  }
  count_.fetch_add(total, std::memory_order_relaxed);
  add_sum(sum);
}

std::vector<std::uint64_t> Histogram::bucket_values() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

void Histogram::add_sum(double d) {
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + d),
      std::memory_order_relaxed)) {
  }
}

std::vector<double> pow2_bounds(int n) {
  std::vector<double> b(static_cast<std::size_t>(std::max(n, 1)));
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<double>(std::uint64_t{1} << i);
  return b;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

SlidingHistogram& Registry::sliding(std::string_view name,
                                    SlidingHistogram::Options opt) {
  std::lock_guard lock(mu_);
  auto it = sliding_.find(name);
  if (it == sliding_.end())
    it = sliding_
             .emplace(std::string(name),
                      std::make_unique<SlidingHistogram>(opt))
             .first;
  return *it->second;
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
  for (auto& [_, s] : sliding_) s->reset();
}

std::string Registry::to_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << json_quote(name) << ":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << json_quote(name) << ":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << json_quote(name) << ":{\"bounds\":[";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i)
      os << (i ? "," : "") << json_number(bounds[i]);
    os << "],\"buckets\":[";
    const auto buckets = h->bucket_values();
    for (std::size_t i = 0; i < buckets.size(); ++i)
      os << (i ? "," : "") << buckets[i];
    os << "],\"count\":" << h->count()
       << ",\"sum\":" << json_number(h->sum()) << "}";
  }
  os << "},\"sliding\":{";
  first = true;
  for (const auto& [name, s] : sliding_) {
    if (!first) os << ",";
    first = false;
    const auto snap = s->snapshot();
    os << json_quote(name) << ":{\"count\":" << snap.total_count
       << ",\"sum\":" << json_number(snap.total_sum)
       << ",\"window_count\":" << snap.window_count
       << ",\"rate_per_s\":" << json_number(snap.rate_per_s)
       << ",\"p50\":" << json_number(snap.p50)
       << ",\"p90\":" << json_number(snap.p90)
       << ",\"p99\":" << json_number(snap.p99)
       << ",\"p999\":" << json_number(snap.p999) << "}";
  }
  os << "}}";
  return os.str();
}

std::string Registry::to_text() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_)
    os << name << " " << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    os << name << " " << g->value() << "\n";
  for (const auto& [name, h] : histograms_) {
    os << name << " count=" << h->count() << " sum=" << json_number(h->sum())
       << " mean="
       << json_number(h->count() ? h->sum() /
                                       static_cast<double>(h->count())
                                 : 0.0)
       << "\n";
  }
  for (const auto& [name, s] : sliding_) {
    const auto snap = s->snapshot();
    os << name << " count=" << snap.total_count
       << " rate_per_s=" << json_number(snap.rate_per_s)
       << " p50=" << json_number(snap.p50)
       << " p90=" << json_number(snap.p90)
       << " p99=" << json_number(snap.p99)
       << " p999=" << json_number(snap.p999) << "\n";
  }
  return os.str();
}

std::map<std::string, std::uint64_t> Registry::counter_values() const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::vector<std::pair<std::string, SlidingHistogram::Snapshot>>
Registry::sliding_snapshots() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, SlidingHistogram::Snapshot>> out;
  out.reserve(sliding_.size());
  for (const auto& [name, s] : sliding_) out.emplace_back(name, s->snapshot());
  return out;
}

void Registry::visit_counters(
    const std::function<void(std::string_view, std::uint64_t)>& fn) const {
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) fn(name, c->value());
}

void Registry::visit_gauges(
    const std::function<void(std::string_view, std::int64_t)>& fn) const {
  std::lock_guard lock(mu_);
  for (const auto& [name, g] : gauges_) fn(name, g->value());
}

void Registry::visit_sliding(
    const std::function<void(std::string_view, const SlidingHistogram&)>& fn)
    const {
  std::lock_guard lock(mu_);
  for (const auto& [name, s] : sliding_) fn(name, *s);
}

}  // namespace ecomp::obs

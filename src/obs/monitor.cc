#include "obs/monitor.h"

#include <chrono>

#include "obs/metrics.h"

namespace ecomp::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Monitor::Monitor(MonitorOptions opt)
    : opt_(opt), epoch_ns_(steady_ns()), store_(opt.series) {
  if (opt_.cadence_ms == 0) opt_.cadence_ms = 1000;
  hist_scratch_.resize(SlidingHistogram::kBuckets);
  key_scratch_.reserve(128);
  fired_scratch_.reserve(8);
}

Monitor::~Monitor() { stop(); }

void Monitor::add_source(Source src) {
  std::lock_guard lock(mu_);
  sources_.push_back(std::move(src));
}

void Monitor::add_rule(Rule r) {
  std::lock_guard lock(mu_);
  dog_.add_rule(std::move(r));
}

void Monitor::set_alert_sink(AlertSink sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

void Monitor::set_clock_for_test(std::function<std::uint64_t()> now_ns) {
  clock_ = std::move(now_ns);
  epoch_ns_ = clock_ ? clock_() : steady_ns();
}

double Monitor::now_s() const {
  const std::uint64_t now = clock_ ? clock_() : steady_ns();
  return now <= epoch_ns_ ? 0.0
                          : static_cast<double>(now - epoch_ns_) / 1e9;
}

void Monitor::start() {
  if (started_) return;
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void Monitor::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void Monitor::run() {
  std::unique_lock wake_lock(wake_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Tick first so a short-lived proxy still gets samples, then sleep
    // interruptibly so stop() never waits a full cadence.
    wake_lock.unlock();
    tick();
    wake_lock.lock();
    wake_.wait_for(wake_lock, std::chrono::milliseconds(opt_.cadence_ms),
                   [this] { return stopping_.load(std::memory_order_relaxed); });
  }
}

void Monitor::append_suffixed(std::string_view name, const char* suffix,
                              double t_s, double v) {
  key_scratch_.assign(name);
  key_scratch_ += suffix;
  store_.append(key_scratch_, t_s, v);
}

void Monitor::sample_registry(double t_s) {
  Registry& reg = Registry::global();
  reg.visit_counters([&](std::string_view name, std::uint64_t v) {
    const auto it = prev_counters_.find(name);
    if (it == prev_counters_.end()) {
      // First sight: remember the baseline; the first rate sample lands
      // next tick (a rate needs two observations).
      prev_counters_.emplace(std::string(name), std::make_pair(v, t_s));
      return;
    }
    const auto [prev, prev_t] = it->second;
    const double dt = t_s - prev_t;
    if (dt > 0.0) {
      const double rate =
          v >= prev ? static_cast<double>(v - prev) / dt : 0.0;
      append_suffixed(name, ".rate", t_s, rate);
    }
    it->second = {v, t_s};
  });
  reg.visit_gauges([&](std::string_view name, std::int64_t v) {
    store_.append(name, t_s, static_cast<double>(v));
  });
  reg.visit_sliding([&](std::string_view name, const SlidingHistogram& h) {
    const SlidingHistogram::Snapshot snap = h.snapshot(hist_scratch_.data());
    append_suffixed(name, ".p50", t_s, snap.p50);
    append_suffixed(name, ".p99", t_s, snap.p99);
    append_suffixed(name, ".rate", t_s, snap.rate_per_s);
  });
}

void Monitor::tick() {
  const double t = now_s();
  std::lock_guard lock(mu_);
  for (const Source& src : sources_) src(t, store_);
  if (opt_.sample_registry) sample_registry(t);
  fired_scratch_.clear();
  dog_.evaluate(store_, &fired_scratch_);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  if (sink_)
    for (const Alert& a : fired_scratch_) sink_(a);
}

std::uint64_t Monitor::alerts_total() const {
  std::lock_guard lock(mu_);
  return dog_.alerts_total();
}

std::vector<Alert> Monitor::recent_alerts() const {
  std::lock_guard lock(mu_);
  return {dog_.recent().begin(), dog_.recent().end()};
}

std::vector<std::pair<std::string, double>> Monitor::latest() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(store_.size());
  store_.visit([&](const std::string& name, const Series& s) {
    if (!s.empty()) out.emplace_back(name, s.last().v);
  });
  return out;
}

std::string Monitor::series_json(std::size_t max_per_tier) const {
  const double now = now_s();
  std::lock_guard lock(mu_);
  return store_.to_json(now, max_per_tier);
}

}  // namespace ecomp::obs

// benchdiff — regression gating over BENCH_*.json sidecars.
//
// Loads a baseline directory and a current directory of sidecars,
// matches benchmarks by name, and compares every numeric headline
// metric plus every energy-ledger component and every prof metric.
// Metrics whose larger value means "worse" (names ending in _s or _j,
// all energy components, and prof keys ending _self_pct) gate: a delta
// beyond the threshold is a regression and the diff exits non-zero.
// _self_pct keys are already percentages, so they gate on ABSOLUTE
// percentage points (kSelfPctPoints) instead of relative change — a
// stage going 1% -> 2% of codec time doubles relatively but is noise;
// 40% -> 55% is a hot-path regression. Headline keys ending _mb_s are
// measured throughputs where LARGER is better: they gate on a minimum
// ratio vs baseline (current < baseline * min_speedup is a
// regression), locking in a perf win the way the _s/_j gates lock in
// simulator costs. Because wall-clock MB/s only compares within one
// machine and one kernel tier, _mb_s gates are skipped (with a
// warning) when the two sidecars' provenance reports a different
// simd_level or cpu_flags. Everything else (counts, ratios) is
// reported but never fails the gate. `provenance`, `notes`, and
// `metrics` blocks otherwise differ run to run by design and are
// ignored.
//
// Exit codes (benchdiff_main): 0 pass, 1 usage error, 2 regression
// beyond threshold, 3 benchmark/metric present in the baseline but
// missing from the current run.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json_parse.h"

namespace ecomp::obs {

/// Absolute gate width for _self_pct metrics, in percentage points.
inline constexpr double kSelfPctPoints = 10.0;

/// Default minimum throughput ratio for _mb_s metrics: the current run
/// must reach this fraction of the baseline's MB/s. Deliberately loose
/// (30% headroom) — wall-clock throughput on shared boxes is noisy, and
/// the gate exists to catch "someone halved the decoder", not 10% drift.
inline constexpr double kDefaultMinSpeedup = 0.7;

struct MetricDelta {
  std::string bench;    ///< sidecar name, e.g. "fig2_energy"
  std::string metric;   ///< "headline.files", "prof.deflate.crc32_self_pct"
  double baseline = 0.0;
  double current = 0.0;
  bool gated = false;    ///< counts toward the gate
  bool absolute = false; ///< gate on points grown, not relative percent
  bool rate = false;     ///< larger-is-better throughput (_mb_s)

  /// Signed percent change vs baseline; +inf when a zero baseline grew.
  double delta_pct() const;
  /// Gate verdict: absolute metrics regress past kSelfPctPoints points,
  /// rate metrics when current < baseline * min_speedup, relative ones
  /// past threshold_pct percent. False when not gated.
  bool regressed(double threshold_pct,
                 double min_speedup = kDefaultMinSpeedup) const;
};

struct BenchDiff {
  std::vector<MetricDelta> deltas;     ///< sorted by (bench, metric)
  std::vector<std::string> missing;    ///< in baseline, absent in current
  std::vector<std::string> added;      ///< in current, absent in baseline
  /// Human-readable notes about gates that were skipped (e.g. _mb_s
  /// metrics when baseline and current ran different SIMD tiers).
  std::vector<std::string> warnings;

  std::vector<const MetricDelta*> regressions(
      double threshold_pct,
      double min_speedup = kDefaultMinSpeedup) const;
};

/// Sidecar name -> parsed document. Reads every BENCH_*.json directly
/// inside `dir` (throws Error if the directory is unreadable or a
/// sidecar is malformed).
std::map<std::string, JsonValue> load_bench_dir(const std::string& dir);

/// Compare two sidecar sets (keys are bench names from the documents).
BenchDiff diff_benches(const std::map<std::string, JsonValue>& baseline,
                       const std::map<std::string, JsonValue>& current);

/// Human-oriented diff table plus a one-line verdict.
std::string format_table(const BenchDiff& diff, double threshold_pct,
                         double min_speedup = kDefaultMinSpeedup);
/// Machine-readable rendering of the same information.
std::string format_json(const BenchDiff& diff, double threshold_pct,
                        double min_speedup = kDefaultMinSpeedup);

/// Full CLI: benchdiff [--threshold PCT] [--min-speedup RATIO] [--json]
/// BASELINE_DIR CURRENT_DIR.
/// Factored out of the tool's main() so tests can drive it in-process.
int benchdiff_main(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err);

}  // namespace ecomp::obs

#include "obs/series.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace ecomp::obs {

Series::Series(const SeriesOptions& opt)
    : tier0_(opt.tier0_capacity),
      tier1_(opt.tier1_capacity),
      tier2_(opt.tier2_capacity) {
  acc1_.period_s = opt.tier1_period_s > 0.0 ? opt.tier1_period_s : 10.0;
  acc2_.period_s = opt.tier2_period_s > 0.0 ? opt.tier2_period_s : 60.0;
}

void Series::fold(Acc& acc, SampleRing& ring, double t_s, double v) {
  const auto bucket =
      static_cast<std::int64_t>(std::floor(t_s / acc.period_s));
  if (acc.bucket >= 0 && bucket != acc.bucket && acc.n > 0) {
    // The first sample past a period boundary flushes the finished
    // period's average, stamped at that period's start.
    ring.push({static_cast<double>(acc.bucket) * acc.period_s,
               acc.sum / static_cast<double>(acc.n)});
    acc.sum = 0.0;
    acc.n = 0;
  }
  acc.bucket = bucket;
  acc.sum += v;
  ++acc.n;
}

void Series::append(double t_s, double v) {
  tier0_.push({t_s, v});
  fold(acc1_, tier1_, t_s, v);
  fold(acc2_, tier2_, t_s, v);
}

const SampleRing& Series::tier(int i) const {
  switch (i) {
    case 0: return tier0_;
    case 1: return tier1_;
    default: return tier2_;
  }
}

Series& SeriesStore::series(std::string_view name) {
  auto it = series_.find(name);
  if (it == series_.end())
    it = series_.emplace(std::string(name), std::make_unique<Series>(opt_))
             .first;
  return *it->second;
}

const Series* SeriesStore::find(std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

void SeriesStore::visit(
    const std::function<void(const std::string&, const Series&)>& fn) const {
  for (const auto& [name, s] : series_) fn(name, *s);
}

std::string SeriesStore::to_json(double now_s,
                                 std::size_t max_per_tier) const {
  const double periods[Series::kTiers] = {0.0, opt_.tier1_period_s,
                                          opt_.tier2_period_s};
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(1);
  w.key("now_s").value(now_s);
  w.key("series").begin_object();
  for (const auto& [name, s] : series_) {
    w.key(name).begin_object();
    if (!s->empty()) w.key("last").value(s->last().v);
    w.key("tiers").begin_array();
    for (int t = 0; t < Series::kTiers; ++t) {
      const SampleRing& ring = s->tier(t);
      w.begin_object();
      w.key("period_s").value(periods[t]);
      w.key("samples").begin_array();
      const std::size_t n = std::min(ring.size(), max_per_tier);
      for (std::size_t i = ring.size() - n; i < ring.size(); ++i) {
        const Sample& smp = ring.from_oldest(i);
        w.begin_array().value(smp.t_s).value(smp.v).end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace ecomp::obs

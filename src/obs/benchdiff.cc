#include "obs/benchdiff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace ecomp::obs {
namespace {

bool ends_with(const std::string& key, std::string_view suf) {
  return key.size() >= suf.size() &&
         key.compare(key.size() - suf.size(), suf.size(), suf) == 0;
}

/// A metric gates when a larger value means worse: times (_s), energies
/// (_j), and every energy-ledger component (all joules/seconds).
/// Wall-clock keys from the google-benchmark sidecar (.real_s) and
/// throughput rates (.bytes_per_s) are machine noise, not simulator
/// output — reported, never gated. Measured stage throughputs (_mb_s)
/// gate the other way around: larger is better, and the gate is a
/// minimum ratio vs baseline (see headline_rate_gates).
bool headline_gates(const std::string& key) {
  if (ends_with(key, ".real_s") || ends_with(key, ".bytes_per_s")) return false;
  return ends_with(key, "_s") || ends_with(key, "_j");
}

bool headline_rate_gates(const std::string& key) {
  return ends_with(key, "_mb_s");
}

/// One comparable value: gated or not, and whether the gate is absolute
/// (percentage-point metrics) or a larger-is-better rate instead of
/// relative larger-is-worse.
struct Comparable {
  double value = 0.0;
  bool gated = false;
  bool absolute = false;
  bool rate = false;
};

/// Flatten the comparable numeric metrics of one sidecar document:
/// headline.*, energy.<scenario>.{total,<component>} energies, and
/// prof.* profiler metrics.
std::map<std::string, Comparable> comparable_metrics(const JsonValue& doc) {
  std::map<std::string, Comparable> out;
  if (const JsonValue* headline = doc.find("headline")) {
    for (const auto& [key, v] : headline->object)
      if (v.is_number()) {
        const bool rate = headline_rate_gates(key);
        out["headline." + key] = {
            v.number, rate || headline_gates(key), false, rate};
      }
  }
  if (const JsonValue* energy = doc.find("energy")) {
    for (const auto& [scenario, ledger] : energy->object) {
      if (!ledger.is_object()) continue;
      out["energy." + scenario + ".total"] = {
          ledger.number_or("total_energy_j", 0.0), true, false};
      if (const JsonValue* comps = ledger.find("components")) {
        for (const auto& [path, node] : comps->object)
          out["energy." + scenario + "." + path] = {
              node.number_or("energy_j", 0.0), true, false};
      }
    }
  }
  if (const JsonValue* prof = doc.find("prof")) {
    // Schema 3 profiler section. _self_pct keys gate on absolute
    // points; schema 2 sidecars simply have no prof block.
    for (const auto& [key, v] : prof->object)
      if (v.is_number()) {
        const bool self_pct = ends_with(key, "_self_pct");
        out["prof." + key] = {v.number, self_pct, self_pct};
      }
  }
  return out;
}

std::string fmt_pct(double pct) {
  if (std::isinf(pct)) return pct > 0 ? "+inf%" : "-inf%";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.2f%%", pct);
  return buf;
}

}  // namespace

double MetricDelta::delta_pct() const {
  if (baseline == 0.0) {
    if (current == 0.0) return 0.0;
    return current > 0.0 ? std::numeric_limits<double>::infinity()
                         : -std::numeric_limits<double>::infinity();
  }
  return (current - baseline) / std::fabs(baseline) * 100.0;
}

bool MetricDelta::regressed(double threshold_pct, double min_speedup) const {
  if (!gated) return false;
  if (absolute) return current - baseline > kSelfPctPoints;
  if (rate) return current < baseline * min_speedup;
  return delta_pct() > threshold_pct;
}

std::vector<const MetricDelta*> BenchDiff::regressions(
    double threshold_pct, double min_speedup) const {
  std::vector<const MetricDelta*> out;
  for (const auto& d : deltas)
    if (d.regressed(threshold_pct, min_speedup)) out.push_back(&d);
  return out;
}

std::map<std::string, JsonValue> load_bench_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir))
    throw Error("benchdiff: not a directory: " + dir);
  std::map<std::string, JsonValue> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("BENCH_", 0) != 0) continue;
    // Skip non-sidecar artifacts like BENCH_*.trace.json.
    if (fname.size() < 5 || fname.substr(fname.size() - 5) != ".json")
      continue;
    if (fname.find(".trace.json") != std::string::npos) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    JsonValue doc;
    try {
      doc = parse_json(ss.str());
    } catch (const Error& e) {
      throw Error("benchdiff: " + fname + ": " + e.what());
    }
    // Validate the sidecar schema: 2 (pre-prof), 3 (adds the prof
    // section), and 4 (adds _mb_s throughput keys + SIMD provenance)
    // are comparable; anything else is a format we don't know how to
    // diff, and silently mis-gating it would be worse than failing
    // loudly here.
    const JsonValue* schema = doc.find("schema");
    const double sv = schema && schema->is_number() ? schema->number : -1.0;
    if (sv != 2.0 && sv != 3.0 && sv != 4.0)
      throw Error("benchdiff: " + fname + ": unsupported schema (want 2-4)");
    const JsonValue* name = doc.find("bench");
    out[name && name->is_string()
            ? name->string
            : fname.substr(6, fname.size() - 11)] = std::move(doc);
  }
  return out;
}

BenchDiff diff_benches(const std::map<std::string, JsonValue>& baseline,
                       const std::map<std::string, JsonValue>& current) {
  // provenance.<field> of a sidecar, or "" when absent (schema <= 3).
  const auto prov_field = [](const JsonValue& doc, const char* field) {
    if (const JsonValue* prov = doc.find("provenance"))
      if (const JsonValue* v = prov->find(field))
        if (v->is_string()) return v->string;
    return std::string();
  };
  BenchDiff diff;
  for (const auto& [bench, base_doc] : baseline) {
    const auto cur_it = current.find(bench);
    if (cur_it == current.end()) {
      diff.missing.push_back(bench);
      continue;
    }
    // Wall-clock MB/s only compares like-for-like: if the two runs
    // dispatched different SIMD tiers or ran on different silicon, a
    // throughput delta measures the machine, not the code. Ungate the
    // _mb_s metrics for this bench and say so once.
    bool comparable_rates = true;
    for (const char* field : {"simd_level", "cpu_flags"}) {
      const std::string b = prov_field(base_doc, field);
      const std::string c = prov_field(cur_it->second, field);
      if (b != c) {
        comparable_rates = false;
        diff.warnings.push_back(
            bench + ": provenance." + field + " differs (baseline \"" + b +
            "\" vs current \"" + c + "\"); _mb_s gates skipped");
      }
    }
    const auto base_metrics = comparable_metrics(base_doc);
    const auto cur_metrics = comparable_metrics(cur_it->second);
    for (const auto& [metric, bv] : base_metrics) {
      const auto cm = cur_metrics.find(metric);
      if (cm == cur_metrics.end()) {
        diff.missing.push_back(bench + "." + metric);
        continue;
      }
      MetricDelta d;
      d.bench = bench;
      d.metric = metric;
      d.baseline = bv.value;
      d.current = cm->second.value;
      d.gated = bv.gated && (!bv.rate || comparable_rates);
      d.absolute = bv.absolute;
      d.rate = bv.rate;
      diff.deltas.push_back(std::move(d));
    }
    for (const auto& [metric, cv] : cur_metrics)
      if (!base_metrics.count(metric))
        diff.added.push_back(bench + "." + metric);
  }
  for (const auto& [bench, doc] : current)
    if (!baseline.count(bench)) diff.added.push_back(bench);
  // std::map iteration already sorts deltas by (bench, metric).
  return diff;
}

std::string format_table(const BenchDiff& diff, double threshold_pct,
                         double min_speedup) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-14s %-44s %14s %14s %10s  %s\n", "bench",
                "metric", "baseline", "current", "delta", "status");
  os << buf;
  os << std::string(110, '-') << "\n";
  std::size_t gated = 0, regressed = 0, improved = 0;
  for (const auto& d : diff.deltas) {
    const double pct = d.delta_pct();
    const char* status = "";
    if (d.gated) {
      ++gated;
      const bool better = d.rate ? d.current > d.baseline
                                 : d.current < d.baseline;
      if (d.regressed(threshold_pct, min_speedup)) {
        status = "REGRESSION";
        ++regressed;
      } else if (better) {
        status = "improved";
        ++improved;
      } else {
        status = d.absolute ? "ok (abs)" : (d.rate ? "ok (rate)" : "ok");
      }
    }
    std::snprintf(buf, sizeof buf, "%-14s %-44s %14.6g %14.6g %10s  %s\n",
                  d.bench.c_str(), d.metric.c_str(), d.baseline, d.current,
                  fmt_pct(pct).c_str(), status);
    os << buf;
  }
  for (const auto& w : diff.warnings) os << "WARNING: " << w << "\n";
  for (const auto& m : diff.missing) os << "MISSING: " << m << "\n";
  for (const auto& a : diff.added) os << "new (not in baseline): " << a << "\n";
  std::snprintf(buf, sizeof buf,
                "benchdiff: %zu metrics (%zu gated at %.1f%%, rates at "
                "%.2fx): %zu regressed, %zu improved, %zu missing\n",
                diff.deltas.size(), gated, threshold_pct, min_speedup,
                regressed, improved, diff.missing.size());
  os << buf;
  return os.str();
}

std::string format_json(const BenchDiff& diff, double threshold_pct,
                        double min_speedup) {
  std::ostringstream os;
  os << "{\"threshold_pct\":" << json_number(threshold_pct)
     << ",\"min_speedup\":" << json_number(min_speedup) << ",\"deltas\":[";
  for (std::size_t i = 0; i < diff.deltas.size(); ++i) {
    const auto& d = diff.deltas[i];
    os << (i ? "," : "") << "{\"bench\":" << json_quote(d.bench)
       << ",\"metric\":" << json_quote(d.metric)
       << ",\"baseline\":" << json_number(d.baseline)
       << ",\"current\":" << json_number(d.current)
       << ",\"delta_pct\":" << json_number(d.delta_pct())
       << ",\"gated\":" << (d.gated ? "true" : "false")
       << ",\"absolute\":" << (d.absolute ? "true" : "false")
       << ",\"rate\":" << (d.rate ? "true" : "false")
       << ",\"regressed\":"
       << (d.regressed(threshold_pct, min_speedup) ? "true" : "false")
       << "}";
  }
  os << "],\"warnings\":[";
  for (std::size_t i = 0; i < diff.warnings.size(); ++i)
    os << (i ? "," : "") << json_quote(diff.warnings[i]);
  os << "],\"missing\":[";
  for (std::size_t i = 0; i < diff.missing.size(); ++i)
    os << (i ? "," : "") << json_quote(diff.missing[i]);
  os << "],\"added\":[";
  for (std::size_t i = 0; i < diff.added.size(); ++i)
    os << (i ? "," : "") << json_quote(diff.added[i]);
  os << "]}";
  return os.str();
}

int benchdiff_main(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  constexpr const char* kUsage =
      "usage: benchdiff [--threshold PCT] [--min-speedup RATIO] [--json]\n"
      "                 BASELINE_DIR CURRENT_DIR\n"
      "exit: 0 pass, 1 usage, 2 regression beyond threshold, 3 missing\n"
      "      benchmark or metric\n"
      "_mb_s throughput keys gate on current >= baseline * RATIO\n"
      "(default 0.7); other gated keys on the percent threshold.\n";
  double threshold = 5.0;
  double min_speedup = kDefaultMinSpeedup;
  bool json = false;
  std::vector<std::string> dirs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--threshold") {
      if (++i >= args.size()) {
        err << "missing value for --threshold\n" << kUsage;
        return 1;
      }
      char* end = nullptr;
      threshold = std::strtod(args[i].c_str(), &end);
      if (end != args[i].c_str() + args[i].size() || threshold < 0.0) {
        err << "bad threshold: " << args[i] << "\n" << kUsage;
        return 1;
      }
    } else if (a == "--min-speedup") {
      if (++i >= args.size()) {
        err << "missing value for --min-speedup\n" << kUsage;
        return 1;
      }
      char* end = nullptr;
      min_speedup = std::strtod(args[i].c_str(), &end);
      if (end != args[i].c_str() + args[i].size() || min_speedup < 0.0) {
        err << "bad min-speedup: " << args[i] << "\n" << kUsage;
        return 1;
      }
    } else if (a == "--json") {
      json = true;
    } else if (!a.empty() && a[0] == '-') {
      err << "unknown flag: " << a << "\n" << kUsage;
      return 1;
    } else {
      dirs.push_back(a);
    }
  }
  if (dirs.size() != 2) {
    err << kUsage;
    return 1;
  }
  BenchDiff diff;
  try {
    diff = diff_benches(load_bench_dir(dirs[0]), load_bench_dir(dirs[1]));
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
  out << (json ? format_json(diff, threshold, min_speedup) + "\n"
               : format_table(diff, threshold, min_speedup));
  if (!diff.missing.empty()) return 3;
  if (!diff.regressions(threshold, min_speedup).empty()) return 2;
  return 0;
}

}  // namespace ecomp::obs

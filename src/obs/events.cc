#include "obs/events.h"

#include <chrono>
#include <stdexcept>

#include "obs/json.h"
#include "obs/trace.h"

namespace ecomp::obs {

void EventLog::open(const std::string& path) {
  std::lock_guard lock(mu_);
  out_.close();
  out_.clear();
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) throw std::runtime_error("cannot open event log: " + path);
  path_ = path;
}

void EventLog::close() {
  std::lock_guard lock(mu_);
  out_.close();
  path_.clear();
}

bool EventLog::is_open() const {
  std::lock_guard lock(mu_);
  return out_.is_open();
}

void EventLog::emit(const Event& e) {
  std::lock_guard lock(mu_);
  if (!out_.is_open()) return;
  const double ts_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  JsonWriter w;
  w.begin_object();
  w.key("ts_ms").value(ts_ms);
  w.key("stage").value(e.stage);
  if (!e.side.empty()) w.key("side").value(e.side);
  if (e.trace_id) {
    TraceContext ctx;
    ctx.trace_id = e.trace_id;
    w.key("trace").value(ctx.hex());
  }
  if (e.conn >= 0) w.key("conn").value(e.conn);
  if (!e.name.empty()) w.key("name").value(e.name);
  if (!e.mode.empty()) w.key("mode").value(e.mode);
  if (e.bytes_wire >= 0) w.key("bytes_wire").value(e.bytes_wire);
  if (e.bytes_raw >= 0) w.key("bytes_raw").value(e.bytes_raw);
  if (e.blocks >= 0) w.key("blocks").value(e.blocks);
  if (e.attempt >= 0) w.key("attempt").value(e.attempt);
  if (e.j_est >= 0.0) w.key("j_est").value(e.j_est);
  if (!e.err.empty()) w.key("err").value(e.err);
  w.end_object();
  out_ << w.str() << '\n';
  out_.flush();  // lines must survive an abrupt process end mid-test
}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

}  // namespace ecomp::obs

#include "obs/events.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/json.h"
#include "obs/trace.h"

namespace ecomp::obs {
namespace {

std::atomic<EventMirror> g_mirror{nullptr};

/// Open-fd registry for the fatal-signal flush hook. Slots hold -1 when
/// free; all access is lock-free atomics so event_log_fds() is safe to
/// call from a signal handler.
std::atomic<int> g_live_fds[kMaxEventLogFds] = {
    {-1}, {-1}, {-1}, {-1}, {-1}, {-1}, {-1}, {-1}};

void register_fd(int fd) {
  for (auto& slot : g_live_fds) {
    int expected = -1;
    if (slot.compare_exchange_strong(expected, fd,
                                     std::memory_order_acq_rel))
      return;
  }
  // More than kMaxEventLogFds logs open at once: the extras just miss
  // the fatal fsync (their lines are still whole, single write()s).
}

void unregister_fd(int fd) {
  for (auto& slot : g_live_fds) {
    int expected = fd;
    if (slot.compare_exchange_strong(expected, -1,
                                     std::memory_order_acq_rel))
      return;
  }
}

}  // namespace

void set_event_mirror(EventMirror mirror) {
  g_mirror.store(mirror, std::memory_order_release);
}

int event_log_fds(int* out, int max) {
  int n = 0;
  for (const auto& slot : g_live_fds) {
    if (n >= max) break;
    const int fd = slot.load(std::memory_order_acquire);
    if (fd >= 0) out[n++] = fd;
  }
  return n;
}

std::string event_to_json(const Event& e) {
  const double ts_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  JsonWriter w;
  w.begin_object();
  w.key("ts_ms").value(ts_ms);
  w.key("stage").value(e.stage);
  if (!e.side.empty()) w.key("side").value(e.side);
  if (e.trace_id) {
    TraceContext ctx;
    ctx.trace_id = e.trace_id;
    w.key("trace").value(ctx.hex());
  }
  if (e.conn >= 0) w.key("conn").value(e.conn);
  if (!e.name.empty()) w.key("name").value(e.name);
  if (!e.mode.empty()) w.key("mode").value(e.mode);
  if (e.bytes_wire >= 0) w.key("bytes_wire").value(e.bytes_wire);
  if (e.bytes_raw >= 0) w.key("bytes_raw").value(e.bytes_raw);
  if (e.blocks >= 0) w.key("blocks").value(e.blocks);
  if (e.attempt >= 0) w.key("attempt").value(e.attempt);
  if (e.j_est >= 0.0) w.key("j_est").value(e.j_est);
  if (!e.err.empty()) w.key("err").value(e.err);
  if (std::isfinite(e.value)) w.key("value").value(e.value);
  if (std::isfinite(e.threshold)) w.key("threshold").value(e.threshold);
  w.end_object();
  return w.str();
}

EventLog::~EventLog() {
  close();
}

void EventLog::open(const std::string& path) {
  std::lock_guard lock(mu_);
  if (fd_ >= 0) {
    unregister_fd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw std::runtime_error("cannot open event log: " + path);
  fd_ = fd;
  path_ = path;
  bytes_ = 0;
  register_fd(fd_);
}

void EventLog::set_max_bytes(std::uint64_t n) {
  std::lock_guard lock(mu_);
  max_bytes_ = n;
}

std::uint64_t EventLog::max_bytes() const {
  std::lock_guard lock(mu_);
  return max_bytes_;
}

void EventLog::rotate_locked() {
  unregister_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  // Best-effort: a failed rename just means we overwrite in place.
  std::string old = path_ + ".1";
  ::rename(path_.c_str(), old.c_str());
  const int fd =
      ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return;  // sink gone; subsequent emits drop silently
  fd_ = fd;
  bytes_ = 0;
  register_fd(fd_);
}

void EventLog::close() {
  std::lock_guard lock(mu_);
  if (fd_ >= 0) {
    unregister_fd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
  bytes_ = 0;
}

bool EventLog::is_open() const {
  std::lock_guard lock(mu_);
  return fd_ >= 0;
}

void EventLog::emit(const Event& e) {
  if (const EventMirror m = g_mirror.load(std::memory_order_acquire))
    m(e);
  std::lock_guard lock(mu_);
  if (fd_ < 0) return;
  std::string line = event_to_json(e);
  line.push_back('\n');
  if (max_bytes_ > 0 && bytes_ > 0 && bytes_ + line.size() > max_bytes_) {
    rotate_locked();
    if (fd_ < 0) return;
  }
  bytes_ += line.size();
  // One complete line per write(2): a crash (ours or a SIGKILL) can
  // only ever drop whole events, never truncate one mid-line.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t w = ::write(fd_, line.data() + off, line.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // sink gone (disk full / closed pipe); drop, don't throw
    }
    off += static_cast<std::size_t>(w);
  }
}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

}  // namespace ecomp::obs

// obs::Monitor — the continuous-monitoring layer: a sampler thread
// walks the process-wide Registry at a fixed cadence into a
// fixed-memory SeriesStore (counters become rates, gauges pass
// through, sliding histograms contribute .p50/.p99/.rate), runs extra
// caller-registered sources (the proxy's J/MB-served and stalled-
// connection gauges), then lets a Watchdog evaluate SLO/drift/stall
// rules over the fresh samples and pushes fired alerts at a sink.
//
// The sample path is allocation-free at steady state: rings are
// preallocated, sliding-histogram quantiles use a scratch buffer, and
// per-series lookups go through transparent string_view comparators
// with a reused key buffer. Allocation happens only the first time a
// new instrument name appears.
//
// Threading: one internal mutex guards the store, watchdog, and
// per-counter rate state. tick() (the sampler body) and the read
// surface (series_json, latest, recent_alerts — what the STATS verb
// calls from the proxy thread) both take it. The alert sink runs under
// the lock and must not call back into the Monitor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/rules.h"
#include "obs/series.h"

namespace ecomp::obs {

struct MonitorOptions {
  std::uint32_t cadence_ms = 1000;  ///< sampler period
  SeriesOptions series;             ///< retention tiers (see series.h)
  bool sample_registry = true;      ///< walk the global Registry per tick
};

class Monitor {
 public:
  /// Extra per-tick sampler: append instance-local series (t is seconds
  /// since the monitor's epoch). Runs under the monitor lock.
  using Source = std::function<void(double t_s, SeriesStore& store)>;
  using AlertSink = std::function<void(const Alert&)>;

  explicit Monitor(MonitorOptions opt = {});
  ~Monitor();  // stop()s
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Register sources/rules/sink before start() (not synchronized
  /// against a running sampler thread).
  void add_source(Source src);
  void add_rule(Rule r);
  void set_alert_sink(AlertSink sink);

  /// Launch the sampler thread (idempotent).
  void start();
  /// Stop and join the sampler (idempotent; safe without start()).
  void stop();

  /// One full sample + evaluate cycle — the sampler thread's body,
  /// callable directly by tests driving an injected clock.
  void tick();

  /// Replace the time source (nanoseconds, monotonic). Set before
  /// start(); resets the epoch.
  void set_clock_for_test(std::function<std::uint64_t()> now_ns);

  /// Seconds since the monitor's epoch on the (possibly injected) clock.
  double now_s() const;

  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  std::uint64_t alerts_total() const;
  std::vector<Alert> recent_alerts() const;
  /// Newest value of every series, name-sorted (the STATS monitor
  /// gauges section).
  std::vector<std::pair<std::string, double>> latest() const;
  /// The SERIES STATS payload (see SeriesStore::to_json).
  std::string series_json(std::size_t max_per_tier = 64) const;

 private:
  void run();
  void sample_registry(double t_s);
  /// store_.append(prefix + suffix) through the reused key buffer.
  void append_suffixed(std::string_view name, const char* suffix, double t_s,
                       double v);

  MonitorOptions opt_;
  std::function<std::uint64_t()> clock_;  ///< empty = steady_clock
  std::uint64_t epoch_ns_ = 0;

  mutable std::mutex mu_;
  SeriesStore store_;
  Watchdog dog_;
  std::vector<Source> sources_;
  AlertSink sink_;

  // Sample-path scratch (reused every tick; zero steady-state alloc).
  std::vector<std::uint64_t> hist_scratch_;
  std::string key_scratch_;
  std::vector<Alert> fired_scratch_;
  /// Counter name -> value at the previous tick (rates); the double
  /// pair member is the tick time the value was taken at.
  std::map<std::string, std::pair<std::uint64_t, double>, std::less<>>
      prev_counters_;

  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::mutex wake_mu_;
  std::condition_variable wake_;
  std::thread thread_;
};

}  // namespace ecomp::obs

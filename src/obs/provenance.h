// Build/run provenance for machine-readable telemetry. Every bench
// sidecar embeds this block so a number can always be traced back to
// the commit, build configuration, and host that produced it — the
// precondition for benchdiff gating sidecars across PRs.
#pragma once

#include <string>

namespace ecomp::obs {

struct Provenance {
  std::string git_sha;     ///< commit id, or "unknown"
  std::string timestamp;   ///< UTC, ISO 8601 (e.g. "2026-08-06T12:00:00Z")
  std::string hostname;    ///< machine that ran the binary
  std::string build_type;  ///< CMAKE_BUILD_TYPE at compile time
  bool obs_enabled = false;  ///< ECOMP_OBS instrumentation compiled in
  std::string simd_level;  ///< dispatched kernel tier (util/simd.h)
  std::string cpu_flags;   ///< ISA extensions the host CPU reports
};

/// Collect provenance for the current process. The git SHA comes from
/// the ECOMP_GIT_SHA environment variable when set (CI override), else
/// from the value CMake captured at configure time.
Provenance collect_provenance();

/// {"git_sha":..,"timestamp":..,"hostname":..,"build_type":..,
///  "obs_enabled":..,"simd_level":..,"cpu_flags":..} — stable key order.
std::string to_json(const Provenance& p);

}  // namespace ecomp::obs
